// Package midquery is a from-scratch reproduction of Kabra & DeWitt,
// "Efficient Mid-Query Re-Optimization of Sub-Optimal Query Execution
// Plans" (SIGMOD 1998): a single-process relational query engine — paged
// storage over a simulated cost-accounted disk, catalog with histogram
// statistics, a System-R style optimizer producing annotated plans, a
// Memory Manager, and an iterator executor — with the paper's Dynamic
// Re-Optimization layered on top: statistics collectors inserted by the
// SCIA, mid-query memory re-allocation, and plan modification by
// materializing the running join and re-submitting SQL for the remainder
// of the query.
//
// Quick start:
//
//	db := midquery.Open(midquery.Options{})
//	db.LoadTPCD(midquery.TPCDConfig{SF: 0.01})
//	res, err := db.Exec(midquery.Q("Q5").SQL, midquery.ExecOptions{Mode: midquery.ReoptFull})
//
// Execution time is reported in simulated cost units (page I/Os plus
// weighted tuple CPU), which makes runs deterministic and directly
// comparable with the optimizer's estimates — see DESIGN.md for the
// substitution rationale.
package midquery

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/histogram"
	"repro/internal/obs"
	"repro/internal/parametric"
	"repro/internal/plan"
	"repro/internal/reopt"
	"repro/internal/session"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/types"
)

// Re-exported value and schema types: these are the currency of query
// results and table definitions.
type (
	// Value is one SQL value (integer, float, string, date, or NULL).
	Value = types.Value
	// Tuple is one result row.
	Tuple = types.Tuple
	// Column describes one table column.
	Column = types.Column
	// Kind is a SQL type tag.
	Kind = types.Kind
	// Stats reports what the re-optimizing dispatcher did for a query.
	Stats = reopt.Stats
	// HistFamily selects a histogram construction algorithm.
	HistFamily = histogram.Family
	// TPCDConfig controls the TPC-D-style data generator.
	TPCDConfig = tpcd.Config
	// TPCDQuery is one of the paper's benchmark queries.
	TPCDQuery = tpcd.Query
	// CostWeights maps physical events to simulated time units.
	CostWeights = storage.CostWeights
	// TraceEvent is one entry of a query's lifecycle event log
	// (ExecOptions.Trace).
	TraceEvent = obs.Event
)

// Value constructors and kind tags, re-exported for building tuples.
var (
	NewInt    = types.NewInt
	NewFloat  = types.NewFloat
	NewString = types.NewString
	NewDate   = types.NewDate
	Null      = types.Null
)

// SQL type kinds.
const (
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindString = types.KindString
	KindDate   = types.KindDate
)

// Histogram families for Analyze and AnalyzeOptions.
const (
	EquiWidth = histogram.EquiWidth
	EquiDepth = histogram.EquiDepth
	MaxDiff   = histogram.MaxDiff
	EndBiased = histogram.EndBiased
)

// Mode selects how much of Dynamic Re-Optimization runs for a query.
type Mode = reopt.Mode

// Re-optimization modes (Figure 10 compares ReoptOff with ReoptFull;
// Figure 11 isolates the memory-only and plan-only variants).
const (
	ReoptOff        = reopt.ModeOff
	ReoptMemoryOnly = reopt.ModeMemoryOnly
	ReoptPlanOnly   = reopt.ModePlanOnly
	ReoptFull       = reopt.ModeFull
	ReoptRestart    = reopt.ModeRestart
)

// Options configures a database instance.
type Options struct {
	// BufferPoolPages is the shared buffer pool size in 8 KB pages
	// (default 4096 = 32 MB, the paper's per-node pool).
	BufferPoolPages int
	// Weights prices simulated I/O and CPU (zero value = defaults).
	Weights CostWeights
}

// DB is an in-process database instance over a simulated disk.
type DB struct {
	cat   *catalog.Catalog
	pool  *storage.BufferPool
	meter *storage.CostMeter

	// txnMu guards txn, the one explicit transaction a DB-level client
	// may hold open between Exec calls (BEGIN … COMMIT/ROLLBACK). DML
	// outside it autocommits.
	txnMu sync.Mutex
	txn   *catalog.Txn
}

// Open creates an empty database.
func Open(opts Options) *DB {
	if opts.BufferPoolPages <= 0 {
		opts.BufferPoolPages = 4096
	}
	zero := CostWeights{}
	if opts.Weights == zero {
		opts.Weights = storage.DefaultCostWeights()
	}
	meter := storage.NewCostMeter(opts.Weights)
	pool := storage.NewBufferPool(storage.NewDisk(meter), opts.BufferPoolPages)
	return &DB{cat: catalog.New(pool), pool: pool, meter: meter}
}

// Catalog exposes the underlying catalog for advanced use (the examples
// and benchmarks stay on the DB API).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Cost returns the total simulated cost charged so far.
func (db *DB) Cost() float64 { return db.meter.Cost() }

// ResetCost zeroes the cost meter (between benchmark phases).
func (db *DB) ResetCost() { db.meter.Reset() }

// DropCaches empties the buffer pool so the next query runs cold. The
// benchmark harness calls it before every measured execution so that
// run-order effects cannot masquerade as re-optimization effects.
func (db *DB) DropCaches() error { return db.pool.EvictAll() }

// CreateTable registers a new table.
func (db *DB) CreateTable(name string, cols ...Column) error {
	_, err := db.cat.CreateTable(name, types.NewSchema(cols...))
	return err
}

// Insert appends one row of Go values (int/int64, float64, string,
// Value) to a table.
func (db *DB) Insert(table string, values ...any) error {
	t, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	tup := make(Tuple, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case int:
			tup[i] = types.NewInt(int64(x))
		case int64:
			tup[i] = types.NewInt(x)
		case float64:
			tup[i] = types.NewFloat(x)
		case string:
			tup[i] = types.NewString(x)
		case Value:
			tup[i] = x
		case nil:
			tup[i] = types.Null()
		default:
			return fmt.Errorf("midquery: cannot convert %T to a SQL value", v)
		}
	}
	return t.Insert(tup)
}

// CreateIndex builds a B+tree index on one column.
func (db *DB) CreateIndex(table, column string) error {
	return db.cat.CreateIndex(table, column)
}

// Analyze refreshes a table's statistics with the given histogram
// family.
func (db *DB) Analyze(table string, family HistFamily) error {
	return db.cat.Analyze(table, catalog.AnalyzeOptions{Family: family})
}

// LoadTPCD generates and loads the TPC-D-style dataset (§3.2).
func (db *DB) LoadTPCD(cfg TPCDConfig) error {
	return tpcd.Load(db.cat, cfg)
}

// TPCDQueries returns the paper's seven benchmark queries.
func TPCDQueries() []TPCDQuery { return tpcd.Queries() }

// Q fetches one benchmark query by name ("Q1", "Q3", ...), panicking on
// unknown names (it is a test/example convenience).
func Q(name string) TPCDQuery {
	q, err := tpcd.ByName(name)
	if err != nil {
		panic(err)
	}
	return q
}

// Multi-query server mode: a SessionManager shares this database among
// concurrent sessions, brokering operator memory from one pool and
// caching optimized plans (see internal/session and internal/server).
type (
	// SessionManager coordinates concurrent sessions over one engine.
	SessionManager = session.Manager
	// SessionConfig sizes the shared memory pool and plan cache.
	SessionConfig = session.Config
)

// NewSessionManager wraps the database for concurrent multi-query
// execution. Queries submitted through the manager's sessions are
// admitted against a shared memory broker instead of each assuming a
// private MemBudget; cmd/mqr-server serves one of these over HTTP.
func (db *DB) NewSessionManager(cfg SessionConfig) *SessionManager {
	return session.NewManager(db.cat, db.pool, db.meter, cfg)
}

// ExecOptions tunes one query execution.
type ExecOptions struct {
	// Mode selects the re-optimization variant (default ReoptOff).
	Mode Mode
	// Params binds host variables (":name" in the SQL).
	Params map[string]Value
	// MemBudget is the per-query operator memory in bytes (default
	// 32 MB). Distinct from the buffer pool.
	MemBudget float64
	// Mu, Theta1, Theta2 override the paper's μ=0.05, θ₁=0.05, θ₂=0.2.
	Mu, Theta1, Theta2 float64
	// HistFamily for run-time histograms (default MaxDiff).
	HistFamily HistFamily
	// SpliceSwitch uses the Figure 5 suspend-and-splice strategy for
	// plan switches instead of Figure 6's materialize-and-resubmit
	// (falls back to materialization when splicing is impossible).
	SpliceSwitch bool
	// DisableIndexJoin restricts plans to hash joins (ablations).
	DisableIndexJoin bool
	Seed             int64
	// Trace records the query's lifecycle events — collector reports,
	// checkpoint decisions, memory re-allocations, plan switches — into
	// Result.Trace. Off by default; enabling it costs one ring-buffer
	// append per event.
	Trace bool
	// Timeout bounds the query's wall-clock time; 0 means no deadline.
	// Expiry aborts the query mid-execution (operators poll the
	// deadline between tuples), drops its temp tables, and surfaces
	// context.DeadlineExceeded.
	Timeout time.Duration
	// Context aborts the query when cancelled (optional; Timeout
	// layers a deadline on top of it).
	Context context.Context
	// Parallel is the intra-query degree of parallelism: plan segments
	// between checkpoint boundaries are split across this many worker
	// goroutines by exchange operators, and their per-partition
	// statistics are merged back into single collector reports at each
	// gather. Values below 2 run serially.
	Parallel int
}

func (db *DB) dispatcher(o ExecOptions) *reopt.Dispatcher {
	return db.dispatcherWithTrace(o, nil)
}

func (db *DB) dispatcherWithTrace(o ExecOptions, tr *obs.Trace) *reopt.Dispatcher {
	cfg := reopt.DefaultConfig(o.Mode)
	cfg.Trace = tr
	cfg.Weights = db.meter.Weights()
	if o.MemBudget > 0 {
		cfg.MemBudget = o.MemBudget
	}
	if o.Mu > 0 {
		cfg.Mu = o.Mu
	}
	if o.Theta1 > 0 {
		cfg.Theta1 = o.Theta1
	}
	if o.Theta2 > 0 {
		cfg.Theta2 = o.Theta2
	}
	cfg.HistFamily = o.HistFamily // zero value is MaxDiff, the default
	if o.SpliceSwitch {
		cfg.Strategy = reopt.StrategySplice
	}
	cfg.DisableIndexJoin = o.DisableIndexJoin
	cfg.Seed = o.Seed
	cfg.PoolPages = float64(db.pool.Capacity())
	cfg.Degree = o.Parallel
	return reopt.New(db.cat, cfg)
}

// Result is one query's outcome.
type Result struct {
	// Columns are the output column names.
	Columns []string
	// Rows are the result tuples.
	Rows []Tuple
	// Stats reports the dispatcher's re-optimization activity.
	Stats *Stats
	// Cost is the simulated execution time of this query alone.
	Cost float64
	// WallCost is the simulated elapsed time: Cost minus the overlap
	// credited by parallel regions (workers running concurrently charge
	// the meter for all their work, but only the slowest tributary of
	// each gathered region contributes to elapsed time). Equal to Cost
	// for serial execution.
	WallCost float64
	// Plan is the EXPLAIN ANALYZE rendering (ExplainAnalyze only).
	Plan string
	// Trace is the query's event log (ExecOptions.Trace only).
	Trace []TraceEvent
	// RowsAffected is the number of rows a DML statement wrote (for
	// COMMIT, the whole transaction's total). Zero for queries.
	RowsAffected int64
}

// Exec compiles and runs one SQL statement: SELECT queries go through
// the re-optimizing dispatcher; INSERT/UPDATE/DELETE execute under
// snapshot-isolation MVCC (autocommitting unless a BEGIN is open); and
// BEGIN/COMMIT/ROLLBACK manage the DB's explicit transaction.
func (db *DB) Exec(src string, opts ExecOptions) (*Result, error) {
	return db.exec(src, opts, nil)
}

func (db *DB) exec(src string, opts ExecOptions, az *obs.Analyze) (*Result, error) {
	stmt, err := sql.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case *sql.SelectStmt:
		// Falls through to the dispatcher path below.
	case *sql.InsertStmt, *sql.UpdateStmt, *sql.DeleteStmt:
		return db.execDML(stmt, opts)
	case *sql.BeginStmt:
		db.txnMu.Lock()
		defer db.txnMu.Unlock()
		if db.txn != nil {
			return nil, errors.New("midquery: transaction already open")
		}
		db.txn = db.cat.BeginTxn()
		return &Result{Stats: &Stats{}}, nil
	case *sql.CommitStmt:
		db.txnMu.Lock()
		tx := db.txn
		db.txn = nil
		db.txnMu.Unlock()
		if tx == nil {
			return nil, errors.New("midquery: no transaction open")
		}
		rows := tx.Rows()
		tx.Commit()
		return &Result{Stats: &Stats{}, RowsAffected: rows}, nil
	case *sql.RollbackStmt:
		db.txnMu.Lock()
		tx := db.txn
		db.txn = nil
		db.txnMu.Unlock()
		if tx == nil {
			return nil, errors.New("midquery: no transaction open")
		}
		if err := tx.Abort(); err != nil {
			return nil, err
		}
		return &Result{Stats: &Stats{}}, nil
	}
	var tr *obs.Trace
	if opts.Trace {
		tr = obs.NewTrace(obs.DefaultTraceCap)
	}
	qctx := opts.Context
	if qctx == nil {
		qctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(qctx, opts.Timeout)
		defer cancel()
	}
	d := db.dispatcherWithTrace(opts, tr)
	// Whatever path the query exits by, drop every temp table the
	// dispatcher registered.
	defer d.Cleanup()
	params := plan.Params{}
	for k, v := range opts.Params {
		params[k] = v
	}
	// Reads run under a snapshot: the open explicit transaction's if
	// any (reading its own uncommitted writes), else a fresh read
	// snapshot registered with the transaction manager so the garbage
	// collector keeps every version this query can still see.
	db.txnMu.Lock()
	tx := db.txn
	db.txnMu.Unlock()
	var snap *storage.TxnSnapshot
	if tx != nil {
		snap = tx.Snapshot()
	} else {
		rd := db.cat.BeginRead()
		defer rd.End()
		snap = rd.Snapshot()
	}
	ctx := &exec.Ctx{Context: qctx, Pool: db.pool, Meter: db.meter, Params: params, Trace: tr, Analyze: az, Snap: snap}
	before := db.meter.Snapshot()
	rows, st, err := d.RunSQL(src, params, ctx)
	if err != nil {
		return nil, err
	}
	cols, err := db.outputColumns(d, src)
	if err != nil {
		cols = nil // column names are best-effort
	}
	res := &Result{
		Columns: cols,
		Rows:    rows,
		Stats:   st,
		Cost:    db.meter.Snapshot().Sub(before).Cost(),
	}
	res.WallCost = res.Cost - st.WallSavedCost
	if res.WallCost < 0 {
		res.WallCost = 0
	}
	if az != nil {
		res.Plan = az.Render()
	}
	if tr != nil {
		res.Trace = tr.Events()
	}
	return res, nil
}

// execDML plans and runs one write statement under MVCC. Inside an
// explicit transaction the writes join it; otherwise the statement
// autocommits. Any error aborts the governing transaction (MVCC undo is
// physical; there are no statement-level savepoints).
func (db *DB) execDML(stmt sql.Stmt, opts ExecOptions) (*Result, error) {
	node, err := plan.PlanDML(db.cat, stmt)
	if err != nil {
		return nil, err
	}
	qctx := opts.Context
	if qctx == nil {
		qctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(qctx, opts.Timeout)
		defer cancel()
	}
	db.txnMu.Lock()
	tx := db.txn
	db.txnMu.Unlock()
	own := tx == nil
	if own {
		tx = db.cat.BeginTxn()
	}
	params := plan.Params{}
	for k, v := range opts.Params {
		params[k] = v
	}
	ctx := &exec.Ctx{Context: qctx, Pool: db.pool, Meter: db.meter, Params: params, Txn: tx, Snap: tx.Snapshot()}
	before := db.meter.Snapshot()
	n, err := exec.RunDML(node, ctx)
	if err != nil {
		tx.Abort()
		if !own {
			db.txnMu.Lock()
			if db.txn == tx {
				db.txn = nil
			}
			db.txnMu.Unlock()
		}
		return nil, err
	}
	if own {
		tx.Commit()
	}
	return &Result{
		Stats:        &Stats{},
		RowsAffected: n,
		Cost:         db.meter.Snapshot().Sub(before).Cost(),
	}, nil
}

// Vacuum removes dead row versions no live snapshot can see, returning
// how many were reclaimed. Safe to run concurrently with queries.
func (db *DB) Vacuum() (int64, error) { return db.cat.Vacuum() }

// Explain compiles a query and returns its annotated plan text — each
// operator with its estimated rows, output size, cumulative cost, and
// memory demands — with statistics collectors inserted when mode is not
// ReoptOff. Nothing is executed.
func (db *DB) Explain(src string, opts ExecOptions) (string, error) {
	d := db.dispatcher(opts)
	res, err := d.EstimateOnly(src)
	if err != nil {
		return "", err
	}
	return obs.FormatPlan(res.Root), nil
}

// ExplainAnalyze executes the query with per-operator instrumentation
// and returns the Result with Plan holding the annotated rendering:
// optimizer estimates next to actual rows, per-operator time (simulated
// cost units), and peak memory; when a mid-query plan switch happened,
// each re-optimized remainder plan follows the initial one, with the
// temp-table splice point marked "[re-optimized here]".
func (db *DB) ExplainAnalyze(src string, opts ExecOptions) (*Result, error) {
	return db.exec(src, opts, obs.NewAnalyze())
}

// Prepared is a parametric plan: candidate plans enumerated across
// anticipated host-variable selectivity scenarios at prepare time, one
// of which is chosen per execution from the actual bindings — the
// parametric/dynamic hybrid the paper proposes as future work (§4).
type Prepared struct {
	db   *DB
	p    *parametric.Prepared
	opts ExecOptions
}

// Prepare compiles a parametric plan for a statement with host
// variables. The options' Mode governs whether executions also run
// under Dynamic Re-Optimization (the full hybrid) or as-is.
func (db *DB) Prepare(src string, opts ExecOptions) (*Prepared, error) {
	cfg := parametric.OptimizerConfig{
		Weights:          db.meter.Weights(),
		MemBudget:        opts.MemBudget,
		PoolPages:        float64(db.pool.Capacity()),
		DisableIndexJoin: opts.DisableIndexJoin,
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 32 << 20
	}
	p, err := parametric.Prepare(db.cat, src, cfg, nil)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, p: p, opts: opts}, nil
}

// Candidates returns the structural signatures of the parametric plan's
// candidates, with the scenarios that produced each.
func (pq *Prepared) Candidates() []string {
	out := make([]string, len(pq.p.Candidates))
	for i, c := range pq.p.Candidates {
		out[i] = fmt.Sprintf("%v -> %s", c.Scenarios, c.Shape)
	}
	return out
}

// Exec chooses the candidate nearest the actual bindings' selectivity
// and executes it through the re-optimizing dispatcher.
func (pq *Prepared) Exec(params map[string]Value) (*Result, error) {
	bound := plan.Params{}
	for k, v := range params {
		bound[k] = v
	}
	res, scenario, err := pq.p.Choose(bound)
	if err != nil {
		return nil, err
	}
	d := pq.db.dispatcher(pq.opts)
	defer d.Cleanup()
	ctx := &exec.Ctx{Pool: pq.db.pool, Meter: pq.db.meter, Params: bound}
	before := pq.db.meter.Snapshot()
	rows, st, err := d.RunPlan(res, bound, ctx)
	if err != nil {
		return nil, err
	}
	st.Decisions = append([]string{
		fmt.Sprintf("parametric: chose scenario %.3g for actual selectivity %.3g",
			scenario, pq.p.ActualSelectivity(bound)),
	}, st.Decisions...)
	return &Result{
		Rows:  rows,
		Stats: st,
		Cost:  pq.db.meter.Snapshot().Sub(before).Cost(),
	}, nil
}

func (db *DB) outputColumns(d *reopt.Dispatcher, src string) ([]string, error) {
	res, err := d.EstimateOnly(src)
	if err != nil {
		return nil, err
	}
	sch := res.Root.Schema()
	cols := make([]string, sch.Len())
	for i, c := range sch.Columns {
		cols[i] = c.Name
	}
	return cols, nil
}
