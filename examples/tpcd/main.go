// TPC-D walkthrough: load the paper's benchmark dataset with stale
// catalog statistics (the estimation-error regime of §1) and run the
// complex query Q5 with and without Dynamic Re-Optimization, printing
// the dispatcher's checkpoint decisions — the paper's §2.4 machinery in
// action.
package main

import (
	"fmt"
	"log"

	midquery "repro"
)

func main() {
	db := midquery.Open(midquery.Options{BufferPoolPages: 256})
	fmt.Println("loading TPC-D SF 0.01 with statistics collected at 50% of the load ...")
	if err := db.LoadTPCD(midquery.TPCDConfig{SF: 0.01, Seed: 1, StaleFrac: 0.5}); err != nil {
		log.Fatal(err)
	}

	q := midquery.Q("Q5")
	fmt.Printf("\n%s (%s, %d joins):%s\n", q.Name, q.Class, q.Joins, q.SQL)

	for _, mode := range []struct {
		name string
		m    midquery.Mode
	}{
		{"normal execution", midquery.ReoptOff},
		{"dynamic re-optimization", midquery.ReoptFull},
	} {
		db.DropCaches() // measure cold, like the benchmark harness
		res, err := db.Exec(q.SQL, midquery.ExecOptions{Mode: mode.m, MemBudget: 2 << 20})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s: cost %.0f units, %d rows\n", mode.name, res.Cost, len(res.Rows))
		if mode.m != midquery.ReoptOff {
			fmt.Printf("    collectors=%d reallocs=%d switches=%d\n",
				res.Stats.CollectorsInserted, res.Stats.MemReallocs, res.Stats.PlanSwitches)
			for _, d := range res.Stats.Decisions {
				fmt.Println("    " + d)
			}
		}
		for _, row := range res.Rows {
			fmt.Println("    ", row)
		}
	}
}
