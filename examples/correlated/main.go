// Query plan modification (the paper's Figures 4-6): two correlated
// host-variable predicates make the optimizer's estimate of a filter's
// output wildly low (it multiplies default selectivities under the
// independence assumption — §2.4 footnote 2 names exactly this error).
// The cheap-looking indexed nested-loops join it picks blows up 9x at
// run time; the dispatcher detects this at the first hash join's build
// boundary (Equations 1 and 2), materializes the running join's output
// to a temp table, generates SQL for the remainder of the query, and
// re-submits it — ending up with a hash join instead.
package main

import (
	"fmt"
	"log"

	midquery "repro"
)

func main() {
	db := midquery.Open(midquery.Options{BufferPoolPages: 8192})

	mk := func(name string, rows, fkMod int, index bool) {
		if err := db.CreateTable(name,
			midquery.Column{Name: name + "_pk", Kind: midquery.KindInt, Key: true},
			midquery.Column{Name: name + "_fk", Kind: midquery.KindInt},
			midquery.Column{Name: name + "_grp", Kind: midquery.KindInt},
			midquery.Column{Name: name + "_val", Kind: midquery.KindFloat},
		); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := db.Insert(name, i, i%fkMod, i%10, float64(i%1000)); err != nil {
				log.Fatal(err)
			}
		}
		if err := db.Analyze(name, midquery.MaxDiff); err != nil {
			log.Fatal(err)
		}
		if index {
			if err := db.CreateIndex(name, name+"_pk"); err != nil {
				log.Fatal(err)
			}
		}
	}
	mk("rel1", 1350, 4000, false)
	mk("rel2", 4000, 60000, false)
	mk("rel3", 60000, 5, true)

	const query = `
		select rel1_grp, count(*) as cnt
		from rel1, rel2, rel3
		where rel1.rel1_fk = rel2.rel2_pk
		  and rel2.rel2_fk = rel3.rel3_pk
		  and rel1_val < :v1 and rel1_grp < :v2
		group by rel1_grp`

	// Both host variables actually keep every row.
	params := map[string]midquery.Value{
		"v1": midquery.NewFloat(1e9),
		"v2": midquery.NewFloat(1e9),
	}

	fmt.Println("optimizer's plan (the filter estimate is ~1/9 of reality):")
	plan, _ := db.Explain(query, midquery.ExecOptions{Mode: midquery.ReoptPlanOnly, Params: params})
	fmt.Println(plan)

	db.DropCaches()
	normal, err := db.Exec(query, midquery.ExecOptions{Mode: midquery.ReoptOff, Params: params})
	if err != nil {
		log.Fatal(err)
	}
	db.DropCaches()
	switched, err := db.Exec(query, midquery.ExecOptions{Mode: midquery.ReoptPlanOnly, Params: params})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("normal execution:   %8.0f units\n", normal.Cost)
	fmt.Printf("plan modification:  %8.0f units (%d switch)\n", switched.Cost, switched.Stats.PlanSwitches)
	fmt.Printf("improvement:        %+.1f%%\n", (1-switched.Cost/normal.Cost)*100)
	for _, d := range switched.Stats.Decisions {
		fmt.Println("  " + d)
	}
	if switched.Stats.PlanSwitches > 0 {
		fmt.Println("\nplan after the switch (remainder re-submitted over the temp table):")
		fmt.Println(switched.Stats.Plans[len(switched.Stats.Plans)-1])
	}
	if len(normal.Rows) != len(switched.Rows) {
		log.Fatalf("result mismatch: %d vs %d rows", len(normal.Rows), len(switched.Rows))
	}
	fmt.Printf("results identical: %d groups\n", len(normal.Rows))
}
