// Parametric / dynamic hybrid — the future work the paper proposes in
// §4: "the query optimizer can try to anticipate the most common cases
// that might arise at run-time and produce a parameterized plan that
// covers these possibilities ... If a situation arises at run-time that
// is not covered ... dynamic re-optimization can be used."
//
// The query's price cutoff is a host variable on the probe side of the
// first join — exactly where mid-query statistics arrive too late for
// Dynamic Re-Optimization to fix a mis-chosen join method. A parametric
// plan prepared across selectivity scenarios picks the right method at
// bind time instead, and re-optimization stays armed for everything the
// scenarios did not anticipate.
package main

import (
	"fmt"
	"log"

	midquery "repro"
)

const query = `
	select l_orderkey, sum(l_extendedprice) as revenue
	from customer, orders, lineitem
	where customer.c_custkey = orders.o_custkey
	  and lineitem.l_orderkey = orders.o_orderkey
	  and o_totalprice < :cap
	group by l_orderkey order by revenue desc limit 10`

func main() {
	db := midquery.Open(midquery.Options{BufferPoolPages: 256})
	fmt.Println("loading TPC-D SF 0.01 (with the lineitem index the scenarios disagree about) ...")
	if err := db.LoadTPCD(midquery.TPCDConfig{SF: 0.01, Seed: 1, FactIndexes: true}); err != nil {
		log.Fatal(err)
	}

	prep, err := db.Prepare(query, midquery.ExecOptions{Mode: midquery.ReoptFull, MemBudget: 2 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nparametric candidates (scenario selectivities -> plan shape):")
	for _, c := range prep.Candidates() {
		fmt.Println("  " + c)
	}

	// :cap = 1040 keeps ~1% of orders; the static optimizer would have
	// assumed 1/3 and planned a full lineitem scan.
	params := map[string]midquery.Value{"cap": midquery.NewFloat(1040)}

	db.DropCaches()
	static, err := db.Exec(query, midquery.ExecOptions{Mode: midquery.ReoptOff, MemBudget: 2 << 20, Params: params})
	if err != nil {
		log.Fatal(err)
	}
	db.DropCaches()
	hybrid, err := prep.Exec(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nstatic plan:        %8.0f units\n", static.Cost)
	fmt.Printf("parametric hybrid:  %8.0f units (%+.1f%%)\n",
		hybrid.Cost, (hybrid.Cost/static.Cost-1)*100)
	for _, d := range hybrid.Stats.Decisions {
		fmt.Println("  " + d)
	}
	if len(static.Rows) != len(hybrid.Rows) {
		log.Fatalf("result mismatch: %d vs %d rows", len(static.Rows), len(hybrid.Rows))
	}
	fmt.Printf("results identical: %d rows\n", len(hybrid.Rows))
}
