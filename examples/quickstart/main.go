// Quickstart: open an in-memory database, create a table, load rows,
// gather statistics, and run queries — with the annotated plan and the
// simulated execution cost printed along the way.
package main

import (
	"fmt"
	"log"

	midquery "repro"
)

func main() {
	db := midquery.Open(midquery.Options{})

	// Schema and data.
	if err := db.CreateTable("employee",
		midquery.Column{Name: "id", Kind: midquery.KindInt, Key: true},
		midquery.Column{Name: "dept", Kind: midquery.KindString},
		midquery.Column{Name: "salary", Kind: midquery.KindFloat},
		midquery.Column{Name: "hired", Kind: midquery.KindDate},
	); err != nil {
		log.Fatal(err)
	}
	depts := []string{"engineering", "sales", "support", "finance"}
	for i := 0; i < 10000; i++ {
		if err := db.Insert("employee",
			i,
			depts[i%len(depts)],
			30000+float64(i%50000),
			midquery.NewDate(int64(9000+i%3000)),
		); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.CreateTable("department",
		midquery.Column{Name: "name", Kind: midquery.KindString, Key: true},
		midquery.Column{Name: "budget", Kind: midquery.KindFloat},
	); err != nil {
		log.Fatal(err)
	}
	for i, d := range depts {
		if err := db.Insert("department", d, float64((i+1)*1000000)); err != nil {
			log.Fatal(err)
		}
	}

	// ANALYZE builds MaxDiff histograms, the family Paradise's catalogs
	// default to.
	for _, t := range []string{"employee", "department"} {
		if err := db.Analyze(t, midquery.MaxDiff); err != nil {
			log.Fatal(err)
		}
	}

	const query = `
		select dept, count(*) as headcount, avg(salary) as pay
		from employee, department
		where employee.dept = department.name
		  and salary > :floor
		  and budget > 1500000
		group by dept
		order by pay desc`

	// EXPLAIN shows the annotated plan: every node carries the
	// optimizer's cardinality, cost, and memory-demand estimates, and
	// the statistics collectors the SCIA inserted.
	plan, err := db.Explain(query, midquery.ExecOptions{Mode: midquery.ReoptFull})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("annotated plan:")
	fmt.Println(plan)

	// Execute with mid-query re-optimization enabled. The :floor host
	// variable is exactly the kind of value the optimizer cannot see at
	// plan time (§1): the collectors observe the truth at run time.
	res, err := db.Exec(query, midquery.ExecOptions{
		Mode:   midquery.ReoptFull,
		Params: map[string]midquery.Value{"floor": midquery.NewFloat(34000)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost=%.0f units, %d collectors, %d memory re-allocations, %d plan switches\n",
		res.Cost, res.Stats.CollectorsInserted, res.Stats.MemReallocs, res.Stats.PlanSwitches)
	fmt.Println(res.Columns)
	for _, row := range res.Rows {
		fmt.Println(" ", row)
	}
}
