// Dynamic memory re-allocation (the paper's Figure 3 walk-through): a
// host-variable filter makes the optimizer over-estimate an intermediate
// result; under a tight memory budget the Memory Manager starves the
// second hash join into a two-pass execution. The statistics collector
// observes the true (much smaller) cardinality mid-query, the Memory
// Manager is re-invoked, and the join runs in one pass.
package main

import (
	"fmt"
	"log"

	midquery "repro"
)

func main() {
	db := midquery.Open(midquery.Options{BufferPoolPages: 4096})

	// Three relations in a chain: rel1 -> rel2 -> rel3, with rel1
	// filtered by a host variable (selectivity unknowable at plan time:
	// the optimizer assumes 1/3; the actual predicate keeps 15%).
	mk := func(name string, rows, fkMod int) {
		if err := db.CreateTable(name,
			midquery.Column{Name: name + "_pk", Kind: midquery.KindInt, Key: true},
			midquery.Column{Name: name + "_fk", Kind: midquery.KindInt},
			midquery.Column{Name: name + "_grp", Kind: midquery.KindInt},
			midquery.Column{Name: name + "_val", Kind: midquery.KindFloat},
		); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := db.Insert(name, i, i%fkMod, i%25, float64(i%1000)); err != nil {
				log.Fatal(err)
			}
		}
		if err := db.Analyze(name, midquery.MaxDiff); err != nil {
			log.Fatal(err)
		}
	}
	mk("rel1", 30000, 15000)
	mk("rel2", 15000, 20000)
	mk("rel3", 20000, 5)

	const query = `
		select rel1_grp, count(*) as cnt
		from rel1, rel2, rel3
		where rel1.rel1_fk = rel2.rel2_pk
		  and rel2.rel2_fk = rel3.rel3_pk
		  and rel1_val < :cut
		group by rel1_grp`

	opts := func(m midquery.Mode) midquery.ExecOptions {
		return midquery.ExecOptions{
			Mode:      m,
			MemBudget: 1 << 20, // 1 MiB: cannot satisfy both joins' estimates
			Params:    map[string]midquery.Value{"cut": midquery.NewFloat(150)},
		}
	}

	plan, _ := db.Explain(query, opts(midquery.ReoptMemoryOnly))
	fmt.Println("plan (note the joins' mem=min..max demands and grants):")
	fmt.Println(plan)

	db.DropCaches()
	normal, err := db.Exec(query, opts(midquery.ReoptOff))
	if err != nil {
		log.Fatal(err)
	}
	db.DropCaches()
	realloc, err := db.Exec(query, opts(midquery.ReoptMemoryOnly))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normal execution:        %8.0f units (second join spills)\n", normal.Cost)
	fmt.Printf("dynamic re-allocation:   %8.0f units (%d re-invocations of the Memory Manager)\n",
		realloc.Cost, realloc.Stats.MemReallocs)
	fmt.Printf("improvement:             %+.1f%%\n", (1-realloc.Cost/normal.Cost)*100)
	if len(normal.Rows) != len(realloc.Rows) {
		log.Fatalf("result mismatch: %d vs %d rows", len(normal.Rows), len(realloc.Rows))
	}
	fmt.Printf("results identical: %d groups\n", len(normal.Rows))
}
