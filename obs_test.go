package midquery

// Observability must be free when off: tracing and EXPLAIN ANALYZE are
// opt-in per query, and the disabled path adds only nil checks (the
// executor wraps operators in timing shims only when an Analyze
// accumulator is attached, and every trace emit is gated on a nil-safe
// Enabled()). The test below pins the simulated-cost invariant — the
// meter never sees the instrumentation — and the benchmarks measure the
// wall-clock side: BenchmarkQueryObservabilityDisabled is the default
// path, BenchmarkQueryObservabilityEnabled carries a trace plus the
// analyze shims, and the per-hook cost of the disabled path is the
// sub-nanosecond BenchmarkDisabledTraceEmit in internal/obs.

import "testing"

func TestObservabilityDoesNotChangeSimulatedCost(t *testing.T) {
	db := openTPCD(t, 0.002, 0)
	q := Q("Q5")
	run := func(analyze bool, opts ExecOptions) *Result {
		if err := db.DropCaches(); err != nil {
			t.Fatal(err)
		}
		var res *Result
		var err error
		if analyze {
			res, err = db.ExplainAnalyze(q.SQL, opts)
		} else {
			res, err = db.Exec(q.SQL, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false, ExecOptions{})
	traced := run(true, ExecOptions{Trace: true})
	if plain.Cost != traced.Cost {
		t.Errorf("instrumentation changed the simulated cost: %.3f plain vs %.3f traced",
			plain.Cost, traced.Cost)
	}
	if plain.Plan != "" || len(plain.Trace) != 0 {
		t.Error("default run carried observability output despite being off")
	}
	if traced.Plan == "" {
		t.Error("EXPLAIN ANALYZE run returned no annotated plan")
	}
	if len(traced.Trace) == 0 {
		t.Error("traced run returned no events")
	}
}

func benchmarkQuery(b *testing.B, analyze, trace bool) {
	db := Open(Options{BufferPoolPages: 2048})
	if err := db.LoadTPCD(TPCDConfig{SF: 0.002, Seed: 11}); err != nil {
		b.Fatal(err)
	}
	q := Q("Q3")
	opts := ExecOptions{Trace: trace}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.DropCaches(); err != nil {
			b.Fatal(err)
		}
		var err error
		if analyze {
			_, err = db.ExplainAnalyze(q.SQL, opts)
		} else {
			_, err = db.Exec(q.SQL, opts)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryObservabilityDisabled is the default execution path —
// no trace, no analyze. Compare its ns/op against
// BenchmarkQueryObservabilityEnabled: the gap is the full cost of
// turning everything on, and the disabled path's own overhead (nil
// checks) is far below the 2% the design budget allows.
func BenchmarkQueryObservabilityDisabled(b *testing.B) { benchmarkQuery(b, false, false) }

// BenchmarkQueryObservabilityEnabled runs the same query with the
// lifecycle trace and EXPLAIN ANALYZE shims attached.
func BenchmarkQueryObservabilityEnabled(b *testing.B) { benchmarkQuery(b, true, true) }
