package optimizer

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// Optimizer produces annotated physical plans via System-R bottom-up
// dynamic programming over left-deep join trees.
type Optimizer struct {
	Weights   storage.CostWeights
	MemBudget float64 // per-query memory hint in bytes; 0 = unlimited
	// PoolPages is the shared buffer pool size in pages, for
	// cache-aware index-join costing; 0 assumes cold fetches.
	PoolPages float64

	// HostVarSelectivity, when > 0, is the assumed selectivity of every
	// predicate involving a host variable, instead of the textbook
	// defaults. The parametric-plan optimizer (the paper's §4 hybrid
	// proposal) enumerates plans across scenarios of this knob.
	HostVarSelectivity float64

	// DisableIndexJoin restricts plans to hash joins (ablation hook).
	DisableIndexJoin bool

	// PlansConsidered counts DP transitions of the last Optimize call;
	// the re-optimizer converts it to T_opt (§2.4).
	PlansConsidered int
}

// Result is an optimized, annotated plan plus the analysis that produced
// it. The SCIA and the re-optimizing dispatcher both need the analysis:
// the SCIA to trace inaccuracy potentials, the dispatcher to know the
// join order when generating the remainder query.
type Result struct {
	Root  plan.Node
	Query *Query
	// Order is the chosen join order as indexes into Query.Rels.
	Order []int
	// PlansConsidered is the enumeration effort for this plan.
	PlansConsidered int
}

// dpEntry is one DP state: the best left-deep plan joining the masked
// relation set.
type dpEntry struct {
	mask  uint32
	node  plan.Node
	rows  float64
	bytes float64
	cost  float64
	order []int
}

// Optimize plans a parsed statement.
func (o *Optimizer) Optimize(q *Query) (*Result, error) {
	o.PlansConsidered = 0
	cm := planningModel(o.Weights, o.MemBudget, o.PoolPages)

	leaves := make([]*dpEntry, len(q.Rels))
	for i := range q.Rels {
		leaf, err := o.buildLeaf(q, i, cm)
		if err != nil {
			return nil, err
		}
		leaves[i] = leaf
	}

	best := map[uint32]*dpEntry{}
	for i, leaf := range leaves {
		best[1<<uint(i)] = leaf
	}
	n := len(q.Rels)
	full := uint32(1<<uint(n)) - 1

	// Enumerate by subset size; each state extends with one relation
	// (left-deep trees only, as in the original System R optimizer).
	for size := 1; size < n; size++ {
		for mask, entry := range best {
			if popcount(mask) != size {
				continue
			}
			for j := 0; j < n; j++ {
				jbit := uint32(1) << uint(j)
				if mask&jbit != 0 {
					continue
				}
				cand, err := o.extend(q, entry, leaves[j], j, cm)
				if err != nil {
					return nil, err
				}
				if cand == nil {
					continue // no connecting predicate: defer cartesian
				}
				o.PlansConsidered++
				if cur, ok := best[mask|jbit]; !ok || cand.cost < cur.cost {
					best[mask|jbit] = cand
				}
			}
		}
	}
	if best[full] == nil {
		// Disconnected join graph: allow cartesian extensions.
		for size := 1; size < n; size++ {
			for mask, entry := range best {
				if popcount(mask) != size {
					continue
				}
				for j := 0; j < n; j++ {
					jbit := uint32(1) << uint(j)
					if mask&jbit != 0 {
						continue
					}
					cand, err := o.extendCartesian(q, entry, leaves[j], j, cm)
					if err != nil {
						return nil, err
					}
					o.PlansConsidered++
					if cur, ok := best[mask|jbit]; !ok || cand.cost < cur.cost {
						best[mask|jbit] = cand
					}
				}
			}
		}
	}
	final := best[full]
	if final == nil {
		return nil, fmt.Errorf("optimizer: no plan found")
	}
	root, err := o.buildTops(q, final, cm)
	if err != nil {
		return nil, err
	}
	return &Result{Root: root, Query: q, Order: final.order, PlansConsidered: o.PlansConsidered}, nil
}

func popcount(m uint32) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}

// buildLeaf plans a single relation: a scan with pushed-down local
// predicates.
func (o *Optimizer) buildLeaf(q *Query, i int, cm *costModel) (*dpEntry, error) {
	rel := &q.Rels[i]
	t := rel.Table
	var preds []plan.Pred
	var predSQL []sql.Predicate
	for _, pr := range rel.LocalPreds {
		p, err := plan.BindPred(pr.AST, rel.Schema)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
		predSQL = append(predSQL, pr.AST)
	}
	sel := relSelectivity(rel, o.HostVarSelectivity)
	card, avg := t.Stats()
	if card <= 0 {
		card = float64(t.Heap.NumTuples()) // unanalyzed: physical count
	}
	rows := math.Max(0, card*sel)
	if avg <= 0 {
		avg = defaultWidth(rel.Schema)
	}
	node := &plan.Scan{Table: t, Binding: rel.Binding, Filters: preds, FilterSQL: predSQL, Out: rel.Schema}
	e := node.Est()
	e.Rows = rows
	e.Bytes = rows * avg
	e.SelfCost = cm.scanCost(t.NumPages(), card)
	e.Cost = e.SelfCost
	return &dpEntry{mask: 1 << uint(i), node: node, rows: rows, bytes: e.Bytes, cost: e.Cost, order: []int{i}}, nil
}

func defaultWidth(s *types.Schema) float64 {
	w := 0.0
	for _, c := range s.Columns {
		w += valueWidth(c.Kind)
	}
	return w
}

// connecting returns the join predicates linking relation j to the set
// in mask, split into equi-join keys and residual predicates.
func (q *Query) connecting(mask uint32, j int) (equi, other []*PredRef) {
	jbit := uint32(1) << uint(j)
	for _, pr := range q.Preds {
		if pr.Kind == PredLocal {
			continue
		}
		pm := pr.RelMask()
		if pm&jbit == 0 || pm&mask == 0 || pm&^(mask|jbit) != 0 {
			continue
		}
		if pr.Kind == PredEquiJoin {
			equi = append(equi, pr)
		} else {
			other = append(other, pr)
		}
	}
	return equi, other
}

// extend joins entry with relation j, choosing the cheaper of hash join
// and indexed nested-loops join. Returns nil if no predicate connects j
// to the set.
func (o *Optimizer) extend(q *Query, entry *dpEntry, leaf *dpEntry, j int, cm *costModel) (*dpEntry, error) {
	equi, other := q.connecting(entry.mask, j)
	if len(equi) == 0 && len(other) == 0 {
		return nil, nil
	}

	// Combined selectivity of every connecting predicate.
	sel := 1.0
	for _, pr := range equi {
		sel *= joinSelectivity(q, pr)
	}
	for range other {
		sel *= histogram_DefaultRangeSelectivity
	}
	outRows := entry.rows * leaf.rows * sel
	leafAvg := avgBytes(leaf)
	outBytes := outRows * (avgBytes(entry) + leafAvg)

	var bestNode plan.Node
	bestCost := math.Inf(1)

	if len(equi) > 0 {
		node, cost, err := o.tryHashJoin(q, entry, leaf, j, equi, outRows, outBytes, cm)
		if err != nil {
			return nil, err
		}
		if cost < bestCost {
			bestNode, bestCost = node, cost
		}
		node, cost, err = o.tryIndexJoin(q, entry, j, equi, outRows, outBytes, cm)
		if err != nil {
			return nil, err
		}
		if node != nil && cost < bestCost {
			bestNode, bestCost = node, cost
		}
	} else {
		// Pure non-equi join: hash join degenerates; use a cartesian
		// hash join on no keys is wrong — use hash join with empty
		// keys via filter over cartesian is not supported; fall back
		// to index-less nested evaluation through a hash join on a
		// constant key is equivalent to cartesian + filter.
		node, cost, err := o.tryHashJoin(q, entry, leaf, j, nil, outRows, outBytes, cm)
		if err != nil {
			return nil, err
		}
		bestNode, bestCost = node, cost
	}

	out := bestNode
	// Residual predicates above the join.
	if len(other) > 0 {
		preds := make([]plan.Pred, 0, len(other))
		predSQL := make([]sql.Predicate, 0, len(other))
		for _, pr := range other {
			p, err := plan.BindPred(pr.AST, bestNode.Schema())
			if err != nil {
				return nil, err
			}
			preds = append(preds, p)
			predSQL = append(predSQL, pr.AST)
		}
		f := &plan.Filter{Input: bestNode, Preds: preds, PredSQL: predSQL}
		fe := f.Est()
		fe.Rows = outRows
		fe.Bytes = outBytes
		fe.SelfCost = 0
		fe.Cost = bestCost
		out = f
	}

	return &dpEntry{
		mask:  entry.mask | 1<<uint(j),
		node:  out,
		rows:  outRows,
		bytes: outBytes,
		cost:  bestCost,
		order: append(append([]int{}, entry.order...), j),
	}, nil
}

// histogram_DefaultRangeSelectivity mirrors the histogram package default
// without importing it here for one constant.
const histogram_DefaultRangeSelectivity = 1.0 / 3.0

func avgBytes(e *dpEntry) float64 {
	if e.rows <= 0 {
		return 0
	}
	return e.bytes / e.rows
}

// tryHashJoin builds the hash-join candidate: build side is the current
// intermediate (matching the paper's plan shapes), probe side is the new
// relation's scan.
func (o *Optimizer) tryHashJoin(q *Query, entry, leaf *dpEntry, j int, equi []*PredRef, outRows, outBytes float64, cm *costModel) (plan.Node, float64, error) {
	probeLeaf, err := o.buildLeaf(q, j, cm) // fresh node: plans are trees, not DAGs
	if err != nil {
		return nil, 0, err
	}
	buildKeys, probeKeys, joinSQL, err := joinKeyOrdinals(q, entry.node.Schema(), probeLeaf.node.Schema(), j, equi)
	if err != nil {
		return nil, 0, err
	}
	node := &plan.HashJoin{
		Build:     entry.node,
		Probe:     probeLeaf.node,
		BuildKeys: buildKeys,
		ProbeKeys: probeKeys,
		JoinSQL:   joinSQL,
	}
	e := node.Est()
	e.MemMin, e.MemMax = joinMemDemands(entry.bytes)
	e.MemStep = true
	grant := cm.grantFor(e.MemMax, e.Grant)
	self, _ := cm.hashJoinSelf(entry.rows, entry.bytes, leaf.rows, leaf.bytes, outRows, grant)
	e.SelfCost = self
	e.Cost = entry.cost + probeLeaf.cost + self
	e.Rows = outRows
	e.Bytes = outBytes
	return node, e.Cost, nil
}

// joinKeyOrdinals resolves equi-join predicates to column ordinals on
// the build (intermediate) and probe (new relation) schemas.
func joinKeyOrdinals(q *Query, buildSchema, probeSchema *types.Schema, j int, equi []*PredRef) (bk, pk []int, joinSQL []sql.Predicate, err error) {
	for _, pr := range equi {
		// Orient so the j side is the probe.
		lRel, lCol, rRel, rCol := pr.LeftRel, pr.LeftCol, pr.RightRel, pr.RightCol
		if lRel == j {
			lRel, lCol, rRel, rCol = rRel, rCol, lRel, lCol
		}
		if rRel != j {
			return nil, nil, nil, fmt.Errorf("optimizer: predicate %s does not touch relation %d", pr.AST.SQL(), j)
		}
		lBinding := q.Rels[lRel].Binding
		lName := q.Rels[lRel].Schema.Columns[lCol].Name
		bi, err := buildSchema.Resolve(lBinding, lName)
		if err != nil {
			return nil, nil, nil, err
		}
		rName := q.Rels[j].Schema.Columns[rCol].Name
		pi, err := probeSchema.Resolve(q.Rels[j].Binding, rName)
		if err != nil {
			return nil, nil, nil, err
		}
		bk = append(bk, bi)
		pk = append(pk, pi)
		joinSQL = append(joinSQL, pr.AST)
	}
	return bk, pk, joinSQL, nil
}

// tryIndexJoin builds the indexed nested-loops candidate, if exactly one
// equi predicate connects and the inner relation has an index on its
// side of it. Returns a nil node when not applicable.
func (o *Optimizer) tryIndexJoin(q *Query, entry *dpEntry, j int, equi []*PredRef, outRows, outBytes float64, cm *costModel) (plan.Node, float64, error) {
	if o.DisableIndexJoin || len(equi) != 1 {
		return nil, 0, nil
	}
	pr := equi[0]
	lRel, lCol, rCol := pr.LeftRel, pr.LeftCol, pr.RightCol
	if lRel == j {
		lRel, lCol, rCol = pr.RightRel, pr.RightCol, pr.LeftCol
	}
	rel := &q.Rels[j]
	idx, ok := rel.Table.Indexes[rCol]
	if !ok {
		return nil, 0, nil
	}
	lBinding := q.Rels[lRel].Binding
	lName := q.Rels[lRel].Schema.Columns[lCol].Name
	outerKey, err := entry.node.Schema().Resolve(lBinding, lName)
	if err != nil {
		return nil, 0, err
	}
	var innerPreds []plan.Pred
	var innerSQL []sql.Predicate
	for _, lp := range rel.LocalPreds {
		p, err := plan.BindPred(lp.AST, rel.Schema)
		if err != nil {
			return nil, 0, err
		}
		innerPreds = append(innerPreds, p)
		innerSQL = append(innerSQL, lp.AST)
	}
	node := &plan.IndexJoin{
		Outer:        entry.node,
		Table:        rel.Table,
		Binding:      rel.Binding,
		OuterKey:     outerKey,
		InnerCol:     rCol,
		InnerFilters: innerPreds,
		JoinSQL:      []sql.Predicate{pr.AST},
		InnerSQL:     innerSQL,
		InnerOut:     rel.Schema,
	}
	innerCard, _ := rel.Table.Stats()
	matches := innerCard / colNDV(rel.Table, rCol)
	node.EstMatches = matches
	self := cm.indexJoinSelf(entry.rows, matches, outRows,
		rel.Table.NumPages(), float64(rel.Table.Heap.NumTuples()), idx.Clustering)
	e := node.Est()
	e.Rows = outRows
	e.Bytes = outBytes
	e.SelfCost = self
	e.Cost = entry.cost + self
	return node, e.Cost, nil
}

// extendCartesian joins with no predicate (disconnected graphs only).
func (o *Optimizer) extendCartesian(q *Query, entry, leaf *dpEntry, j int, cm *costModel) (*dpEntry, error) {
	outRows := entry.rows * leaf.rows
	outBytes := outRows * (avgBytes(entry) + avgBytes(leaf))
	node, cost, err := o.tryHashJoin(q, entry, leaf, j, nil, outRows, outBytes, cm)
	if err != nil {
		return nil, err
	}
	return &dpEntry{
		mask:  entry.mask | 1<<uint(j),
		node:  node,
		rows:  outRows,
		bytes: outBytes,
		cost:  cost,
		order: append(append([]int{}, entry.order...), j),
	}, nil
}

// ndvOfColumn estimates the distinct count of a (possibly intermediate)
// schema column by tracing it to its base relation.
func (o *Optimizer) ndvOfColumn(q *Query, col types.Column) float64 {
	for i := range q.Rels {
		rel := &q.Rels[i]
		if !strings.EqualFold(rel.Binding, col.Table) {
			continue
		}
		if ci, err := rel.Schema.Resolve(col.Table, col.Name); err == nil {
			return colNDV(rel.Table, ci)
		}
	}
	return 10
}
