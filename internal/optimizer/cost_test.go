package optimizer

import (
	"testing"

	"repro/internal/sql"
	"repro/internal/storage"
)

func TestIndexJoinCostClusteringAware(t *testing.T) {
	w := storage.DefaultCostWeights()
	const (
		outer   = 1000.0
		matches = 4.0
		out     = 4000.0
		pages   = 500.0
		rows    = 50000.0
		pool    = 256.0
	)
	random := IndexJoinSelfCost(w, outer, matches, out, pages, rows, 0, pool)
	clustered := IndexJoinSelfCost(w, outer, matches, out, pages, rows, 1, pool)
	if clustered >= random {
		t.Errorf("clustered cost %g not below random %g", clustered, random)
	}
	// Clustered fetch I/O ~ pages touched, far below one read per fetch.
	probesAndCPU := outer*w.PageRead + (outer+out)*w.TupleCPU
	clusteredIO := clustered - probesAndCPU
	if clusteredIO > outer*matches*pages/rows+2 {
		t.Errorf("clustered fetch I/O = %g, want ~%g", clusteredIO, outer*matches*pages/rows)
	}
	// A half-clustered index lands between.
	mid := IndexJoinSelfCost(w, outer, matches, out, pages, rows, 0.5, pool)
	if !(clustered < mid && mid < random) {
		t.Errorf("blend not monotone: %g / %g / %g", clustered, mid, random)
	}
}

func TestIndexJoinCostCacheAware(t *testing.T) {
	w := storage.DefaultCostWeights()
	// Random access with many more fetches than table pages: a big pool
	// absorbs re-touches, a tiny pool does not.
	bigPool := IndexJoinSelfCost(w, 10000, 4, 40000, 500, 50000, 0, 500)
	tinyPool := IndexJoinSelfCost(w, 10000, 4, 40000, 500, 50000, 0, 10)
	if bigPool >= tinyPool {
		t.Errorf("pool-resident cost %g not below thrashing cost %g", bigPool, tinyPool)
	}
	// With the whole table resident, misses cap near the table size.
	probesAndCPU := 10000*w.PageRead + (10000+40000)*w.TupleCPU
	if io := bigPool - probesAndCPU; io > 600 {
		t.Errorf("resident-table fetch I/O = %g, want ~500 (one pass)", io)
	}
}

func TestHashJoinSpillCostSymmetry(t *testing.T) {
	w := storage.DefaultCostWeights()
	inMem := HashJoinSelfCost(w, 1000, 1<<20, 5000, 4<<20, 5000, 8<<20)
	spill := HashJoinSelfCost(w, 1000, 1<<20, 5000, 4<<20, 5000, 64<<10)
	if spill <= inMem {
		t.Errorf("spilling grant not more expensive: %g vs %g", spill, inMem)
	}
	// The spill penalty is the partitioning pass over both inputs.
	pages := (1<<20 + 4<<20) / float64(storage.PageSize)
	wantDelta := pages * (w.PageRead + w.PageWrite)
	if d := spill - inMem; d < wantDelta*0.9 || d > wantDelta*1.3 {
		t.Errorf("spill delta = %g, want ~%g", d, wantDelta)
	}
	if !HashJoinSpills(1<<20, 64<<10) {
		t.Error("HashJoinSpills(1MB build, 64KB grant) = false")
	}
	if HashJoinSpills(1<<20, 8<<20) {
		t.Error("HashJoinSpills(1MB build, 8MB grant) = true")
	}
}

func TestMemDemandFloors(t *testing.T) {
	mn, mx := JoinMemDemands(0) // zero-row estimate
	if mx < 64<<10 {
		t.Errorf("MemMax = %g, want floored at 64KB", mx)
	}
	if mn > mx {
		t.Error("MemMin > MemMax")
	}
	mn, mx = StepMemDemands(10)
	if mx < 64<<10 || mn > mx {
		t.Errorf("step demands = %g/%g", mn, mx)
	}
}

func TestHostVarScenarioChangesLeafEstimate(t *testing.T) {
	f := newFixture(t)
	stmt, _ := sql.Parse("select o_id from orders where o_price < :cut")
	for _, sc := range []float64{0.01, 0.5, 1.0} {
		q, _ := Analyze(f.cat, stmt)
		o := &Optimizer{Weights: storage.DefaultCostWeights(), HostVarSelectivity: sc}
		res, err := o.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Root.Est().Rows / 20000
		if got < sc*0.9 || got > sc*1.1 {
			t.Errorf("scenario %g: leaf selectivity = %g", sc, got)
		}
	}
}

func TestQueryLocalSelectivity(t *testing.T) {
	f := newFixture(t)
	stmt, _ := sql.Parse("select o_id from orders where o_status = 3")
	q, _ := Analyze(f.cat, stmt)
	// Literal predicate: MaxDiff on 10 distinct values is near-exact.
	sel := q.LocalSelectivity(0, stmt.Where[0])
	if sel < 0.08 || sel > 0.12 {
		t.Errorf("LocalSelectivity = %g, want ~0.1", sel)
	}
	if got := q.LocalSelectivity(99, stmt.Where[0]); got <= 0 || got > 1 {
		t.Errorf("out-of-range relation selectivity = %g", got)
	}
}
