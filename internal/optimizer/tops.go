package optimizer

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

// buildTops places the aggregate / project / sort / limit operators above
// the completed join tree.
func (o *Optimizer) buildTops(q *Query, joined *dpEntry, cm *costModel) (plan.Node, error) {
	node := joined.node
	stmt := q.Stmt

	var outSchema *types.Schema
	if q.HasAggregate && (len(stmt.GroupBy) > 0 || hasAggItems(stmt)) {
		agg, err := o.buildAgg(q, joined, cm)
		if err != nil {
			return nil, err
		}
		node = agg
		// Project rearranges aggregate output into select-list order.
		proj, err := o.projectFromAgg(q, agg)
		if err != nil {
			return nil, err
		}
		node = proj
		outSchema = proj.Out
	} else {
		proj, err := o.projectDirect(q, node)
		if err != nil {
			return nil, err
		}
		node = proj
		outSchema = proj.Out
	}

	if stmt.Distinct {
		node = o.distinctOver(node, cm)
		outSchema = node.Schema()
	}

	if len(stmt.OrderBy) > 0 {
		sorted, err := o.buildSort(stmt, node, outSchema, cm)
		if err != nil {
			return nil, err
		}
		node = sorted
	}

	if stmt.Limit >= 0 {
		lim := &plan.Limit{Input: node, N: stmt.Limit}
		e := lim.Est()
		in := node.Est()
		e.Rows = math.Min(float64(stmt.Limit), in.Rows)
		e.Bytes = in.Bytes * safeDiv(e.Rows, in.Rows)
		e.Cost = in.Cost
		node = lim
	}
	return node, nil
}

func safeDiv(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

func hasAggItems(stmt *sql.SelectStmt) bool {
	for _, item := range stmt.Select {
		if _, ok := item.Expr.(*sql.AggExpr); ok {
			return true
		}
	}
	return false
}

// buildAgg constructs the aggregate node: group columns from GROUP BY,
// aggregate specs from the select list.
func (o *Optimizer) buildAgg(q *Query, joined *dpEntry, cm *costModel) (*plan.Agg, error) {
	in := joined.node
	inSchema := in.Schema()
	var groupCols []int
	for _, g := range q.Stmt.GroupBy {
		ref, ok := g.(*sql.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("optimizer: GROUP BY supports column references only, got %s", g.SQL())
		}
		idx, err := inSchema.Resolve(ref.Table, ref.Name)
		if err != nil {
			return nil, err
		}
		groupCols = append(groupCols, idx)
	}

	var aggs []plan.AggSpec
	var outCols []types.Column
	for _, c := range groupCols {
		outCols = append(outCols, inSchema.Columns[c])
	}
	for i, item := range q.Stmt.Select {
		ax, ok := item.Expr.(*sql.AggExpr)
		if !ok {
			continue
		}
		var arg plan.Expr
		var argKind types.Kind = types.KindInt
		if ax.Arg != nil {
			bound, err := plan.Bind(ax.Arg, inSchema)
			if err != nil {
				return nil, err
			}
			arg = bound
			argKind = bound.Kind()
		}
		name := item.Alias
		if name == "" {
			name = fmt.Sprintf("%s_%d", strings.ToLower(ax.Func.String()), i+1)
		}
		kind := argKind
		switch ax.Func {
		case sql.AggAvg:
			kind = types.KindFloat
		case sql.AggCount:
			kind = types.KindInt
		}
		aggs = append(aggs, plan.AggSpec{Func: ax.Func, Arg: arg, Name: name})
		outCols = append(outCols, types.Column{Name: name, Kind: kind})
	}

	node := &plan.Agg{Input: in, GroupCols: groupCols, Aggs: aggs, Out: types.NewSchema(outCols...)}
	groups := o.estimateGroups(q, inSchema, groupCols, joined.rows)
	keyBytes := 0.0
	for _, c := range groupCols {
		keyBytes += valueWidth(inSchema.Columns[c].Kind)
	}
	state := aggStateBytes(keyBytes, len(aggs))
	e := node.Est()
	e.Rows = groups
	e.Bytes = groups * (keyBytes + float64(9*len(aggs)))
	e.MemMin, e.MemMax = stepMemDemands(groups * state)
	grant := cm.grantFor(e.MemMax, e.Grant)
	e.SelfCost = cm.aggSelf(joined.rows, groups, state, grant)
	e.Cost = in.Est().Cost + e.SelfCost
	return node, nil
}

// estimateGroups predicts the number of groups: the product of the group
// columns' base-table distinct counts, capped by the input cardinality.
// At intermediate points this is exactly the estimate the paper's rules
// call "always high" inaccuracy (§2.5) — it ignores how joins and
// selections thin each column's value set.
func (o *Optimizer) estimateGroups(q *Query, inSchema *types.Schema, groupCols []int, inRows float64) float64 {
	if len(groupCols) == 0 {
		return 1
	}
	groups := 1.0
	for _, c := range groupCols {
		groups *= o.ndvOfColumn(q, inSchema.Columns[c])
	}
	return math.Max(1, math.Min(groups, inRows))
}

// projectFromAgg maps the aggregate's output columns into select-list
// order.
func (o *Optimizer) projectFromAgg(q *Query, agg *plan.Agg) (*plan.Project, error) {
	aggSchema := agg.Out
	var exprs []plan.Expr
	var outCols []types.Column
	aggOut := len(agg.GroupCols) // aggregate outputs start after group cols
	for _, item := range q.Stmt.Select {
		if _, ok := item.Expr.(*sql.AggExpr); ok {
			col := aggSchema.Columns[aggOut]
			exprs = append(exprs, &plan.ColExpr{Idx: aggOut, Col: col})
			outCols = append(outCols, col)
			aggOut++
			continue
		}
		ref, ok := item.Expr.(*sql.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("optimizer: non-aggregate select item %s must be a grouping column", item.Expr.SQL())
		}
		idx, err := aggSchema.Resolve(ref.Table, ref.Name)
		if err != nil {
			return nil, err
		}
		col := aggSchema.Columns[idx]
		if item.Alias != "" {
			col = types.Column{Name: item.Alias, Kind: col.Kind}
		}
		exprs = append(exprs, &plan.ColExpr{Idx: idx, Col: aggSchema.Columns[idx]})
		outCols = append(outCols, col)
	}
	node := &plan.Project{Input: agg, Exprs: exprs, Out: types.NewSchema(outCols...)}
	in := agg.Est()
	e := node.Est()
	e.Rows, e.Bytes, e.Cost = in.Rows, in.Bytes, in.Cost
	return node, nil
}

// projectDirect binds the select list straight over the join output.
func (o *Optimizer) projectDirect(q *Query, in plan.Node) (*plan.Project, error) {
	inSchema := in.Schema()
	var exprs []plan.Expr
	var outCols []types.Column
	for i, item := range q.Stmt.Select {
		bound, err := plan.Bind(item.Expr, inSchema)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, bound)
		name := item.Alias
		table := ""
		if ref, ok := item.Expr.(*sql.ColumnRef); ok && name == "" {
			name = ref.Name
			table = ref.Table
			if table == "" {
				// Recover the binding for unqualified refs.
				if idx, err := inSchema.Resolve("", ref.Name); err == nil {
					table = inSchema.Columns[idx].Table
				}
			}
		}
		if name == "" {
			name = fmt.Sprintf("col_%d", i+1)
		}
		outCols = append(outCols, types.Column{Table: table, Name: name, Kind: bound.Kind()})
	}
	node := &plan.Project{Input: in, Exprs: exprs, Out: types.NewSchema(outCols...)}
	ie := in.Est()
	e := node.Est()
	e.Rows, e.Bytes, e.Cost = ie.Rows, ie.Bytes, ie.Cost
	return node, nil
}

// distinctOver wraps a node in an aggregate grouping on every column.
func (o *Optimizer) distinctOver(in plan.Node, cm *costModel) plan.Node {
	s := in.Schema()
	cols := make([]int, s.Len())
	for i := range cols {
		cols[i] = i
	}
	node := &plan.Agg{Input: in, GroupCols: cols, Out: s}
	ie := in.Est()
	e := node.Est()
	e.Rows = math.Max(1, ie.Rows/2) // textbook guess: duplicates halve
	e.Bytes = ie.Bytes * safeDiv(e.Rows, ie.Rows)
	keyBytes := defaultWidth(s)
	e.MemMin, e.MemMax = stepMemDemands(e.Rows * aggStateBytes(keyBytes, 0))
	grant := cm.grantFor(e.MemMax, e.Grant)
	e.SelfCost = cm.aggSelf(ie.Rows, e.Rows, aggStateBytes(keyBytes, 0), grant)
	e.Cost = ie.Cost + e.SelfCost
	return node
}

// buildSort resolves ORDER BY keys against the output schema (aliases or
// column names) and wraps the plan in a sort.
func (o *Optimizer) buildSort(stmt *sql.SelectStmt, in plan.Node, outSchema *types.Schema, cm *costModel) (plan.Node, error) {
	var keys []plan.SortKey
	for _, item := range stmt.OrderBy {
		ref, ok := item.Expr.(*sql.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("optimizer: ORDER BY supports output columns only, got %s", item.Expr.SQL())
		}
		idx, err := outSchema.Resolve(ref.Table, ref.Name)
		if err != nil {
			return nil, err
		}
		keys = append(keys, plan.SortKey{Col: idx, Desc: item.Desc})
	}
	node := &plan.Sort{Input: in, Keys: keys}
	ie := in.Est()
	e := node.Est()
	e.Rows, e.Bytes = ie.Rows, ie.Bytes
	e.MemMin, e.MemMax = stepMemDemands(ie.Bytes * 1.1)
	grant := cm.grantFor(e.MemMax, e.Grant)
	e.SelfCost = cm.sortSelf(ie.Rows, ie.Bytes, grant)
	e.Cost = ie.Cost + e.SelfCost
	return node, nil
}
