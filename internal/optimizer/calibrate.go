package optimizer

import (
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// OptCostPerPlan converts "plans considered" by the DP enumerator into
// simulated cost units. At 0.1 units (≈ one tenth of a page I/O) per
// transition, optimizing a 6-join query costs a few tens of units —
// matching the paper's observation that optimization time is dominated
// by join-order enumeration and is non-trivial but far below the cost of
// a complex query.
const OptCostPerPlan = 0.1

// Calibrator estimates T_opt,estimated(n): the time to re-optimize a
// query of n joins. Following §2.4, it is calibrated by optimizing
// synthetic star-join queries — the worst case for a given join count —
// and the resulting table is stable for a given optimizer.
type Calibrator struct {
	mu    sync.Mutex
	cache map[int]float64
}

// NewCalibrator returns an empty calibration cache.
func NewCalibrator() *Calibrator {
	return &Calibrator{cache: make(map[int]float64)}
}

// OptTime returns the estimated optimization cost for a query with n
// joins (n+1 relations), in simulated units.
func (c *Calibrator) OptTime(n int) float64 {
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.cache[n]; ok {
		return v
	}
	v := calibrateStar(n)
	c.cache[n] = v
	return v
}

// calibrateStar optimizes a synthetic star join of n joins and returns
// its enumeration cost.
func calibrateStar(n int) float64 {
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(m), 16))
	// Fact table f(d0, d1, ..., dn-1); dimension tables di(k).
	factCols := make([]types.Column, n)
	for i := range factCols {
		factCols[i] = types.Column{Name: fmt.Sprintf("d%d", i), Kind: types.KindInt}
	}
	fact, err := cat.CreateTable("calib_fact", types.NewSchema(factCols...))
	if err != nil {
		panic("optimizer: calibration catalog: " + err.Error())
	}
	fact.Cardinality = 1e6
	fact.AvgTupleBytes = 100
	where := ""
	for i := 0; i < n; i++ {
		dim, err := cat.CreateTable(fmt.Sprintf("calib_dim%d", i), types.NewSchema(
			types.Column{Name: "k", Kind: types.KindInt, Key: true},
		))
		if err != nil {
			panic("optimizer: calibration catalog: " + err.Error())
		}
		dim.Cardinality = 1e3
		dim.AvgTupleBytes = 50
		if i > 0 {
			where += " and "
		}
		where += fmt.Sprintf("calib_fact.d%d = calib_dim%d.k", i, i)
	}
	src := "select calib_fact.d0 from calib_fact"
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(", calib_dim%d", i)
	}
	src += " where " + where
	stmt, err := sql.Parse(src)
	if err != nil {
		panic("optimizer: calibration query: " + err.Error())
	}
	q, err := Analyze(cat, stmt)
	if err != nil {
		panic("optimizer: calibration analyze: " + err.Error())
	}
	o := &Optimizer{Weights: storage.DefaultCostWeights()}
	if _, err := o.Optimize(q); err != nil {
		panic("optimizer: calibration optimize: " + err.Error())
	}
	return float64(o.PlansConsidered) * OptCostPerPlan
}
