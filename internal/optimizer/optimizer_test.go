package optimizer

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/histogram"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// fixture builds a small analyzed star schema:
//
//	orders(o_id key, o_cust, o_status, o_price)  20000 rows
//	cust(c_id key, c_nation)                      1000 rows
//	nation(n_id key, n_name)                        25 rows
type fixture struct {
	cat   *catalog.Catalog
	ctx   *exec.Ctx
	meter *storage.CostMeter
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	pool := storage.NewBufferPool(storage.NewDisk(m), 1024)
	cat := catalog.New(pool)

	orders, err := cat.CreateTable("orders", types.NewSchema(
		types.Column{Name: "o_id", Kind: types.KindInt, Key: true},
		types.Column{Name: "o_cust", Kind: types.KindInt},
		types.Column{Name: "o_status", Kind: types.KindInt},
		types.Column{Name: "o_price", Kind: types.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		orders.Insert(types.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 1000)),
			types.NewInt(int64(i % 10)),
			types.NewFloat(float64(i%500) + 0.5),
		})
	}
	cust, _ := cat.CreateTable("cust", types.NewSchema(
		types.Column{Name: "c_id", Kind: types.KindInt, Key: true},
		types.Column{Name: "c_nation", Kind: types.KindInt},
	))
	for i := 0; i < 1000; i++ {
		cust.Insert(types.Tuple{types.NewInt(int64(i)), types.NewInt(int64(i % 25))})
	}
	nation, _ := cat.CreateTable("nation", types.NewSchema(
		types.Column{Name: "n_id", Kind: types.KindInt, Key: true},
		types.Column{Name: "n_name", Kind: types.KindString},
	))
	for i := 0; i < 25; i++ {
		nation.Insert(types.Tuple{types.NewInt(int64(i)), types.NewString(strings.Repeat("n", 5))})
	}
	for _, name := range []string{"orders", "cust", "nation"} {
		if err := cat.Analyze(name, catalog.AnalyzeOptions{Family: histogram.MaxDiff}); err != nil {
			t.Fatal(err)
		}
	}
	cat.CreateIndex("cust", "c_id")
	cat.CreateIndex("nation", "n_id")
	return &fixture{
		cat:   cat,
		ctx:   &exec.Ctx{Pool: pool, Meter: m, Params: plan.Params{}},
		meter: m,
	}
}

func (f *fixture) optimize(t *testing.T, src string) *Result {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(f.cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	o := &Optimizer{Weights: storage.DefaultCostWeights(), MemBudget: 64 << 20}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAnalyzeClassifiesPredicates(t *testing.T) {
	f := newFixture(t)
	stmt, _ := sql.Parse(`select o_id from orders, cust
		where orders.o_cust = cust.c_id and o_status = 3 and o_price < c_nation`)
	q, err := Analyze(f.cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rels) != 2 {
		t.Fatalf("rels = %d", len(q.Rels))
	}
	kinds := []PredKind{q.Preds[0].Kind, q.Preds[1].Kind, q.Preds[2].Kind}
	if kinds[0] != PredEquiJoin || kinds[1] != PredLocal || kinds[2] != PredOther {
		t.Errorf("kinds = %v", kinds)
	}
	if len(q.Rels[0].LocalPreds) != 1 {
		t.Errorf("orders local preds = %d", len(q.Rels[0].LocalPreds))
	}
}

func TestAnalyzeErrors(t *testing.T) {
	f := newFixture(t)
	bad := []string{
		"select x from nosuch",
		"select nosuchcol from orders",
		"select o_id from orders, orders",
	}
	for _, src := range bad {
		stmt, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if _, err := Analyze(f.cat, stmt); err == nil {
			t.Errorf("Analyze(%q) succeeded", src)
		}
	}
}

func TestSingleTablePlan(t *testing.T) {
	f := newFixture(t)
	res := f.optimize(t, "select o_id, o_price from orders where o_status = 3")
	proj, ok := res.Root.(*plan.Project)
	if !ok {
		t.Fatalf("root = %T", res.Root)
	}
	scan, ok := proj.Input.(*plan.Scan)
	if !ok {
		t.Fatalf("input = %T", proj.Input)
	}
	if len(scan.Filters) != 1 {
		t.Errorf("filters not pushed down: %d", len(scan.Filters))
	}
	// o_status = 3 matches 1/10 of rows; MaxDiff histogram on 10
	// distinct values is exact.
	if e := scan.Est(); e.Rows < 1800 || e.Rows > 2200 {
		t.Errorf("estimated rows = %g, want ~2000", e.Rows)
	}
}

func TestJoinOrderPutsSmallSideFirst(t *testing.T) {
	f := newFixture(t)
	res := f.optimize(t, `select o_id from orders, cust
		where orders.o_cust = cust.c_id`)
	// cust (1000 rows) should be the leftmost (build) relation rather
	// than orders (20000 rows).
	first := res.Query.Rels[res.Order[0]].Binding
	if first != "cust" {
		t.Errorf("leftmost relation = %s, want cust (plan:\n%s)", first, plan.Format(res.Root))
	}
}

func TestThreeWayJoinExecutesCorrectly(t *testing.T) {
	f := newFixture(t)
	res := f.optimize(t, `select o_id, n_name from orders, cust, nation
		where orders.o_cust = cust.c_id and cust.c_nation = nation.n_id
		and o_status = 7 and o_id < 100`)
	op, err := exec.Build(res.Root, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	// o_id in [0,100) with o_id % 10 == 7: exactly 10 orders; each has
	// one customer and one nation.
	if len(rows) != 10 {
		t.Fatalf("join returned %d rows, want 10:\n%s", len(rows), plan.Format(res.Root))
	}
	for _, r := range rows {
		if r[0].Int()%10 != 7 {
			t.Errorf("row %v fails o_status filter", r)
		}
	}
}

func TestAggregatePlanAndExecution(t *testing.T) {
	f := newFixture(t)
	res := f.optimize(t, `select o_status, count(*) as cnt, avg(o_price) as ap
		from orders group by o_status order by o_status`)
	op, err := exec.Build(res.Root, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("groups = %d, want 10", len(rows))
	}
	for i, r := range rows {
		if r[0].Int() != int64(i) {
			t.Errorf("order by violated: row %d = %v", i, r)
		}
		if r[1].Int() != 2000 {
			t.Errorf("count for status %d = %v", i, r[1])
		}
	}
}

func TestDistinctAndLimit(t *testing.T) {
	f := newFixture(t)
	res := f.optimize(t, "select distinct o_status from orders limit 4")
	op, err := exec.Build(res.Root, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Errorf("distinct+limit returned %d rows", len(rows))
	}
}

func TestHostVarPredicateUsesDefaults(t *testing.T) {
	f := newFixture(t)
	res := f.optimize(t, "select o_id from orders where o_price < :cut")
	scan := res.Root.(*plan.Project).Input.(*plan.Scan)
	got := scan.Est().Rows / 20000
	if got != histogram.DefaultRangeSelectivity {
		t.Errorf("host-var selectivity = %g, want default %g", got, histogram.DefaultRangeSelectivity)
	}
}

func TestIndexJoinChosenForSelectiveOuter(t *testing.T) {
	f := newFixture(t)
	// One order (o_id = 5) probing cust: index join should beat
	// building a hash table over 1000 customers... or at least the
	// plan must contain one of the two and execute correctly.
	res := f.optimize(t, `select o_id, c_nation from orders, cust
		where orders.o_cust = cust.c_id and o_id = 5`)
	hasIndexJoin := false
	plan.Walk(res.Root, func(n plan.Node) {
		if _, ok := n.(*plan.IndexJoin); ok {
			hasIndexJoin = true
		}
	})
	if !hasIndexJoin {
		t.Errorf("expected indexed join for 1-row outer:\n%s", plan.Format(res.Root))
	}
	op, _ := exec.Build(res.Root, f.ctx)
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].Int() != 5%25 {
		t.Errorf("rows = %v", rows)
	}
}

func TestDisableIndexJoin(t *testing.T) {
	f := newFixture(t)
	stmt, _ := sql.Parse(`select o_id from orders, cust where orders.o_cust = cust.c_id and o_id = 5`)
	q, _ := Analyze(f.cat, stmt)
	o := &Optimizer{Weights: storage.DefaultCostWeights(), DisableIndexJoin: true}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	plan.Walk(res.Root, func(n plan.Node) {
		if _, ok := n.(*plan.IndexJoin); ok {
			t.Error("index join present despite DisableIndexJoin")
		}
	})
}

func TestNonEquiJoinViaResidualFilter(t *testing.T) {
	f := newFixture(t)
	res := f.optimize(t, `select o_id from orders, nation
		where orders.o_status < nation.n_id and o_id < 20`)
	hasFilter := false
	plan.Walk(res.Root, func(n plan.Node) {
		if _, ok := n.(*plan.Filter); ok {
			hasFilter = true
		}
	})
	if !hasFilter {
		t.Fatalf("no residual filter in plan:\n%s", plan.Format(res.Root))
	}
	op, _ := exec.Build(res.Root, f.ctx)
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	// o_id < 20: statuses 0..9, each joins nations with n_id > status:
	// sum over o_id in [0,20) of (25 - (o_id%10) - 1).
	want := 0
	for i := 0; i < 20; i++ {
		want += 25 - (i % 10) - 1
	}
	if len(rows) != want {
		t.Errorf("non-equi join rows = %d, want %d", len(rows), want)
	}
}

func TestMemoryDemandsAnnotated(t *testing.T) {
	f := newFixture(t)
	res := f.optimize(t, `select o_status, count(*) as c from orders, cust
		where orders.o_cust = cust.c_id group by o_status`)
	joins, aggs := 0, 0
	plan.Walk(res.Root, func(n plan.Node) {
		switch n.(type) {
		case *plan.HashJoin:
			joins++
			e := n.Est()
			if e.MemMax <= 0 || e.MemMin <= 0 || e.MemMin > e.MemMax || !e.MemStep {
				t.Errorf("hash join demands = %+v", *e)
			}
		case *plan.Agg:
			aggs++
			if e := n.Est(); e.MemMax <= 0 || e.MemStep {
				t.Errorf("agg demands = %+v", *e)
			}
		}
	})
	if joins+aggs == 0 {
		t.Error("no memory consumers found")
	}
}

func TestDPNeverWorseThanGreedyOrder(t *testing.T) {
	f := newFixture(t)
	res := f.optimize(t, `select o_id from orders, cust, nation
		where orders.o_cust = cust.c_id and cust.c_nation = nation.n_id`)
	// DP cost must be <= the cost of the plan that joins in FROM-clause
	// order. Rebuild that order manually through extend().
	stmt, _ := sql.Parse(`select o_id from orders, cust, nation
		where orders.o_cust = cust.c_id and cust.c_nation = nation.n_id`)
	q, _ := Analyze(f.cat, stmt)
	o := &Optimizer{Weights: storage.DefaultCostWeights(), MemBudget: 64 << 20}
	cm := planningModel(o.Weights, o.MemBudget, 0)
	cur, err := o.buildLeaf(q, 0, cm)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < 3; j++ {
		leaf, _ := o.buildLeaf(q, j, cm)
		next, err := o.extend(q, cur, leaf, j, cm)
		if err != nil || next == nil {
			t.Fatalf("extend %d: %v", j, err)
		}
		cur = next
	}
	if res.Root.Est().Cost > cur.cost*1.0001+cur.cost*0 {
		// Compare join-tree cost (res includes tops; compare against
		// the join entry's node cost instead).
	}
	var joinCost float64
	plan.Walk(res.Root, func(n plan.Node) {
		switch n.(type) {
		case *plan.HashJoin, *plan.IndexJoin:
			if n.Est().Cost > joinCost {
				joinCost = n.Est().Cost
			}
		}
	})
	if joinCost > cur.cost+1e-6 {
		t.Errorf("DP join cost %.1f exceeds naive order cost %.1f", joinCost, cur.cost)
	}
}

func TestPlansConsideredCounted(t *testing.T) {
	f := newFixture(t)
	res := f.optimize(t, `select o_id from orders, cust, nation
		where orders.o_cust = cust.c_id and cust.c_nation = nation.n_id`)
	if res.PlansConsidered < 4 {
		t.Errorf("PlansConsidered = %d", res.PlansConsidered)
	}
}

func TestCalibratorMonotone(t *testing.T) {
	c := NewCalibrator()
	t2, t4, t6 := c.OptTime(2), c.OptTime(4), c.OptTime(6)
	if !(t2 < t4 && t4 < t6) {
		t.Errorf("OptTime not monotone: %g, %g, %g", t2, t4, t6)
	}
	// Cached second call returns the same value.
	if c.OptTime(4) != t4 {
		t.Error("cache miss on repeat")
	}
}

func TestCartesianFallback(t *testing.T) {
	f := newFixture(t)
	res := f.optimize(t, "select o_id from orders, nation where o_id < 3")
	op, _ := exec.Build(res.Root, f.ctx)
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*25 {
		t.Errorf("cartesian rows = %d, want 75", len(rows))
	}
}
