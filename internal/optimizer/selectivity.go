package optimizer

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/histogram"
	"repro/internal/sql"
	"repro/internal/types"
)

// Selectivity estimation from catalog statistics. Host variables are
// unknown at optimization time, so predicates involving them fall back to
// the textbook defaults — precisely the estimation-error source the paper
// names (§1). Literal-only predicates consult the column's histogram.

// colStats fetches a relation column's catalog statistics, nil if
// absent, via the table's stats lock — committed writes may swap the
// column-stats pointers while a concurrent query plans.
func colStats(t *catalog.Table, col int) *catalog.ColumnStats {
	return t.ColStat(col)
}

// colHist returns the column's histogram if one exists.
func colHist(t *catalog.Table, col int) *histogram.Histogram {
	if cs := colStats(t, col); cs.HasHistogram() {
		return cs.Hist
	}
	return nil
}

// colNDV returns the column's distinct-value estimate, defaulting to a
// tenth of the cardinality when unknown.
func colNDV(t *catalog.Table, col int) float64 {
	if cs := colStats(t, col); cs != nil && cs.Distinct > 0 {
		return cs.Distinct
	}
	if card, _ := t.Stats(); card > 0 {
		return math.Max(1, card/10)
	}
	return 10
}

// litFloat extracts the float image of a literal operand, or NaN for
// host variables and non-literals.
func litFloat(e sql.Expr) float64 {
	lit, ok := e.(*sql.Literal)
	if !ok {
		return math.NaN()
	}
	if lit.Value.IsNull() {
		return math.NaN()
	}
	return lit.Value.AsFloat()
}

// litShift evaluates literal arithmetic like "date '1996-03-01' + 90" at
// optimization time. Anything non-constant yields NaN.
func litShift(e sql.Expr) float64 {
	switch x := e.(type) {
	case *sql.Literal:
		return litFloat(x)
	case *sql.BinaryExpr:
		l, r := litShift(x.Left), litShift(x.Right)
		if math.IsNaN(l) || math.IsNaN(r) {
			return math.NaN()
		}
		switch x.Op {
		case '+':
			return l + r
		case '-':
			return l - r
		case '*':
			return l * r
		case '/':
			if r == 0 {
				return math.NaN()
			}
			return l / r
		}
	}
	return math.NaN()
}

// localSelectivity estimates the fraction of rel's rows a single local
// predicate keeps. hostVarSel, when > 0, overrides the default guesses
// for predicates whose operands involve host variables (the parametric
// plan scenarios); 0 keeps the textbook defaults.
func localSelectivity(rel *Rel, pr *PredRef, hostVarSel float64) float64 {
	if hostVarSel > 0 && predHasHostVar(pr.AST) {
		return clamp01(hostVarSel)
	}
	return localSelectivityLiteral(rel, pr)
}

// predHasHostVar reports whether any operand of the predicate contains a
// host-variable reference.
func predHasHostVar(p sql.Predicate) bool {
	var exprs []sql.Expr
	switch x := p.(type) {
	case *sql.ComparePred:
		exprs = []sql.Expr{x.Left, x.Right}
	case *sql.BetweenPred:
		exprs = []sql.Expr{x.Expr, x.Lo, x.Hi}
	case *sql.InPred:
		exprs = append([]sql.Expr{x.Expr}, x.List...)
	case *sql.LikePred:
		exprs = []sql.Expr{x.Expr}
	}
	var has func(e sql.Expr) bool
	has = func(e sql.Expr) bool {
		switch x := e.(type) {
		case *sql.HostVar:
			return true
		case *sql.BinaryExpr:
			return has(x.Left) || has(x.Right)
		case *sql.AggExpr:
			return x.Arg != nil && has(x.Arg)
		}
		return false
	}
	for _, e := range exprs {
		if has(e) {
			return true
		}
	}
	return false
}

// localSelectivityLiteral estimates selectivity from literals and
// catalog statistics.
func localSelectivityLiteral(rel *Rel, pr *PredRef) float64 {
	t := rel.Table
	switch p := pr.AST.(type) {
	case *sql.ComparePred:
		// Identify the column side and the constant side.
		colRef, colOK := p.Left.(*sql.ColumnRef)
		val := litShift(p.Right)
		op := p.Op
		if !colOK {
			if cr, ok := p.Right.(*sql.ColumnRef); ok {
				colRef, colOK = cr, true
				val = litShift(p.Left)
				// Flip the operator: "5 < col" is "col > 5".
				switch p.Op {
				case sql.OpLt:
					op = sql.OpGt
				case sql.OpLe:
					op = sql.OpGe
				case sql.OpGt:
					op = sql.OpLt
				case sql.OpGe:
					op = sql.OpLe
				}
			}
		}
		if !colOK {
			return histogram.DefaultRangeSelectivity
		}
		col, err := rel.Schema.Resolve(colRef.Table, colRef.Name)
		if err != nil {
			return histogram.DefaultRangeSelectivity
		}
		h := colHist(t, col)
		if math.IsNaN(val) {
			// Host variable or complex operand: defaults.
			if op == sql.OpEq {
				return histogram.DefaultEqSelectivity
			}
			return histogram.DefaultRangeSelectivity
		}
		switch op {
		case sql.OpEq:
			if h != nil {
				return h.EstimateEq(val)
			}
			return 1 / colNDV(t, col)
		case sql.OpNe:
			if h != nil {
				return 1 - h.EstimateEq(val)
			}
			return 1 - 1/colNDV(t, col)
		case sql.OpLt, sql.OpLe:
			if h != nil {
				return h.EstimateRange(math.NaN(), val)
			}
			return rangeFromMinMax(t, col, math.Inf(-1), val)
		case sql.OpGt, sql.OpGe:
			if h != nil {
				return h.EstimateRange(val, math.NaN())
			}
			return rangeFromMinMax(t, col, val, math.Inf(1))
		}
		return histogram.DefaultRangeSelectivity

	case *sql.BetweenPred:
		colRef, ok := p.Expr.(*sql.ColumnRef)
		if !ok {
			return histogram.DefaultRangeSelectivity
		}
		col, err := rel.Schema.Resolve(colRef.Table, colRef.Name)
		if err != nil {
			return histogram.DefaultRangeSelectivity
		}
		lo, hi := litShift(p.Lo), litShift(p.Hi)
		if math.IsNaN(lo) || math.IsNaN(hi) {
			return histogram.DefaultRangeSelectivity
		}
		if h := colHist(t, col); h != nil {
			return h.EstimateRange(lo, hi)
		}
		return rangeFromMinMax(t, col, lo, hi)

	case *sql.InPred:
		colRef, ok := p.Expr.(*sql.ColumnRef)
		if !ok {
			return histogram.DefaultRangeSelectivity
		}
		col, err := rel.Schema.Resolve(colRef.Table, colRef.Name)
		if err != nil {
			return histogram.DefaultRangeSelectivity
		}
		h := colHist(t, col)
		sel := 0.0
		for _, item := range p.List {
			v := litShift(item)
			if math.IsNaN(v) {
				sel += histogram.DefaultEqSelectivity
			} else if h != nil {
				sel += h.EstimateEq(v)
			} else {
				sel += 1 / colNDV(t, col)
			}
		}
		return clamp01(sel)

	case *sql.LikePred:
		// Prefix patterns are moderately selective; leading-% patterns
		// are near-opaque. These are the classic magic numbers.
		if len(p.Pattern) > 0 && p.Pattern[0] == '%' {
			return 0.25
		}
		return 0.05
	}
	return histogram.DefaultRangeSelectivity
}

// LocalSelectivity estimates the fraction of relation relIdx's rows the
// predicate keeps, from catalog statistics. The parametric choose-plan
// step calls it with host variables already substituted by their bound
// literal values.
func (q *Query) LocalSelectivity(relIdx int, p sql.Predicate) float64 {
	if relIdx < 0 || relIdx >= len(q.Rels) {
		return histogram.DefaultRangeSelectivity
	}
	return localSelectivityLiteral(&q.Rels[relIdx], &PredRef{AST: p})
}

// rangeFromMinMax interpolates a range selectivity from the column's
// min/max when no histogram exists.
func rangeFromMinMax(t *catalog.Table, col int, lo, hi float64) float64 {
	cs := colStats(t, col)
	if cs == nil || cs.Min.IsNull() || cs.Max.IsNull() {
		return histogram.DefaultRangeSelectivity
	}
	mn, mx := cs.Min.AsFloat(), cs.Max.AsFloat()
	if mx <= mn {
		return histogram.DefaultRangeSelectivity
	}
	from := math.Max(lo, mn)
	to := math.Min(hi, mx)
	if to < from {
		return 0
	}
	return clamp01((to - from) / (mx - mn))
}

// relSelectivity multiplies the selectivities of a relation's local
// predicates under the usual independence assumption — the assumption
// that correlated predicates break, which is one of the paper's error
// sources (§2.4 footnote 2).
func relSelectivity(rel *Rel, hostVarSel float64) float64 {
	sel := 1.0
	for _, pr := range rel.LocalPreds {
		sel *= localSelectivity(rel, pr, hostVarSel)
	}
	return clamp01(sel)
}

// joinSelectivity estimates the fraction of the cross product an
// equi-join keeps, preferring aligned base-table histograms and falling
// back to 1/max(V1,V2).
func joinSelectivity(q *Query, pr *PredRef) float64 {
	lt := q.Rels[pr.LeftRel].Table
	rt := q.Rels[pr.RightRel].Table
	lh, rh := colHist(lt, pr.LeftCol), colHist(rt, pr.RightCol)
	if lh != nil && rh != nil {
		return lh.EstimateJoin(rh)
	}
	return clamp01(1 / math.Max(colNDV(lt, pr.LeftCol), colNDV(rt, pr.RightCol)))
}

func clamp01(f float64) float64 {
	if math.IsNaN(f) || f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// valueKindOf returns a representative literal kind for default tuple
// width estimation.
func valueWidth(k types.Kind) float64 {
	if k == types.KindString {
		return 24
	}
	return 9
}
