// Package optimizer implements a System-R style query optimizer: bottom-up
// dynamic-programming join enumeration over left-deep trees, a cost model
// expressed in the simulator's cost units (so optimizer estimates and
// measured execution are directly comparable), histogram-based
// selectivity estimation, and per-operator memory-demand annotation.
//
// Every plan it produces is an annotated query execution plan in the
// paper's sense (§2.1): each node carries the optimizer's estimates of
// output cardinality, size, cost, and memory demands, which is what the
// run-time statistics are later compared against.
package optimizer

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/types"
)

// Rel is one FROM-clause relation, with the predicates that touch only
// it pushed down.
type Rel struct {
	Binding string
	Table   *catalog.Table
	// Schema is the table schema re-qualified with the binding name, so
	// alias references resolve.
	Schema *types.Schema
	// LocalPreds reference only this relation.
	LocalPreds []*PredRef
}

// PredKind classifies a conjunct.
type PredKind uint8

// Predicate classes, in the order the optimizer cares about them.
const (
	PredLocal    PredKind = iota // references a single relation
	PredEquiJoin                 // rel1.col = rel2.col
	PredOther                    // any other cross-relation predicate
)

// PredRef is one analyzed WHERE conjunct.
type PredRef struct {
	AST  sql.Predicate
	Kind PredKind
	// Rels are the indexes (into Query.Rels) of referenced relations.
	Rels []int
	// For PredLocal: the referenced columns of the single relation.
	LocalCols []int
	// For PredEquiJoin: the two endpoints.
	LeftRel, LeftCol   int
	RightRel, RightCol int
}

// RelMask returns the bitmask of relations the predicate references.
func (p *PredRef) RelMask() uint32 {
	var m uint32
	for _, r := range p.Rels {
		m |= 1 << uint(r)
	}
	return m
}

// Query is the analyzed form the DP enumerator works from.
type Query struct {
	Stmt  *sql.SelectStmt
	Rels  []Rel
	Preds []*PredRef
	// HasAggregate reports whether the select list contains aggregates
	// or the statement has GROUP BY / DISTINCT.
	HasAggregate bool
}

// Analyze resolves a parsed statement against the catalog and classifies
// its predicates.
func Analyze(cat *catalog.Catalog, stmt *sql.SelectStmt) (*Query, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("optimizer: query has no FROM clause")
	}
	if len(stmt.From) > 16 {
		return nil, fmt.Errorf("optimizer: more than 16 relations")
	}
	q := &Query{Stmt: stmt}
	seen := map[string]bool{}
	for _, ref := range stmt.From {
		binding := strings.ToLower(ref.Binding())
		if seen[binding] {
			return nil, fmt.Errorf("optimizer: duplicate relation binding %q", binding)
		}
		seen[binding] = true
		tbl, err := cat.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		q.Rels = append(q.Rels, Rel{
			Binding: binding,
			Table:   tbl,
			Schema:  requalify(tbl.Schema, binding),
		})
	}
	for _, p := range stmt.Where {
		pr, err := q.classify(p)
		if err != nil {
			return nil, err
		}
		q.Preds = append(q.Preds, pr)
		if pr.Kind == PredLocal {
			q.Rels[pr.Rels[0]].LocalPreds = append(q.Rels[pr.Rels[0]].LocalPreds, pr)
		}
	}
	if expanded, err := expandStars(stmt, q.Rels); err != nil {
		return nil, err
	} else if expanded != nil {
		// Planning proceeds on a shallow clone with the concrete select
		// list; the caller's statement (and the plan-cache key derived
		// from its SQL) keeps the star.
		stmt = expanded
		q.Stmt = expanded
	}
	q.HasAggregate = len(stmt.GroupBy) > 0 || stmt.Distinct
	var sink [][2]int
	for _, item := range stmt.Select {
		if _, ok := item.Expr.(*sql.AggExpr); ok {
			q.HasAggregate = true
		}
		if err := q.exprCols(item.Expr, &sink); err != nil {
			return nil, err
		}
	}
	for _, g := range stmt.GroupBy {
		if err := q.exprCols(g, &sink); err != nil {
			return nil, err
		}
	}
	// ORDER BY may reference select-list aliases, so unknown columns
	// there are checked at plan-build time instead.
	return q, nil
}

// expandStars replaces `*` / `t.*` select items with explicit column
// references over the FROM relations, in relation order. It returns nil
// when the statement has no star (the common case pays one scan of the
// select list), or a shallow clone with the expanded list.
func expandStars(stmt *sql.SelectStmt, rels []Rel) (*sql.SelectStmt, error) {
	hasStar := false
	for _, item := range stmt.Select {
		if _, ok := item.Expr.(*sql.Star); ok {
			hasStar = true
			break
		}
	}
	if !hasStar {
		return nil, nil
	}
	var out []sql.SelectItem
	for _, item := range stmt.Select {
		star, ok := item.Expr.(*sql.Star)
		if !ok {
			out = append(out, item)
			continue
		}
		matched := false
		for i := range rels {
			r := &rels[i]
			if star.Table != "" && !strings.EqualFold(star.Table, r.Binding) {
				continue
			}
			matched = true
			for _, col := range r.Schema.Columns {
				out = append(out, sql.SelectItem{
					Expr: &sql.ColumnRef{Table: r.Binding, Name: col.Name},
				})
			}
		}
		if !matched {
			return nil, fmt.Errorf("optimizer: %s does not match any FROM relation", star.SQL())
		}
	}
	clone := *stmt
	clone.Select = out
	return &clone, nil
}

// requalify clones a schema with every column's table qualifier replaced
// by the binding name.
func requalify(s *types.Schema, binding string) *types.Schema {
	cols := make([]types.Column, s.Len())
	for i, c := range s.Columns {
		c.Table = binding
		cols[i] = c
	}
	return types.NewSchema(cols...)
}

// Owner resolves a column reference to its owning relation index and
// column ordinal. The re-optimizer's remainder-query generator uses it
// to decide which references must be redirected at the temp table.
func (q *Query) Owner(ref *sql.ColumnRef) (rel, col int, err error) {
	return q.resolveColumn(ref)
}

// resolveColumn finds which relation and column a reference names.
func (q *Query) resolveColumn(ref *sql.ColumnRef) (rel, col int, err error) {
	rel, col = -1, -1
	for ri := range q.Rels {
		ci, rerr := q.Rels[ri].Schema.Resolve(ref.Table, ref.Name)
		if rerr != nil {
			continue
		}
		if rel >= 0 {
			return -1, -1, fmt.Errorf("optimizer: ambiguous column %q", ref.SQL())
		}
		rel, col = ri, ci
	}
	if rel < 0 {
		return -1, -1, fmt.Errorf("optimizer: unknown column %q", ref.SQL())
	}
	return rel, col, nil
}

// exprCols walks an expression collecting every column reference as
// (rel, col) pairs.
func (q *Query) exprCols(e sql.Expr, out *[][2]int) error {
	switch x := e.(type) {
	case *sql.ColumnRef:
		rel, col, err := q.resolveColumn(x)
		if err != nil {
			return err
		}
		*out = append(*out, [2]int{rel, col})
	case *sql.BinaryExpr:
		if err := q.exprCols(x.Left, out); err != nil {
			return err
		}
		return q.exprCols(x.Right, out)
	case *sql.AggExpr:
		if x.Arg != nil {
			return q.exprCols(x.Arg, out)
		}
	case *sql.Literal, *sql.HostVar:
	default:
		return fmt.Errorf("optimizer: unsupported expression %T", e)
	}
	return nil
}

// classify determines a conjunct's kind and endpoints.
func (q *Query) classify(p sql.Predicate) (*PredRef, error) {
	var cols [][2]int
	collect := func(exprs ...sql.Expr) error {
		for _, e := range exprs {
			if err := q.exprCols(e, &cols); err != nil {
				return err
			}
		}
		return nil
	}
	pr := &PredRef{AST: p}
	switch x := p.(type) {
	case *sql.ComparePred:
		if err := collect(x.Left, x.Right); err != nil {
			return nil, err
		}
	case *sql.BetweenPred:
		if err := collect(x.Expr, x.Lo, x.Hi); err != nil {
			return nil, err
		}
	case *sql.InPred:
		if err := collect(append([]sql.Expr{x.Expr}, x.List...)...); err != nil {
			return nil, err
		}
	case *sql.LikePred:
		if err := collect(x.Expr); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("optimizer: unsupported predicate %T", p)
	}

	relSet := map[int]bool{}
	for _, rc := range cols {
		relSet[rc[0]] = true
	}
	for r := range relSet {
		pr.Rels = append(pr.Rels, r)
	}
	sortInts(pr.Rels)

	switch len(relSet) {
	case 0:
		// Constant predicate; treat as local to the first relation.
		pr.Kind = PredLocal
		pr.Rels = []int{0}
	case 1:
		pr.Kind = PredLocal
		for _, rc := range cols {
			pr.LocalCols = append(pr.LocalCols, rc[1])
		}
	case 2:
		pr.Kind = PredOther
		// An equi-join is a ComparePred "col = col" across relations.
		if cmp, ok := p.(*sql.ComparePred); ok && cmp.Op == sql.OpEq {
			lref, lok := cmp.Left.(*sql.ColumnRef)
			rref, rok := cmp.Right.(*sql.ColumnRef)
			if lok && rok {
				lr, lc, _ := q.resolveColumn(lref)
				rr, rc, _ := q.resolveColumn(rref)
				if lr >= 0 && rr >= 0 && lr != rr {
					pr.Kind = PredEquiJoin
					pr.LeftRel, pr.LeftCol = lr, lc
					pr.RightRel, pr.RightCol = rr, rc
				}
			}
		}
	default:
		return nil, fmt.Errorf("optimizer: predicate touches %d relations: %s", len(relSet), p.SQL())
	}
	return pr, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
