package optimizer

import (
	"math"

	"repro/internal/storage"
)

// The cost model mirrors the executor's charging discipline so that
// optimizer estimates and measured execution are in the same units:
//
//	seq scan      pages × PageRead + rows × TupleCPU
//	hash join     (build + probe + out) × TupleCPU,
//	              plus (buildPages+probePages) × (PageRead+PageWrite)
//	              when the build exceeds its memory grant (the Grace
//	              partitioning pass)
//	indexed join  outer × (1 index read + matches × heap reads) + CPU
//	aggregate     (in + groups) × TupleCPU, plus a spill pass when the
//	              group table exceeds its grant
//	sort          2 × rows × TupleCPU, plus a run write+read pass
//	collector     rows × StatCPU (charged by the SCIA when inserting)
//
// Memory demands follow the executor's constants: a hash join needs
// buildFudge × buildBytes to run in one pass.

// buildFudge must match exec.buildFudge.
const buildFudge = 1.2

// minGrantBytes is the floor memory every consumer can count on (the
// paper's example uses 250 KB as a hash join's minimum).
const minGrantBytes = 256 * 1024

// minDemandBytes floors every operator's declared maximum demand. A
// cardinality under-estimate of "zero rows" must not translate into a
// one-byte grant whose first real tuple triggers a pathological spill.
const minDemandBytes = 64 * 1024

// aggStateBytes estimates per-group state: key plus sum/count/min/max
// per aggregate plus bookkeeping, matching the executor's accounting.
func aggStateBytes(keyBytes float64, nAggs int) float64 {
	return keyBytes + float64(4*8*nAggs) + 48
}

// costModel computes node estimates. grantFor lets the same formulas
// serve two callers: at planning time grants are the optimistic
// min(demand, budget); at re-costing time the Memory Manager's actual
// grants are read back from the plan.
type costModel struct {
	w      storage.CostWeights
	budget float64
	// poolPages sizes the shared buffer pool for cache-aware I/O
	// estimates (index-join heap fetches re-touch pages); 0 means
	// assume every fetch misses.
	poolPages float64
	grantFor  func(memMax, actualGrant float64) float64
}

// planningModel assumes every operator can get min(demand, budget) — the
// optimistic assumption whose failure (when several operators compete)
// produces the paper's Figure 3 sub-optimality.
func planningModel(w storage.CostWeights, budget, poolPages float64) *costModel {
	return &costModel{
		w:         w,
		budget:    budget,
		poolPages: poolPages,
		grantFor: func(memMax, _ float64) float64 {
			if budget <= 0 {
				return memMax
			}
			return math.Min(memMax, budget)
		},
	}
}

func pagesOf(bytes float64) float64 {
	return math.Max(1, math.Ceil(bytes/float64(storage.PageSize)))
}

// scanCost returns the cost of scanning a table and filtering it.
func (c *costModel) scanCost(pages, rows float64) float64 {
	return pages*c.w.PageRead + rows*c.w.TupleCPU
}

// collectorCost is the CPU the statistics collector adds per input row.
func (c *costModel) collectorCost(rows float64) float64 {
	return rows * c.w.StatCPU
}

// hashJoinSelf returns the join's own cost (excluding children) and
// whether it is expected to spill under the given grant.
func (c *costModel) hashJoinSelf(buildRows, buildBytes, probeRows, probeBytes, outRows, grant float64) (cost float64, spills bool) {
	// Build tuples cost double: a hash-table insert (allocate, copy,
	// chain) is heavier than a probe. The executor charges the same,
	// and the asymmetry is what steers the DP toward small build sides.
	cost = (2*buildRows + probeRows + outRows) * c.w.TupleCPU
	need := buildBytes * buildFudge
	if grant > 0 && need > grant {
		spills = true
		ioPages := pagesOf(buildBytes) + pagesOf(probeBytes)
		cost += ioPages * (c.w.PageRead + c.w.PageWrite)
	}
	return cost, spills
}

// indexJoinSelf returns the indexed nested-loops join's own cost.
// matchesPerProbe is the expected inner matches per outer tuple;
// tablePages and tableRows size the inner table; clustering is the
// index's clustering factor. Heap fetches are cache-aware: clustered
// access touches about one page per page-worth of matching rows, while
// random access misses until the pool holds the table's resident
// fraction.
func (c *costModel) indexJoinSelf(outerRows, matchesPerProbe, outRows, tablePages, tableRows, clustering float64) float64 {
	probes := outerRows * c.w.PageRead // one index-leaf read per probe
	fetches := outerRows * matchesPerProbe

	random := fetches
	if tablePages > 0 && fetches > tablePages {
		resident := tablePages
		if c.poolPages > 0 && c.poolPages < tablePages {
			resident = c.poolPages
		}
		missRatio := 1 - resident/tablePages
		random = tablePages + (fetches-tablePages)*missRatio
	}
	clustered := random
	if tableRows > 0 && tablePages > 0 {
		clustered = math.Min(random, fetches*tablePages/tableRows+1)
	}
	misses := clustering*clustered + (1-clustering)*random

	cpu := (outerRows + outRows) * c.w.TupleCPU
	return probes + misses*c.w.PageRead + cpu
}

// aggSelf returns the aggregation's own cost under the given grant.
func (c *costModel) aggSelf(inRows, groups, stateBytes, grant float64) float64 {
	cost := (inRows + groups) * c.w.TupleCPU
	need := groups * stateBytes
	if grant > 0 && need > grant {
		pages := pagesOf(need)
		cost += pages * (c.w.PageRead + c.w.PageWrite)
	}
	return cost
}

// sortSelf returns the sort's own cost under the given grant.
func (c *costModel) sortSelf(rows, bytes, grant float64) float64 {
	cost := 2 * rows * c.w.TupleCPU
	if grant > 0 && bytes > grant {
		pages := pagesOf(bytes)
		cost += pages * (c.w.PageRead + c.w.PageWrite)
	}
	return cost
}

// joinMemDemands returns a hash join's (min, max) memory demand.
func joinMemDemands(buildBytes float64) (mn, mx float64) {
	mx = math.Max(minDemandBytes, buildBytes*buildFudge)
	mn = math.Min(mx, minGrantBytes)
	return mn, mx
}

// stepMemDemands returns (min, max) for incremental consumers.
func stepMemDemands(needBytes float64) (mn, mx float64) {
	mx = math.Max(minDemandBytes, needBytes)
	mn = math.Min(mx, minGrantBytes)
	return mn, mx
}
