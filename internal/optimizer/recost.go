package optimizer

import (
	"repro/internal/storage"
)

// Exported cost formulas for the re-optimizing dispatcher, which must
// compute the paper's T_cur-plan,improved: the expected cost of the
// not-yet-executed portion of the current plan under observed (rather
// than estimated) statistics. The dispatcher walks the remaining plan
// nodes with scaled cardinalities and prices each with these functions,
// which are exactly the formulas the optimizer itself planned with.

// HashJoinSelfCost prices a hash join's own work (build + probe + output
// CPU, plus the Grace partitioning pass when the build exceeds grant).
func HashJoinSelfCost(w storage.CostWeights, buildRows, buildBytes, probeRows, probeBytes, outRows, grant float64) float64 {
	cm := &costModel{w: w}
	cost, _ := cm.hashJoinSelf(buildRows, buildBytes, probeRows, probeBytes, outRows, grant)
	return cost
}

// HashJoinSpills reports whether a hash join with the given build size
// and grant runs in more than one pass.
func HashJoinSpills(buildBytes, grant float64) bool {
	return grant > 0 && buildBytes*buildFudge > grant
}

// HashJoinProbeCost prices only the probe phase (for a join whose build
// has already executed).
func HashJoinProbeCost(w storage.CostWeights, probeRows, outRows float64) float64 {
	return (probeRows + outRows) * w.TupleCPU
}

// IndexJoinSelfCost prices an indexed nested-loops join's own work with
// cache- and clustering-aware heap-fetch I/O.
func IndexJoinSelfCost(w storage.CostWeights, outerRows, matchesPerProbe, outRows, tablePages, tableRows, clustering, poolPages float64) float64 {
	cm := &costModel{w: w, poolPages: poolPages}
	return cm.indexJoinSelf(outerRows, matchesPerProbe, outRows, tablePages, tableRows, clustering)
}

// AggSelfCost prices a hash aggregation's own work.
func AggSelfCost(w storage.CostWeights, inRows, groups, stateBytes, grant float64) float64 {
	cm := &costModel{w: w}
	return cm.aggSelf(inRows, groups, stateBytes, grant)
}

// SortSelfCost prices an external sort's own work.
func SortSelfCost(w storage.CostWeights, rows, bytes, grant float64) float64 {
	cm := &costModel{w: w}
	return cm.sortSelf(rows, bytes, grant)
}

// JoinMemDemands exposes the hash join memory-demand formula so the
// dispatcher can refresh MemMin/MemMax from improved build-size
// estimates before re-invoking the Memory Manager (§2.3).
func JoinMemDemands(buildBytes float64) (mn, mx float64) {
	return joinMemDemands(buildBytes)
}

// StepMemDemands exposes the incremental-consumer demand formula
// (aggregates, sorts).
func StepMemDemands(needBytes float64) (mn, mx float64) {
	return stepMemDemands(needBytes)
}

// AggStateBytes exposes the per-group state-size estimate.
func AggStateBytes(keyBytes float64, nAggs int) float64 {
	return aggStateBytes(keyBytes, nAggs)
}
