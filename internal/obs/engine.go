package obs

// EngineMetrics bundles the re-optimization engine's counters, updated
// once per query by the session layer. The names instrument the
// paper's mechanisms directly: collectors (§2.2), memory re-allocation
// (§2.3), plan switches (§2.4), and the SCIA's μ overhead budget
// (§2.5) — see DESIGN.md's observability section for the full mapping.
type EngineMetrics struct {
	Queries     *Counter
	QueryErrors *Counter
	// QueriesCancelled counts queries aborted by user cancel or
	// deadline (a subset of QueryErrors).
	QueriesCancelled *Counter

	CollectorsInserted *Counter
	Observations       *Counter
	MemReallocs        *Counter
	ReoptConsidered    *Counter
	PlanSwitches       *Counter

	// StatCostUnits / QueryCostUnits make the collector overhead
	// fraction computable over any scrape window as the ratio of the
	// two counters; OverheadFraction is the last query's instantaneous
	// value, to compare against the configured μ (MuBudget).
	StatCostUnits    *Counter
	QueryCostUnits   *Counter
	OverheadFraction *Gauge
	MuBudget         *Gauge

	QueryCost *Histogram

	// QueryDuration and BrokerWait are real wall-clock latency
	// histograms (seconds): p99 end-to-end latency and the admission
	// queue's contribution to it, which the cost-unit metrics above
	// cannot show. BrokerWaitTenant splits the admission wait by
	// tenant, so one tenant's queueing is attributable under QoS load.
	QueryDuration    *Histogram
	BrokerWait       *Histogram
	BrokerWaitTenant *HistogramVec

	// Preemptions counts checkpoint preemptions honored: a running
	// query released its lease at a re-optimization checkpoint so a
	// higher-priority waiter could run, then re-queued.
	Preemptions *Counter

	// TraceDropped counts lifecycle events the per-query trace rings
	// overwrote — nonzero means trace dumps are truncated.
	TraceDropped *Counter

	// DML counters: row versions written by committed transactions,
	// transaction outcomes, and first-writer-wins conflicts (each
	// conflict also aborts a transaction).
	RowsWritten    *Counter
	TxnsCommitted  *Counter
	TxnsAborted    *Counter
	WriteConflicts *Counter
}

// NewEngineMetrics registers the engine metric set on a registry.
func NewEngineMetrics(r *Registry) *EngineMetrics {
	return &EngineMetrics{
		Queries:          r.NewCounter("mqr_queries_total", "Queries executed"),
		QueryErrors:      r.NewCounter("mqr_query_errors_total", "Queries that returned an error"),
		QueriesCancelled: r.NewCounter("mqr_queries_cancelled_total", "Queries aborted by cancellation or deadline"),

		CollectorsInserted: r.NewCounter("reopt_collectors_inserted_total", "Statistics collectors inserted by the SCIA (sec 2.2/2.5)"),
		Observations:       r.NewCounter("reopt_observations_total", "Collector reports delivered to the dispatcher (sec 2.2)"),
		MemReallocs:        r.NewCounter("reopt_memory_reallocs_total", "Mid-query memory re-allocations (sec 2.3)"),
		ReoptConsidered:    r.NewCounter("reopt_considered_total", "Checkpoints where Equations 1 and 2 were evaluated (sec 2.4)"),
		PlanSwitches:       r.NewCounter("reopt_plan_switches_total", "Mid-query plan switches taken (sec 2.4)"),

		StatCostUnits:    r.NewCounter("collector_stat_cost_units_total", "Simulated cost charged to statistics collection"),
		QueryCostUnits:   r.NewCounter("mqr_query_cost_units_total", "Simulated cost charged to query execution"),
		OverheadFraction: r.NewGauge("collector_overhead_fraction", "Last query's statistics-collection share of total cost (budgeted by mu, sec 2.5)"),
		MuBudget:         r.NewGauge("reopt_mu_budget", "Configured mu: maximum acceptable collection overhead fraction"),

		QueryCost: r.NewHistogram("mqr_query_cost_units", "Per-query simulated execution cost",
			[]float64{100, 1000, 10000, 100000, 1e6, 1e7}),

		QueryDuration: r.NewHistogram("mqr_query_duration_seconds", "Per-query wall-clock latency",
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}),
		BrokerWait: r.NewHistogram("mqr_broker_wait_seconds", "Wall-clock time spent queued for memory admission",
			[]float64{0.0001, 0.001, 0.01, 0.1, 1, 10}),
		BrokerWaitTenant: r.NewHistogramVec("mqr_broker_wait_tenant_seconds",
			"Wall-clock time spent queued for memory admission, by tenant", "tenant",
			[]float64{0.0001, 0.001, 0.01, 0.1, 1, 10}),

		Preemptions: r.NewCounter("mqr_preemptions_total",
			"Queries suspended at a re-optimization checkpoint by priority preemption"),

		TraceDropped: r.NewCounter("mqr_trace_dropped_total", "Trace events overwritten by full ring buffers"),

		RowsWritten:    r.NewCounter("mqr_rows_written_total", "Row versions written by committed transactions (update = delete + insert)"),
		TxnsCommitted:  r.NewCounter("mqr_txns_committed_total", "Write transactions committed"),
		TxnsAborted:    r.NewCounter("mqr_txns_aborted_total", "Write transactions aborted (rollback, error, or conflict)"),
		WriteConflicts: r.NewCounter("mqr_write_conflicts_total", "First-writer-wins conflicts (losing transaction aborted)"),
	}
}

// RecordQuery folds one successful query's dispatcher statistics into
// the counters. statCost is the simulated cost charged to statistics
// collection during the query's window; cost is the query's total.
func (em *EngineMetrics) RecordQuery(cost, statCost, mu float64,
	collectors, observations, reallocs, considered, switches int) {
	em.Queries.Inc()
	em.CollectorsInserted.Add(float64(collectors))
	em.Observations.Add(float64(observations))
	em.MemReallocs.Add(float64(reallocs))
	em.ReoptConsidered.Add(float64(considered))
	em.PlanSwitches.Add(float64(switches))
	em.StatCostUnits.Add(statCost)
	em.QueryCostUnits.Add(cost)
	if cost > 0 {
		em.OverheadFraction.Set(statCost / cost)
	}
	em.MuBudget.Set(mu)
	em.QueryCost.Observe(cost)
}
