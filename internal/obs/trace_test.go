package obs

import "testing"

func TestNilTraceIsDisabledNoOp(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	tr.Emit("plan", "ignored", "k", 1) // must not panic
	if tr.Len() != 0 || tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil trace is not empty")
	}
}

func TestTraceRecordsAttrs(t *testing.T) {
	tr := NewTrace(8)
	tr.Emit("checkpoint", "step 0", "est_rows", 100.0, "obs_rows", 250.0)
	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("events = %d, want 1", len(ev))
	}
	if ev[0].Kind != "checkpoint" || ev[0].Msg != "step 0" {
		t.Fatalf("bad event %+v", ev[0])
	}
	if ev[0].Attrs["obs_rows"] != 250.0 {
		t.Fatalf("attrs = %v", ev[0].Attrs)
	}
}

func TestTraceRingDropsOldest(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Emit("k", "m")
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	ev := tr.Events()
	if ev[0].Seq != 2 || ev[2].Seq != 4 {
		t.Fatalf("kept wrong window: %+v", ev)
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := NewTrace(0)
	for i := 0; i < DefaultTraceCap+10; i++ {
		tr.Emit("k", "m")
	}
	if tr.Len() != DefaultTraceCap {
		t.Fatalf("len = %d, want %d", tr.Len(), DefaultTraceCap)
	}
}
