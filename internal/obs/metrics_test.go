package obs

import (
	"expvar"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // dropped: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	g := r.NewGauge("g", "a gauge")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %g, want 6", got)
	}
	f := r.NewGaugeFunc("f", "func gauge", func() float64 { return 7 })
	if got := f.Value(); got != 7 {
		t.Fatalf("func gauge = %g, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "hist", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 106.5 {
		t.Fatalf("sum = %g, want 106.5", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_bucket{le="1"} 2`, // 0.5 and 1 (le is inclusive)
		`h_bucket{le="10"} 3`,
		`h_bucket{le="+Inf"} 4`,
		"h_sum 106.5",
		"h_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reopt_plan_switches_total", "Plan switches")
	c.Add(3)
	r.NewGaugeFunc("broker_queue_depth", "Queued queries", func() float64 { return 2 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP reopt_plan_switches_total Plan switches",
		"# TYPE reopt_plan_switches_total counter",
		"reopt_plan_switches_total 3",
		"# TYPE broker_queue_depth gauge",
		"broker_queue_depth 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: broker_queue_depth precedes reopt_...
	if strings.Index(out, "broker_queue_depth") > strings.Index(out, "reopt_plan_switches_total") {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup", "y")
}

// Counters, gauges, and histograms satisfy expvar.Var, so they can be
// published to the standard /debug/vars surface.
func TestExpvarCompatible(t *testing.T) {
	r := NewRegistry()
	var _ expvar.Var = r.NewCounter("ev_c", "")
	var _ expvar.Var = r.NewGauge("ev_g", "")
	var _ expvar.Var = r.NewHistogram("ev_h", "", []float64{1})
	var _ expvar.Var = r.NewGaugeFunc("ev_f", "", func() float64 { return 0 })
	c := r.Get("ev_c").(*Counter)
	c.Add(2)
	if c.String() != "2" {
		t.Fatalf("expvar string = %q, want 2", c.String())
	}
}

func TestEngineMetricsRecordQuery(t *testing.T) {
	r := NewRegistry()
	em := NewEngineMetrics(r)
	em.RecordQuery(1000, 30, 0.05, 4, 3, 2, 2, 1)
	if got := em.PlanSwitches.Value(); got != 1 {
		t.Fatalf("plan switches = %g, want 1", got)
	}
	if got := em.OverheadFraction.Value(); got != 0.03 {
		t.Fatalf("overhead fraction = %g, want 0.03", got)
	}
	if got := em.QueryCost.Count(); got != 1 {
		t.Fatalf("cost histogram count = %d, want 1", got)
	}
}
