package obs

import (
	"expvar"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // dropped: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	g := r.NewGauge("g", "a gauge")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %g, want 6", got)
	}
	f := r.NewGaugeFunc("f", "func gauge", func() float64 { return 7 })
	if got := f.Value(); got != 7 {
		t.Fatalf("func gauge = %g, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "hist", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 106.5 {
		t.Fatalf("sum = %g, want 106.5", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_bucket{le="1"} 2`, // 0.5 and 1 (le is inclusive)
		`h_bucket{le="10"} 3`,
		`h_bucket{le="+Inf"} 4`,
		"h_sum 106.5",
		"h_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reopt_plan_switches_total", "Plan switches")
	c.Add(3)
	r.NewGaugeFunc("broker_queue_depth", "Queued queries", func() float64 { return 2 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP reopt_plan_switches_total Plan switches",
		"# TYPE reopt_plan_switches_total counter",
		"reopt_plan_switches_total 3",
		"# TYPE broker_queue_depth gauge",
		"broker_queue_depth 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: broker_queue_depth precedes reopt_...
	if strings.Index(out, "broker_queue_depth") > strings.Index(out, "reopt_plan_switches_total") {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup", "y")
}

// Re-registering an identical metric must be idempotent: rebuilding a
// session's metric set over a shared registry happens on every session
// restart and must neither panic nor reset accumulated counts.
func TestIdenticalReRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.NewCounter("idem_c", "h")
	c1.Add(5)
	c2 := r.NewCounter("idem_c", "h")
	if c2 != c1 {
		t.Fatal("identical counter re-registration returned a new instance")
	}
	if c2.Value() != 5 {
		t.Fatalf("re-registered counter value = %v, want 5 (count reset)", c2.Value())
	}
	g1 := r.NewGauge("idem_g", "h")
	if r.NewGauge("idem_g", "h") != g1 {
		t.Fatal("identical gauge re-registration returned a new instance")
	}
	h1 := r.NewHistogram("idem_h", "h", []float64{1, 2})
	h1.Observe(1.5)
	h2 := r.NewHistogram("idem_h", "h", []float64{1, 2})
	if h2 != h1 || h2.Count() != 1 {
		t.Fatal("identical histogram re-registration lost samples")
	}
	// Engine metric sets ride on this: building twice must work.
	NewEngineMetrics(r)
	NewEngineMetrics(r)
}

// Func-backed metrics instead rebind to the fresh closure: the old one
// may capture state (a broker, a cache) that no longer exists.
func TestFuncReRegistrationRebindsClosure(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFunc("idem_f", "h", func() float64 { return 1 })
	f := r.NewGaugeFunc("idem_f", "h", func() float64 { return 2 })
	if f.Value() != 2 {
		t.Fatalf("re-registered func metric reads %v, want 2 (stale closure)", f.Value())
	}
	if got := r.Get("idem_f").(*FuncMetric).Value(); got != 2 {
		t.Fatalf("registry still scrapes %v, want 2", got)
	}
}

// Same name with a different help, type, or kind is a real conflict.
func TestConflictingReRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("conf", "x")
	for _, reg := range []func(){
		func() { r.NewCounter("conf", "different help") },
		func() { r.NewGauge("conf", "x") },
		func() { r.NewCounterFunc("conf", "x", func() float64 { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("conflicting re-registration did not panic")
				}
			}()
			reg()
		}()
	}
}

// Counters, gauges, and histograms satisfy expvar.Var, so they can be
// published to the standard /debug/vars surface.
func TestExpvarCompatible(t *testing.T) {
	r := NewRegistry()
	var _ expvar.Var = r.NewCounter("ev_c", "")
	var _ expvar.Var = r.NewGauge("ev_g", "")
	var _ expvar.Var = r.NewHistogram("ev_h", "", []float64{1})
	var _ expvar.Var = r.NewGaugeFunc("ev_f", "", func() float64 { return 0 })
	c := r.Get("ev_c").(*Counter)
	c.Add(2)
	if c.String() != "2" {
		t.Fatalf("expvar string = %q, want 2", c.String())
	}
}

func TestEngineMetricsRecordQuery(t *testing.T) {
	r := NewRegistry()
	em := NewEngineMetrics(r)
	em.RecordQuery(1000, 30, 0.05, 4, 3, 2, 2, 1)
	if got := em.PlanSwitches.Value(); got != 1 {
		t.Fatalf("plan switches = %g, want 1", got)
	}
	if got := em.OverheadFraction.Value(); got != 0.03 {
		t.Fatalf("overhead fraction = %g, want 0.03", got)
	}
	if got := em.QueryCost.Count(); got != 1 {
		t.Fatalf("cost histogram count = %d, want 1", got)
	}
}
