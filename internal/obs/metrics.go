// Package obs is the engine's observability layer: a dependency-free
// metrics registry (counters, gauges, histograms) with a Prometheus
// text-format writer, a per-query structured event trace, and the
// EXPLAIN ANALYZE overlay that renders optimizer estimates next to
// per-operator actuals.
//
// Everything here is off by default and nil-safe: a nil *Trace or nil
// *Analyze is a valid disabled instance whose methods are no-ops, so
// the engine's hot paths pay only a nil check when observability is not
// requested.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated with compare-and-swap, so counters
// and gauges need no lock.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64  { return math.Float64frombits(f.bits.Load()) }
func formatFloat(v float64) string    { return strconv.FormatFloat(v, 'g', -1, 64) }
func sampleLine(v float64) []promLine { return []promLine{{value: v}} }

// promLine is one exposition line of a metric: name+suffix{labels} value.
type promLine struct {
	suffix string
	labels string
	value  float64
}

// metric is anything the registry can expose.
type metric interface {
	name() string
	help() string
	typ() string // "counter", "gauge", "histogram"
	lines() []promLine
}

// Counter is a monotonically increasing metric. The zero value is not
// usable; create counters through a Registry.
type Counter struct {
	mname, mhelp string
	v            atomicFloat
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds a non-negative delta (negative deltas are dropped: counters
// only go up).
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.v.Add(v)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// String implements expvar.Var, so counters can be expvar.Publish'ed.
func (c *Counter) String() string { return formatFloat(c.Value()) }

func (c *Counter) name() string      { return c.mname }
func (c *Counter) help() string      { return c.mhelp }
func (c *Counter) typ() string       { return "counter" }
func (c *Counter) lines() []promLine { return sampleLine(c.Value()) }

// Gauge is a metric that can go up and down.
type Gauge struct {
	mname, mhelp string
	v            atomicFloat
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Set(v) }

// Add adjusts the value by a (possibly negative) delta.
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// String implements expvar.Var.
func (g *Gauge) String() string { return formatFloat(g.Value()) }

func (g *Gauge) name() string      { return g.mname }
func (g *Gauge) help() string      { return g.mhelp }
func (g *Gauge) typ() string       { return "gauge" }
func (g *Gauge) lines() []promLine { return sampleLine(g.Value()) }

// FuncMetric reads its value at scrape time — the natural fit for state
// that already lives elsewhere (broker pool occupancy, cache entries).
type FuncMetric struct {
	mname, mhelp, mtyp string
	fn                 func() float64
}

// Value calls the backing function.
func (f *FuncMetric) Value() float64 { return f.fn() }

// String implements expvar.Var.
func (f *FuncMetric) String() string { return formatFloat(f.Value()) }

func (f *FuncMetric) name() string      { return f.mname }
func (f *FuncMetric) help() string      { return f.mhelp }
func (f *FuncMetric) typ() string       { return f.mtyp }
func (f *FuncMetric) lines() []promLine { return sampleLine(f.Value()) }

// Histogram is a cumulative-bucket histogram in the Prometheus style.
type Histogram struct {
	mname, mhelp string

	mu     sync.Mutex
	bounds []float64 // upper bucket bounds, ascending; +Inf is implicit
	counts []uint64  // len(bounds)+1, last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// String implements expvar.Var with a compact JSON summary.
func (h *Histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return fmt.Sprintf(`{"count":%d,"sum":%s}`, h.count, formatFloat(h.sum))
}

func (h *Histogram) name() string { return h.mname }
func (h *Histogram) help() string { return h.mhelp }
func (h *Histogram) typ() string  { return "histogram" }

func (h *Histogram) lines() []promLine {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]promLine, 0, len(h.bounds)+3)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		out = append(out, promLine{suffix: "_bucket", labels: `le="` + formatFloat(b) + `"`, value: float64(cum)})
	}
	cum += h.counts[len(h.bounds)]
	out = append(out,
		promLine{suffix: "_bucket", labels: `le="+Inf"`, value: float64(cum)},
		promLine{suffix: "_sum", value: h.sum},
		promLine{suffix: "_count", value: float64(cum)})
	return out
}

// Registry holds a named set of metrics and renders them in the
// Prometheus text exposition format.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metric{}}
}

// register adds m to the registry. Re-registering a metric identical to
// an existing one — same name, exposition type, help, and metric kind —
// is idempotent: the registered instance is returned so a rebuilt
// session keeps accumulating into the same series instead of panicking.
// Func-backed metrics are the exception: they read external state at
// scrape time, so re-registration rebinds the name to the caller's
// fresh closure (the old closure may capture a torn-down broker or
// cache). A name collision with a different type or help is still a
// programming error and panics.
func (r *Registry) register(m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, dup := r.metrics[m.name()]
	if !dup {
		r.metrics[m.name()] = m
		return m
	}
	isFunc := func(x metric) bool {
		switch x.(type) {
		case *FuncMetric, *FuncVec:
			return true
		}
		return false
	}
	oldFunc, newFunc := isFunc(old), isFunc(m)
	if old.typ() != m.typ() || old.help() != m.help() || oldFunc != newFunc {
		panic("obs: duplicate metric " + m.name())
	}
	if newFunc {
		r.metrics[m.name()] = m
		return m
	}
	return old
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{mname: name, mhelp: help}
	return r.register(c).(*Counter)
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{mname: name, mhelp: help}
	return r.register(g).(*Gauge)
}

// NewGaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *FuncMetric {
	f := &FuncMetric{mname: name, mhelp: help, mtyp: "gauge", fn: fn}
	return r.register(f).(*FuncMetric)
}

// NewCounterFunc registers a counter whose value is read at scrape time
// (the backing source must be monotonic).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) *FuncMetric {
	f := &FuncMetric{mname: name, mhelp: help, mtyp: "counter", fn: fn}
	return r.register(f).(*FuncMetric)
}

// NewHistogram registers a histogram with the given ascending upper
// bucket bounds (+Inf is added implicitly). Identical re-registration
// returns the existing histogram; the bounds of the first registration
// win.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{mname: name, mhelp: help, bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	return r.register(h).(*Histogram)
}

// Get returns a registered metric by name (tests, expvar publication),
// or nil.
func (r *Registry) Get(name string) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	return nil
}

// Sample is one scalar reading of a registered metric, the row format
// of the mqr.metrics system table. Histograms expose two samples
// (name_sum, name_count) rather than their full bucket vectors.
type Sample struct {
	Name  string
	Type  string
	Value float64
}

// Samples reads every metric once, sorted by name. Func-backed metrics
// are evaluated at call time, like a Prometheus scrape.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	ms := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		if h, ok := m.(*Histogram); ok {
			out = append(out,
				Sample{Name: h.name() + "_sum", Type: "histogram", Value: h.Sum()},
				Sample{Name: h.name() + "_count", Type: "histogram", Value: float64(h.Count())})
			continue
		}
		if v, ok := m.(*HistogramVec); ok {
			for _, k := range v.labelValues() {
				h := v.With(k)
				pair := "{" + labelPair(v.label, k) + "}"
				out = append(out,
					Sample{Name: v.name() + "_sum" + pair, Type: "histogram", Value: h.Sum()},
					Sample{Name: v.name() + "_count" + pair, Type: "histogram", Value: float64(h.Count())})
			}
			continue
		}
		if f, ok := m.(*FuncVec); ok {
			vals := f.Values()
			keys := make([]string, 0, len(vals))
			for k := range vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				out = append(out, Sample{Name: f.name() + "{" + labelPair(f.label, k) + "}", Type: f.typ(), Value: vals[k]})
			}
			continue
		}
		type valuer interface{ Value() float64 }
		if v, ok := m.(valuer); ok {
			out = append(out, Sample{Name: m.name(), Type: m.typ(), Value: v.Value()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	ms := make([]metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		ms = append(ms, r.metrics[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", m.name(), m.help(), m.name(), m.typ())
		for _, l := range m.lines() {
			b.WriteString(m.name())
			b.WriteString(l.suffix)
			if l.labels != "" {
				b.WriteByte('{')
				b.WriteString(l.labels)
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatFloat(l.value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
