package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestTraceForwardTee(t *testing.T) {
	eng := NewTrace(16)
	q1 := NewTrace(16)
	q1.SetQuery("s1_q1")
	q1.SetForward(eng)
	q2 := NewTrace(16)
	q2.SetQuery("s1_q2")
	q2.SetForward(eng)

	q1.Emit("plan", "initial")
	q2.Emit("plan", "initial")
	q1.Emit("switch", "switched")

	if n := q1.Len(); n != 2 {
		t.Fatalf("q1 ring has %d events, want 2", n)
	}
	evs := eng.Events()
	if len(evs) != 3 {
		t.Fatalf("engine ring has %d events, want 3", len(evs))
	}
	wantQ := []string{"s1_q1", "s1_q2", "s1_q1"}
	for i, e := range evs {
		if e.Query != wantQ[i] {
			t.Errorf("event %d query = %q, want %q", i, e.Query, wantQ[i])
		}
		// The engine ring re-sequences: Seq orders the interleaved
		// stream, not the per-query stream.
		if e.Seq != i {
			t.Errorf("event %d seq = %d", i, e.Seq)
		}
	}
}

func TestTraceDroppedCountsRingEvictions(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Emit("k", "m")
	}
	if d := tr.Dropped(); d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
	if n := tr.Len(); n != 4 {
		t.Fatalf("len = %d, want 4", n)
	}
	// Survivors are the newest events.
	evs := tr.Events()
	if evs[0].Seq != 6 || evs[len(evs)-1].Seq != 9 {
		t.Fatalf("surviving seqs %d..%d, want 6..9", evs[0].Seq, evs[len(evs)-1].Seq)
	}
}

func TestTraceForwardConcurrent(t *testing.T) {
	eng := NewTrace(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := NewTrace(8)
			q.SetQuery(fmt.Sprintf("s%d_q1", g))
			q.SetForward(eng)
			for i := 0; i < 50; i++ {
				q.Emit("k", "m", "i", i)
			}
		}(g)
	}
	wg.Wait()
	if n := eng.Len(); n != 400 {
		t.Fatalf("engine ring has %d events, want 400", n)
	}
}

func TestRegistrySamples(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("zz_total", "")
	c.Add(3)
	g := r.NewGauge("aa_gauge", "")
	g.Set(7)
	h := r.NewHistogram("mm_seconds", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)

	samples := r.Samples()
	byName := map[string]Sample{}
	for i, s := range samples {
		byName[s.Name] = s
		if i > 0 && samples[i-1].Name > s.Name {
			t.Fatalf("samples not sorted: %q before %q", samples[i-1].Name, s.Name)
		}
	}
	if s := byName["zz_total"]; s.Type != "counter" || s.Value != 3 {
		t.Errorf("counter sample = %+v", s)
	}
	if s := byName["aa_gauge"]; s.Type != "gauge" || s.Value != 7 {
		t.Errorf("gauge sample = %+v", s)
	}
	if s := byName["mm_seconds_count"]; s.Type != "histogram" || s.Value != 2 {
		t.Errorf("histogram count sample = %+v", s)
	}
	if s := byName["mm_seconds_sum"]; s.Value != 5.5 {
		t.Errorf("histogram sum sample = %+v", s)
	}
}
