package obs

import (
	"fmt"
	"sync"
)

// Event is one structured record in a query's lifecycle trace.
type Event struct {
	// Seq orders events within the trace; it keeps counting even after
	// the ring buffer starts dropping old events.
	Seq int `json:"seq"`
	// Query tags the event with the emitting query ("s3_q17") when the
	// trace carries a query tag — engine-wide rings interleave many
	// queries' events.
	Query string `json:"query,omitempty"`
	// Kind classifies the event: "plan", "collector", "checkpoint",
	// "decision", "realloc", "switch", "scia", "commit".
	Kind string `json:"kind"`
	// Msg is the human-readable summary.
	Msg string `json:"msg,omitempty"`
	// Attrs carries the structured payload (estimate/actual numbers,
	// lease sizes, budget fractions).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// String renders the event for logs.
func (e Event) String() string {
	if len(e.Attrs) == 0 {
		return fmt.Sprintf("[%s] %s", e.Kind, e.Msg)
	}
	return fmt.Sprintf("[%s] %s %v", e.Kind, e.Msg, e.Attrs)
}

// Trace is a bounded ring buffer of lifecycle events for one query.
//
// A nil *Trace is the disabled trace: Enabled reports false and Emit
// returns immediately, so instrumentation sites cost a nil check when
// tracing is off. Emission sites that would allocate to build attrs
// should guard with Enabled first.
type Trace struct {
	mu    sync.Mutex
	cap   int
	seq   int
	buf   []Event
	start int // ring read position
	n     int // events currently buffered

	// query stamps every emitted event's Query field; fwd, when set,
	// tees each event into a second (typically engine-wide) ring.
	query string
	fwd   *Trace
}

// DefaultTraceCap bounds a trace when NewTrace is given no capacity.
const DefaultTraceCap = 256

// NewTrace returns an enabled trace keeping the last capacity events
// (DefaultTraceCap if capacity <= 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{cap: capacity, buf: make([]Event, 0, capacity)}
}

// Enabled reports whether events are being recorded. Safe on nil.
func (t *Trace) Enabled() bool { return t != nil }

// SetQuery tags every subsequently emitted event with the query tag.
// Safe on nil.
func (t *Trace) SetQuery(tag string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.query = tag
	t.mu.Unlock()
}

// SetForward tees every subsequently emitted event into fwd as well
// (the engine-wide ring behind mqr.trace). The forwarded copy keeps the
// originating Query tag but is re-sequenced by the receiving ring. Safe
// on nil.
func (t *Trace) SetForward(fwd *Trace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.fwd = fwd
	t.mu.Unlock()
}

// Emit records one event. kv is alternating key, value pairs; a
// trailing key without a value is dropped. Safe on nil (no-op).
func (t *Trace) Emit(kind, msg string, kv ...any) {
	if t == nil {
		return
	}
	var attrs map[string]any
	if len(kv) >= 2 {
		attrs = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			key, ok := kv[i].(string)
			if !ok {
				key = fmt.Sprint(kv[i])
			}
			attrs[key] = kv[i+1]
		}
	}
	t.add(Event{Kind: kind, Msg: msg, Attrs: attrs})
}

// add stamps, sequences, and buffers one event, then forwards it
// outside the lock (the forward target has its own lock; never holding
// both at once rules out ordering deadlocks).
func (t *Trace) add(e Event) {
	t.mu.Lock()
	if e.Query == "" {
		e.Query = t.query
	}
	e.Seq = t.seq
	t.seq++
	if t.n < t.cap {
		t.buf = append(t.buf, e)
		t.n++
	} else {
		// Ring full: overwrite the oldest.
		t.buf[t.start] = e
		t.start = (t.start + 1) % t.cap
	}
	fwd := t.fwd
	t.mu.Unlock()
	if fwd != nil {
		fwd.add(e)
	}
}

// Len returns the number of buffered events. Safe on nil.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events the ring has overwritten. Safe on nil.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq - t.n
}

// Events returns the buffered events oldest-first. Safe on nil.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%t.cap])
	}
	return out
}
