package obs

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/plan"
)

// OpActual accumulates one operator's measured execution during EXPLAIN
// ANALYZE: output rows, inclusive simulated cost (the operator and its
// whole subtree), and peak operator memory where the operator reports
// it. In a parallel region several worker goroutines execute clones of
// the same plan node and accumulate into one OpActual through Record —
// the shared entry is the per-node rollup — so mutation goes through the
// internal mutex; fields are read directly only after the query's
// workers have joined.
type OpActual struct {
	mu   sync.Mutex
	Rows int64
	Cost float64 // inclusive simulated cost units
	Mem  float64 // peak operator memory in bytes, 0 when unreported

	// Parallel-worker rollup, recorded at gather points: how many
	// workers executed under this node, and the slowest worker's cost
	// and largest worker's peak memory.
	Workers       int
	MaxWorkerCost float64
	MaxWorkerMem  float64
}

// Record adds measured rows and inclusive cost. Safe for concurrent use
// by parallel workers sharing the node.
func (o *OpActual) Record(rows int64, cost float64) {
	o.mu.Lock()
	o.Rows += rows
	o.Cost += cost
	o.mu.Unlock()
}

// RecordMem raises the peak-memory high-water mark.
func (o *OpActual) RecordMem(m float64) {
	o.mu.Lock()
	if m > o.Mem {
		o.Mem = m
	}
	o.mu.Unlock()
}

// RecordWorker folds one parallel worker's totals into the node's
// rollup: worker count, critical-path (max) worker cost, and max worker
// peak memory.
func (o *OpActual) RecordWorker(cost, mem float64) {
	o.mu.Lock()
	o.Workers++
	if cost > o.MaxWorkerCost {
		o.MaxWorkerCost = cost
	}
	if mem > o.MaxWorkerMem {
		o.MaxWorkerMem = mem
	}
	o.mu.Unlock()
}

// Analyze collects per-operator actuals for EXPLAIN ANALYZE. The
// dispatcher registers each plan it executes (the initial plan, plus
// one per mid-query switch) via StartPlan; the executor's analyzing
// operator wrappers feed Op entries as tuples flow.
//
// A nil *Analyze is the disabled instance: methods are no-ops and the
// executor skips wrapping entirely.
type Analyze struct {
	mu   sync.Mutex
	ops  map[plan.Node]*OpActual
	runs []plan.Node
}

// NewAnalyze returns an enabled collector.
func NewAnalyze() *Analyze {
	return &Analyze{ops: map[plan.Node]*OpActual{}}
}

// Enabled reports whether actuals are being recorded. Safe on nil.
func (a *Analyze) Enabled() bool { return a != nil }

// StartPlan registers the root of a plan about to execute. The first
// registration is the optimizer's initial plan; later ones are
// re-optimized remainders spliced in by plan switches. Safe on nil.
func (a *Analyze) StartPlan(root plan.Node) {
	if a == nil || root == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs = append(a.runs, root)
}

// Plans returns the registered plan roots in execution order. Safe on
// nil.
func (a *Analyze) Plans() []plan.Node {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]plan.Node(nil), a.runs...)
}

// Op returns the actuals accumulator for a plan node, creating it on
// first use.
func (a *Analyze) Op(n plan.Node) *OpActual {
	a.mu.Lock()
	defer a.mu.Unlock()
	acc := a.ops[n]
	if acc == nil {
		acc = &OpActual{}
		a.ops[n] = acc
	}
	return acc
}

// Actual returns the recorded actuals for a node, or nil if the node
// never executed. Safe on nil.
func (a *Analyze) Actual(n plan.Node) *OpActual {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ops[n]
}

// SelfCost returns a node's own measured cost: its inclusive cost minus
// its children's. Zero for nodes that never executed.
func (a *Analyze) SelfCost(n plan.Node) float64 {
	acc := a.Actual(n)
	if acc == nil {
		return 0
	}
	self := acc.Cost
	for _, c := range n.Children() {
		if ca := a.Actual(c); ca != nil {
			self -= ca.Cost
		}
	}
	if self < 0 {
		return 0
	}
	return self
}

// TotalSelfCost sums every executed operator's self cost across all
// registered plans — it should match the query's metered wall cost.
func (a *Analyze) TotalSelfCost() float64 {
	var total float64
	for _, root := range a.Plans() {
		plan.Walk(root, func(n plan.Node) {
			total += a.SelfCost(n)
		})
	}
	return total
}

// Render produces the EXPLAIN ANALYZE report: each executed plan in
// order, every operator annotated with its estimates and — where it
// ran — its actuals. A scan of a temp table in a re-optimized
// remainder is the splice point of the plan switch that produced it
// and is marked "[re-optimized here]".
func (a *Analyze) Render() string {
	if a == nil {
		return ""
	}
	var b strings.Builder
	for i, root := range a.Plans() {
		if i == 0 {
			b.WriteString("plan 1 (initial):\n")
		} else {
			fmt.Fprintf(&b, "plan %d (re-optimized remainder):\n", i+1)
		}
		a.render(&b, root, 1)
	}
	return b.String()
}

func (a *Analyze) render(b *strings.Builder, n plan.Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	writeEstimates(b, n)
	if acc := a.Actual(n); acc != nil && (acc.Rows > 0 || acc.Cost > 0) {
		fmt.Fprintf(b, " (actual rows=%d time=%.1f", acc.Rows, a.SelfCost(n))
		if acc.Mem > 0 {
			fmt.Fprintf(b, " mem=%.0f", acc.Mem)
		}
		if acc.Workers > 0 {
			fmt.Fprintf(b, " workers=%d max-worker-time=%.1f", acc.Workers, acc.MaxWorkerCost)
			if acc.MaxWorkerMem > 0 {
				fmt.Fprintf(b, " max-worker-mem=%.0f", acc.MaxWorkerMem)
			}
		}
		b.WriteByte(')')
	} else {
		b.WriteString(" (never executed)")
	}
	if s, ok := n.(*plan.Scan); ok && s.Table != nil && s.Table.Temp {
		b.WriteString(" [re-optimized here]")
	}
	b.WriteByte('\n')
	for _, c := range n.Children() {
		a.render(b, c, depth+1)
	}
}

// writeEstimates renders one node's optimizer annotations: label,
// arguments, estimated rows, output size, cumulative cost, and memory
// demands/grant where the operator consumes memory.
func writeEstimates(b *strings.Builder, n plan.Node) {
	e := n.Est()
	fmt.Fprintf(b, "%s [%s] (est rows=%.0f bytes=%.0f cost=%.1f",
		n.Label(), n.Describe(), e.Rows, e.Bytes, e.Cost)
	if e.MemMax > 0 {
		fmt.Fprintf(b, " mem=%.0f..%.0f", e.MemMin, e.MemMax)
		if e.Grant > 0 {
			fmt.Fprintf(b, " grant=%.0f", e.Grant)
		}
	}
	b.WriteByte(')')
}

// FormatPlan renders an annotated plan with per-operator estimated
// rows, size, cost, and memory — the EXPLAIN (without ANALYZE) view.
func FormatPlan(root plan.Node) string {
	var b strings.Builder
	var walk func(n plan.Node, depth int)
	walk = func(n plan.Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		writeEstimates(&b, n)
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}
