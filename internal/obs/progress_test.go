package obs

import (
	"fmt"
	"testing"
)

func TestNilProgressIsDisabledNoOp(t *testing.T) {
	var p *Progress
	if p.Enabled() {
		t.Fatal("nil progress reports enabled")
	}
	p.StartPlan(nil)
	p.SetEstimate(10)
	p.SetCostFn(func() float64 { return 1 })
	p.NoteRatio(nil)
	p.RecordCheckpoint(2)
	p.RecordSwitch()
	p.Finish()
	if p.Score() != 0 || p.Fraction() != 0 || p.Cost() != 0 || p.SpillBytes() != 0 || p.Switches() != 0 {
		t.Fatal("nil progress returned nonzero state")
	}
	if s := p.Snapshot(true); s.Query != "" {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

func TestScoreRisesWithOvershootAndClampsAtCheckpoint(t *testing.T) {
	p := NewProgress("s1_q1", 1, "select 1")
	p.SetEstimate(100)
	cost := 0.0
	p.SetCostFn(func() float64 { return cost })

	// On estimate: consumed plus remainder equals the estimate.
	cost = 50
	if s := p.Score(); s != 1 {
		t.Fatalf("on-estimate score = %v, want 1", s)
	}

	// An operator overshooting its row estimate 3x inflates the
	// unconsumed remainder: S = (50 + 50*3)/100 = 2.
	o := &OpProgress{EstRows: 10}
	o.AddRows(30)
	p.NoteRatio(o)
	if s := p.Score(); s != 2 {
		t.Fatalf("overshoot score = %v, want 2", s)
	}

	// The ratio is a high-water mark: a later, smaller observation
	// cannot lower it.
	low := &OpProgress{EstRows: 100}
	low.AddRows(50)
	p.NoteRatio(low)
	if s := p.Score(); s != 2 {
		t.Fatalf("score dropped to %v after a smaller ratio", s)
	}

	// A checkpoint that measured the query 2.5x off clamps from below.
	p.RecordCheckpoint(2.5)
	if s := p.Score(); s != 2.5 {
		t.Fatalf("clamped score = %v, want 2.5", s)
	}
	if s := p.Snapshot(false); s.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", s.Checkpoints)
	}
}

func TestFractionMonotoneAndFinishes(t *testing.T) {
	p := NewProgress("s1_q2", 1, "select 1")
	p.SetEstimate(100)
	cost := 0.0
	p.SetCostFn(func() float64 { return cost })
	if f := p.Fraction(); f != 0 {
		t.Fatalf("initial fraction = %v", f)
	}
	prev := 0.0
	for _, c := range []float64{10, 50, 90, 100, 150} {
		cost = c
		f := p.Fraction()
		if f < prev {
			t.Fatalf("fraction went backwards: %v after %v", f, prev)
		}
		if f > 1 {
			t.Fatalf("fraction = %v > 1 at cost %v", f, c)
		}
		prev = f
	}
	p.Finish()
	if f := p.Fraction(); f != 1 {
		t.Fatalf("finished fraction = %v, want 1", f)
	}
}

func TestFinishFreezesCostAndElapsed(t *testing.T) {
	p := NewProgress("s1_q3", 1, "select 1")
	p.SetEstimate(10)
	cost := 5.0
	p.SetCostFn(func() float64 { return cost })
	p.Finish()
	cost = 500 // the shared meter keeps advancing under other queries
	if c := p.Cost(); c != 5 {
		t.Fatalf("finished cost = %v, want frozen 5", c)
	}
	s1 := p.Snapshot(false)
	s2 := p.Snapshot(false)
	if s1.ElapsedMS != s2.ElapsedMS {
		t.Fatalf("finished elapsed kept growing: %d then %d", s1.ElapsedMS, s2.ElapsedMS)
	}
	if s1.State != "done" {
		t.Fatalf("state = %q, want done", s1.State)
	}
}

func TestSetEstimateFirstPlanWins(t *testing.T) {
	p := NewProgress("s1_q4", 1, "select 1")
	p.SetEstimate(100)
	p.SetEstimate(999) // a post-switch re-estimate must not move the baseline
	if s := p.Snapshot(false); s.EstCost != 100 {
		t.Fatalf("est cost = %v, want 100", s.EstCost)
	}
}

func TestOpProgressWorkerCounting(t *testing.T) {
	o := &OpProgress{}
	if o.stateName() != "pending" {
		t.Fatalf("initial state = %q", o.stateName())
	}
	o.MarkOpen()
	o.MarkOpen() // a parallel clone shares the entry
	o.MarkDone()
	if o.stateName() != "open" {
		t.Fatalf("state after one of two workers closed = %q", o.stateName())
	}
	o.MarkDone()
	if o.stateName() != "done" {
		t.Fatalf("state after all workers closed = %q", o.stateName())
	}
}

func TestSpillBytesIsHighWaterMark(t *testing.T) {
	o := &OpProgress{}
	o.SetSpillBytes(100)
	o.SetSpillBytes(40) // partitions dropped as consumed
	p := NewProgress("s1_q5", 1, "select 1")
	p.mu.Lock()
	p.list = append(p.list, o)
	p.mu.Unlock()
	if b := p.SpillBytes(); b != 100 {
		t.Fatalf("spill = %v, want high-water 100", b)
	}
}

func TestProgressRegistryLifecycle(t *testing.T) {
	r := NewProgressRegistry()
	p := r.Start("s1_q1", 1, "select 1")
	p.SetEstimate(10)
	p.SetCostFn(func() float64 { return 5 })
	if n := r.NumRunning(); n != 1 {
		t.Fatalf("running = %d", n)
	}
	if got := r.Get("s1_q1"); got != p {
		t.Fatal("Get missed the running query")
	}
	if s := r.MaxScore(); s != 1 {
		t.Fatalf("max score = %v, want 1", s)
	}
	r.Finish(p)
	if n := r.NumRunning(); n != 0 {
		t.Fatalf("running after finish = %d", n)
	}
	if got := r.Get("s1_q1"); got != p {
		t.Fatal("Get missed the recently finished query")
	}
	if rec := r.Recent(); len(rec) != 1 || rec[0] != p {
		t.Fatalf("recent = %v", rec)
	}

	// The recent ring is bounded: overflow evicts oldest-first.
	for i := 0; i < RecentProgressCap+5; i++ {
		q := r.Start(fmt.Sprintf("x%d", i), 1, "select 1")
		r.Finish(q)
	}
	if n := len(r.Recent()); n != RecentProgressCap {
		t.Fatalf("recent ring = %d entries, want %d", n, RecentProgressCap)
	}
}
