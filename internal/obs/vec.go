package obs

import (
	"sort"
	"strconv"
	"sync"
)

// labelPair renders one label="value" pair with Prometheus escaping.
func labelPair(label, value string) string {
	return label + "=" + strconv.Quote(value)
}

// FuncVec is a labeled metric family whose per-label values are read at
// scrape time from one backing function — the fit for state that is
// already keyed elsewhere, like the broker's per-tenant queue depths.
// Like FuncMetric, re-registration rebinds the closure.
type FuncVec struct {
	mname, mhelp, mtyp, label string
	fn                        func() map[string]float64
}

// Values calls the backing function.
func (f *FuncVec) Values() map[string]float64 { return f.fn() }

func (f *FuncVec) name() string { return f.mname }
func (f *FuncVec) help() string { return f.mhelp }
func (f *FuncVec) typ() string  { return f.mtyp }

func (f *FuncVec) lines() []promLine {
	vals := f.fn()
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]promLine, 0, len(keys))
	for _, k := range keys {
		out = append(out, promLine{labels: labelPair(f.label, k), value: vals[k]})
	}
	return out
}

// NewGaugeFuncVec registers a labeled gauge family read at scrape time:
// the function returns one value per label (e.g. per tenant).
func (r *Registry) NewGaugeFuncVec(name, help, label string, fn func() map[string]float64) *FuncVec {
	f := &FuncVec{mname: name, mhelp: help, mtyp: "gauge", label: label, fn: fn}
	return r.register(f).(*FuncVec)
}

// NewCounterFuncVec registers a labeled counter family read at scrape
// time (each label's backing source must be monotonic).
func (r *Registry) NewCounterFuncVec(name, help, label string, fn func() map[string]float64) *FuncVec {
	f := &FuncVec{mname: name, mhelp: help, mtyp: "counter", label: label, fn: fn}
	return r.register(f).(*FuncVec)
}

// HistogramVec is a family of histograms sharing one name and bucket
// layout, split by a single label — per-tenant broker-wait latency.
// Children spring into existence on first observation.
type HistogramVec struct {
	mname, mhelp, label string
	bounds              []float64

	mu       sync.Mutex
	children map[string]*Histogram
}

// Observe records one sample under the given label value.
func (v *HistogramVec) Observe(labelValue string, x float64) {
	v.With(labelValue).Observe(x)
}

// With returns (creating if needed) the child histogram for one label
// value.
func (v *HistogramVec) With(labelValue string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[labelValue]
	if !ok {
		h = &Histogram{mname: v.mname, mhelp: v.mhelp, bounds: v.bounds, counts: make([]uint64, len(v.bounds)+1)}
		v.children[labelValue] = h
	}
	return h
}

func (v *HistogramVec) name() string { return v.mname }
func (v *HistogramVec) help() string { return v.mhelp }
func (v *HistogramVec) typ() string  { return "histogram" }

// labelValues lists the children's label values, sorted.
func (v *HistogramVec) labelValues() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (v *HistogramVec) lines() []promLine {
	var out []promLine
	for _, k := range v.labelValues() {
		pair := labelPair(v.label, k)
		for _, l := range v.With(k).lines() {
			if l.labels != "" {
				l.labels = pair + "," + l.labels
			} else {
				l.labels = pair
			}
			out = append(out, l)
		}
	}
	return out
}

// NewHistogramVec registers a labeled histogram family with the given
// ascending upper bucket bounds (+Inf implicit). Identical
// re-registration returns the existing family.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := &HistogramVec{mname: name, mhelp: help, label: label, bounds: bounds, children: map[string]*Histogram{}}
	return r.register(v).(*HistogramVec)
}
