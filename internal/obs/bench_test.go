package obs

import "testing"

// BenchmarkDisabledTraceEmit measures the entire per-hook cost paid by
// an uninstrumented query: a nil-receiver Enabled() check. This is the
// "observability off" overhead — it must stay negligible (sub-ns).
func BenchmarkDisabledTraceEmit(b *testing.B) {
	var tr *Trace
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Emit("checkpoint", "estimate improved", "step", i)
		}
	}
}

// BenchmarkEnabledTraceEmit measures a live emit into the ring buffer.
func BenchmarkEnabledTraceEmit(b *testing.B) {
	tr := NewTrace(DefaultTraceCap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit("checkpoint", "estimate improved", "step", i)
	}
}

// BenchmarkCounterInc measures the hot-path metric update.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("bench_total", "benchmark counter")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
