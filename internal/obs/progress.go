package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/plan"
)

// Progress is one query's live execution state: per-operator atomic
// counters published by the executor as tuples flow, plus the
// query-level aggregates the continuous suboptimality score is derived
// from. It is written lock-free from the query's own goroutines
// (operators flush local row counts every progressFlushRows tuples, on
// the same amortized cadence as Ctx.Tick) and read at any moment by
// observers — the /progress endpoint, the mqr.queries system table —
// without perturbing execution.
//
// A nil *Progress is the disabled instance: every method is a no-op or
// returns a zero value, mirroring Trace and Analyze.
type Progress struct {
	// Tag is the engine-unique query tag ("s3_q17"); Session, Tenant,
	// and SQL identify the query for system-table rows. Immutable
	// after Start.
	Tag     string
	Session int64
	Tenant  string
	SQL     string
	Started time.Time

	// preempts counts checkpoint preemptions this query survived
	// (each one re-queued it for admission).
	preempts atomic.Int64

	// estCost is the optimizer's total cost estimate for the first plan
	// (Stats.EstimatedCost); the denominator of both the progress
	// fraction and the suboptimality score.
	estCost atomicFloat

	// costFn reads the simulated cost this query has consumed so far.
	// Pull-model: the closure is evaluated only when someone snapshots,
	// so the executor's hot path never touches it. Stored atomically
	// because the dispatcher installs it after observers can already
	// see the Progress.
	costFn atomic.Value // func() float64

	// maxRatio is the largest rowsOut/estRows overshoot observed across
	// operators with a meaningful estimate — the live estimate-error
	// signal that moves between checkpoints.
	maxRatio atomicFloat

	// scoreFloor is the last checkpoint's Eq.2 position
	// (tCurImproved/origTotal): once a checkpoint has measured the
	// query this far off its original estimate, the reported score
	// never falls below it.
	scoreFloor atomicFloat

	checkpoints atomic.Int64
	switches    atomic.Int64
	done        atomic.Bool

	// finalCost and finishedNS freeze the query's cost and wall time at
	// Finish: the cost closure reads a shared meter that keeps advancing
	// under other queries, so a finished query in the recent ring must
	// not keep evaluating it.
	finalCost  atomicFloat
	finishedNS atomic.Int64

	// mu guards the operator registry. StartPlan appends under the
	// query's own goroutine; snapshots copy the slice header under the
	// lock and then read only atomics.
	mu   sync.Mutex
	ops  map[plan.Node]*OpProgress
	list []*OpProgress
}

// OpProgress is one operator's live counters. The executor's progress
// wrapper owns the writes; everything mutable is atomic so snapshots
// need no coordination with the running query.
type OpProgress struct {
	// ID is the operator's position in plan pre-order; Depth indents the
	// rendering. Label/Detail/EstRows/EstCost are captured once at plan
	// registration (plan nodes themselves are mutated by checkpoints, so
	// snapshots must not read them live).
	ID      int
	Depth   int
	Label   string
	Detail  string
	EstRows float64
	EstCost float64

	rows    atomic.Int64
	spill   atomicFloat
	workers atomic.Int64
	state   atomic.Int32 // 0 pending, 1 open, 2 done
}

// Operator lifecycle states as rendered in snapshots.
const (
	opPending int32 = iota
	opOpen
	opDone
)

// AddRows publishes n more output rows.
func (o *OpProgress) AddRows(n int64) { o.rows.Add(n) }

// Rows returns the rows emitted so far.
func (o *OpProgress) Rows() int64 { return o.rows.Load() }

// casMax raises f to v if v is larger (parallel workers publish
// concurrently, so a plain check-then-set could go backwards).
func casMax(f *atomicFloat, v float64) {
	for {
		old := f.Load()
		if v <= old || f.bits.CompareAndSwap(math.Float64bits(old), math.Float64bits(v)) {
			return
		}
	}
}

// SetSpillBytes publishes the operator's spill high-water mark (spill
// partitions are dropped as they are consumed, so the live sum can
// shrink; the high-water mark is the meaningful figure).
func (o *OpProgress) SetSpillBytes(b float64) { casMax(&o.spill, b) }

// MarkOpen flags the operator as executing. Parallel clones of one plan
// node share an entry; the count of concurrent openers keeps a worker's
// Close from marking the node done while siblings still run.
func (o *OpProgress) MarkOpen() {
	o.workers.Add(1)
	o.state.CompareAndSwap(opPending, opOpen)
}

// MarkDone flags the operator finished once every concurrent opener has
// closed.
func (o *OpProgress) MarkDone() {
	if o.workers.Add(-1) <= 0 {
		o.state.Store(opDone)
	}
}

func (o *OpProgress) stateName() string {
	switch o.state.Load() {
	case opOpen:
		return "open"
	case opDone:
		return "done"
	default:
		return "pending"
	}
}

// NewProgress returns live progress state for one query.
func NewProgress(tag string, session int64, sql string) *Progress {
	return &Progress{
		Tag:     tag,
		Session: session,
		SQL:     sql,
		Started: time.Now(),
		ops:     map[plan.Node]*OpProgress{},
	}
}

// Enabled reports whether progress is being recorded. Safe on nil.
func (p *Progress) Enabled() bool { return p != nil }

// StartPlan registers a plan's operators (pre-order), capturing labels
// and estimates while the plan is quiescent. The dispatcher calls it for
// the initial plan and again after every switch; operators of earlier
// plans keep their entries, so a snapshot shows the whole history.
// Safe on nil.
func (p *Progress) StartPlan(root plan.Node) {
	if p == nil || root == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.walk(root, 0)
}

func (p *Progress) walk(n plan.Node, depth int) {
	if n == nil {
		return
	}
	if _, ok := p.ops[n]; !ok {
		o := &OpProgress{ID: len(p.list), Depth: depth, Label: n.Label(), Detail: n.Describe()}
		if e := n.Est(); e != nil {
			o.EstRows = e.Rows
			o.EstCost = e.Cost
		}
		p.ops[n] = o
		p.list = append(p.list, o)
	}
	for _, c := range n.Children() {
		p.walk(c, depth+1)
	}
}

// Op returns the live counters for a plan node, creating an orphan entry
// if the node was never registered (defensive: exchange workers build
// pipelines from registered nodes, so this is rare). Safe on nil
// receivers only through the executor's nil check.
func (p *Progress) Op(n plan.Node) *OpProgress {
	p.mu.Lock()
	defer p.mu.Unlock()
	o := p.ops[n]
	if o == nil {
		o = &OpProgress{ID: len(p.list), Label: n.Label(), Detail: n.Describe()}
		if e := n.Est(); e != nil {
			o.EstRows = e.Rows
			o.EstCost = e.Cost
		}
		p.ops[n] = o
		p.list = append(p.list, o)
	}
	return o
}

// SetEstimate records the optimizer's total cost estimate (first plan
// only, matching Stats.EstimatedCost). Safe on nil.
func (p *Progress) SetEstimate(cost float64) {
	if p == nil {
		return
	}
	if p.estCost.Load() == 0 {
		p.estCost.Set(cost)
	}
}

// SetCostFn installs the closure that reads the query's consumed cost
// (typically a meter-delta against the shared CostMeter). Safe on nil.
func (p *Progress) SetCostFn(fn func() float64) {
	if p == nil || fn == nil {
		return
	}
	p.costFn.Store(fn)
}

// NoteRatio folds one operator's estimate error into the query-level
// overshoot. Called from the executor's flush path; cheap (two atomic
// loads and a CAS in the rare growing case).
func (p *Progress) NoteRatio(o *OpProgress) {
	if p == nil || o == nil || o.EstRows < 1 {
		return
	}
	casMax(&p.maxRatio, float64(o.Rows())/o.EstRows)
}

// RecordCheckpoint notes a checkpoint fired and where Eq.2 measured the
// query relative to its original estimate. Safe on nil.
func (p *Progress) RecordCheckpoint(score float64) {
	if p == nil {
		return
	}
	p.checkpoints.Add(1)
	casMax(&p.scoreFloor, score)
}

// RecordSwitch notes a plan switch. Safe on nil.
func (p *Progress) RecordSwitch() {
	if p == nil {
		return
	}
	p.switches.Add(1)
}

// RecordPreempt notes one checkpoint preemption. Safe on nil.
func (p *Progress) RecordPreempt() {
	if p == nil {
		return
	}
	p.preempts.Add(1)
}

// Preempts returns the checkpoint preemptions recorded so far. Safe on
// nil.
func (p *Progress) Preempts() int64 {
	if p == nil {
		return 0
	}
	return p.preempts.Load()
}

// Finish marks the query complete, freezing its cost and elapsed time.
// Safe on nil.
func (p *Progress) Finish() {
	if p == nil || p.done.Load() {
		return
	}
	p.finalCost.Set(p.liveCost())
	p.finishedNS.Store(time.Since(p.Started).Nanoseconds())
	p.done.Store(true)
}

// Cost returns the simulated cost the query has consumed so far (the
// frozen total once finished).
func (p *Progress) Cost() float64 {
	if p == nil {
		return 0
	}
	if p.done.Load() {
		return p.finalCost.Load()
	}
	return p.liveCost()
}

func (p *Progress) liveCost() float64 {
	if fn, _ := p.costFn.Load().(func() float64); fn != nil {
		return fn()
	}
	return 0
}

// SpillBytes sums the operators' current spill footprints. Safe on nil.
func (p *Progress) SpillBytes() float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	list := p.list
	p.mu.Unlock()
	var b float64
	for _, o := range list {
		b += o.spill.Load()
	}
	return b
}

// Switches returns the plan switches recorded so far. Safe on nil.
func (p *Progress) Switches() int64 {
	if p == nil {
		return 0
	}
	return p.switches.Load()
}

// Score is the continuous suboptimality estimate, the PLANSIEVE-style
// signal derived between checkpoints:
//
//	S = (C + max(E-C, 0)·ρ) / E
//
// where C is cost consumed, E the original total estimate, and ρ the
// largest live rows/estimate overshoot across operators. On a query
// tracking its estimates S stays ≈ 1; as an operator overproduces
// mid-segment, the unconsumed remainder is inflated by ρ and S rises
// before any checkpoint fires. Checkpoints clamp S from below at their
// measured Eq.2 position (tCurImproved/T_orig). Safe on nil (returns 0).
func (p *Progress) Score() float64 {
	if p == nil {
		return 0
	}
	e := p.estCost.Load()
	if e <= 0 {
		return p.scoreFloor.Load()
	}
	c := p.Cost()
	rho := p.maxRatio.Load()
	if rho < 1 {
		rho = 1
	}
	rem := e - c
	if rem < 0 {
		rem = 0
	}
	s := (c + rem*rho) / e
	if floor := p.scoreFloor.Load(); floor > s {
		s = floor
	}
	return s
}

// Fraction estimates how far along the query is: cost consumed over the
// larger of the estimate and the consumption. Monotone non-decreasing
// (cost only grows), reaching 1 exactly when the query finishes.
func (p *Progress) Fraction() float64 {
	if p == nil {
		return 0
	}
	if p.done.Load() {
		return 1
	}
	c := p.Cost()
	e := p.estCost.Load()
	if c <= 0 {
		return 0
	}
	if e < c {
		e = c
	}
	return c / e
}

// OpSnapshot is one operator row of a progress snapshot.
type OpSnapshot struct {
	ID         int     `json:"id"`
	Depth      int     `json:"depth"`
	Label      string  `json:"label"`
	Detail     string  `json:"detail,omitempty"`
	State      string  `json:"state"`
	EstRows    float64 `json:"est_rows"`
	Rows       int64   `json:"rows"`
	SpillBytes float64 `json:"spill_bytes,omitempty"`
}

// ProgressSnapshot is a point-in-time copy of a query's live state.
type ProgressSnapshot struct {
	Query       string       `json:"query"`
	Session     int64        `json:"session"`
	Tenant      string       `json:"tenant,omitempty"`
	SQL         string       `json:"sql"`
	State       string       `json:"state"`
	ElapsedMS   int64        `json:"elapsed_ms"`
	EstCost     float64      `json:"est_cost"`
	Cost        float64      `json:"cost"`
	Fraction    float64      `json:"fraction"`
	Score       float64      `json:"score"`
	Checkpoints int64        `json:"checkpoints"`
	Switches    int64        `json:"switches"`
	Preempts    int64        `json:"preempts,omitempty"`
	SpillBytes  float64      `json:"spill_bytes"`
	Operators   []OpSnapshot `json:"operators,omitempty"`
}

// Snapshot copies the query's current state. withOps includes the
// per-operator rows (the mqr.operators table and /progress endpoint
// want them; the /status summary does not). Safe on nil.
func (p *Progress) Snapshot(withOps bool) ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	state := "running"
	elapsed := time.Since(p.Started)
	if p.done.Load() {
		state = "done"
		elapsed = time.Duration(p.finishedNS.Load())
	}
	s := ProgressSnapshot{
		Query:       p.Tag,
		Session:     p.Session,
		Tenant:      p.Tenant,
		SQL:         p.SQL,
		State:       state,
		ElapsedMS:   elapsed.Milliseconds(),
		EstCost:     p.estCost.Load(),
		Cost:        p.Cost(),
		Fraction:    p.Fraction(),
		Score:       p.Score(),
		Checkpoints: p.checkpoints.Load(),
		Switches:    p.switches.Load(),
		Preempts:    p.preempts.Load(),
		SpillBytes:  p.SpillBytes(),
	}
	if !withOps {
		return s
	}
	p.mu.Lock()
	list := append([]*OpProgress(nil), p.list...)
	p.mu.Unlock()
	s.Operators = make([]OpSnapshot, len(list))
	for i, o := range list {
		s.Operators[i] = OpSnapshot{
			ID:         o.ID,
			Depth:      o.Depth,
			Label:      o.Label,
			Detail:     o.Detail,
			State:      o.stateName(),
			EstRows:    o.EstRows,
			Rows:       o.Rows(),
			SpillBytes: o.spill.Load(),
		}
	}
	return s
}

// ProgressRegistry tracks every in-flight query's Progress plus a small
// ring of recently finished ones, so the mqr.queries table and the
// /progress endpoint can list both. The registry is engine-wide; the
// write path touches it twice per query (Start, Finish).
type ProgressRegistry struct {
	mu      sync.Mutex
	running map[string]*Progress
	recent  []*Progress // ring, oldest first
	rpos    int
}

// RecentProgressCap bounds the finished-query ring.
const RecentProgressCap = 32

// NewProgressRegistry returns an empty registry.
func NewProgressRegistry() *ProgressRegistry {
	return &ProgressRegistry{running: map[string]*Progress{}}
}

// Start registers a new query under the default tenant and returns its
// Progress.
func (r *ProgressRegistry) Start(tag string, session int64, sql string) *Progress {
	return r.StartTenant(tag, session, sql, "")
}

// StartTenant registers a new query under a tenant and returns its
// Progress.
func (r *ProgressRegistry) StartTenant(tag string, session int64, sql, tenant string) *Progress {
	p := NewProgress(tag, session, sql)
	p.Tenant = tenant
	r.mu.Lock()
	r.running[tag] = p
	r.mu.Unlock()
	return p
}

// Finish moves a query from running to the recent ring.
func (r *ProgressRegistry) Finish(p *Progress) {
	if p == nil {
		return
	}
	p.Finish()
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.running, p.Tag)
	if len(r.recent) < RecentProgressCap {
		r.recent = append(r.recent, p)
		return
	}
	r.recent[r.rpos] = p
	r.rpos = (r.rpos + 1) % RecentProgressCap
}

// Get returns the Progress for a tag (running first, then recent), or
// nil.
func (r *ProgressRegistry) Get(tag string) *Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := r.running[tag]; p != nil {
		return p
	}
	for _, p := range r.recent {
		if p != nil && p.Tag == tag {
			return p
		}
	}
	return nil
}

// Running returns the in-flight queries, ordered by tag registration
// (map order is not stable; callers sort as needed).
func (r *ProgressRegistry) Running() []*Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Progress, 0, len(r.running))
	for _, p := range r.running {
		out = append(out, p)
	}
	return out
}

// Recent returns the finished-query ring, oldest first.
func (r *ProgressRegistry) Recent() []*Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Progress, 0, len(r.recent))
	out = append(out, r.recent[r.rpos:]...)
	out = append(out, r.recent[:r.rpos]...)
	return out
}

// MaxScore returns the largest live suboptimality score across running
// queries — the reopt_live_suboptimality gauge.
func (r *ProgressRegistry) MaxScore() float64 {
	var max float64
	for _, p := range r.Running() {
		if s := p.Score(); s > max {
			max = s
		}
	}
	return max
}

// NumRunning counts in-flight queries.
func (r *ProgressRegistry) NumRunning() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.running)
}
