// Package tenant defines the workload-management identities the
// multi-tenant scheduler serves. A tenant is a named service class — a
// fair-share weight, a scheduling priority, a memory quota, and an
// admission-queue bound — that the memory broker consults when
// deciding which queued query runs next and which running query to
// preempt at its next re-optimization checkpoint.
//
// The package is a leaf: the broker (internal/memmgr) imports it for
// admission decisions and the server threads tenant names down from
// the wire, but tenant itself depends on nothing in the engine.
package tenant

import (
	"sort"
	"sync"
)

// Default is the canonical name requests without a tenant run under.
const Default = "default"

// Canonical maps the empty tenant name to Default so every layer keys
// maps and metric labels the same way.
func Canonical(name string) string {
	if name == "" {
		return Default
	}
	return name
}

// Config is one tenant's service class.
type Config struct {
	// Weight is the fair-share weight (default 1). Under saturation a
	// tenant's admission share is proportional to its weight.
	Weight float64 `json:"weight"`
	// Priority is the scheduling band (default 0; higher wins).
	// Admission always prefers a higher band, and a queued query in a
	// higher band may preempt a running lower-band query at its next
	// re-optimization checkpoint.
	Priority int `json:"priority"`
	// QuotaBytes caps the broker memory the tenant's running queries
	// may hold at once; 0 means unlimited. A single query whose
	// minimum exceeds the quota still runs alone (over-commit, same as
	// the pool-wide cap).
	QuotaBytes float64 `json:"quota_bytes,omitempty"`
	// MaxQueued bounds the tenant's admission queue; 0 means
	// unlimited. An admission beyond the bound fails immediately with
	// memmgr.ErrQueueFull, which the server maps to HTTP 429.
	MaxQueued int `json:"max_queued,omitempty"`
}

// normalized floors the weight at a usable value so fair-share division
// never sees zero.
func (c Config) normalized() Config {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	return c
}

// Registry is the concurrent tenant table. Unknown tenants spring into
// existence with default config on first use, so single-tenant callers
// never have to register anything.
type Registry struct {
	mu   sync.RWMutex
	cfgs map[string]Config
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{cfgs: map[string]Config{}}
}

// Get returns the tenant's config, defaulting an unknown name without
// registering it.
func (r *Registry) Get(name string) Config {
	name = Canonical(name)
	r.mu.RLock()
	cfg, ok := r.cfgs[name]
	r.mu.RUnlock()
	if !ok {
		return Config{}.normalized()
	}
	return cfg
}

// Ensure registers the tenant with default config if absent and returns
// its (normalized) config.
func (r *Registry) Ensure(name string) Config {
	name = Canonical(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	cfg, ok := r.cfgs[name]
	if !ok {
		cfg = Config{}.normalized()
		r.cfgs[name] = cfg
	}
	return cfg
}

// Set installs a tenant's config (normalized), replacing any previous
// one.
func (r *Registry) Set(name string, cfg Config) {
	name = Canonical(name)
	r.mu.Lock()
	r.cfgs[name] = cfg.normalized()
	r.mu.Unlock()
}

// Names lists registered tenants, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.cfgs))
	for n := range r.cfgs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
