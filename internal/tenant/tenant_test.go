package tenant

import (
	"reflect"
	"sync"
	"testing"
)

func TestCanonical(t *testing.T) {
	if got := Canonical(""); got != Default {
		t.Errorf("Canonical(\"\") = %q, want %q", got, Default)
	}
	if got := Canonical("gold"); got != "gold" {
		t.Errorf("Canonical(gold) = %q", got)
	}
}

func TestRegistryDefaultsAndNormalization(t *testing.T) {
	r := NewRegistry()

	// Unknown names default to weight 1 without being registered.
	if cfg := r.Get("ghost"); cfg.Weight != 1 || cfg.Priority != 0 || cfg.QuotaBytes != 0 || cfg.MaxQueued != 0 {
		t.Errorf("Get(ghost) = %+v, want default", cfg)
	}
	if names := r.Names(); len(names) != 0 {
		t.Errorf("Get registered a tenant: %v", names)
	}

	// Ensure registers; empty name canonicalizes.
	if cfg := r.Ensure(""); cfg.Weight != 1 {
		t.Errorf("Ensure(\"\") = %+v", cfg)
	}
	if names := r.Names(); !reflect.DeepEqual(names, []string{Default}) {
		t.Errorf("Names = %v, want [%s]", names, Default)
	}

	// Set normalizes a non-positive weight so fair-share division never
	// sees zero; other fields pass through.
	r.Set("batch", Config{Weight: -3, Priority: 2, QuotaBytes: 64, MaxQueued: 5})
	got := r.Get("batch")
	want := Config{Weight: 1, Priority: 2, QuotaBytes: 64, MaxQueued: 5}
	if got != want {
		t.Errorf("Set/Get = %+v, want %+v", got, want)
	}

	// Set replaces; Ensure afterwards must not reset it.
	r.Set("batch", Config{Weight: 4})
	r.Ensure("batch")
	if got := r.Get("batch"); got.Weight != 4 {
		t.Errorf("Ensure clobbered an installed config: %+v", got)
	}

	if names := r.Names(); !reflect.DeepEqual(names, []string{"batch", Default}) {
		t.Errorf("Names = %v", names)
	}
}

// TestRegistryConcurrent exercises the registry from many goroutines —
// the broker reads configs on every admission decision while the server
// installs them at runtime — under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(w float64) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Set("hot", Config{Weight: w})
				_ = r.Get("hot")
				_ = r.Ensure("cold")
				_ = r.Names()
			}
		}(float64(i + 1))
	}
	wg.Wait()
	if cfg := r.Get("hot"); cfg.Weight < 1 || cfg.Weight > 8 {
		t.Errorf("hot weight = %v after concurrent sets", cfg.Weight)
	}
}
