// Package types defines the value, tuple, and schema primitives shared by
// every layer of the engine: storage, catalog, optimizer, and executor.
//
// A Value is a compact tagged union over the SQL types the engine supports
// (64-bit integers, 64-bit floats, strings, and dates stored as days since
// the Unix epoch). Values are immutable once constructed; all operations
// return new Values.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"time"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported SQL value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindDate
)

// String returns the SQL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of this kind participate in arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a tagged union over the engine's SQL types. The zero Value is
// the SQL NULL.
type Value struct {
	kind Kind
	i    int64 // int payload, or days-since-epoch for dates
	f    float64
	s    string
}

// NewInt returns an INTEGER value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewDate returns a DATE value holding the given number of days since the
// Unix epoch (1970-01-01).
func NewDate(days int64) Value { return Value{kind: KindDate, i: days} }

// NewDateFromTime converts a time.Time (interpreted in UTC) to a DATE.
func NewDateFromTime(t time.Time) Value {
	return NewDate(t.UTC().Unix() / 86400)
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Kind returns the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if the value is not an
// INTEGER or DATE.
func (v Value) Int() int64 {
	if v.kind != KindInt && v.kind != KindDate {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the float payload. It panics unless the value is a FLOAT.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("types: Float() on %s value", v.kind))
	}
	return v.f
}

// Str returns the string payload. It panics unless the value is a VARCHAR.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s value", v.kind))
	}
	return v.s
}

// Days returns the DATE payload as days since the epoch. It panics unless
// the value is a DATE.
func (v Value) Days() int64 {
	if v.kind != KindDate {
		panic(fmt.Sprintf("types: Days() on %s value", v.kind))
	}
	return v.i
}

// AsFloat converts any numeric or date value to float64 for estimation
// arithmetic (histogram bucket math, selectivity computation). Strings
// return their hash folded into float space so that histograms can still
// bucket them deterministically; NULL returns NaN.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt, KindDate:
		return float64(v.i)
	case KindFloat:
		return v.f
	case KindString:
		return float64(v.Hash() & 0x7fffffffffff)
	default:
		return math.NaN()
	}
}

// Compare orders two values. NULL sorts before every non-NULL value.
// Comparing an INTEGER against a FLOAT promotes the integer. Comparing
// incomparable kinds (e.g. VARCHAR vs INTEGER) orders by kind so that
// sorting remains a total order, which keeps the sort operator safe on
// heterogeneous inputs.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	// Numeric promotion.
	if v.kind.Numeric() && o.kind.Numeric() && v.kind != o.kind {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindInt, KindDate:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
	case KindFloat:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
	}
	return 0
}

// Equal reports value equality under Compare semantics.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Hash returns a stable 64-bit hash of the value, suitable for hash joins
// and hash aggregation. Equal values (including cross-kind numeric equals
// like 2 and 2.0) hash identically.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	switch v.kind {
	case KindNull:
		return 0x9e3779b97f4a7c15
	case KindInt, KindDate:
		// Hash integers through their float image when exactly
		// representable so that 2 and 2.0 collide, matching Equal.
		f := float64(v.i)
		if int64(f) == v.i {
			putUint64(buf[:], math.Float64bits(f))
		} else {
			putUint64(buf[:], uint64(v.i))
		}
		h.Write(buf[:])
	case KindFloat:
		putUint64(buf[:], math.Float64bits(v.f))
		h.Write(buf[:])
	case KindString:
		h.Write([]byte(v.s))
	}
	return h.Sum64()
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// String renders the value for display and plan output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindDate:
		return time.Unix(v.i*86400, 0).UTC().Format("2006-01-02")
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// ByteSize returns the in-memory footprint the engine charges for the
// value: fixed 8 bytes for scalars, string length plus header for strings.
// The memory manager and cost model use this to size hash tables and sort
// runs.
func (v Value) ByteSize() int {
	switch v.kind {
	case KindString:
		return 16 + len(v.s)
	default:
		return 8
	}
}

// Add returns v + o with numeric promotion. Adding anything to NULL
// yields NULL, per SQL semantics.
func (v Value) Add(o Value) (Value, error) { return arith(v, o, '+') }

// Sub returns v - o with numeric promotion.
func (v Value) Sub(o Value) (Value, error) { return arith(v, o, '-') }

// Mul returns v * o with numeric promotion.
func (v Value) Mul(o Value) (Value, error) { return arith(v, o, '*') }

// Div returns v / o with numeric promotion. Integer division of integers
// follows SQL and truncates; division by zero is an error.
func (v Value) Div(o Value) (Value, error) { return arith(v, o, '/') }

func arith(v, o Value, op byte) (Value, error) {
	if v.IsNull() || o.IsNull() {
		return Null(), nil
	}
	// DATE +/- INTEGER shifts by days.
	if v.kind == KindDate && o.kind == KindInt && (op == '+' || op == '-') {
		if op == '+' {
			return NewDate(v.i + o.i), nil
		}
		return NewDate(v.i - o.i), nil
	}
	if !v.kind.Numeric() || !o.kind.Numeric() {
		return Null(), fmt.Errorf("types: cannot apply %c to %s and %s", op, v.kind, o.kind)
	}
	if v.kind == KindInt && o.kind == KindInt {
		switch op {
		case '+':
			return NewInt(v.i + o.i), nil
		case '-':
			return NewInt(v.i - o.i), nil
		case '*':
			return NewInt(v.i * o.i), nil
		case '/':
			if o.i == 0 {
				return Null(), fmt.Errorf("types: integer division by zero")
			}
			return NewInt(v.i / o.i), nil
		}
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch op {
	case '+':
		return NewFloat(a + b), nil
	case '-':
		return NewFloat(a - b), nil
	case '*':
		return NewFloat(a * b), nil
	case '/':
		if b == 0 {
			return Null(), fmt.Errorf("types: division by zero")
		}
		return NewFloat(a / b), nil
	}
	return Null(), fmt.Errorf("types: unknown operator %c", op)
}
