package types

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randomValue draws a value across all kinds for ordering properties.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return NewInt(int64(r.Intn(200) - 100))
	case 1:
		return NewFloat(float64(r.Intn(400))/4 - 50)
	case 2:
		return NewString(string(rune('a' + r.Intn(26))))
	case 3:
		return NewDate(int64(r.Intn(1000)))
	default:
		return Null()
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	// Antisymmetry and transitivity over random triples of mixed kinds.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSortMixedKindsDoesNotPanic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	vs := make([]Value, 500)
	for i := range vs {
		vs[i] = randomValue(r)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
	for i := 1; i < len(vs); i++ {
		if vs[i-1].Compare(vs[i]) > 0 {
			t.Fatal("sorted sequence violates Compare")
		}
	}
	// NULLs sort first.
	sawNonNull := false
	for _, v := range vs {
		if v.IsNull() && sawNonNull {
			t.Fatal("NULL after non-NULL")
		}
		if !v.IsNull() {
			sawNonNull = true
		}
	}
}
