package types

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tuples := []Tuple{
		{},
		{NewInt(0)},
		{NewInt(-1), NewFloat(math.Pi), NewString(""), NewString("hello"), Null(), NewDate(9500)},
		{NewString(string(make([]byte, 1000)))},
	}
	for _, in := range tuples {
		buf := EncodeTuple(nil, in)
		if len(buf) != EncodedSize(in) {
			t.Errorf("EncodedSize(%v) = %d, encoded %d bytes", in, EncodedSize(in), len(buf))
		}
		out, n, err := DecodeTuple(buf)
		if err != nil {
			t.Fatalf("DecodeTuple(%v): %v", in, err)
		}
		if n != len(buf) {
			t.Errorf("DecodeTuple consumed %d of %d bytes", n, len(buf))
		}
		if len(out) != len(in) {
			t.Fatalf("round trip %v -> %v", in, out)
		}
		for i := range in {
			if in[i].Kind() != out[i].Kind() || !in[i].Equal(out[i]) {
				t.Errorf("column %d: %v -> %v", i, in[i], out[i])
			}
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := EncodeTuple(nil, Tuple{NewInt(7), NewString("abcdef")})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeTuple(full[:cut]); err == nil {
			t.Errorf("DecodeTuple of %d/%d bytes did not error", cut, len(full))
		}
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	buf := []byte{1, 0, 0xEE}
	if _, _, err := DecodeTuple(buf); err == nil {
		t.Error("unknown kind byte did not error")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(i int64, fv float64, s string, days int32) bool {
		if math.IsNaN(fv) {
			fv = 0 // NaN breaks Equal; executor never stores NaN
		}
		in := Tuple{NewInt(i), NewFloat(fv), NewString(s), NewDate(int64(days)), Null()}
		buf := EncodeTuple(nil, in)
		out, n, err := DecodeTuple(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeAppendsToExisting(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	buf := EncodeTuple(prefix, Tuple{NewInt(1)})
	if buf[0] != 0xAA || buf[1] != 0xBB {
		t.Error("EncodeTuple clobbered the prefix")
	}
	out, _, err := DecodeTuple(buf[2:])
	if err != nil || !out[0].Equal(NewInt(1)) {
		t.Errorf("decode after prefix: %v, %v", out, err)
	}
}
