package types

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INTEGER",
		KindFloat:  "FLOAT",
		KindString: "VARCHAR",
		KindDate:   "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("Int() = %d, want 42", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float() = %g, want 2.5", got)
	}
	if got := NewString("x").Str(); got != "x" {
		t.Errorf("Str() = %q, want x", got)
	}
	if got := NewDate(100).Days(); got != 100 {
		t.Errorf("Days() = %d, want 100", got)
	}
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if NewInt(1).IsNull() {
		t.Error("NewInt(1).IsNull() = true")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { NewString("x").Int() })
	mustPanic("Float on int", func() { NewInt(1).Float() })
	mustPanic("Str on float", func() { NewFloat(1).Str() })
	mustPanic("Days on int", func() { NewInt(1).Days() })
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewDate(10), NewDate(20), -1},
		{Null(), NewInt(0), -1},
		{NewInt(0), Null(), 1},
		{Null(), Null(), 0},
		// Numeric promotion across kinds.
		{NewInt(2), NewFloat(2.0), 0},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(3.0), NewInt(2), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareTotalOrderAcrossKinds(t *testing.T) {
	// Incomparable kinds must still form a consistent total order.
	a, b := NewInt(5), NewString("abc")
	if a.Compare(b)+b.Compare(a) != 0 {
		t.Error("cross-kind Compare is not antisymmetric")
	}
}

func TestHashEqualConsistency(t *testing.T) {
	if NewInt(2).Hash() != NewFloat(2.0).Hash() {
		t.Error("equal numeric values 2 and 2.0 hash differently")
	}
	if NewInt(7).Hash() == NewInt(8).Hash() {
		t.Error("distinct ints 7 and 8 collide (suspicious for FNV)")
	}
	f := func(x int64) bool {
		return NewInt(x).Hash() == NewInt(x).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashEqualConsistencyProperty(t *testing.T) {
	// Property: Equal(a,b) implies Hash(a) == Hash(b) for mixed
	// int/float pairs.
	f := func(x int32) bool {
		a, b := NewInt(int64(x)), NewFloat(float64(x))
		return !a.Equal(b) || a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAsFloat(t *testing.T) {
	if got := NewInt(4).AsFloat(); got != 4 {
		t.Errorf("AsFloat int = %g", got)
	}
	if got := NewDate(3).AsFloat(); got != 3 {
		t.Errorf("AsFloat date = %g", got)
	}
	if got := NewFloat(1.25).AsFloat(); got != 1.25 {
		t.Errorf("AsFloat float = %g", got)
	}
	if !math.IsNaN(Null().AsFloat()) {
		t.Error("AsFloat null is not NaN")
	}
	if NewString("x").AsFloat() < 0 {
		t.Error("AsFloat string is negative")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(-3), "-3"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{Null(), "NULL"},
		{NewDate(0), "1970-01-01"},
		{NewDateFromTime(time.Date(1996, 3, 1, 12, 0, 0, 0, time.UTC)), "1996-03-01"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustV(NewInt(2).Add(NewInt(3))); !got.Equal(NewInt(5)) {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(NewInt(7).Div(NewInt(2))); !got.Equal(NewInt(3)) {
		t.Errorf("7/2 = %v, want truncated 3", got)
	}
	if got := mustV(NewFloat(1.5).Mul(NewInt(2))); !got.Equal(NewFloat(3.0)) {
		t.Errorf("1.5*2 = %v", got)
	}
	if got := mustV(NewInt(10).Sub(NewFloat(0.5))); !got.Equal(NewFloat(9.5)) {
		t.Errorf("10-0.5 = %v", got)
	}
	if got := mustV(NewDate(100).Add(NewInt(5))); !got.Equal(NewDate(105)) {
		t.Errorf("date+5 = %v", got)
	}
	if got := mustV(NewDate(100).Sub(NewInt(5))); !got.Equal(NewDate(95)) {
		t.Errorf("date-5 = %v", got)
	}
	if got := mustV(Null().Add(NewInt(1))); !got.IsNull() {
		t.Errorf("NULL+1 = %v, want NULL", got)
	}
	if _, err := NewInt(1).Div(NewInt(0)); err == nil {
		t.Error("1/0 did not error")
	}
	if _, err := NewFloat(1).Div(NewFloat(0)); err == nil {
		t.Error("1.0/0.0 did not error")
	}
	if _, err := NewString("a").Add(NewInt(1)); err == nil {
		t.Error("string+int did not error")
	}
}

func TestByteSize(t *testing.T) {
	if NewInt(1).ByteSize() != 8 {
		t.Error("int ByteSize != 8")
	}
	if NewString("abcd").ByteSize() != 20 {
		t.Error("string ByteSize != 16+len")
	}
	tp := Tuple{NewInt(1), NewString("ab")}
	if tp.ByteSize() != 16+8+18 {
		t.Errorf("tuple ByteSize = %d", tp.ByteSize())
	}
}
