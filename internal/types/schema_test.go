package types

import (
	"testing"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Table: "r", Name: "a", Kind: KindInt, Key: true},
		Column{Table: "r", Name: "b", Kind: KindString},
		Column{Table: "s", Name: "a", Kind: KindInt},
	)
}

func TestResolveQualified(t *testing.T) {
	s := testSchema()
	i, err := s.Resolve("r", "a")
	if err != nil || i != 0 {
		t.Errorf("Resolve(r.a) = %d, %v", i, err)
	}
	i, err = s.Resolve("s", "a")
	if err != nil || i != 2 {
		t.Errorf("Resolve(s.a) = %d, %v", i, err)
	}
}

func TestResolveBare(t *testing.T) {
	s := testSchema()
	i, err := s.Resolve("", "b")
	if err != nil || i != 1 {
		t.Errorf("Resolve(b) = %d, %v", i, err)
	}
	if _, err := s.Resolve("", "a"); err == nil {
		t.Error("ambiguous bare reference did not error")
	}
	if _, err := s.Resolve("", "zzz"); err == nil {
		t.Error("unknown column did not error")
	}
	if _, err := s.Resolve("t", "a"); err == nil {
		t.Error("unknown table did not error")
	}
}

func TestResolveCaseInsensitive(t *testing.T) {
	s := testSchema()
	i, err := s.Resolve("R", "B")
	if err != nil || i != 1 {
		t.Errorf("Resolve(R.B) = %d, %v", i, err)
	}
}

func TestConcatProject(t *testing.T) {
	s := testSchema()
	o := NewSchema(Column{Table: "t", Name: "x", Kind: KindFloat})
	c := s.Concat(o)
	if c.Len() != 4 || c.Columns[3].Name != "x" {
		t.Errorf("Concat = %v", c)
	}
	p := c.Project([]int{3, 0})
	if p.Len() != 2 || p.Columns[0].Name != "x" || p.Columns[1].Name != "a" {
		t.Errorf("Project = %v", p)
	}
}

func TestSchemaString(t *testing.T) {
	s := NewSchema(Column{Table: "r", Name: "a", Kind: KindInt})
	if got := s.String(); got != "(r.a INTEGER)" {
		t.Errorf("String() = %q", got)
	}
}

func TestTupleCloneConcat(t *testing.T) {
	a := Tuple{NewInt(1), NewString("x")}
	b := a.Clone()
	b[0] = NewInt(2)
	if !a[0].Equal(NewInt(1)) {
		t.Error("Clone aliases the original")
	}
	c := a.Concat(Tuple{NewFloat(3)})
	if len(c) != 3 || !c[2].Equal(NewFloat(3)) {
		t.Errorf("Concat = %v", c)
	}
	if got := a.String(); got != "[1, x]" {
		t.Errorf("Tuple.String() = %q", got)
	}
}

func TestColumnQualifiedName(t *testing.T) {
	if got := (Column{Table: "r", Name: "a"}).QualifiedName(); got != "r.a" {
		t.Errorf("QualifiedName = %q", got)
	}
	if got := (Column{Name: "cnt"}).QualifiedName(); got != "cnt" {
		t.Errorf("computed QualifiedName = %q", got)
	}
}
