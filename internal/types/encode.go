package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Tuple wire format, used by heap pages and temp files:
//
//	u16 column count
//	per column: u8 kind, then payload
//	  NULL:   nothing
//	  INT:    varint-free fixed 8 bytes (little endian)
//	  FLOAT:  8 bytes IEEE-754 bits
//	  DATE:   8 bytes days
//	  STRING: u32 length + bytes
//
// The format is self-describing so temp files materialized mid-query can
// be re-read without consulting the catalog.

// EncodedSize returns the number of bytes EncodeTuple will produce.
func EncodedSize(t Tuple) int {
	n := 2
	for _, v := range t {
		n++ // kind byte
		switch v.kind {
		case KindNull:
		case KindString:
			n += 4 + len(v.s)
		default:
			n += 8
		}
	}
	return n
}

// EncodeTuple appends the wire form of t to dst and returns the extended
// slice.
func EncodeTuple(dst []byte, t Tuple) []byte {
	var scratch [8]byte
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(t)))
	dst = append(dst, scratch[:2]...)
	for _, v := range t {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindNull:
		case KindInt, KindDate:
			binary.LittleEndian.PutUint64(scratch[:], uint64(v.i))
			dst = append(dst, scratch[:]...)
		case KindFloat:
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v.f))
			dst = append(dst, scratch[:]...)
		case KindString:
			binary.LittleEndian.PutUint32(scratch[:4], uint32(len(v.s)))
			dst = append(dst, scratch[:4]...)
			dst = append(dst, v.s...)
		}
	}
	return dst
}

// DecodeTuple parses one tuple from the front of b, returning the tuple
// and the number of bytes consumed.
func DecodeTuple(b []byte) (Tuple, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("types: truncated tuple header")
	}
	n := int(binary.LittleEndian.Uint16(b[:2]))
	off := 2
	t := make(Tuple, n)
	for i := 0; i < n; i++ {
		if off >= len(b) {
			return nil, 0, fmt.Errorf("types: truncated tuple at column %d", i)
		}
		kind := Kind(b[off])
		off++
		switch kind {
		case KindNull:
			t[i] = Null()
		case KindInt, KindDate:
			if off+8 > len(b) {
				return nil, 0, fmt.Errorf("types: truncated int at column %d", i)
			}
			raw := int64(binary.LittleEndian.Uint64(b[off : off+8]))
			if kind == KindInt {
				t[i] = NewInt(raw)
			} else {
				t[i] = NewDate(raw)
			}
			off += 8
		case KindFloat:
			if off+8 > len(b) {
				return nil, 0, fmt.Errorf("types: truncated float at column %d", i)
			}
			t[i] = NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[off : off+8])))
			off += 8
		case KindString:
			if off+4 > len(b) {
				return nil, 0, fmt.Errorf("types: truncated string length at column %d", i)
			}
			l := int(binary.LittleEndian.Uint32(b[off : off+4]))
			off += 4
			if off+l > len(b) {
				return nil, 0, fmt.Errorf("types: truncated string at column %d", i)
			}
			t[i] = NewString(string(b[off : off+l]))
			off += l
		default:
			return nil, 0, fmt.Errorf("types: unknown kind %d at column %d", kind, i)
		}
	}
	return t, off, nil
}
