package types

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a schema: its qualified name and kind.
// Table is the (possibly aliased) relation the column belongs to; it is
// empty for computed columns such as aggregate outputs.
type Column struct {
	Table string
	Name  string
	Kind  Kind
	// Key marks columns that are unique keys of their base table. The
	// optimizer's inaccuracy-potential rules (paper §2.5) distinguish
	// equi-joins on key attributes from joins on non-key attributes.
	Key bool
}

// QualifiedName returns "table.name", or just "name" for computed columns.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns describing the tuples a plan node
// produces.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema over the given columns.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Resolve finds the index of a column reference. The reference may be
// qualified ("lineitem.l_qty") or bare ("l_qty"). A bare reference that
// matches columns from more than one table is ambiguous and returns an
// error; an unknown reference also returns an error.
func (s *Schema) Resolve(table, name string) (int, error) {
	found := -1
	for i, c := range s.Columns {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("types: ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		ref := name
		if table != "" {
			ref = table + "." + name
		}
		return -1, fmt.Errorf("types: unknown column %q", ref)
	}
	return found, nil
}

// Concat returns a new schema holding s's columns followed by o's. Join
// operators use it to describe their output.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Columns)+len(o.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, o.Columns...)
	return &Schema{Columns: cols}
}

// Project returns a schema of the columns at the given indexes.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Columns[j]
	}
	return &Schema{Columns: cols}
}

// String renders the schema as "(t.a INTEGER, t.b VARCHAR)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QualifiedName())
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is one row: a slice of values positionally matching a schema.
type Tuple []Value

// ByteSize returns the memory footprint the engine charges for the tuple.
func (t Tuple) ByteSize() int {
	n := 16 // slice header + bookkeeping
	for _, v := range t {
		n += v.ByteSize()
	}
	return n
}

// Clone returns a copy of the tuple safe to retain after the producing
// operator advances. Values are immutable, so a shallow slice copy is a
// deep copy.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Concat returns a new tuple holding t's values followed by o's.
func (t Tuple) Concat(o Tuple) Tuple {
	c := make(Tuple, 0, len(t)+len(o))
	c = append(c, t...)
	c = append(c, o...)
	return c
}

// String renders the tuple for display: "[1, widget, 1996-03-01]".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
