package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/reopt"
	"repro/internal/session"
	"repro/internal/tpcd"
)

// OverheadRow is one query's live-progress monitoring overhead: real
// wall-clock time with per-operator progress tracking on versus off.
// Unlike every other figure, simulated cost cannot measure this — the
// instrumentation charges nothing to the meter by design — so the
// harness times actual execution, takes the minimum over reps to shed
// scheduler noise, and interleaves the two arms so drift hits both.
type OverheadRow struct {
	Query  string     `json:"query"`
	Class  tpcd.Class `json:"class"`
	BaseNS int64      `json:"base_ns"` // min wall nanos, progress off
	ProgNS int64      `json:"prog_ns"` // min wall nanos, progress on
	Ratio  float64    `json:"ratio"`   // ProgNS / BaseNS
}

// ProgressOverhead measures monitoring overhead on the medium and
// complex queries (the simple ones finish too fast to time reliably),
// running full re-optimization through a session manager — the same
// path production queries take, so the measurement includes the
// progress registry, the always-on trace tee, and the per-operator
// wrappers.
func ProgressOverhead(cfg Config, reps int) ([]OverheadRow, error) {
	if reps < 1 {
		reps = 3
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	m := session.NewManager(env.Cat, env.Pool, env.Meter, session.Config{
		MemBudget: env.Cfg.MemBudget,
	})
	sess := m.Session()
	run := func(q tpcd.Query, noProgress bool) (time.Duration, error) {
		start := time.Now()
		_, err := sess.Exec(context.Background(), q.SQL, session.Options{
			Mode:       reopt.ModeFull,
			NoProgress: noProgress,
		})
		return time.Since(start), err
	}
	var rows []OverheadRow
	for _, q := range tpcd.Queries() {
		if q.Class == tpcd.Simple {
			continue
		}
		// One unmeasured run per arm warms the plan cache and buffer
		// pool so the measured reps compare steady states.
		for _, warm := range []bool{true, false} {
			if _, err := run(q, warm); err != nil {
				return nil, fmt.Errorf("%s warmup: %w", q.Name, err)
			}
		}
		base, prog := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			b, err := run(q, true)
			if err != nil {
				return nil, fmt.Errorf("%s base: %w", q.Name, err)
			}
			p, err := run(q, false)
			if err != nil {
				return nil, fmt.Errorf("%s progress: %w", q.Name, err)
			}
			if b < base {
				base = b
			}
			if p < prog {
				prog = p
			}
		}
		ratio := 0.0
		if base > 0 {
			ratio = float64(prog) / float64(base)
		}
		rows = append(rows, OverheadRow{
			Query: q.Name, Class: q.Class,
			BaseNS: base.Nanoseconds(), ProgNS: prog.Nanoseconds(), Ratio: ratio,
		})
	}
	return rows, nil
}

// OverheadSummary condenses the overhead rows into the gated columns.
type OverheadSummary struct {
	// GeomeanRatio is the geometric mean of per-query wall-time ratios
	// (progress on / off); the CI gate bounds it.
	GeomeanRatio float64 `json:"geomean_ratio"`
	// MaxRatio is the worst single query.
	MaxRatio float64 `json:"max_ratio"`
	// Skipped marks a summary with zero valid measurements — gates must
	// fail, not pass, on it.
	Skipped bool `json:"skipped,omitempty"`
}

// SummarizeOverhead computes the geomean and worst-case ratios.
func SummarizeOverhead(rows []OverheadRow) OverheadSummary {
	var s OverheadSummary
	var logSum float64
	n := 0
	for _, r := range rows {
		if r.Ratio <= 0 || math.IsInf(r.Ratio, 0) || math.IsNaN(r.Ratio) {
			continue
		}
		logSum += math.Log(r.Ratio)
		n++
		if r.Ratio > s.MaxRatio {
			s.MaxRatio = r.Ratio
		}
	}
	if n > 0 {
		s.GeomeanRatio, _ = finite(math.Exp(logSum / float64(n)))
	}
	s.Skipped = n == 0
	return s
}

// FormatOverhead renders the overhead rows as an aligned table.
func FormatOverhead(title string, rows []OverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-5s %-8s %12s %12s %8s\n",
		"query", "class", "base", "progress", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-8s %12s %12s %7.3fx\n",
			r.Query, r.Class,
			time.Duration(r.BaseNS).Round(time.Microsecond),
			time.Duration(r.ProgNS).Round(time.Microsecond),
			r.Ratio)
	}
	return b.String()
}
