package bench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/reopt"
	"repro/internal/tpcd"
)

// tiny returns a fast configuration for harness tests.
func tiny() Config {
	return Config{SF: 0.001, PoolPages: 128, MemBudget: 1 << 20, StaleFrac: 0.5, Seed: 3}
}

func TestNewEnvDefaults(t *testing.T) {
	env, err := NewEnv(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if env.Cfg.SF != 0.01 || env.Cfg.PoolPages != 256 || env.Cfg.MemBudget != 2<<20 {
		t.Errorf("defaults not applied: %+v", env.Cfg)
	}
}

func TestRunDeterministic(t *testing.T) {
	env, err := NewEnv(tiny())
	if err != nil {
		t.Fatal(err)
	}
	q, _ := tpcd.ByName("Q3")
	a, _, err := env.Run(q, reopt.ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := env.Run(q, reopt.ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("cold runs differ: %g vs %g", a, b)
	}
}

func TestFigure10Shape(t *testing.T) {
	rows, err := Figure10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Off <= 0 || r.Full <= 0 {
			t.Errorf("%s: empty measurements %+v", r.Query, r)
		}
		if r.Class == tpcd.Simple && math.Abs(r.Full/r.Off-1) > 0.05 {
			t.Errorf("%s: simple query deviates %.1f%%", r.Query, (r.Full/r.Off-1)*100)
		}
	}
	table := FormatRows("t", rows)
	for _, q := range []string{"Q1", "Q5", "Q8"} {
		if !strings.Contains(table, q) {
			t.Errorf("table missing %s:\n%s", q, table)
		}
	}
}

func TestFigure11ExcludesSimple(t *testing.T) {
	rows, err := Figure11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (medium+complex)", len(rows))
	}
	for _, r := range rows {
		if r.Class == tpcd.Simple {
			t.Errorf("simple query %s included", r.Query)
		}
		if r.Mem <= 0 || r.Plan <= 0 {
			t.Errorf("%s: missing mode measurements", r.Query)
		}
	}
}

func TestMuGuaranteeHolds(t *testing.T) {
	rows, err := MuGuarantee(tiny(), []float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no mu rows")
	}
	for _, r := range rows {
		if r.Overhead > 0.05 {
			t.Errorf("%s at mu=%.2f: overhead %.1f%% > 5%%", r.Query, r.Mu, r.Overhead*100)
		}
	}
}

func TestSensitivityMonotoneSwitches(t *testing.T) {
	rows, err := Sensitivity(tiny(), []float64{0.05, 10})
	if err != nil {
		t.Fatal(err)
	}
	// At an absurdly high theta2, no switches may happen.
	byQuery := map[string]map[float64]int{}
	for _, r := range rows {
		if byQuery[r.Query] == nil {
			byQuery[r.Query] = map[float64]int{}
		}
		byQuery[r.Query][r.Theta2] = r.Switches
	}
	for q, m := range byQuery {
		if m[10] > m[0.05] {
			t.Errorf("%s: more switches at theta2=10 (%d) than 0.05 (%d)", q, m[10], m[0.05])
		}
		if m[10] != 0 {
			t.Errorf("%s: switches at theta2=10", q)
		}
	}
}

func TestAblationsCoverVariants(t *testing.T) {
	rows, err := Ablations(tiny())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"normal": true, "full": true, "restart": true, "collect-all": true, "hash-only": true}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Variant] = true
		if r.Cost <= 0 {
			t.Errorf("%s/%s: zero cost", r.Query, r.Variant)
		}
	}
	for v := range want {
		if !seen[v] {
			t.Errorf("variant %s missing", v)
		}
	}
}

func TestHistFamiliesCoverFamilies(t *testing.T) {
	rows, err := HistFamilies(tiny())
	if err != nil {
		t.Fatal(err)
	}
	fams := map[string]bool{}
	for _, r := range rows {
		fams[r.Family] = true
	}
	for _, f := range []string{"maxdiff", "equi-depth", "equi-width"} {
		if !fams[f] {
			t.Errorf("family %s missing (got %v)", f, fams)
		}
	}
}

// TestSummarizeEmptyIsSkipped: aggregates over zero qualifying rows
// must come back marked skipped with finite (zero) values, never NaN or
// Inf — a skipped figure must not JSON-fail the report or satisfy a
// numeric CI gate vacuously.
func TestSummarizeEmptyIsSkipped(t *testing.T) {
	s := Summarize(nil)
	if !s.Skipped {
		t.Error("empty figure not marked skipped")
	}
	if math.IsNaN(s.EstimateError) || math.IsInf(s.EstimateError, 0) ||
		math.IsNaN(s.SwitchRate) || math.IsInf(s.SwitchRate, 0) {
		t.Errorf("non-finite aggregates on empty input: %+v", s)
	}
	// Rows that all fail to qualify for the geomean (no estimates) are
	// skipped too.
	s = Summarize([]Row{{Query: "Qx"}})
	if !s.Skipped {
		t.Error("figure with no qualifying estimate rows not marked skipped")
	}

	ps := SummarizeParallel([]ParallelRow{{Query: "Qx", Degree: 4, Speedup: 0}})
	if _, ok := ps.Speedup["d4"]; ok {
		t.Error("unmeasured degree has a Speedup entry")
	}
	if len(ps.Skipped) != 1 || ps.Skipped[0] != "d4" {
		t.Errorf("Skipped = %v, want [d4]", ps.Skipped)
	}
	// Non-finite speedups must not poison the geomean.
	ps = SummarizeParallel([]ParallelRow{
		{Query: "Qx", Degree: 2, Speedup: 2},
		{Query: "Qy", Degree: 2, Speedup: math.Inf(1)},
	})
	if got := ps.Speedup["d2"]; got != 2 {
		t.Errorf("d2 geomean = %v, want 2 (Inf row excluded)", got)
	}
}

// TestMixedWorkload smoke-tests the concurrent write/read harness: all
// writer transactions account for themselves (committed + aborted =
// attempted), throughput and the stats-version delta are positive, the
// read sweep produces summarizable rows, and vacuum leaves no dead
// versions behind.
func TestMixedWorkload(t *testing.T) {
	res, err := Mixed(tiny(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Writes
	if got := w.TxnsCommitted + w.TxnsAborted; got != 2*4 {
		t.Errorf("committed+aborted = %.0f, want 8", got)
	}
	if w.RowsWritten <= 0 || w.RowsPerSecond <= 0 {
		t.Errorf("no write throughput measured: %+v", w)
	}
	if int64(w.TxnsCommitted) != w.StatsVersionDelta {
		t.Errorf("stats version advanced %d times over %.0f commits", w.StatsVersionDelta, w.TxnsCommitted)
	}
	if w.WriteConflicts != w.TxnsAborted {
		t.Errorf("conflicts %.0f != aborts %.0f (only conflicts abort here)", w.WriteConflicts, w.TxnsAborted)
	}
	if len(res.Reads) < 5 {
		t.Errorf("only %d read measurements", len(res.Reads))
	}
	for _, r := range res.Reads {
		if r.Full <= 0 {
			t.Errorf("%s: empty read measurement", r.Query)
		}
	}
	if s := Summarize(res.Reads); s.Skipped {
		t.Error("read summary skipped; EstCost missing from reads")
	}
}
