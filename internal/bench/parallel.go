package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/reopt"
	"repro/internal/tpcd"
)

// ParallelRow is one (query, degree) measurement of the intra-query
// parallelism sweep. Cost is the metered resource total (all workers'
// charges); Wall subtracts the overlap credited at each gather point
// (only the slowest tributary of a parallel region contributes to
// elapsed time), so Wall is the simulated answer-latency the exchange
// operators buy.
type ParallelRow struct {
	Query    string     `json:"query"`
	Class    tpcd.Class `json:"class"`
	Degree   int        `json:"degree"`
	Cost     float64    `json:"cost"`
	Wall     float64    `json:"wall"`
	Speedup  float64    `json:"speedup"` // wall(degree 1) / wall(this degree)
	Workers  int        `json:"workers"`
	Switches int        `json:"switches"`
}

// Parallel sweeps degree 1..maxDegree over the medium and complex
// queries under full re-optimization with the configured stale
// statistics — the workload where checkpoints, collector merges, and
// plan switches all fire on parallel segments. Results at every degree
// must be identical (the harness cross-checks row counts); the
// interesting columns are wall speedup and whether the switch rate
// stays put as the degree grows.
func Parallel(cfg Config, maxDegree int) ([]ParallelRow, error) {
	if maxDegree < 1 {
		maxDegree = 1
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	var rows []ParallelRow
	for _, q := range tpcd.Queries() {
		if q.Class == tpcd.Simple {
			continue
		}
		var serialWall float64
		var serialRows int
		for deg := 1; deg <= maxDegree; deg *= 2 {
			cost, st, n, err := env.RunCounted(q, reopt.ModeFull, func(c *reopt.Config) {
				c.Degree = deg
			})
			if err != nil {
				return nil, fmt.Errorf("%s degree %d: %w", q.Name, deg, err)
			}
			wall := cost - st.WallSavedCost
			if wall < 0 {
				wall = 0
			}
			if deg == 1 {
				serialWall = wall
				serialRows = n
			} else if n != serialRows {
				return nil, fmt.Errorf("%s degree %d: %d rows, serial produced %d",
					q.Name, deg, n, serialRows)
			}
			speedup := 0.0
			if wall > 0 {
				speedup = serialWall / wall
			}
			rows = append(rows, ParallelRow{
				Query: q.Name, Class: q.Class, Degree: deg,
				Cost: cost, Wall: wall, Speedup: speedup,
				Workers: st.WorkersSpawned, Switches: st.PlanSwitches,
			})
		}
	}
	return rows, nil
}

// ParallelSummary condenses the sweep into the columns tracked across
// commits: per-degree geometric-mean wall speedup and switch rate.
type ParallelSummary struct {
	// Speedup maps "d<degree>" to the geometric mean of wall speedups
	// at that degree across queries.
	Speedup map[string]float64 `json:"speedup"`
	// SwitchRate maps "d<degree>" to the fraction of queries that
	// switched plans at least once at that degree.
	SwitchRate map[string]float64 `json:"switch_rate"`
	// Skipped lists "d<degree>" keys with zero qualifying measurements:
	// their Speedup entry is absent (not 1.0, not 0), and a CI gate on
	// that degree must fail loudly instead of comparing against a zero
	// value that merely means "nothing was measured".
	Skipped []string `json:"skipped,omitempty"`
}

// SummarizeParallel computes per-degree speedup and switch-rate columns.
func SummarizeParallel(rows []ParallelRow) ParallelSummary {
	type acc struct {
		logSum   float64
		n        int
		switched int
		total    int
	}
	byDeg := map[int]*acc{}
	for _, r := range rows {
		a := byDeg[r.Degree]
		if a == nil {
			a = &acc{}
			byDeg[r.Degree] = a
		}
		if r.Speedup > 0 && !math.IsInf(r.Speedup, 0) && !math.IsNaN(r.Speedup) {
			a.logSum += math.Log(r.Speedup)
			a.n++
		}
		a.total++
		if r.Switches > 0 {
			a.switched++
		}
	}
	s := ParallelSummary{Speedup: map[string]float64{}, SwitchRate: map[string]float64{}}
	for deg, a := range byDeg {
		key := fmt.Sprintf("d%d", deg)
		ok := false
		if a.n > 0 {
			var v float64
			if v, ok = finite(math.Exp(a.logSum / float64(a.n))); ok {
				s.Speedup[key] = v
			}
		}
		if !ok {
			s.Skipped = append(s.Skipped, key)
		}
		if a.total > 0 {
			s.SwitchRate[key] = float64(a.switched) / float64(a.total)
		}
	}
	sort.Strings(s.Skipped)
	return s
}

// FormatParallel renders the sweep as an aligned table.
func FormatParallel(title string, rows []ParallelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-5s %-8s %3s %10s %10s %8s %8s %3s\n",
		"query", "class", "deg", "cost", "wall", "speedup", "workers", "sw")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-8s %3d %10.0f %10.0f %7.2fx %8d %3d\n",
			r.Query, r.Class, r.Degree, r.Cost, r.Wall, r.Speedup, r.Workers, r.Switches)
	}
	return b.String()
}
