// Package bench is the experiment harness that regenerates every figure
// of the paper's evaluation (§3.2): Figure 10 (Normal vs Re-Optimized),
// Figure 11 (memory-management-only vs plan-modification-only), and
// Figure 12 (Zipfian skew at z = 0.3 and 0.6), plus the μ-overhead
// guarantee, the θ/μ sensitivity sweep the paper defers to [12], and the
// design-choice ablations DESIGN.md calls out.
//
// All "times" are deterministic simulated cost units (page I/O plus
// weighted tuple CPU); the buffer pool is dropped before every measured
// run so run-order cache effects cannot masquerade as re-optimization
// effects. Shapes — who wins, by roughly what factor — are the
// reproduction target, not absolute numbers; EXPERIMENTS.md records the
// comparison against the paper.
package bench

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/histogram"
	"repro/internal/parametric"
	"repro/internal/plan"
	"repro/internal/reopt"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/types"
)

// Config fixes one experimental environment.
type Config struct {
	// SF is the TPC-D scale factor (default 0.01 ≈ 9 MB of data, kept
	// in the paper's data:memory regime by the pool and budget below).
	SF float64
	// PoolPages sizes the buffer pool (default 256 pages = 2 MB,
	// ≈ 27:1 data:pool like the paper's 3 GB : 128 MB cluster).
	PoolPages int
	// MemBudget is per-query operator memory (default 2 MB).
	MemBudget float64
	// StaleFrac makes catalog statistics stale (default 0.5): ANALYZE
	// ran when half the data was loaded. This reproduces the paper's
	// estimation-error regime; see DESIGN.md.
	StaleFrac float64
	// Zipf skews all non-key attributes (Figure 12).
	Zipf float64
	// FactIndexes builds the lineitem.l_orderkey secondary index (the
	// hybrid experiment uses it so selectivity scenarios genuinely
	// disagree about join methods).
	FactIndexes bool
	// HistFamily is the catalog histogram family.
	HistFamily histogram.Family
	// Mu, Theta1, Theta2 override the paper's defaults when non-zero.
	Mu, Theta1, Theta2 float64
	Seed               int64
}

// Default returns the frozen benchmark environment used by EXPERIMENTS.md.
func Default() Config {
	return Config{
		SF:        0.01,
		PoolPages: 256,
		MemBudget: 2 << 20,
		StaleFrac: 0.5,
	}
}

// Env is a loaded database ready to run the query set.
type Env struct {
	Cfg   Config
	Cat   *catalog.Catalog
	Pool  *storage.BufferPool
	Meter *storage.CostMeter
}

// NewEnv generates and loads the TPC-D data for a config.
func NewEnv(cfg Config) (*Env, error) {
	if cfg.SF <= 0 {
		cfg.SF = 0.01
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 256
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 2 << 20
	}
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	pool := storage.NewBufferPool(storage.NewDisk(m), cfg.PoolPages)
	cat := catalog.New(pool)
	err := tpcd.Load(cat, tpcd.Config{
		SF:          cfg.SF,
		Zipf:        cfg.Zipf,
		Seed:        cfg.Seed,
		HistFamily:  cfg.HistFamily,
		StaleFrac:   cfg.StaleFrac,
		FactIndexes: cfg.FactIndexes,
	})
	if err != nil {
		return nil, err
	}
	return &Env{Cfg: cfg, Cat: cat, Pool: pool, Meter: m}, nil
}

// Run executes one query cold (caches dropped) in the given mode and
// returns its simulated cost and dispatcher stats.
func (e *Env) Run(q tpcd.Query, mode reopt.Mode) (float64, *reopt.Stats, error) {
	return e.RunWith(q, mode, func(c *reopt.Config) {})
}

// RunWith executes one query with extra dispatcher configuration.
func (e *Env) RunWith(q tpcd.Query, mode reopt.Mode, tweak func(*reopt.Config)) (float64, *reopt.Stats, error) {
	cost, st, _, err := e.RunCounted(q, mode, tweak)
	return cost, st, err
}

// RunCounted is RunWith plus the result-row count, for harnesses that
// cross-check result cardinality across configurations.
func (e *Env) RunCounted(q tpcd.Query, mode reopt.Mode, tweak func(*reopt.Config)) (float64, *reopt.Stats, int, error) {
	if err := e.Pool.EvictAll(); err != nil {
		return 0, nil, 0, err
	}
	cfg := reopt.DefaultConfig(mode)
	cfg.MemBudget = e.Cfg.MemBudget
	cfg.PoolPages = float64(e.Cfg.PoolPages)
	cfg.HistFamily = e.Cfg.HistFamily
	if e.Cfg.Mu > 0 {
		cfg.Mu = e.Cfg.Mu
	}
	if e.Cfg.Theta1 > 0 {
		cfg.Theta1 = e.Cfg.Theta1
	}
	if e.Cfg.Theta2 > 0 {
		cfg.Theta2 = e.Cfg.Theta2
	}
	tweak(&cfg)
	d := reopt.New(e.Cat, cfg)
	ctx := &exec.Ctx{Pool: e.Pool, Meter: e.Meter, Params: plan.Params{}}
	before := e.Meter.Snapshot()
	rows, st, err := d.RunSQL(q.SQL, plan.Params{}, ctx)
	if err != nil {
		return 0, nil, 0, err
	}
	return e.Meter.Snapshot().Sub(before).Cost(), st, len(rows), nil
}

// Row is one query's measurements across modes. Zero cells were not run.
type Row struct {
	Query string     `json:"query"`
	Class tpcd.Class `json:"class"`
	Off   float64    `json:"off"`
	Mem   float64    `json:"mem,omitempty"`
	Plan  float64    `json:"plan,omitempty"`
	Full  float64    `json:"full,omitempty"`
	// EstCost is the optimizer's estimated cost of the initial plan in
	// the re-optimized run; comparing it against the measured cost gives
	// the estimate error the JSON report summarizes.
	EstCost  float64 `json:"est_cost,omitempty"`
	Switches int     `json:"switches"`
	Reallocs int     `json:"reallocs"`
}

// Summary condenses a figure's rows into the two columns the JSON
// report tracks across runs: how wrong the optimizer's cost estimates
// were, and how often the engine decided to switch plans.
type Summary struct {
	// EstimateError is the geometric mean of actual/estimated cost over
	// the re-optimized runs (1.0 = perfect estimates; the geometric mean
	// keeps 10x-under and 10x-over errors from cancelling only when they
	// genuinely offset).
	EstimateError float64 `json:"estimate_error"`
	// SwitchRate is the fraction of queries that switched plans at
	// least once.
	SwitchRate float64 `json:"switch_rate"`
	// Skipped marks a summary with zero qualifying rows: the aggregate
	// columns above are meaningless (and would otherwise read as a
	// perfectly healthy 0), so consumers — including CI gates — must
	// treat the figure as not measured rather than as passing.
	Skipped bool `json:"skipped,omitempty"`
}

// finite guards an aggregate against NaN/Inf (empty inputs, zero
// denominators): encoding/json refuses non-finite floats, so a single
// degenerate figure would otherwise break the whole -json report.
func finite(v float64) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}

// Summarize computes the estimate-error and switch-rate columns over a
// figure's rows.
func Summarize(rows []Row) Summary {
	var s Summary
	var logSum float64
	n, switched := 0, 0
	for _, r := range rows {
		actual := r.Full
		if actual == 0 {
			actual = r.Plan
		}
		if r.EstCost > 0 && actual > 0 {
			if l := math.Log(actual / r.EstCost); !math.IsNaN(l) && !math.IsInf(l, 0) {
				logSum += l
				n++
			}
		}
		if r.Switches > 0 {
			switched++
		}
	}
	if n > 0 {
		s.EstimateError, _ = finite(math.Exp(logSum / float64(n)))
	}
	if len(rows) > 0 {
		s.SwitchRate, _ = finite(float64(switched) / float64(len(rows)))
	}
	s.Skipped = n == 0
	return s
}

// pct formats a relative change against Off.
func pct(v, off float64) string {
	if v == 0 || off == 0 {
		return "      -"
	}
	return fmt.Sprintf("%+6.1f%%", (v/off-1)*100)
}

// Figure10 measures Normal (off) vs Re-Optimized (full) for every query.
func Figure10(cfg Config) ([]Row, error) {
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, q := range tpcd.Queries() {
		off, _, err := env.Run(q, reopt.ModeOff)
		if err != nil {
			return nil, fmt.Errorf("%s off: %w", q.Name, err)
		}
		full, st, err := env.Run(q, reopt.ModeFull)
		if err != nil {
			return nil, fmt.Errorf("%s full: %w", q.Name, err)
		}
		rows = append(rows, Row{
			Query: q.Name, Class: q.Class, Off: off, Full: full,
			EstCost: st.EstimatedCost, Switches: st.PlanSwitches, Reallocs: st.MemReallocs,
		})
	}
	return rows, nil
}

// Figure11 isolates the two mechanisms for the medium and complex
// queries, as the paper does ("the simple queries are not really
// affected ... we have not included them").
func Figure11(cfg Config) ([]Row, error) {
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, q := range tpcd.Queries() {
		if q.Class == tpcd.Simple {
			continue
		}
		off, _, err := env.Run(q, reopt.ModeOff)
		if err != nil {
			return nil, err
		}
		mem, _, err := env.Run(q, reopt.ModeMemoryOnly)
		if err != nil {
			return nil, err
		}
		pl, st, err := env.Run(q, reopt.ModePlanOnly)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Query: q.Name, Class: q.Class, Off: off, Mem: mem, Plan: pl,
			EstCost: st.EstimatedCost, Switches: st.PlanSwitches,
		})
	}
	return rows, nil
}

// Figure12 re-runs the Figure 10 comparison under Zipfian skew.
func Figure12(cfg Config, z float64) ([]Row, error) {
	cfg.Zipf = z
	return Figure10(cfg)
}

// FormatRows renders measurement rows as an aligned table.
func FormatRows(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-5s %-8s %10s %18s %18s %18s  %s\n",
		"query", "class", "normal", "mem-only", "plan-only", "re-optimized", "sw/ra")
	for _, r := range rows {
		memCell, planCell, fullCell := "      -", "      -", "      -"
		if r.Mem > 0 {
			memCell = fmt.Sprintf("%8.0f %s", r.Mem, pct(r.Mem, r.Off))
		}
		if r.Plan > 0 {
			planCell = fmt.Sprintf("%8.0f %s", r.Plan, pct(r.Plan, r.Off))
		}
		if r.Full > 0 {
			fullCell = fmt.Sprintf("%8.0f %s", r.Full, pct(r.Full, r.Off))
		}
		fmt.Fprintf(&b, "%-5s %-8s %10.0f %18s %18s %18s  %d/%d\n",
			r.Query, r.Class, r.Off, memCell, planCell, fullCell, r.Switches, r.Reallocs)
	}
	return b.String()
}

// MuRow is one point of the μ-overhead guarantee check.
type MuRow struct {
	Query    string  `json:"query"`
	Mu       float64 `json:"mu"`
	Overhead float64 `json:"overhead"` // fractional slowdown of full vs off
}

// MuGuarantee measures the worst-case overhead of running with
// re-optimization enabled on queries that do not benefit, across μ
// values. The paper's claim: with μ = 0.05 no query is ever more than
// 5% worse than normal.
func MuGuarantee(cfg Config, mus []float64) ([]MuRow, error) {
	var out []MuRow
	for _, mu := range mus {
		c := cfg
		c.Mu = mu
		c.StaleFrac = 0 // fresh statistics: nothing to gain, pure overhead
		env, err := NewEnv(c)
		if err != nil {
			return nil, err
		}
		for _, q := range tpcd.Queries() {
			if q.Class != tpcd.Simple {
				continue
			}
			off, _, err := env.Run(q, reopt.ModeOff)
			if err != nil {
				return nil, err
			}
			full, _, err := env.Run(q, reopt.ModeFull)
			if err != nil {
				return nil, err
			}
			out = append(out, MuRow{Query: q.Name, Mu: mu, Overhead: full/off - 1})
		}
	}
	return out, nil
}

// SensRow is one point of the θ₂ sensitivity sweep.
type SensRow struct {
	Theta2   float64 `json:"theta2"`
	Query    string  `json:"query"`
	Full     float64 `json:"full"`
	Off      float64 `json:"off"`
	Switches int     `json:"switches"`
}

// Sensitivity sweeps θ₂ (the sub-optimality indicator threshold) over
// the medium and complex queries — the analysis the paper defers to
// Kabra's thesis. The sweep runs in plan-only mode, where θ₂ is the
// gate for plan switches (in the full mode, memory re-allocation often
// repairs the improved estimate before Equation 2 is evaluated).
func Sensitivity(cfg Config, theta2s []float64) ([]SensRow, error) {
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	var out []SensRow
	for _, q := range tpcd.Queries() {
		if q.Class == tpcd.Simple {
			continue
		}
		off, _, err := env.Run(q, reopt.ModeOff)
		if err != nil {
			return nil, err
		}
		for _, th := range theta2s {
			full, st, err := env.RunWith(q, reopt.ModePlanOnly, func(c *reopt.Config) {
				c.Theta2 = th
			})
			if err != nil {
				return nil, err
			}
			out = append(out, SensRow{Theta2: th, Query: q.Name, Full: full, Off: off, Switches: st.PlanSwitches})
		}
	}
	return out, nil
}

// AblationRow compares design-choice variants on one query.
type AblationRow struct {
	Query   string  `json:"query"`
	Variant string  `json:"variant"`
	Cost    float64 `json:"cost"`
}

// Ablations runs the DESIGN.md §5 variants over the complex queries:
// the paper's Figure-6 materialize-and-resubmit vs the rejected
// discard-all restart (option 1), the SCIA's μ-budgeted collectors vs a
// collect-everything policy (μ = 1), and hash-only plans.
func Ablations(cfg Config) ([]AblationRow, error) {
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name  string
		mode  reopt.Mode
		tweak func(*reopt.Config)
	}{
		{"normal", reopt.ModeOff, func(c *reopt.Config) {}},
		{"full", reopt.ModeFull, func(c *reopt.Config) {}},
		{"splice", reopt.ModeFull, func(c *reopt.Config) { c.Strategy = reopt.StrategySplice }},
		{"restart", reopt.ModeRestart, func(c *reopt.Config) {}},
		{"collect-all", reopt.ModeFull, func(c *reopt.Config) { c.Mu = 1.0 }},
		{"hash-only", reopt.ModeFull, func(c *reopt.Config) { c.DisableIndexJoin = true }},
	}
	var out []AblationRow
	for _, q := range tpcd.Queries() {
		if q.Class != tpcd.Complex {
			continue
		}
		for _, v := range variants {
			cost, _, err := env.RunWith(q, v.mode, v.tweak)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", q.Name, v.name, err)
			}
			out = append(out, AblationRow{Query: q.Name, Variant: v.name, Cost: cost})
		}
	}
	return out, nil
}

// hybridQuery is a Q3-style TPC-D query whose price cutoff is a host
// variable — a run-time parameter a parametric plan covers. The
// predicate sits on orders, the probe side of the first join, which is
// exactly where mid-query statistics arrive too late (§2.2): dynamic
// re-optimization alone cannot fix a mis-chosen join method here, but a
// parametric plan that anticipates a selective binding can.
const hybridQuery = `select l_orderkey, sum(l_extendedprice) as revenue
	from customer, orders, lineitem
	where customer.c_custkey = orders.o_custkey
	  and lineitem.l_orderkey = orders.o_orderkey
	  and o_totalprice < :cap
	group by l_orderkey order by revenue desc limit 10`

// HybridRow is one variant of the parametric/dynamic comparison.
type HybridRow struct {
	Variant  string  `json:"variant"`
	Cost     float64 `json:"cost"`
	Switches int     `json:"switches"`
}

// Hybrid compares the paper's §4 future-work proposal end to end on
// highly selective bindings — the case the static optimizer's default
// host-variable selectivities mispredict, where a full fact-table scan
// is planned for a handful of matching orders: static plan, dynamic
// re-optimization, parametric choice alone, and the parametric +
// dynamic hybrid.
func Hybrid(cfg Config) ([]HybridRow, error) {
	cfg.FactIndexes = true // give the scenarios a method choice to disagree on
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	params := plan.Params{
		// o_totalprice starts at 1000: this keeps ~1% of orders, far
		// below the 1/3 the static optimizer assumes for a host-var
		// range predicate.
		"cap": types.NewFloat(1040),
	}
	dispatcherCfg := func(mode reopt.Mode) reopt.Config {
		c := reopt.DefaultConfig(mode)
		c.MemBudget = env.Cfg.MemBudget
		c.PoolPages = float64(env.Cfg.PoolPages)
		return c
	}
	measure := func(f func(ctx *exec.Ctx) (*reopt.Stats, error)) (float64, int, error) {
		if err := env.Pool.EvictAll(); err != nil {
			return 0, 0, err
		}
		ctx := &exec.Ctx{Pool: env.Pool, Meter: env.Meter, Params: params}
		before := env.Meter.Snapshot()
		st, err := f(ctx)
		if err != nil {
			return 0, 0, err
		}
		switches := 0
		if st != nil {
			switches = st.PlanSwitches
		}
		return env.Meter.Snapshot().Sub(before).Cost(), switches, nil
	}

	var out []HybridRow
	for _, v := range []struct {
		name       string
		mode       reopt.Mode
		parametric bool
	}{
		{"static", reopt.ModeOff, false},
		{"reopt", reopt.ModeFull, false},
		{"parametric", reopt.ModeOff, true},
		{"hybrid", reopt.ModeFull, true},
	} {
		var prep *parametric.Prepared
		if v.parametric {
			prep, err = parametric.Prepare(env.Cat, hybridQuery, parametric.OptimizerConfig{
				Weights:   storage.DefaultCostWeights(),
				MemBudget: env.Cfg.MemBudget,
				PoolPages: float64(env.Cfg.PoolPages),
			}, nil)
			if err != nil {
				return nil, err
			}
		}
		cost, switches, err := measure(func(ctx *exec.Ctx) (*reopt.Stats, error) {
			d := reopt.New(env.Cat, dispatcherCfg(v.mode))
			if prep == nil {
				_, st, err := d.RunSQL(hybridQuery, params, ctx)
				return st, err
			}
			res, _, err := prep.Choose(params)
			if err != nil {
				return nil, err
			}
			_, st, err := d.RunPlan(res, params, ctx)
			return st, err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		out = append(out, HybridRow{Variant: v.name, Cost: cost, Switches: switches})
	}
	return out, nil
}

// HistFamilyRow compares catalog histogram families (how often
// re-optimization fires and what it buys depends on base-estimate
// quality — the premise of the SCIA's inaccuracy-potential rules).
type HistFamilyRow struct {
	Family   string  `json:"family"`
	Query    string  `json:"query"`
	Off      float64 `json:"off"`
	Full     float64 `json:"full"`
	Switches int     `json:"switches"`
}

// HistFamilies re-runs Figure 10's complex queries with each histogram
// family in the catalog.
func HistFamilies(cfg Config) ([]HistFamilyRow, error) {
	var out []HistFamilyRow
	for _, fam := range []histogram.Family{histogram.MaxDiff, histogram.EquiDepth, histogram.EquiWidth} {
		c := cfg
		c.HistFamily = fam
		env, err := NewEnv(c)
		if err != nil {
			return nil, err
		}
		for _, q := range tpcd.Queries() {
			if q.Class != tpcd.Complex {
				continue
			}
			off, _, err := env.Run(q, reopt.ModeOff)
			if err != nil {
				return nil, err
			}
			full, st, err := env.Run(q, reopt.ModeFull)
			if err != nil {
				return nil, err
			}
			out = append(out, HistFamilyRow{
				Family: fam.String(), Query: q.Name, Off: off, Full: full, Switches: st.PlanSwitches,
			})
		}
	}
	return out, nil
}
