package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/reopt"
	"repro/internal/session"
	"repro/internal/tenant"
	"repro/internal/tpcd"
)

// qosPoolBytes sizes the shared operator-memory pool for the QoS
// phases: roughly one medium query's demand, so admission — not
// execution — is the bottleneck and the fair-share queue stays
// backlogged for the whole measured window. (The medium queries demand
// 270–450 KiB; see memmgr.Demands.)
const qosPoolBytes = 512 << 10

// qosWeightRatio is the configured gold:bronze weight ratio the
// weighted phase measures throughput against.
const qosWeightRatio = 3.0

// QoSResult is the qos figure: three load-generation phases over one
// dataset, each a closed-loop run against a saturated broker.
type QoSResult struct {
	// Equal drives two identically-provisioned tenants at weight 1:1;
	// fair-share should split throughput evenly (Jain ~ 1).
	Equal *loadgen.Report `json:"equal"`
	// Weighted re-runs the same offered load at weights 3:1; measured
	// throughput should track the weights.
	Weighted *loadgen.Report `json:"weighted"`
	// Priority runs a low-priority tenant of long checkpointing queries
	// under a high-priority tenant of short ones: the long queries are
	// suspended at re-optimization checkpoints and resumed, which shows
	// up as nonzero preemption counts.
	Priority *loadgen.Report `json:"priority"`
	Summary  QoSSummary      `json:"summary"`
}

// QoSSummary is the gateable digest of the three phases.
type QoSSummary struct {
	// EqualJain is Jain's fairness index over weight-normalized
	// throughput in the equal-weights phase (CI gates >= 0.9).
	EqualJain float64 `json:"equal_jain"`
	// WeightRatio is the configured weighted-phase ratio (3).
	WeightRatio float64 `json:"weight_ratio"`
	// ThroughputRatio is the measured gold/bronze throughput ratio in
	// the weighted phase (CI gates within +-25% of WeightRatio).
	ThroughputRatio float64 `json:"throughput_ratio"`
	// PriorityPreempts counts checkpoint suspensions the priority phase
	// inflicted on the low-priority tenant.
	PriorityPreempts int64 `json:"priority_preempts"`
}

// qosManager builds a fresh session manager over the shared dataset
// with the deliberately small QoS pool. Each phase gets its own manager
// so queue state, virtual times, and metrics never bleed across phases.
func qosManager(env *Env) *session.Manager {
	return session.NewManager(env.Cat, env.Pool, env.Meter, session.Config{
		MemPoolBytes:  qosPoolBytes,
		MemBudget:     env.Cfg.MemBudget,
		PlanCacheSize: 64,
	})
}

// qosMix returns the named tpcd queries as a loadgen mix.
func qosMix(names ...string) []loadgen.Query {
	var out []loadgen.Query
	for _, q := range tpcd.Queries() {
		for _, n := range names {
			if q.Name == n {
				out = append(out, loadgen.Query{Name: q.Name, SQL: q.SQL})
			}
		}
	}
	return out
}

// QoS runs the multi-tenant fairness figure: equal-weight, 3:1
// weighted, and priority-preemption phases, each `workers` closed-loop
// sessions per tenant for `dur` after `warmup`.
func QoS(cfg Config, workers int, warmup, dur time.Duration) (*QoSResult, error) {
	if workers < 1 {
		workers = 8
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	// The fairness phases use the fast simple-class queries so the
	// measured window holds enough completions for a stable ratio; the
	// contention is in admission (every worker far exceeds its pool
	// share), not in the queries themselves.
	fast := qosMix("Q1", "Q6")
	long := qosMix("Q5", "Q7", "Q8")
	opts := loadgen.Options{Warmup: warmup, Duration: dur}

	equal, err := loadgen.Run(qosManager(env), []loadgen.Profile{
		{Tenant: "alpha", Config: tenant.Config{Weight: 1}, Workers: workers, Queries: fast},
		{Tenant: "beta", Config: tenant.Config{Weight: 1}, Workers: workers, Queries: fast},
	}, opts)
	if err != nil {
		return nil, fmt.Errorf("qos equal phase: %w", err)
	}

	weighted, err := loadgen.Run(qosManager(env), []loadgen.Profile{
		{Tenant: "gold", Config: tenant.Config{Weight: qosWeightRatio}, Workers: workers, Queries: fast},
		{Tenant: "bronze", Config: tenant.Config{Weight: 1}, Workers: workers, Queries: fast},
	}, opts)
	if err != nil {
		return nil, fmt.Errorf("qos weighted phase: %w", err)
	}

	// The low-priority tenant saturates the pool with long queries
	// under full re-optimization so they cross checkpoints while
	// holding most of it. The high-priority tenant is intermittent
	// (think time): its queue drains, batch queries get admitted, and
	// the next prod burst preempts them mid-flight — a strictly
	// higher-priority tenant with zero think time would simply starve
	// batch at admission and nothing would ever need preempting.
	prodWorkers := max(2, workers/16)
	batchWorkers := max(4, workers/8)
	priority, err := loadgen.Run(qosManager(env), []loadgen.Profile{
		{Tenant: "prod", Config: tenant.Config{Weight: 1, Priority: 1}, Workers: prodWorkers,
			Queries: fast, Think: 150 * time.Millisecond},
		{Tenant: "batch", Config: tenant.Config{Weight: 1, Priority: 0}, Workers: batchWorkers,
			Queries: long, Mode: reopt.ModeFull},
	}, opts)
	if err != nil {
		return nil, fmt.Errorf("qos priority phase: %w", err)
	}

	res := &QoSResult{Equal: equal, Weighted: weighted, Priority: priority}
	res.Summary = QoSSummary{
		EqualJain:        equal.Jain,
		WeightRatio:      qosWeightRatio,
		ThroughputRatio:  qpsRatio(weighted, "gold", "bronze"),
		PriorityPreempts: tenantPreempts(priority, "batch"),
	}
	return res, nil
}

// qpsRatio returns tenant a's throughput over tenant b's (Inf when b
// completed nothing while a did; 0 when neither did).
func qpsRatio(rep *loadgen.Report, a, b string) float64 {
	var qa, qb float64
	for _, t := range rep.Tenants {
		switch t.Tenant {
		case a:
			qa = t.QPS
		case b:
			qb = t.QPS
		}
	}
	if qb == 0 {
		if qa == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return qa / qb
}

func tenantPreempts(rep *loadgen.Report, name string) int64 {
	for _, t := range rep.Tenants {
		if t.Tenant == name {
			return t.Preempts
		}
	}
	return 0
}

// FormatQoS renders the three phases as text.
func FormatQoS(res *QoSResult) string {
	var b strings.Builder
	phase := func(name string, rep *loadgen.Report) {
		fmt.Fprintf(&b, "%s (%.1fs measured):\n", name, rep.WallSeconds)
		for _, t := range rep.Tenants {
			fmt.Fprintf(&b, "  %-8s w=%.0f workers=%d  qps=%7.1f  p50=%6.1fms p99=%6.1fms  preempts=%d rejected=%d errors=%d\n",
				t.Tenant, t.Weight, t.Workers, t.QPS, t.P50Ms, t.P99Ms, t.Preempts, t.Rejected, t.Errors)
			if t.Err != "" {
				fmt.Fprintf(&b, "           first error: %s\n", t.Err)
			}
		}
		fmt.Fprintf(&b, "  jain=%.3f\n", rep.Jain)
	}
	phase("equal weights 1:1", res.Equal)
	phase("weighted 3:1", res.Weighted)
	phase("priority preemption", res.Priority)
	s := res.Summary
	fmt.Fprintf(&b, "summary: equal_jain=%.3f  throughput_ratio=%.2f (configured %.0f:1)  priority_preempts=%d\n",
		s.EqualJain, s.ThroughputRatio, s.WeightRatio, s.PriorityPreempts)
	return b.String()
}
