package bench

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/reopt"
	"repro/internal/tpcd"
)

// TestCollectorOverheadUnderMu checks the §2.5 guarantee end to end on
// the TPC-D workload: the statistics-collection CPU the meter actually
// charged stays within the SCIA's μ budget — both against the
// optimizer's cost estimate (the quantity the budget is defined on) and
// against the measured query cost. Measured fractions sit around 0.1-
// 0.3% of query cost, well under the default μ = 5%.
func TestCollectorOverheadUnderMu(t *testing.T) {
	env, err := NewEnv(Default())
	if err != nil {
		t.Fatal(err)
	}
	charged := false
	for _, q := range tpcd.Queries() {
		if err := env.Pool.EvictAll(); err != nil {
			t.Fatal(err)
		}
		cfg := reopt.DefaultConfig(reopt.ModeFull)
		cfg.MemBudget = env.Cfg.MemBudget
		cfg.PoolPages = float64(env.Cfg.PoolPages)
		d := reopt.New(env.Cat, cfg)
		ctx := &exec.Ctx{Pool: env.Pool, Meter: env.Meter, Params: plan.Params{}}
		before := env.Meter.Snapshot()
		_, st, err := d.RunSQL(q.SQL, plan.Params{}, ctx)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		delta := env.Meter.Snapshot().Sub(before)
		statCost := float64(delta.StatCPU) * delta.Weights.StatCPU
		if st.CollectorsInserted == 0 {
			t.Errorf("%s: no collectors inserted in full mode", q.Name)
		}
		if statCost > 0 {
			charged = true
		}
		if est := st.EstimatedCost; statCost > cfg.Mu*est {
			t.Errorf("%s: collection cost %.2f exceeds mu budget %.2f (mu=%.2f of estimate %.0f)",
				q.Name, statCost, cfg.Mu*est, cfg.Mu, est)
		}
		if total := delta.Cost(); statCost > cfg.Mu*total {
			t.Errorf("%s: collection cost %.2f is %.2f%% of measured cost %.0f, over mu=%.2f",
				q.Name, statCost, 100*statCost/total, total, cfg.Mu)
		}
	}
	if !charged {
		t.Error("no query charged any statistics-collection CPU; the overhead measurement is vacuous")
	}
}
