package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/reopt"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

// hotOrders is the size of the contended key range: every writer
// transaction updates one of the first hotOrders order rows, so
// concurrent writers collide there and exercise first-writer-wins
// conflict detection under load.
const hotOrders = 16

// WriteStats is the write side of the mixed workload's report: engine
// counters plus wall-clock write throughput. Unlike the figure costs,
// throughput is real elapsed time — it measures the MVCC write path's
// overhead, not the simulated cost model.
type WriteStats struct {
	Writers           int     `json:"writers"`
	TxnsPerWriter     int     `json:"txns_per_writer"`
	TxnsCommitted     float64 `json:"txns_committed"`
	TxnsAborted       float64 `json:"txns_aborted"`
	WriteConflicts    float64 `json:"write_conflicts"`
	RowsWritten       float64 `json:"rows_written"`
	WallSeconds       float64 `json:"wall_seconds"`
	RowsPerSecond     float64 `json:"rows_per_second"`
	StatsVersionDelta int64   `json:"stats_version_delta"`
	VersionsVacuumed  int64   `json:"versions_vacuumed"`
}

// MixedResult is the mixed write/read workload's full report: one Row
// per read query execution (summarizable with Summarize, like every
// other figure) alongside the write-side statistics.
type MixedResult struct {
	Reads  []Row      `json:"reads"`
	Writes WriteStats `json:"writes"`
}

// Mixed runs the concurrent write/read workload: `writers` goroutines
// each commit `txnsPerWriter` transactions against orders (a multi-row
// insert into a private key range plus one contended hot-row update)
// while a reader sweeps the medium and complex queries under full
// re-optimization. Committed writes bump the statistics version
// mid-sweep, so later reads plan against shifted cardinalities and
// in-flight checkpoints see real write-driven staleness — the
// production scenario the MVCC subsystem exists to create. Dead
// versions are vacuumed at the end and reported.
func Mixed(cfg Config, writers, txnsPerWriter int) (*MixedResult, error) {
	if writers < 1 {
		writers = 1
	}
	if txnsPerWriter < 1 {
		txnsPerWriter = 1
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	mgr := session.NewManager(env.Cat, env.Pool, env.Meter, session.Config{
		MemPoolBytes:  float64(writers+1) * env.Cfg.MemBudget,
		MemBudget:     env.Cfg.MemBudget,
		PlanCacheSize: 64,
	})
	ctx := context.Background()
	v0 := env.Cat.StatsVersion()

	// Fresh keys start far above anything the generator produced, in a
	// private range per (writer, txn): insert conflicts are impossible,
	// so every abort is a genuine hot-row conflict.
	const keyBase = int64(1) << 40

	var wg sync.WaitGroup
	writerErrs := make([]error, writers)
	done := make(chan struct{})
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			r := rand.New(rand.NewSource(env.Cfg.Seed*1693 + int64(w)))
			for t := 0; t < txnsPerWriter; t++ {
				base := keyBase + int64(w)*1_000_000 + int64(t)*100
				err := writeTxn(ctx, s, r, base)
				if errors.Is(err, storage.ErrWriteConflict) {
					continue // aborted and counted; next transaction
				}
				if err != nil {
					writerErrs[w] = err
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// The read side sweeps until the writers finish — at least one full
	// pass, and one final pass after the last commit so the summary
	// always includes reads planned against fully shifted statistics.
	var reads []Row
	reader := mgr.Session()
	finished := false
	for pass := 0; !finished && pass < 64; pass++ {
		for _, q := range tpcd.Queries() {
			if q.Class == tpcd.Simple {
				continue
			}
			res, err := reader.Exec(ctx, q.SQL, session.Options{Mode: reopt.ModeFull})
			if err != nil {
				return nil, fmt.Errorf("mixed read %s: %w", q.Name, err)
			}
			reads = append(reads, Row{
				Query: q.Name, Class: q.Class, Full: res.Cost,
				EstCost: res.Stats.EstimatedCost, Switches: res.Stats.PlanSwitches,
			})
		}
		select {
		case <-done:
			finished = true
		default:
		}
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for w, err := range writerErrs {
		if err != nil {
			return nil, fmt.Errorf("mixed writer %d: %w", w, err)
		}
	}

	ws := WriteStats{
		Writers:           writers,
		TxnsPerWriter:     txnsPerWriter,
		TxnsCommitted:     counter(mgr, "mqr_txns_committed_total"),
		TxnsAborted:       counter(mgr, "mqr_txns_aborted_total"),
		WriteConflicts:    counter(mgr, "mqr_write_conflicts_total"),
		RowsWritten:       counter(mgr, "mqr_rows_written_total"),
		WallSeconds:       wall,
		StatsVersionDelta: env.Cat.StatsVersion() - v0,
	}
	if wall > 0 {
		ws.RowsPerSecond = ws.RowsWritten / wall
	}
	if ws.VersionsVacuumed, err = env.Cat.Vacuum(); err != nil {
		return nil, fmt.Errorf("mixed vacuum: %w", err)
	}
	return &MixedResult{Reads: reads, Writes: ws}, nil
}

// writeTxn commits one writer transaction: an update of a contended
// hot row first — its write stamp is then held for the rest of the
// transaction, so concurrent writers picking the same row conflict —
// followed by a 20-row insert into the caller's private key range. A
// conflict aborts the whole transaction (the session has no
// savepoints), so the inserts never happen.
func writeTxn(ctx context.Context, s *session.Session, r *rand.Rand, base int64) error {
	if _, err := s.Exec(ctx, "begin", session.Options{}); err != nil {
		return err
	}
	upd := fmt.Sprintf("update orders set o_totalprice = %.2f where o_orderkey = %d",
		1000+float64(r.Intn(40000))/100, 1+int64(r.Intn(hotOrders)))
	if _, err := s.Exec(ctx, upd, session.Options{}); err != nil {
		return err // DML errors abort the governing transaction
	}
	const batch = 20
	vals := make([]string, batch)
	for i := 0; i < batch; i++ {
		vals[i] = fmt.Sprintf("(%d, %d, 'O', %.2f, date '1996-%02d-%02d', '1-URGENT', 0)",
			base+int64(i), 1+r.Intn(100), 1000+float64(r.Intn(40000))/100,
			1+r.Intn(12), 1+r.Intn(28))
	}
	ins := "insert into orders (o_orderkey, o_custkey, o_orderstatus, o_totalprice," +
		" o_orderdate, o_orderpriority, o_shippriority) values " + strings.Join(vals, ", ")
	if _, err := s.Exec(ctx, ins, session.Options{}); err != nil {
		return err
	}
	_, err := s.Exec(ctx, "commit", session.Options{})
	return err
}

func counter(mgr *session.Manager, name string) float64 {
	if c, ok := mgr.Registry().Get(name).(*obs.Counter); ok {
		return c.Value()
	}
	return 0
}

// FormatMixed renders the mixed workload report as text.
func FormatMixed(res *MixedResult) string {
	var b strings.Builder
	b.WriteString(FormatRows("Mixed write/read workload (reads under concurrent DML):", res.Reads))
	w := res.Writes
	fmt.Fprintf(&b, "writes: %d writer(s) x %d txns: %.0f committed, %.0f aborted (%.0f conflicts), %.0f rows in %.2fs (%.0f rows/s)\n",
		w.Writers, w.TxnsPerWriter, w.TxnsCommitted, w.TxnsAborted, w.WriteConflicts,
		w.RowsWritten, w.WallSeconds, w.RowsPerSecond)
	fmt.Fprintf(&b, "        stats version advanced %d time(s); vacuum reclaimed %d dead version(s)\n",
		w.StatsVersionDelta, w.VersionsVacuumed)
	return b.String()
}
