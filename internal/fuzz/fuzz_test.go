package fuzz

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/reopt"
)

// TestRunClean fuzzes a handful of cases end to end: on a healthy tree
// every configuration in the matrix must pass every invariant.
func TestRunClean(t *testing.T) {
	cases := 4
	if testing.Short() {
		cases = 1
	}
	rep := Run(Options{Seed: 1, Cases: cases})
	for _, f := range rep.Failures {
		t.Errorf("failure: %s", f)
	}
	if rep.Cases != cases {
		t.Errorf("ran %d cases, want %d", rep.Cases, cases)
	}
	if rep.Runs < cases*19 {
		t.Errorf("only %d runs across %d cases; the matrix should contribute at least 19 each",
			rep.Runs, rep.Cases)
	}
}

// TestDeterminism: the same seed must produce byte-identical verdict
// transcripts — the property that makes `mqr-fuzz -seed N` replayable
// and shrinking sound.
func TestDeterminism(t *testing.T) {
	a := Run(Options{Seed: 101, Cases: 2})
	b := Run(Options{Seed: 101, Cases: 2})
	if !reflect.DeepEqual(a.Verdicts, b.Verdicts) {
		for i := range a.Verdicts {
			if i < len(b.Verdicts) && a.Verdicts[i] != b.Verdicts[i] {
				t.Errorf("verdict %d differs:\n  first:  %s\n  second: %s", i, a.Verdicts[i], b.Verdicts[i])
			}
		}
		t.Fatalf("verdict transcripts differ (%d vs %d lines)", len(a.Verdicts), len(b.Verdicts))
	}
}

// TestCorpusReplay replays every checked-in seed file. Each is the
// minimized repro of a bug that has since been fixed, so every one must
// pass now; a failure here is a regression of a specifically-known bug.
func TestCorpusReplay(t *testing.T) {
	paths, err := filepath.Glob("testdata/corpus/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no seed corpus found under testdata/corpus")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := ReadSeed(path)
			if err != nil {
				t.Fatal(err)
			}
			if nf := Check(f.Case, f.Config); nf != nil {
				t.Errorf("seed regressed (originally: %s): %s", f.Err, nf)
			}
		})
	}
}

// TestShrinkTerminates exercises the shrinker on a failure no
// reduction can reproduce (the tree is healthy, so every candidate
// passes): the walk must terminate and hand back the original case
// unchanged rather than "minimizing" to a case that does not fail.
func TestShrinkTerminates(t *testing.T) {
	orig := Failure{
		Case:   Case{Seed: 5, NTables: 4, MaxRows: 200, JoinK: 3, Grouped: true, HostVar: true, StalePct: 50},
		Config: RunConfig{Name: "off-d1-big", Degree: 1, Budget: bigBudget},
		Err:    "synthetic",
	}
	got := Shrink(orig)
	if got.Case != orig.Case {
		t.Errorf("shrink of a non-reproducible failure changed the case: %+v -> %+v", orig.Case, got.Case)
	}
}

// FuzzEngine is the native go-fuzz entry point: each input seed derives
// a case, which runs under a cheap three-configuration slice of the
// matrix (serial baseline, tiny-budget full re-optimization, forced
// switching). `go test -fuzz=FuzzEngine ./internal/fuzz` explores
// seeds; failures shrink via cmd/mqr-fuzz.
func FuzzEngine(f *testing.F) {
	for _, seed := range []int64{1, 42, 1998, 31337} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := NewCase(seed)
		// Bound the data so each fuzz iteration stays fast.
		if c.MaxRows > 150 {
			c.MaxRows = 20 + c.MaxRows%131
		}
		env, err := Build(c)
		if err != nil {
			t.Fatalf("%s: build: %v", c, err)
		}
		for _, rc := range []RunConfig{
			{Name: "off-d1-big", Mode: reopt.ModeOff, Degree: 1, Budget: bigBudget},
			{Name: "full-d1-tiny", Mode: reopt.ModeFull, Degree: 1, Budget: tinyBudget},
			{Name: "forced-d1-tiny", Mode: reopt.ModeFull, Degree: 1, Budget: tinyBudget, Forced: true},
		} {
			if _, fail := runOne(env, rc); fail != nil {
				t.Errorf("%s", fail)
			}
		}
	})
}
