package fuzz

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/reopt"
	"repro/internal/session"
	"repro/internal/tenant"
)

// Memory budgets for the matrix: tiny forces aggregate and hash-join
// spills on almost every generated dataset; big keeps everything
// resident so the same query exercises the in-memory paths.
const (
	tinyBudget = 96 << 10
	bigBudget  = 4 << 20
)

// errInjected is the sentinel armed at fault sites: seeing it back (or
// any error at all, for cascades that rewrap) is an accepted outcome of
// a fault run — the invariants that must still hold are the cleanup
// ones.
var errInjected = errors.New("fuzz: injected fault")

// RunConfig is one engine configuration in the matrix. It is part of
// the replayable seed file, so every knob that affects the run must
// live here, not in package state.
type RunConfig struct {
	Name   string     `json:"name"`
	Mode   reopt.Mode `json:"mode"`
	Degree int        `json:"degree"`
	Budget float64    `json:"budget"`
	// Forced overrides the checkpoint thresholds (θ₁ huge, θ₂ tiny) so
	// any estimate drift trips Eq1 and any improvement clears Eq2 —
	// the configuration that makes mid-query switches routine instead
	// of rare.
	Forced bool `json:"forced,omitempty"`
	// Splice switches via the Figure-5 in-place splice instead of
	// materialize-and-resubmit.
	Splice bool `json:"splice,omitempty"`
	// Warm executes the query twice on one manager; the second run
	// must come from the plan cache and still agree with the
	// reference.
	Warm bool `json:"warm,omitempty"`
	// CancelTick > 0 cancels the query's context from inside the
	// engine at the Nth scanned tuple (serial runs only).
	CancelTick int `json:"cancel_tick,omitempty"`
	// FaultSite, when set, arms errInjected at that site's Nth hit
	// (serial runs only).
	FaultSite  string `json:"fault_site,omitempty"`
	FaultAfter int    `json:"fault_after,omitempty"`
	// Preempt runs the query as a low-priority tenant and requests a
	// checkpoint suspension from its first re-optimization checkpoint:
	// the lease is released, the query re-admits through the fair-share
	// queue and re-executes. Answers must still match the reference and
	// the residue invariants must absorb the extra release/re-admit
	// cycle.
	Preempt bool `json:"preempt,omitempty"`
}

// Matrix returns the static configuration grid every case runs under.
// Cancellation and fault-site configurations are derived per case from
// a recording pass (see RunCase) because their trigger points depend on
// how many times the query actually hits each site.
func Matrix(c Case) []RunConfig {
	var m []RunConfig
	for _, deg := range []int{1, 2, 4} {
		for _, mode := range []struct {
			name string
			m    reopt.Mode
		}{{"off", reopt.ModeOff}, {"full", reopt.ModeFull}} {
			for _, b := range []struct {
				name string
				v    float64
			}{{"tiny", tinyBudget}, {"big", bigBudget}} {
				m = append(m, RunConfig{
					Name:   fmt.Sprintf("%s-d%d-%s", mode.name, deg, b.name),
					Mode:   mode.m,
					Degree: deg,
					Budget: b.v,
				})
			}
		}
	}
	return append(m,
		RunConfig{Name: "restart-d1-tiny", Mode: reopt.ModeRestart, Degree: 1, Budget: tinyBudget},
		RunConfig{Name: "restart-d1-big", Mode: reopt.ModeRestart, Degree: 1, Budget: bigBudget},
		RunConfig{Name: "forced-d1-tiny", Mode: reopt.ModeFull, Degree: 1, Budget: tinyBudget, Forced: true},
		RunConfig{Name: "forced-d1-tiny-splice", Mode: reopt.ModeFull, Degree: 1, Budget: tinyBudget, Forced: true, Splice: true},
		RunConfig{Name: "forced-d4-tiny", Mode: reopt.ModeFull, Degree: 4, Budget: tinyBudget, Forced: true},
		RunConfig{Name: "forced-restart-d1-tiny", Mode: reopt.ModeRestart, Degree: 1, Budget: tinyBudget, Forced: true},
		RunConfig{Name: "warm-d1-big", Mode: reopt.ModeFull, Degree: 1, Budget: bigBudget, Warm: true},
		RunConfig{Name: "preempt-d1-tiny", Mode: reopt.ModeFull, Degree: 1, Budget: tinyBudget, Forced: true, Preempt: true},
		RunConfig{Name: "preempt-d4-tiny", Mode: reopt.ModeFull, Degree: 4, Budget: tinyBudget, Forced: true, Preempt: true},
	)
}

// engineCounters are the monotonic metrics checked across every run: a
// counter that ever decreases within one manager's lifetime is a bug
// regardless of what the query did.
var engineCounters = []string{
	"mqr_queries_total",
	"mqr_query_errors_total",
	"mqr_queries_cancelled_total",
	"reopt_collectors_inserted_total",
	"reopt_observations_total",
	"reopt_memory_reallocs_total",
	"reopt_considered_total",
	"reopt_plan_switches_total",
	"collector_stat_cost_units_total",
	"mqr_query_cost_units_total",
}

func counterSnapshot(m *session.Manager) map[string]float64 {
	out := make(map[string]float64, len(engineCounters))
	for _, name := range engineCounters {
		if c, ok := m.Registry().Get(name).(*obs.Counter); ok {
			out[name] = c.Value()
		}
	}
	return out
}

func newManager(env *Env, budget float64) *session.Manager {
	return session.NewManager(env.Cat, env.Pool, env.Meter, session.Config{
		MemPoolBytes:  4 * budget,
		MemBudget:     budget,
		PlanCacheSize: 64,
	})
}

// runOne executes the case once (twice when Warm) under one
// configuration and checks every invariant. It returns a deterministic
// verdict line and, on any violation, a replayable Failure.
func runOne(env *Env, rc RunConfig) (string, *Failure) {
	fail := func(format string, args ...any) (string, *Failure) {
		msg := fmt.Sprintf(format, args...)
		return fmt.Sprintf("%s: FAIL %s", rc.Name, msg),
			&Failure{Case: env.Case, Config: rc, Err: msg}
	}

	mgr := newManager(env, rc.Budget)
	sess := mgr.Session()

	opts := session.Options{
		Mode:         rc.Mode,
		Params:       env.Params,
		SpliceSwitch: rc.Splice,
		Parallel:     rc.Degree,
		Seed:         env.Case.Seed,
	}
	if rc.Forced {
		// θ₁ enormous widens Eq1's inaccuracy band trigger; θ₂ near
		// zero accepts any cheaper plan at Eq2.
		opts.Theta1 = 100
		opts.Theta2 = 0.001
	}
	if rc.Preempt {
		// Multi-tenant preemption schedule: the query runs as the
		// low-priority tenant and is suspended from inside its own first
		// checkpoint — deterministic, unlike racing a real high-priority
		// admission against it. Small cases may never reach a checkpoint;
		// then the run degrades to a plain forced run and says so in the
		// verdict ("ok" instead of "preempted").
		mgr.SetTenantConfig("batch", tenant.Config{Weight: 1, Priority: 0})
		mgr.SetTenantConfig("prod", tenant.Config{Weight: 3, Priority: 1})
		opts.Tenant = "batch"
		var once sync.Once
		opts.CheckpointHook = func(int) {
			once.Do(func() {
				for _, tag := range mgr.Running() {
					mgr.Preempt(tag)
				}
			})
		}
	}

	ctx := context.Background()
	injected := rc.CancelTick > 0 || rc.FaultSite != ""
	if injected {
		inj := faultinject.Enable()
		defer faultinject.Disable()
		if rc.CancelTick > 0 {
			cctx, cancel := context.WithCancel(ctx)
			defer cancel()
			ctx = cctx
			inj.Arm("exec.scan.next", faultinject.Fault{After: rc.CancelTick, Do: cancel})
		} else {
			inj.Arm(rc.FaultSite, faultinject.Fault{After: rc.FaultAfter, Err: errInjected})
		}
	}

	runs := 1
	if rc.Warm {
		runs = 2
	}
	outcome := "ok"
	for i := 0; i < runs; i++ {
		before := counterSnapshot(mgr)
		res, err := sess.Exec(ctx, env.SQL, opts)

		after := counterSnapshot(mgr)
		for _, name := range engineCounters {
			if after[name] < before[name] {
				return fail("counter %s decreased: %g -> %g", name, before[name], after[name])
			}
		}
		if got := after["mqr_queries_total"] - before["mqr_queries_total"]; got != 1 {
			return fail("mqr_queries_total advanced by %g, want 1", got)
		}

		switch {
		case err == nil:
			got := Canonical(res.Rows)
			if len(got) != len(env.Want) {
				return fail("%d rows, reference has %d", len(got), len(env.Want))
			}
			for j := range got {
				if got[j] != env.Want[j] {
					return fail("row %d: got %s, want %s", j, got[j], env.Want[j])
				}
			}
			if rc.Warm && i == 1 && !res.CacheHit {
				return fail("second run missed the plan cache")
			}
			if rc.Preempt && res.Preempted > 0 {
				outcome = "preempted"
			}
		case rc.CancelTick > 0 && errors.Is(err, context.Canceled):
			outcome = "cancelled"
		case injected:
			// A fault (or a cancel racing completion) may surface as any
			// error, possibly rewrapped; cleanup invariants below are
			// the real check. The classification keeps verdicts
			// deterministic without depending on exact message text.
			if errors.Is(err, errInjected) {
				outcome = "injected"
			} else {
				outcome = "err"
			}
		default:
			return fail("unexpected error: %v", err)
		}
	}

	if msg := checkResidue(env, mgr); msg != "" {
		return fail("%s", msg)
	}
	return fmt.Sprintf("%s: %s", rc.Name, outcome), nil
}

// checkResidue verifies the cleanup invariants that must hold after
// every run, successful or not: no temp tables survive, the disk holds
// exactly the base tables' pages, every byte leased from the broker
// came back, and the running-query registry is empty.
func checkResidue(env *Env, mgr *session.Manager) string {
	if temps := env.Cat.TempTables(); len(temps) != 0 {
		return fmt.Sprintf("temp tables leaked: %v", temps)
	}
	if got := env.Pool.Disk().NumPages(); got != env.BasePages {
		return fmt.Sprintf("disk pages %d, want post-load baseline %d (leaked heap files)", got, env.BasePages)
	}
	// Grants are float64s reallocated mid-query in fractional shares, so
	// the pool balances back to within rounding noise, not exactly.
	if bs := mgr.Broker().Stats(); math.Abs(bs.AvailBytes-bs.PoolBytes) > 1e-3 {
		return fmt.Sprintf("broker imbalance: %.6f of %.0f bytes available (delta %g)",
			bs.AvailBytes, bs.PoolBytes, bs.PoolBytes-bs.AvailBytes)
	}
	if running := mgr.Running(); len(running) != 0 {
		return fmt.Sprintf("queries still registered as running: %v", running)
	}
	return ""
}

// siteHits is one fault site's observed hit count from the recording
// pass.
type siteHits struct {
	Site string
	Hits int
}

// recordSites runs the query once with the injector enabled but nothing
// armed, returning every site the query actually reaches and how often
// — the sampling frame for the cancellation tick and the fault sweep.
// The pass runs forced (like the sweep itself) so switch-path sites
// (checkpointing, temp-table cleanup, remainder dispatch) show up.
func recordSites(env *Env) ([]siteHits, error) {
	inj := faultinject.Enable()
	defer faultinject.Disable()
	mgr := newManager(env, tinyBudget)
	_, err := mgr.Session().Exec(context.Background(), env.SQL, session.Options{
		Mode:   reopt.ModeFull,
		Params: env.Params,
		Seed:   env.Case.Seed,
		Theta1: 100,
		Theta2: 0.001,
	})
	if err != nil {
		return nil, err
	}
	sites := inj.Seen()
	sort.Strings(sites)
	out := make([]siteHits, 0, len(sites))
	for _, s := range sites {
		out = append(out, siteHits{Site: s, Hits: inj.Hits(s)})
	}
	return out, nil
}
