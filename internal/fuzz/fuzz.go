package fuzz

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/reopt"
)

// Options bounds one fuzzing run. At least one of Cases or Deadline
// must bound it; with neither set, Run defaults to 16 cases.
type Options struct {
	// Seed numbers the cases: case i derives from Seed+i, so the same
	// (Seed, Cases) pair always fuzzes the same inputs and returns the
	// same verdicts.
	Seed int64
	// Cases caps how many cases run (0 = unbounded when Deadline is
	// set).
	Cases int
	// Deadline stops starting new cases once passed (zero = no time
	// bound). A case in progress always finishes: partial matrices
	// would make time-bounded runs nondeterministic in coverage.
	Deadline time.Time
	// Log, when set, receives one progress line per case.
	Log func(format string, args ...any)
}

// Report is the outcome of a fuzzing run. Verdicts is a deterministic
// transcript — one line per (case, configuration) run, independent of
// timing, suitable for byte-comparing two runs with the same seed.
type Report struct {
	Cases    int       `json:"cases"`
	Runs     int       `json:"runs"`
	Verdicts []string  `json:"verdicts"`
	Failures []Failure `json:"failures,omitempty"`
}

// CaseResult is one case's outcome across the whole matrix.
type CaseResult struct {
	Case     Case
	Verdicts []string
	Failures []Failure
}

// RunCase executes one case across the full configuration matrix plus
// the dynamically derived cancellation and fault-site runs, and the
// engine-independent collector-merge invariant.
func RunCase(c Case) CaseResult {
	cr := CaseResult{Case: c}
	add := func(verdict string, f *Failure) {
		cr.Verdicts = append(cr.Verdicts, verdict)
		if f != nil {
			cr.Failures = append(cr.Failures, *f)
		}
	}

	if msg := CheckCollectorMerge(c.Seed); msg != "" {
		add(ConfigCollectorMerge+": FAIL "+msg,
			&Failure{Case: c, Config: RunConfig{Name: ConfigCollectorMerge}, Err: msg})
	} else {
		add(ConfigCollectorMerge+": ok", nil)
	}

	env, err := Build(c)
	if err != nil {
		add("build: FAIL "+err.Error(),
			&Failure{Case: c, Config: RunConfig{Name: "build"}, Err: err.Error()})
		return cr
	}

	for _, rc := range Matrix(c) {
		add(runOne(env, rc))
	}

	// Derive the cancellation tick and fault-site sweep from a
	// recording pass: arming a hit the query never reaches would test
	// nothing. Both run serially — the injector is process-global, and
	// a deterministic trigger point needs a deterministic hit order.
	sites, err := recordSites(env)
	if err != nil {
		add("record: FAIL "+err.Error(),
			&Failure{Case: c, Config: RunConfig{Name: "record"}, Err: err.Error()})
		return cr
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5eed))
	for _, s := range sites {
		if s.Site == "exec.scan.next" && s.Hits > 0 {
			tick := 1 + rng.Intn(s.Hits)
			add(runOne(env, RunConfig{
				Name:       fmt.Sprintf("cancel@%d", tick),
				Mode:       reopt.ModeFull,
				Degree:     1,
				Budget:     tinyBudget,
				Forced:     true,
				CancelTick: tick,
			}))
		}
		after := 1 + rng.Intn(s.Hits)
		add(runOne(env, RunConfig{
			Name:       fmt.Sprintf("fault:%s@%d", s.Site, after),
			Mode:       reopt.ModeFull,
			Degree:     1,
			Budget:     tinyBudget,
			Forced:     true,
			FaultSite:  s.Site,
			FaultAfter: after,
		}))
	}

	// The interleaved writer/reader schedule goes last: it commits DML,
	// moving the data away from the reference answer every read-only
	// configuration above was checked against.
	add(runInterleaved(env))
	return cr
}

// Run fuzzes cases Seed, Seed+1, ... under Options' bounds and collects
// every verdict and failure.
func Run(opts Options) Report {
	if opts.Cases <= 0 && opts.Deadline.IsZero() {
		opts.Cases = 16
	}
	var rep Report
	for i := 0; ; i++ {
		if opts.Cases > 0 && i >= opts.Cases {
			break
		}
		if !opts.Deadline.IsZero() && !time.Now().Before(opts.Deadline) {
			break
		}
		c := NewCase(opts.Seed + int64(i))
		cr := RunCase(c)
		rep.Cases++
		rep.Runs += len(cr.Verdicts)
		for _, v := range cr.Verdicts {
			rep.Verdicts = append(rep.Verdicts, c.String()+" | "+v)
		}
		rep.Failures = append(rep.Failures, cr.Failures...)
		if opts.Log != nil {
			opts.Log("case %d (%s): %d runs, %d failures",
				i, c, len(cr.Verdicts), len(cr.Failures))
		}
	}
	return rep
}
