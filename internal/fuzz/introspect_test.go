package fuzz

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/reopt"
	"repro/internal/session"
)

// TestIntrospectionDoesNotPerturb hammers the mqr system tables from
// concurrent sessions while a forced-switch workload runs, pinning the
// observability invariants: the pollers never deadlock, never error,
// never see an ill-formed row, and the observed workload's answers are
// byte-identical to the unobserved reference.
func TestIntrospectionDoesNotPerturb(t *testing.T) {
	env, err := Build(Case{Seed: 11, NTables: 3, JoinK: 3, MaxRows: 400, StalePct: 40})
	if err != nil {
		t.Fatal(err)
	}
	mgr := newManager(env, bigBudget)
	sess := mgr.Session()
	opts := session.Options{
		Mode:    reopt.ModeFull,
		Params:  env.Params,
		NoCache: true,
		// Forced thresholds make mid-query switches routine, so the
		// pollers race against checkpoints and plan replacement too.
		Theta1: 100,
		Theta2: 0.001,
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var polls, sawRunning atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ps := mgr.Session()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := ps.Exec(context.Background(),
					"select query, state, fraction, score from mqr.queries",
					session.Options{NoProgress: true})
				if err != nil {
					t.Errorf("poller: %v", err)
					return
				}
				for _, row := range res.Rows {
					state := row[1].Str()
					if state != "running" && state != "done" {
						t.Errorf("ill-formed state %q for %s", state, row[0].Str())
						return
					}
					if f := row[2].Float(); f < 0 || f > 1 {
						t.Errorf("fraction %v out of [0,1] for %s", f, row[0].Str())
						return
					}
					if state == "running" {
						sawRunning.Add(1)
					}
				}
				if _, err := ps.Exec(context.Background(),
					"select query, rows from mqr.operators",
					session.Options{NoProgress: true}); err != nil {
					t.Errorf("operator poller: %v", err)
					return
				}
				polls.Add(1)
			}
		}()
	}

	for i := 0; i < 20; i++ {
		res, err := sess.Exec(context.Background(), env.SQL, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := Canonical(res.Rows)
		if len(got) != len(env.Want) {
			t.Fatalf("run %d: %d rows, reference has %d", i, len(got), len(env.Want))
		}
		for j := range got {
			if got[j] != env.Want[j] {
				t.Fatalf("run %d row %d: got %s, want %s", i, j, got[j], env.Want[j])
			}
		}
	}
	close(stop)
	wg.Wait()

	if polls.Load() == 0 {
		t.Fatal("pollers never completed a single introspection round")
	}
	t.Logf("%d poll rounds, %d running-row observations", polls.Load(), sawRunning.Load())

	// The usual cleanup invariants still hold with observers attached.
	if msg := checkResidue(env, mgr); msg != "" {
		t.Fatal(msg)
	}
}
