package fuzz

import (
	"encoding/json"
	"fmt"
	"os"
)

// Failure is a replayable seed file: the case, the single configuration
// it failed under, and the violation. Everything needed to reproduce is
// in the two structs — the data and query regenerate from Case, the
// engine setup from Config.
type Failure struct {
	Case   Case      `json:"case"`
	Config RunConfig `json:"config"`
	Err    string    `json:"error"`
}

func (f Failure) String() string {
	return fmt.Sprintf("%s | %s: %s", f.Case, f.Config.Name, f.Err)
}

// Check replays one (case, config) pair and returns the failure it
// produces now, or nil if it passes — the oracle for both shrinking and
// corpus replay.
func Check(c Case, rc RunConfig) *Failure {
	if rc.Name == ConfigCollectorMerge {
		if msg := CheckCollectorMerge(c.Seed); msg != "" {
			return &Failure{Case: c, Config: rc, Err: msg}
		}
		return nil
	}
	env, err := Build(c)
	if err != nil {
		return &Failure{Case: c, Config: rc, Err: fmt.Sprintf("build: %v", err)}
	}
	if rc.Name == ConfigInterleaved {
		_, f := runInterleaved(env)
		return f
	}
	_, f := runOne(env, rc)
	return f
}

// Shrink greedily minimizes a failing case: each pass tries every
// single-field reduction (fewer tables, shorter join chain, half the
// rows, drop grouping, drop the host variable, fresh statistics) and
// keeps the first one under which the same configuration still fails,
// until no reduction survives. The result is the smallest repro the
// greedy walk can reach, suitable for checking into the seed corpus.
func Shrink(f Failure) Failure {
	c := f.Case
	for {
		improved := false
		for _, cand := range shrinkCandidates(c) {
			if nf := Check(cand, f.Config); nf != nil {
				c, f = cand, *nf
				improved = true
				break
			}
		}
		if !improved {
			return f
		}
	}
}

// shrinkCandidates returns every one-step reduction of the case, most
// aggressive first.
func shrinkCandidates(c Case) []Case {
	var out []Case
	if c.MaxRows > 20 {
		n := c
		n.MaxRows = c.MaxRows / 2
		if n.MaxRows < 20 {
			n.MaxRows = 20
		}
		out = append(out, n)
	}
	if c.NTables > 2 {
		n := c
		n.NTables--
		if n.JoinK > n.NTables {
			n.JoinK = n.NTables
		}
		out = append(out, n)
	}
	if c.JoinK > 2 {
		n := c
		n.JoinK--
		out = append(out, n)
	}
	if c.GroupPK {
		n := c
		n.GroupPK = false
		out = append(out, n)
	}
	if c.Grouped {
		n := c
		n.Grouped = false
		n.GroupPK = false
		out = append(out, n)
	}
	if c.HostVar {
		n := c
		n.HostVar = false
		out = append(out, n)
	}
	if c.StalePct != 100 {
		n := c
		n.StalePct = 100
		out = append(out, n)
	}
	return out
}

// WriteSeed writes the failure as an indented JSON seed file.
func WriteSeed(path string, f Failure) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadSeed loads a seed file written by WriteSeed.
func ReadSeed(path string) (Failure, error) {
	var f Failure
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
