package fuzz

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/types"
)

// ConfigCollectorMerge names the synthetic collector-merge invariant in
// verdicts and seed files; it has no engine RunConfig because it drives
// CollectorState directly.
const ConfigCollectorMerge = "collector-merge"

// CheckCollectorMerge validates the parallel statistics path without
// the engine in the way: a synthetic stream is fed once through a
// single collector and once round-robin through P partition collectors
// whose states are then merged, exactly what a gather exchange does.
// The merged state must be indistinguishable from the serial one on
// every exact statistic (rows, bytes, seen counts, extrema), and its
// merged reservoir must be a *uniform* sample of the stream.
//
// Uniformity is checked by encoding each value as its arrival index:
// partition reservoirs never overflow (each sees exactly its capacity),
// so before the merge their items sit in arrival order, and a merge
// that consumes positionally — the historical reservoir-merge bug —
// keeps early arrivals and drags the sample's mean arrival index far
// below n/2. Averaged over 8 seeded trials the mean must land within
// [0.25, 0.75]·(n-1): ~27 standard deviations of slack for a correct
// merge, while the biased merge sits near 0.125·(n-1).
//
// FM distinct sketches are deliberately not compared: partition
// collectors use different sampling seeds by design, so their union is
// equivalent, not identical, to the serial sketch.
//
// The empty string means the invariant holds; otherwise the violation.
func CheckCollectorMerge(seed int64) string {
	const (
		n      = 384
		parts  = 4
		resCap = n / parts // each partition exactly fills, never overflows
		trials = 8
	)
	var meanSum float64
	for trial := 0; trial < trials; trial++ {
		node := &plan.Collector{
			ID: 1,
			Spec: plan.CollectorSpec{
				HistCols:      []int{0},
				ReservoirSize: resCap,
				Seed:          seed + int64(trial)*101,
			},
		}
		serial := exec.NewCollectorState(node, 0)
		states := make([]*exec.CollectorState, parts)
		for p := range states {
			states[p] = exec.NewCollectorState(node, p)
		}
		for i := 0; i < n; i++ {
			t := types.Tuple{types.NewFloat(float64(i))}
			serial.Observe(t)
			states[i%parts].Observe(t)
		}
		merged := states[0]
		for _, o := range states[1:] {
			merged.Merge(o)
		}

		if merged.Rows != serial.Rows || merged.Bytes != serial.Bytes {
			return fmt.Sprintf("merged rows/bytes %.0f/%.0f, serial %.0f/%.0f",
				merged.Rows, merged.Bytes, serial.Rows, serial.Bytes)
		}
		if !merged.Mins[0].Equal(serial.Mins[0]) || !merged.Maxs[0].Equal(serial.Maxs[0]) {
			return fmt.Sprintf("merged extrema [%v, %v], serial [%v, %v]",
				merged.Mins[0], merged.Maxs[0], serial.Mins[0], serial.Maxs[0])
		}
		mr, sr := merged.Res[0], serial.Res[0]
		if mr.Seen() != sr.Seen() {
			return fmt.Sprintf("merged reservoir saw %d values, serial %d", mr.Seen(), sr.Seen())
		}
		sample := mr.Sample()
		if len(sample) != resCap {
			return fmt.Sprintf("merged reservoir holds %d values, want %d", len(sample), resCap)
		}
		var sum float64
		for _, v := range sample {
			sum += v.Float()
		}
		meanSum += sum / float64(len(sample))
	}
	mean := meanSum / trials
	lo, hi := 0.25*float64(n-1), 0.75*float64(n-1)
	if mean < lo || mean > hi {
		return fmt.Sprintf("reservoir merge is not uniform: mean arrival index %.1f outside [%.1f, %.1f] (n=%d)",
			mean, lo, hi, n)
	}
	return ""
}
