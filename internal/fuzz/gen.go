// Package fuzz is the engine's differential fuzzing harness: a
// deterministic, seed-driven generator of random schemas, data, and
// chain-join queries (factored out of the original oracle test), an
// independent naive reference evaluator, and a runner that executes
// every generated case across the engine's configuration matrix —
// serial and parallel degrees, re-optimization off/on/forced, spill-
// forcing memory budgets, plan-cache cold/warm, injected cancellation,
// and every named fault-injection site — checking each run against the
// reference answer and the engine's cleanup invariants.
//
// Everything derives from int64 seeds, so any failure is replayable
// from a tiny JSON seed file (see Failure and Shrink).
package fuzz

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/histogram"
	"repro/internal/storage"
	"repro/internal/types"
)

// Case is the replayable description of one fuzz case. The schema,
// data, and query all derive deterministically from these few fields,
// which is exactly what makes shrinking work: each field can be
// reduced independently while the rest of the case stays stable.
type Case struct {
	// Seed drives every random choice inside the case (row values,
	// domains, filters, histogram families).
	Seed int64 `json:"seed"`
	// NTables is the number of generated tables t0..t{n-1}.
	NTables int `json:"n_tables"`
	// MaxRows bounds each table's row count (actual counts are drawn
	// per table in [20, MaxRows]).
	MaxRows int `json:"max_rows"`
	// JoinK is the chain-join length (first JoinK tables).
	JoinK int `json:"join_k"`
	// Grouped selects the aggregate projection (group by + count/sum)
	// over the plain two-column projection.
	Grouped bool `json:"grouped"`
	// GroupPK groups by t0's primary key instead of its ~10-value grp
	// column, making one group per surviving row — the shape that
	// pushes aggregation state past its memory grant into spilled
	// partitions.
	GroupPK bool `json:"group_pk,omitempty"`
	// HostVar turns t0's value filter into a :cut host variable, the
	// unknowable-selectivity trigger for mid-query re-optimization.
	HostVar bool `json:"host_var"`
	// StalePct is the percentage of each table's rows present when
	// ANALYZE ran; 100 means fresh statistics. Stale statistics are
	// what make the forced-reopt configurations actually switch plans.
	StalePct int `json:"stale_pct"`
}

// NewCase derives a case from a seed.
func NewCase(seed int64) Case {
	r := rand.New(rand.NewSource(seed))
	c := Case{
		Seed:     seed,
		NTables:  2 + r.Intn(3),
		Grouped:  r.Intn(2) == 0,
		HostVar:  r.Intn(2) == 0,
		StalePct: []int{100, 50, 30}[r.Intn(3)],
	}
	// Mostly small tables (fast cases), with a heavy tail large enough
	// that build sides outgrow the optimizer's 64 KB minimum demand and
	// hash joins actually spill under the tiny-budget configurations.
	c.MaxRows = 20 + r.Intn(600)
	if r.Intn(3) == 0 {
		c.MaxRows *= 5
	}
	c.GroupPK = c.Grouped && r.Intn(2) == 0
	c.JoinK = 2 + r.Intn(c.NTables-1)
	return c
}

// String is the case's one-line identity, stable across runs.
func (c Case) String() string {
	g := "none"
	if c.Grouped {
		g = "grp"
		if c.GroupPK {
			g = "pk"
		}
	}
	return fmt.Sprintf("seed=%d tables=%d rows<=%d k=%d groupby=%s hostvar=%v stale=%d%%",
		c.Seed, c.NTables, c.MaxRows, c.JoinK, g, c.HostVar, c.StalePct)
}

// TableData holds one generated table's raw rows for the reference
// evaluator, plus enough metadata (histogram family, staleness point,
// index) for a caller to replay the exact same database through a
// different API surface — the root-package oracle test rebuilds each
// case through the public DB type from this.
type TableData struct {
	Name string
	Rows []types.Tuple // (pk int, fk int, grp int, val float)
	// Family is the histogram family ANALYZE used.
	Family histogram.Family
	// AnalyzeAt is the 1-based row count present when ANALYZE ran
	// (rows after it make the statistics stale).
	AnalyzeAt int
	// Indexed reports whether the pk column got an index.
	Indexed bool
}

// Env is a fully built fuzz case: catalog + data + query + reference
// answer, ready for the runner.
type Env struct {
	Case   Case
	Cat    *catalog.Catalog
	Pool   *storage.BufferPool
	Meter  *storage.CostMeter
	Tables []TableData
	SQL    string
	Params map[string]types.Value
	// Want is the canonicalized reference answer.
	Want []string
	// BasePages is the disk-page count right after load: the residue
	// invariant holds every query to this baseline.
	BasePages int
}

// Build materializes the case: creates tables t<i>(pk, fk, grp, val)
// with seed-derived data, analyzes them at the case's staleness point,
// generates the chain-join query, and computes the reference answer.
func Build(c Case) (*Env, error) {
	if c.NTables < 2 {
		c.NTables = 2
	}
	if c.JoinK < 2 {
		c.JoinK = 2
	}
	if c.JoinK > c.NTables {
		c.JoinK = c.NTables
	}
	if c.MaxRows < 20 {
		c.MaxRows = 20
	}
	if c.StalePct <= 0 || c.StalePct > 100 {
		c.StalePct = 100
	}

	meter := storage.NewCostMeter(storage.DefaultCostWeights())
	pool := storage.NewBufferPool(storage.NewDisk(meter), 256)
	env := &Env{Case: c, Cat: catalog.New(pool), Pool: pool, Meter: meter}

	fams := []histogram.Family{histogram.MaxDiff, histogram.EquiDepth, histogram.EquiWidth}
	for ti := 0; ti < c.NTables; ti++ {
		// Per-table rng: shrinking NTables or MaxRows does not reshuffle
		// the surviving tables' contents.
		r := rand.New(rand.NewSource(c.Seed*31 + int64(ti)))
		name := fmt.Sprintf("t%d", ti)
		tbl, err := env.Cat.CreateTable(name, types.NewSchema(
			types.Column{Name: name + "_pk", Kind: types.KindInt, Key: true},
			types.Column{Name: name + "_fk", Kind: types.KindInt},
			types.Column{Name: name + "_grp", Kind: types.KindInt},
			types.Column{Name: name + "_val", Kind: types.KindFloat},
		))
		if err != nil {
			return nil, err
		}
		rows := 20 + r.Intn(c.MaxRows-19)
		fkDomain := 1 + r.Intn(rows)
		grpDomain := 1 + r.Intn(10)
		td := TableData{Name: name}
		for i := 0; i < rows; i++ {
			td.Rows = append(td.Rows, types.Tuple{
				types.NewInt(int64(i)),
				types.NewInt(int64(r.Intn(fkDomain))),
				types.NewInt(int64(r.Intn(grpDomain))),
				types.NewFloat(float64(r.Intn(1000))),
			})
		}
		// Stale statistics: analyze after StalePct% of the rows, then
		// load the rest, so the optimizer plans against undercounts.
		td.AnalyzeAt = rows * c.StalePct / 100
		if td.AnalyzeAt < 1 {
			td.AnalyzeAt = 1
		}
		td.Family = fams[r.Intn(len(fams))]
		td.Indexed = r.Intn(2) == 0
		for i, tup := range td.Rows {
			if err := tbl.Insert(tup.Clone()); err != nil {
				return nil, err
			}
			if i+1 == td.AnalyzeAt {
				if err := env.Cat.Analyze(name, catalog.AnalyzeOptions{Family: td.Family}); err != nil {
					return nil, err
				}
			}
		}
		if td.Indexed {
			if err := env.Cat.CreateIndex(name, name+"_pk"); err != nil {
				return nil, err
			}
		}
		env.Tables = append(env.Tables, td)
	}

	env.buildQuery()
	env.Want = Canonical(env.reference())
	env.BasePages = pool.Disk().NumPages()
	return env, nil
}

// filterCuts derives the per-table value filters from the seed: -1
// means no filter on that table.
func (c Case) filterCuts() []int {
	r := rand.New(rand.NewSource(c.Seed*17 + 5))
	cuts := make([]int, c.JoinK)
	for i := range cuts {
		if r.Intn(2) == 0 {
			cuts[i] = r.Intn(1000)
		} else {
			cuts[i] = -1
		}
	}
	// The host-variable configuration needs at least the t0 filter.
	if c.HostVar && cuts[0] < 0 {
		cuts[0] = r.Intn(1200)
	}
	return cuts
}

// buildQuery assembles the chain-join SQL (prev.fk = cur.pk) with the
// seed-derived filters and projection.
func (e *Env) buildQuery() {
	c := e.Case
	used := e.Tables[:c.JoinK]
	var from, where []string
	for i, t := range used {
		from = append(from, t.Name)
		if i > 0 {
			where = append(where, fmt.Sprintf("%s.%s_fk = %s.%s_pk",
				used[i-1].Name, used[i-1].Name, t.Name, t.Name))
		}
	}
	cuts := c.filterCuts()
	e.Params = map[string]types.Value{}
	for i, cut := range cuts {
		if cut < 0 {
			continue
		}
		if i == 0 && c.HostVar {
			where = append(where, fmt.Sprintf("%s_val < :cut", used[0].Name))
			e.Params["cut"] = types.NewFloat(float64(cut))
			continue
		}
		where = append(where, fmt.Sprintf("%s_val < %d", used[i].Name, cut))
	}

	k := c.JoinK
	if c.Grouped {
		gcol := "grp"
		if c.GroupPK {
			gcol = "pk"
		}
		e.SQL = fmt.Sprintf("select %s_%s, count(*) as cnt, sum(%s_val) as sv from %s where %s group by %s_%s",
			used[0].Name, gcol, used[k-1].Name, strings.Join(from, ", "), strings.Join(where, " and "), used[0].Name, gcol)
	} else {
		e.SQL = fmt.Sprintf("select %s_pk, %s_pk from %s where %s",
			used[0].Name, used[k-1].Name, strings.Join(from, ", "), strings.Join(where, " and "))
	}
	if len(where) == 0 {
		e.SQL = strings.Replace(e.SQL, " where ", " ", 1)
	}
}

// Canonical renders rows order-insensitively with limited float
// precision (sums of floats differ in the last bits across evaluation
// orders).
func Canonical(rows []types.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if v.Kind() == types.KindFloat {
				parts[j] = fmt.Sprintf("%.6g", v.Float())
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}
