package fuzz

import (
	"repro/internal/types"
)

// reference evaluates the case's query naively: nested loops over the
// chain join, filters applied to the concatenated row, then hash
// aggregation when grouped. It shares nothing with the engine's
// planner, optimizer, or executors — that independence is what makes
// the differential check meaningful.
func (e *Env) reference() []types.Tuple {
	c := e.Case
	k := c.JoinK
	used := e.Tables[:k]
	cuts := c.filterCuts()

	// Resolve the host-variable cut to its bound value.
	cutVals := make([]float64, k)
	for i, cut := range cuts {
		cutVals[i] = float64(cut)
	}
	if c.HostVar {
		cutVals[0] = e.Params["cut"].Float()
	}

	pass := func(row types.Tuple) bool {
		for i, cut := range cuts {
			if cut < 0 {
				continue
			}
			if row[i*4+3].Float() >= cutVals[i] {
				return false
			}
		}
		return true
	}

	var joined []types.Tuple
	var recurse func(depth int, acc types.Tuple)
	recurse = func(depth int, acc types.Tuple) {
		if depth == k {
			if pass(acc) {
				joined = append(joined, acc)
			}
			return
		}
		for _, row := range used[depth].Rows {
			if depth > 0 {
				// Chain equi-join: prev.fk = cur.pk.
				if !acc[(depth-1)*4+1].Equal(row[0]) {
					continue
				}
			}
			recurse(depth+1, acc.Concat(row))
		}
	}
	recurse(0, types.Tuple{})

	var want []types.Tuple
	if c.Grouped {
		type aggState struct {
			cnt int64
			sum float64
		}
		gcol := 2 // first table's grp column
		if c.GroupPK {
			gcol = 0 // first table's pk column
		}
		groups := map[int64]*aggState{}
		for _, row := range joined {
			g := row[gcol].Int()
			if groups[g] == nil {
				groups[g] = &aggState{}
			}
			groups[g].cnt++
			groups[g].sum += row[(k-1)*4+3].Float()
		}
		for g, st := range groups {
			want = append(want, types.Tuple{types.NewInt(g), types.NewInt(st.cnt), types.NewFloat(st.sum)})
		}
	} else {
		for _, row := range joined {
			want = append(want, types.Tuple{row[0], row[(k-1)*4]})
		}
	}
	return want
}
