package fuzz

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/reopt"
	"repro/internal/session"
	"repro/internal/types"
)

// ConfigInterleaved names the interleaved writer/reader schedule in
// verdicts and seed files. It is not part of the static matrix because
// it commits writes: it must run after every read-only configuration,
// and a replay rebuilds the environment from scratch (see Check).
const ConfigInterleaved = "interleaved"

// writeOp is one statement of the seed-derived write schedule: the SQL
// the engine executes and the equivalent naive mutation of the
// reference tables. apply returns how many rows the statement touched
// so the engine's RowsAffected can be differentially checked.
type writeOp struct {
	sql   string
	apply func() int64
}

// writeOps derives the case's write schedule: a few multi-row inserts
// with fresh keys, predicate deletes, and predicate updates against the
// joined tables. The same seed always yields the same schedule, and
// apply replays it serially against the in-memory reference rows — the
// serializable oracle the committed engine state must match.
func (e *Env) writeOps() []writeOp {
	r := rand.New(rand.NewSource(e.Case.Seed ^ 0x317e5eed))
	k := e.Case.JoinK
	nextPK := make([]int64, k)
	for i := 0; i < k; i++ {
		nextPK[i] = int64(len(e.Tables[i].Rows))
	}
	nOps := 2 + r.Intn(3)
	var ops []writeOp
	for n := 0; n < nOps; n++ {
		ti := r.Intn(k)
		td := &e.Tables[ti]
		name := td.Name
		switch r.Intn(3) {
		case 0: // multi-row insert extending the pk domain
			m := 3 + r.Intn(30)
			var vals []string
			var rows []types.Tuple
			for j := 0; j < m; j++ {
				pk := nextPK[ti]
				nextPK[ti]++
				fk := int64(r.Intn(len(td.Rows) + m))
				grp := int64(r.Intn(10))
				val := float64(r.Intn(1000))
				vals = append(vals, fmt.Sprintf("(%d, %d, %d, %.1f)", pk, fk, grp, val))
				rows = append(rows, types.Tuple{
					types.NewInt(pk), types.NewInt(fk), types.NewInt(grp), types.NewFloat(val),
				})
			}
			sql := fmt.Sprintf("insert into %s (%s_pk, %s_fk, %s_grp, %s_val) values %s",
				name, name, name, name, name, strings.Join(vals, ", "))
			ops = append(ops, writeOp{sql, func() int64 {
				td.Rows = append(td.Rows, rows...)
				return int64(len(rows))
			}})
		case 1: // predicate delete
			cut := float64(r.Intn(400))
			sql := fmt.Sprintf("delete from %s where %s_val < %.1f", name, name, cut)
			ops = append(ops, writeOp{sql, func() int64 {
				var kept []types.Tuple
				var removed int64
				for _, row := range td.Rows {
					if row[3].Float() < cut {
						removed++
						continue
					}
					kept = append(kept, row)
				}
				td.Rows = kept
				return removed
			}})
		default: // predicate update
			g := int64(r.Intn(10))
			v := float64(r.Intn(1000))
			sql := fmt.Sprintf("update %s set %s_val = %.1f where %s_grp = %d",
				name, name, v, name, g)
			ops = append(ops, writeOp{sql, func() int64 {
				var touched int64
				for _, row := range td.Rows {
					if row[2].Int() == g {
						row[3] = types.NewFloat(v)
						touched++
					}
				}
				return touched
			}})
		}
	}
	return ops
}

// runInterleaved executes the case's write schedule interleaved with
// readers and checks snapshot isolation differentially:
//
//  1. With the whole schedule applied but uncommitted, and again after
//     its rollback, a reader must still see the original reference
//     answer.
//  2. A reader whose query is in flight when the schedule commits (via
//     the checkpoint hook) must also still see the original answer —
//     its snapshot predates the commit.
//  3. A fresh reader after the commit must see the answer the naive
//     reference computes over the serially-mutated rows, and each
//     statement's RowsAffected must match the reference's count.
//  4. Vacuum must reclaim every dead version once no snapshot pins
//     them, and the usual residue invariants (no temp tables, broker
//     repaid, no running queries) must hold.
//
// It must run LAST for its case: the committed writes move the data
// away from the reference answer every other configuration checks.
func runInterleaved(env *Env) (string, *Failure) {
	rc := RunConfig{Name: ConfigInterleaved, Mode: reopt.ModeFull, Degree: 1, Budget: bigBudget}
	fail := func(format string, args ...any) (string, *Failure) {
		msg := fmt.Sprintf(format, args...)
		return fmt.Sprintf("%s: FAIL %s", rc.Name, msg),
			&Failure{Case: env.Case, Config: rc, Err: msg}
	}

	mgr := newManager(env, bigBudget)
	ctx := context.Background()
	ops := env.writeOps()
	readOpts := session.Options{Mode: reopt.ModeFull, Params: env.Params, Seed: env.Case.Seed}

	check := func(s *session.Session, opts session.Options, want []string, label string) string {
		res, err := s.Exec(ctx, env.SQL, opts)
		if err != nil {
			return fmt.Sprintf("%s: %v", label, err)
		}
		got := Canonical(res.Rows)
		if len(got) != len(want) {
			return fmt.Sprintf("%s: %d rows, reference has %d", label, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Sprintf("%s: row %d: got %s, want %s", label, i, got[i], want[i])
			}
		}
		return ""
	}

	// Phase 1: uncommitted writes are invisible; rollback undoes them.
	writer := mgr.Session()
	if _, err := writer.Exec(ctx, "begin", session.Options{}); err != nil {
		return fail("begin: %v", err)
	}
	for _, op := range ops {
		if _, err := writer.Exec(ctx, op.sql, session.Options{}); err != nil {
			return fail("uncommitted writer %q: %v", op.sql, err)
		}
	}
	reader := mgr.Session()
	if msg := check(reader, readOpts, env.Want, "reader during open write txn"); msg != "" {
		return fail("%s", msg)
	}
	if _, err := writer.Exec(ctx, "rollback", session.Options{}); err != nil {
		return fail("rollback: %v", err)
	}
	if msg := check(reader, readOpts, env.Want, "reader after rollback"); msg != "" {
		return fail("%s", msg)
	}

	// Phase 2: commit the schedule mid-query from the reader's first
	// checkpoint; the in-flight snapshot must not see it. Cases whose
	// queries reach no checkpoint commit right after instead — the
	// post-commit state is the same either way.
	var affected []int64
	var commitErr error
	committed := false
	commit := func() {
		if committed {
			return
		}
		committed = true
		w := mgr.Session()
		if _, err := w.Exec(ctx, "begin", session.Options{}); err != nil {
			commitErr = err
			return
		}
		for _, op := range ops {
			res, err := w.Exec(ctx, op.sql, session.Options{})
			if err != nil {
				commitErr = fmt.Errorf("%q: %w", op.sql, err)
				return
			}
			affected = append(affected, res.RowsAffected)
		}
		if _, err := w.Exec(ctx, "commit", session.Options{}); err != nil {
			commitErr = err
		}
	}
	hooked := readOpts
	hooked.NoCache = true // force a fresh plan so checkpoints are live
	hookFired := false
	hooked.CheckpointHook = func(int) { hookFired = true; commit() }
	if msg := check(reader, hooked, env.Want, "reader overlapping commit"); msg != "" {
		return fail("%s", msg)
	}
	commit()
	if commitErr != nil {
		return fail("committing writer: %v", commitErr)
	}

	// Phase 3: the committed state must match the serializable naive
	// reference, statement by statement and row by row.
	for i, op := range ops {
		want := op.apply()
		if affected[i] != want {
			return fail("%q affected %d rows, reference says %d", op.sql, affected[i], want)
		}
	}
	want2 := Canonical(env.reference())
	if msg := check(reader, readOpts, want2, "reader after commit"); msg != "" {
		return fail("%s", msg)
	}

	// Phase 4: no snapshot pins anything now — vacuum must reclaim
	// every dead version, and the run must leave no residue.
	if _, err := env.Cat.Vacuum(); err != nil {
		return fail("vacuum: %v", err)
	}
	if dead, err := env.Cat.DeadVersions(); err != nil || dead != 0 {
		return fail("%d dead versions after vacuum (err %v)", dead, err)
	}
	if temps := env.Cat.TempTables(); len(temps) != 0 {
		return fail("temp tables leaked: %v", temps)
	}
	// Same rounding tolerance as checkResidue: grants are fractional
	// float shares, so the pool balances to within noise, not exactly.
	if bs := mgr.Broker().Stats(); math.Abs(bs.AvailBytes-bs.PoolBytes) > 1e-3 {
		return fail("broker imbalance: %.6f of %.0f bytes available (delta %g)",
			bs.AvailBytes, bs.PoolBytes, bs.PoolBytes-bs.AvailBytes)
	}
	if running := mgr.Running(); len(running) != 0 {
		return fail("queries still registered as running: %v", running)
	}
	outcome := "ok"
	if hookFired {
		outcome = "ok (mid-query commit)"
	}
	return fmt.Sprintf("%s: %s (%d ops)", rc.Name, outcome, len(ops)), nil
}
