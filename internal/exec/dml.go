package exec

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// DML operators. Each runs its whole statement in Open under the
// context's transaction (ctx.Txn) and streams no tuples; Affected
// reports the row count. UPDATE and DELETE materialize the RIDs of
// visible matching tuples before touching any of them, so an update
// whose new version matches its own predicate is never revisited (the
// Halloween problem).

// dmlBase carries the shared state of the DML operators.
type dmlBase struct {
	ctx      *Ctx
	affected int64
	schema   *types.Schema
}

// Schema implements Operator.
func (d *dmlBase) Schema() *types.Schema { return d.schema }

// Next implements Operator: DML produces no tuples.
func (d *dmlBase) Next() (types.Tuple, error) { return nil, nil }

// Close implements Operator.
func (d *dmlBase) Close() error { return nil }

// Affected returns the number of rows the statement wrote.
func (d *dmlBase) Affected() int64 { return d.affected }

// InsertExec executes a plan.Insert.
type InsertExec struct {
	dmlBase
	node *plan.Insert
}

// NewInsert returns the operator for an INSERT plan.
func NewInsert(n *plan.Insert, ctx *Ctx) *InsertExec {
	return &InsertExec{dmlBase: dmlBase{ctx: ctx, schema: n.Schema()}, node: n}
}

// Open implements Operator, performing the inserts.
func (e *InsertExec) Open() error {
	if e.ctx.Txn == nil {
		return fmt.Errorf("exec: INSERT outside a transaction")
	}
	schema := e.node.Table.Schema
	for _, row := range e.node.Rows {
		if err := e.ctx.Tick(); err != nil {
			return err
		}
		tup := make(types.Tuple, len(row))
		for i, expr := range row {
			v, err := expr.Eval(nil, e.ctx.Params)
			if err != nil {
				return err
			}
			cv, err := coerceValue(v, schema.Columns[i].Kind)
			if err != nil {
				return fmt.Errorf("exec: column %s: %w", schema.Columns[i].Name, err)
			}
			tup[i] = cv
		}
		if err := e.ctx.Txn.Insert(e.node.Table, tup); err != nil {
			return err
		}
		e.ctx.Meter.ChargeTuples(1)
		e.affected++
	}
	return nil
}

// DeleteExec executes a plan.Delete.
type DeleteExec struct {
	dmlBase
	node *plan.Delete
}

// NewDelete returns the operator for a DELETE plan.
func NewDelete(n *plan.Delete, ctx *Ctx) *DeleteExec {
	return &DeleteExec{dmlBase: dmlBase{ctx: ctx, schema: n.Schema()}, node: n}
}

// Open implements Operator, performing the deletes.
func (e *DeleteExec) Open() error {
	if e.ctx.Txn == nil {
		return fmt.Errorf("exec: DELETE outside a transaction")
	}
	matches, err := matchVisible(e.ctx, e.node.Table.Heap, e.node.Filters)
	if err != nil {
		return err
	}
	for _, m := range matches {
		if err := e.ctx.Txn.Delete(e.node.Table, m.rid, m.tup); err != nil {
			return err
		}
		e.ctx.Meter.ChargeTuples(1)
		e.affected++
	}
	return nil
}

// UpdateExec executes a plan.Update: delete old version, insert new.
type UpdateExec struct {
	dmlBase
	node *plan.Update
}

// NewUpdate returns the operator for an UPDATE plan.
func NewUpdate(n *plan.Update, ctx *Ctx) *UpdateExec {
	return &UpdateExec{dmlBase: dmlBase{ctx: ctx, schema: n.Schema()}, node: n}
}

// Open implements Operator, performing the updates.
func (e *UpdateExec) Open() error {
	if e.ctx.Txn == nil {
		return fmt.Errorf("exec: UPDATE outside a transaction")
	}
	matches, err := matchVisible(e.ctx, e.node.Table.Heap, e.node.Filters)
	if err != nil {
		return err
	}
	schema := e.node.Table.Schema
	for _, m := range matches {
		next := m.tup.Clone()
		for _, set := range e.node.Set {
			v, err := set.Val.Eval(m.tup, e.ctx.Params)
			if err != nil {
				return err
			}
			cv, err := coerceValue(v, schema.Columns[set.Col].Kind)
			if err != nil {
				return fmt.Errorf("exec: column %s: %w", schema.Columns[set.Col].Name, err)
			}
			next[set.Col] = cv
		}
		if err := e.ctx.Txn.Delete(e.node.Table, m.rid, m.tup); err != nil {
			return err
		}
		if err := e.ctx.Txn.Insert(e.node.Table, next); err != nil {
			return err
		}
		e.ctx.Meter.ChargeTuples(1)
		e.affected++
	}
	return nil
}

type match struct {
	rid storage.RID
	tup types.Tuple
}

// matchVisible scans the heap under the transaction's snapshot and
// materializes the RID and tuple of every row passing the filters.
func matchVisible(ctx *Ctx, heap *storage.HeapFile, filters []plan.Pred) ([]match, error) {
	snap := ctx.Snap
	if snap == nil && ctx.Txn != nil {
		snap = ctx.Txn.Snapshot()
	}
	s := heap.Scan().WithSnapshot(snap)
	var out []match
	for s.Next() {
		if err := ctx.Tick(); err != nil {
			return nil, err
		}
		ctx.Meter.ChargeTuples(1)
		t := s.Tuple()
		ok := true
		for _, f := range filters {
			pass, err := f.Test(t, ctx.Params)
			if err != nil {
				return nil, err
			}
			if !pass {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, match{rid: s.RID(), tup: t.Clone()})
		}
	}
	return out, s.Err()
}

// coerceValue converts v to the column kind where the conversion is
// lossless-enough for the engine's numeric model (int ↔ float); other
// mismatches are errors.
func coerceValue(v types.Value, k types.Kind) (types.Value, error) {
	if v.IsNull() || v.Kind() == k {
		return v, nil
	}
	switch {
	case k == types.KindFloat && v.Kind() == types.KindInt:
		return types.NewFloat(float64(v.Int())), nil
	case k == types.KindInt && v.Kind() == types.KindFloat:
		return types.NewInt(int64(v.Float())), nil
	case k == types.KindDate && v.Kind() == types.KindInt:
		return types.NewDate(v.Int()), nil
	}
	return types.Value{}, fmt.Errorf("cannot store %s value as %s", v.Kind(), k)
}

// RunDML builds and runs the operator for a DML plan node, returning the
// number of rows affected.
func RunDML(n plan.Node, ctx *Ctx) (int64, error) {
	var op interface {
		Operator
		Affected() int64
	}
	switch x := n.(type) {
	case *plan.Insert:
		op = NewInsert(x, ctx)
	case *plan.Update:
		op = NewUpdate(x, ctx)
	case *plan.Delete:
		op = NewDelete(x, ctx)
	default:
		return 0, fmt.Errorf("exec: %T is not a DML plan", n)
	}
	if err := op.Open(); err != nil {
		op.Close()
		return 0, err
	}
	defer op.Close()
	if _, err := Drain(op); err != nil {
		return 0, err
	}
	return op.Affected(), nil
}
