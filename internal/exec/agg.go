package exec

import (
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// aggStateWidth is the number of values each aggregate contributes to an
// encoded group state: sum, count, min, max.
const aggStateWidth = 4

// aggMode selects what an Agg consumes and produces. The encoded group
// state (key values then per-aggregate sum/count/min/max — the same
// representation the spill path already uses) doubles as the wire format
// between a parallel region's partial aggregates and the serial final
// merge at the gather point.
type aggMode uint8

const (
	// aggComplete consumes raw input and produces finished rows.
	aggComplete aggMode = iota
	// aggPartial consumes raw input and produces encoded group states.
	aggPartial
	// aggFinal consumes encoded group states and produces finished rows.
	aggFinal
)

// Agg is a blocking hash aggregation operator. Group states (sum, count,
// min, max per aggregate) are mergeable, so when the group table exceeds
// the node's memory grant the operator spills encoded partial states to
// hash partitions and merges them partition by partition — one extra
// write+read pass, mirroring the hash join's degradation.
type Agg struct {
	node *plan.Agg
	in   Operator
	ctx  *Ctx
	mode aggMode

	grant   float64
	groups  map[uint64][]*group
	size    float64
	peakMem float64 // high-water group-table memory, for EXPLAIN ANALYZE

	spilled bool
	parts   []*storage.HeapFile

	out    []types.Tuple
	outPos int
	opened bool
	closed bool
}

type group struct {
	key    types.Tuple
	sums   []types.Value
	counts []int64
	mins   []types.Value
	maxs   []types.Value
}

// NewAgg builds a hash aggregation operator.
func NewAgg(n *plan.Agg, in Operator, ctx *Ctx) *Agg {
	return &Agg{node: n, in: in, ctx: ctx}
}

// NewPartialAgg builds an aggregation worker for a parallel region: it
// consumes raw input tuples and emits encoded group states for a
// downstream NewFinalAgg to merge.
func NewPartialAgg(n *plan.Agg, in Operator, ctx *Ctx) *Agg {
	return &Agg{node: n, in: in, ctx: ctx, mode: aggPartial}
}

// NewFinalAgg builds the serial merge stage of a parallel aggregation:
// it consumes encoded group states and produces finished rows.
func NewFinalAgg(n *plan.Agg, in Operator, ctx *Ctx) *Agg {
	return &Agg{node: n, in: in, ctx: ctx, mode: aggFinal}
}

// Schema implements Operator.
func (a *Agg) Schema() *types.Schema { return a.node.Out }

// Open implements Operator. Aggregation is blocking: the entire input is
// consumed here.
func (a *Agg) Open() error {
	a.grant = a.node.Est().Grant * a.ctx.grantShare()
	a.groups = make(map[uint64][]*group)
	if err := a.in.Open(); err != nil {
		return err
	}
	for {
		if err := a.ctx.Tick(); err != nil {
			return err
		}
		if err := faultinject.Hit("exec.agg.absorb"); err != nil {
			return err
		}
		t, err := a.in.Next()
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		a.ctx.Meter.ChargeTuples(1)
		if err := a.absorb(t); err != nil {
			return err
		}
	}
	if err := a.in.Close(); err != nil {
		return err
	}
	if a.mode == aggPartial {
		return a.emitStates()
	}
	if a.spilled {
		if err := a.flushGroups(); err != nil {
			return err
		}
		return a.mergePartitions()
	}
	a.emitGroups()
	return nil
}

// absorb folds one input tuple into its group. In final mode the input
// is a stream of encoded group states, keyed by its leading columns.
func (a *Agg) absorb(t types.Tuple) error {
	var key types.Tuple
	var h uint64
	if a.mode == aggFinal {
		key = t[:len(a.node.GroupCols)]
		h = hashKeysAll(key)
	} else {
		key = make(types.Tuple, len(a.node.GroupCols))
		for i, c := range a.node.GroupCols {
			key[i] = t[c]
		}
		h = hashKeys(t, a.node.GroupCols)
	}
	g := a.findGroup(h, key)
	if g == nil {
		g = newGroup(key.Clone(), len(a.node.Aggs))
		a.groups[h] = append(a.groups[h], g)
		stateSize := float64(types.EncodedSize(key)) + float64(aggStateWidth*8*len(a.node.Aggs)) + 48
		a.size += stateSize
		if a.size > a.peakMem {
			a.peakMem = a.size
		}
		if a.grant > 0 && a.size > a.grant && !a.spilled {
			if err := a.spill(); err != nil {
				return err
			}
			// Re-locate the group: spill cleared the table.
			g = newGroup(key.Clone(), len(a.node.Aggs))
			a.groups[h] = append(a.groups[h], g)
			a.size += stateSize
		}
	}
	if a.mode == aggFinal {
		mergeState(g, t, len(a.node.GroupCols))
		return nil
	}
	return a.update(g, t)
}

func newGroup(key types.Tuple, nAggs int) *group {
	g := &group{
		key:    key,
		sums:   make([]types.Value, nAggs),
		counts: make([]int64, nAggs),
		mins:   make([]types.Value, nAggs),
		maxs:   make([]types.Value, nAggs),
	}
	return g
}

func (a *Agg) findGroup(h uint64, key types.Tuple) *group {
	for _, g := range a.groups[h] {
		if tuplesEqual(g.key, key) {
			return g
		}
	}
	return nil
}

func tuplesEqual(x, y types.Tuple) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i].Kind() != y[i].Kind() && !(x[i].Kind().Numeric() && y[i].Kind().Numeric()) {
			return false
		}
		if !x[i].Equal(y[i]) {
			return false
		}
	}
	return true
}

// update applies one tuple to a group's accumulators.
func (a *Agg) update(g *group, t types.Tuple) error {
	for i, spec := range a.node.Aggs {
		if spec.Arg == nil { // COUNT(*)
			g.counts[i]++
			continue
		}
		v, err := spec.Arg.Eval(t, a.ctx.Params)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue
		}
		g.counts[i]++
		if g.sums[i].IsNull() {
			g.sums[i] = v
		} else {
			s, err := g.sums[i].Add(v)
			if err != nil {
				return err
			}
			g.sums[i] = s
		}
		if g.mins[i].IsNull() || v.Compare(g.mins[i]) < 0 {
			g.mins[i] = v
		}
		if g.maxs[i].IsNull() || v.Compare(g.maxs[i]) > 0 {
			g.maxs[i] = v
		}
	}
	return nil
}

// spill switches to partitioned mode and flushes current groups.
func (a *Agg) spill() error {
	p := 8
	a.parts = make([]*storage.HeapFile, p)
	for i := range a.parts {
		a.parts[i] = storage.NewTempFile(a.ctx.Pool)
	}
	a.spilled = true
	return a.flushGroups()
}

// flushGroups writes every in-memory group's state to its partition and
// clears the table.
func (a *Agg) flushGroups() error {
	for h, bucket := range a.groups {
		for _, g := range bucket {
			state := a.encodeState(g)
			idx := int((h >> 32) % uint64(len(a.parts)))
			if _, err := a.parts[idx].Append(state); err != nil {
				return err
			}
		}
	}
	a.groups = make(map[uint64][]*group)
	a.size = 0
	return nil
}

// encodeState flattens a group to a tuple: key values, then per
// aggregate sum, count, min, max.
func (a *Agg) encodeState(g *group) types.Tuple {
	state := g.key.Clone()
	for i := range a.node.Aggs {
		state = append(state, g.sums[i], types.NewInt(g.counts[i]), g.mins[i], g.maxs[i])
	}
	return state
}

// mergePartitions re-aggregates each partition's states and emits.
func (a *Agg) mergePartitions() error {
	nk := len(a.node.GroupCols)
	for _, part := range a.parts {
		if err := faultinject.Hit("exec.agg.merge"); err != nil {
			return err
		}
		table := make(map[uint64][]*group)
		s := part.Scan()
		for s.Next() {
			if err := a.ctx.Tick(); err != nil {
				return err
			}
			a.ctx.Meter.ChargeTuples(1)
			st := s.Tuple()
			key := st[:nk]
			h := hashKeysAll(key)
			var g *group
			for _, cand := range table[h] {
				if tuplesEqual(cand.key, key) {
					g = cand
					break
				}
			}
			if g == nil {
				g = newGroup(key.Clone(), len(a.node.Aggs))
				table[h] = append(table[h], g)
			}
			mergeState(g, st, nk)
		}
		if err := s.Err(); err != nil {
			return err
		}
		for _, bucket := range table {
			for _, g := range bucket {
				a.out = append(a.out, a.finalize(g))
			}
		}
		part.Drop()
	}
	return nil
}

func hashKeysAll(key types.Tuple) uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range key {
		h = h*1099511628211 ^ v.Hash()
	}
	return h
}

// mergeState folds an encoded state tuple into a group.
func mergeState(g *group, st types.Tuple, nk int) {
	for i := range g.sums {
		base := nk + i*aggStateWidth
		sum, cnt, mn, mx := st[base], st[base+1], st[base+2], st[base+3]
		g.counts[i] += cnt.Int()
		if !sum.IsNull() {
			if g.sums[i].IsNull() {
				g.sums[i] = sum
			} else {
				g.sums[i], _ = g.sums[i].Add(sum)
			}
		}
		if !mn.IsNull() && (g.mins[i].IsNull() || mn.Compare(g.mins[i]) < 0) {
			g.mins[i] = mn
		}
		if !mx.IsNull() && (g.maxs[i].IsNull() || mx.Compare(g.maxs[i]) > 0) {
			g.maxs[i] = mx
		}
	}
}

// emitStates renders the partial aggregate's output: every group's
// encoded state. A spilled partial aggregate streams its partition files
// back out unchanged — a group flushed twice yields two states for the
// same key, which the downstream final merge combines.
func (a *Agg) emitStates() error {
	for _, bucket := range a.groups {
		for _, g := range bucket {
			a.out = append(a.out, a.encodeState(g))
		}
	}
	a.groups = nil
	for i, part := range a.parts {
		s := part.Scan()
		for s.Next() {
			if err := a.ctx.Tick(); err != nil {
				return err
			}
			a.ctx.Meter.ChargeTuples(1)
			a.out = append(a.out, s.Tuple())
		}
		if err := s.Err(); err != nil {
			return err
		}
		part.Drop()
		a.parts[i] = nil
	}
	return nil
}

// emitGroups converts all in-memory groups to output rows.
func (a *Agg) emitGroups() {
	for _, bucket := range a.groups {
		for _, g := range bucket {
			a.out = append(a.out, a.finalize(g))
		}
	}
	a.groups = nil
}

// finalize renders one group as an output tuple: group columns then
// aggregate results, matching the node's output schema.
func (a *Agg) finalize(g *group) types.Tuple {
	out := g.key.Clone()
	for i, spec := range a.node.Aggs {
		out = append(out, finalizeAgg(spec.Func, g, i))
	}
	return out
}

func finalizeAgg(f sql.AggFunc, g *group, i int) types.Value {
	switch f {
	case sql.AggCount:
		return types.NewInt(g.counts[i])
	case sql.AggSum:
		return g.sums[i]
	case sql.AggAvg:
		if g.counts[i] == 0 || g.sums[i].IsNull() {
			return types.Null()
		}
		return types.NewFloat(g.sums[i].AsFloat() / float64(g.counts[i]))
	case sql.AggMin:
		return g.mins[i]
	case sql.AggMax:
		return g.maxs[i]
	default:
		return types.Null()
	}
}

// Next implements Operator.
func (a *Agg) Next() (types.Tuple, error) {
	if a.outPos >= len(a.out) {
		return nil, nil
	}
	t := a.out[a.outPos]
	a.outPos++
	a.ctx.Meter.ChargeTuples(1)
	return t, nil
}

// Spilled reports whether the aggregate degraded to partitioned mode.
func (a *Agg) Spilled() bool { return a.spilled }

// MemUsed reports the peak group-table memory in bytes.
func (a *Agg) MemUsed() float64 { return a.peakMem }

// SpilledBytes reports the bytes currently held in spill partitions
// (entries are nil'd as emitStates consumes them; the progress layer
// keeps the high-water mark).
func (a *Agg) SpilledBytes() float64 {
	var b float64
	for _, h := range a.parts {
		if h != nil {
			b += float64(h.ByteSize())
		}
	}
	return b
}

// Close implements Operator. Idempotent; cascades to the input so an
// abort mid-absorb releases the child's side state too.
func (a *Agg) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	for _, p := range a.parts {
		if p != nil {
			p.Drop()
		}
	}
	a.out = nil
	return a.in.Close()
}
