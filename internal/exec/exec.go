// Package exec implements the query execution engine: iterator-model
// operators (sequential scan, hash join with Grace-style spilling,
// indexed nested-loops join, hash aggregation, external sort, projection,
// limit) plus the paper's statistics-collector operator.
//
// Operators charge their work to the context's cost meter: page I/O flows
// through the storage layer automatically, and each operator charges
// per-tuple CPU. The statistics collector charges the cheaper StatCPU
// rate, which is what the SCIA's μ budget limits (§2.5).
package exec

import (
	"context"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// CancelCheckInterval is how many Tick calls elapse between context
// polls. Cancellation is detected within this many tuples of the cancel,
// which bounds abort latency without putting an atomic load on every
// tuple. Every operator loop — serial or parallel-worker — shares this
// one cadence; the cancellation tests assert against it, so exchange
// worker loops cannot drift to a different interval.
const CancelCheckInterval = 256

// Ctx carries the runtime environment shared by a query's operators.
// Each parallel worker gets its own Ctx (the tick counter is not atomic);
// the exchange subsystem derives worker contexts from the query's.
type Ctx struct {
	Pool   *storage.BufferPool
	Meter  *storage.CostMeter
	Params plan.Params
	// Snap is the MVCC snapshot base-table scans and index fetches
	// filter versions through. Nil means "see all undeleted tuples",
	// which is correct only when no writers run concurrently.
	Snap *storage.TxnSnapshot
	// Txn is the write transaction DML operators run under. Nil for
	// read-only queries.
	Txn *catalog.Txn
	// Context, when non-nil, aborts the query: operators poll it at
	// amortized intervals (Tick) inside their tuple loops and the
	// dispatcher polls it (Err) at every checkpoint, so a cancelled or
	// deadline-expired query stops at the next well-defined point.
	Context context.Context
	// CheckEvery overrides the tuple interval between context polls
	// (tests lower it for tight abort bounds); 0 uses the default.
	CheckEvery int
	ticks      int
	// StatsSink receives each statistics-collector's report the moment
	// its input is exhausted. The re-optimizing dispatcher wires this
	// to its decision logic; nil sinks discard reports.
	StatsSink func(*plan.Observed)
	// StateSink, when set, diverts statistics collectors' raw mergeable
	// states instead of finished Observed reports. Exchange gather
	// points set it on worker contexts so per-partition states can be
	// merged into one report before reaching StatsSink.
	StateSink func(*CollectorState)
	// Part and PartOf place this context's operators in a partitioned
	// parallel region: leaf scans read only pages ≡ Part mod PartOf.
	// PartOf ≤ 1 means unpartitioned (serial) execution.
	Part, PartOf int
	// GrantShare scales memory-consuming operators' grants (0 means
	// full grant): a parallel region splits its operator's broker-backed
	// grant across workers, each building 1/N of the tuples.
	GrantShare float64
	// Spawn runs fn on the query's worker pool (panic recovery, pool
	// accounting). Nil falls back to a plain goroutine.
	Spawn func(label string, fn func())
	// Wall accumulates parallel wall-clock savings: at each gather the
	// overlap between workers (sum of worker costs minus the slowest
	// worker) is subtracted from the metered total to get the query's
	// simulated wall time. Nil when parallelism is off.
	Wall *WallMeter
	// Trace, when non-nil, receives lifecycle events (collector
	// reports, dispatcher decisions). Nil disables tracing at the cost
	// of a nil check.
	Trace *obs.Trace
	// Analyze, when non-nil, turns on EXPLAIN ANALYZE instrumentation:
	// Build and BuildStep wrap every operator to record per-operator
	// rows, cost, and peak memory. Nil skips wrapping entirely.
	Analyze *obs.Analyze
	// Prog, when non-nil, turns on live progress publication: every
	// built operator is wrapped to flush row counts and spill bytes
	// into the query's obs.Progress on an amortized cadence, so
	// concurrent observers (system tables, /progress) can watch the
	// query without perturbing it. Unlike Analyze it is cheap enough to
	// stay on for every query.
	Prog *obs.Progress
}

// grantShare returns the fraction of a node's memory grant available to
// this context's operators.
func (c *Ctx) grantShare() float64 {
	if c.GrantShare > 0 {
		return c.GrantShare
	}
	return 1
}

// Go runs fn via the context's worker pool, or a plain goroutine when no
// pool is installed.
func (c *Ctx) Go(label string, fn func()) {
	if c.Spawn != nil {
		c.Spawn(label, fn)
		return
	}
	go fn()
}

// Tick is the operators' amortized cancellation check: every tuple loop
// calls it, and every CheckEvery'th call polls the context. A query's
// operators all share one Ctx on one goroutine, so a plain counter
// suffices. Returns the context's error once the query is cancelled or
// past its deadline.
func (c *Ctx) Tick() error {
	if c.Context == nil {
		return nil
	}
	every := c.CheckEvery
	if every <= 0 {
		every = CancelCheckInterval
	}
	if c.ticks++; c.ticks < every {
		return nil
	}
	c.ticks = 0
	return c.Context.Err()
}

// Err polls the context immediately (checkpoint and plan-switch
// boundaries, where the check is rare enough not to amortize).
func (c *Ctx) Err() error {
	if c.Context == nil {
		return nil
	}
	return c.Context.Err()
}

// Operator is a Volcano-style iterator. Next returns a nil tuple at end
// of stream. Operators are single-use: Open, drain, Close.
type Operator interface {
	Open() error
	Next() (types.Tuple, error)
	Close() error
	Schema() *types.Schema
}

// Drain pulls every tuple from an opened operator, discarding output, and
// returns the row count. It is used by tests and by blocking consumers.
func Drain(op Operator) (int64, error) {
	var n int64
	for {
		t, err := op.Next()
		if err != nil {
			return n, err
		}
		if t == nil {
			return n, nil
		}
		n++
	}
}

// Collect runs an operator tree to completion and returns all output
// tuples. Open and Close are handled internally.
func Collect(op Operator) ([]types.Tuple, error) {
	if err := op.Open(); err != nil {
		// Close even after a failed Open: blocking operators (agg,
		// sort, hash join) may have spilled partitions to temp heap
		// files before the error, and Close is the only hook that
		// drops them. All operators' Close is idempotent and safe
		// after a partial Open.
		op.Close()
		return nil, err
	}
	defer op.Close()
	var out []types.Tuple
	for {
		t, err := op.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// BuildStep instantiates the operator for a single plan node whose first
// (left) child operator has already been built. The re-optimizing
// dispatcher uses it to assemble the join chain step by step, opening
// each hash join's build phase eagerly so it can make decisions at the
// paper's mid-query checkpoints. Probe sides and other inputs are built
// recursively as usual.
func BuildStep(n plan.Node, left Operator, ctx *Ctx) (Operator, error) {
	op, err := buildStep(n, left, ctx)
	if err != nil {
		return nil, err
	}
	return instrument(op, n, ctx), nil
}

func buildStep(n plan.Node, left Operator, ctx *Ctx) (Operator, error) {
	switch x := n.(type) {
	case *plan.HashJoin:
		probe, err := Build(x.Probe, ctx)
		if err != nil {
			return nil, err
		}
		return NewHashJoin(x, left, probe, ctx), nil
	case *plan.IndexJoin:
		return NewIndexJoin(x, left, ctx)
	case *plan.Collector:
		return NewCollector(x, left, ctx), nil
	case *plan.Filter:
		return NewFilter(x, left, ctx), nil
	case *plan.Agg:
		return NewAgg(x, left, ctx), nil
	case *plan.Project:
		return NewProject(x, left, ctx), nil
	case *plan.Sort:
		return NewSort(x, left, ctx), nil
	case *plan.Limit:
		return NewLimit(x, left), nil
	case *plan.Exchange:
		if ExchangeBuilder != nil {
			return ExchangeBuilder(x, left, ctx)
		}
		// No exchange runtime linked in: the node is transparent, so
		// pass the serial stream through unchanged.
		return left, nil
	default:
		return nil, fmt.Errorf("exec: BuildStep cannot wrap %T", n)
	}
}

// ExchangeBuilder instantiates the operator for an exchange plan node.
// It is installed by internal/exchange's init function — exec cannot
// import that package directly (exchange builds worker pipelines through
// exec). left is the already-built serial input for the step-wise
// dispatch path, nil when the exchange's whole subtree should be built
// from the plan.
var ExchangeBuilder func(x *plan.Exchange, left Operator, ctx *Ctx) (Operator, error)

// Build instantiates the operator tree for a physical plan.
func Build(n plan.Node, ctx *Ctx) (Operator, error) {
	op, err := build(n, ctx)
	if err != nil {
		return nil, err
	}
	return instrument(op, n, ctx), nil
}

func build(n plan.Node, ctx *Ctx) (Operator, error) {
	switch x := n.(type) {
	case *plan.Scan:
		return NewSeqScan(x, ctx), nil
	case *plan.HashJoin:
		build, err := Build(x.Build, ctx)
		if err != nil {
			return nil, err
		}
		probe, err := Build(x.Probe, ctx)
		if err != nil {
			return nil, err
		}
		return NewHashJoin(x, build, probe, ctx), nil
	case *plan.IndexJoin:
		outer, err := Build(x.Outer, ctx)
		if err != nil {
			return nil, err
		}
		return NewIndexJoin(x, outer, ctx)
	case *plan.Filter:
		in, err := Build(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return NewFilter(x, in, ctx), nil
	case *plan.Collector:
		in, err := Build(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return NewCollector(x, in, ctx), nil
	case *plan.Agg:
		in, err := Build(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return NewAgg(x, in, ctx), nil
	case *plan.Project:
		in, err := Build(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return NewProject(x, in, ctx), nil
	case *plan.Sort:
		in, err := Build(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return NewSort(x, in, ctx), nil
	case *plan.Limit:
		in, err := Build(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return NewLimit(x, in), nil
	case *plan.Exchange:
		if ExchangeBuilder != nil {
			return ExchangeBuilder(x, nil, ctx)
		}
		return build(x.Input, ctx)
	default:
		return nil, fmt.Errorf("exec: no operator for plan node %T", n)
	}
}
