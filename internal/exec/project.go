package exec

import (
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// Project evaluates scalar expressions over its input.
type Project struct {
	node *plan.Project
	in   Operator
	ctx  *Ctx
}

// NewProject builds a projection operator.
func NewProject(n *plan.Project, in Operator, ctx *Ctx) *Project {
	return &Project{node: n, in: in, ctx: ctx}
}

// Schema implements Operator.
func (p *Project) Schema() *types.Schema { return p.node.Out }

// Open implements Operator.
func (p *Project) Open() error { return p.in.Open() }

// Next implements Operator.
func (p *Project) Next() (types.Tuple, error) {
	t, err := p.in.Next()
	if err != nil || t == nil {
		return nil, err
	}
	out := make(types.Tuple, len(p.node.Exprs))
	for i, e := range p.node.Exprs {
		v, err := e.Eval(t, p.ctx.Params)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.in.Close() }

// Limit emits at most N tuples.
type Limit struct {
	node *plan.Limit
	in   Operator
	n    int64
}

// NewLimit builds a limit operator.
func NewLimit(node *plan.Limit, in Operator) *Limit {
	return &Limit{node: node, in: in}
}

// Schema implements Operator.
func (l *Limit) Schema() *types.Schema { return l.node.Schema() }

// Open implements Operator.
func (l *Limit) Open() error {
	l.n = l.node.N
	return l.in.Open()
}

// Next implements Operator.
func (l *Limit) Next() (types.Tuple, error) {
	if l.n <= 0 {
		return nil, nil
	}
	t, err := l.in.Next()
	if err != nil || t == nil {
		return nil, err
	}
	l.n--
	return t, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.in.Close() }

// Materialize drains an opened operator into a fresh temporary heap file.
// The re-optimizer uses it to redirect a running plan's output to Temp1
// before resubmitting the remainder of the query (§2.4, Figure 6).
func Materialize(op Operator, pool *storage.BufferPool) (*storage.HeapFile, error) {
	tf := storage.NewTempFile(pool)
	for {
		t, err := op.Next()
		if err == nil && t != nil {
			err = faultinject.Hit("exec.materialize.append")
		}
		if err != nil {
			// The half-written temp file would otherwise leak its heap
			// pages: the caller never sees the handle on error.
			tf.Drop()
			return nil, err
		}
		if t == nil {
			return tf, nil
		}
		if _, err := tf.Append(t); err != nil {
			tf.Drop()
			return nil, err
		}
	}
}
