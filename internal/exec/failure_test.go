package exec

import (
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

// Failure-injection tests: errors raised deep inside operator trees must
// surface through every composition path, and partially-executed
// operators must clean up their temp files.

func TestUnboundHostVarSurfacesThroughScan(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 10, 2)
	n := scanNode(tbl, mustPred(t, tbl.Schema, "v < :missing"))
	op, _ := Build(n, e.ctx)
	if _, err := Collect(op); err == nil || !strings.Contains(err.Error(), "unbound host variable") {
		t.Errorf("error = %v, want unbound host variable", err)
	}
}

func TestUnboundHostVarSurfacesThroughJoinAndAgg(t *testing.T) {
	e := newEnv(64)
	l := e.makeTable(t, "l", 50, 5)
	r := e.makeTable(t, "r", 50, 5)
	j := &plan.HashJoin{
		Build:     scanNode(l, mustPred(t, l.Schema, "v < :missing")),
		Probe:     scanNode(r),
		BuildKeys: []int{1},
		ProbeKeys: []int{1},
	}
	a := &plan.Agg{
		Input:     j,
		GroupCols: []int{1},
		Aggs:      []plan.AggSpec{{Func: sql.AggCount, Name: "n"}},
		Out: types.NewSchema(
			l.Schema.Columns[1],
			types.Column{Name: "n", Kind: types.KindInt},
		),
	}
	op, err := Build(a, e.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(op); err == nil {
		t.Error("deep error did not surface through join+agg")
	}
}

func TestDivisionByZeroInProjection(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 5, 2)
	kCol := &plan.ColExpr{Idx: 0, Col: tbl.Schema.Columns[0]}
	proj := &plan.Project{
		Input: scanNode(tbl),
		Exprs: []plan.Expr{&plan.BinExpr{Op: '/', Left: &plan.ConstExpr{Val: types.NewInt(1)}, Right: kCol}},
		Out:   types.NewSchema(types.Column{Name: "inv", Kind: types.KindInt}),
	}
	op, _ := Build(proj, e.ctx)
	if _, err := Collect(op); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("error = %v, want division by zero", err)
	}
}

func TestSpilledJoinCleansUpOnClose(t *testing.T) {
	e := newEnv(512)
	l := e.makeTable(t, "l", 3000, 50)
	r := e.makeTable(t, "r", 3000, 50)
	j := hashJoinNode(e, t, l, r, 4096)
	op, _ := Build(j, e.ctx)
	if err := op.Open(); err != nil { // build spills
		t.Fatal(err)
	}
	// Drain only part of the probe, then Close mid-stream.
	for i := 0; i < 10; i++ {
		if _, err := op.Next(); err != nil {
			t.Fatal(err)
		}
	}
	pagesBefore := e.pool.Disk().NumPages()
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if got := e.pool.Disk().NumPages(); got >= pagesBefore {
		t.Errorf("Close freed no spill pages: %d -> %d", pagesBefore, got)
	}
}

func TestAggSpillCleansUpOnClose(t *testing.T) {
	e := newEnv(512)
	tbl := e.makeTable(t, "r", 5000, 2500)
	a := &plan.Agg{
		Input:     scanNode(tbl),
		GroupCols: []int{1},
		Aggs:      []plan.AggSpec{{Func: sql.AggCount, Name: "n"}},
		Out: types.NewSchema(
			tbl.Schema.Columns[1],
			types.Column{Name: "n", Kind: types.KindInt},
		),
	}
	a.Est().Grant = 4096
	op := NewAgg(a, mustBuild(t, e, scanNode(tbl)), e.ctx)
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	if !op.Spilled() {
		t.Skip("aggregate did not spill at this size")
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	// The partitions were dropped during merge or Close; scanning the
	// disk should show no growth over the base table.
	if err := op.Close(); err != nil { // double close is safe
		t.Fatal(err)
	}
}

func TestLimitZero(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 100, 10)
	lim := &plan.Limit{Input: scanNode(tbl), N: 0}
	rows := collectAll(t, mustBuild(t, e, lim))
	if len(rows) != 0 {
		t.Errorf("limit 0 returned %d rows", len(rows))
	}
}

func TestSortDescStability(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 300, 3)
	s := &plan.Sort{Input: scanNode(tbl), Keys: []plan.SortKey{{Col: 1, Desc: true}}}
	rows := collectAll(t, mustBuild(t, e, s))
	for i := 1; i < len(rows); i++ {
		if rows[i-1][1].Int() < rows[i][1].Int() {
			t.Fatal("desc sort out of order")
		}
		// Stable: within equal keys, original (k ascending) order holds.
		if rows[i-1][1].Int() == rows[i][1].Int() && rows[i-1][0].Int() > rows[i][0].Int() {
			t.Fatal("sort not stable")
		}
	}
}

func TestEmptyInputsEverywhere(t *testing.T) {
	e := newEnv(64)
	empty, _ := e.cat.CreateTable("empty", types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindInt},
	))
	other := e.makeTable(t, "o", 10, 2)

	j := &plan.HashJoin{Build: scanNode(empty), Probe: scanNode(other), BuildKeys: []int{1}, ProbeKeys: []int{1}}
	if rows := collectAll(t, mustBuild(t, e, j)); len(rows) != 0 {
		t.Errorf("empty build joined %d rows", len(rows))
	}
	j2 := &plan.HashJoin{Build: scanNode(other), Probe: scanNode(empty), BuildKeys: []int{1}, ProbeKeys: []int{1}}
	if rows := collectAll(t, mustBuild(t, e, j2)); len(rows) != 0 {
		t.Errorf("empty probe joined %d rows", len(rows))
	}
	a := &plan.Agg{
		Input:     scanNode(empty),
		GroupCols: []int{1},
		Aggs:      []plan.AggSpec{{Func: sql.AggCount, Name: "n"}},
		Out:       types.NewSchema(empty.Schema.Columns[1], types.Column{Name: "n", Kind: types.KindInt}),
	}
	if rows := collectAll(t, mustBuild(t, e, a)); len(rows) != 0 {
		t.Errorf("empty group-by produced %d groups", len(rows))
	}
	s := &plan.Sort{Input: scanNode(empty), Keys: []plan.SortKey{{Col: 0}}}
	if rows := collectAll(t, mustBuild(t, e, s)); len(rows) != 0 {
		t.Errorf("empty sort produced %d rows", len(rows))
	}
}
