package exec

import (
	"container/heap"
	"sort"

	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// Sort is an external merge sort: tuples accumulate in memory up to the
// node's grant, sorted runs spill to temporary files, and a k-way merge
// streams the result. With no grant (or a sufficient one) it sorts
// entirely in memory.
type Sort struct {
	node *plan.Sort
	in   Operator
	ctx  *Ctx

	grant   float64
	buf     []types.Tuple
	size    float64
	peakMem float64 // high-water sort-buffer memory, for EXPLAIN ANALYZE
	runs    []*storage.HeapFile
	closed  bool

	// Emission state.
	mem    []types.Tuple
	memPos int
	merge  *mergeHeap
}

// NewSort builds an external sort operator.
func NewSort(n *plan.Sort, in Operator, ctx *Ctx) *Sort {
	return &Sort{node: n, in: in, ctx: ctx}
}

// Schema implements Operator.
func (s *Sort) Schema() *types.Schema { return s.node.Schema() }

// less orders tuples by the node's sort keys.
func (s *Sort) less(a, b types.Tuple) bool {
	for _, k := range s.node.Keys {
		c := a[k.Col].Compare(b[k.Col])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}

// Open implements Operator: consumes the entire input (blocking).
func (s *Sort) Open() error {
	s.grant = s.node.Est().Grant
	if err := s.in.Open(); err != nil {
		return err
	}
	for {
		if err := s.ctx.Tick(); err != nil {
			return err
		}
		if err := faultinject.Hit("exec.sort.drain"); err != nil {
			return err
		}
		t, err := s.in.Next()
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		s.ctx.Meter.ChargeTuples(1)
		t = t.Clone()
		s.buf = append(s.buf, t)
		s.size += float64(types.EncodedSize(t))
		if s.size > s.peakMem {
			s.peakMem = s.size
		}
		if s.grant > 0 && s.size > s.grant {
			if err := s.flushRun(); err != nil {
				return err
			}
		}
	}
	if err := s.in.Close(); err != nil {
		return err
	}
	if len(s.runs) == 0 {
		sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
		s.mem = s.buf
		s.buf = nil
		return nil
	}
	if len(s.buf) > 0 {
		if err := s.flushRun(); err != nil {
			return err
		}
	}
	return s.openMerge()
}

// flushRun sorts the buffer and writes it out as one run.
func (s *Sort) flushRun() error {
	sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
	run := storage.NewTempFile(s.ctx.Pool)
	for _, t := range s.buf {
		if _, err := run.Append(t); err != nil {
			return err
		}
	}
	s.runs = append(s.runs, run)
	s.buf = nil
	s.size = 0
	return nil
}

// mergeHeap is a k-way merge over run scanners.
type mergeHeap struct {
	s     *Sort
	heads []mergeHead
}

type mergeHead struct {
	tuple types.Tuple
	scan  *storage.HeapScanner
}

func (m *mergeHeap) Len() int           { return len(m.heads) }
func (m *mergeHeap) Less(i, j int) bool { return m.s.less(m.heads[i].tuple, m.heads[j].tuple) }
func (m *mergeHeap) Swap(i, j int)      { m.heads[i], m.heads[j] = m.heads[j], m.heads[i] }

func (m *mergeHeap) Push(x any) { m.heads = append(m.heads, x.(mergeHead)) }

func (m *mergeHeap) Pop() any {
	h := m.heads[len(m.heads)-1]
	m.heads = m.heads[:len(m.heads)-1]
	return h
}

func (s *Sort) openMerge() error {
	s.merge = &mergeHeap{s: s}
	for _, run := range s.runs {
		sc := run.Scan()
		if sc.Next() {
			s.merge.heads = append(s.merge.heads, mergeHead{tuple: sc.Tuple(), scan: sc})
		} else if err := sc.Err(); err != nil {
			return err
		}
	}
	heap.Init(s.merge)
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (types.Tuple, error) {
	if err := s.ctx.Tick(); err != nil {
		return nil, err
	}
	if s.merge == nil {
		if s.memPos >= len(s.mem) {
			return nil, nil
		}
		t := s.mem[s.memPos]
		s.memPos++
		return t, nil
	}
	if s.merge.Len() == 0 {
		return nil, nil
	}
	head := s.merge.heads[0]
	out := head.tuple
	if head.scan.Next() {
		s.merge.heads[0] = mergeHead{tuple: head.scan.Tuple(), scan: head.scan}
		heap.Fix(s.merge, 0)
	} else {
		if err := head.scan.Err(); err != nil {
			return nil, err
		}
		heap.Pop(s.merge)
	}
	return out, nil
}

// Spilled reports whether external runs were written.
func (s *Sort) Spilled() bool { return len(s.runs) > 0 }

// MemUsed reports the peak sort-buffer memory in bytes.
func (s *Sort) MemUsed() float64 { return s.peakMem }

// SpilledBytes reports the bytes currently held in external sort runs.
func (s *Sort) SpilledBytes() float64 {
	var b float64
	for _, h := range s.runs {
		if h != nil {
			b += float64(h.ByteSize())
		}
	}
	return b
}

// Close implements Operator. Idempotent; cascades to the input so an
// abort mid-drain releases the child's side state too.
func (s *Sort) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	for _, r := range s.runs {
		r.Drop()
	}
	s.mem, s.buf, s.merge = nil, nil, nil
	return s.in.Close()
}
