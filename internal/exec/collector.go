package exec

import (
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/sketch"
	"repro/internal/types"

	"repro/internal/histogram"
)

// defaultReservoirSize is one database page worth of sampled values — the
// paper allocates exactly one page to each histogram's reservoir (§3.1).
const defaultReservoirSize = 1024

// Collector is the statistics-collector operator (§2.2, §3.1): a
// streamed operator that takes a stream of tuples as input and produces
// exactly the same stream as output, examining each tuple on the way
// through. Cardinality, total bytes, and per-column min/max are running
// values; histograms come from a reservoir sample built when the input is
// exhausted; distinct counts use Flajolet–Martin sketches.
//
// When the input is exhausted the collector sends its Observed report to
// the context's StatsSink — the analogue of Paradise's statistics message
// back to the scheduler/dispatcher.
type Collector struct {
	node *plan.Collector
	in   Operator
	ctx  *Ctx

	rows   float64
	bytes  float64
	res    map[int]*sample.Reservoir
	uniq   map[string]*sketch.HybridDistinct
	mins   map[int]types.Value
	maxs   map[int]types.Value
	est    float64 // optimizer's row estimate at this point, for tracing
	sent   bool
	opened bool
}

// NewCollector wraps in with a statistics collector.
func NewCollector(n *plan.Collector, in Operator, ctx *Ctx) *Collector {
	return &Collector{node: n, in: in, ctx: ctx}
}

// Schema implements Operator.
func (c *Collector) Schema() *types.Schema { return c.node.Schema() }

// Open implements Operator. It is idempotent (see HashJoin.Open).
func (c *Collector) Open() error {
	if c.opened {
		return nil
	}
	c.opened = true
	c.est = c.node.Est().Rows
	spec := c.node.Spec
	size := spec.ReservoirSize
	if size <= 0 {
		size = defaultReservoirSize
	}
	c.res = make(map[int]*sample.Reservoir, len(spec.HistCols))
	for _, col := range spec.HistCols {
		c.res[col] = sample.NewReservoir(size, spec.Seed+int64(col))
	}
	c.uniq = make(map[string]*sketch.HybridDistinct, len(spec.UniqueCols))
	for _, set := range spec.UniqueCols {
		// One page worth of exact hashes before degrading to FM.
		c.uniq[plan.UniqueKey(set)] = sketch.NewHybridDistinct(1024, 64)
	}
	c.mins = make(map[int]types.Value)
	c.maxs = make(map[int]types.Value)
	return c.in.Open()
}

// Next implements Operator.
func (c *Collector) Next() (types.Tuple, error) {
	t, err := c.in.Next()
	if err != nil {
		return nil, err
	}
	if t == nil {
		c.report()
		return nil, nil
	}
	c.observe(t)
	return t, nil
}

func (c *Collector) observe(t types.Tuple) {
	// The examination cost is the collector's entire overhead: no I/O
	// is performed, matching §2.2. Cardinality/size/min-max-only
	// collectors are free, per the paper's assumption that measuring
	// those is negligible; only histogram and distinct-count work is
	// charged (and budgeted by the SCIA's μ).
	if !c.node.Spec.Empty() {
		c.ctx.Meter.ChargeStatTuples(1)
	}
	c.rows++
	c.bytes += float64(types.EncodedSize(t))
	for col, r := range c.res {
		v := t[col]
		if !v.IsNull() {
			r.Add(v)
		}
	}
	for _, set := range c.node.Spec.UniqueCols {
		key := plan.UniqueKey(set)
		// Combine the set's values into one hash: distinct counting
		// over attribute combinations only needs hash identity.
		var h uint64 = 1469598103934665603
		for _, col := range set {
			h = h*1099511628211 ^ t[col].Hash()
		}
		c.uniq[key].AddHash(h)
	}
	for _, col := range c.node.Spec.HistCols {
		c.updateMinMax(col, t[col])
	}
}

func (c *Collector) updateMinMax(col int, v types.Value) {
	if v.IsNull() {
		return
	}
	if cur, ok := c.mins[col]; !ok || v.Compare(cur) < 0 {
		c.mins[col] = v
	}
	if cur, ok := c.maxs[col]; !ok || v.Compare(cur) > 0 {
		c.maxs[col] = v
	}
}

// report builds the Observed snapshot and delivers it once.
func (c *Collector) report() {
	if c.sent {
		return
	}
	c.sent = true
	o := &plan.Observed{
		CollectorID: c.node.ID,
		Rows:        c.rows,
		Bytes:       c.bytes,
		Hists:       make(map[int]*histogram.Histogram, len(c.res)),
		Uniques:     make(map[string]float64, len(c.uniq)),
		Mins:        c.mins,
		Maxs:        c.maxs,
	}
	for col, r := range c.res {
		o.Hists[col] = histogram.Build(c.node.Spec.HistFamily, r.Sample(), 20, float64(r.Seen()))
	}
	for key, u := range c.uniq {
		est := u.Estimate()
		if est > c.rows {
			est = c.rows
		}
		o.Uniques[key] = est
	}
	if c.ctx.Trace.Enabled() {
		ratio := 0.0
		if c.est > 0 {
			ratio = c.rows / c.est
		}
		c.ctx.Trace.Emit("collector", "statistics collector report",
			"collector_id", c.node.ID,
			"est_rows", c.est,
			"actual_rows", c.rows,
			"bytes", c.bytes,
			"ratio", ratio,
		)
	}
	if c.ctx.StatsSink != nil {
		c.ctx.StatsSink(o)
	}
}

// Close implements Operator.
func (c *Collector) Close() error { return c.in.Close() }
