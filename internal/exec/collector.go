package exec

import (
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/sketch"
	"repro/internal/types"

	"repro/internal/histogram"
)

// defaultReservoirSize is one database page worth of sampled values — the
// paper allocates exactly one page to each histogram's reservoir (§3.1).
const defaultReservoirSize = 1024

// CollectorState is the mergeable accumulator behind a statistics
// collector: cardinality and size counters, per-column min/max,
// reservoir samples, and distinct-count sketches. In a parallel region
// each worker feeds its own state, and the gather point merges them into
// one — counts add, extrema compare, reservoirs merge weighted, FM
// sketches union — so the merged Observed report is equivalent to a
// single collector over the whole stream, exactly what SCIA placement
// and the checkpoint arithmetic assume. Histograms are not merged
// directly: they are built from the merged reservoir, as in the serial
// path.
type CollectorState struct {
	ID   int
	Spec plan.CollectorSpec

	Rows  float64
	Bytes float64
	Res   map[int]*sample.Reservoir
	Uniq  map[string]*sketch.HybridDistinct
	Mins  map[int]types.Value
	Maxs  map[int]types.Value
}

// NewCollectorState returns an empty state for the collector node. A
// partition index differentiates the sampling seeds of parallel workers
// so their reservoirs are independent draws.
func NewCollectorState(n *plan.Collector, partition int) *CollectorState {
	spec := n.Spec
	size := spec.ReservoirSize
	if size <= 0 {
		size = defaultReservoirSize
	}
	s := &CollectorState{
		ID:   n.ID,
		Spec: spec,
		Res:  make(map[int]*sample.Reservoir, len(spec.HistCols)),
		Uniq: make(map[string]*sketch.HybridDistinct, len(spec.UniqueCols)),
		Mins: make(map[int]types.Value),
		Maxs: make(map[int]types.Value),
	}
	for _, col := range spec.HistCols {
		s.Res[col] = sample.NewReservoir(size, spec.Seed+int64(col)+int64(partition)*7919)
	}
	for _, set := range spec.UniqueCols {
		// One page worth of exact hashes before degrading to FM.
		s.Uniq[plan.UniqueKey(set)] = sketch.NewHybridDistinct(1024, 64)
	}
	return s
}

// Observe folds one tuple into the state.
func (s *CollectorState) Observe(t types.Tuple) {
	s.Rows++
	s.Bytes += float64(types.EncodedSize(t))
	for col, r := range s.Res {
		v := t[col]
		if !v.IsNull() {
			r.Add(v)
		}
	}
	for _, set := range s.Spec.UniqueCols {
		key := plan.UniqueKey(set)
		// Combine the set's values into one hash: distinct counting
		// over attribute combinations only needs hash identity.
		var h uint64 = 1469598103934665603
		for _, col := range set {
			h = h*1099511628211 ^ t[col].Hash()
		}
		s.Uniq[key].AddHash(h)
	}
	for _, col := range s.Spec.HistCols {
		s.updateMinMax(col, t[col])
	}
}

func (s *CollectorState) updateMinMax(col int, v types.Value) {
	if v.IsNull() {
		return
	}
	if cur, ok := s.Mins[col]; !ok || v.Compare(cur) < 0 {
		s.Mins[col] = v
	}
	if cur, ok := s.Maxs[col]; !ok || v.Compare(cur) > 0 {
		s.Maxs[col] = v
	}
}

// Merge folds another partition's state into s. The other state is
// consumed. Merging is associative; gather points merge worker states in
// worker-index order so results are deterministic.
func (s *CollectorState) Merge(o *CollectorState) {
	if o == nil {
		return
	}
	s.Rows += o.Rows
	s.Bytes += o.Bytes
	for col, r := range o.Res {
		if mine, ok := s.Res[col]; ok {
			mine.Merge(r)
		} else {
			s.Res[col] = r
		}
	}
	for key, u := range o.Uniq {
		if mine, ok := s.Uniq[key]; ok {
			mine.Merge(u)
		} else {
			s.Uniq[key] = u
		}
	}
	for col, v := range o.Mins {
		if cur, ok := s.Mins[col]; !ok || v.Compare(cur) < 0 {
			s.Mins[col] = v
		}
	}
	for col, v := range o.Maxs {
		if cur, ok := s.Maxs[col]; !ok || v.Compare(cur) > 0 {
			s.Maxs[col] = v
		}
	}
}

// Observed builds the collector's report from the state: histograms from
// the (possibly merged) reservoirs, distinct estimates clamped to the
// observed cardinality.
func (s *CollectorState) Observed() *plan.Observed {
	o := &plan.Observed{
		CollectorID: s.ID,
		Rows:        s.Rows,
		Bytes:       s.Bytes,
		Hists:       make(map[int]*histogram.Histogram, len(s.Res)),
		Uniques:     make(map[string]float64, len(s.Uniq)),
		Mins:        s.Mins,
		Maxs:        s.Maxs,
	}
	for col, r := range s.Res {
		o.Hists[col] = histogram.Build(s.Spec.HistFamily, r.Sample(), 20, float64(r.Seen()))
	}
	for key, u := range s.Uniq {
		est := u.Estimate()
		if est > s.Rows {
			est = s.Rows
		}
		o.Uniques[key] = est
	}
	return o
}

// Collector is the statistics-collector operator (§2.2, §3.1): a
// streamed operator that takes a stream of tuples as input and produces
// exactly the same stream as output, examining each tuple on the way
// through. Cardinality, total bytes, and per-column min/max are running
// values; histograms come from a reservoir sample built when the input is
// exhausted; distinct counts use Flajolet–Martin sketches.
//
// When the input is exhausted the collector sends its Observed report to
// the context's StatsSink — the analogue of Paradise's statistics message
// back to the scheduler/dispatcher. Inside a parallel region (the
// context's StateSink is set) it instead hands its raw state to the
// gather point for merging.
type Collector struct {
	node *plan.Collector
	in   Operator
	ctx  *Ctx

	st     *CollectorState
	est    float64 // optimizer's row estimate at this point, for tracing
	sent   bool
	opened bool
}

// NewCollector wraps in with a statistics collector.
func NewCollector(n *plan.Collector, in Operator, ctx *Ctx) *Collector {
	return &Collector{node: n, in: in, ctx: ctx}
}

// Schema implements Operator.
func (c *Collector) Schema() *types.Schema { return c.node.Schema() }

// Open implements Operator. It is idempotent (see HashJoin.Open).
func (c *Collector) Open() error {
	if c.opened {
		return nil
	}
	c.opened = true
	c.est = c.node.Est().Rows
	c.st = NewCollectorState(c.node, c.ctx.Part)
	return c.in.Open()
}

// Next implements Operator.
func (c *Collector) Next() (types.Tuple, error) {
	t, err := c.in.Next()
	if err != nil {
		return nil, err
	}
	if t == nil {
		c.report()
		return nil, nil
	}
	// The examination cost is the collector's entire overhead: no I/O
	// is performed, matching §2.2. Cardinality/size/min-max-only
	// collectors are free, per the paper's assumption that measuring
	// those is negligible; only histogram and distinct-count work is
	// charged (and budgeted by the SCIA's μ).
	if !c.node.Spec.Empty() {
		c.ctx.Meter.ChargeStatTuples(1)
	}
	c.st.Observe(t)
	return t, nil
}

// report delivers the collector's result once: the raw state to a
// parallel gather point when one is listening, the finished Observed
// report to the dispatcher otherwise.
func (c *Collector) report() {
	if c.sent {
		return
	}
	c.sent = true
	if c.ctx.StateSink != nil {
		c.ctx.StateSink(c.st)
		return
	}
	o := c.st.Observed()
	if c.ctx.Trace.Enabled() {
		ratio := 0.0
		if c.est > 0 {
			ratio = c.st.Rows / c.est
		}
		c.ctx.Trace.Emit("collector", "statistics collector report",
			"collector_id", c.node.ID,
			"est_rows", c.est,
			"actual_rows", c.st.Rows,
			"bytes", c.st.Bytes,
			"ratio", ratio,
		)
	}
	if c.ctx.StatsSink != nil {
		c.ctx.StatsSink(o)
	}
}

// Close implements Operator.
func (c *Collector) Close() error { return c.in.Close() }
