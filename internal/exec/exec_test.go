package exec

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// testEnv bundles a catalog and execution context over a fresh simulated
// disk.
type testEnv struct {
	cat  *catalog.Catalog
	ctx  *Ctx
	pool *storage.BufferPool
}

func newEnv(poolPages int) *testEnv {
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	d := storage.NewDisk(m)
	pool := storage.NewBufferPool(d, poolPages)
	return &testEnv{
		cat:  catalog.New(pool),
		ctx:  &Ctx{Pool: pool, Meter: m, Params: plan.Params{}},
		pool: pool,
	}
}

// makeTable creates table name(k INTEGER key, v INTEGER, s VARCHAR) with
// n rows: k = i, v = i % mod, s = short string.
func (e *testEnv) makeTable(t *testing.T, name string, n int, mod int64) *catalog.Table {
	t.Helper()
	tbl, err := e.cat.CreateTable(name, types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt, Key: true},
		types.Column{Name: "v", Kind: types.KindInt},
		types.Column{Name: "s", Kind: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		err := tbl.Insert(types.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(i) % mod),
			types.NewString("row"),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func scanNode(tbl *catalog.Table, filters ...plan.Pred) *plan.Scan {
	return &plan.Scan{Table: tbl, Binding: tbl.Name, Filters: filters, Out: tbl.Schema}
}

func mustPred(t *testing.T, schema *types.Schema, cond string) plan.Pred {
	t.Helper()
	stmt, err := sql.Parse("select k from x where " + cond)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.BindPred(stmt.Where[0], schema)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func collectAll(t *testing.T, op Operator) []types.Tuple {
	t.Helper()
	out, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSeqScanFilters(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 100, 10)
	n := scanNode(tbl, mustPred(t, tbl.Schema, "v = 3"))
	op, err := Build(n, e.ctx)
	if err != nil {
		t.Fatal(err)
	}
	out := collectAll(t, op)
	if len(out) != 10 {
		t.Errorf("filtered scan returned %d rows, want 10", len(out))
	}
	for _, tup := range out {
		if tup[1].Int() != 3 {
			t.Errorf("row %v fails filter", tup)
		}
	}
}

func TestSeqScanChargesCPU(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 500, 10)
	before := e.ctx.Meter.Snapshot()
	op, _ := Build(scanNode(tbl), e.ctx)
	collectAll(t, op)
	d := e.ctx.Meter.Snapshot().Sub(before)
	if d.TupleCPU != 500 {
		t.Errorf("scan charged %d tuple CPU, want 500", d.TupleCPU)
	}
}

// nestedLoopJoin is the reference implementation for join tests.
func nestedLoopJoin(l, r []types.Tuple, lk, rk []int) []types.Tuple {
	var out []types.Tuple
	for _, a := range l {
		for _, b := range r {
			match := true
			for i := range lk {
				if a[lk[i]].IsNull() || b[rk[i]].IsNull() || !a[lk[i]].Equal(b[rk[i]]) {
					match = false
					break
				}
			}
			if match {
				out = append(out, a.Concat(b))
			}
		}
	}
	return out
}

func sortTuples(ts []types.Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := range a {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func tuplesetEqual(t *testing.T, got, want []types.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	sortTuples(got)
	sortTuples(want)
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d arity %d vs %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if !got[i][j].Equal(want[i][j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func hashJoinNode(e *testEnv, t *testing.T, left, right *catalog.Table, grant float64) *plan.HashJoin {
	t.Helper()
	j := &plan.HashJoin{
		Build:     scanNode(left),
		Probe:     scanNode(right),
		BuildKeys: []int{1}, // v column
		ProbeKeys: []int{1},
	}
	j.Est().Grant = grant
	return j
}

func TestHashJoinInMemoryMatchesNestedLoop(t *testing.T) {
	e := newEnv(128)
	l := e.makeTable(t, "l", 80, 7)
	r := e.makeTable(t, "r", 60, 7)
	j := hashJoinNode(e, t, l, r, 0)
	op, _ := Build(j, e.ctx)
	got := collectAll(t, op)

	lt := collectAll(t, mustBuild(t, e, scanNode(l)))
	rt := collectAll(t, mustBuild(t, e, scanNode(r)))
	want := nestedLoopJoin(lt, rt, []int{1}, []int{1})
	tuplesetEqual(t, got, want)
	if len(got) == 0 {
		t.Fatal("join produced nothing")
	}
}

func mustBuild(t *testing.T, e *testEnv, n plan.Node) Operator {
	t.Helper()
	op, err := Build(n, e.ctx)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestHashJoinSpilledMatchesInMemory(t *testing.T) {
	e := newEnv(512)
	l := e.makeTable(t, "l", 2000, 50)
	r := e.makeTable(t, "r", 1000, 50)

	mem := hashJoinNode(e, t, l, r, 0)
	memOp := NewHashJoin(mem, mustBuild(t, e, scanNode(l)), mustBuild(t, e, scanNode(r)), e.ctx)
	want := collectAll(t, memOp)
	if memOp.Spilled() {
		t.Fatal("unlimited-grant join spilled")
	}

	spill := hashJoinNode(e, t, l, r, 4096) // far below build size
	spillOp := NewHashJoin(spill, mustBuild(t, e, scanNode(l)), mustBuild(t, e, scanNode(r)), e.ctx)
	got := collectAll(t, spillOp)
	if !spillOp.Spilled() {
		t.Fatal("tiny-grant join did not spill")
	}
	tuplesetEqual(t, got, want)
}

func TestHashJoinSpillCostsMoreIO(t *testing.T) {
	e := newEnv(4096)
	l := e.makeTable(t, "l", 3000, 100)
	r := e.makeTable(t, "r", 3000, 100)

	run := func(grant float64) storage.Snapshot {
		before := e.ctx.Meter.Snapshot()
		j := hashJoinNode(e, t, l, r, grant)
		op, _ := Build(j, e.ctx)
		collectAll(t, op)
		return e.ctx.Meter.Snapshot().Sub(before)
	}
	inMem := run(0)
	spilled := run(2048)
	if spilled.PageWrites <= inMem.PageWrites {
		t.Errorf("spilled join wrote %d pages, in-memory wrote %d", spilled.PageWrites, inMem.PageWrites)
	}
	if spilled.Cost() <= inMem.Cost() {
		t.Errorf("spilled cost %.1f <= in-memory cost %.1f", spilled.Cost(), inMem.Cost())
	}
}

func TestHashJoinPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		e := newEnv(256)
		nl, nr := rng.Intn(200)+1, rng.Intn(200)+1
		mod := int64(rng.Intn(20) + 1)
		l := e.makeTable(t, "l", nl, mod)
		r := e.makeTable(t, "r", nr, mod)
		grant := float64(0)
		if trial%2 == 1 {
			grant = 2048 // force spill on odd trials
		}
		j := hashJoinNode(e, t, l, r, grant)
		got := collectAll(t, mustBuild(t, e, j))
		lt := collectAll(t, mustBuild(t, e, scanNode(l)))
		rt := collectAll(t, mustBuild(t, e, scanNode(r)))
		want := nestedLoopJoin(lt, rt, []int{1}, []int{1})
		tuplesetEqual(t, got, want)
	}
}

func TestHashJoinNullKeysNeverJoin(t *testing.T) {
	e := newEnv(64)
	l, _ := e.cat.CreateTable("l", types.NewSchema(types.Column{Name: "a", Kind: types.KindInt}))
	r, _ := e.cat.CreateTable("r", types.NewSchema(types.Column{Name: "b", Kind: types.KindInt}))
	l.Insert(types.Tuple{types.Null()})
	l.Insert(types.Tuple{types.NewInt(1)})
	r.Insert(types.Tuple{types.Null()})
	r.Insert(types.Tuple{types.NewInt(1)})
	j := &plan.HashJoin{Build: scanNode(l), Probe: scanNode(r), BuildKeys: []int{0}, ProbeKeys: []int{0}}
	got := collectAll(t, mustBuild(t, e, j))
	if len(got) != 1 {
		t.Errorf("NULL keys joined: %v", got)
	}
}

func TestIndexJoin(t *testing.T) {
	e := newEnv(128)
	outer := e.makeTable(t, "o", 50, 5)
	inner := e.makeTable(t, "i", 200, 5)
	if err := e.cat.CreateIndex("i", "v"); err != nil {
		t.Fatal(err)
	}
	j := &plan.IndexJoin{
		Outer:    scanNode(outer),
		Table:    inner,
		Binding:  "i",
		OuterKey: 1,
		InnerCol: 1,
		InnerOut: inner.Schema,
	}
	got := collectAll(t, mustBuild(t, e, j))
	ot := collectAll(t, mustBuild(t, e, scanNode(outer)))
	it := collectAll(t, mustBuild(t, e, scanNode(inner)))
	want := nestedLoopJoin(ot, it, []int{1}, []int{1})
	tuplesetEqual(t, got, want)
}

func TestIndexJoinInnerFilters(t *testing.T) {
	e := newEnv(128)
	outer := e.makeTable(t, "o", 20, 4)
	inner := e.makeTable(t, "i", 100, 4)
	e.cat.CreateIndex("i", "v")
	j := &plan.IndexJoin{
		Outer:        scanNode(outer),
		Table:        inner,
		Binding:      "i",
		OuterKey:     1,
		InnerCol:     1,
		InnerFilters: []plan.Pred{mustPred(t, inner.Schema, "k < 50")},
		InnerOut:     inner.Schema,
	}
	got := collectAll(t, mustBuild(t, e, j))
	for _, tup := range got {
		if tup[3].Int() >= 50 {
			t.Fatalf("inner filter leaked: %v", tup)
		}
	}
	if len(got) == 0 {
		t.Fatal("no output")
	}
}

func TestIndexJoinMissingIndex(t *testing.T) {
	e := newEnv(64)
	outer := e.makeTable(t, "o", 5, 2)
	inner := e.makeTable(t, "i", 5, 2)
	j := &plan.IndexJoin{Outer: scanNode(outer), Table: inner, OuterKey: 1, InnerCol: 1, InnerOut: inner.Schema}
	if _, err := Build(j, e.ctx); err == nil {
		t.Error("Build without index succeeded")
	}
}
