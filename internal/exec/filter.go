package exec

import (
	"repro/internal/plan"
	"repro/internal/types"
)

// Filter drops tuples failing any of its predicates.
type Filter struct {
	node   *plan.Filter
	in     Operator
	ctx    *Ctx
	opened bool
}

// NewFilter builds a filter operator.
func NewFilter(n *plan.Filter, in Operator, ctx *Ctx) *Filter {
	return &Filter{node: n, in: in, ctx: ctx}
}

// Schema implements Operator.
func (f *Filter) Schema() *types.Schema { return f.node.Schema() }

// Open implements Operator. It is idempotent (see HashJoin.Open).
func (f *Filter) Open() error {
	if f.opened {
		return nil
	}
	f.opened = true
	return f.in.Open()
}

// Next implements Operator.
func (f *Filter) Next() (types.Tuple, error) {
	for {
		t, err := f.in.Next()
		if err != nil || t == nil {
			return nil, err
		}
		ok := true
		for _, p := range f.node.Preds {
			pass, err := p.Test(t, f.ctx.Params)
			if err != nil {
				return nil, err
			}
			if !pass {
				ok = false
				break
			}
		}
		if ok {
			return t, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.in.Close() }
