package exec

import (
	"math"
	"testing"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

// aggNode builds: select v, sum(k), avg(k), count(*), min(k), max(k)
// from tbl group by v.
func aggNode(t *testing.T, e *testEnv, tblName string, grant float64) *plan.Agg {
	t.Helper()
	tbl, err := e.cat.Table(tblName)
	if err != nil {
		t.Fatal(err)
	}
	kExpr := &plan.ColExpr{Idx: 0, Col: tbl.Schema.Columns[0]}
	out := types.NewSchema(
		tbl.Schema.Columns[1],
		types.Column{Name: "sum_k", Kind: types.KindInt},
		types.Column{Name: "avg_k", Kind: types.KindFloat},
		types.Column{Name: "cnt", Kind: types.KindInt},
		types.Column{Name: "min_k", Kind: types.KindInt},
		types.Column{Name: "max_k", Kind: types.KindInt},
	)
	a := &plan.Agg{
		Input:     scanNode(tbl),
		GroupCols: []int{1},
		Aggs: []plan.AggSpec{
			{Func: sql.AggSum, Arg: kExpr, Name: "sum_k"},
			{Func: sql.AggAvg, Arg: kExpr, Name: "avg_k"},
			{Func: sql.AggCount, Name: "cnt"},
			{Func: sql.AggMin, Arg: kExpr, Name: "min_k"},
			{Func: sql.AggMax, Arg: kExpr, Name: "max_k"},
		},
		Out: out,
	}
	a.Est().Grant = grant
	return a
}

func verifyAggOutput(t *testing.T, rows []types.Tuple, n int64, mod int64) {
	t.Helper()
	if int64(len(rows)) != mod {
		t.Fatalf("got %d groups, want %d", len(rows), mod)
	}
	for _, r := range rows {
		g := r[0].Int()
		// Group g holds k = g, g+mod, g+2*mod, ... < n.
		var sum, cnt, mn, mx int64
		mn = math.MaxInt64
		for k := g; k < n; k += mod {
			sum += k
			cnt++
			if k < mn {
				mn = k
			}
			if k > mx {
				mx = k
			}
		}
		if r[1].Int() != sum {
			t.Errorf("group %d sum = %v, want %d", g, r[1], sum)
		}
		if math.Abs(r[2].Float()-float64(sum)/float64(cnt)) > 1e-9 {
			t.Errorf("group %d avg = %v", g, r[2])
		}
		if r[3].Int() != cnt {
			t.Errorf("group %d count = %v, want %d", g, r[3], cnt)
		}
		if r[4].Int() != mn || r[5].Int() != mx {
			t.Errorf("group %d min/max = %v/%v, want %d/%d", g, r[4], r[5], mn, mx)
		}
	}
}

func TestAggInMemory(t *testing.T) {
	e := newEnv(128)
	e.makeTable(t, "r", 1000, 10)
	a := aggNode(t, e, "r", 0)
	op := mustBuild(t, e, a)
	rows := collectAll(t, op)
	verifyAggOutput(t, rows, 1000, 10)
	if op.(*Agg).Spilled() {
		t.Error("unlimited-grant aggregate spilled")
	}
}

func TestAggSpilledMatchesInMemory(t *testing.T) {
	e := newEnv(512)
	e.makeTable(t, "r", 5000, 500)
	a := aggNode(t, e, "r", 2048) // tiny grant forces spill
	op := mustBuild(t, e, a)
	rows := collectAll(t, op)
	if !op.(*Agg).Spilled() {
		t.Fatal("aggregate did not spill")
	}
	verifyAggOutput(t, rows, 5000, 500)
}

func TestAggNoGroupBy(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 100, 10)
	kExpr := &plan.ColExpr{Idx: 0, Col: tbl.Schema.Columns[0]}
	a := &plan.Agg{
		Input: scanNode(tbl),
		Aggs:  []plan.AggSpec{{Func: sql.AggSum, Arg: kExpr, Name: "s"}},
		Out:   types.NewSchema(types.Column{Name: "s", Kind: types.KindInt}),
	}
	rows := collectAll(t, mustBuild(t, e, a))
	if len(rows) != 1 || rows[0][0].Int() != 4950 {
		t.Errorf("sum over all = %v", rows)
	}
}

func TestAggNullHandling(t *testing.T) {
	e := newEnv(64)
	tbl, _ := e.cat.CreateTable("n", types.NewSchema(
		types.Column{Name: "g", Kind: types.KindInt},
		types.Column{Name: "x", Kind: types.KindInt},
	))
	tbl.Insert(types.Tuple{types.NewInt(1), types.NewInt(10)})
	tbl.Insert(types.Tuple{types.NewInt(1), types.Null()})
	tbl.Insert(types.Tuple{types.NewInt(2), types.Null()})
	xExpr := &plan.ColExpr{Idx: 1, Col: tbl.Schema.Columns[1]}
	a := &plan.Agg{
		Input:     scanNode(tbl),
		GroupCols: []int{0},
		Aggs: []plan.AggSpec{
			{Func: sql.AggCount, Arg: xExpr, Name: "cx"}, // COUNT(x) skips NULLs
			{Func: sql.AggCount, Name: "call"},           // COUNT(*)
			{Func: sql.AggAvg, Arg: xExpr, Name: "ax"},
		},
		Out: types.NewSchema(
			tbl.Schema.Columns[0],
			types.Column{Name: "cx", Kind: types.KindInt},
			types.Column{Name: "call", Kind: types.KindInt},
			types.Column{Name: "ax", Kind: types.KindFloat},
		),
	}
	rows := collectAll(t, mustBuild(t, e, a))
	sortTuples(rows)
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	// Group 1: COUNT(x)=1, COUNT(*)=2, AVG=10.
	if rows[0][1].Int() != 1 || rows[0][2].Int() != 2 || rows[0][3].Float() != 10 {
		t.Errorf("group 1 = %v", rows[0])
	}
	// Group 2: all-NULL x: COUNT(x)=0, AVG=NULL.
	if rows[1][1].Int() != 0 || !rows[1][3].IsNull() {
		t.Errorf("group 2 = %v", rows[1])
	}
}

func TestSortInMemory(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 500, 7)
	s := &plan.Sort{Input: scanNode(tbl), Keys: []plan.SortKey{{Col: 1}, {Col: 0, Desc: true}}}
	rows := collectAll(t, mustBuild(t, e, s))
	if len(rows) != 500 {
		t.Fatalf("sorted %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a[1].Int() > b[1].Int() {
			t.Fatal("primary key out of order")
		}
		if a[1].Int() == b[1].Int() && a[0].Int() < b[0].Int() {
			t.Fatal("secondary desc key out of order")
		}
	}
}

func TestSortSpilledMatchesInMemory(t *testing.T) {
	e := newEnv(512)
	tbl := e.makeTable(t, "r", 4000, 97)
	mk := func(grant float64) (*Sort, []types.Tuple) {
		s := &plan.Sort{Input: scanNode(tbl), Keys: []plan.SortKey{{Col: 1}, {Col: 0}}}
		s.Est().Grant = grant
		op := NewSort(s, mustBuild(t, e, scanNode(tbl)), e.ctx)
		return op, collectAll(t, op)
	}
	memOp, want := mk(0)
	if memOp.Spilled() {
		t.Fatal("unbounded sort spilled")
	}
	spillOp, got := mk(4096)
	if !spillOp.Spilled() {
		t.Fatal("tiny-grant sort did not spill")
	}
	if len(got) != len(want) {
		t.Fatalf("spilled sort lost rows: %d vs %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if !got[i][j].Equal(want[i][j]) {
				t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestProjectAndLimit(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 100, 10)
	proj := &plan.Project{
		Input: scanNode(tbl),
		Exprs: []plan.Expr{
			&plan.BinExpr{Op: '+', Left: &plan.ColExpr{Idx: 0, Col: tbl.Schema.Columns[0]}, Right: &plan.ConstExpr{Val: types.NewInt(1000)}},
		},
		Out: types.NewSchema(types.Column{Name: "kplus", Kind: types.KindInt}),
	}
	lim := &plan.Limit{Input: proj, N: 7}
	rows := collectAll(t, mustBuild(t, e, lim))
	if len(rows) != 7 {
		t.Fatalf("limit returned %d rows", len(rows))
	}
	if rows[0][0].Int() != 1000 {
		t.Errorf("projected value = %v", rows[0][0])
	}
}

func TestMaterialize(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 300, 5)
	op := mustBuild(t, e, scanNode(tbl))
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	tf, err := Materialize(op, e.pool)
	if err != nil {
		t.Fatal(err)
	}
	op.Close()
	if tf.NumTuples() != 300 {
		t.Errorf("materialized %d tuples", tf.NumTuples())
	}
	if !tf.IsTemp() {
		t.Error("materialized file not temp")
	}
}
