package exec

import (
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// IndexJoin is an indexed nested-loops join: for every outer tuple it
// probes the inner table's B+tree and fetches matching tuples by RID.
// Each probe charges one index-leaf read plus the heap-page reads the
// fetches incur (cached pages are free), which is why the optimizer
// prefers it only when the outer side is small.
type IndexJoin struct {
	node  *plan.IndexJoin
	outer Operator
	ctx   *Ctx
	idx   *storage.BTree

	opened bool
	closed bool
	cur    types.Tuple // current outer tuple
	rids   []storage.RID
	ridPos int
	done   bool
}

// NewIndexJoin builds an index join. The inner table must have an index
// on the join column.
func NewIndexJoin(n *plan.IndexJoin, outer Operator, ctx *Ctx) (*IndexJoin, error) {
	idx, ok := n.Table.Indexes[n.InnerCol]
	if !ok {
		return nil, fmt.Errorf("exec: no index on %s column %d", n.Table.Name, n.InnerCol)
	}
	return &IndexJoin{node: n, outer: outer, ctx: ctx, idx: idx.Tree}, nil
}

// Schema implements Operator.
func (j *IndexJoin) Schema() *types.Schema { return j.node.Schema() }

// Open implements Operator. It is idempotent (see HashJoin.Open).
func (j *IndexJoin) Open() error {
	if j.opened {
		return nil
	}
	j.opened = true
	return j.outer.Open()
}

// Next implements Operator.
func (j *IndexJoin) Next() (types.Tuple, error) {
	for {
		for j.ridPos < len(j.rids) {
			rid := j.rids[j.ridPos]
			j.ridPos++
			// Visibility-checked fetch: index entries may point at
			// versions outside the snapshot, deleted slots from aborted
			// inserts, or swept versions — all skipped here.
			inner, visible, err := j.node.Table.Heap.FetchVisible(rid, j.ctx.Snap)
			if err != nil {
				return nil, err
			}
			if !visible {
				continue
			}
			ok := true
			for _, f := range j.node.InnerFilters {
				pass, err := f.Test(inner, j.ctx.Params)
				if err != nil {
					return nil, err
				}
				if !pass {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			j.ctx.Meter.ChargeTuples(1)
			return j.cur.Concat(inner), nil
		}
		if j.done {
			return nil, nil
		}
		if err := j.ctx.Tick(); err != nil {
			return nil, err
		}
		if err := faultinject.Hit("exec.indexjoin.outer"); err != nil {
			return nil, err
		}
		t, err := j.outer.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			j.done = true
			return nil, j.outer.Close()
		}
		j.ctx.Meter.ChargeTuples(1)
		key := t[j.node.OuterKey]
		if key.IsNull() {
			continue
		}
		j.cur = t.Clone()
		j.rids = j.idx.Lookup(key)
		j.ridPos = 0
	}
}

// Close implements Operator. Idempotent; cascades to the outer input so
// an abort mid-join releases its side state too.
func (j *IndexJoin) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	j.rids = nil
	return j.outer.Close()
}
