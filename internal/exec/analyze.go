package exec

import (
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/types"
)

// memReporter is implemented by operators that can report their peak
// memory use (hash join, aggregate, sort).
type memReporter interface {
	MemUsed() float64
}

// instrument wraps op with whatever observation layers the context has
// enabled: EXPLAIN ANALYZE accounting (ctx.Analyze) and live progress
// publication (ctx.Prog). It is the single gate: with both off the
// operator is returned untouched, so the bare path never allocates or
// indirects through a wrapper. Progress wraps outermost so its row
// counts see exactly what the consumer sees.
func instrument(op Operator, n plan.Node, ctx *Ctx) Operator {
	if op == nil {
		return op
	}
	if ctx.Analyze != nil {
		op = &analyzedOp{op: op, ctx: ctx, acc: ctx.Analyze.Op(n)}
	}
	if ctx.Prog != nil {
		op = &progressOp{op: op, prog: ctx.Prog, acc: ctx.Prog.Op(n)}
	}
	return op
}

// Instrument exposes the EXPLAIN ANALYZE wrapper for operators composed
// outside Build/BuildStep — the exchange subsystem hand-assembles worker
// pipelines from queue sources and needs the same per-node accounting.
// Like the internal gate, it is a no-op when analysis is off.
func Instrument(op Operator, n plan.Node, ctx *Ctx) Operator {
	return instrument(op, n, ctx)
}

// analyzedOp records per-operator actuals — output rows, inclusive
// simulated cost, peak memory — into the context's Analyze. Cost is
// measured as meter deltas around each call, so a wrapper's inclusive
// cost covers its whole subtree; the renderer subtracts children to
// get self time.
type analyzedOp struct {
	op  Operator
	ctx *Ctx
	acc *obs.OpActual
}

// Open implements Operator.
func (a *analyzedOp) Open() error {
	before := a.ctx.Meter.Snapshot()
	err := a.op.Open()
	a.acc.Record(0, a.ctx.Meter.Snapshot().Sub(before).Cost())
	return err
}

// Next implements Operator.
func (a *analyzedOp) Next() (types.Tuple, error) {
	before := a.ctx.Meter.Snapshot()
	t, err := a.op.Next()
	var rows int64
	if t != nil && err == nil {
		rows = 1
	}
	a.acc.Record(rows, a.ctx.Meter.Snapshot().Sub(before).Cost())
	return t, err
}

// Close implements Operator.
func (a *analyzedOp) Close() error {
	before := a.ctx.Meter.Snapshot()
	err := a.op.Close()
	a.acc.Record(0, a.ctx.Meter.Snapshot().Sub(before).Cost())
	if m, ok := a.op.(memReporter); ok {
		a.acc.RecordMem(m.MemUsed())
	}
	return err
}

// Schema implements Operator.
func (a *analyzedOp) Schema() *types.Schema { return a.op.Schema() }

// Spilled forwards the wrapped operator's spill report so diagnostics
// that look for it keep working under ANALYZE.
func (a *analyzedOp) Spilled() bool {
	if s, ok := a.op.(interface{ Spilled() bool }); ok {
		return s.Spilled()
	}
	return false
}

// MemUsed forwards the wrapped operator's peak memory.
func (a *analyzedOp) MemUsed() float64 {
	if m, ok := a.op.(memReporter); ok {
		return m.MemUsed()
	}
	return 0
}

// SpilledBytes forwards the wrapped operator's spill footprint so the
// progress wrapper (which composes outside this one) keeps seeing it.
func (a *analyzedOp) SpilledBytes() float64 {
	if s, ok := a.op.(spillReporter); ok {
		return s.SpilledBytes()
	}
	return 0
}

// Unwrap exposes the wrapped operator (diagnostics).
func (a *analyzedOp) Unwrap() Operator { return a.op }
