package exec

import (
	"repro/internal/obs"
	"repro/internal/types"
)

// spillReporter is implemented by operators that can report how many
// bytes they have written to spill files (hash join, aggregate, sort).
type spillReporter interface {
	SpilledBytes() float64
}

// progressFlushRows is how many output rows a progress wrapper buffers
// locally before publishing to the shared atomics — the same amortized
// cadence idea as Ctx.Tick, keeping the per-tuple cost of always-on
// monitoring to one local increment.
const progressFlushRows = 64

// progressOp publishes an operator's live state into the query's
// obs.Progress. Writes are batched: the hot path increments a local
// counter, and every progressFlushRows rows (plus at open, end of
// stream, and close) the batch is flushed to the lock-free accumulator
// where concurrent observers read it.
type progressOp struct {
	op    Operator
	prog  *obs.Progress
	acc   *obs.OpProgress
	local int64
}

// Open implements Operator.
func (p *progressOp) Open() error {
	p.acc.MarkOpen()
	err := p.op.Open()
	// Blocking operators do their heavy lifting (builds, spills) in
	// Open; publish what they produced before the first Next.
	p.flush()
	return err
}

// Next implements Operator.
func (p *progressOp) Next() (types.Tuple, error) {
	t, err := p.op.Next()
	if t != nil && err == nil {
		if p.local++; p.local >= progressFlushRows {
			p.flush()
		}
		return t, nil
	}
	if p.local > 0 {
		p.flush()
	}
	return t, err
}

// Close implements Operator.
func (p *progressOp) Close() error {
	p.flush()
	p.acc.MarkDone()
	return p.op.Close()
}

// flush publishes the batched rows, refreshes the spill footprint, and
// folds this operator's estimate error into the query-level overshoot
// (the live suboptimality signal).
func (p *progressOp) flush() {
	if p.local > 0 {
		p.acc.AddRows(p.local)
		p.local = 0
	}
	if s, ok := p.op.(spillReporter); ok {
		p.acc.SetSpillBytes(s.SpilledBytes())
	}
	p.prog.NoteRatio(p.acc)
}

// Schema implements Operator.
func (p *progressOp) Schema() *types.Schema { return p.op.Schema() }

// Spilled forwards the wrapped operator's spill report.
func (p *progressOp) Spilled() bool {
	if s, ok := p.op.(interface{ Spilled() bool }); ok {
		return s.Spilled()
	}
	return false
}

// MemUsed forwards the wrapped operator's peak memory.
func (p *progressOp) MemUsed() float64 {
	if m, ok := p.op.(memReporter); ok {
		return m.MemUsed()
	}
	return 0
}

// SpilledBytes forwards the wrapped operator's spill footprint.
func (p *progressOp) SpilledBytes() float64 {
	if s, ok := p.op.(spillReporter); ok {
		return s.SpilledBytes()
	}
	return 0
}

// Unwrap exposes the wrapped operator (diagnostics).
func (p *progressOp) Unwrap() Operator { return p.op }
