package exec

import (
	"math"
	"testing"

	"repro/internal/histogram"
	"repro/internal/plan"
	"repro/internal/types"
)

func TestCollectorPassThroughUnchanged(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 200, 10)
	c := &plan.Collector{Input: scanNode(tbl), ID: 1}
	got := collectAll(t, mustBuild(t, e, c))
	want := collectAll(t, mustBuild(t, e, scanNode(tbl)))
	tuplesetEqual(t, got, want)
}

func TestCollectorReportsCardinalityAndSize(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 500, 10)
	var report *plan.Observed
	e.ctx.StatsSink = func(o *plan.Observed) { report = o }
	c := &plan.Collector{Input: scanNode(tbl), ID: 42}
	collectAll(t, mustBuild(t, e, c))
	if report == nil {
		t.Fatal("no report delivered")
	}
	if report.CollectorID != 42 {
		t.Errorf("CollectorID = %d", report.CollectorID)
	}
	if report.Rows != 500 {
		t.Errorf("Rows = %g", report.Rows)
	}
	if report.AvgTupleBytes() <= 0 {
		t.Error("AvgTupleBytes not observed")
	}
}

func TestCollectorHistogramAccuracy(t *testing.T) {
	e := newEnv(256)
	tbl := e.makeTable(t, "r", 5000, 100) // v uniform on [0,100)
	var report *plan.Observed
	e.ctx.StatsSink = func(o *plan.Observed) { report = o }
	c := &plan.Collector{
		Input: scanNode(tbl),
		Spec: plan.CollectorSpec{
			HistCols:   []int{1},
			HistFamily: histogram.MaxDiff,
			Seed:       7,
		},
		ID: 1,
	}
	collectAll(t, mustBuild(t, e, c))
	h := report.Hists[1]
	if h == nil {
		t.Fatal("no histogram on column 1")
	}
	if math.Abs(h.Total-5000) > 1 {
		t.Errorf("histogram Total = %g (should scale to stream size)", h.Total)
	}
	sel := h.EstimateRange(0, 49)
	if math.Abs(sel-0.5) > 0.1 {
		t.Errorf("range estimate = %g, want ~0.5", sel)
	}
	if report.Mins[1].Int() != 0 || report.Maxs[1].Int() != 99 {
		t.Errorf("min/max = %v/%v", report.Mins[1], report.Maxs[1])
	}
}

func TestCollectorUniqueCounts(t *testing.T) {
	e := newEnv(256)
	tbl := e.makeTable(t, "r", 3000, 30)
	var report *plan.Observed
	e.ctx.StatsSink = func(o *plan.Observed) { report = o }
	c := &plan.Collector{
		Input: scanNode(tbl),
		Spec: plan.CollectorSpec{
			UniqueCols: [][]int{{1}},
		},
		ID: 1,
	}
	collectAll(t, mustBuild(t, e, c))
	got := report.Uniques[plan.UniqueKey([]int{1})]
	if got < 15 || got > 60 {
		t.Errorf("unique estimate = %g, want ~30", got)
	}
}

func TestCollectorChargesStatCPUOnly(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 400, 10)
	// Run plain scan to measure baseline I/O.
	op, _ := Build(scanNode(tbl), e.ctx)
	collectAll(t, op)
	before := e.ctx.Meter.Snapshot()
	c := &plan.Collector{
		Input: scanNode(tbl),
		Spec:  plan.CollectorSpec{HistCols: []int{1}, UniqueCols: [][]int{{1}}},
	}
	op2, _ := Build(c, e.ctx)
	collectAll(t, op2)
	d := e.ctx.Meter.Snapshot().Sub(before)
	if d.StatCPU != 400 {
		t.Errorf("collector charged %d stat CPU, want 400", d.StatCPU)
	}
	// "Without any I/O overhead" (§2.2): the collector itself performs
	// no writes; reads are the same as the plain scan (all cached).
	if d.PageWrites != 0 {
		t.Errorf("collector performed %d writes", d.PageWrites)
	}
}

func TestCollectorReportsOnce(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 10, 2)
	count := 0
	e.ctx.StatsSink = func(o *plan.Observed) { count++ }
	c := &plan.Collector{Input: scanNode(tbl)}
	op := mustBuild(t, e, c)
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	for {
		tup, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tup == nil {
			break
		}
	}
	// Extra Next calls after EOF must not re-report.
	op.Next()
	op.Next()
	op.Close()
	if count != 1 {
		t.Errorf("report delivered %d times", count)
	}
}

func TestCollectorSkipsNullsInHistogram(t *testing.T) {
	e := newEnv(64)
	tbl, _ := e.cat.CreateTable("n", types.NewSchema(types.Column{Name: "x", Kind: types.KindInt}))
	tbl.Insert(types.Tuple{types.Null()})
	tbl.Insert(types.Tuple{types.NewInt(5)})
	var report *plan.Observed
	e.ctx.StatsSink = func(o *plan.Observed) { report = o }
	c := &plan.Collector{Input: scanNode(tbl), Spec: plan.CollectorSpec{HistCols: []int{0}}}
	collectAll(t, mustBuild(t, e, c))
	if report.Rows != 2 {
		t.Errorf("Rows = %g", report.Rows)
	}
	if report.Mins[0].IsNull() || report.Mins[0].Int() != 5 {
		t.Errorf("Min = %v", report.Mins[0])
	}
}
