package exec

import (
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// SeqScan reads a base table (or registered temp table) page by page,
// charging one CPU tuple per tuple examined and applying pushed-down
// filters before tuples leave the operator.
type SeqScan struct {
	node *plan.Scan
	ctx  *Ctx
	scan *storage.HeapScanner

	// rows/idx drive virtual tables (catalog.Table.Virtual): the
	// provider materializes its rows once at Open and the scan iterates
	// the snapshot, so a system table is a consistent point-in-time
	// view even while the engine state behind it keeps moving.
	rows []types.Tuple
	idx  int
}

// NewSeqScan returns a sequential scan over the node's table.
func NewSeqScan(n *plan.Scan, ctx *Ctx) *SeqScan {
	return &SeqScan{node: n, ctx: ctx}
}

// Schema implements Operator.
func (s *SeqScan) Schema() *types.Schema { return s.node.Out }

// Open implements Operator. In a partitioned context (a parallel scan
// worker) the scan covers only its own page partition and attributes the
// partition's I/O to the worker's tributary meter.
func (s *SeqScan) Open() error {
	if s.node.Table.Virtual != nil {
		// Virtual tables have no pages to partition; in a parallel
		// region only partition 0 produces rows so the gather sees each
		// row exactly once.
		s.idx = 0
		if s.ctx.PartOf <= 1 || s.ctx.Part == 0 {
			s.rows = s.node.Table.Virtual()
		}
		return nil
	}
	if s.ctx.PartOf > 1 {
		s.scan = s.node.Table.Heap.ScanPartition(s.ctx.Part, s.ctx.PartOf, s.ctx.Meter)
	} else {
		s.scan = s.node.Table.Heap.Scan()
	}
	s.scan.WithSnapshot(s.ctx.Snap)
	return nil
}

// Next implements Operator.
func (s *SeqScan) Next() (types.Tuple, error) {
	if s.node.Table.Virtual != nil {
		for s.idx < len(s.rows) {
			if err := s.ctx.Tick(); err != nil {
				return nil, err
			}
			s.ctx.Meter.ChargeTuples(1)
			t := s.rows[s.idx]
			s.idx++
			ok := true
			for _, f := range s.node.Filters {
				pass, err := f.Test(t, s.ctx.Params)
				if err != nil {
					return nil, err
				}
				if !pass {
					ok = false
					break
				}
			}
			if ok {
				return t, nil
			}
		}
		return nil, nil
	}
	for s.scan.Next() {
		if err := s.ctx.Tick(); err != nil {
			return nil, err
		}
		if err := faultinject.Hit("exec.scan.next"); err != nil {
			return nil, err
		}
		s.ctx.Meter.ChargeTuples(1)
		t := s.scan.Tuple()
		ok := true
		for _, f := range s.node.Filters {
			pass, err := f.Test(t, s.ctx.Params)
			if err != nil {
				return nil, err
			}
			if !pass {
				ok = false
				break
			}
		}
		if ok {
			return t, nil
		}
	}
	return nil, s.scan.Err()
}

// Close implements Operator.
func (s *SeqScan) Close() error {
	s.scan = nil
	s.rows = nil
	return nil
}
