package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/plan"
)

// cancelEnv wires a cancellable context into a fresh test environment
// with CheckEvery=1 so cancellation is detected on the very next tuple.
func cancelEnv(poolPages int) (*testEnv, context.CancelFunc) {
	e := newEnv(poolPages)
	ctx, cancel := context.WithCancel(context.Background())
	e.ctx.Context = ctx
	e.ctx.CheckEvery = 1
	return e, cancel
}

func TestCancelStopsSeqScan(t *testing.T) {
	e, cancel := cancelEnv(64)
	tbl := e.makeTable(t, "r", 1000, 10)
	op := mustBuild(t, e, scanNode(tbl))
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	if _, err := op.Next(); err != nil {
		t.Fatalf("pre-cancel Next: %v", err)
	}
	cancel()
	if _, err := op.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Next = %v, want context.Canceled", err)
	}
}

func TestCancelAmortizationInterval(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", 1000, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: only the poll interval delays detection
	e.ctx.Context = ctx
	e.ctx.CheckEvery = 100
	op := mustBuild(t, e, scanNode(tbl))
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	var n int
	for {
		tup, err := op.Next()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Next = %v", err)
			}
			break
		}
		if tup == nil {
			t.Fatal("scan finished without noticing the cancel")
		}
		if n++; n > 100 {
			t.Fatalf("cancel not seen within CheckEvery=100 tuples (saw %d)", n)
		}
	}
}

// TestCancelDefaultPollInterval runs with CheckEvery unset: every
// operator loop must fall back to the shared CancelCheckInterval
// constant, so an already-cancelled context is noticed within that many
// tuples — the bound all operator loops (serial and exchange workers)
// amortize their polls against.
func TestCancelDefaultPollInterval(t *testing.T) {
	e := newEnv(64)
	tbl := e.makeTable(t, "r", CancelCheckInterval*4, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.ctx.Context = ctx
	e.ctx.CheckEvery = 0 // default cadence
	op := mustBuild(t, e, scanNode(tbl))
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	var n int
	for {
		tup, err := op.Next()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Next = %v", err)
			}
			break
		}
		if tup == nil {
			t.Fatal("scan finished without noticing the cancel")
		}
		if n++; n > CancelCheckInterval {
			t.Fatalf("cancel not seen within CancelCheckInterval=%d tuples (saw %d)", CancelCheckInterval, n)
		}
	}
}

// TestCancelMidBuildClosesChain cancels from inside a spilling hash
// join's build phase (via the fault injector's Do hook) and checks that
// closing the operator tree releases every spill partition's pages.
func TestCancelMidBuildClosesChain(t *testing.T) {
	e, cancel := cancelEnv(256)
	inj := faultinject.Enable()
	t.Cleanup(faultinject.Disable)

	left := e.makeTable(t, "l", 500, 50)
	right := e.makeTable(t, "r", 500, 50)
	j := &plan.HashJoin{
		Build:     scanNode(left),
		Probe:     scanNode(right),
		BuildKeys: []int{1},
		ProbeKeys: []int{1},
	}
	j.Est().Grant = 512 // tiny grant: forces Grace-style spilling early
	op := mustBuild(t, e, j)

	base := e.pool.Disk().NumPages()
	inj.Arm("exec.hashjoin.build", faultinject.Fault{Do: cancel, After: 400})
	err := op.Open()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Open = %v, want context.Canceled", err)
	}
	if err := op.Close(); err != nil {
		t.Fatalf("Close after abort: %v", err)
	}
	if got := e.pool.Disk().NumPages(); got != base {
		t.Errorf("disk pages after aborted spill join = %d, want %d (spill partitions leaked)", got, base)
	}
}

// TestInjectedErrorMidProbeReleasesSpill aborts a spilled join during
// partition probing and checks Close drops all remaining partitions.
func TestInjectedErrorMidProbeReleasesSpill(t *testing.T) {
	e := newEnv(256)
	inj := faultinject.Enable()
	t.Cleanup(faultinject.Disable)

	left := e.makeTable(t, "l", 500, 50)
	right := e.makeTable(t, "r", 500, 50)
	j := &plan.HashJoin{
		Build:     scanNode(left),
		Probe:     scanNode(right),
		BuildKeys: []int{1},
		ProbeKeys: []int{1},
	}
	j.Est().Grant = 512
	op := mustBuild(t, e, j)

	base := e.pool.Disk().NumPages()
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	inj.Arm("exec.hashjoin.spill", faultinject.Fault{Err: boom, After: 10})
	_, err := Drain(op)
	if !errors.Is(err, boom) {
		t.Fatalf("Drain = %v, want injected error", err)
	}
	if err := op.Close(); err != nil {
		t.Fatalf("Close after abort: %v", err)
	}
	if got := e.pool.Disk().NumPages(); got != base {
		t.Errorf("disk pages after aborted probe = %d, want %d", got, base)
	}
}

// TestAbortedSortCascadesToChild aborts an external sort over a spilling
// hash join: Sort.Close must cascade so the join's partitions are
// dropped even though the join never reached end of stream.
func TestAbortedSortCascadesToChild(t *testing.T) {
	e := newEnv(256)
	inj := faultinject.Enable()
	t.Cleanup(faultinject.Disable)

	left := e.makeTable(t, "l", 500, 50)
	right := e.makeTable(t, "r", 500, 50)
	j := &plan.HashJoin{
		Build:     scanNode(left),
		Probe:     scanNode(right),
		BuildKeys: []int{1},
		ProbeKeys: []int{1},
	}
	j.Est().Grant = 512
	s := &plan.Sort{Input: j, Keys: []plan.SortKey{{Col: 0}}}
	s.Est().Grant = 512 // the sort spills runs too
	op := mustBuild(t, e, s)

	base := e.pool.Disk().NumPages()
	boom := errors.New("boom")
	inj.Arm("exec.sort.drain", faultinject.Fault{Err: boom, After: 50})
	err := op.Open()
	if !errors.Is(err, boom) {
		t.Fatalf("Open = %v, want injected error", err)
	}
	if err := op.Close(); err != nil {
		t.Fatalf("Close after abort: %v", err)
	}
	if got := e.pool.Disk().NumPages(); got != base {
		t.Errorf("disk pages after aborted sort-over-join = %d, want %d", got, base)
	}
}

// TestDeadlineWithWedgedOperator pairs a Delay fault with a context
// deadline: the stalled site returns, the next Tick sees the expired
// deadline, and the query aborts instead of running to completion.
func TestDeadlineWithWedgedOperator(t *testing.T) {
	e := newEnv(64)
	inj := faultinject.Enable()
	t.Cleanup(faultinject.Disable)

	tbl := e.makeTable(t, "r", 1000, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	e.ctx.Context = ctx
	e.ctx.CheckEvery = 1
	op := mustBuild(t, e, scanNode(tbl))
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	inj.Arm("exec.scan.next", faultinject.Fault{Delay: 30 * time.Millisecond, After: 5})
	_, err := Drain(op)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want context.DeadlineExceeded", err)
	}
}

// TestMaterializeDropsTempOnError checks the half-written temp file is
// released when the drained operator fails mid-stream.
func TestMaterializeDropsTempOnError(t *testing.T) {
	e := newEnv(64)
	inj := faultinject.Enable()
	t.Cleanup(faultinject.Disable)

	tbl := e.makeTable(t, "r", 500, 10)
	op := mustBuild(t, e, scanNode(tbl))
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	base := e.pool.Disk().NumPages()
	boom := errors.New("boom")
	inj.Arm("exec.materialize.append", faultinject.Fault{Err: boom, After: 100})
	if _, err := Materialize(op, e.pool); !errors.Is(err, boom) {
		t.Fatalf("Materialize = %v, want injected error", err)
	}
	if got := e.pool.Disk().NumPages(); got != base {
		t.Errorf("disk pages after failed Materialize = %d, want %d (temp heap leaked)", got, base)
	}
}

// TestDoubleCloseIsSafe closes every stateful operator twice; the second
// Close must be a no-op (the abort path can close an operator the normal
// path already closed).
func TestDoubleCloseIsSafe(t *testing.T) {
	e := newEnv(256)
	left := e.makeTable(t, "l", 100, 10)
	right := e.makeTable(t, "r", 100, 10)
	j := &plan.HashJoin{
		Build:     scanNode(left),
		Probe:     scanNode(right),
		BuildKeys: []int{1},
		ProbeKeys: []int{1},
	}
	s := &plan.Sort{Input: j, Keys: []plan.SortKey{{Col: 0}}}
	op := mustBuild(t, e, s)
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := Drain(op); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := op.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
}
