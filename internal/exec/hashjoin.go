package exec

import (
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// buildFudge is the hash-table overhead factor: a build side of S bytes
// needs about buildFudge*S bytes of memory to join in one pass. The
// optimizer's memory-demand estimates use the same constant.
const buildFudge = 1.2

// HashJoin is a Grace-style hash join. Open runs the build phase: the
// left input is drained into an in-memory hash table; if the table
// exceeds the node's memory grant the join degrades to partitioned mode,
// writing both inputs to temporary partitions and joining them pairwise —
// the extra read and write pass over both inputs is exactly the
// "two-pass" penalty of the paper's Figure 3 walk-through.
//
// The probe phase starts lazily on the first Next call, so after Open
// returns the dispatcher is at the paper's mid-query decision point:
// "the build phase of the hash-join is complete, but the probe phase has
// not yet started" (§2.4).
type HashJoin struct {
	node  *plan.HashJoin
	build Operator
	probe Operator
	ctx   *Ctx

	grant float64 // bytes; 0 means unlimited

	// In-memory mode.
	table     map[uint64][]types.Tuple
	tableSize float64
	peakMem   float64 // high-water hash-table memory, for EXPLAIN ANALYZE

	// Partitioned (spilled) mode.
	spilled    bool
	buildParts []*storage.HeapFile
	probeParts []*storage.HeapFile

	// Probe state.
	opened      bool
	closed      bool
	probeOpened bool
	probeDone   bool
	pending     []types.Tuple // joined outputs awaiting emission
	curPart     int
	partScan    *storage.HeapScanner
	partTable   map[uint64][]types.Tuple
}

// NewHashJoin builds a hash join operator. The memory grant is read from
// the plan node's annotation at Open time, so the Memory Manager can
// adjust it any time before the build starts.
func NewHashJoin(n *plan.HashJoin, build, probe Operator, ctx *Ctx) *HashJoin {
	return &HashJoin{node: n, build: build, probe: probe, ctx: ctx}
}

// Schema implements Operator.
func (j *HashJoin) Schema() *types.Schema { return j.node.Schema() }

// hashKeys combines the key columns of a tuple into one hash.
func hashKeys(t types.Tuple, keys []int) uint64 {
	var h uint64 = 1469598103934665603
	for _, k := range keys {
		h = h*1099511628211 ^ t[k].Hash()
	}
	return h
}

// keysNull reports whether any key column is NULL (NULLs never join).
func keysNull(t types.Tuple, keys []int) bool {
	for _, k := range keys {
		if t[k].IsNull() {
			return true
		}
	}
	return false
}

// Open implements Operator: it runs the build phase to completion. Open
// is idempotent so the re-optimizing dispatcher can run build phases
// eagerly and later let parent operators cascade their Opens through.
func (j *HashJoin) Open() error {
	if j.opened {
		return nil
	}
	j.opened = true
	// A parallel worker builds 1/N of the tuples under 1/N of the
	// node's broker-backed grant (the context's share).
	j.grant = j.node.Est().Grant * j.ctx.grantShare()
	j.table = make(map[uint64][]types.Tuple)
	if err := j.build.Open(); err != nil {
		return err
	}
	for {
		if err := j.ctx.Tick(); err != nil {
			return err
		}
		if err := faultinject.Hit("exec.hashjoin.build"); err != nil {
			return err
		}
		t, err := j.build.Next()
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		// Build tuples charge double: hash-table inserts are heavier
		// than probes (the cost model mirrors this).
		j.ctx.Meter.ChargeTuples(2)
		if keysNull(t, j.node.BuildKeys) {
			continue
		}
		t = t.Clone()
		if !j.spilled {
			h := hashKeys(t, j.node.BuildKeys)
			j.table[h] = append(j.table[h], t)
			// Memory is accounted in encoded bytes, the same unit the
			// optimizer's size estimates use; the buildFudge factor
			// covers hash-table overhead in both places.
			j.tableSize += float64(types.EncodedSize(t))
			if m := j.tableSize * buildFudge; m > j.peakMem {
				j.peakMem = m
			}
			if j.grant > 0 && j.tableSize*buildFudge > j.grant {
				if err := j.spillBuild(); err != nil {
					return err
				}
			}
			continue
		}
		if err := j.writePart(j.buildParts, t, j.node.BuildKeys); err != nil {
			return err
		}
	}
	return j.build.Close()
}

// spillBuild switches to partitioned mode, flushing the current in-memory
// table into fresh partitions. The partition count is chosen so each
// build partition fits in the grant under uniform hashing.
func (j *HashJoin) spillBuild() error {
	// Estimate the final build size from the fraction seen so far is
	// unknowable here, so size partitions for 4x the overflow point;
	// partitions that still overflow simply overcommit slightly, which
	// the simulator tolerates.
	p := 4 * int(j.tableSize*buildFudge/j.grant+1)
	if p < 2 {
		p = 2
	}
	// Bound the fan-out: beyond ~one output buffer page per partition
	// a real system would recurse instead, and hundreds of partition
	// files thrash the buffer pool.
	if p > 128 {
		p = 128
	}
	j.buildParts = make([]*storage.HeapFile, p)
	j.probeParts = make([]*storage.HeapFile, p)
	for i := range j.buildParts {
		j.buildParts[i] = storage.NewTempFile(j.ctx.Pool)
		j.probeParts[i] = storage.NewTempFile(j.ctx.Pool)
	}
	for _, bucket := range j.table {
		for _, t := range bucket {
			if err := j.writePart(j.buildParts, t, j.node.BuildKeys); err != nil {
				return err
			}
		}
	}
	j.table = nil
	j.tableSize = 0
	j.spilled = true
	return nil
}

func (j *HashJoin) writePart(parts []*storage.HeapFile, t types.Tuple, keys []int) error {
	h := hashKeys(t, keys)
	// Use high bits for partition choice so the per-partition table
	// hash (low bits) stays well distributed.
	idx := int((h >> 32) % uint64(len(parts)))
	_, err := parts[idx].Append(t)
	return err
}

// Next implements Operator: the probe phase.
func (j *HashJoin) Next() (types.Tuple, error) {
	for {
		if len(j.pending) > 0 {
			t := j.pending[0]
			j.pending = j.pending[1:]
			j.ctx.Meter.ChargeTuples(1)
			return t, nil
		}
		if j.probeDone {
			return nil, nil
		}
		if !j.probeOpened {
			if err := j.openProbe(); err != nil {
				return nil, err
			}
		}
		if !j.spilled {
			if err := j.ctx.Tick(); err != nil {
				return nil, err
			}
			if err := faultinject.Hit("exec.hashjoin.probe"); err != nil {
				return nil, err
			}
			t, err := j.probe.Next()
			if err != nil {
				return nil, err
			}
			if t == nil {
				j.probeDone = true
				if err := j.probe.Close(); err != nil {
					return nil, err
				}
				continue
			}
			j.ctx.Meter.ChargeTuples(1)
			if keysNull(t, j.node.ProbeKeys) {
				continue
			}
			j.match(j.table, t)
			continue
		}
		if err := j.nextSpilled(); err != nil {
			return nil, err
		}
	}
}

// openProbe starts the probe phase. In partitioned mode the whole probe
// input is partitioned to disk first.
func (j *HashJoin) openProbe() error {
	j.probeOpened = true
	if err := j.probe.Open(); err != nil {
		return err
	}
	if !j.spilled {
		return nil
	}
	for {
		if err := j.ctx.Tick(); err != nil {
			return err
		}
		if err := faultinject.Hit("exec.hashjoin.probe"); err != nil {
			return err
		}
		t, err := j.probe.Next()
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		j.ctx.Meter.ChargeTuples(1)
		if keysNull(t, j.node.ProbeKeys) {
			continue
		}
		if err := j.writePart(j.probeParts, t.Clone(), j.node.ProbeKeys); err != nil {
			return err
		}
	}
	if err := j.probe.Close(); err != nil {
		return err
	}
	j.curPart = -1
	return nil
}

// match appends all join results for probe tuple t to pending.
func (j *HashJoin) match(table map[uint64][]types.Tuple, t types.Tuple) {
	h := hashKeys(t, j.node.ProbeKeys)
	for _, b := range table[h] {
		if j.keysEqual(b, t) {
			j.pending = append(j.pending, b.Concat(t))
		}
	}
}

func (j *HashJoin) keysEqual(b, p types.Tuple) bool {
	for i := range j.node.BuildKeys {
		if !b[j.node.BuildKeys[i]].Equal(p[j.node.ProbeKeys[i]]) {
			return false
		}
	}
	return true
}

// nextSpilled advances the partition-by-partition join, filling pending.
func (j *HashJoin) nextSpilled() error {
	for {
		if err := j.ctx.Tick(); err != nil {
			return err
		}
		if err := faultinject.Hit("exec.hashjoin.spill"); err != nil {
			return err
		}
		if j.partScan != nil {
			if j.partScan.Next() {
				t := j.partScan.Tuple()
				j.ctx.Meter.ChargeTuples(1)
				j.match(j.partTable, t)
				if len(j.pending) > 0 {
					return nil
				}
				continue
			}
			if err := j.partScan.Err(); err != nil {
				return err
			}
			j.partScan = nil
			j.partTable = nil
			j.buildParts[j.curPart].Drop()
			j.probeParts[j.curPart].Drop()
		}
		j.curPart++
		if j.curPart >= len(j.buildParts) {
			j.probeDone = true
			return nil
		}
		// Load this build partition into memory.
		j.partTable = make(map[uint64][]types.Tuple)
		s := j.buildParts[j.curPart].Scan()
		partSize := 0.0
		for s.Next() {
			if err := j.ctx.Tick(); err != nil {
				return err
			}
			t := s.Tuple()
			j.ctx.Meter.ChargeTuples(1)
			h := hashKeys(t, j.node.BuildKeys)
			j.partTable[h] = append(j.partTable[h], t)
			partSize += float64(types.EncodedSize(t))
		}
		if m := partSize * buildFudge; m > j.peakMem {
			j.peakMem = m
		}
		if err := s.Err(); err != nil {
			return err
		}
		j.partScan = j.probeParts[j.curPart].Scan()
	}
}

// Spilled reports whether the join degraded to partitioned mode — the
// observable difference the dynamic memory re-allocation experiments
// measure.
func (j *HashJoin) Spilled() bool { return j.spilled }

// MemUsed reports the peak hash-table memory in bytes (EXPLAIN
// ANALYZE's actual-memory column).
func (j *HashJoin) MemUsed() float64 { return j.peakMem }

// SpilledBytes reports the bytes currently held in spill partitions.
// Partitions are dropped as the probe consumes them, so this shrinks
// over time; the progress layer keeps the high-water mark.
func (j *HashJoin) SpilledBytes() float64 {
	var b float64
	for _, h := range j.buildParts {
		if h != nil {
			b += float64(h.ByteSize())
		}
	}
	for _, h := range j.probeParts {
		if h != nil {
			b += float64(h.ByteSize())
		}
	}
	return b
}

// Close implements Operator. It is idempotent and cascades to both
// children, so closing the topmost live operator after an abort releases
// every descendant's side state (spill partitions, sort runs) even when
// the children never reached their normal end-of-stream Close.
func (j *HashJoin) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	for _, p := range j.buildParts {
		if p != nil {
			p.Drop()
		}
	}
	for _, p := range j.probeParts {
		if p != nil {
			p.Drop()
		}
	}
	j.table = nil
	j.partTable = nil
	err := j.build.Close()
	if err2 := j.probe.Close(); err == nil {
		err = err2
	}
	return err
}
