package exec

import "sync"

// WallMeter converts the cost meter's resource totals into simulated
// wall-clock time for parallel queries. The cost meter keeps summing
// every worker's work — that is the resource consumption the Eq. 1/2
// checkpoint arithmetic reasons about — while each gather point reports
// how much of that work overlapped: the sum of its workers' local costs
// minus the slowest worker's cost. Simulated wall time is then
//
//	wall = total metered cost − Σ savings
//
// which reduces to the metered cost exactly when every region ran on one
// worker.
type WallMeter struct {
	mu      sync.Mutex
	saved   float64
	regions int
}

// NewWallMeter returns an empty meter.
func NewWallMeter() *WallMeter { return &WallMeter{} }

// AddSavings records one gather point's overlap (sum of worker costs
// minus the critical-path worker). Nil-safe.
func (w *WallMeter) AddSavings(s float64) {
	if w == nil || s <= 0 {
		return
	}
	w.mu.Lock()
	w.saved += s
	w.regions++
	w.mu.Unlock()
}

// Saved returns the total overlapped cost across all gather points.
func (w *WallMeter) Saved() float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.saved
}

// Regions returns the number of gather points that reported savings.
func (w *WallMeter) Regions() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.regions
}
