package session

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/reopt"
	"repro/internal/types"
)

// TestSessionParallelExec: a degree-4 query through the session layer
// matches serial results, leaves the broker pool whole, and records the
// wall-time overlap in the result.
func TestSessionParallelExec(t *testing.T) {
	db := newTestDB(2048)
	db.addTable(t, "a", 6000, 500, 10)
	db.addTable(t, "b", 500, 50, 5)
	m := db.manager(Config{})
	s := m.Session()
	params := map[string]types.Value{"cut": types.NewFloat(1e9)}

	serial, err := s.Exec(context.Background(), joinQuery, Options{Mode: reopt.ModeFull, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	par, err := s.Exec(context.Background(), joinQuery, Options{Mode: reopt.ModeFull, Params: params, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "parallel vs serial", par.Rows, serial.Rows)
	if par.Stats.Degree != 4 || par.Stats.WorkersSpawned == 0 {
		t.Errorf("degree=%d workers=%d, want parallel execution evidence",
			par.Stats.Degree, par.Stats.WorkersSpawned)
	}
	if par.WallCost >= par.Cost {
		t.Errorf("wall cost %.0f not below metered cost %.0f at degree 4", par.WallCost, par.Cost)
	}
	if serial.WallCost != serial.Cost {
		t.Errorf("serial wall cost %.0f != cost %.0f", serial.WallCost, serial.Cost)
	}
	if st := m.Broker().Stats(); st.AvailBytes != st.PoolBytes {
		t.Errorf("broker pool not whole after parallel query: %.0f of %.0f available",
			st.AvailBytes, st.PoolBytes)
	}
	for _, name := range db.cat.Tables() {
		if strings.HasPrefix(name, "mqr_") {
			t.Errorf("leftover temp table %s", name)
		}
	}
}

// TestSessionParallelCancel: cancelling a degree-4 query mid-flight
// unwinds every worker goroutine, drops temps, and releases the lease.
func TestSessionParallelCancel(t *testing.T) {
	db := newTestDB(2048)
	db.addTable(t, "a", 6000, 500, 10)
	db.addTable(t, "b", 500, 50, 5)
	m := db.manager(Config{})
	s := m.Session()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the query must abort at its first poll
	_, err := s.Exec(ctx, joinQuery, Options{
		Mode:     reopt.ModeFull,
		Params:   map[string]types.Value{"cut": types.NewFloat(1e9)},
		Parallel: 4,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := m.Broker().Stats(); st.AvailBytes != st.PoolBytes {
		t.Errorf("broker pool not whole after cancelled parallel query: %.0f of %.0f",
			st.AvailBytes, st.PoolBytes)
	}
	for _, name := range db.cat.Tables() {
		if strings.HasPrefix(name, "mqr_") {
			t.Errorf("leftover temp table %s", name)
		}
	}
}

// TestParallelFingerprint: degree participates in the plan-cache key,
// and serial spellings (0 and 1) share one entry.
func TestParallelFingerprint(t *testing.T) {
	s := &Session{m: &Manager{cfg: Config{MemBudget: 1 << 20}}}
	s.m.pool = newTestDB(64).pool
	f0 := s.fingerprint(Options{})
	f1 := s.fingerprint(Options{Parallel: 1})
	f4 := s.fingerprint(Options{Parallel: 4})
	if f0 != f1 {
		t.Errorf("degree 0 and 1 fingerprints differ: %q vs %q", f0, f1)
	}
	if f0 == f4 {
		t.Errorf("degree 4 shares the serial fingerprint %q", f0)
	}
	if !strings.Contains(f4, "par=4") {
		t.Errorf("fingerprint %q does not name the degree", f4)
	}
}
