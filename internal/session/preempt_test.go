package session

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/memmgr"
	"repro/internal/reopt"
	"repro/internal/tenant"
	"repro/internal/types"
)

// preemptQuery has two join steps plus an aggregation, so dispatch
// crosses several checkpoint-shaped boundaries where a preemption
// request can land.
const preemptQuery = `select a_grp, count(*) as cnt, sum(c_val) as v
	from a, b, c
	where a.a_fk = b.b_pk and a.a_grp = c.c_grp and a_val < :cut
	group by a_grp order by a_grp`

func preemptDB(t *testing.T) (*testDB, *Manager) {
	t.Helper()
	db := newTestDB(1024)
	db.addTable(t, "a", 4000, 100, 10)
	db.addTable(t, "b", 100, 10, 5)
	db.addTable(t, "c", 10, 5, 10)
	db.markPages()
	return db, db.manager(Config{})
}

// TestPreemptResumeByteIdentical is the checkpoint-preemption
// acceptance test: a query suspended at a re-optimization checkpoint —
// lease released, temps dropped, parked in the admission queue — must
// resume and produce exactly the rows of an undisturbed run, leave no
// temp or heap residue, and fully repay the broker.
func TestPreemptResumeByteIdentical(t *testing.T) {
	db, m := preemptDB(t)
	params := map[string]types.Value{"cut": types.NewFloat(500)}

	ref, err := m.Session().Exec(context.Background(), preemptQuery, Options{
		Mode: reopt.ModeFull, NoCache: true, Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Preempt the query from inside its own first checkpoint: the flag
	// is set while the dispatcher is mid-segment and honored at the next
	// segment boundary — exactly the paper's suspend point.
	var once sync.Once
	res, err := m.Session().Exec(context.Background(), preemptQuery, Options{
		Mode: reopt.ModeFull, NoCache: true, Params: params,
		CheckpointHook: func(step int) {
			once.Do(func() {
				for _, tag := range m.Running() {
					m.Preempt(tag)
				}
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preempted < 1 {
		t.Fatalf("query was never preempted (Preempted = %d)", res.Preempted)
	}
	rowsEqual(t, "preempt+resume", res.Rows, ref.Rows)
	checkNoResidue(t, "preempt", db, m)
}

// TestPreemptResumeCap: a query preempted more times than the resume
// cap keeps its lease marked non-preemptible and still completes with
// correct rows — preemption may delay work, never livelock it.
func TestPreemptResumeCap(t *testing.T) {
	db, m := preemptDB(t)
	params := map[string]types.Value{"cut": types.NewFloat(500)}

	ref, err := m.Session().Exec(context.Background(), preemptQuery, Options{
		Mode: reopt.ModeFull, NoCache: true, Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Preempt at every checkpoint of every incarnation, forever. The
	// resume cap must cut this off by exempting the lease.
	res, err := m.Session().Exec(context.Background(), preemptQuery, Options{
		Mode: reopt.ModeFull, NoCache: true, Params: params,
		CheckpointHook: func(step int) {
			for _, tag := range m.Running() {
				m.Preempt(tag)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preempted < 1 {
		t.Fatalf("query was never preempted (Preempted = %d)", res.Preempted)
	}
	rowsEqual(t, "preempt-storm", res.Rows, ref.Rows)
	checkNoResidue(t, "preempt-storm", db, m)
}

// TestPreemptByHigherPriorityAdmission drives the full end-to-end path
// with no test hook: a low-priority query holding most of the pool is
// preempted by a high-priority tenant's admission, suspends at its
// checkpoint, the high-priority query runs, and the victim resumes and
// finishes correctly.
func TestPreemptByHigherPriorityAdmission(t *testing.T) {
	db, m := preemptDB(t)
	m.SetTenantConfig("prod", tenant.Config{Weight: 1, Priority: 1})
	m.SetTenantConfig("batch", tenant.Config{Weight: 1, Priority: 0})
	params := map[string]types.Value{"cut": types.NewFloat(500)}

	ref, err := m.Session().Exec(context.Background(), preemptQuery, Options{
		Mode: reopt.ModeFull, NoCache: true, Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The batch query starts first and is throttled through checkpoints
	// by a hook that waits for the prod admission to have been issued,
	// giving the preemption request a boundary to land on.
	prodDone := make(chan struct{})
	batchRes := make(chan *Result, 1)
	batchErr := make(chan error, 1)
	go func() {
		res, err := m.Session().Exec(context.Background(), preemptQuery, Options{
			Mode: reopt.ModeFull, NoCache: true, Params: params, Tenant: "batch",
			CheckpointHook: func(step int) {
				select {
				case <-prodDone:
				case <-time.After(20 * time.Millisecond):
				}
			},
		})
		batchRes <- res
		batchErr <- err
	}()

	// Wait until the batch query actually holds its lease (tracked tags
	// appear before admission; a free pool would let prod in without
	// preempting anything), then issue a high-priority admission big
	// enough to demand the memory back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := m.Broker().Stats(); st.AvailBytes < st.PoolBytes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch query never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	st := m.Broker().Stats()
	lease, err := m.Broker().AdmitTenant(context.Background(), "prod", "urgent",
		st.PoolBytes, st.PoolBytes)
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	close(prodDone)

	if err := <-batchErr; err != nil {
		t.Fatal(err)
	}
	res := <-batchRes
	if res.Preempted < 1 {
		t.Fatalf("high-priority admission never preempted the batch query (Preempted = %d)", res.Preempted)
	}
	if res.Tenant != "batch" {
		t.Fatalf("result tenant = %q, want batch", res.Tenant)
	}
	rowsEqual(t, "priority-preempt", res.Rows, ref.Rows)
	checkNoResidue(t, "priority-preempt", db, m)
}

// TestPreemptUnknownTag: preempting a tag that is not running is a
// clean no-op.
func TestPreemptUnknownTag(t *testing.T) {
	_, m := preemptDB(t)
	if m.Preempt("nope") {
		t.Fatal("Preempt of unknown tag reported success")
	}
}

var _ = memmgr.ErrPreempted // pin the import; the sentinel is the contract under test
