package session

import (
	"repro/internal/obs"
	"repro/internal/types"
)

// registerIntrospection wires the engine's live state into the SQL
// front door: the mqr virtual schema (queries, operators, txns,
// metrics, trace) plus the continuous-suboptimality gauges. Providers
// run inside whatever query scans them, so they take only their own
// narrow locks (progress registry, trace ring, txn manager, metrics
// registry) — never schemaMu or the catalog lock, both of which a
// running query can hold.
func (m *Manager) registerIntrospection() {
	m.reg.NewGaugeFunc("reopt_live_suboptimality",
		"Largest continuous suboptimality score across running queries (1 = on estimate).",
		m.prog.MaxScore)
	m.reg.NewGaugeFunc("mqr_live_queries",
		"Queries currently executing.",
		func() float64 { return float64(m.prog.NumRunning()) })

	str := func(n string) types.Column { return types.Column{Name: n, Kind: types.KindString} }
	num := func(n string) types.Column { return types.Column{Name: n, Kind: types.KindFloat} }
	cnt := func(n string) types.Column { return types.Column{Name: n, Kind: types.KindInt} }

	mustVirtual(m, "mqr.queries",
		types.NewSchema(
			str("query"), cnt("session"), str("tenant"), str("sql"), str("state"),
			cnt("elapsed_ms"), num("est_cost"), num("cost"), num("fraction"),
			num("score"), cnt("checkpoints"), cnt("switches"), num("spill_bytes"),
			cnt("preempts")),
		func() []types.Tuple {
			var out []types.Tuple
			for _, p := range append(m.prog.Running(), m.prog.Recent()...) {
				s := p.Snapshot(false)
				out = append(out, types.Tuple{
					types.NewString(s.Query), types.NewInt(s.Session),
					types.NewString(s.Tenant),
					types.NewString(s.SQL), types.NewString(s.State),
					types.NewInt(s.ElapsedMS), types.NewFloat(s.EstCost),
					types.NewFloat(s.Cost), types.NewFloat(s.Fraction),
					types.NewFloat(s.Score), types.NewInt(s.Checkpoints),
					types.NewInt(s.Switches), types.NewFloat(s.SpillBytes),
					types.NewInt(s.Preempts),
				})
			}
			return out
		})

	mustVirtual(m, "mqr.operators",
		types.NewSchema(
			str("query"), cnt("op"), cnt("depth"), str("label"), str("detail"),
			str("state"), num("est_rows"), cnt("rows"), num("spill_bytes")),
		func() []types.Tuple {
			var out []types.Tuple
			for _, p := range append(m.prog.Running(), m.prog.Recent()...) {
				s := p.Snapshot(true)
				for _, o := range s.Operators {
					out = append(out, types.Tuple{
						types.NewString(s.Query), types.NewInt(int64(o.ID)),
						types.NewInt(int64(o.Depth)), types.NewString(o.Label),
						types.NewString(o.Detail), types.NewString(o.State),
						types.NewFloat(o.EstRows), types.NewInt(o.Rows),
						types.NewFloat(o.SpillBytes),
					})
				}
			}
			return out
		})

	mustVirtual(m, "mqr.txns",
		types.NewSchema(cnt("txn"), str("kind"), cnt("writes")),
		func() []types.Tuple {
			var out []types.Tuple
			for _, t := range m.cat.Txns().ActiveTxns() {
				kind := "write"
				if t.Reader {
					kind = "read"
				}
				out = append(out, types.Tuple{
					types.NewInt(int64(t.ID)), types.NewString(kind),
					types.NewInt(int64(t.Writes)),
				})
			}
			return out
		})

	mustVirtual(m, "mqr.metrics",
		types.NewSchema(str("name"), str("type"), num("value")),
		func() []types.Tuple {
			samples := m.reg.Samples()
			out := make([]types.Tuple, len(samples))
			for i, s := range samples {
				out[i] = types.Tuple{
					types.NewString(s.Name), types.NewString(s.Type),
					types.NewFloat(s.Value),
				}
			}
			return out
		})

	mustVirtual(m, "mqr.trace",
		types.NewSchema(cnt("seq"), str("query"), str("kind"), str("msg"), cnt("dropped")),
		func() []types.Tuple {
			events := m.engTrace.Events()
			dropped := int64(m.engTrace.Dropped())
			out := make([]types.Tuple, len(events))
			for i, e := range events {
				out[i] = types.Tuple{
					types.NewInt(int64(e.Seq)), types.NewString(e.Query),
					types.NewString(e.Kind), types.NewString(e.Msg),
					types.NewInt(dropped),
				}
			}
			return out
		})
}

// mustVirtual registers one system table; the names are engine-owned,
// so a failure is a programming error.
func mustVirtual(m *Manager, name string, schema *types.Schema, provider func() []types.Tuple) {
	if _, err := m.cat.RegisterVirtual(name, schema, provider); err != nil {
		panic("session: " + err.Error())
	}
}

// ProgressSnapshots returns point-in-time progress for every running
// query (withOps includes per-operator rows), sorted by tag, plus the
// recently finished ring when includeRecent is set. The server's
// /progress endpoint and the richer /status both read through here.
func (m *Manager) ProgressSnapshots(withOps, includeRecent bool) []obs.ProgressSnapshot {
	ps := m.prog.Running()
	if includeRecent {
		ps = append(ps, m.prog.Recent()...)
	}
	out := make([]obs.ProgressSnapshot, 0, len(ps))
	for _, p := range ps {
		out = append(out, p.Snapshot(withOps))
	}
	sortSnapshots(out)
	return out
}

func sortSnapshots(s []obs.ProgressSnapshot) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Query < s[j-1].Query; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
