package session

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/reopt"
	"repro/internal/types"
)

func TestSlowQueryWarning(t *testing.T) {
	db := newTestDB(1024)
	db.addTable(t, "a", 2000, 100, 10)
	db.addTable(t, "b", 100, 10, 5)
	m := db.manager(Config{})
	var buf bytes.Buffer
	m.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))
	s := m.Session()
	opts := Options{
		Mode:   reopt.ModeFull,
		Params: map[string]types.Value{"cut": types.NewFloat(500)},
	}

	// Below the threshold: silence.
	m.SetSlowQueryThreshold(time.Hour)
	if _, err := s.Exec(context.Background(), joinQuery, opts); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("fast query warned: %s", buf.String())
	}

	// Manager-wide threshold of 1ns: every statement warns, with the
	// structured fields attached.
	m.SetSlowQueryThreshold(time.Nanosecond)
	res, err := s.Exec(context.Background(), joinQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"slow query", res.Query, "duration=", "switches=", "spill_bytes="} {
		if !strings.Contains(out, want) {
			t.Errorf("warning missing %q: %s", want, out)
		}
	}

	// The per-query override wins over the manager setting.
	m.SetSlowQueryThreshold(0)
	buf.Reset()
	perQuery := opts
	perQuery.SlowQueryThreshold = time.Nanosecond
	if _, err := s.Exec(context.Background(), joinQuery, perQuery); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "slow query") {
		t.Errorf("per-query threshold did not warn: %s", buf.String())
	}

	// DML takes the same path.
	buf.Reset()
	m.SetSlowQueryThreshold(time.Nanosecond)
	if _, err := s.Exec(context.Background(),
		"insert into a (a_pk, a_fk, a_grp, a_val) values (100002, 1, 1, 1.0)", Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "slow query") {
		t.Errorf("slow DML did not warn: %s", buf.String())
	}
}
