package session

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/memmgr"
	"repro/internal/reopt"
	"repro/internal/tpcd"
	"repro/internal/types"
)

// newTPCDManager loads a small, deliberately stale TPC-D instance (so
// full-mode runs actually re-optimize) behind a session manager.
func newTPCDManager(t *testing.T, cfg Config) (*testDB, *Manager) {
	t.Helper()
	db := newTestDB(2048)
	if err := tpcd.Load(db.cat, tpcd.Config{SF: 0.005, Seed: 7, StaleFrac: 0.5}); err != nil {
		t.Fatal(err)
	}
	db.markPages()
	return db, db.manager(cfg)
}

// checkNoResidue is the abort invariant: no temp tables survive, no
// temp heap pages outlive the query, the broker pool is back at full
// capacity, and the running registry is empty.
func checkNoResidue(t *testing.T, label string, db *testDB, m *Manager) {
	t.Helper()
	if temps := db.cat.TempTables(); len(temps) != 0 {
		t.Fatalf("%s: residual temp tables %v", label, temps)
	}
	if db.basePages > 0 {
		if got := db.pool.Disk().NumPages(); got != db.basePages {
			t.Fatalf("%s: %d disk pages allocated, want the post-load baseline %d — leaked temp heap files",
				label, got, db.basePages)
		}
	}
	if st := m.Broker().Stats(); st.AvailBytes != st.PoolBytes {
		t.Fatalf("%s: broker still holds %.0f of %.0f bytes after abort",
			label, st.PoolBytes-st.AvailBytes, st.PoolBytes)
	}
	if got := m.Running(); len(got) != 0 {
		t.Fatalf("%s: stale entries in the running-query registry: %v", label, got)
	}
}

// runFaultSweep is the leak-check acceptance sweep: one clean pass over
// the TPC-D workload records every fault site the engine passes through
// (operator loops, checkpoint decisions, temp drops); then, for each
// site in turn, the workload is re-run with a one-shot error armed
// there and the abort invariant is asserted after every query.
// mustSee lists sites the recording run is required to reach — the
// low-grant variant uses it to prove the spill paths are actually in
// the swept surface rather than vacuously absent.
func runFaultSweep(t *testing.T, cfg Config, mustSee []string) {
	db, m := newTPCDManager(t, cfg)
	queries := tpcd.Queries()
	if len(mustSee) > 0 {
		// The paper's queries group on low-cardinality columns and never
		// outgrow even tiny agg grants; a per-order rollup has one group
		// per order, which forces the aggregation spill path under the
		// low-grant config.
		queries = append(queries, tpcd.Query{Name: "QAggSpill", SQL: `
			select l_orderkey, sum(l_quantity) as qty, count(*) as cnt
			from lineitem group by l_orderkey`})
	}
	run := func(q tpcd.Query) error {
		_, err := m.Session().Exec(context.Background(), q.SQL,
			Options{Mode: reopt.ModeFull, NoCache: true})
		return err
	}

	inj := faultinject.Enable()
	defer faultinject.Disable()

	for _, q := range queries {
		if err := run(q); err != nil {
			t.Fatalf("clean %s: %v", q.Name, err)
		}
		checkNoResidue(t, "clean/"+q.Name, db, m)
	}
	sites := inj.Seen()
	if len(sites) < 6 {
		t.Fatalf("recording run saw only %d fault sites (%v); the sweep proves nothing", len(sites), sites)
	}
	for _, want := range mustSee {
		found := false
		for _, s := range sites {
			if s == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("recording run never reached site %s (saw %v); the sweep would not cover the spill paths", want, sites)
		}
	}
	t.Logf("sweeping %d fault sites: %v", len(sites), sites)

	boom := errors.New("injected abort")
	for _, site := range sites {
		inj.Arm(site, faultinject.Fault{Err: boom})
		fired := false
		for _, q := range queries {
			err := run(q)
			// A fired fault usually surfaces as the query's error, but
			// not always: a failed temp drop is retried by the end-of-
			// query cleanup, and the query itself succeeds.
			if err != nil && !strings.Contains(err.Error(), boom.Error()) {
				t.Fatalf("site %s, %s: unexpected error %v", site, q.Name, err)
			}
			checkNoResidue(t, site+"/"+q.Name, db, m)
			if !inj.Armed(site) {
				fired = true
				break
			}
		}
		if !fired {
			t.Errorf("site %s was seen in the recording run but never fired in the sweep", site)
		}
		inj.Disarm(site)
	}

	// The engine comes out reusable: the whole workload still runs clean.
	for _, q := range queries {
		if err := run(q); err != nil {
			t.Fatalf("post-sweep %s: %v", q.Name, err)
		}
	}
	checkNoResidue(t, "post-sweep", db, m)
}

// TestFaultSweepTPCDNoLeaks sweeps at a moderate budget: joins mostly
// fit their grants, so this covers the in-memory paths plus the
// occasional spill.
func TestFaultSweepTPCDNoLeaks(t *testing.T) {
	runFaultSweep(t, Config{MemPoolBytes: 512 << 10, MemBudget: 512 << 10}, nil)
}

// TestFaultSweepTPCDNoLeaksLowGrant re-runs the sweep with grants so
// small that every hash join and aggregation spills: partitioned
// build/probe heap files and spilled agg states must all be reclaimed
// when a fault lands mid-build, mid-probe, or mid-merge. The mustSee
// list pins the spill sites into the swept surface.
func TestFaultSweepTPCDNoLeaksLowGrant(t *testing.T) {
	runFaultSweep(t, Config{MemPoolBytes: 96 << 10, MemBudget: 96 << 10},
		[]string{"exec.hashjoin.spill", "exec.hashjoin.probe", "exec.agg.merge"})
}

// TestPanicRecoveredPerQuery pins the per-query fault boundary: a panic
// from inside an operator loop — standing in for any types.Value
// accessor panic (mistyped comparison, Int() on a string), which takes
// the same unwind path — becomes an ordinary query error, cleanup still
// runs, and the same session keeps working.
func TestPanicRecoveredPerQuery(t *testing.T) {
	db, m := newTPCDManager(t, Config{})
	inj := faultinject.Enable()
	defer faultinject.Disable()

	q3, err := tpcd.ByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	s := m.Session()
	inj.Arm("exec.scan.next", faultinject.Fault{Panic: "mistyped value access", After: 100})
	_, err = s.Exec(context.Background(), q3.SQL, Options{Mode: reopt.ModeFull})
	if err == nil || !strings.Contains(err.Error(), "query panic") {
		t.Fatalf("err = %v, want a recovered panic error", err)
	}
	checkNoResidue(t, "panic", db, m)
	if m.em.QueryErrors.Value() < 1 {
		t.Error("recovered panic was not counted as a query error")
	}
	if _, err := s.Exec(context.Background(), q3.SQL, Options{}); err != nil {
		t.Fatalf("session unusable after a recovered panic: %v", err)
	}
}

// TestCancelByTagMidExecution cancels a running query through the
// manager's registry — the same path POST /cancel takes — from inside
// an operator loop, so the cancel provably lands mid-execution.
func TestCancelByTagMidExecution(t *testing.T) {
	db, m := newTPCDManager(t, Config{})
	inj := faultinject.Enable()
	defer faultinject.Disable()

	q5, err := tpcd.ByName("Q5")
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm("exec.scan.next", faultinject.Fault{After: 500, Do: func() {
		for _, tag := range m.Running() {
			if !m.Cancel(tag) {
				t.Errorf("Cancel(%q) found no running query", tag)
			}
		}
	}})
	_, err = m.Session().Exec(context.Background(), q5.SQL, Options{Mode: reopt.ModeFull})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := m.em.QueriesCancelled.Value(); got != 1 {
		t.Errorf("queries_cancelled = %v, want 1", got)
	}
	checkNoResidue(t, "cancel", db, m)
	if m.Cancel("no_such_tag") {
		t.Error("Cancel of an unknown tag reported success")
	}
}

// TestDeadlineAbortsWedgedQuery wedges an operator mid-scan and relies
// on Options.Timeout alone to get the query back.
func TestDeadlineAbortsWedgedQuery(t *testing.T) {
	db, m := newTPCDManager(t, Config{})
	inj := faultinject.Enable()
	defer faultinject.Disable()

	q1, err := tpcd.ByName("Q1")
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm("exec.scan.next", faultinject.Fault{After: 100, Delay: 200 * time.Millisecond})
	_, err = m.Session().Exec(context.Background(), q1.SQL,
		Options{Mode: reopt.ModeFull, Timeout: 30 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := m.em.QueriesCancelled.Value(); got != 1 {
		t.Errorf("queries_cancelled = %v, want 1", got)
	}
	checkNoResidue(t, "deadline", db, m)
}

// TestCancelDuringAdmissionUnblocksNext is the broker acceptance at the
// session layer: a query blocked in admission is cancelled by tag, and
// the query queued behind it — which fits the free pool — is admitted
// without any lease traffic forcing a queue re-scan.
func TestCancelDuringAdmissionUnblocksNext(t *testing.T) {
	db := newTestDB(4096)
	// Big relations so the three-way join's memory minimum swallows the
	// whole pool (it is clamped to the pool size at admission).
	db.addTable(t, "rel1", 30000, 15000, 25)
	db.addTable(t, "rel2", 15000, 20000, 5)
	db.addTable(t, "rel3", 20000, 5, 5)
	db.addTable(t, "a", 2000, 100, 10)
	db.addTable(t, "b", 100, 10, 5)

	const pool = 1 << 20
	m := db.manager(Config{MemPoolBytes: pool, MemBudget: pool})
	queued := make(chan string, 4)
	m.Broker().SetTrace(func(ev memmgr.Event) {
		if ev.Kind == "queue" {
			queued <- ev.Query
		}
	})

	// A filler lease keeps the pool full while the two queries line up.
	filler, err := m.Broker().Admit(context.Background(), "filler", pool, pool)
	if err != nil {
		t.Fatal(err)
	}

	bErr := make(chan error, 1)
	go func() {
		_, err := m.Session().Exec(context.Background(), `select rel1_grp, count(*) as cnt
			from rel1, rel2, rel3
			where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
			and rel1_val < :cut group by rel1_grp`, Options{
			Params: map[string]types.Value{"cut": types.NewFloat(150)},
		})
		bErr <- err
	}()
	tagB := <-queued

	cErr := make(chan error, 1)
	go func() {
		_, err := m.Session().Exec(context.Background(), joinQuery, Options{
			Params: map[string]types.Value{"cut": types.NewFloat(500)},
		})
		cErr <- err
	}()
	<-queued // C is in line behind B

	// Free half the pool: enough for C, not for B, so FIFO keeps both
	// waiting with B at the head.
	filler.Return(pool / 2)
	if !m.Cancel(tagB) {
		t.Fatalf("Cancel(%q) found no running query", tagB)
	}
	if err := <-bErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("B's Exec = %v, want context.Canceled", err)
	}
	select {
	case err := <-cErr:
		if err != nil {
			t.Fatalf("C failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("C still blocked in admission after the query ahead of it was cancelled")
	}

	filler.Release()
	checkNoResidue(t, "admission-cancel", db, m)
}
