package session

import (
	"context"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/histogram"
	"repro/internal/memmgr"
	"repro/internal/reopt"
	"repro/internal/storage"
	"repro/internal/types"
)

type testDB struct {
	cat   *catalog.Catalog
	pool  *storage.BufferPool
	meter *storage.CostMeter
	// basePages, when set (markPages), is the post-load disk-page
	// baseline that checkNoResidue holds every query to.
	basePages int
}

// markPages records the disk-page baseline after loading: queries may
// allocate temp heap pages (spill partitions, materialized switches),
// but every one of them must be freed by end of query.
func (db *testDB) markPages() { db.basePages = db.pool.Disk().NumPages() }

func newTestDB(poolPages int) *testDB {
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	pool := storage.NewBufferPool(storage.NewDisk(m), poolPages)
	return &testDB{cat: catalog.New(pool), pool: pool, meter: m}
}

func (db *testDB) manager(cfg Config) *Manager {
	return NewManager(db.cat, db.pool, db.meter, cfg)
}

// addTable fills name(pk key, fk, grp, val) with deterministic data.
func (db *testDB) addTable(t *testing.T, name string, rows int, fkMod, grpMod int64) {
	t.Helper()
	tbl, err := db.cat.CreateTable(name, types.NewSchema(
		types.Column{Name: name + "_pk", Kind: types.KindInt, Key: true},
		types.Column{Name: name + "_fk", Kind: types.KindInt},
		types.Column{Name: name + "_grp", Kind: types.KindInt},
		types.Column{Name: name + "_val", Kind: types.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(types.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(i) % fkMod),
			types.NewInt(int64(i) % grpMod),
			types.NewFloat(float64(i % 1000)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.cat.Analyze(name, catalog.AnalyzeOptions{Family: histogram.MaxDiff}); err != nil {
		t.Fatal(err)
	}
}

func sortRows(rows []types.Tuple) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func rowsEqual(t *testing.T, label string, got, want []types.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	sortRows(got)
	sortRows(want)
	for i := range got {
		for j := range got[i] {
			if !got[i][j].Equal(want[i][j]) {
				t.Fatalf("%s row %d col %d: %v != %v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

const joinQuery = `select a_grp, count(*) as cnt from a, b
	where a.a_fk = b.b_pk and a_val < :cut group by a_grp order by a_grp`

func TestSessionExecBasic(t *testing.T) {
	db := newTestDB(1024)
	db.addTable(t, "a", 2000, 100, 10)
	db.addTable(t, "b", 100, 10, 5)
	m := db.manager(Config{})
	s := m.Session()
	res, err := s.Exec(context.Background(), joinQuery, Options{
		Mode:   reopt.ModeFull,
		Params: map[string]types.Value{"cut": types.NewFloat(500)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("%d groups, want 10", len(res.Rows))
	}
	if len(res.Columns) != 2 || res.Columns[0] != "a_grp" || res.Columns[1] != "cnt" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.CacheHit {
		t.Error("first execution reported a cache hit")
	}
	if res.Broker.Admitted <= 0 {
		t.Errorf("no broker admission recorded: %+v", res.Broker)
	}
	if !strings.HasPrefix(res.Query, "s1_q") {
		t.Errorf("query tag = %q", res.Query)
	}
}

func TestPlanCacheHitAcrossSessionsAndBindings(t *testing.T) {
	db := newTestDB(1024)
	db.addTable(t, "a", 2000, 100, 10)
	db.addTable(t, "b", 100, 10, 5)
	m := db.manager(Config{})
	ctx := context.Background()

	r1, err := m.Session().Exec(ctx, joinQuery, Options{
		Params: map[string]types.Value{"cut": types.NewFloat(500)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same statement, different whitespace, different binding, another
	// session: one cached plan serves it.
	r2, err := m.Session().Exec(ctx,
		"select a_grp, count(*) as cnt from a, b where a.a_fk = b.b_pk and a_val < :cut group by a_grp order by a_grp",
		Options{Params: map[string]types.Value{"cut": types.NewFloat(200)}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit || !r2.CacheHit {
		t.Errorf("cache hits: first=%t second=%t, want false/true", r1.CacheHit, r2.CacheHit)
	}
	// The cached plan still binds per execution: fewer rows survive the
	// tighter cut.
	var n1, n2 int64
	for _, r := range r1.Rows {
		n1 += r[1].Int()
	}
	for _, r := range r2.Rows {
		n2 += r[1].Int()
	}
	if n2 >= n1 {
		t.Errorf("cut=200 kept %d rows vs %d for cut=500; cached plan ignored its bindings", n2, n1)
	}
	if st := m.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v", st)
	}
}

func TestAnalyzeInvalidatesCachedPlans(t *testing.T) {
	db := newTestDB(1024)
	db.addTable(t, "a", 2000, 100, 10)
	db.addTable(t, "b", 100, 10, 5)
	m := db.manager(Config{})
	ctx := context.Background()
	s := m.Session()
	opts := Options{Params: map[string]types.Value{"cut": types.NewFloat(500)}}

	if _, err := s.Exec(ctx, joinQuery, opts); err != nil {
		t.Fatal(err)
	}
	if err := m.Analyze("a", histogram.MaxDiff); err != nil {
		t.Fatal(err)
	}
	r, err := s.Exec(ctx, joinQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHit {
		t.Error("plan cached against pre-ANALYZE statistics was served")
	}
	if st := m.CacheStats(); st.Invalidations != 1 {
		t.Errorf("cache stats = %+v, want 1 invalidation", st)
	}
}

// TestBrokeredHandoffBetweenSessions runs the §2.3 multi-query scenario
// end to end: session A's query is admitted with the whole shared pool,
// session B's query queues, and B is admitted strictly between A's
// mid-query surplus return and A's release.
func TestBrokeredHandoffBetweenSessions(t *testing.T) {
	db := newTestDB(4096)
	// Figure 3's shape: the host-var filter on rel1 is over-estimated
	// 3x, so A's re-allocation shrinks demands and returns the surplus.
	db.addTable(t, "rel1", 30000, 15000, 25)
	db.addTable(t, "rel2", 15000, 20000, 5)
	db.addTable(t, "rel3", 20000, 5, 5)
	// Small tables for B: a real join, tiny memory minimum.
	db.addTable(t, "a", 2000, 100, 10)
	db.addTable(t, "b", 100, 10, 5)

	const pool = 1 << 20
	m := db.manager(Config{MemPoolBytes: pool, MemBudget: pool})

	var mu sync.Mutex
	var events []memmgr.Event
	queued := make(chan string, 16)
	m.Broker().SetTrace(func(ev memmgr.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
		if ev.Kind == "queue" {
			queued <- ev.Query
		}
	})

	// A filler lease holds the whole pool so both queries queue in a
	// known order; releasing it admits A (whose demand swallows the
	// pool) and leaves B waiting on A's mid-query return.
	ctx := context.Background()
	filler, err := m.Broker().Admit(ctx, "filler", pool, pool)
	if err != nil {
		t.Fatal(err)
	}

	aDone := make(chan *Result, 1)
	go func() {
		r, err := m.Session().Exec(ctx, `select rel1_grp, count(*) as cnt from rel1, rel2, rel3
			where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
			and rel1_val < :cut group by rel1_grp`, Options{
			Mode:   reopt.ModeMemoryOnly,
			Params: map[string]types.Value{"cut": types.NewFloat(150)},
		})
		if err != nil {
			t.Error(err)
		}
		aDone <- r
	}()
	tagA := <-queued

	bDone := make(chan *Result, 1)
	go func() {
		r, err := m.Session().Exec(ctx, joinQuery, Options{
			Params: map[string]types.Value{"cut": types.NewFloat(500)},
		})
		if err != nil {
			t.Error(err)
		}
		bDone <- r
	}()
	<-queued // B is in line behind A
	filler.Release()

	resA := <-aDone
	resB := <-bDone
	if resA == nil || resB == nil {
		t.Fatal("a query failed")
	}
	if resA.Stats.BrokerReturns == 0 {
		t.Fatal("A never returned surplus to the broker")
	}
	if !resB.Broker.Waited {
		t.Error("B's admission did not queue")
	}

	mu.Lock()
	defer mu.Unlock()
	idx := map[string]int{}
	for i, ev := range events {
		key := ev.Kind + " " + ev.Query
		if _, ok := idx[key]; !ok {
			idx[key] = i
		}
	}
	retA := idx["return "+tagA]
	admB := idx["admit "+resB.Query]
	relA := idx["release "+tagA]
	if !(retA < admB && admB < relA) {
		t.Errorf("B admitted outside A's return window: return@%d admit@%d release@%d\n%v",
			retA, admB, relA, events)
	}
}

// TestConcurrentSessions drives 16 goroutines of mixed queries through
// one manager; under -race this is the engine-wide thread-safety test at
// the session layer.
func TestConcurrentSessions(t *testing.T) {
	db := newTestDB(2048)
	db.addTable(t, "a", 3000, 150, 10)
	db.addTable(t, "b", 150, 15, 5)
	db.addTable(t, "c", 15, 5, 5)
	db.cat.CreateIndex("b", "b_pk")
	m := db.manager(Config{MemPoolBytes: 8 << 20, MemBudget: 4 << 20})

	queries := []string{
		joinQuery,
		`select a_grp, count(*) as cnt from a, b, c
			where a.a_fk = b.b_pk and b.b_fk = c.c_pk and a_val < :cut group by a_grp`,
		`select b_grp, avg(b_val) as av from b where b_val < :cut group by b_grp`,
	}
	modes := []reopt.Mode{reopt.ModeOff, reopt.ModeMemoryOnly, reopt.ModeFull}

	want := make([][]types.Tuple, len(queries))
	for i, q := range queries {
		r, err := m.Session().Exec(context.Background(), q, Options{
			Params: map[string]types.Value{"cut": types.NewFloat(700)},
		})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Rows
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := m.Session()
			for i := 0; i < 6; i++ {
				qi := (g + i) % len(queries)
				r, err := s.Exec(context.Background(), queries[qi], Options{
					Mode:   modes[(g+i)%len(modes)],
					Params: map[string]types.Value{"cut": types.NewFloat(700)},
				})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				rowsEqual(t, "concurrent", r.Rows, want[qi])
			}
		}(g)
	}
	wg.Wait()

	if st := m.Broker().Stats(); st.AvailBytes != st.PoolBytes {
		t.Errorf("broker leaked: %.0f of %.0f available after drain", st.AvailBytes, st.PoolBytes)
	}
	if st := m.CacheStats(); st.Hits == 0 {
		t.Errorf("no plan-cache hits across 96 executions: %+v", st)
	}
}
