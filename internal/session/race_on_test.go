//go:build race

package session

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation distorts wall-clock measurements.
const raceEnabled = true
