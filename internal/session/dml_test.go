package session

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
)

func TestSessionDMLAutocommit(t *testing.T) {
	db := newTestDB(64)
	db.addTable(t, "r", 100, 10, 5)
	m := db.manager(Config{})
	s := m.Session()
	ctx := context.Background()

	res, err := s.Exec(ctx, `insert into r (r_pk, r_fk, r_grp, r_val) values (1000, 1, 1, 1.5), (1001, 2, 2, 2.5)`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Errorf("RowsAffected = %d, want 2", res.RowsAffected)
	}

	q, err := s.Exec(ctx, `select r_pk from r where r_pk >= 1000`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 2 {
		t.Errorf("committed inserts: %d rows visible, want 2", len(q.Rows))
	}

	res, err = s.Exec(ctx, `update r set r_val = 9.0 where r_pk >= 1000`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Errorf("update RowsAffected = %d, want 2", res.RowsAffected)
	}

	res, err = s.Exec(ctx, `delete from r where r_pk >= 1000`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Errorf("delete RowsAffected = %d, want 2", res.RowsAffected)
	}
	q, _ = s.Exec(ctx, `select r_pk from r where r_pk >= 1000`, Options{})
	if len(q.Rows) != 0 {
		t.Errorf("deleted rows still visible: %d", len(q.Rows))
	}
}

func TestSessionExplicitTxnRollback(t *testing.T) {
	db := newTestDB(64)
	db.addTable(t, "r", 50, 10, 5)
	m := db.manager(Config{})
	s := m.Session()
	ctx := context.Background()

	if _, err := s.Exec(ctx, `begin`, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(ctx, `insert into r (r_pk, r_fk, r_grp, r_val) values (500, 0, 0, 0.0)`, Options{}); err != nil {
		t.Fatal(err)
	}
	// The transaction reads its own write; another session does not.
	q, err := s.Exec(ctx, `select r_pk from r where r_pk = 500`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 {
		t.Errorf("own uncommitted write invisible to transaction")
	}
	other := m.Session()
	q, _ = other.Exec(ctx, `select r_pk from r where r_pk = 500`, Options{})
	if len(q.Rows) != 0 {
		t.Errorf("uncommitted write visible to another session")
	}

	if _, err := s.Exec(ctx, `rollback`, Options{}); err != nil {
		t.Fatal(err)
	}
	q, _ = s.Exec(ctx, `select r_pk from r where r_pk = 500`, Options{})
	if len(q.Rows) != 0 {
		t.Errorf("rolled-back write survived")
	}
	// Statement outside any transaction errors on COMMIT.
	if _, err := s.Exec(ctx, `commit`, Options{}); err == nil {
		t.Error("COMMIT outside a transaction succeeded")
	}
}

func TestSessionExplicitTxnCommitCountsRows(t *testing.T) {
	db := newTestDB(64)
	db.addTable(t, "r", 50, 10, 5)
	m := db.manager(Config{})
	s := m.Session()
	ctx := context.Background()

	v0 := db.cat.StatsVersion()
	if _, err := s.Exec(ctx, `begin`, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		stmt := fmt.Sprintf(`insert into r (r_pk, r_fk, r_grp, r_val) values (%d, 0, 0, 0.0)`, 600+i)
		if _, err := s.Exec(ctx, stmt, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// No version bump until commit.
	if got := db.cat.StatsVersion(); got != v0 {
		t.Errorf("StatsVersion moved before commit: %d -> %d", v0, got)
	}
	res, err := s.Exec(ctx, `commit`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 3 {
		t.Errorf("commit RowsAffected = %d, want 3", res.RowsAffected)
	}
	if got := db.cat.StatsVersion(); got != v0+1 {
		t.Errorf("StatsVersion = %d after commit, want %d (exactly one bump)", got, v0+1)
	}
}

func TestSessionWriteConflictMetrics(t *testing.T) {
	db := newTestDB(64)
	db.addTable(t, "r", 50, 10, 5)
	m := db.manager(Config{})
	ctx := context.Background()

	s1, s2 := m.Session(), m.Session()
	if _, err := s1.Exec(ctx, `begin`, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec(ctx, `delete from r where r_pk = 7`, Options{}); err != nil {
		t.Fatal(err)
	}
	// Second session autocommits a delete of the same row: conflict.
	_, err := s2.Exec(ctx, `delete from r where r_pk = 7`, Options{})
	if !errors.Is(err, storage.ErrWriteConflict) {
		t.Fatalf("got %v, want ErrWriteConflict", err)
	}
	if _, err := s1.Exec(ctx, `commit`, Options{}); err != nil {
		t.Fatal(err)
	}

	want := map[string]float64{
		"mqr_write_conflicts_total": 1,
		"mqr_txns_aborted_total":    1,
		"mqr_txns_committed_total":  1,
		"mqr_rows_written_total":    1,
	}
	for name, v := range want {
		c, ok := m.Registry().Get(name).(*obs.Counter)
		if !ok {
			t.Errorf("%s not registered", name)
			continue
		}
		if got := c.Value(); got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
}

func TestSessionReaderSnapshotIgnoresConcurrentCommit(t *testing.T) {
	db := newTestDB(64)
	db.addTable(t, "r", 100, 10, 5)
	m := db.manager(Config{})
	ctx := context.Background()

	// Writer session holds an open transaction with a visible-to-itself
	// delete; a reader session's query planned before commit must count
	// the original rows.
	w := m.Session()
	if _, err := w.Exec(ctx, `begin`, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec(ctx, `delete from r where r_pk < 50`, Options{}); err != nil {
		t.Fatal(err)
	}

	r := m.Session()
	q, err := r.Exec(ctx, `select r_pk from r`, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 100 {
		t.Errorf("reader during open txn sees %d rows, want 100", len(q.Rows))
	}

	if _, err := w.Exec(ctx, `commit`, Options{}); err != nil {
		t.Fatal(err)
	}
	q, err = r.Exec(ctx, `select r_pk from r`, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 50 {
		t.Errorf("reader after commit sees %d rows, want 50", len(q.Rows))
	}
}
