// Package session turns the single-query engine into a concurrent
// multi-query one. A Manager owns the shared resources — catalog,
// buffer pool, cost meter, the global memory Broker, and the plan cache
// — and hands out Sessions whose Exec calls run concurrently against
// them.
//
// Operator memory is the coordination point (the paper's §2.3 motivates
// mid-query re-allocation precisely by the multi-query setting): each
// query's plan-derived demands are admitted against one shared pool, a
// query whose minimum does not fit queues FIFO, and the re-optimizing
// dispatcher returns surplus grants mid-query so queued queries start
// before the donor finishes.
//
// Statements that change statistics (ANALYZE, index creation) quiesce
// the engine: they take the schema lock exclusively while every Exec
// holds it shared for the duration of its query.
package session

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/histogram"
	"repro/internal/memmgr"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/reopt"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// Config sizes the shared multi-query resources.
type Config struct {
	// MemPoolBytes is the broker's shared operator-memory pool
	// (default 64 MB). Queries queue when the sum of admitted
	// minimums would exceed it.
	MemPoolBytes float64
	// MemBudget is the per-query optimize-time budget (default 32 MB,
	// capped at the pool): the optimizer shapes plans assuming this
	// much; the broker grants what is actually free at admission.
	MemBudget float64
	// PlanCacheSize bounds the plan cache (default 256 entries;
	// negative disables caching).
	PlanCacheSize int
}

// Manager owns one engine instance shared by all sessions.
type Manager struct {
	cat    *catalog.Catalog
	pool   *storage.BufferPool
	meter  *storage.CostMeter
	broker *memmgr.Broker
	cache  *plancache.Cache
	cfg    Config

	// schemaMu quiesces DDL/ANALYZE against running queries: Exec
	// holds it shared for the whole query, Analyze takes it
	// exclusively. Coarse, but statistics refreshes are rare and the
	// alternative is per-table latching through every operator.
	schemaMu sync.RWMutex

	sessions atomic.Int64
	queries  atomic.Int64
}

// NewManager wraps an engine's shared state for concurrent use.
func NewManager(cat *catalog.Catalog, pool *storage.BufferPool, meter *storage.CostMeter, cfg Config) *Manager {
	if cfg.MemPoolBytes <= 0 {
		cfg.MemPoolBytes = 64 << 20
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 32 << 20
	}
	if cfg.MemBudget > cfg.MemPoolBytes {
		cfg.MemBudget = cfg.MemPoolBytes
	}
	m := &Manager{
		cat:    cat,
		pool:   pool,
		meter:  meter,
		broker: memmgr.NewBroker(cfg.MemPoolBytes),
		cfg:    cfg,
	}
	if cfg.PlanCacheSize >= 0 {
		size := cfg.PlanCacheSize
		if size == 0 {
			size = 256
		}
		m.cache = plancache.New(size, cat.StatsVersion)
	}
	return m
}

// Broker exposes the shared memory broker (status endpoints, tests).
func (m *Manager) Broker() *memmgr.Broker { return m.broker }

// CacheStats snapshots plan-cache traffic (zero value when disabled).
func (m *Manager) CacheStats() plancache.Stats {
	if m.cache == nil {
		return plancache.Stats{}
	}
	return m.cache.Stats()
}

// Catalog returns the shared catalog.
func (m *Manager) Catalog() *catalog.Catalog { return m.cat }

// Analyze refreshes a table's statistics under the exclusive schema
// lock, waiting for running queries to drain and blocking new ones
// until the histograms are consistent again. The statistics-version
// bump invalidates cached plans lazily.
func (m *Manager) Analyze(table string, family histogram.Family) error {
	m.schemaMu.Lock()
	defer m.schemaMu.Unlock()
	return m.cat.Analyze(table, catalog.AnalyzeOptions{Family: family})
}

// Session is one client's handle on the shared engine. Sessions are
// cheap; a session's Exec calls may themselves run concurrently (each
// query gets its own tag and lease).
type Session struct {
	m  *Manager
	id int64
}

// Session opens a new session.
func (m *Manager) Session() *Session {
	return &Session{m: m, id: m.sessions.Add(1)}
}

// ID returns the session's engine-unique id.
func (s *Session) ID() int64 { return s.id }

// Options tunes one query execution (mirrors the top-level ExecOptions,
// minus the fixed MemBudget — memory comes from the broker).
type Options struct {
	Mode               reopt.Mode
	Params             map[string]types.Value
	Mu, Theta1, Theta2 float64
	HistFamily         histogram.Family
	SpliceSwitch       bool
	DisableIndexJoin   bool
	Seed               int64
	// NoCache bypasses the plan cache for this statement.
	NoCache bool
}

// Result is one query's outcome, extending the single-query result with
// the multi-query accounting.
type Result struct {
	Columns []string
	Rows    []types.Tuple
	Stats   *reopt.Stats
	// Cost is the simulated time charged to the shared meter during
	// this query's window. Under concurrency it includes overlapping
	// queries' charges; single-stream it matches DB.Exec.
	Cost float64
	// Query is the engine-unique tag ("s3_q17") the query ran under —
	// the same tag appears in broker traces and temp-table names.
	Query string
	// CacheHit reports whether the plan came from the plan cache.
	CacheHit bool
	// Broker is the query's traffic against the shared memory pool.
	Broker memmgr.LeaseStats
}

// Exec compiles (or fetches from the plan cache) and runs one SQL
// query, admitting its memory demands against the shared broker pool.
// The context cancels waiting for admission.
func (s *Session) Exec(ctx context.Context, src string, opts Options) (*Result, error) {
	m := s.m
	tag := fmt.Sprintf("s%d_q%d", s.id, m.queries.Add(1))

	m.schemaMu.RLock()
	defer m.schemaMu.RUnlock()

	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	res, hit, err := s.plan(stmt, opts)
	if err != nil {
		return nil, err
	}
	// Column names come from the pristine root: dispatch may wrap or
	// replace it (collector insertion, plan switches).
	sch := res.Root.Schema()
	cols := make([]string, sch.Len())
	for i, c := range sch.Columns {
		cols[i] = c.Name
	}

	min, max := memmgr.Demands(res.Root)
	lease, err := m.broker.Admit(ctx, tag, min, max)
	if err != nil {
		return nil, err
	}
	defer lease.Release()

	d := reopt.New(m.cat, s.dispatcherConfig(opts, lease, tag))
	params := plan.Params{}
	for k, v := range opts.Params {
		params[k] = v
	}
	ectx := &exec.Ctx{Pool: m.pool, Meter: m.meter, Params: params}
	before := m.meter.Snapshot()
	rows, st, err := d.RunPlan(res, params, ectx)
	if err != nil {
		return nil, err
	}
	return &Result{
		Columns:  cols,
		Rows:     rows,
		Stats:    st,
		Cost:     m.meter.Snapshot().Sub(before).Cost(),
		Query:    tag,
		CacheHit: hit,
		Broker:   lease.Stats(),
	}, nil
}

// plan resolves the statement to an executable optimizer result,
// consulting the plan cache. The optimizer runs under the manager's
// fixed budget so the cache key is stable across admissions; the
// broker's actual grant reshapes memory at allocation time, not plan
// shape.
func (s *Session) plan(stmt *sql.SelectStmt, opts Options) (*optimizer.Result, bool, error) {
	m := s.m
	var key string
	if m.cache != nil && !opts.NoCache {
		key = plancache.Key(stmt, s.fingerprint(opts))
		if res := m.cache.Get(key); res != nil {
			return res, true, nil
		}
	}
	q, err := optimizer.Analyze(m.cat, stmt)
	if err != nil {
		return nil, false, err
	}
	opt := &optimizer.Optimizer{
		Weights:          m.meter.Weights(),
		MemBudget:        m.cfg.MemBudget,
		DisableIndexJoin: opts.DisableIndexJoin,
		PoolPages:        float64(m.pool.Capacity()),
	}
	res, err := opt.Optimize(q)
	if err != nil {
		return nil, false, err
	}
	if key != "" {
		m.cache.Put(key, res)
	}
	return res, false, nil
}

// fingerprint names every option that changes what the optimizer would
// produce. Options that only steer execution (mode, thresholds, seed)
// are deliberately absent so differently-tuned sessions share plans.
func (s *Session) fingerprint(opts Options) string {
	return fmt.Sprintf("mem=%.0f|idxjoin=%t|pool=%d",
		s.m.cfg.MemBudget, !opts.DisableIndexJoin, s.m.pool.Capacity())
}

func (s *Session) dispatcherConfig(opts Options, lease *memmgr.Lease, tag string) reopt.Config {
	cfg := reopt.DefaultConfig(opts.Mode)
	cfg.Weights = s.m.meter.Weights()
	cfg.MemBudget = s.m.cfg.MemBudget
	cfg.Lease = lease
	cfg.QueryTag = tag
	if opts.Mu > 0 {
		cfg.Mu = opts.Mu
	}
	if opts.Theta1 > 0 {
		cfg.Theta1 = opts.Theta1
	}
	if opts.Theta2 > 0 {
		cfg.Theta2 = opts.Theta2
	}
	cfg.HistFamily = opts.HistFamily
	if opts.SpliceSwitch {
		cfg.Strategy = reopt.StrategySplice
	}
	cfg.DisableIndexJoin = opts.DisableIndexJoin
	cfg.Seed = opts.Seed
	cfg.PoolPages = float64(s.m.pool.Capacity())
	return cfg
}
