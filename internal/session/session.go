// Package session turns the single-query engine into a concurrent
// multi-query one. A Manager owns the shared resources — catalog,
// buffer pool, cost meter, the global memory Broker, and the plan cache
// — and hands out Sessions whose Exec calls run concurrently against
// them.
//
// Operator memory is the coordination point (the paper's §2.3 motivates
// mid-query re-allocation precisely by the multi-query setting): each
// query's plan-derived demands are admitted against one shared pool, a
// query whose minimum does not fit queues FIFO, and the re-optimizing
// dispatcher returns surplus grants mid-query so queued queries start
// before the donor finishes.
//
// Statements that change statistics (ANALYZE, index creation) quiesce
// the engine: they take the schema lock exclusively while every Exec
// holds it shared for the duration of its query.
package session

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/histogram"
	"repro/internal/memmgr"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/reopt"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/tenant"
	"repro/internal/types"
)

// maxPreemptResumes caps how many times one query may be suspended at
// a checkpoint before its lease opts out of victim selection.
const maxPreemptResumes = 8

// Config sizes the shared multi-query resources.
type Config struct {
	// MemPoolBytes is the broker's shared operator-memory pool
	// (default 64 MB). Queries queue when the sum of admitted
	// minimums would exceed it.
	MemPoolBytes float64
	// MemBudget is the per-query optimize-time budget (default 32 MB,
	// capped at the pool): the optimizer shapes plans assuming this
	// much; the broker grants what is actually free at admission.
	MemBudget float64
	// PlanCacheSize bounds the plan cache (default 256 entries;
	// negative disables caching).
	PlanCacheSize int
}

// Manager owns one engine instance shared by all sessions.
type Manager struct {
	cat    *catalog.Catalog
	pool   *storage.BufferPool
	meter  *storage.CostMeter
	broker *memmgr.Broker
	cache  *plancache.Cache
	cfg    Config

	// schemaMu quiesces DDL/ANALYZE against running queries: Exec
	// holds it shared for the whole query, Analyze takes it
	// exclusively. Coarse, but statistics refreshes are rare and the
	// alternative is per-table latching through every operator.
	schemaMu sync.RWMutex

	// running maps each in-flight query's tag to its cancel function
	// and (once admitted) its broker lease, so Cancel can abort it by
	// name (the POST /cancel path) and Preempt can request a
	// checkpoint suspension. Guarded by runningMu, not schemaMu:
	// cancels must land while queries hold the schema lock.
	runningMu sync.Mutex
	running   map[string]*runningQuery

	sessions atomic.Int64
	queries  atomic.Int64

	reg   *obs.Registry
	em    *obs.EngineMetrics
	start time.Time

	// prog tracks every in-flight query's live progress; engTrace is
	// the always-on engine-wide event ring every per-query trace tees
	// into (the mqr.queries/mqr.trace system tables read them).
	prog     *obs.ProgressRegistry
	engTrace *obs.Trace

	// log receives the slow-query warnings; slowQueryNanos is the
	// manager-wide threshold (0 disables; Options.SlowQueryThreshold
	// overrides per query).
	log            *slog.Logger
	slowQueryNanos atomic.Int64
}

// NewManager wraps an engine's shared state for concurrent use.
func NewManager(cat *catalog.Catalog, pool *storage.BufferPool, meter *storage.CostMeter, cfg Config) *Manager {
	if cfg.MemPoolBytes <= 0 {
		cfg.MemPoolBytes = 64 << 20
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 32 << 20
	}
	if cfg.MemBudget > cfg.MemPoolBytes {
		cfg.MemBudget = cfg.MemPoolBytes
	}
	m := &Manager{
		cat:      cat,
		pool:     pool,
		meter:    meter,
		broker:   memmgr.NewBroker(cfg.MemPoolBytes),
		cfg:      cfg,
		reg:      obs.NewRegistry(),
		running:  make(map[string]*runningQuery),
		start:    time.Now(),
		prog:     obs.NewProgressRegistry(),
		engTrace: obs.NewTrace(1024),
		log:      slog.Default(),
	}
	if cfg.PlanCacheSize >= 0 {
		size := cfg.PlanCacheSize
		if size == 0 {
			size = 256
		}
		m.cache = plancache.New(size, cat.SchemaVersion, cat.TableVersion)
	}
	m.em = obs.NewEngineMetrics(m.reg)
	m.registerResourceMetrics()
	m.registerIntrospection()
	return m
}

// SetLogger replaces the slow-query logger (defaults to slog.Default).
func (m *Manager) SetLogger(l *slog.Logger) {
	if l != nil {
		m.log = l
	}
}

// SetSlowQueryThreshold sets the manager-wide slow-query threshold.
// Queries (and DML statements) slower than d produce a structured
// warning on the manager's logger; 0 disables.
func (m *Manager) SetSlowQueryThreshold(d time.Duration) {
	m.slowQueryNanos.Store(int64(d))
}

// Progress exposes the live-progress registry (the /progress endpoint
// and tests read it).
func (m *Manager) Progress() *obs.ProgressRegistry { return m.prog }

// EngineTrace exposes the engine-wide trace ring behind mqr.trace.
func (m *Manager) EngineTrace() *obs.Trace { return m.engTrace }

// registerResourceMetrics exposes the broker pool and plan cache as
// function-backed gauges: the shared structures are already their own
// source of truth, so the registry reads them at scrape time instead of
// mirroring every mutation.
func (m *Manager) registerResourceMetrics() {
	m.reg.NewGaugeFunc("broker_pool_bytes",
		"Total size of the shared operator-memory pool.",
		func() float64 { return m.broker.Stats().PoolBytes })
	m.reg.NewGaugeFunc("broker_available_bytes",
		"Operator memory currently unreserved in the broker pool.",
		func() float64 { return m.broker.Stats().AvailBytes })
	m.reg.NewGaugeFunc("broker_queue_depth",
		"Queries queued for memory admission right now.",
		func() float64 { return float64(m.broker.Stats().Waiting) })
	m.reg.NewCounterFunc("broker_admitted_total",
		"Queries admitted to the memory broker.",
		func() float64 { return float64(m.broker.Stats().Admitted) })
	m.reg.NewCounterFunc("broker_waits_total",
		"Admissions that had to queue for memory.",
		func() float64 { return float64(m.broker.Stats().Waits) })
	m.reg.NewCounterFunc("broker_wait_seconds_total",
		"Total wall-clock time queries spent queued for memory.",
		func() float64 { return float64(m.broker.Stats().WaitNanos) / 1e9 })
	m.reg.NewCounterFunc("broker_returned_bytes_total",
		"Surplus operator memory returned to the pool mid-query.",
		func() float64 { return m.broker.Stats().Returned })
	m.reg.NewCounterFunc("broker_grown_bytes_total",
		"Operator memory added to running leases mid-query.",
		func() float64 { return m.broker.Stats().Grown })
	m.reg.NewCounterFunc("broker_rejected_total",
		"Admissions refused because a tenant's queue bound was reached.",
		func() float64 { return float64(m.broker.Stats().Rejected) })
	m.reg.NewCounterFunc("broker_preempts_total",
		"Checkpoint-preemption requests issued to running leases.",
		func() float64 { return float64(m.broker.Stats().Preempts) })
	m.reg.NewGaugeFuncVec("mqr_broker_queue_depth",
		"Queries queued for memory admission right now, by tenant.", "tenant",
		func() map[string]float64 {
			depths := m.broker.QueueDepths()
			out := make(map[string]float64, len(depths))
			for ten, n := range depths {
				out[ten] = float64(n)
			}
			return out
		})
	m.reg.NewGaugeFuncVec("mqr_broker_held_bytes",
		"Operator memory held by running leases right now, by tenant.", "tenant",
		func() map[string]float64 {
			out := map[string]float64{}
			for _, ts := range m.broker.TenantStats() {
				out[ts.Tenant] = ts.HeldBytes
			}
			return out
		})
	m.reg.NewCounterFunc("plancache_hits_total",
		"Plan-cache lookups served from the cache.",
		func() float64 { return float64(m.CacheStats().Hits) })
	m.reg.NewCounterFunc("plancache_misses_total",
		"Plan-cache lookups that had to optimize.",
		func() float64 { return float64(m.CacheStats().Misses) })
	m.reg.NewCounterFunc("plancache_invalidations_total",
		"Cached plans discarded because statistics changed.",
		func() float64 { return float64(m.CacheStats().Invalidations) })
	m.reg.NewCounterFunc("plancache_evictions_total",
		"Cached plans evicted by capacity.",
		func() float64 { return float64(m.CacheStats().Evictions) })
	m.reg.NewGaugeFunc("plancache_entries",
		"Plans resident in the cache right now.",
		func() float64 { return float64(m.CacheStats().Entries) })
}

// Broker exposes the shared memory broker (status endpoints, tests).
func (m *Manager) Broker() *memmgr.Broker { return m.broker }

// SetTenantConfig installs one tenant's service class (weight,
// priority, quota, queue bound) on the broker's registry.
func (m *Manager) SetTenantConfig(name string, cfg tenant.Config) {
	m.broker.Tenants().Set(name, cfg)
}

// TenantConfig returns one tenant's service class.
func (m *Manager) TenantConfig(name string) tenant.Config {
	return m.broker.Tenants().Get(name)
}

// TenantStats snapshots every tenant's scheduling state and traffic.
func (m *Manager) TenantStats() []memmgr.TenantStats {
	return m.broker.TenantStats()
}

// runningQuery is one in-flight query's control handles: the cancel
// function of its per-query context and, between admission and release,
// its broker lease.
type runningQuery struct {
	cancel context.CancelFunc
	lease  *memmgr.Lease
}

// Cancel aborts the running query with the given tag (Result.Query /
// the tags listed by Running). It returns whether a query by that tag
// was in flight; the query itself unwinds asynchronously and reports
// context.Canceled to its own caller.
func (m *Manager) Cancel(tag string) bool {
	m.runningMu.Lock()
	rq, ok := m.running[tag]
	m.runningMu.Unlock()
	if ok {
		rq.cancel()
	}
	return ok
}

// Preempt requests a checkpoint suspension of the running query with
// the given tag: its dispatcher aborts at the next re-optimization
// checkpoint, releases the brokered lease, and re-admits the query
// through the fair-share queue. Returns whether a request was newly
// made (false if the tag is unknown, the query is not yet admitted, or
// a request is already pending).
func (m *Manager) Preempt(tag string) bool {
	m.runningMu.Lock()
	rq, ok := m.running[tag]
	var lease *memmgr.Lease
	if ok {
		lease = rq.lease
	}
	m.runningMu.Unlock()
	if lease == nil {
		return false
	}
	return lease.RequestPreempt()
}

// Running lists the tags of queries currently in flight, sorted.
func (m *Manager) Running() []string {
	m.runningMu.Lock()
	defer m.runningMu.Unlock()
	tags := make([]string, 0, len(m.running))
	for t := range m.running {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

func (m *Manager) trackRunning(tag string, cancel context.CancelFunc) {
	m.runningMu.Lock()
	m.running[tag] = &runningQuery{cancel: cancel}
	m.runningMu.Unlock()
}

// setRunningLease publishes (or clears) the query's current broker
// lease so Preempt can find it. Called once per admission — a
// preempted query re-admits under a fresh lease.
func (m *Manager) setRunningLease(tag string, lease *memmgr.Lease) {
	m.runningMu.Lock()
	if rq, ok := m.running[tag]; ok {
		rq.lease = lease
	}
	m.runningMu.Unlock()
}

func (m *Manager) untrackRunning(tag string) {
	m.runningMu.Lock()
	delete(m.running, tag)
	m.runningMu.Unlock()
}

// CacheStats snapshots plan-cache traffic (zero value when disabled).
func (m *Manager) CacheStats() plancache.Stats {
	if m.cache == nil {
		return plancache.Stats{}
	}
	return m.cache.Stats()
}

// Catalog returns the shared catalog.
func (m *Manager) Catalog() *catalog.Catalog { return m.cat }

// Analyze refreshes a table's statistics under the exclusive schema
// lock, waiting for running queries to drain and blocking new ones
// until the histograms are consistent again. The statistics-version
// bump invalidates cached plans lazily.
func (m *Manager) Analyze(table string, family histogram.Family) error {
	m.schemaMu.Lock()
	defer m.schemaMu.Unlock()
	return m.cat.Analyze(table, catalog.AnalyzeOptions{Family: family})
}

// Session is one client's handle on the shared engine. Sessions are
// cheap; a session's Exec calls may themselves run concurrently (each
// query gets its own tag and lease). A session additionally carries at
// most one open explicit transaction (BEGIN … COMMIT/ROLLBACK); DML
// outside an explicit transaction autocommits.
type Session struct {
	m  *Manager
	id int64

	// tenant is the session's default service class; Options.Tenant
	// overrides it per query. Set it before the session's first Exec
	// (the server does so at /session creation) — it is not
	// synchronized against concurrent queries.
	tenant string

	// txnMu guards txn. Concurrent Execs on one session are legal for
	// reads; interleaving writes inside one explicit transaction from
	// multiple goroutines is the caller's own hazard, but the session
	// state itself stays consistent.
	txnMu sync.Mutex
	txn   *catalog.Txn
}

// Session opens a new session.
func (m *Manager) Session() *Session {
	return &Session{m: m, id: m.sessions.Add(1)}
}

// ID returns the session's engine-unique id.
func (s *Session) ID() int64 { return s.id }

// SetTenant installs the session's default tenant. Call before the
// session's first Exec.
func (s *Session) SetTenant(name string) { s.tenant = name }

// Tenant returns the session's default tenant name (canonicalized).
func (s *Session) Tenant() string { return tenant.Canonical(s.tenant) }

// Options tunes one query execution (mirrors the top-level ExecOptions,
// minus the fixed MemBudget — memory comes from the broker).
type Options struct {
	Mode               reopt.Mode
	Params             map[string]types.Value
	Mu, Theta1, Theta2 float64
	// Tenant names the service class the query's memory admission
	// queues under (weights, quotas, priorities are configured on the
	// broker's tenant registry). Empty defers to the session's default
	// tenant, then to tenant.Default.
	Tenant string
	HistFamily         histogram.Family
	SpliceSwitch       bool
	DisableIndexJoin   bool
	Seed               int64
	// NoCache bypasses the plan cache for this statement.
	NoCache bool
	// Explain runs the query under EXPLAIN ANALYZE instrumentation and
	// attaches the annotated plan rendering to the Result.
	Explain bool
	// Trace records the query's lifecycle events (collector reports,
	// checkpoint decisions, re-allocations, plan switches) into the
	// Result.
	Trace bool
	// Timeout bounds the query's wall-clock time, covering both the
	// wait for memory admission and execution; 0 means no deadline.
	// Expiry surfaces as context.DeadlineExceeded.
	Timeout time.Duration
	// NoProgress disables live-progress tracking for this query: no
	// ProgressRegistry entry, no per-operator counters, no mqr.queries
	// row. The overhead benchmark uses it as its baseline.
	NoProgress bool
	// SlowQueryThreshold overrides the manager-wide slow-query threshold
	// for this statement; 0 defers to the manager's setting.
	SlowQueryThreshold time.Duration
	// Parallel is the intra-query degree of parallelism: plan segments
	// between checkpoint boundaries run on this many worker goroutines
	// behind exchange operators. Values below 2 run serially.
	Parallel int
	// CheckpointHook, when non-nil, runs at the start of every
	// re-optimization checkpoint with the step index — a deterministic
	// interleaving seam the fuzz harness uses to commit concurrent
	// writes at an exact decision point.
	CheckpointHook func(step int)
}

// Result is one query's outcome, extending the single-query result with
// the multi-query accounting.
type Result struct {
	Columns []string
	Rows    []types.Tuple
	Stats   *reopt.Stats
	// Cost is the simulated time charged to the shared meter during
	// this query's window. Under concurrency it includes overlapping
	// queries' charges; single-stream it matches DB.Exec.
	Cost float64
	// WallCost subtracts the overlap credited by this query's parallel
	// regions (only each gathered region's slowest tributary counts
	// toward elapsed time). Equal to Cost for serial execution.
	WallCost float64
	// Query is the engine-unique tag ("s3_q17") the query ran under —
	// the same tag appears in broker traces and temp-table names.
	Query string
	// Tenant is the service class the query's admission ran under.
	Tenant string
	// Preempted counts checkpoint preemptions the query survived: each
	// one released its lease at a re-optimization checkpoint, re-queued
	// it for admission, and re-executed under the same snapshot.
	Preempted int
	// RowsAffected is the number of rows a DML statement wrote (for
	// COMMIT, the whole transaction's count). Zero for queries.
	RowsAffected int64
	// CacheHit reports whether the plan came from the plan cache.
	CacheHit bool
	// Broker is the query's traffic against the shared memory pool.
	Broker memmgr.LeaseStats
	// Plan is the EXPLAIN ANALYZE rendering (Options.Explain only).
	Plan string
	// Trace is the query's event log (Options.Trace only).
	Trace []obs.Event
	// TraceDropped counts events the query's trace ring evicted — when
	// nonzero, Trace (and the mqr.trace tee) is missing its oldest
	// entries.
	TraceDropped int
}

// Exec compiles (or fetches from the plan cache) and runs one SQL
// query, admitting its memory demands against the shared broker pool.
// The context cancels both the wait for admission and execution itself;
// Options.Timeout adds a deadline on top of it.
//
// Exec is also the per-query fault boundary: a panic anywhere in the
// query (a mistyped Value accessor in an expression, an operator bug)
// is recovered here and surfaced as an ordinary error. The panic
// unwinds through exec's deferred cleanup first, so temp tables,
// leases, and the schema lock are all released and the session stays
// usable.
func (s *Session) Exec(ctx context.Context, src string, opts Options) (r *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			r, err = nil, fmt.Errorf("query panic: %v", p)
		}
		if err != nil {
			s.m.em.Queries.Inc()
			s.m.em.QueryErrors.Inc()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.m.em.QueriesCancelled.Inc()
			}
		}
	}()
	return s.exec(ctx, src, opts)
}

func (s *Session) exec(ctx context.Context, src string, opts Options) (*Result, error) {
	m := s.m
	tag := fmt.Sprintf("s%d_q%d", s.id, m.queries.Add(1))

	// One context governs the whole query — admission wait, operator
	// cancellation checks, dispatcher checkpoints. It layers the
	// caller's context, the optional deadline, and the Cancel-by-tag
	// registry.
	if ctx == nil {
		ctx = context.Background()
	}
	var cancel context.CancelFunc
	if opts.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	m.trackRunning(tag, cancel)
	defer m.untrackRunning(tag)

	m.schemaMu.RLock()
	defer m.schemaMu.RUnlock()

	stmt, err := sql.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *sql.SelectStmt:
		return s.execSelect(ctx, st, opts, tag)
	case *sql.InsertStmt, *sql.UpdateStmt, *sql.DeleteStmt:
		return s.execDML(ctx, st, opts, tag)
	case *sql.BeginStmt:
		return s.beginTxn(tag)
	case *sql.CommitStmt:
		return s.commitTxn(tag)
	case *sql.RollbackStmt:
		return s.rollbackTxn(tag)
	}
	return nil, fmt.Errorf("session: unsupported statement %T", stmt)
}

// execSelect runs one query under the broker's memory admission and the
// re-optimizing dispatcher. Reads execute under a snapshot: the open
// explicit transaction's if one exists (so a transaction reads its own
// uncommitted writes), otherwise a fresh read snapshot registered with
// the transaction manager so concurrent committers stay invisible and
// the garbage collector keeps every version the query can still see.
func (s *Session) execSelect(ctx context.Context, stmt *sql.SelectStmt, opts Options, tag string) (*Result, error) {
	m := s.m
	ten := tenant.Canonical(opts.Tenant)
	if opts.Tenant == "" {
		ten = s.Tenant()
	}
	start := time.Now()
	var qp *obs.Progress
	defer func() {
		m.em.QueryDuration.Observe(time.Since(start).Seconds())
		s.noteSlow(tag, stmt.SQL(), time.Since(start), opts, qp)
	}()
	res, hit, err := s.plan(stmt, opts)
	if err != nil {
		return nil, err
	}
	// Column names come from the pristine root: dispatch may wrap or
	// replace it (collector insertion, plan switches).
	sch := res.Root.Schema()
	cols := make([]string, sch.Len())
	for i, c := range sch.Columns {
		cols[i] = c.Name
	}

	// The per-query trace is always on and tees into the engine-wide
	// ring behind mqr.trace; Result.Trace is attached only on request.
	tr := obs.NewTrace(obs.DefaultTraceCap)
	tr.SetQuery(tag)
	tr.SetForward(m.engTrace)
	var az *obs.Analyze
	if opts.Explain {
		az = obs.NewAnalyze()
	}
	if !opts.NoProgress {
		qp = m.prog.StartTenant(tag, s.id, stmt.SQL(), ten)
		defer m.prog.Finish(qp)
	}
	params := plan.Params{}
	for k, v := range opts.Params {
		params[k] = v
	}
	// The snapshot is acquired once, before the first admission, and
	// survives checkpoint preemption: a preempted-then-resumed query
	// re-reads the same versions, so its answer is byte-identical to an
	// uninterrupted run no matter what commits while it was parked.
	s.txnMu.Lock()
	tx := s.txn
	s.txnMu.Unlock()
	var snap *storage.TxnSnapshot
	if tx != nil {
		snap = tx.Snapshot()
	} else {
		rd := m.cat.BeginRead()
		defer rd.End()
		snap = rd.Snapshot()
	}
	before := m.meter.Snapshot()
	// The progress cost closure reads the shared meter, so under
	// concurrency it includes overlapping queries' charges — same caveat
	// as Result.Cost, and harmless for the fraction/score signals.
	qp.SetCostFn(func() float64 { return m.meter.Snapshot().Sub(before).Cost() })

	// Backstop for every exit path (error, cancel, panic unwinding to
	// Exec's recover): the current attempt's temp tables are dropped
	// before its lease is released.
	var lease *memmgr.Lease
	var d *reopt.Dispatcher
	defer func() {
		if d != nil {
			d.Cleanup()
		}
		if lease != nil {
			lease.Release()
		}
	}()

	preempted := 0
	var rows []types.Tuple
	var st *reopt.Stats
	var mu float64
	for {
		min, max := memmgr.Demands(res.Root)
		waitStart := time.Now()
		lease, err = m.broker.AdmitTenant(ctx, ten, tag, min, max)
		wait := time.Since(waitStart).Seconds()
		m.em.BrokerWait.Observe(wait)
		m.em.BrokerWaitTenant.Observe(ten, wait)
		if err != nil {
			return nil, err
		}
		if preempted >= maxPreemptResumes {
			// A query can only be parked so many times; past the cap
			// its lease stops being a preemption victim so it is
			// guaranteed to finish.
			lease.MarkNonPreemptible()
		}
		m.setRunningLease(tag, lease)
		cfg := s.dispatcherConfig(opts, lease, tag)
		cfg.Trace = tr
		mu = cfg.Mu
		d = reopt.New(m.cat, cfg)
		ectx := &exec.Ctx{Context: ctx, Pool: m.pool, Meter: m.meter, Params: params, Trace: tr, Analyze: az, Snap: snap, Prog: qp}
		rows, st, err = d.RunPlan(res, params, ectx)
		if err == nil {
			break
		}
		if !errors.Is(err, memmgr.ErrPreempted) {
			return nil, err
		}
		// Checkpoint preemption: the dispatcher stopped at a segment
		// boundary because a higher-priority waiter claimed this
		// query's memory. Drop everything the attempt built — temp
		// tables first, then the whole lease (zero residue, fully
		// repaid broker) — then park in the fair-share admission queue
		// by re-admitting, and re-execute from a fresh plan under the
		// same snapshot.
		preempted++
		d.Cleanup()
		d = nil
		m.setRunningLease(tag, nil)
		lease.Release()
		lease = nil
		m.em.Preemptions.Inc()
		qp.RecordPreempt()
		if tr.Enabled() {
			tr.Emit("preempt", "suspended at checkpoint, re-queueing for admission",
				"tenant", ten, "resume", preempted)
		}
		res, _, err = s.plan(stmt, opts)
		if err != nil {
			return nil, err
		}
	}
	delta := m.meter.Snapshot().Sub(before)
	cost := delta.Cost()
	statCost := float64(delta.StatCPU) * delta.Weights.StatCPU
	m.em.RecordQuery(cost, statCost, mu,
		st.CollectorsInserted, st.Observations, st.MemReallocs,
		st.ReoptConsidered, st.PlanSwitches)
	out := &Result{
		Columns:      cols,
		Rows:         rows,
		Stats:        st,
		Cost:         cost,
		WallCost:     math.Max(0, cost-st.WallSavedCost),
		Query:        tag,
		Tenant:       ten,
		Preempted:    preempted,
		CacheHit:     hit,
		Broker:       lease.Stats(),
		TraceDropped: tr.Dropped(),
	}
	if d := tr.Dropped(); d > 0 {
		m.em.TraceDropped.Add(float64(d))
	}
	if az != nil {
		out.Plan = az.Render()
	}
	if opts.Trace {
		out.Trace = tr.Events()
	}
	return out, nil
}

// noteSlow emits the structured slow-query warning when the statement
// exceeded the effective threshold (per-query override, else the
// manager-wide setting; 0 disables).
func (s *Session) noteSlow(tag, sqlText string, dur time.Duration, opts Options, qp *obs.Progress) {
	thr := opts.SlowQueryThreshold
	if thr <= 0 {
		thr = time.Duration(s.m.slowQueryNanos.Load())
	}
	if thr <= 0 || dur < thr {
		return
	}
	s.m.log.Warn("slow query",
		"query", tag,
		"sql", sqlText,
		"duration", dur,
		"switches", qp.Switches(),
		"spill_bytes", qp.SpillBytes(),
	)
}

// execDML plans and runs one write statement. Inside an explicit
// transaction the writes join it; otherwise the statement autocommits.
// Any error aborts the governing transaction — MVCC undo is physical
// and statement-level rollback would need per-statement savepoints —
// so an explicit transaction that hits an error (including a
// first-writer-wins conflict) is rolled back and closed.
func (s *Session) execDML(ctx context.Context, stmt sql.Stmt, opts Options, tag string) (*Result, error) {
	m := s.m
	start := time.Now()
	defer func() {
		m.em.QueryDuration.Observe(time.Since(start).Seconds())
		s.noteSlow(tag, stmt.SQL(), time.Since(start), opts, nil)
	}()
	node, err := plan.PlanDML(m.cat, stmt)
	if err != nil {
		return nil, err
	}
	// DML traces are always on (small ring) and tee into the engine-wide
	// ring, same as queries; Result.Trace is attached only on request.
	tr := obs.NewTrace(dmlTraceCap)
	tr.SetQuery(tag)
	tr.SetForward(m.engTrace)
	s.txnMu.Lock()
	tx := s.txn
	s.txnMu.Unlock()
	own := tx == nil
	if own {
		tx = m.cat.BeginTxn()
	}
	params := plan.Params{}
	for k, v := range opts.Params {
		params[k] = v
	}
	ectx := &exec.Ctx{Context: ctx, Pool: m.pool, Meter: m.meter, Params: params, Trace: tr, Txn: tx, Snap: tx.Snapshot()}
	n, err := exec.RunDML(node, ectx)
	if err != nil {
		tx.Abort()
		if !own {
			s.clearTxn(tx)
		}
		m.em.TxnsAborted.Inc()
		if errors.Is(err, storage.ErrWriteConflict) {
			m.em.WriteConflicts.Inc()
		}
		return nil, err
	}
	if own {
		rows := tx.Rows()
		tx.Commit()
		m.em.TxnsCommitted.Inc()
		m.em.RowsWritten.Add(float64(rows))
		if tr.Enabled() {
			tr.Emit("commit", "autocommit",
				"txn", int64(tx.ID()), "rows", rows, "stats_version", m.cat.StatsVersion())
		}
	}
	m.em.Queries.Inc()
	out := &Result{RowsAffected: n, Query: tag, TraceDropped: tr.Dropped()}
	if d := tr.Dropped(); d > 0 {
		m.em.TraceDropped.Add(float64(d))
	}
	if opts.Trace {
		out.Trace = tr.Events()
	}
	return out, nil
}

// dmlTraceCap sizes the per-statement DML trace ring — writes emit a
// handful of events, so a small ring keeps the always-on tee cheap.
const dmlTraceCap = 64

// beginTxn opens the session's explicit transaction.
func (s *Session) beginTxn(tag string) (*Result, error) {
	s.txnMu.Lock()
	defer s.txnMu.Unlock()
	if s.txn != nil {
		return nil, errors.New("session: transaction already open")
	}
	s.txn = s.m.cat.BeginTxn()
	return &Result{Query: tag}, nil
}

// commitTxn commits the session's explicit transaction. RowsAffected
// reports the transaction's total row versions written.
func (s *Session) commitTxn(tag string) (*Result, error) {
	s.txnMu.Lock()
	tx := s.txn
	s.txn = nil
	s.txnMu.Unlock()
	if tx == nil {
		return nil, errors.New("session: no transaction open")
	}
	rows := tx.Rows()
	tx.Commit()
	s.m.em.TxnsCommitted.Inc()
	s.m.em.RowsWritten.Add(float64(rows))
	return &Result{Query: tag, RowsAffected: rows}, nil
}

// rollbackTxn aborts the session's explicit transaction, undoing its
// writes physically (inserted versions deleted, delete stamps cleared).
func (s *Session) rollbackTxn(tag string) (*Result, error) {
	s.txnMu.Lock()
	tx := s.txn
	s.txn = nil
	s.txnMu.Unlock()
	if tx == nil {
		return nil, errors.New("session: no transaction open")
	}
	err := tx.Abort()
	s.m.em.TxnsAborted.Inc()
	return &Result{Query: tag}, err
}

// clearTxn closes the session's explicit-transaction slot if it still
// holds tx (a concurrent Exec may have already replaced it).
func (s *Session) clearTxn(tx *catalog.Txn) {
	s.txnMu.Lock()
	if s.txn == tx {
		s.txn = nil
	}
	s.txnMu.Unlock()
}

// Registry exposes the manager's metrics registry (the /metrics
// endpoint scrapes it).
func (m *Manager) Registry() *obs.Registry { return m.reg }

// Sessions returns how many sessions have been opened.
func (m *Manager) Sessions() int64 { return m.sessions.Load() }

// QueriesRun returns how many queries have been tagged for execution.
func (m *Manager) QueriesRun() int64 { return m.queries.Load() }

// Uptime reports time since the manager was created.
func (m *Manager) Uptime() time.Duration { return time.Since(m.start) }

// plan resolves the statement to an executable optimizer result,
// consulting the plan cache. The optimizer runs under the manager's
// fixed budget so the cache key is stable across admissions; the
// broker's actual grant reshapes memory at allocation time, not plan
// shape.
func (s *Session) plan(stmt *sql.SelectStmt, opts Options) (*optimizer.Result, bool, error) {
	m := s.m
	var key string
	if m.cache != nil && !opts.NoCache {
		key = plancache.Key(stmt, s.fingerprint(opts))
		if res := m.cache.Get(key); res != nil {
			return res, true, nil
		}
	}
	q, err := optimizer.Analyze(m.cat, stmt)
	if err != nil {
		return nil, false, err
	}
	opt := &optimizer.Optimizer{
		Weights:          m.meter.Weights(),
		MemBudget:        m.cfg.MemBudget,
		DisableIndexJoin: opts.DisableIndexJoin,
		PoolPages:        float64(m.pool.Capacity()),
	}
	res, err := opt.Optimize(q)
	if err != nil {
		return nil, false, err
	}
	if key != "" {
		m.cache.Put(key, res)
	}
	return res, false, nil
}

// fingerprint names every option that changes what the optimizer would
// produce. Options that only steer execution (mode, thresholds, seed)
// are deliberately absent so differently-tuned sessions share plans.
// Degree of parallelism is included even though Parallelize runs at
// dispatch time: exchange wrappers are part of the executed plan shape,
// and a future optimizer that costs them per degree must not share
// entries across degrees.
func (s *Session) fingerprint(opts Options) string {
	return fmt.Sprintf("mem=%.0f|idxjoin=%t|pool=%d|par=%d",
		s.m.cfg.MemBudget, !opts.DisableIndexJoin, s.m.pool.Capacity(), normDegree(opts.Parallel))
}

// normDegree collapses every serial setting to 1 so "unset", 0, and 1
// share one cache entry.
func normDegree(d int) int {
	if d < 2 {
		return 1
	}
	return d
}

func (s *Session) dispatcherConfig(opts Options, lease *memmgr.Lease, tag string) reopt.Config {
	cfg := reopt.DefaultConfig(opts.Mode)
	cfg.Weights = s.m.meter.Weights()
	cfg.MemBudget = s.m.cfg.MemBudget
	cfg.Lease = lease
	cfg.QueryTag = tag
	if opts.Mu > 0 {
		cfg.Mu = opts.Mu
	}
	if opts.Theta1 > 0 {
		cfg.Theta1 = opts.Theta1
	}
	if opts.Theta2 > 0 {
		cfg.Theta2 = opts.Theta2
	}
	cfg.HistFamily = opts.HistFamily
	if opts.SpliceSwitch {
		cfg.Strategy = reopt.StrategySplice
	}
	cfg.DisableIndexJoin = opts.DisableIndexJoin
	cfg.Seed = opts.Seed
	cfg.PoolPages = float64(s.m.pool.Capacity())
	cfg.Degree = opts.Parallel
	cfg.CheckpointHook = opts.CheckpointHook
	return cfg
}
