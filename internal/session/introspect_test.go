package session

import (
	"context"
	"testing"
	"time"

	"repro/internal/reopt"
	"repro/internal/types"
)

// col returns the index of a named column in a result, failing the test
// if the query did not produce it.
func col(t *testing.T, res *Result, name string) int {
	t.Helper()
	for i, c := range res.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("result has no column %q (columns %v)", name, res.Columns)
	return -1
}

// poll runs an introspection query without registering itself in the
// progress registry, so tests observing mqr.queries do not see their
// own probes.
func poll(t *testing.T, s *Session, src string) *Result {
	t.Helper()
	res, err := s.Exec(context.Background(), src, Options{NoProgress: true})
	if err != nil {
		t.Fatalf("introspection query %q: %v", src, err)
	}
	return res
}

func TestSystemTablesQueryable(t *testing.T) {
	db := newTestDB(1024)
	db.addTable(t, "a", 2000, 100, 10)
	db.addTable(t, "b", 100, 10, 5)
	m := db.manager(Config{})
	s := m.Session()

	res, err := s.Exec(context.Background(), joinQuery, Options{
		Mode:   reopt.ModeFull,
		Params: map[string]types.Value{"cut": types.NewFloat(500)},
	})
	if err != nil {
		t.Fatal(err)
	}

	// mqr.queries lists the finished query from the recent ring with its
	// terminal state frozen.
	qs := poll(t, m.Session(), "select * from mqr.queries")
	iq, is, ifr, ic := col(t, qs, "query"), col(t, qs, "state"), col(t, qs, "fraction"), col(t, qs, "cost")
	var found bool
	for _, row := range qs.Rows {
		if row[iq].Str() != res.Query {
			continue
		}
		found = true
		if st := row[is].Str(); st != "done" {
			t.Errorf("finished query state = %q, want done", st)
		}
		if f := row[ifr].Float(); f != 1 {
			t.Errorf("finished query fraction = %v, want 1", f)
		}
		if c := row[ic].Float(); c <= 0 {
			t.Errorf("finished query cost = %v, want > 0", c)
		}
	}
	if !found {
		t.Fatalf("mqr.queries has no row for %s: %v", res.Query, qs.Rows)
	}

	// A query that does not opt out of progress tracking sees itself
	// running in mqr.queries.
	self, err := m.Session().Exec(context.Background(),
		"select query, state from mqr.queries", Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sawSelf bool
	for _, row := range self.Rows {
		if row[0].Str() == self.Query && row[1].Str() == "running" {
			sawSelf = true
		}
	}
	if !sawSelf {
		t.Errorf("introspection query %s does not see itself running: %v", self.Query, self.Rows)
	}

	// mqr.operators exposes the finished query's plan with live row
	// counts; at least one operator produced output.
	ops := poll(t, m.Session(), "select query, label, rows, state from mqr.operators")
	var opRows, produced int
	for _, row := range ops.Rows {
		if row[0].Str() != res.Query {
			continue
		}
		opRows++
		if row[1].Str() == "" {
			t.Error("operator row with empty label")
		}
		if row[2].Int() > 0 {
			produced++
		}
		if st := row[3].Str(); st != "done" {
			t.Errorf("operator state = %q after query finished", st)
		}
	}
	if opRows == 0 || produced == 0 {
		t.Fatalf("mqr.operators: %d rows for %s, %d with output", opRows, res.Query, produced)
	}

	// mqr.metrics carries the whole registry, including the live gauges.
	mets := poll(t, m.Session(), "select name, type, value from mqr.metrics")
	want := map[string]bool{
		"reopt_live_suboptimality": false,
		"mqr_live_queries":         false,
		"mqr_queries_total":        false,
	}
	for _, row := range mets.Rows {
		if _, ok := want[row[0].Str()]; ok {
			want[row[0].Str()] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("mqr.metrics missing %s", name)
		}
	}

	// mqr.trace carries the always-on tee, stamped with the query tag.
	trc := poll(t, m.Session(), "select seq, query, kind, msg, dropped from mqr.trace")
	var traced bool
	for _, row := range trc.Rows {
		if row[1].Str() == res.Query {
			traced = true
		}
		if d := row[4].Int(); d < 0 {
			t.Errorf("negative dropped count %d", d)
		}
	}
	if !traced {
		t.Errorf("mqr.trace has no events for %s", res.Query)
	}

	// mqr.txns reflects an open write transaction from another session.
	writer := m.Session()
	if _, err := writer.Exec(context.Background(), "begin", Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Exec(context.Background(),
		"insert into a (a_pk, a_fk, a_grp, a_val) values (100001, 1, 1, 1.0)", Options{}); err != nil {
		t.Fatal(err)
	}
	txns := poll(t, m.Session(), "select txn, kind, writes from mqr.txns")
	var sawWriter bool
	for _, row := range txns.Rows {
		if row[1].Str() == "write" && row[2].Int() >= 1 {
			sawWriter = true
		}
	}
	if !sawWriter {
		t.Errorf("mqr.txns missing the open write transaction: %v", txns.Rows)
	}
	if _, err := writer.Exec(context.Background(), "rollback", Options{}); err != nil {
		t.Fatal(err)
	}

	// System tables are read-only: DML against them must fail.
	if _, err := m.Session().Exec(context.Background(),
		"insert into mqr.metrics (name, type, value) values ('x', 'gauge', 1.0)", Options{}); err == nil {
		t.Fatal("insert into a system table succeeded")
	}

	// The plan cache works over virtual tables, and a cached plan still
	// reads fresh provider state.
	first := poll(t, m.Session(), "select query from mqr.queries")
	second := poll(t, m.Session(), "select query from mqr.queries")
	if !second.CacheHit {
		t.Error("second mqr.queries scan missed the plan cache")
	}
	if len(first.Rows) == 0 || len(second.Rows) == 0 {
		t.Errorf("cached virtual scan returned no rows: %d then %d", len(first.Rows), len(second.Rows))
	}
}

// TestLiveProgressVisibleFromSecondSession is the acceptance test for
// the live path: while session A is paused at its checkpoints, session
// B's SELECT over mqr.queries sees A's in-flight query with a nonzero,
// monotonically advancing fraction, and mqr.operators shows A's
// operators producing rows.
func TestLiveProgressVisibleFromSecondSession(t *testing.T) {
	db := newTestDB(2048)
	db.addTable(t, "a", 5000, 500, 10)
	db.addTable(t, "b", 500, 50, 5)
	db.addTable(t, "c", 50, 5, 5)
	m := db.manager(Config{})

	ckpt := make(chan int)
	release := make(chan struct{})
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := m.Session().Exec(context.Background(),
			`select a_grp, count(*) as cnt from a, b, c
			 where a.a_fk = b.b_pk and b.b_fk = c.c_pk group by a_grp`,
			Options{
				Mode:    reopt.ModeFull,
				NoCache: true,
				CheckpointHook: func(step int) {
					ckpt <- step
					<-release
				},
			})
		done <- outcome{res, err}
	}()

	// First checkpoint: capture A's tag while it is the only running
	// query, then observe it from a second session.
	select {
	case <-ckpt:
	case <-time.After(30 * time.Second):
		t.Fatal("query never reached a checkpoint")
	}
	running := m.Running()
	if len(running) != 1 {
		t.Fatalf("running queries = %v, want exactly one", running)
	}
	tagA := running[0]

	b := m.Session()
	fractionOf := func() (float64, string, bool) {
		res := poll(t, b, "select query, state, fraction from mqr.queries")
		for _, row := range res.Rows {
			if row[0].Str() == tagA {
				return row[2].Float(), row[1].Str(), true
			}
		}
		return 0, "", false
	}

	f1, state, ok := fractionOf()
	if !ok {
		t.Fatalf("second session does not see %s in mqr.queries", tagA)
	}
	if state != "running" {
		t.Errorf("state = %q, want running", state)
	}
	if f1 <= 0 {
		t.Errorf("fraction at first checkpoint = %v, want > 0", f1)
	}
	if f1 >= 1 {
		t.Errorf("fraction at first checkpoint = %v, want < 1", f1)
	}

	// A's operators are visible mid-flight with nonzero row counts.
	ops := poll(t, b, "select query, rows from mqr.operators")
	var live int
	for _, row := range ops.Rows {
		if row[0].Str() == tagA && row[1].Int() > 0 {
			live++
		}
	}
	if live == 0 {
		t.Errorf("no operator of %s has produced rows at the first checkpoint", tagA)
	}

	// Drive the query through its remaining checkpoints, checking the
	// fraction never regresses and advances at least once before the
	// final (fraction = 1) observation.
	prev, advanced := f1, false
	release <- struct{}{}
	for {
		select {
		case <-ckpt:
			f, _, ok := fractionOf()
			if ok {
				if f < prev {
					t.Fatalf("fraction regressed: %v after %v", f, prev)
				}
				if f > prev {
					advanced = true
				}
				prev = f
			}
			release <- struct{}{}
		case out := <-done:
			if out.err != nil {
				t.Fatal(out.err)
			}
			f, state, ok := fractionOf()
			if !ok {
				t.Fatal("finished query fell out of mqr.queries")
			}
			if state != "done" || f != 1 {
				t.Fatalf("final state %q fraction %v, want done/1", state, f)
			}
			if f > prev {
				advanced = true
			}
			if !advanced {
				t.Fatalf("fraction never advanced past %v", f1)
			}
			return
		case <-time.After(30 * time.Second):
			t.Fatal("query stalled between checkpoints")
		}
	}
}

// TestScoreRisesBeforeForcedSwitch pins the continuous suboptimality
// signal: on the Figure 6 mis-estimated join, the score (and the
// reopt_live_suboptimality gauge) exceeds 1 at a checkpoint *before*
// the forced-θ thresholds have switched the plan.
func TestScoreRisesBeforeForcedSwitch(t *testing.T) {
	db := newTestDB(8192)
	db.addTable(t, "rel1", 1350, 4000, 10)
	db.addTable(t, "rel2", 4000, 60000, 5)
	db.addTable(t, "rel3", 60000, 5, 5)
	if err := db.cat.CreateIndex("rel3", "rel3_pk"); err != nil {
		t.Fatal(err)
	}
	m := db.manager(Config{})

	type sample struct {
		score    float64
		gauge    float64
		switches int64
	}
	var samples []sample
	hook := func(step int) {
		tags := m.Running()
		if len(tags) != 1 {
			return
		}
		p := m.Progress().Get(tags[0])
		if p == nil {
			return
		}
		var gauge float64
		for _, smp := range m.Registry().Samples() {
			if smp.Name == "reopt_live_suboptimality" {
				gauge = smp.Value
			}
		}
		samples = append(samples, sample{score: p.Score(), gauge: gauge, switches: p.Switches()})
	}

	res, err := m.Session().Exec(context.Background(),
		`select rel1_grp, count(*) as cnt from rel1, rel2, rel3
		 where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
		 and rel1_val < :v1 and rel1_grp < :v2 group by rel1_grp`,
		Options{
			Mode:    reopt.ModePlanOnly,
			NoCache: true,
			Params: map[string]types.Value{
				"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9),
			},
			// Forced thresholds: θ₁ enormous keeps Eq.1 in its
			// inaccuracy band, θ₂ near zero accepts any cheaper plan.
			Theta1:         1e9,
			Theta2:         1e-9,
			CheckpointHook: hook,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanSwitches == 0 {
		t.Fatal("forced thresholds produced no plan switch")
	}
	if len(samples) == 0 {
		t.Fatal("checkpoint hook never fired")
	}

	// The signal must have risen before the first switch was recorded:
	// some pre-switch checkpoint saw score > 1, and the gauge agreed.
	var rose bool
	for _, s := range samples {
		if s.switches == 0 && s.score > 1 {
			rose = true
			if s.gauge <= 1 {
				t.Errorf("score %v but gauge %v at a pre-switch checkpoint", s.score, s.gauge)
			}
		}
	}
	if !rose {
		t.Fatalf("suboptimality score never exceeded 1 before the switch: %+v", samples)
	}

	// The finished query's snapshot keeps the history.
	p := m.Progress().Get(res.Query)
	if p == nil {
		t.Fatal("finished query missing from progress registry")
	}
	snap := p.Snapshot(false)
	if snap.Checkpoints < 1 || snap.Switches < 1 {
		t.Fatalf("snapshot checkpoints=%d switches=%d, want >=1 each", snap.Checkpoints, snap.Switches)
	}
	if snap.Score <= 1 {
		t.Errorf("final score = %v, want > 1 on a 9x mis-estimate", snap.Score)
	}
}
