package session

import (
	"context"
	"testing"
	"time"

	"repro/internal/reopt"
	"repro/internal/tpcd"
)

// TestMonitoringOverheadBound pins the cost of live-progress monitoring
// on the TPC-D smoke query: real wall time with the per-operator
// counters on must stay within 5% of the same query with them off.
// Wall-clock bounds are noisy in CI neighbors, so each attempt takes
// the min over interleaved reps and the test passes on the best of a
// few attempts — a genuine regression fails all of them.
func TestMonitoringOverheadBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts wall-clock ratios")
	}
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}

	_, m := newTPCDManager(t, Config{})
	q, err := tpcd.ByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	sess := m.Session()
	run := func(noProgress bool) time.Duration {
		start := time.Now()
		if _, err := sess.Exec(context.Background(), q.SQL, Options{
			Mode:       reopt.ModeFull,
			NoProgress: noProgress,
		}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	// Warm the plan cache and buffer pool for both arms.
	run(true)
	run(false)

	const (
		attempts = 4
		reps     = 5
		bound    = 1.05
	)
	best := 0.0
	for a := 0; a < attempts; a++ {
		base, prog := time.Duration(1<<62), time.Duration(1<<62)
		for r := 0; r < reps; r++ {
			if b := run(true); b < base {
				base = b
			}
			if p := run(false); p < prog {
				prog = p
			}
		}
		ratio := float64(prog) / float64(base)
		if best == 0 || ratio < best {
			best = ratio
		}
		if ratio <= bound {
			t.Logf("attempt %d: ratio %.3f (base %v, progress %v)", a, ratio, base, prog)
			return
		}
	}
	t.Fatalf("monitoring overhead exceeds %.0f%% in every attempt: best ratio %.3f",
		(bound-1)*100, best)
}
