package memmgr

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBrokerNeverOversubscribes hammers the broker with concurrent
// admissions and verifies the sum of outstanding grants never exceeds
// the pool (tracked at every admission under the broker's own trace
// hook, so no transition is missed).
func TestBrokerNeverOversubscribes(t *testing.T) {
	const pool = 1 << 20
	b := NewBroker(pool)
	var outstanding float64
	var worst float64
	b.SetTrace(func(e Event) {
		switch e.Kind {
		case "admit", "grow":
			outstanding += e.Bytes
		case "return", "release":
			outstanding -= e.Bytes
		}
		if outstanding > worst {
			worst = outstanding
		}
	})

	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			min := float64(64 << 10)
			want := float64((i%8 + 1) * 128 << 10)
			l, err := b.Admit(context.Background(), "q", min, want)
			if err != nil {
				t.Error(err)
				return
			}
			l.Grow(32 << 10)
			l.Return(16 << 10)
			l.Release()
		}(i)
	}
	wg.Wait()

	if worst > pool {
		t.Errorf("pool oversubscribed: peak %v bytes granted against %v", worst, float64(pool))
	}
	st := b.Stats()
	if st.AvailBytes != pool {
		t.Errorf("pool did not drain back: avail %v of %v", st.AvailBytes, float64(pool))
	}
	if st.Admitted != 64 {
		t.Errorf("admitted %d queries, want 64", st.Admitted)
	}
}

// TestBrokerReturnWakesWaiter verifies the §2.3 flow: a queued query is
// admitted the moment a running query's mid-query re-allocation returns
// surplus — before the donor releases.
func TestBrokerReturnWakesWaiter(t *testing.T) {
	b := NewBroker(1 << 20)
	var events []Event
	b.SetTrace(func(e Event) { events = append(events, e) })

	big, err := b.Admit(context.Background(), "big", 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	admitted := make(chan *Lease, 1)
	go func() {
		l, err := b.Admit(context.Background(), "small", 256<<10, 256<<10)
		if err != nil {
			t.Error(err)
		}
		admitted <- l
	}()
	waitFor(t, func() bool { return b.Stats().Waiting == 1 })

	// A surplus smaller than the waiter's minimum must not admit it.
	big.Return(64 << 10)
	select {
	case <-admitted:
		t.Fatal("waiter admitted on an insufficient return")
	case <-time.After(20 * time.Millisecond):
	}

	// Returning enough memory admits the waiter mid-query.
	big.Return(512 << 10)
	small := <-admitted
	if small.Held() != 256<<10 {
		t.Errorf("waiter granted %v, want %v", small.Held(), float64(256<<10))
	}
	if !small.Waited() {
		t.Error("waiter lease does not record the wait")
	}

	// Event order: small admitted after big's return, before big's release.
	big.Release()
	small.Release()
	idx := func(kind, query string) int {
		for i, e := range events {
			if e.Kind == kind && e.Query == query {
				return i
			}
		}
		return -1
	}
	if !(idx("return", "big") < idx("admit", "small") && idx("admit", "small") < idx("release", "big")) {
		t.Errorf("bad admission order: %v", events)
	}

	st := big.Stats()
	if st.Returns != 2 || st.ReturnedBytes != (64<<10)+(512<<10) {
		t.Errorf("donor stats wrong: %+v", st)
	}
}

// TestBrokerFIFONoStarvation is the fairness regression test: a large
// query queued behind the pool must not be starved by a stream of small
// queries that would individually fit — FIFO admission holds the line.
func TestBrokerFIFONoStarvation(t *testing.T) {
	b := NewBroker(1 << 20)
	first, err := b.Admit(context.Background(), "first", 768<<10, 768<<10)
	if err != nil {
		t.Fatal(err)
	}

	bigDone := make(chan struct{})
	go func() {
		l, err := b.Admit(context.Background(), "big", 1<<20, 1<<20)
		if err != nil {
			t.Error(err)
		} else {
			l.Release()
		}
		close(bigDone)
	}()
	waitFor(t, func() bool { return b.Stats().Waiting == 1 })

	// Small queries that would fit in the free 256 KiB must queue behind
	// the big one, and an incumbent's Grow must not overtake it either.
	var smallAdmitted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, err := b.Admit(context.Background(), "small", 64<<10, 64<<10)
			if err != nil {
				t.Error(err)
				return
			}
			smallAdmitted.Add(1)
			l.Release()
		}()
	}
	waitFor(t, func() bool { return b.Stats().Waiting == 9 })
	if got := smallAdmitted.Load(); got != 0 {
		t.Fatalf("%d small queries overtook the queued big query", got)
	}
	if got := first.Grow(64 << 10); got != 0 {
		t.Fatalf("incumbent grew by %v past a queued query", got)
	}

	select {
	case <-bigDone:
		t.Fatal("big query admitted while first still holds the pool")
	default:
	}
	first.Release()
	<-bigDone
	wg.Wait()
	if got := smallAdmitted.Load(); got != 8 {
		t.Errorf("only %d of 8 small queries admitted", got)
	}
}

// TestBrokerAdmitCancel verifies a cancelled wait leaves the queue and
// pool intact.
func TestBrokerAdmitCancel(t *testing.T) {
	b := NewBroker(1 << 20)
	l, err := b.Admit(context.Background(), "holder", 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.Admit(ctx, "cancelled", 1024, 1024)
		errc <- err
	}()
	waitFor(t, func() bool { return b.Stats().Waiting == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled Admit returned no error")
	}
	if b.Stats().Waiting != 0 {
		t.Error("cancelled waiter still queued")
	}
	l.Release()
	if st := b.Stats(); st.AvailBytes != st.PoolBytes {
		t.Errorf("pool leaked: %v of %v available", st.AvailBytes, st.PoolBytes)
	}
}

// TestBrokerMinCappedAtPool: a query whose plan minimum exceeds the
// whole pool must still run (over-committing like the single-query
// manager) rather than deadlock.
func TestBrokerMinCappedAtPool(t *testing.T) {
	b := NewBroker(1 << 20)
	l, err := b.Admit(context.Background(), "huge", 8<<20, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if l.Held() != 1<<20 {
		t.Errorf("granted %v, want the whole pool", l.Held())
	}
	l.Release()
	if st := b.Stats(); math.Abs(st.AvailBytes-st.PoolBytes) > 0.5 {
		t.Errorf("pool corrupted: %v of %v", st.AvailBytes, st.PoolBytes)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
