package memmgr

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// admitAsync runs Admit on its own goroutine and returns channels for
// the result.
func admitAsync(b *Broker, ctx context.Context, query string, min, want float64) (<-chan *Lease, <-chan error) {
	lc := make(chan *Lease, 1)
	ec := make(chan error, 1)
	go func() {
		l, err := b.Admit(ctx, query, min, want)
		lc <- l
		ec <- err
	}()
	return lc, ec
}

func waitQueued(t *testing.T, b *Broker, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().Waiting < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters (at %d)", n, b.Stats().Waiting)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelledHeadDoesNotStallQueue is the FIFO-under-cancellation
// regression: A holds 50 of 100, B queues needing 80, C queues behind B
// needing 40. Cancelling B must admit C promptly — with no Return or
// Release happening to re-trigger the queue scan.
func TestCancelledHeadDoesNotStallQueue(t *testing.T) {
	b := NewBroker(100)
	a, err := b.Admit(context.Background(), "A", 50, 50)
	if err != nil {
		t.Fatal(err)
	}

	bctx, cancelB := context.WithCancel(context.Background())
	_, berr := admitAsync(b, bctx, "B", 80, 80)
	waitQueued(t, b, 1)
	cl, cerr := admitAsync(b, context.Background(), "C", 40, 40)
	waitQueued(t, b, 2)

	cancelB()
	if err := <-berr; !errors.Is(err, context.Canceled) {
		t.Fatalf("B's Admit = %v, want context.Canceled", err)
	}
	select {
	case l := <-cl:
		if l == nil {
			t.Fatalf("C admission failed: %v", <-cerr)
		}
		if l.Held() < 40 {
			t.Fatalf("C admitted with %v bytes, want >= 40", l.Held())
		}
		l.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("C still queued after head-of-queue cancel: broker stalled")
	}

	a.Release()
	if st := b.Stats(); st.AvailBytes != st.PoolBytes {
		t.Fatalf("pool not restored: avail %v of %v", st.AvailBytes, st.PoolBytes)
	}
	if st := b.Stats(); st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", st.Cancelled)
	}
}

// TestCancelMidQueuePreservesFIFO cancels a middle waiter and checks the
// order of the remaining admissions is unchanged.
func TestCancelMidQueuePreservesFIFO(t *testing.T) {
	b := NewBroker(100)
	var order []string
	var mu sync.Mutex
	b.SetTrace(func(e Event) {
		if e.Kind == "admit" {
			mu.Lock()
			order = append(order, e.Query)
			mu.Unlock()
		}
	})
	a, err := b.Admit(context.Background(), "A", 100, 100)
	if err != nil {
		t.Fatal(err)
	}

	l1, _ := admitAsync(b, context.Background(), "B", 30, 30)
	waitQueued(t, b, 1)
	cctx, cancelC := context.WithCancel(context.Background())
	_, cerr := admitAsync(b, cctx, "C", 30, 30)
	waitQueued(t, b, 2)
	l3, _ := admitAsync(b, context.Background(), "D", 30, 30)
	waitQueued(t, b, 3)

	cancelC()
	if err := <-cerr; !errors.Is(err, context.Canceled) {
		t.Fatalf("C's Admit = %v", err)
	}
	a.Release()
	lb, ld := <-l1, <-l3
	lb.Release()
	ld.Release()

	mu.Lock()
	defer mu.Unlock()
	want := []string{"A", "B", "D"}
	if len(order) != len(want) {
		t.Fatalf("admit order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admit order %v, want %v", order, want)
		}
	}
}

// TestSurrenderedLeaseNoDoubleCredit races a cancel against admission:
// whichever way it lands, Return/Release on the query's side must not
// credit the pool twice.
func TestSurrenderedLeaseNoDoubleCredit(t *testing.T) {
	for i := 0; i < 200; i++ {
		b := NewBroker(100)
		a, err := b.Admit(context.Background(), "A", 100, 100)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		lc, ec := admitAsync(b, ctx, "B", 50, 50)
		waitQueued(t, b, 1)
		// Race: the release (which admits B) against B's cancel.
		relDone := make(chan struct{})
		go func() { a.Release(); close(relDone) }()
		go cancel()
		l, admitErr := <-lc, <-ec
		<-relDone
		if l != nil {
			// Admitted: exercise the post-cancel Return/Release path.
			l.Return(10)
			l.Release()
			l.Release()
			l.Return(10)
		} else if !errors.Is(admitErr, context.Canceled) {
			t.Fatalf("iter %d: Admit = %v", i, admitErr)
		}
		if st := b.Stats(); st.AvailBytes != st.PoolBytes {
			t.Fatalf("iter %d: pool %v, avail %v after cleanup (double credit or leak)",
				i, st.PoolBytes, st.AvailBytes)
		}
	}
}

// TestGrowAfterReleaseIsNoOp ensures a released (or surrendered) lease
// cannot take bytes from the pool.
func TestGrowAfterReleaseIsNoOp(t *testing.T) {
	b := NewBroker(100)
	l, err := b.Admit(context.Background(), "A", 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
	if got := l.Grow(20); got != 0 {
		t.Fatalf("Grow after Release = %v, want 0", got)
	}
	if got := l.Return(20); got != 0 {
		t.Fatalf("Return after Release = %v, want 0", got)
	}
	if st := b.Stats(); st.AvailBytes != st.PoolBytes {
		t.Fatalf("pool corrupted: avail %v of %v", st.AvailBytes, st.PoolBytes)
	}
}

// admitTenantCtxAsync is admitAsync with a tenant attached.
func admitTenantCtxAsync(b *Broker, ctx context.Context, ten, query string, min, want float64) (<-chan *Lease, <-chan error) {
	lc := make(chan *Lease, 1)
	ec := make(chan error, 1)
	go func() {
		l, err := b.AdmitTenant(ctx, ten, query, min, want)
		lc <- l
		ec <- err
	}()
	return lc, ec
}

// TestCancelQueuedUnderFairShare is the fair-share variant of the
// cancelled-head regression: with two tenant queues backed up behind a
// full pool, cancelling tenant one's head (which needs more than will
// ever be free) must stall neither tenant one's own later waiter nor
// tenant two's — and no Release or Return happens to re-trigger the
// scan besides the blocker's.
func TestCancelQueuedUnderFairShare(t *testing.T) {
	b := NewBroker(100)
	blocker, err := b.Admit(context.Background(), "blocker", 40, 40)
	if err != nil {
		t.Fatal(err)
	}

	bctx, cancelB := context.WithCancel(context.Background())
	_, berr := admitTenantCtxAsync(b, bctx, "one", "B", 90, 90)
	waitQueued(t, b, 1)
	dl, derr := admitTenantCtxAsync(b, context.Background(), "one", "D", 30, 30)
	waitQueued(t, b, 2)
	cl, cerr := admitTenantCtxAsync(b, context.Background(), "two", "C", 40, 40)
	waitQueued(t, b, 3)

	// B is the fair-share head and needs 90 > 60 free: head-blocking
	// (the generalized no-starvation rule) holds D and C behind it even
	// though both fit. Cancelling B must promptly admit D — tenant one's
	// own later waiter — with no Release or Return to re-run the scan.
	cancelB()
	if err := <-berr; !errors.Is(err, context.Canceled) {
		t.Fatalf("B's Admit = %v, want context.Canceled", err)
	}
	select {
	case l := <-dl:
		if l == nil {
			t.Fatalf("D admission failed: %v", <-derr)
		}
		defer l.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("tenant one's later waiter stalled behind its cancelled head")
	}

	// C (40) now head-blocks on the 30 still free; the blocker's release
	// must let tenant two through — the cancel left its queue intact.
	blocker.Release()
	select {
	case l := <-cl:
		if l == nil {
			t.Fatalf("C admission failed: %v", <-cerr)
		}
		l.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("tenant two stalled after tenant one's head was cancelled")
	}
	if st := b.Stats(); st.Cancelled != 1 {
		t.Fatalf("Stats.Cancelled = %d, want 1", st.Cancelled)
	}
}

// TestCancelWholeTenantQueue cancels every queued waiter of one tenant
// at once and checks the other tenant's backlog drains completely and
// the pool balances.
func TestCancelWholeTenantQueue(t *testing.T) {
	b := NewBroker(100)
	blocker, err := b.Admit(context.Background(), "blocker", 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	gctx, cancelGone := context.WithCancel(context.Background())
	var goneErrs []<-chan error
	for i := 0; i < 4; i++ {
		_, ec := admitTenantCtxAsync(b, gctx, "gone", "g", 25, 25)
		goneErrs = append(goneErrs, ec)
		waitQueued(t, b, i+1)
	}
	var stay []<-chan *Lease
	for i := 0; i < 4; i++ {
		lc, _ := admitTenantCtxAsync(b, context.Background(), "stay", "s", 25, 25)
		stay = append(stay, lc)
		waitQueued(t, b, 5+i)
	}

	cancelGone()
	for _, ec := range goneErrs {
		if err := <-ec; !errors.Is(err, context.Canceled) {
			t.Fatalf("gone waiter = %v, want context.Canceled", err)
		}
	}
	blocker.Release()
	for i, lc := range stay {
		select {
		case l := <-lc:
			if l == nil {
				t.Fatalf("stay waiter %d failed", i)
			}
			l.Release()
		case <-time.After(5 * time.Second):
			t.Fatalf("stay waiter %d never admitted after mass cancel", i)
		}
	}
	if st := b.Stats(); st.AvailBytes != st.PoolBytes || st.Waiting != 0 {
		t.Fatalf("pool not restored after mass cancel: %+v", st)
	}
}
