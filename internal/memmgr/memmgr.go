// Package memmgr implements the Memory Manager: it turns the optimizer's
// per-operator memory demand estimates (MemMin, MemMax annotations) into
// memory grants under a per-query budget, exactly as in the paper's
// Figure 3 walk-through — the first memory-consuming operator in
// execution order is topped up toward its maximum first, later operators
// fall back to their minimums, and any leftover flows to whoever still
// wants it.
//
// Dynamic re-allocation (§2.3) is the same algorithm re-run over the
// operators that have not yet started executing, with their demands
// recomputed from improved estimates and the budget reduced by memory
// still held by running operators.
package memmgr

import (
	"repro/internal/plan"
)

// Manager allocates operator memory under a fixed per-query budget in
// bytes.
type Manager struct {
	Budget float64
}

// New returns a manager with the given byte budget.
func New(budget float64) *Manager { return &Manager{Budget: budget} }

// Consumers returns the memory-consuming nodes of a plan in execution
// order. For the engine's left-deep plans, post-order traversal visits
// operators in the order their memory is first needed: the deepest
// join's build phase runs first.
func Consumers(root plan.Node) []plan.Node {
	var out []plan.Node
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		for _, c := range n.Children() {
			walk(c)
		}
		if n.Est().MemMax > 0 {
			out = append(out, n)
		}
	}
	walk(root)
	return out
}

// Allocate assigns a memory grant to every memory-consuming node of the
// plan. Every operator receives at least its minimum (over-committing
// the budget if the minimums alone exceed it, as real systems must);
// remaining budget tops operators up toward their maximums in execution
// order.
func (m *Manager) Allocate(root plan.Node) {
	m.AllocateOps(Consumers(root), m.Budget)
}

// AllocateOps runs the allocation policy over an explicit operator list
// (already in execution order) under the given budget. The re-optimizer
// calls this directly for the not-yet-started suffix of a plan.
func (m *Manager) AllocateOps(ops []plan.Node, budget float64) {
	remaining := budget
	for _, op := range ops {
		e := op.Est()
		grant := e.MemMin
		if grant > e.MemMax {
			grant = e.MemMax
		}
		e.Grant = grant
		remaining -= grant
	}
	if remaining <= 0 {
		return
	}
	for _, op := range ops {
		e := op.Est()
		want := e.MemMax - e.Grant
		if want <= 0 {
			continue
		}
		if e.MemStep {
			// All-or-nothing: partial memory does not save the
			// operator's extra pass, so don't waste budget on it.
			if want > remaining {
				continue
			}
		} else if want > remaining {
			want = remaining
		}
		e.Grant += want
		remaining -= want
		if remaining <= 0 {
			return
		}
	}
}

// SplitGrant divides one operator's broker-backed memory grant across
// the workers of a parallel region, returning each worker's fraction of
// the whole (a multiplier for the grant, not bytes). Hash partitioning
// sends each worker ~1/N of the build tuples, so an even split preserves
// the all-or-nothing MemStep semantics: if the serial operator fit in
// its grant, every worker's partition fits in its share.
func SplitGrant(workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	return 1 / float64(workers)
}

// HeldBy sums the grants of the given nodes — the memory unavailable for
// re-allocation while those operators are still running.
func HeldBy(ops []plan.Node) float64 {
	total := 0.0
	for _, op := range ops {
		total += op.Est().Grant
	}
	return total
}
