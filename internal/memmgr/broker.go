package memmgr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/plan"
	"repro/internal/tenant"
)

// Broker generalizes the Memory Manager's fixed per-query budget to a
// shared pool serving many concurrent queries — the multi-query
// environment that motivates the paper's §2.3: memory a query frees (or
// turns out not to need once run-time statistics arrive) should flow to
// other queries, not sit idle against a private budget.
//
// Admission control is weighted fair-share across tenants and FIFO
// within a tenant. Each tenant accumulates virtual service time
// (bytes granted divided by its weight); when memory frees up, the
// queued head from the highest priority band with the least virtual
// time runs next. If that head's minimum does not fit, no later waiter
// overtakes it (so a large query cannot starve behind a stream of
// small ones — the single-tenant FIFO guarantee, generalized). A
// tenant blocked only by its own memory quota is skipped, since its
// own releases are what will unblock it.
//
// Mid-query, the re-optimizing dispatcher returns surplus grants
// through Lease.Return — which is what lets a queued query start before
// the donor finishes — and may opportunistically Grow a lease when
// improved estimates raise its demands. A queued high-priority query
// additionally requests preemption of running lower-priority leases;
// the dispatcher honors the request at its next re-optimization
// checkpoint by aborting with ErrPreempted, releasing the lease, and
// re-admitting the query from the back of its tenant's queue.
type Broker struct {
	mu      sync.Mutex
	pool    float64
	avail   float64
	tenants *tenant.Registry
	states  map[string]*tenantState
	waiting int // total queued waiters across tenants
	leases  int // outstanding (unreleased) leases across tenants

	admitted  int64
	waits     int64
	waitNanos int64 // total wall-clock time queries spent queued
	cancelled int64 // waiters that gave up before admission
	rejected  int64 // admissions refused by a tenant's queue bound
	preempts  int64 // preemption requests issued to running leases
	returned  float64
	grown     float64

	// trace, when set, receives one Event per state transition,
	// synchronously and in a total order (emitted under the broker
	// lock). Tests use it to assert admission orderings; it must not
	// call back into the broker.
	trace func(Event)
}

// ErrQueueFull rejects an admission whose tenant already has MaxQueued
// waiters parked. The server maps it to HTTP 429.
var ErrQueueFull = errors.New("memmgr: tenant admission queue full")

// ErrPreempted aborts a running query whose lease was claimed by a
// higher-priority waiter. The dispatcher surfaces it only at
// re-optimization checkpoints; the session releases the lease and
// re-admits the query.
var ErrPreempted = errors.New("memmgr: lease preempted at checkpoint")

// tenantState is one tenant's scheduling state: its FIFO waiter queue,
// its virtual service time, and its held-memory and traffic accounting.
type tenantState struct {
	name    string
	waiters []*waiter // FIFO; head is the oldest
	// vtime is the tenant's virtual service: bytes granted divided by
	// its weight at grant time. Fair-share admission picks the least
	// vtime, so a heavier tenant's vtime advances slower and it is
	// scheduled proportionally more often.
	vtime float64
	held  float64             // bytes currently held by the tenant's leases
	run   map[*Lease]struct{} // outstanding leases, for preemption victim scans

	admitted  int64
	waits     int64
	waitNanos int64
	cancelled int64
	rejected  int64
	preempted int64 // leases of this tenant that received a preempt request
}

// Event is one broker state transition, for tracing and tests.
type Event struct {
	// Kind is "admit", "queue", "cancel", "return", "grow", "release",
	// "reject", or "preempt".
	Kind string
	// Query is the query tag the event concerns.
	Query string
	// Tenant is the tenant the query runs under.
	Tenant string
	// Bytes is the amount admitted, returned, grown, released, or (for
	// preempt) held by the victim.
	Bytes float64
}

func (e Event) String() string {
	return fmt.Sprintf("%s %s %.0f", e.Kind, e.Query, e.Bytes)
}

type waiter struct {
	tenant   string
	priority int // band captured at enqueue
	query    string
	min      float64
	want     float64
	done     chan *Lease // receives the lease when admitted; closed on cancel
}

// NewBroker returns a broker over a pool of the given size in bytes,
// with its own tenant registry.
func NewBroker(pool float64) *Broker {
	if pool <= 0 {
		pool = 32 << 20
	}
	return &Broker{
		pool:    pool,
		avail:   pool,
		tenants: tenant.NewRegistry(),
		states:  map[string]*tenantState{},
	}
}

// Tenants exposes the broker's tenant registry (the server installs
// weights, priorities, quotas, and queue bounds through it).
func (b *Broker) Tenants() *tenant.Registry { return b.tenants }

// SetTrace installs an event hook. Install before any Admit; the hook
// runs under the broker lock and must not call back into the broker.
func (b *Broker) SetTrace(fn func(Event)) {
	b.mu.Lock()
	b.trace = fn
	b.mu.Unlock()
}

func (b *Broker) emit(kind, query, ten string, bytes float64) {
	if b.trace != nil {
		b.trace(Event{Kind: kind, Query: query, Tenant: ten, Bytes: bytes})
	}
}

// state returns (creating if needed) a tenant's scheduling state.
// Caller holds b.mu.
func (b *Broker) state(name string) *tenantState {
	ts, ok := b.states[name]
	if !ok {
		ts = &tenantState{name: name, run: map[*Lease]struct{}{}}
		b.states[name] = ts
	}
	return ts
}

// Lease is one query's reservation against the broker pool. It is not
// safe for concurrent use by multiple goroutines — a lease belongs to
// the one dispatcher executing its query. The exception is the preempt
// flag, which the broker sets from other goroutines and the dispatcher
// polls at checkpoints.
type Lease struct {
	b        *Broker
	tenant   string
	priority int
	query    string
	held     float64

	admitted float64
	returns  int
	returned float64
	growths  int
	grown    float64
	waited   bool
	released bool

	// preempt is the cross-goroutine suspension request; exempt
	// (guarded by b.mu) opts the lease out of victim selection once a
	// query has been preempted too many times.
	preempt atomic.Bool
	exempt  bool
}

// Admit blocks until at least min bytes are free, then reserves up to
// want bytes and returns the lease, under the default tenant. A min
// larger than the whole pool is capped at the pool — the query would
// otherwise never run; it over-commits exactly as the single-query
// Memory Manager does. The context cancels waiting.
func (b *Broker) Admit(ctx context.Context, query string, min, want float64) (*Lease, error) {
	return b.AdmitTenant(ctx, "", query, min, want)
}

// AdmitTenant is Admit under a named tenant: the admission queues
// fair-share against other tenants (FIFO within the tenant), counts
// against the tenant's memory quota, and fails fast with ErrQueueFull
// when the tenant's queue bound is reached.
func (b *Broker) AdmitTenant(ctx context.Context, ten, query string, min, want float64) (*Lease, error) {
	ten = tenant.Canonical(ten)
	cfg := b.tenants.Ensure(ten)
	min = math.Min(min, b.pool)
	want = math.Max(math.Min(want, b.pool), min)

	b.mu.Lock()
	ts := b.state(ten)
	if b.waiting == 0 && b.leases == 0 {
		// Quiescent pool: nobody is accumulating service, so clear the
		// virtual clocks. Without this, a tenant that was busy while the
		// others idled would re-enter permanently behind their frozen
		// (lower) virtual times.
		for _, s := range b.states {
			s.vtime = 0
		}
	}
	if b.waiting == 0 && b.avail >= min && b.quotaOKLocked(ts, cfg, min) {
		l := b.admitLocked(ts, query, min, want, false)
		b.mu.Unlock()
		return l, nil
	}
	if cfg.MaxQueued > 0 && len(ts.waiters) >= cfg.MaxQueued {
		ts.rejected++
		b.rejected++
		b.emit("reject", query, ten, min)
		b.mu.Unlock()
		return nil, fmt.Errorf("tenant %q has %d queued admissions: %w", ten, cfg.MaxQueued, ErrQueueFull)
	}
	if len(ts.waiters) == 0 {
		// A tenant rejoining the active set must not spend credit
		// banked while idle: clamp its virtual time up to the least
		// among currently active tenants.
		ts.vtime = math.Max(ts.vtime, b.minActiveVTimeLocked(ts))
	}
	w := &waiter{tenant: ten, priority: cfg.Priority, query: query, min: min, want: want, done: make(chan *Lease, 1)}
	ts.waiters = append(ts.waiters, w)
	b.waiting++
	b.waits++
	ts.waits++
	b.emit("queue", query, ten, min)
	// The new waiter may itself be the fair-share pick and fit the free
	// pool right now — e.g. every earlier head is blocked by its own
	// tenant quota, which no Release or Return is guaranteed to clear.
	// Re-run the wake scan; head-blocking still protects earlier picks.
	b.wakeLocked()
	if len(w.done) == 0 {
		b.maybePreemptLocked(w)
	}
	b.mu.Unlock()

	start := time.Now()
	select {
	case l := <-w.done:
		b.mu.Lock()
		d := int64(time.Since(start))
		b.waitNanos += d
		ts.waitNanos += d
		b.mu.Unlock()
		return l, nil
	case <-ctx.Done():
		b.mu.Lock()
		for i, q := range ts.waiters {
			if q == w {
				ts.waiters = append(ts.waiters[:i], ts.waiters[i+1:]...)
				b.waiting--
				b.cancelled++
				ts.cancelled++
				b.emit("cancel", query, ten, min)
				// The cancelled waiter may have been the head holding
				// everyone else up: a later waiter with a smaller
				// minimum could fit the free pool right now, and no
				// Return/Release is coming to re-check the queue.
				b.wakeLocked()
				b.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		b.mu.Unlock()
		// Already admitted between ctx.Done and acquiring the lock:
		// surrender the lease.
		if l := <-w.done; l != nil {
			l.Release()
		}
		return nil, ctx.Err()
	}
}

// quotaOKLocked reports whether granting min more bytes keeps the
// tenant inside its quota. A tenant holding nothing is always allowed
// one query (over-commit, mirroring the pool-wide min cap). Caller
// holds b.mu.
func (b *Broker) quotaOKLocked(ts *tenantState, cfg tenant.Config, min float64) bool {
	if cfg.QuotaBytes <= 0 {
		return true
	}
	return ts.held == 0 || ts.held+min <= cfg.QuotaBytes
}

// minActiveVTimeLocked returns the least virtual time among tenants
// with queued or running work, excluding self; +0 if none. Caller
// holds b.mu.
func (b *Broker) minActiveVTimeLocked(self *tenantState) float64 {
	min := math.Inf(1)
	for _, ts := range b.states {
		if ts == self {
			continue
		}
		if len(ts.waiters) > 0 || len(ts.run) > 0 {
			min = math.Min(min, ts.vtime)
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// admitLocked reserves memory for one query. Caller holds b.mu.
func (b *Broker) admitLocked(ts *tenantState, query string, min, want float64, waited bool) *Lease {
	cfg := b.tenants.Get(ts.name)
	grant := math.Min(want, b.avail)
	if cfg.QuotaBytes > 0 {
		// The quota caps the grant but never below the plan minimum:
		// a query admitted under over-commit still has to run.
		grant = math.Min(grant, math.Max(cfg.QuotaBytes-ts.held, min))
	}
	if grant < min {
		grant = min // over-commit: min was capped at pool size
	}
	b.avail -= grant
	b.admitted++
	ts.admitted++
	ts.held += grant
	ts.vtime += grant / cfg.Weight
	l := &Lease{b: b, tenant: ts.name, priority: cfg.Priority, query: query, held: grant, admitted: grant, waited: waited}
	ts.run[l] = struct{}{}
	b.leases++
	b.emit("admit", query, ts.name, grant)
	return l
}

// nextWaiterLocked picks the waiter fair-share admission would run
// next: the queue head from the highest priority band with the least
// virtual time (ties broken by tenant name for determinism), skipping
// tenants blocked only by their own quota. Caller holds b.mu.
func (b *Broker) nextWaiterLocked() (*waiter, *tenantState) {
	names := make([]string, 0, len(b.states))
	for n, ts := range b.states {
		if len(ts.waiters) > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var best *tenantState
	for _, n := range names {
		ts := b.states[n]
		w := ts.waiters[0]
		cfg := b.tenants.Get(n)
		if !b.quotaOKLocked(ts, cfg, w.min) {
			// Quota-blocked: the tenant's own queue stalls (FIFO within
			// a tenant) but other tenants must not — its own releases
			// re-run this scan.
			continue
		}
		if best == nil {
			best = ts
			continue
		}
		bw := best.waiters[0]
		if w.priority > bw.priority || (w.priority == bw.priority && ts.vtime < best.vtime) {
			best = ts
		}
	}
	if best == nil {
		return nil, nil
	}
	return best.waiters[0], best
}

// wakeLocked admits queued queries while the fair-share head's minimum
// fits the free pool. Caller holds b.mu. Head-blocking: if the chosen
// head does not fit, no other waiter is considered — the generalized
// FIFO no-starvation guarantee.
func (b *Broker) wakeLocked() {
	for {
		w, ts := b.nextWaiterLocked()
		if w == nil || b.avail < w.min {
			return
		}
		ts.waiters = ts.waiters[1:]
		b.waiting--
		w.done <- b.admitLocked(ts, w.query, w.min, w.want, true)
	}
}

// maybePreemptLocked requests checkpoint preemption of running
// lower-priority leases when a newly queued waiter from a higher band
// cannot be admitted from the free pool alone. Victims are chosen from
// the lowest band first, largest lease first, until the reclaimable
// bytes cover the waiter's minimum. The request is advisory: the
// victim's dispatcher honors it at its next re-optimization checkpoint.
// Caller holds b.mu.
func (b *Broker) maybePreemptLocked(w *waiter) {
	need := w.min - b.avail
	if need <= 0 {
		return
	}
	var victims []*Lease
	for _, ts := range b.states {
		for l := range ts.run {
			if l.priority < w.priority && !l.exempt && !l.preempt.Load() {
				victims = append(victims, l)
			}
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].priority != victims[j].priority {
			return victims[i].priority < victims[j].priority
		}
		if victims[i].held != victims[j].held {
			return victims[i].held > victims[j].held
		}
		return victims[i].query < victims[j].query
	})
	for _, v := range victims {
		if need <= 0 {
			return
		}
		v.preempt.Store(true)
		b.preempts++
		b.states[v.tenant].preempted++
		b.emit("preempt", v.query, v.tenant, v.held)
		need -= v.held
	}
}

// Preempt requests checkpoint preemption of one lease directly (the
// admin/test path; fair-share admission issues requests itself). It
// reports whether the request was newly made.
func (l *Lease) RequestPreempt() bool {
	b := l.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if l.released || l.exempt || l.preempt.Load() {
		return false
	}
	l.preempt.Store(true)
	b.preempts++
	b.state(l.tenant).preempted++
	b.emit("preempt", l.query, l.tenant, l.held)
	return true
}

// PreemptRequested reports whether the broker asked this lease to
// suspend. The dispatcher polls it at re-optimization checkpoints.
func (l *Lease) PreemptRequested() bool { return l.preempt.Load() }

// MarkNonPreemptible opts the lease out of future victim selection —
// the session sets it on a query's final re-admission so repeated
// preemption cannot livelock a low-priority query forever.
func (l *Lease) MarkNonPreemptible() {
	b := l.b
	b.mu.Lock()
	l.exempt = true
	b.mu.Unlock()
}

// Held returns the lease's current reservation in bytes.
func (l *Lease) Held() float64 { return l.held }

// Query returns the query tag the lease was admitted under.
func (l *Lease) Query() string { return l.query }

// Tenant returns the tenant the lease was admitted under.
func (l *Lease) Tenant() string { return l.tenant }

// Waited reports whether admission had to queue.
func (l *Lease) Waited() bool { return l.waited }

// Return gives surplus bytes back to the pool mid-query, waking queued
// queries whose minimums now fit. Returns the amount actually returned
// (clamped to the held reservation).
func (l *Lease) Return(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	b := l.b
	b.mu.Lock()
	// released is guarded by b.mu: a surrendered lease (cancelled Admit)
	// is released on the broker's goroutine while the query's goroutine
	// may still be unwinding through deferred Return/Release calls.
	if l.released {
		b.mu.Unlock()
		return 0
	}
	bytes = math.Min(bytes, l.held)
	l.held -= bytes
	l.returns++
	l.returned += bytes
	b.avail += bytes
	b.returned += bytes
	b.state(l.tenant).held -= bytes
	b.emit("return", l.query, l.tenant, bytes)
	b.wakeLocked()
	b.mu.Unlock()
	return bytes
}

// Grow tries to reserve up to bytes more from the free pool without
// blocking and without overtaking queued queries or the tenant's quota.
// Returns the amount actually obtained.
func (l *Lease) Grow(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	b := l.b
	b.mu.Lock()
	if l.released {
		b.mu.Unlock()
		return 0
	}
	if b.waiting > 0 {
		// Queued queries have priority over incumbents' top-ups; a
		// growing query taking the last free bytes could starve them.
		b.mu.Unlock()
		return 0
	}
	ts := b.state(l.tenant)
	cfg := b.tenants.Get(l.tenant)
	got := math.Min(bytes, b.avail)
	if cfg.QuotaBytes > 0 {
		got = math.Min(got, math.Max(0, cfg.QuotaBytes-ts.held))
	}
	if got > 0 {
		b.avail -= got
		l.held += got
		l.growths++
		l.grown += got
		b.grown += got
		ts.held += got
		ts.vtime += got / cfg.Weight
		b.emit("grow", l.query, l.tenant, got)
	}
	b.mu.Unlock()
	return got
}

// Release returns the whole reservation on query completion. Safe to
// call more than once.
func (l *Lease) Release() {
	b := l.b
	b.mu.Lock()
	if l.released {
		b.mu.Unlock()
		return
	}
	l.released = true
	b.avail += l.held
	ts := b.state(l.tenant)
	ts.held -= l.held
	delete(ts.run, l)
	b.leases--
	b.emit("release", l.query, l.tenant, l.held)
	l.held = 0
	b.wakeLocked()
	b.mu.Unlock()
}

// LeaseStats reports one query's traffic against the broker.
type LeaseStats struct {
	Tenant        string  `json:"tenant,omitempty"`
	Admitted      float64 `json:"admitted"` // bytes granted at admission
	Waited        bool    `json:"waited"`   // admission had to queue
	Returns       int     `json:"returns"`  // mid-query surplus returns
	ReturnedBytes float64 `json:"returned_bytes"`
	Growths       int     `json:"growths"` // mid-query top-ups
	GrownBytes    float64 `json:"grown_bytes"`
}

// Stats returns the lease's per-query accounting.
func (l *Lease) Stats() LeaseStats {
	l.b.mu.Lock()
	defer l.b.mu.Unlock()
	return LeaseStats{
		Tenant:        l.tenant,
		Admitted:      l.admitted,
		Waited:        l.waited,
		Returns:       l.returns,
		ReturnedBytes: l.returned,
		Growths:       l.growths,
		GrownBytes:    l.grown,
	}
}

// BrokerStats is a snapshot of the pool.
type BrokerStats struct {
	PoolBytes  float64
	AvailBytes float64
	Waiting    int   // queries queued right now
	Admitted   int64 // total admissions
	Waits      int64 // admissions that had to queue
	WaitNanos  int64 // total wall-clock time spent queued
	Cancelled  int64 // waiters that gave up before admission
	Rejected   int64 // admissions refused by a tenant queue bound
	Preempts   int64 // preemption requests issued
	Returned   float64
	Grown      float64
}

// Stats snapshots the broker.
func (b *Broker) Stats() BrokerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BrokerStats{
		PoolBytes:  b.pool,
		AvailBytes: b.avail,
		Waiting:    b.waiting,
		Admitted:   b.admitted,
		Waits:      b.waits,
		WaitNanos:  b.waitNanos,
		Cancelled:  b.cancelled,
		Rejected:   b.rejected,
		Preempts:   b.preempts,
		Returned:   b.returned,
		Grown:      b.grown,
	}
}

// TenantStats is one tenant's view of the pool: its service class plus
// its live scheduling state and traffic counters.
type TenantStats struct {
	Tenant     string  `json:"tenant"`
	Weight     float64 `json:"weight"`
	Priority   int     `json:"priority"`
	QuotaBytes float64 `json:"quota_bytes,omitempty"`
	HeldBytes  float64 `json:"held_bytes"`
	Queued     int     `json:"queued"`
	Running    int     `json:"running"`
	VTime      float64 `json:"vtime"`
	Admitted   int64   `json:"admitted"`
	Waits      int64   `json:"waits"`
	WaitNanos  int64   `json:"wait_nanos"`
	Cancelled  int64   `json:"cancelled"`
	Rejected   int64   `json:"rejected"`
	Preempted  int64   `json:"preempted"`
}

// TenantStats snapshots every tenant the broker has served, sorted by
// name.
func (b *Broker) TenantStats() []TenantStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TenantStats, 0, len(b.states))
	for name, ts := range b.states {
		cfg := b.tenants.Get(name)
		out = append(out, TenantStats{
			Tenant:     name,
			Weight:     cfg.Weight,
			Priority:   cfg.Priority,
			QuotaBytes: cfg.QuotaBytes,
			HeldBytes:  ts.held,
			Queued:     len(ts.waiters),
			Running:    len(ts.run),
			VTime:      ts.vtime,
			Admitted:   ts.admitted,
			Waits:      ts.waits,
			WaitNanos:  ts.waitNanos,
			Cancelled:  ts.cancelled,
			Rejected:   ts.rejected,
			Preempted:  ts.preempted,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// QueueDepths reports how many admissions each tenant has queued right
// now, for the per-tenant queue-depth gauge.
func (b *Broker) QueueDepths() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.states))
	for name, ts := range b.states {
		out[name] = len(ts.waiters)
	}
	return out
}

// Demands sums a plan's memory requirements: the least memory its
// consumers can run with, and the most they can use. Admission control
// queues a query until min fits in the broker's free pool.
func Demands(root plan.Node) (min, max float64) {
	for _, op := range Consumers(root) {
		e := op.Est()
		min += math.Min(e.MemMin, e.MemMax)
		max += e.MemMax
	}
	return min, max
}
