package memmgr

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/plan"
)

// Broker generalizes the Memory Manager's fixed per-query budget to a
// shared pool serving many concurrent queries — the multi-query
// environment that motivates the paper's §2.3: memory a query frees (or
// turns out not to need once run-time statistics arrive) should flow to
// other queries, not sit idle against a private budget.
//
// Admission control is FIFO: a query whose plan minimum does not fit in
// the free pool waits, and no later arrival may overtake it (so a large
// query cannot starve behind a stream of small ones). Mid-query, the
// re-optimizing dispatcher returns surplus grants through Lease.Return —
// which is what lets a queued query start before the donor finishes —
// and may opportunistically Grow a lease when improved estimates raise
// its demands.
type Broker struct {
	mu    sync.Mutex
	pool  float64
	avail float64
	queue []*waiter // FIFO; head is the oldest

	admitted  int64
	waits     int64
	waitNanos int64 // total wall-clock time queries spent queued
	cancelled int64 // waiters that gave up before admission
	returned  float64
	grown     float64

	// trace, when set, receives one Event per state transition,
	// synchronously and in a total order (emitted under the broker
	// lock). Tests use it to assert admission orderings; it must not
	// call back into the broker.
	trace func(Event)
}

// Event is one broker state transition, for tracing and tests.
type Event struct {
	// Kind is "admit", "queue", "cancel", "return", "grow", or
	// "release".
	Kind string
	// Query is the query tag the event concerns.
	Query string
	// Bytes is the amount admitted, returned, grown, or released.
	Bytes float64
}

func (e Event) String() string {
	return fmt.Sprintf("%s %s %.0f", e.Kind, e.Query, e.Bytes)
}

type waiter struct {
	query string
	min   float64
	want  float64
	done  chan *Lease // receives the lease when admitted; closed on cancel
}

// NewBroker returns a broker over a pool of the given size in bytes.
func NewBroker(pool float64) *Broker {
	if pool <= 0 {
		pool = 32 << 20
	}
	return &Broker{pool: pool, avail: pool}
}

// SetTrace installs an event hook. Install before any Admit; the hook
// runs under the broker lock and must not call back into the broker.
func (b *Broker) SetTrace(fn func(Event)) {
	b.mu.Lock()
	b.trace = fn
	b.mu.Unlock()
}

func (b *Broker) emit(kind, query string, bytes float64) {
	if b.trace != nil {
		b.trace(Event{Kind: kind, Query: query, Bytes: bytes})
	}
}

// Lease is one query's reservation against the broker pool. It is not
// safe for concurrent use by multiple goroutines — a lease belongs to
// the one dispatcher executing its query.
type Lease struct {
	b     *Broker
	query string
	held  float64

	admitted float64
	returns  int
	returned float64
	growths  int
	grown    float64
	waited   bool
	released bool
}

// Admit blocks until at least min bytes are free (FIFO order), then
// reserves up to want bytes and returns the lease. A min larger than the
// whole pool is capped at the pool — the query would otherwise never
// run; it over-commits exactly as the single-query Memory Manager does.
// The context cancels waiting.
func (b *Broker) Admit(ctx context.Context, query string, min, want float64) (*Lease, error) {
	min = math.Min(min, b.pool)
	want = math.Max(math.Min(want, b.pool), min)

	b.mu.Lock()
	if len(b.queue) == 0 && b.avail >= min {
		l := b.admitLocked(query, min, want, false)
		b.mu.Unlock()
		return l, nil
	}
	w := &waiter{query: query, min: min, want: want, done: make(chan *Lease, 1)}
	b.queue = append(b.queue, w)
	b.waits++
	b.emit("queue", query, min)
	b.mu.Unlock()

	start := time.Now()
	select {
	case l := <-w.done:
		b.mu.Lock()
		b.waitNanos += int64(time.Since(start))
		b.mu.Unlock()
		return l, nil
	case <-ctx.Done():
		b.mu.Lock()
		for i, q := range b.queue {
			if q == w {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				b.cancelled++
				b.emit("cancel", query, min)
				// The cancelled waiter may have been the head holding
				// everyone else up: a later waiter with a smaller
				// minimum could fit the free pool right now, and no
				// Return/Release is coming to re-check the queue.
				b.wakeLocked()
				b.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		b.mu.Unlock()
		// Already admitted between ctx.Done and acquiring the lock:
		// surrender the lease.
		if l := <-w.done; l != nil {
			l.Release()
		}
		return nil, ctx.Err()
	}
}

// admitLocked reserves memory for one query. Caller holds b.mu.
func (b *Broker) admitLocked(query string, min, want float64, waited bool) *Lease {
	grant := math.Min(want, b.avail)
	if grant < min {
		grant = min // over-commit: min was capped at pool size
	}
	b.avail -= grant
	b.admitted++
	b.emit("admit", query, grant)
	return &Lease{b: b, query: query, held: grant, admitted: grant, waited: waited}
}

// wakeLocked admits queued queries, in order, while the head's minimum
// fits. Caller holds b.mu. Strict FIFO: if the head does not fit, no
// later waiter is considered.
func (b *Broker) wakeLocked() {
	for len(b.queue) > 0 {
		w := b.queue[0]
		if b.avail < w.min {
			return
		}
		b.queue = b.queue[1:]
		w.done <- b.admitLocked(w.query, w.min, w.want, true)
	}
}

// Held returns the lease's current reservation in bytes.
func (l *Lease) Held() float64 { return l.held }

// Query returns the query tag the lease was admitted under.
func (l *Lease) Query() string { return l.query }

// Waited reports whether admission had to queue.
func (l *Lease) Waited() bool { return l.waited }

// Return gives surplus bytes back to the pool mid-query, waking queued
// queries whose minimums now fit. Returns the amount actually returned
// (clamped to the held reservation).
func (l *Lease) Return(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	b := l.b
	b.mu.Lock()
	// released is guarded by b.mu: a surrendered lease (cancelled Admit)
	// is released on the broker's goroutine while the query's goroutine
	// may still be unwinding through deferred Return/Release calls.
	if l.released {
		b.mu.Unlock()
		return 0
	}
	bytes = math.Min(bytes, l.held)
	l.held -= bytes
	l.returns++
	l.returned += bytes
	b.avail += bytes
	b.returned += bytes
	b.emit("return", l.query, bytes)
	b.wakeLocked()
	b.mu.Unlock()
	return bytes
}

// Grow tries to reserve up to bytes more from the free pool without
// blocking and without overtaking queued queries. Returns the amount
// actually obtained.
func (l *Lease) Grow(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	b := l.b
	b.mu.Lock()
	if l.released {
		b.mu.Unlock()
		return 0
	}
	if len(b.queue) > 0 {
		// Queued queries have priority over incumbents' top-ups; a
		// growing query taking the last free bytes could starve them.
		b.mu.Unlock()
		return 0
	}
	got := math.Min(bytes, b.avail)
	if got > 0 {
		b.avail -= got
		l.held += got
		l.growths++
		l.grown += got
		b.grown += got
		b.emit("grow", l.query, got)
	}
	b.mu.Unlock()
	return got
}

// Release returns the whole reservation on query completion. Safe to
// call more than once.
func (l *Lease) Release() {
	b := l.b
	b.mu.Lock()
	if l.released {
		b.mu.Unlock()
		return
	}
	l.released = true
	b.avail += l.held
	b.emit("release", l.query, l.held)
	l.held = 0
	b.wakeLocked()
	b.mu.Unlock()
}

// LeaseStats reports one query's traffic against the broker.
type LeaseStats struct {
	Admitted      float64 // bytes granted at admission
	Waited        bool    // admission had to queue
	Returns       int     // mid-query surplus returns
	ReturnedBytes float64
	Growths       int // mid-query top-ups
	GrownBytes    float64
}

// Stats returns the lease's per-query accounting.
func (l *Lease) Stats() LeaseStats {
	l.b.mu.Lock()
	defer l.b.mu.Unlock()
	return LeaseStats{
		Admitted:      l.admitted,
		Waited:        l.waited,
		Returns:       l.returns,
		ReturnedBytes: l.returned,
		Growths:       l.growths,
		GrownBytes:    l.grown,
	}
}

// BrokerStats is a snapshot of the pool.
type BrokerStats struct {
	PoolBytes  float64
	AvailBytes float64
	Waiting    int   // queries queued right now
	Admitted   int64 // total admissions
	Waits      int64 // admissions that had to queue
	WaitNanos  int64 // total wall-clock time spent queued
	Cancelled  int64 // waiters that gave up before admission
	Returned   float64
	Grown      float64
}

// Stats snapshots the broker.
func (b *Broker) Stats() BrokerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BrokerStats{
		PoolBytes:  b.pool,
		AvailBytes: b.avail,
		Waiting:    len(b.queue),
		Admitted:   b.admitted,
		Waits:      b.waits,
		WaitNanos:  b.waitNanos,
		Cancelled:  b.cancelled,
		Returned:   b.returned,
		Grown:      b.grown,
	}
}

// Demands sums a plan's memory requirements: the least memory its
// consumers can run with, and the most they can use. Admission control
// queues a query until min fits in the broker's free pool.
func Demands(root plan.Node) (min, max float64) {
	for _, op := range Consumers(root) {
		e := op.Est()
		min += math.Min(e.MemMin, e.MemMax)
		max += e.MemMax
	}
	return min, max
}
