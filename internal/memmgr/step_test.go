package memmgr

import (
	"testing"
	"testing/quick"

	"repro/internal/plan"
)

func TestStepOpsAllOrNothing(t *testing.T) {
	// Property: an all-or-nothing (MemStep) operator's grant is always
	// exactly MemMin or exactly MemMax, never between.
	f := func(mins, spans [3]uint16, budgetRaw uint32) bool {
		var ops []plan.Node
		for i := 0; i < 3; i++ {
			mn := float64(mins[i]%1000) + 1
			mx := mn + float64(spans[i])
			ops = append(ops, newStep(mn, mx))
		}
		budget := float64(budgetRaw % 100000)
		New(budget).AllocateOps(ops, budget)
		for _, op := range ops {
			e := op.Est()
			if e.Grant != e.MemMin && e.Grant != e.MemMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStepSkippedLeftoverFlowsOn(t *testing.T) {
	// A step op whose top-up does not fit is skipped entirely; the
	// budget it would have consumed flows to the next consumer.
	a := newStep(1, 100) // fits
	b := newStep(1, 1000)
	c := newMem(1, 500)
	New(400).AllocateOps([]plan.Node{a, b, c}, 400)
	if a.est.Grant != 100 {
		t.Errorf("a grant = %g", a.est.Grant)
	}
	if b.est.Grant != 1 {
		t.Errorf("b grant = %g, want min (all-or-nothing skip)", b.est.Grant)
	}
	if c.est.Grant != 299 { // min(1) + leftover(298)
		t.Errorf("c grant = %g, want 299", c.est.Grant)
	}
}
