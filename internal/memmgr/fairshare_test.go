package memmgr

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/tenant"
)

// admitTenantAsync runs AdmitTenant on its own goroutine, pushing the
// admitted lease (tagged with its tenant) to the shared channel.
func admitTenantAsync(b *Broker, ten, query string, min, want float64, admitted chan<- *Lease) <-chan error {
	ec := make(chan error, 1)
	go func() {
		l, err := b.AdmitTenant(context.Background(), ten, query, min, want)
		if l != nil {
			admitted <- l
		}
		ec <- err
	}()
	return ec
}

// TestWeightedFairShare saturates the broker with full-pool requests
// from two backlogged tenants at weights 3:1 and checks the admission
// stream honors the weights: six gold to two bronze over any eight
// serialized admissions.
func TestWeightedFairShare(t *testing.T) {
	b := NewBroker(100)
	b.Tenants().Set("gold", tenant.Config{Weight: 3})
	b.Tenants().Set("bronze", tenant.Config{Weight: 1})

	blocker, err := b.Admit(context.Background(), "blocker", 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Every waiter wants the whole pool, so admissions are strictly
	// one at a time and the fair-share choice is visible in the order.
	admitted := make(chan *Lease, 16)
	for i := 0; i < 8; i++ {
		admitTenantAsync(b, "gold", "g", 100, 100, admitted)
		waitQueued(t, b, 2*i+1)
		admitTenantAsync(b, "bronze", "b", 100, 100, admitted)
		waitQueued(t, b, 2*i+2)
	}
	blocker.Release()

	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		select {
		case l := <-admitted:
			counts[l.Tenant()]++
			l.Release()
		case <-time.After(5 * time.Second):
			t.Fatalf("admission stream stalled after %d admissions", i)
		}
	}
	if counts["gold"] != 6 || counts["bronze"] != 2 {
		t.Fatalf("first 8 admissions = %v, want gold:6 bronze:2", counts)
	}
	// Drain the rest so the pool is whole again.
	for i := 0; i < 8; i++ {
		l := <-admitted
		l.Release()
	}
	if st := b.Stats(); st.AvailBytes != st.PoolBytes {
		t.Fatalf("pool not restored: avail %v of %v", st.AvailBytes, st.PoolBytes)
	}
}

// TestTenantQuotaBlocksOnlyItself pins the quota semantics: a tenant at
// its memory quota queues even though the pool has room, other tenants
// are not blocked behind it, and the tenant's own release unblocks it.
func TestTenantQuotaBlocksOnlyItself(t *testing.T) {
	b := NewBroker(100)
	b.Tenants().Set("capped", tenant.Config{Weight: 1, QuotaBytes: 40})

	first, err := b.AdmitTenant(context.Background(), "capped", "c1", 30, 30)
	if err != nil {
		t.Fatal(err)
	}
	// held 30 + min 30 > quota 40: must queue despite 70 free bytes.
	admitted := make(chan *Lease, 1)
	admitTenantAsync(b, "capped", "c2", 30, 30, admitted)
	waitQueued(t, b, 1)
	select {
	case <-admitted:
		t.Fatal("second admission exceeded the tenant quota")
	case <-time.After(50 * time.Millisecond):
	}

	// Another tenant sails past the quota-blocked head.
	free, err := b.AdmitTenant(context.Background(), "free", "f", 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	free.Release()

	// The capped tenant's own release is what unblocks its queue.
	first.Release()
	select {
	case l := <-admitted:
		l.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("quota-blocked waiter never admitted after tenant release")
	}
	if st := b.Stats(); st.AvailBytes != st.PoolBytes {
		t.Fatalf("pool not restored: avail %v of %v", st.AvailBytes, st.PoolBytes)
	}
}

// TestQuotaAdmitsOneOversizedQuery: a tenant whose first query alone
// exceeds its quota still runs it (quota over-commit mirrors the
// pool-cap rule), so a tight quota cannot wedge a tenant forever.
func TestQuotaAdmitsOneOversizedQuery(t *testing.T) {
	b := NewBroker(100)
	b.Tenants().Set("tiny", tenant.Config{Weight: 1, QuotaBytes: 10})
	l, err := b.AdmitTenant(context.Background(), "tiny", "q", 50, 80)
	if err != nil {
		t.Fatal(err)
	}
	// The grant is clamped to the quota-capped floor: min, not want.
	if l.Held() != 50 {
		t.Fatalf("oversized first query held %v, want its min 50", l.Held())
	}
	l.Release()
}

// TestQueueBoundRejects verifies the bounded admission queue: the
// MaxQueued+1'th concurrent admission fails fast with ErrQueueFull
// instead of parking forever.
func TestQueueBoundRejects(t *testing.T) {
	b := NewBroker(100)
	b.Tenants().Set("lim", tenant.Config{Weight: 1, MaxQueued: 2})
	blocker, err := b.Admit(context.Background(), "blocker", 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *Lease, 4)
	e1 := admitTenantAsync(b, "lim", "q1", 10, 10, admitted)
	waitQueued(t, b, 1)
	e2 := admitTenantAsync(b, "lim", "q2", 10, 10, admitted)
	waitQueued(t, b, 2)

	if _, err := b.AdmitTenant(context.Background(), "lim", "q3", 10, 10); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third queued admission = %v, want ErrQueueFull", err)
	}
	// The bound is per tenant: another tenant still queues fine.
	e4 := admitTenantAsync(b, "other", "q4", 10, 10, admitted)
	waitQueued(t, b, 3)

	if st := b.Stats(); st.Rejected != 1 {
		t.Fatalf("Stats.Rejected = %d, want 1", st.Rejected)
	}
	var limStats *TenantStats
	for _, ts := range b.TenantStats() {
		if ts.Tenant == "lim" {
			limStats = &ts
			break
		}
	}
	if limStats == nil || limStats.Rejected != 1 || limStats.Queued != 2 {
		t.Fatalf("lim tenant stats = %+v, want rejected 1 queued 2", limStats)
	}

	blocker.Release()
	for _, ec := range []<-chan error{e1, e2, e4} {
		if err := <-ec; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		(<-admitted).Release()
	}
	if st := b.Stats(); st.AvailBytes != st.PoolBytes {
		t.Fatalf("pool not restored: avail %v of %v", st.AvailBytes, st.PoolBytes)
	}
}

// TestPreemptVictimSelection: a queued higher-priority request flags
// the largest lowest-priority lease — and only as many leases as cover
// the shortfall.
func TestPreemptVictimSelection(t *testing.T) {
	b := NewBroker(100)
	b.Tenants().Set("hi", tenant.Config{Weight: 1, Priority: 1})
	big, err := b.AdmitTenant(context.Background(), "low", "big", 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	small, err := b.AdmitTenant(context.Background(), "low", "small", 40, 40)
	if err != nil {
		t.Fatal(err)
	}

	admitted := make(chan *Lease, 1)
	admitTenantAsync(b, "hi", "urgent", 50, 50, admitted)
	waitQueued(t, b, 1)

	if !big.PreemptRequested() {
		t.Fatal("largest low-priority lease not flagged for preemption")
	}
	if small.PreemptRequested() {
		t.Fatal("small lease flagged although the big one alone covers the shortfall")
	}

	// The dispatcher honors the flag at its checkpoint by releasing.
	big.Release()
	select {
	case l := <-admitted:
		if l.Held() != 50 {
			t.Fatalf("urgent admitted with %v, want 50", l.Held())
		}
		l.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("high-priority waiter never admitted after victim release")
	}
	small.Release()
	if st := b.Stats(); st.Preempts != 1 {
		t.Fatalf("Stats.Preempts = %d, want 1", st.Preempts)
	}
}

// TestNonPreemptibleLeaseIsSkipped: a lease past the resume cap is
// exempt from victim selection, so a high-priority arrival cannot park
// it forever.
func TestNonPreemptibleLeaseIsSkipped(t *testing.T) {
	b := NewBroker(100)
	b.Tenants().Set("hi", tenant.Config{Weight: 1, Priority: 1})
	l, err := b.AdmitTenant(context.Background(), "low", "shielded", 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	l.MarkNonPreemptible()
	if l.RequestPreempt() {
		t.Fatal("RequestPreempt succeeded on a non-preemptible lease")
	}

	admitted := make(chan *Lease, 1)
	admitTenantAsync(b, "hi", "urgent", 50, 50, admitted)
	waitQueued(t, b, 1)
	if l.PreemptRequested() {
		t.Fatal("victim selection flagged a non-preemptible lease")
	}
	l.Release()
	(<-admitted).Release()
}

// TestIdleTenantVTimeClamp: a tenant that sat idle while others
// accumulated virtual time must not replay its deficit as a burst — on
// rejoining, its vtime is clamped up to the active minimum, so
// admissions immediately interleave instead of draining the returnee
// first for many turns.
func TestIdleTenantVTimeClamp(t *testing.T) {
	b := NewBroker(100)
	b.Tenants().Set("busy", tenant.Config{Weight: 1})
	b.Tenants().Set("idle", tenant.Config{Weight: 1})

	// busy accumulates service while idle is absent. Keep one lease
	// held throughout so the broker never goes quiescent (which would
	// legitimately reset all vtimes).
	anchor, err := b.AdmitTenant(context.Background(), "busy", "anchor", 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l, err := b.AdmitTenant(context.Background(), "busy", "warm", 80, 80)
		if err != nil {
			t.Fatal(err)
		}
		l.Release()
	}

	// Saturate, then queue alternating requests from both tenants.
	blocker, err := b.AdmitTenant(context.Background(), "busy", "blocker", 90, 90)
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *Lease, 8)
	for i := 0; i < 4; i++ {
		admitTenantAsync(b, "idle", "i", 90, 90, admitted)
		waitQueued(t, b, 2*i+1)
		admitTenantAsync(b, "busy", "bz", 90, 90, admitted)
		waitQueued(t, b, 2*i+2)
	}
	blocker.Release()

	var order []string
	for i := 0; i < 8; i++ {
		select {
		case l := <-admitted:
			order = append(order, l.Tenant())
			l.Release()
		case <-time.After(5 * time.Second):
			t.Fatalf("admission stream stalled at %d (order %v)", i, order)
		}
	}
	anchor.Release()
	// Without the clamp, idle's huge vtime deficit would admit all four
	// of its requests before any busy one. With it, the first two
	// admissions must include one of each.
	if order[0] == order[1] {
		t.Fatalf("rejoining idle tenant monopolized admissions: %v", order)
	}
}
