package memmgr

import (
	"testing"
	"testing/quick"

	"repro/internal/plan"
	"repro/internal/types"
)

// memNode is a minimal plan.Node for allocation tests.
type memNode struct {
	est      plan.Est
	children []plan.Node
	label    string
}

func (n *memNode) Schema() *types.Schema { return nil }

func newMem(min, max float64, children ...plan.Node) *memNode {
	return &memNode{est: plan.Est{MemMin: min, MemMax: max}, children: children}
}

// newStep builds an all-or-nothing consumer (a hash join).
func newStep(min, max float64, children ...plan.Node) *memNode {
	return &memNode{est: plan.Est{MemMin: min, MemMax: max, MemStep: true}, children: children}
}

func (n *memNode) Est() *plan.Est        { return &n.est }
func (n *memNode) Children() []plan.Node { return n.children }
func (n *memNode) Label() string         { return n.label }
func (n *memNode) Describe() string      { return "" }

const mb = 1 << 20

func TestFigure3Allocation(t *testing.T) {
	// The paper's Figure 3: two hash joins each demanding max 4.2MB /
	// min 250KB, aggregate max 4MB / min 1MB, budget 8MB. The first
	// join must get its max, the second its min, the aggregate the
	// leftover.
	join1 := newStep(0.25*mb, 4.2*mb)
	join2 := newStep(0.25*mb, 4.2*mb, join1)
	agg := newMem(1*mb, 4*mb, join2)

	New(8 * mb).Allocate(agg)

	if got := join1.est.Grant; got != 4.2*mb {
		t.Errorf("join1 grant = %.2fMB, want 4.2MB", got/mb)
	}
	if got := join2.est.Grant; got != 0.25*mb {
		t.Errorf("join2 grant = %.2fMB, want 0.25MB (minimum)", got/mb)
	}
	want := 8*mb - 4.2*mb - 0.25*mb
	if got := agg.est.Grant; got != want {
		t.Errorf("agg grant = %.2fMB, want leftover %.2fMB", got/mb, want/mb)
	}
}

func TestFigure3AfterImprovedEstimates(t *testing.T) {
	// After the collector observes 7500 tuples instead of 15000, the
	// second join's max demand halves to 2.05MB (after the first join
	// has finished and released its memory the budget is back to 8MB
	// minus nothing in this simplified re-allocation of the suffix),
	// and the Memory Manager can now satisfy it.
	join2 := newStep(0.25*mb, 2.05*mb)
	agg := newMem(1*mb, 4*mb, join2)
	New(8*mb).AllocateOps([]plan.Node{join2, agg}, 8*mb)
	if got := join2.est.Grant; got != 2.05*mb {
		t.Errorf("join2 grant after improvement = %.2fMB, want full 2.05MB", got/mb)
	}
}

func TestAllocateRespectsBudgetWhenPossible(t *testing.T) {
	a := newMem(1*mb, 10*mb)
	b := newMem(1*mb, 10*mb, a)
	New(5 * mb).Allocate(b)
	total := a.est.Grant + b.est.Grant
	if total > 5*mb {
		t.Errorf("allocated %.2fMB over a 5MB budget", total/mb)
	}
	if a.est.Grant < b.est.Grant {
		t.Error("earlier operator did not get priority")
	}
}

func TestAllocateOvercommitsOnlyToMinimums(t *testing.T) {
	a := newMem(4*mb, 10*mb)
	b := newMem(4*mb, 10*mb, a)
	New(5 * mb).Allocate(b)
	if a.est.Grant != 4*mb || b.est.Grant != 4*mb {
		t.Errorf("grants = %.1f/%.1f MB, want minimums", a.est.Grant/mb, b.est.Grant/mb)
	}
}

func TestConsumersSkipsStreamingOps(t *testing.T) {
	scan := newMem(0, 0)
	join := newMem(1, 2, scan)
	top := newMem(0, 0, join)
	got := Consumers(top)
	if len(got) != 1 || got[0] != plan.Node(join) {
		t.Errorf("Consumers = %v", got)
	}
}

func TestConsumersExecutionOrder(t *testing.T) {
	// Left-deep: deepest join first.
	j1 := newMem(1, 10)
	j1.label = "j1"
	j2 := newMem(1, 10, j1)
	j2.label = "j2"
	agg := newMem(1, 10, j2)
	agg.label = "agg"
	got := Consumers(agg)
	if len(got) != 3 || got[0].Label() != "j1" || got[2].Label() != "agg" {
		labels := make([]string, len(got))
		for i, n := range got {
			labels[i] = n.Label()
		}
		t.Errorf("order = %v", labels)
	}
}

func TestHeldBy(t *testing.T) {
	a := newMem(1, 2)
	b := newMem(1, 2)
	a.est.Grant = 100
	b.est.Grant = 50
	if got := HeldBy([]plan.Node{a, b}); got != 150 {
		t.Errorf("HeldBy = %g", got)
	}
}

func TestAllocateProperty(t *testing.T) {
	// Properties: grant >= min(MemMin, MemMax); grant <= MemMax; total
	// <= max(budget, sum of minimums); monotone priority — an earlier
	// op's shortfall implies every later op is at its minimum.
	f := func(mins, maxs [4]uint16, budgetRaw uint32) bool {
		ops := make([]plan.Node, 0, 4)
		for i := 0; i < 4; i++ {
			mn := float64(mins[i])
			mx := mn + float64(maxs[i])
			if mx <= 0 {
				continue
			}
			ops = append(ops, newMem(mn, mx))
		}
		if len(ops) == 0 {
			return true
		}
		budget := float64(budgetRaw % 200000)
		New(budget).AllocateOps(ops, budget)
		total, minSum := 0.0, 0.0
		for _, op := range ops {
			e := op.Est()
			if e.Grant < e.MemMin && e.Grant < e.MemMax {
				return false
			}
			if e.Grant > e.MemMax {
				return false
			}
			total += e.Grant
			minSum += e.MemMin
		}
		limit := budget
		if minSum > limit {
			limit = minSum
		}
		if total > limit+1e-6 {
			return false
		}
		// Priority: once an op is below max, all later ops are at min.
		starved := false
		for _, op := range ops {
			e := op.Est()
			if starved && e.Grant > e.MemMin {
				return false
			}
			if e.Grant < e.MemMax {
				starved = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
