package sample

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestReservoirUnderfill(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 0; i < 50; i++ {
		r.Add(types.NewInt(int64(i)))
	}
	if len(r.Sample()) != 50 {
		t.Errorf("sample size = %d, want 50", len(r.Sample()))
	}
	if r.Seen() != 50 {
		t.Errorf("Seen = %d", r.Seen())
	}
	// Underfilled reservoir keeps every element in order.
	for i, v := range r.Sample() {
		if v.Int() != int64(i) {
			t.Fatalf("sample[%d] = %v", i, v)
		}
	}
}

func TestReservoirExactCapacity(t *testing.T) {
	r := NewReservoir(64, 1)
	for i := 0; i < 100000; i++ {
		r.Add(types.NewInt(int64(i)))
	}
	if len(r.Sample()) != 64 {
		t.Errorf("sample size = %d, want 64", len(r.Sample()))
	}
	if r.Seen() != 100000 {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestReservoirElementsFromInput(t *testing.T) {
	f := func(seed int64, extra uint16) bool {
		n := int(extra)%5000 + 10
		r := NewReservoir(32, seed)
		for i := 0; i < n; i++ {
			r.Add(types.NewInt(int64(i * 3)))
		}
		for _, v := range r.Sample() {
			x := v.Int()
			if x%3 != 0 || x < 0 || x >= int64(n*3) {
				return false
			}
		}
		want := 32
		if n < 32 {
			want = n
		}
		return len(r.Sample()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of n=1000 elements should land in a k=100 reservoir with
	// probability k/n. Over many trials the mean sampled value should
	// be close to the stream mean.
	const n, k, trials = 1000, 100, 60
	var sum, count float64
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(k, int64(trial))
		for i := 0; i < n; i++ {
			r.Add(types.NewInt(int64(i)))
		}
		for _, v := range r.Sample() {
			sum += float64(v.Int())
			count++
		}
	}
	mean := sum / count
	want := float64(n-1) / 2
	if math.Abs(mean-want) > want*0.05 {
		t.Errorf("sampled mean %.1f deviates from stream mean %.1f", mean, want)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	run := func() []types.Value {
		r := NewReservoir(16, 99)
		for i := 0; i < 10000; i++ {
			r.Add(types.NewInt(int64(i)))
		}
		return append([]types.Value(nil), r.Sample()...)
	}
	a, b := run(), run()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestReservoirMinCapacity(t *testing.T) {
	r := NewReservoir(0, 1)
	if r.Cap() != 1 {
		t.Errorf("Cap() = %d, want clamped to 1", r.Cap())
	}
	r.Add(types.NewInt(5))
	if len(r.Sample()) != 1 {
		t.Error("reservoir of capacity 1 is empty after Add")
	}
}
