package sample

import (
	"math"
	"testing"

	"repro/internal/types"
)

func TestMergeSumsSeen(t *testing.T) {
	a := NewReservoir(64, 1)
	b := NewReservoir(64, 2)
	for i := 0; i < 1000; i++ {
		a.Add(types.NewInt(int64(i)))
	}
	for i := 1000; i < 1500; i++ {
		b.Add(types.NewInt(int64(i)))
	}
	a.Merge(b)
	if a.Seen() != 1500 {
		t.Errorf("Seen = %d, want 1500", a.Seen())
	}
	if len(a.Sample()) != 64 {
		t.Errorf("sample size = %d, want full capacity 64", len(a.Sample()))
	}
	for _, v := range a.Sample() {
		if v.Int() < 0 || v.Int() >= 1500 {
			t.Errorf("merged sample holds %v, outside both inputs", v)
		}
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	a := NewReservoir(64, 1)
	b := NewReservoir(64, 2)
	for i := 0; i < 100; i++ {
		b.Add(types.NewInt(int64(i)))
	}
	a.Merge(b)
	if a.Seen() != 100 || len(a.Sample()) != 64 {
		t.Errorf("Seen=%d sample=%d after merge into empty", a.Seen(), len(a.Sample()))
	}
	// And the other direction: merging an empty reservoir is a no-op.
	before := len(a.Sample())
	a.Merge(NewReservoir(64, 3))
	if a.Seen() != 100 || len(a.Sample()) != before {
		t.Error("merging an empty reservoir changed state")
	}
}

// TestMergeProportionalRepresentation: each side's share of the merged
// sample must track its share of the merged stream — the weighted-merge
// property that makes per-partition reservoirs equivalent to one
// reservoir over the union. Averaged over many seeds to bound variance.
func TestMergeProportionalRepresentation(t *testing.T) {
	const trials = 200
	var fromA float64
	for s := int64(0); s < trials; s++ {
		a := NewReservoir(64, s*2+1)
		b := NewReservoir(64, s*2+2)
		for i := 0; i < 3000; i++ { // side A: values < 10000
			a.Add(types.NewInt(int64(i)))
		}
		for i := 10000; i < 11000; i++ { // side B: values >= 10000
			b.Add(types.NewInt(int64(i)))
		}
		a.Merge(b)
		for _, v := range a.Sample() {
			if v.Int() < 10000 {
				fromA++
			}
		}
	}
	got := fromA / (trials * 64)
	want := 3000.0 / 4000.0
	if math.Abs(got-want) > 0.05 {
		t.Errorf("side A holds %.3f of the merged sample, want ~%.3f", got, want)
	}
}

// TestMergeUniformWithinSide: a reservoir that never overflowed holds
// its stream in arrival order, so the merge must draw uniformly from
// the side's remaining items rather than consuming a prefix. Regression
// test for a bias where merged samples over-represented early arrivals:
// track the mean arrival index of side-B survivors when B contributes
// only part of its (never-overflowed, in-order) reservoir. Under a
// uniform draw the mean index is ~(n-1)/2; the prefix bug pulled it
// down toward the count actually taken.
func TestMergeUniformWithinSide(t *testing.T) {
	const (
		trials = 300
		bRows  = 256 // fills B exactly: never overflows, items in arrival order
	)
	var idxSum, nTaken float64
	for s := int64(0); s < trials; s++ {
		a := NewReservoir(64, s*2+1)
		b := NewReservoir(256, s*2+2)
		for i := 0; i < 1000; i++ {
			a.Add(types.NewInt(int64(i)))
		}
		for i := 0; i < bRows; i++ {
			b.Add(types.NewInt(int64(10000 + i))) // value encodes arrival index
		}
		a.Merge(b)
		for _, v := range a.Sample() {
			if v.Int() >= 10000 {
				idxSum += float64(v.Int() - 10000)
				nTaken++
			}
		}
	}
	got := idxSum / nTaken
	want := float64(bRows-1) / 2 // uniform over arrival indices 0..255
	// ~13 B-items survive per trial, so the prefix bug gave a mean of
	// ~6 — far outside this tolerance; a uniform draw sits near 127.5.
	if math.Abs(got-want) > 10 {
		t.Errorf("mean arrival index of merged side-B items = %.1f, want ~%.1f (uniform)", got, want)
	}
}

// TestMergeIntoEmptyUniform covers the empty-r fast path: adopting a
// larger never-overflowed donor must keep a uniform subset, not the
// first cap items.
func TestMergeIntoEmptyUniform(t *testing.T) {
	const trials = 300
	var idxSum float64
	for s := int64(0); s < trials; s++ {
		a := NewReservoir(64, s*2+1)
		b := NewReservoir(256, s*2+2)
		for i := 0; i < 256; i++ {
			b.Add(types.NewInt(int64(i)))
		}
		a.Merge(b)
		if len(a.Sample()) != 64 {
			t.Fatalf("sample size = %d, want 64", len(a.Sample()))
		}
		for _, v := range a.Sample() {
			idxSum += float64(v.Int())
		}
	}
	got := idxSum / (trials * 64)
	want := 255.0 / 2
	// The truncation bug kept indices 0..63 (mean 31.5).
	if math.Abs(got-want) > 10 {
		t.Errorf("mean arrival index after empty-merge = %.1f, want ~%.1f (uniform)", got, want)
	}
}

func TestMergeDeterministic(t *testing.T) {
	run := func() []types.Value {
		a := NewReservoir(32, 7)
		b := NewReservoir(32, 8)
		for i := 0; i < 500; i++ {
			a.Add(types.NewInt(int64(i)))
			b.Add(types.NewInt(int64(i + 500)))
		}
		a.Merge(b)
		return append([]types.Value(nil), a.Sample()...)
	}
	x, y := run(), run()
	for i := range x {
		if !x[i].Equal(y[i]) {
			t.Fatal("same seeds produced different merged samples")
		}
	}
}
