// Package sample implements reservoir sampling (Vitter, "Random Sampling
// with a Reservoir", TOMS 1985). The statistics-collector operator keeps
// one page worth of sampled attribute values in a reservoir while tuples
// stream past, then builds a histogram from the reservoir when the input
// is exhausted (paper §3.1).
package sample

import (
	"math"
	"math/rand"

	"repro/internal/types"
)

// Reservoir maintains a uniform random sample of fixed capacity over a
// stream of values, using Vitter's Algorithm R for the first passes and
// the skip-based Algorithm X once the reservoir is full.
type Reservoir struct {
	cap   int
	seen  int64
	items []types.Value
	rng   *rand.Rand
	skip  int64 // values to skip before the next replacement (Algorithm X)
}

// NewReservoir returns a reservoir holding at most capacity values, drawn
// with the given deterministic seed.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{
		cap:   capacity,
		items: make([]types.Value, 0, capacity),
		rng:   rand.New(rand.NewSource(seed)),
		skip:  -1,
	}
}

// Add offers one value from the stream to the reservoir.
func (r *Reservoir) Add(v types.Value) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, v)
		return
	}
	if r.skip < 0 {
		r.computeSkip()
	}
	if r.skip > 0 {
		r.skip--
		return
	}
	r.items[r.rng.Intn(r.cap)] = v
	r.computeSkip()
}

// computeSkip draws the gap until the next accepted element. This is
// Vitter's Algorithm X: skip lengths are drawn directly from the
// hypergeometric-like distribution instead of tossing a coin per element,
// keeping per-tuple overhead near zero on long streams.
func (r *Reservoir) computeSkip() {
	n := float64(r.cap)
	t := float64(r.seen)
	u := r.rng.Float64()
	// Probability the next j elements are all skipped is
	// prod_{i=1..j} (1 - n/(t+i)); invert by accumulation.
	prod := 1.0
	j := int64(0)
	for {
		prod *= 1 - n/(t+float64(j)+1)
		if prod <= u || math.IsNaN(prod) {
			break
		}
		j++
	}
	r.skip = j
}

// Seen returns the number of values offered so far.
func (r *Reservoir) Seen() int64 { return r.seen }

// Sample returns the current reservoir contents. The slice is owned by
// the reservoir; callers must not mutate it.
func (r *Reservoir) Sample() []types.Value { return r.items }

// Cap returns the reservoir capacity.
func (r *Reservoir) Cap() int { return r.cap }
