// Package sample implements reservoir sampling (Vitter, "Random Sampling
// with a Reservoir", TOMS 1985). The statistics-collector operator keeps
// one page worth of sampled attribute values in a reservoir while tuples
// stream past, then builds a histogram from the reservoir when the input
// is exhausted (paper §3.1).
package sample

import (
	"math"
	"math/rand"

	"repro/internal/types"
)

// Reservoir maintains a uniform random sample of fixed capacity over a
// stream of values, using Vitter's Algorithm R for the first passes and
// the skip-based Algorithm X once the reservoir is full.
type Reservoir struct {
	cap   int
	seen  int64
	items []types.Value
	rng   *rand.Rand
	skip  int64 // values to skip before the next replacement (Algorithm X)
}

// NewReservoir returns a reservoir holding at most capacity values, drawn
// with the given deterministic seed.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{
		cap:   capacity,
		items: make([]types.Value, 0, capacity),
		rng:   rand.New(rand.NewSource(seed)),
		skip:  -1,
	}
}

// Add offers one value from the stream to the reservoir.
func (r *Reservoir) Add(v types.Value) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, v)
		return
	}
	if r.skip < 0 {
		r.computeSkip()
	}
	if r.skip > 0 {
		r.skip--
		return
	}
	r.items[r.rng.Intn(r.cap)] = v
	r.computeSkip()
}

// computeSkip draws the gap until the next accepted element. This is
// Vitter's Algorithm X: skip lengths are drawn directly from the
// hypergeometric-like distribution instead of tossing a coin per element,
// keeping per-tuple overhead near zero on long streams.
func (r *Reservoir) computeSkip() {
	n := float64(r.cap)
	t := float64(r.seen)
	u := r.rng.Float64()
	// Probability the next j elements are all skipped is
	// prod_{i=1..j} (1 - n/(t+i)); invert by accumulation.
	prod := 1.0
	j := int64(0)
	for {
		prod *= 1 - n/(t+float64(j)+1)
		if prod <= u || math.IsNaN(prod) {
			break
		}
		j++
	}
	r.skip = j
}

// Merge folds another reservoir into r, producing a uniform sample over
// the union of both streams. A reservoir's items are a uniform
// without-replacement sample of its stream, so any uniformly chosen
// remaining item simulates drawing a fresh stream element: each merged
// slot picks a side with probability proportional to that side's
// remaining stream size and removes one uniformly random element from
// it — the hypergeometric draw of a k-sample from the concatenated
// streams. The draw within a side must be uniform, not positional: a
// reservoir that never overflowed holds its stream in arrival order, so
// consuming a prefix would bias the merged sample toward early
// arrivals. Merged Seen is the sum. r's deterministic rng drives the
// draws, so merging the same states in the same order is reproducible.
// The other reservoir is consumed and must not be used afterwards.
func (r *Reservoir) Merge(o *Reservoir) {
	if o == nil || o.seen == 0 {
		return
	}
	if r.seen == 0 {
		r.seen = o.seen
		r.items = o.items
		// Keep r's rng (and capacity) so determinism follows the
		// merging side. If the donor holds more items than fit, keep a
		// uniform subset via a partial Fisher-Yates shuffle — plain
		// truncation would keep a biased prefix when o never
		// overflowed.
		if len(r.items) > r.cap {
			for i := 0; i < r.cap; i++ {
				j := i + r.rng.Intn(len(r.items)-i)
				r.items[i], r.items[j] = r.items[j], r.items[i]
			}
			r.items = r.items[:r.cap]
		}
		r.skip = -1
		return
	}
	// Remaining stream elements each side has not yet contributed.
	wa, wb := float64(r.seen), float64(o.seen)
	a, b := r.items, o.items
	// take removes and returns a uniformly random element (swap-remove;
	// order within a side no longer matters once draws are uniform).
	take := func(side []types.Value) ([]types.Value, types.Value) {
		i := r.rng.Intn(len(side))
		v := side[i]
		side[i] = side[len(side)-1]
		return side[:len(side)-1], v
	}
	merged := make([]types.Value, 0, r.cap)
	for len(merged) < r.cap && (len(a) > 0 || len(b) > 0) {
		pickA := len(b) == 0
		if len(a) > 0 && len(b) > 0 {
			pickA = r.rng.Float64()*(wa+wb) < wa
		}
		var v types.Value
		if pickA {
			a, v = take(a)
			wa--
		} else {
			b, v = take(b)
			wb--
		}
		merged = append(merged, v)
	}
	r.items = merged
	r.seen += o.seen
	r.skip = -1
}

// Seen returns the number of values offered so far.
func (r *Reservoir) Seen() int64 { return r.seen }

// Sample returns the current reservoir contents. The slice is owned by
// the reservoir; callers must not mutate it.
func (r *Reservoir) Sample() []types.Value { return r.items }

// Cap returns the reservoir capacity.
func (r *Reservoir) Cap() int { return r.cap }
