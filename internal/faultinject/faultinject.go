// Package faultinject is a deterministic fault-injection harness for
// abort-path testing. Code under test calls Hit(site) at named points —
// operator loops, plan-switch cleanup, broker admission — and tests arm
// faults (an error, a panic, a delay, or a callback such as a context
// cancel) at exactly the site and hit count they want to exercise.
//
// When no injector is installed (the production default) Hit is a single
// atomic load and a nil check; sites cost nothing beyond that, so they
// can sit in per-tuple loops.
//
// Faults are one-shot: a fault fires on its After'th hit of the site and
// is disarmed, so a test gets exactly one deterministic failure per Arm.
// The injector also records every site it sees, armed or not, which is
// how the leak-check sweep discovers the full site list from a clean run
// before aborting a workload at each site in turn.
package faultinject

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what happens when an armed site fires.
type Fault struct {
	// Err is returned from Hit when the fault fires.
	Err error
	// After selects which hit of the site fires the fault (1 = the
	// first). Zero means the first hit.
	After int
	// Delay sleeps before the fault takes effect, simulating a wedged
	// operator (pair with a context deadline to test timeouts).
	Delay time.Duration
	// Do runs when the fault fires, before Err is returned — the hook
	// tests use to cancel a context from inside the engine.
	Do func()
	// Panic, when non-nil, makes the site panic with this value instead
	// of returning Err. It exercises the per-query recovery boundary.
	Panic any
}

// Injector holds armed faults and per-site hit counts.
type Injector struct {
	mu     sync.Mutex
	faults map[string]*Fault
	hits   map[string]int
}

// active is the process-wide injector; nil means disabled.
var active atomic.Pointer[Injector]

// Enable installs a fresh injector process-wide and returns it. Tests
// must call Disable (typically via t.Cleanup) when done.
func Enable() *Injector {
	inj := &Injector{faults: map[string]*Fault{}, hits: map[string]int{}}
	active.Store(inj)
	return inj
}

// Disable removes the process-wide injector; every site reverts to a
// free no-op.
func Disable() { active.Store(nil) }

// Enabled reports whether an injector is installed.
func Enabled() bool { return active.Load() != nil }

// Hit marks one pass through a named site. It returns a non-nil error
// (or panics, or sleeps) when a fault armed at the site fires; with no
// injector installed it returns nil at the cost of one atomic load.
func Hit(site string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.hit(site)
}

func (inj *Injector) hit(site string) error {
	inj.mu.Lock()
	inj.hits[site]++
	f := inj.faults[site]
	if f == nil {
		inj.mu.Unlock()
		return nil
	}
	after := f.After
	if after <= 0 {
		after = 1
	}
	if inj.hits[site] < after {
		inj.mu.Unlock()
		return nil
	}
	delete(inj.faults, site) // one-shot
	inj.mu.Unlock()

	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Do != nil {
		f.Do()
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	return f.Err
}

// Arm installs a one-shot fault at a site, replacing any fault already
// armed there. The site's hit count is reset so After counts from now.
func (inj *Injector) Arm(site string, f Fault) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	cp := f
	inj.faults[site] = &cp
	inj.hits[site] = 0
}

// Disarm removes the fault armed at a site, if any.
func (inj *Injector) Disarm(site string) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	delete(inj.faults, site)
}

// Armed reports whether a fault is still pending at the site — false
// once it has fired (one-shot) or was never armed.
func (inj *Injector) Armed(site string) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.faults[site] != nil
}

// Hits returns how many times a site has been passed since it was last
// armed (or since Enable).
func (inj *Injector) Hits(site string) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.hits[site]
}

// Seen returns every site name observed so far, sorted — the site
// inventory a sweep test iterates after one clean recording run.
func (inj *Injector) Seen() []string {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]string, 0, len(inj.hits))
	for s := range inj.hits {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
