package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("enabled with no injector")
	}
	if err := Hit("anything"); err != nil {
		t.Fatalf("disabled Hit returned %v", err)
	}
}

func TestErrorFaultFiresOnceAtAfter(t *testing.T) {
	inj := Enable()
	t.Cleanup(Disable)
	boom := errors.New("boom")
	inj.Arm("site", Fault{Err: boom, After: 3})
	for i := 1; i <= 2; i++ {
		if err := Hit("site"); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if err := Hit("site"); !errors.Is(err, boom) {
		t.Fatalf("hit 3: got %v, want boom", err)
	}
	// One-shot: disarmed after firing.
	if inj.Armed("site") {
		t.Fatal("still armed after firing")
	}
	if err := Hit("site"); err != nil {
		t.Fatalf("hit 4 after one-shot: %v", err)
	}
	if got := inj.Hits("site"); got != 4 {
		t.Fatalf("hits = %d, want 4", got)
	}
}

func TestDoCallbackAndPanic(t *testing.T) {
	inj := Enable()
	t.Cleanup(Disable)
	ran := false
	inj.Arm("cb", Fault{Do: func() { ran = true }, Err: errors.New("x")})
	if err := Hit("cb"); err == nil || !ran {
		t.Fatalf("callback fault: err=%v ran=%t", err, ran)
	}

	inj.Arm("pan", Fault{Panic: "kaboom"})
	defer func() {
		if p := recover(); p != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", p)
		}
	}()
	Hit("pan")
	t.Fatal("unreachable: panic fault did not panic")
}

func TestDelayFault(t *testing.T) {
	inj := Enable()
	t.Cleanup(Disable)
	inj.Arm("slow", Fault{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Hit("slow"); err != nil {
		t.Fatalf("delay-only fault returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("slept %v, want >= 20ms", d)
	}
}

func TestSeenRecordsUnarmedSites(t *testing.T) {
	inj := Enable()
	t.Cleanup(Disable)
	Hit("b")
	Hit("a")
	Hit("a")
	got := inj.Seen()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Seen() = %v", got)
	}
}

func TestArmResetsHitCount(t *testing.T) {
	inj := Enable()
	t.Cleanup(Disable)
	Hit("s")
	Hit("s")
	inj.Arm("s", Fault{Err: errors.New("e"), After: 2})
	if err := Hit("s"); err != nil {
		t.Fatalf("first post-arm hit fired: %v", err)
	}
	if err := Hit("s"); err == nil {
		t.Fatal("second post-arm hit did not fire")
	}
}
