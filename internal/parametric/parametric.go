// Package parametric implements the hybrid the paper proposes as future
// work (§4): "the query optimizer can try to anticipate the most common
// cases that might arise at run-time and produce a parameterized plan
// that covers these possibilities. At query execution time, statistics
// can be observed/collected to determine which plan to choose ... If a
// situation arises at run-time that is not covered by the common cases
// anticipated by the query optimizer, dynamic re-optimization can be
// used."
//
// The unknowns a parametric plan covers here are host-variable
// selectivities — the run-time parameters of Graefe & Ward's dynamic
// plans [8] and Ioannidis et al.'s parametric optimization [10]. Prepare
// enumerates one plan per anticipated selectivity scenario and dedupes
// structurally identical ones; Choose evaluates the actual bound values
// against the catalog's histograms (the choose-plan operator's job) and
// picks the candidate whose scenario is nearest in log-selectivity
// space. The chosen plan then executes under the regular re-optimizing
// dispatcher, covering the unanticipated cases.
package parametric

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
)

// DefaultScenarios are the anticipated host-variable selectivities: a
// highly selective binding, the textbook default, and a binding that
// keeps everything.
var DefaultScenarios = []float64{0.01, 1.0 / 3.0, 1.0}

// OptimizerConfig carries the knobs every candidate is planned with.
type OptimizerConfig struct {
	Weights          storage.CostWeights
	MemBudget        float64
	PoolPages        float64
	DisableIndexJoin bool
}

// Candidate is one member of the parametric plan.
type Candidate struct {
	// Scenario is the assumed host-variable selectivity.
	Scenario float64
	// Shape is the structural signature of the plan (join order and
	// methods); candidates with equal shapes are merged.
	Shape string
	// Scenarios lists every scenario that produced this shape.
	Scenarios []float64
}

// Prepared is a compiled parametric plan.
type Prepared struct {
	cat        *catalog.Catalog
	cfg        OptimizerConfig
	stmt       *sql.SelectStmt
	query      *optimizer.Query
	Candidates []Candidate
}

// Prepare analyzes the statement and enumerates candidate plans across
// the scenarios. Statements without host variables yield a single
// candidate.
func Prepare(cat *catalog.Catalog, src string, cfg OptimizerConfig, scenarios []float64) (*Prepared, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	q, err := optimizer.Analyze(cat, stmt)
	if err != nil {
		return nil, err
	}
	if len(scenarios) == 0 {
		scenarios = DefaultScenarios
	}
	p := &Prepared{cat: cat, cfg: cfg, stmt: stmt, query: q}

	byShape := map[string]*Candidate{}
	var order []string
	for _, s := range scenarios {
		res, err := p.optimize(s)
		if err != nil {
			return nil, err
		}
		shape := Shape(res.Root)
		if c, ok := byShape[shape]; ok {
			c.Scenarios = append(c.Scenarios, s)
			continue
		}
		byShape[shape] = &Candidate{Scenario: s, Shape: shape, Scenarios: []float64{s}}
		order = append(order, shape)
	}
	for _, shape := range order {
		p.Candidates = append(p.Candidates, *byShape[shape])
	}
	return p, nil
}

// optimize plans the statement under one scenario. Analysis is redone so
// each Result owns fresh, independently-mutable annotations.
func (p *Prepared) optimize(scenario float64) (*optimizer.Result, error) {
	q, err := optimizer.Analyze(p.cat, p.stmt)
	if err != nil {
		return nil, err
	}
	opt := &optimizer.Optimizer{
		Weights:            p.cfg.Weights,
		MemBudget:          p.cfg.MemBudget,
		PoolPages:          p.cfg.PoolPages,
		DisableIndexJoin:   p.cfg.DisableIndexJoin,
		HostVarSelectivity: scenario,
	}
	return opt.Optimize(q)
}

// Choose evaluates the actual host-variable bindings against catalog
// statistics and returns the candidate plan whose scenario is nearest to
// the observed selectivity, ready for execution. This is the start-up
// decision of a choose-plan operator: it needs no data access, only the
// catalog.
func (p *Prepared) Choose(params plan.Params) (*optimizer.Result, float64, error) {
	actual := p.ActualSelectivity(params)
	best := p.Candidates[0]
	bestDist := math.Inf(1)
	for _, c := range p.Candidates {
		// Compare against the geometric mean of the scenarios that
		// mapped to this shape.
		for _, s := range c.Scenarios {
			d := math.Abs(math.Log(math.Max(actual, 1e-6)) - math.Log(math.Max(s, 1e-6)))
			if d < bestDist {
				bestDist = d
				best = c
				best.Scenario = s
			}
		}
	}
	res, err := p.optimize(best.Scenario)
	if err != nil {
		return nil, 0, err
	}
	return res, best.Scenario, nil
}

// ActualSelectivity estimates the geometric-mean selectivity of the
// host-variable predicates under the given bindings, by substituting the
// bound values for the host variables and consulting the catalog
// histograms.
func (p *Prepared) ActualSelectivity(params plan.Params) float64 {
	product := 1.0
	n := 0
	for ri := range p.query.Rels {
		for _, pr := range p.query.Rels[ri].LocalPreds {
			bound, changed := substituteParams(pr.AST, params)
			if !changed {
				continue
			}
			product *= p.query.LocalSelectivity(ri, bound)
			n++
		}
	}
	if n == 0 {
		return 1.0 / 3.0
	}
	return math.Pow(product, 1/float64(n))
}

// substituteParams rewrites a predicate with host variables replaced by
// their bound literal values, reporting whether any substitution
// happened.
func substituteParams(p sql.Predicate, params plan.Params) (sql.Predicate, bool) {
	changed := false
	var subst func(e sql.Expr) sql.Expr
	subst = func(e sql.Expr) sql.Expr {
		switch x := e.(type) {
		case *sql.HostVar:
			if v, ok := params[x.Name]; ok {
				changed = true
				return &sql.Literal{Value: v}
			}
			return x
		case *sql.BinaryExpr:
			return &sql.BinaryExpr{Op: x.Op, Left: subst(x.Left), Right: subst(x.Right)}
		default:
			return e
		}
	}
	var out sql.Predicate
	switch x := p.(type) {
	case *sql.ComparePred:
		out = &sql.ComparePred{Op: x.Op, Left: subst(x.Left), Right: subst(x.Right)}
	case *sql.BetweenPred:
		out = &sql.BetweenPred{Expr: subst(x.Expr), Lo: subst(x.Lo), Hi: subst(x.Hi)}
	case *sql.InPred:
		list := make([]sql.Expr, len(x.List))
		for i, e := range x.List {
			list[i] = subst(e)
		}
		out = &sql.InPred{Expr: subst(x.Expr), List: list}
	case *sql.LikePred:
		out = &sql.LikePred{Expr: subst(x.Expr), Pattern: x.Pattern}
	default:
		out = p
	}
	return out, changed
}

// Shape renders a plan's structural signature: operator kinds, join
// order, and join methods — everything that distinguishes parametric
// candidates, nothing that doesn't (estimates, grants).
func Shape(n plan.Node) string {
	var b strings.Builder
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		switch x := n.(type) {
		case *plan.Scan:
			fmt.Fprintf(&b, "scan(%s)", x.Binding)
			return
		case *plan.HashJoin:
			b.WriteString("hj(")
			walk(x.Build)
			b.WriteByte(',')
			walk(x.Probe)
			b.WriteByte(')')
			return
		case *plan.IndexJoin:
			b.WriteString("ij(")
			walk(x.Outer)
			fmt.Fprintf(&b, ",%s)", x.Binding)
			return
		}
		fmt.Fprintf(&b, "%s(", n.Label())
		for i, c := range n.Children() {
			if i > 0 {
				b.WriteByte(',')
			}
			walk(c)
		}
		b.WriteByte(')')
	}
	walk(n)
	return b.String()
}
