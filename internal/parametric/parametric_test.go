package parametric

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/histogram"
	"repro/internal/plan"
	"repro/internal/reopt"
	"repro/internal/storage"
	"repro/internal/types"
)

type env struct {
	cat   *catalog.Catalog
	pool  *storage.BufferPool
	meter *storage.CostMeter
}

// newEnv builds the Figure-6-style fixture: a tiny selectivity scenario
// favors an indexed join into the big rel3, a keep-everything scenario
// favors a hash join.
func newEnv(t *testing.T) *env {
	t.Helper()
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	pool := storage.NewBufferPool(storage.NewDisk(m), 8192)
	cat := catalog.New(pool)
	mk := func(name string, rows, fkMod int) {
		tbl, err := cat.CreateTable(name, types.NewSchema(
			types.Column{Name: name + "_pk", Kind: types.KindInt, Key: true},
			types.Column{Name: name + "_fk", Kind: types.KindInt},
			types.Column{Name: name + "_grp", Kind: types.KindInt},
			types.Column{Name: name + "_val", Kind: types.KindFloat},
		))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			tbl.Insert(types.Tuple{
				types.NewInt(int64(i)), types.NewInt(int64(i % fkMod)),
				types.NewInt(int64(i % 10)), types.NewFloat(float64(i % 1000)),
			})
		}
		if err := cat.Analyze(name, catalog.AnalyzeOptions{Family: histogram.MaxDiff}); err != nil {
			t.Fatal(err)
		}
	}
	mk("rel1", 1350, 4000)
	mk("rel2", 4000, 60000)
	mk("rel3", 60000, 5)
	cat.CreateIndex("rel3", "rel3_pk")
	return &env{cat: cat, pool: pool, meter: m}
}

const paramQuery = `select rel1_grp, count(*) as cnt from rel1, rel2, rel3
	where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
	and rel1_val < :v1 and rel1_grp < :v2 group by rel1_grp`

func cfg() OptimizerConfig {
	return OptimizerConfig{Weights: storage.DefaultCostWeights(), MemBudget: 32 << 20, PoolPages: 8192}
}

func TestPrepareEnumeratesDistinctShapes(t *testing.T) {
	e := newEnv(t)
	p, err := Prepare(e.cat, paramQuery, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Candidates) < 2 {
		for _, c := range p.Candidates {
			t.Logf("candidate %v: %s", c.Scenarios, c.Shape)
		}
		t.Fatalf("only %d candidate shapes; scenarios should disagree on this fixture", len(p.Candidates))
	}
	// The selective scenario should use the index join; the
	// keep-everything scenario should not.
	shapes := map[float64]string{}
	for _, c := range p.Candidates {
		for _, s := range c.Scenarios {
			shapes[s] = c.Shape
		}
	}
	if !strings.Contains(shapes[0.01], "ij(") {
		t.Errorf("selective scenario shape = %s, want an index join", shapes[0.01])
	}
	if strings.Contains(shapes[1.0], "ij(") {
		t.Errorf("keep-all scenario shape = %s, want hash joins only", shapes[1.0])
	}
}

func TestPrepareNoHostVarsSingleCandidate(t *testing.T) {
	e := newEnv(t)
	p, err := Prepare(e.cat, "select rel1_grp, count(*) as cnt from rel1 group by rel1_grp", cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Candidates) != 1 {
		t.Errorf("candidates = %d, want 1 for a host-var-free query", len(p.Candidates))
	}
}

func TestActualSelectivity(t *testing.T) {
	e := newEnv(t)
	p, err := Prepare(e.cat, paramQuery, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Bindings that keep everything.
	all := plan.Params{"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9)}
	if got := p.ActualSelectivity(all); got < 0.9 {
		t.Errorf("keep-all selectivity = %g, want ~1", got)
	}
	// Bindings that keep ~1%.
	few := plan.Params{"v1": types.NewFloat(10), "v2": types.NewFloat(1e9)}
	if got := p.ActualSelectivity(few); got > 0.3 {
		t.Errorf("selective bindings selectivity = %g, want small", got)
	}
}

func TestChoosePicksMatchingScenario(t *testing.T) {
	e := newEnv(t)
	p, err := Prepare(e.cat, paramQuery, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, scenario, err := p.Choose(plan.Params{"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9)})
	if err != nil {
		t.Fatal(err)
	}
	if scenario != 1.0 {
		t.Errorf("chose scenario %g for keep-everything bindings, want 1.0", scenario)
	}
	if strings.Contains(Shape(res.Root), "ij(") {
		t.Errorf("keep-all choice still contains an index join:\n%s", plan.Format(res.Root))
	}

	_, scenario, err = p.Choose(plan.Params{"v1": types.NewFloat(5), "v2": types.NewFloat(0)})
	if err != nil {
		t.Fatal(err)
	}
	if scenario != 0.01 {
		t.Errorf("chose scenario %g for empty bindings, want 0.01", scenario)
	}
}

// TestHybridBeatsStaticMistake runs the end-to-end hybrid: the static
// optimizer (default selectivities) picks the blow-up-prone index join;
// the parametric plan, seeing the actual bindings, starts with the hash
// join directly — no mid-query switch needed for the anticipated case.
func TestHybridBeatsStaticMistake(t *testing.T) {
	e := newEnv(t)
	params := plan.Params{"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9)}
	ctx := func() *exec.Ctx {
		e.pool.EvictAll()
		return &exec.Ctx{Pool: e.pool, Meter: e.meter, Params: params}
	}
	measure := func(f func(c *exec.Ctx) ([]types.Tuple, error)) (float64, []types.Tuple) {
		c := ctx()
		before := e.meter.Snapshot()
		rows, err := f(c)
		if err != nil {
			t.Fatal(err)
		}
		return e.meter.Snapshot().Sub(before).Cost(), rows
	}

	rcfg := reopt.DefaultConfig(reopt.ModeOff)
	rcfg.PoolPages = 8192
	staticCost, staticRows := measure(func(c *exec.Ctx) ([]types.Tuple, error) {
		d := reopt.New(e.cat, rcfg)
		rows, _, err := d.RunSQL(paramQuery, params, c)
		return rows, err
	})

	p, err := Prepare(e.cat, paramQuery, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hybridCost, hybridRows := measure(func(c *exec.Ctx) ([]types.Tuple, error) {
		res, _, err := p.Choose(params)
		if err != nil {
			return nil, err
		}
		hcfg := reopt.DefaultConfig(reopt.ModeFull)
		hcfg.PoolPages = 8192
		d := reopt.New(e.cat, hcfg)
		rows, st, err := d.RunPlan(res, params, c)
		if err != nil {
			return nil, err
		}
		if st.PlanSwitches != 0 {
			t.Errorf("hybrid needed %d switches for an anticipated case", st.PlanSwitches)
		}
		return rows, err
	})

	if len(staticRows) != len(hybridRows) {
		t.Fatalf("result mismatch: %d vs %d rows", len(staticRows), len(hybridRows))
	}
	if hybridCost >= staticCost {
		t.Errorf("hybrid %0.f did not beat static mistake %.0f", hybridCost, staticCost)
	}
}

func TestShapeStability(t *testing.T) {
	e := newEnv(t)
	p, _ := Prepare(e.cat, paramQuery, cfg(), nil)
	res1, _, _ := p.Choose(plan.Params{"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9)})
	res2, _, _ := p.Choose(plan.Params{"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9)})
	if Shape(res1.Root) != Shape(res2.Root) {
		t.Error("Choose is not deterministic")
	}
}
