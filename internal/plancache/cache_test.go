package plancache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/histogram"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

type env struct {
	cat  *catalog.Catalog
	pool *storage.BufferPool
}

func newEnv(t *testing.T) *env {
	t.Helper()
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	pool := storage.NewBufferPool(storage.NewDisk(m), 512)
	cat := catalog.New(pool)
	for _, spec := range []struct {
		name string
		rows int
	}{{"t1", 400}, {"t2", 100}} {
		tbl, err := cat.CreateTable(spec.name, types.NewSchema(
			types.Column{Name: spec.name + "_pk", Kind: types.KindInt, Key: true},
			types.Column{Name: spec.name + "_fk", Kind: types.KindInt},
			types.Column{Name: spec.name + "_val", Kind: types.KindFloat},
		))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < spec.rows; i++ {
			if err := tbl.Insert(types.Tuple{
				types.NewInt(int64(i)),
				types.NewInt(int64(i % 100)),
				types.NewFloat(float64(i)),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := cat.Analyze(spec.name, catalog.AnalyzeOptions{Family: histogram.MaxDiff}); err != nil {
			t.Fatal(err)
		}
	}
	return &env{cat: cat, pool: pool}
}

func (e *env) optimize(t *testing.T, src string) (*sql.SelectStmt, *optimizer.Result) {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := optimizer.Analyze(e.cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	opt := &optimizer.Optimizer{Weights: storage.DefaultCostWeights(), MemBudget: 32 << 20}
	res, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt, res
}

const paramQuery = `select t1_val from t1, t2
	where t1.t1_fk = t2.t2_pk and t1_val < :cut`

func TestHitOnResubmittedParameterizedSQL(t *testing.T) {
	e := newEnv(t)
	c := New(16, e.cat.SchemaVersion, e.cat.TableVersion)
	stmt, res := e.optimize(t, paramQuery)
	key := Key(stmt, "fp")
	if c.Get(key) != nil {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, res)

	// Re-submission with different whitespace normalizes to the same key.
	stmt2, _ := e.optimize(t, "select t1_val from t1, t2 where t1.t1_fk = t2.t2_pk and t1_val < :cut")
	if Key(stmt2, "fp") != key {
		t.Fatalf("normalized keys differ:\n%s\n%s", Key(stmt2, "fp"), key)
	}
	got := c.Get(key)
	if got == nil {
		t.Fatal("miss on re-submitted SQL")
	}
	if got == res || got.Root == res.Root {
		t.Fatal("cache returned the stored plan itself, not a clone")
	}
	if plan.Format(got.Root) != plan.Format(res.Root) {
		t.Errorf("cloned plan differs:\n%s\nvs\n%s", plan.Format(got.Root), plan.Format(res.Root))
	}
	// Mutating the clone (as execution does) must not poison the cache.
	got.Root.Est().Rows = -1
	again := c.Get(key)
	if again.Root.Est().Rows == -1 {
		t.Error("executing a hit mutated the cached plan")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits 1 miss", st)
	}
}

func TestDifferentFingerprintsDoNotShare(t *testing.T) {
	e := newEnv(t)
	stmt, _ := e.optimize(t, paramQuery)
	if Key(stmt, "mem=1048576") == Key(stmt, "mem=2097152") {
		t.Error("different optimizer fingerprints share a key")
	}
}

func TestHostVarSignatureInKey(t *testing.T) {
	e := newEnv(t)
	stmt, _ := e.optimize(t, paramQuery)
	vars := HostVars(stmt)
	if len(vars) != 1 || vars[0] != "cut" {
		t.Errorf("HostVars = %v, want [cut]", vars)
	}
	stmt2, _ := e.optimize(t, `select t1_val from t1, t2
		where t1.t1_fk = t2.t2_pk and t1_val < 5`)
	if len(HostVars(stmt2)) != 0 {
		t.Errorf("literal query has host vars: %v", HostVars(stmt2))
	}
}

func TestMissAfterCatalogStatsChange(t *testing.T) {
	e := newEnv(t)
	c := New(16, e.cat.SchemaVersion, e.cat.TableVersion)
	stmt, res := e.optimize(t, paramQuery)
	key := Key(stmt, "fp")
	c.Put(key, res)
	if c.Get(key) == nil {
		t.Fatal("warm entry missed")
	}

	// ANALYZE bumps the statistics version: the entry is now stale.
	if err := e.cat.Analyze("t1", catalog.AnalyzeOptions{Family: histogram.MaxDiff}); err != nil {
		t.Fatal(err)
	}
	if c.Get(key) != nil {
		t.Fatal("hit on a plan optimized against stale statistics")
	}
	if st := c.Stats(); st.Invalidations != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 invalidation and 0 entries", st)
	}

	// Re-populated under the new version, it serves hits again.
	c.Put(key, res)
	if c.Get(key) == nil {
		t.Error("miss after re-population")
	}
}

func TestTempTablesDoNotInvalidate(t *testing.T) {
	e := newEnv(t)
	c := New(16, e.cat.SchemaVersion, e.cat.TableVersion)
	stmt, res := e.optimize(t, paramQuery)
	key := Key(stmt, "fp")
	c.Put(key, res)

	// A mid-query materialization registers and drops a temp table;
	// the cache must survive it or every plan switch flushes it.
	heap := storage.NewHeapFile(e.pool)
	if _, err := e.cat.RegisterTemp("mqr_temp_x_1", types.NewSchema(
		types.Column{Name: "c", Kind: types.KindInt}), heap); err != nil {
		t.Fatal(err)
	}
	if err := e.cat.DropTable("mqr_temp_x_1"); err != nil {
		t.Fatal(err)
	}
	if c.Get(key) == nil {
		t.Error("temp-table churn invalidated the plan cache")
	}
}

func TestLRUEviction(t *testing.T) {
	e := newEnv(t)
	c := New(2, e.cat.SchemaVersion, e.cat.TableVersion)
	stmt, res := e.optimize(t, paramQuery)
	c.Put("k1", res)
	c.Put("k2", res)
	if c.Get("k1") == nil { // k1 now most recent
		t.Fatal("k1 missing")
	}
	c.Put("k3", res) // evicts k2
	if c.Get("k2") != nil {
		t.Error("LRU evicted the wrong entry")
	}
	if c.Get("k1") == nil || c.Get("k3") == nil {
		t.Error("recently-used entries evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	_ = stmt
}

// TestConcurrentGetPut races gets, puts, and invalidating ANALYZEs; run
// under -race this is the cache's thread-safety regression test.
func TestConcurrentGetPut(t *testing.T) {
	e := newEnv(t)
	c := New(8, e.cat.SchemaVersion, e.cat.TableVersion)
	stmt, res := e.optimize(t, paramQuery)
	_ = stmt
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", g%4)
			for i := 0; i < 200; i++ {
				if got := c.Get(key); got == nil {
					c.Put(key, res)
				} else {
					// Execution-style mutation of the clone.
					got.Root.Est().Rows += 1
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("stress saw no traffic: %+v", st)
	}
}

// TestScopedInvalidation is the per-table invalidation contract: a write
// transaction committing against t2 invalidates only cached plans that
// reference t2, leaving a t1-only plan live.
func TestScopedInvalidation(t *testing.T) {
	e := newEnv(t)
	c := New(16, e.cat.SchemaVersion, e.cat.TableVersion)

	t1Stmt, t1Res := e.optimize(t, "select t1_val from t1 where t1_pk < 10")
	t1Key := Key(t1Stmt, "fp")
	c.Put(t1Key, t1Res)

	joinStmt, joinRes := e.optimize(t, paramQuery)
	joinKey := Key(joinStmt, "fp")
	c.Put(joinKey, joinRes)

	// Commit a write to t2 only.
	t2, err := e.cat.Table("t2")
	if err != nil {
		t.Fatal(err)
	}
	tx := e.cat.BeginTxn()
	if err := tx.Insert(t2, types.Tuple{
		types.NewInt(10_000), types.NewInt(0), types.NewFloat(1),
	}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	if got := c.Get(t1Key); got == nil {
		t.Error("t1-only plan was invalidated by a write to t2")
	}
	if got := c.Get(joinKey); got != nil {
		t.Error("plan referencing t2 survived a write to t2")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", st.Invalidations)
	}
}
