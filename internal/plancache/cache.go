// Package plancache caches optimized query plans so re-submitted SQL
// skips analysis and join enumeration. Entries are keyed on the
// normalized statement text plus the host-variable signature — the
// engine's plans are parameter-independent (host variables get a default
// selectivity at optimize time and bind at execution), so one cached
// plan serves every binding of the same parameterized query — and on an
// optimizer fingerprint (memory budget, cost weights, ablation flags)
// so differently-configured sessions never share a plan shaped for the
// wrong cost model.
//
// Every hit hands out a deep clone of the pristine plan: the dispatcher
// mutates plan annotations (improved estimates, memory grants) and the
// tree itself (SCIA collector insertion) during execution, so the cached
// original must never be executed directly.
//
// Invalidation is versioned, not evented, and scoped to what a plan
// actually references: entries record the catalog's schema version plus
// the per-table statistics version of every table in the plan's FROM
// list, and are dropped lazily when a lookup finds any of them moved.
// A committed write or ANALYZE on one table therefore invalidates only
// the plans that read it; CREATE/DROP TABLE and CREATE INDEX move the
// schema version and flush everything (cheap, rare, and renaming can
// change what any statement resolves to). Temp tables materialized by
// mid-query re-optimization bump neither — they are private to one
// query and would otherwise flush the cache on every plan switch.
package plancache

import (
	"container/list"
	"sort"
	"strings"
	"sync"

	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
)

// Cache is a concurrency-safe LRU of optimized plans.
type Cache struct {
	mu        sync.Mutex
	cap       int
	entries   map[string]*entry
	lru       *list.List // front = most recent; elements hold keys
	schemaVer func() int64
	tableVer  func(name string) int64

	hits, misses, invalidations, evictions int64
}

type entry struct {
	res       *optimizer.Result
	schemaVer int64
	// tables records the statistics version of every referenced table
	// at insertion time.
	tables map[string]int64
	elem   *list.Element
}

// New returns a cache of at most capacity plans. schemaVer reports the
// catalog's structural version (CREATE/DROP TABLE, CREATE INDEX);
// tableVer reports one table's statistics version (bumped by ANALYZE and
// committed writes). Entries whose recorded versions lag either are
// invalid. Nil functions disable the corresponding check.
func New(capacity int, schemaVer func() int64, tableVer func(name string) int64) *Cache {
	if capacity <= 0 {
		capacity = 256
	}
	if schemaVer == nil {
		schemaVer = func() int64 { return 0 }
	}
	if tableVer == nil {
		tableVer = func(string) int64 { return 0 }
	}
	return &Cache{
		cap:       capacity,
		entries:   make(map[string]*entry),
		lru:       list.New(),
		schemaVer: schemaVer,
		tableVer:  tableVer,
	}
}

// Get returns a deep clone of the cached plan for key, or nil on a miss.
// A stale entry (catalog statistics changed since it was stored) counts
// as a miss and is dropped.
func (c *Cache) Get(key string) *optimizer.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	if !c.validLocked(e) {
		c.removeLocked(key, e)
		c.invalidations++
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(e.elem)
	return cloneResult(e.res)
}

// Put stores a pristine plan under key. The cache keeps its own clone,
// so the caller may execute (and thereby mutate) res afterwards.
func (c *Cache) Put(key string, res *optimizer.Result) {
	clone := cloneResult(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.res = clone
		e.schemaVer = c.schemaVer()
		e.tables = c.tableVersions(res)
		c.lru.MoveToFront(e.elem)
		return
	}
	for len(c.entries) >= c.cap {
		back := c.lru.Back()
		if back == nil {
			break
		}
		k := back.Value.(string)
		c.removeLocked(k, c.entries[k])
		c.evictions++
	}
	e := &entry{res: clone, schemaVer: c.schemaVer(), tables: c.tableVersions(res)}
	e.elem = c.lru.PushFront(key)
	c.entries[key] = e
}

// validLocked reports whether an entry's recorded versions still match
// the catalog: the schema version, and each referenced table's version.
func (c *Cache) validLocked(e *entry) bool {
	if e.schemaVer != c.schemaVer() {
		return false
	}
	for name, ver := range e.tables {
		if c.tableVer(name) != ver {
			return false
		}
	}
	return true
}

// tableVersions snapshots the statistics version of every table the
// plan references.
func (c *Cache) tableVersions(res *optimizer.Result) map[string]int64 {
	if res.Query == nil {
		return nil
	}
	tables := make(map[string]int64, len(res.Query.Rels))
	for i := range res.Query.Rels {
		if t := res.Query.Rels[i].Table; t != nil {
			tables[t.Name] = c.tableVer(t.Name)
		}
	}
	return tables
}

func (c *Cache) removeLocked(key string, e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, key)
}

// Stats reports cache traffic.
type Stats struct {
	Entries       int
	Hits          int64
	Misses        int64
	Invalidations int64 // misses caused by a statistics-version change
	Evictions     int64
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       len(c.entries),
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
	}
}

// cloneResult copies the parts of an optimizer result that execution
// mutates: the plan tree (annotations and collector insertion) and the
// join order slice. The analyzed Query is shared — the dispatcher only
// reads it (predicate ASTs, relation bindings) when generating
// remainder SQL.
func cloneResult(res *optimizer.Result) *optimizer.Result {
	return &optimizer.Result{
		Root:            plan.Clone(res.Root),
		Query:           res.Query,
		Order:           append([]int(nil), res.Order...),
		PlansConsidered: res.PlansConsidered,
	}
}

// Key builds the cache key for a parsed statement: normalized SQL text
// (rendered from the AST, so whitespace and case differences in the
// source collapse), the sorted host-variable signature, and the
// caller's optimizer fingerprint.
func Key(stmt *sql.SelectStmt, fingerprint string) string {
	vars := HostVars(stmt)
	return stmt.SQL() + "|vars=" + strings.Join(vars, ",") + "|" + fingerprint
}

// HostVars returns the sorted set of host-variable names a statement
// binds — the parameter signature of a prepared query.
func HostVars(stmt *sql.SelectStmt) []string {
	seen := map[string]bool{}
	var walkExpr func(e sql.Expr)
	walkExpr = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.HostVar:
			seen[x.Name] = true
		case *sql.BinaryExpr:
			walkExpr(x.Left)
			walkExpr(x.Right)
		case *sql.AggExpr:
			if x.Arg != nil {
				walkExpr(x.Arg)
			}
		}
	}
	walkPred := func(p sql.Predicate) {
		switch x := p.(type) {
		case *sql.ComparePred:
			walkExpr(x.Left)
			walkExpr(x.Right)
		case *sql.BetweenPred:
			walkExpr(x.Expr)
			walkExpr(x.Lo)
			walkExpr(x.Hi)
		case *sql.InPred:
			walkExpr(x.Expr)
			for _, e := range x.List {
				walkExpr(e)
			}
		case *sql.LikePred:
			walkExpr(x.Expr)
		}
	}
	for _, item := range stmt.Select {
		walkExpr(item.Expr)
	}
	for _, p := range stmt.Where {
		walkPred(p)
	}
	for _, g := range stmt.GroupBy {
		walkExpr(g)
	}
	for _, o := range stmt.OrderBy {
		walkExpr(o.Expr)
	}
	vars := make([]string, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}
