package sketch

import (
	"math"
	"testing"
)

func TestHybridMergeStaysExactUnderThreshold(t *testing.T) {
	a := NewHybridDistinct(100, 64)
	b := NewHybridDistinct(100, 64)
	for i := uint64(0); i < 30; i++ {
		a.AddHash(i)
	}
	for i := uint64(20); i < 60; i++ { // overlaps [20,30)
		b.AddHash(i)
	}
	a.Merge(b)
	if got := a.Estimate(); got != 60 {
		t.Errorf("merged exact estimate = %g, want 60", got)
	}
}

func TestHybridMergeDegradesOnUnionOverflow(t *testing.T) {
	a := NewHybridDistinct(100, 64)
	b := NewHybridDistinct(100, 64)
	for i := uint64(0); i < 80; i++ {
		a.AddHash(hash64(i))
	}
	for i := uint64(80); i < 160; i++ {
		b.AddHash(hash64(i))
	}
	a.Merge(b)
	// 160 > threshold: the union must have degraded to the FM sketch,
	// whose estimate is approximate but in the right ballpark.
	got := a.Estimate()
	if rel := math.Abs(got-160) / 160; rel > 0.5 {
		t.Errorf("degraded estimate = %g, want within 50%% of 160", got)
	}
}

// TestHybridMergeMatchesSingleStream: because FM bitmaps OR exactly and
// the hash function is shared, partitioned counting followed by a merge
// gives the identical estimate to one counter over the whole stream —
// in both exact and sketch regimes.
func TestHybridMergeMatchesSingleStream(t *testing.T) {
	for _, n := range []uint64{50, 5000} {
		single := NewHybridDistinct(1024, 64)
		parts := make([]*HybridDistinct, 4)
		for i := range parts {
			parts[i] = NewHybridDistinct(1024, 64)
		}
		for i := uint64(0); i < n; i++ {
			h := hash64(i)
			single.AddHash(h)
			parts[i%4].AddHash(h)
		}
		merged := parts[0]
		for _, p := range parts[1:] {
			merged.Merge(p)
		}
		if got, want := merged.Estimate(), single.Estimate(); got != want {
			t.Errorf("n=%d: merged estimate %g != single-stream %g", n, got, want)
		}
	}
}

func TestHybridMergeSketchSideForcesDegrade(t *testing.T) {
	a := NewHybridDistinct(10, 64)
	b := NewHybridDistinct(10, 64)
	a.AddHash(hash64(1))
	for i := uint64(0); i < 100; i++ { // b degrades
		b.AddHash(hash64(i))
	}
	a.Merge(b)
	if got := a.Estimate(); got < 10 {
		t.Errorf("merging a degraded counter kept an exact estimate of %g", got)
	}
}

// hash64 is a splitmix64-style scrambler so test hashes exercise the
// sketch's trailing-zero distribution like real value hashes do.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
