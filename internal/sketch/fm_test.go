package sketch

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/types"
)

func TestDistinctCounterAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 50000} {
		c := NewDistinctCounter(64)
		for i := 0; i < n; i++ {
			// Add each value several times; duplicates must not
			// inflate the estimate.
			v := types.NewString(fmt.Sprintf("key-%d", i))
			c.Add(v)
			c.Add(v)
			c.Add(v)
		}
		est := c.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		if relErr > 0.35 {
			t.Errorf("n=%d: estimate %.0f, relative error %.2f", n, est, relErr)
		}
	}
}

func TestDistinctCounterMerge(t *testing.T) {
	a := NewDistinctCounter(64)
	b := NewDistinctCounter(64)
	for i := 0; i < 5000; i++ {
		a.Add(types.NewInt(int64(i)))
	}
	for i := 2500; i < 7500; i++ {
		b.Add(types.NewInt(int64(i)))
	}
	a.Merge(b)
	est := a.Estimate()
	if math.Abs(est-7500)/7500 > 0.35 {
		t.Errorf("merged estimate %.0f, want ~7500", est)
	}
}

func TestDistinctCounterMergeSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Merge did not panic")
		}
	}()
	NewDistinctCounter(64).Merge(NewDistinctCounter(32))
}

func TestDistinctCounterRoundsUpToPowerOfTwo(t *testing.T) {
	c := NewDistinctCounter(33)
	if len(c.maps) != 64 {
		t.Errorf("maps = %d, want 64", len(c.maps))
	}
	c = NewDistinctCounter(0)
	if len(c.maps) != 1 {
		t.Errorf("maps = %d, want 1", len(c.maps))
	}
}

func TestExactDistinct(t *testing.T) {
	e := NewExactDistinct()
	for i := 0; i < 100; i++ {
		e.Add(types.NewInt(int64(i % 10)))
	}
	if got := e.Estimate(); got != 10 {
		t.Errorf("ExactDistinct = %g, want 10", got)
	}
	// Mixed kinds that compare equal count once (2 and 2.0 share a hash).
	e2 := NewExactDistinct()
	e2.Add(types.NewInt(2))
	e2.Add(types.NewFloat(2.0))
	if got := e2.Estimate(); got != 1 {
		t.Errorf("2 and 2.0 counted as %g distinct values", got)
	}
}
