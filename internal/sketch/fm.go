// Package sketch implements Flajolet–Martin probabilistic counting
// ("Probabilistic Counting Algorithms for Data Base Applications", JCSS
// 1985), the bitmap approach the paper cites ([6]) for estimating the
// number of unique values of an attribute in one streaming pass.
package sketch

import (
	"math"
	"math/bits"

	"repro/internal/types"
)

// fmPhi is the Flajolet–Martin correction constant: the expected position
// of the lowest unset bit is log2(phi * n).
const fmPhi = 0.77351

// DistinctCounter estimates the number of distinct values in a stream
// using PCSA (probabilistic counting with stochastic averaging): the hash
// space is split across m bitmaps and the estimates averaged, giving a
// standard error of about 0.78/sqrt(m).
type DistinctCounter struct {
	maps []uint64
}

// NewDistinctCounter returns a counter with m bitmaps; m must be a power
// of two (rounded up if not). m = 64 gives roughly 10% standard error in
// one 512-byte structure, matching the paper's "no I/O overhead" budget.
func NewDistinctCounter(m int) *DistinctCounter {
	if m < 1 {
		m = 1
	}
	// Round up to a power of two so hash bits split cleanly.
	p := 1
	for p < m {
		p <<= 1
	}
	return &DistinctCounter{maps: make([]uint64, p)}
}

// Add offers one value to the counter.
func (c *DistinctCounter) Add(v types.Value) {
	c.AddHash(v.Hash())
}

// AddHash offers a pre-computed 64-bit hash to the counter.
func (c *DistinctCounter) AddHash(h uint64) {
	m := uint64(len(c.maps))
	idx := h & (m - 1)
	rest := h / m
	// rho = position of the least significant 1 bit of the remaining
	// hash bits (0-based); all-zero rest maps to the top position.
	rho := bits.TrailingZeros64(rest | (1 << 63))
	c.maps[idx] |= 1 << uint(rho)
}

// Estimate returns the estimated number of distinct values added.
func (c *DistinctCounter) Estimate() float64 {
	m := float64(len(c.maps))
	sum := 0.0
	for _, bm := range c.maps {
		// R = index of the lowest zero bit.
		sum += float64(bits.TrailingZeros64(^bm))
	}
	mean := sum / m
	return m / fmPhi * math.Pow(2, mean)
}

// Clone returns an independent copy of the counter. The catalog clones
// sketches at commit so incremental stats maintenance can publish a new
// version without mutating state a concurrent reader may hold.
func (c *DistinctCounter) Clone() *DistinctCounter {
	return &DistinctCounter{maps: append([]uint64(nil), c.maps...)}
}

// Merge folds another counter's state into c. Both must have the same
// number of bitmaps. Merging supports combining per-partition counts.
func (c *DistinctCounter) Merge(o *DistinctCounter) {
	if len(c.maps) != len(o.maps) {
		panic("sketch: merging counters of different sizes")
	}
	for i := range c.maps {
		c.maps[i] |= o.maps[i]
	}
}

// ExactDistinct is the exact fallback used when the collector knows the
// stream is small: a hash set over value hashes. The SCIA decides which
// variant a collector uses based on the optimizer's cardinality estimate.
type ExactDistinct struct {
	seen map[uint64]struct{}
}

// NewExactDistinct returns an empty exact counter.
func NewExactDistinct() *ExactDistinct {
	return &ExactDistinct{seen: make(map[uint64]struct{})}
}

// Add offers one value.
func (e *ExactDistinct) Add(v types.Value) {
	e.seen[v.Hash()] = struct{}{}
}

// Estimate returns the number of distinct values seen (exact up to hash
// collisions, which are negligible at 64 bits).
func (e *ExactDistinct) Estimate() float64 { return float64(len(e.seen)) }

// HybridDistinct counts exactly until the set reaches a size threshold,
// then degrades to the FM sketch. PCSA is badly biased when the true
// cardinality is smaller than its bitmap count, so the collector uses
// this hybrid: small group counts (the interesting case for aggregate
// memory sizing) stay exact at bounded memory, large ones are sketched.
type HybridDistinct struct {
	threshold int
	exact     map[uint64]struct{}
	fm        *DistinctCounter
}

// NewHybridDistinct returns a hybrid counter that switches to an
// m-bitmap FM sketch once more than threshold distinct hashes are seen.
func NewHybridDistinct(threshold, m int) *HybridDistinct {
	if threshold < 1 {
		threshold = 1
	}
	return &HybridDistinct{
		threshold: threshold,
		exact:     make(map[uint64]struct{}),
		fm:        NewDistinctCounter(m),
	}
}

// Add offers one value.
func (h *HybridDistinct) Add(v types.Value) { h.AddHash(v.Hash()) }

// AddHash offers a pre-computed hash.
func (h *HybridDistinct) AddHash(hash uint64) {
	h.fm.AddHash(hash)
	if h.exact == nil {
		return
	}
	h.exact[hash] = struct{}{}
	if len(h.exact) > h.threshold {
		h.exact = nil // degrade to the sketch
	}
}

// Estimate returns the exact count while below the threshold, otherwise
// the FM estimate.
func (h *HybridDistinct) Estimate() float64 {
	if h.exact != nil {
		return float64(len(h.exact))
	}
	return h.fm.Estimate()
}

// Clone returns an independent copy of the hybrid counter, preserving
// its exact-or-sketched state and threshold.
func (h *HybridDistinct) Clone() *HybridDistinct {
	c := &HybridDistinct{threshold: h.threshold, fm: h.fm.Clone()}
	if h.exact != nil {
		c.exact = make(map[uint64]struct{}, len(h.exact))
		for k := range h.exact {
			c.exact[k] = struct{}{}
		}
	}
	return c
}

// Merge folds another hybrid counter into h, for combining per-partition
// collector states at a gather point. The FM sketches always merge (bitmap
// union is exact for FM); the exact sets union only while both sides are
// still exact and the union stays under h's threshold — otherwise the
// merged counter degrades to the sketch, the same transition Add makes.
func (h *HybridDistinct) Merge(o *HybridDistinct) {
	if o == nil {
		return
	}
	h.fm.Merge(o.fm)
	if h.exact == nil {
		return
	}
	if o.exact == nil {
		h.exact = nil
		return
	}
	for k := range o.exact {
		h.exact[k] = struct{}{}
	}
	if len(h.exact) > h.threshold {
		h.exact = nil
	}
}
