// Package reopt implements Dynamic Re-Optimization: the modified query
// scheduler/dispatcher of §3.1 that executes an annotated plan segment by
// segment, receives statistics-collector reports at pipeline boundaries,
// and acts on them — re-invoking the Memory Manager with improved
// estimates (§2.3) and, when Equations 1 and 2 say the current plan is
// likely sub-optimal and worth fixing, materializing the running
// operator's output to a temporary table and re-submitting SQL for the
// remainder of the query (§2.4, Figure 6).
package reopt

import (
	"fmt"
	"strings"

	"repro/internal/optimizer"
	"repro/internal/sql"
	"repro/internal/types"
)

// tempColumnName flattens a qualified intermediate column into a unique
// temp-table column name: rel1.joinattr3 -> rel1_joinattr3.
func tempColumnName(c types.Column) string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "_" + c.Name
}

// tempSchema derives the temp table's schema from a materialized
// intermediate schema. Key flags are dropped: uniqueness of a base key
// need not survive a join.
func tempSchema(mat *types.Schema) *types.Schema {
	cols := make([]types.Column, mat.Len())
	for i, c := range mat.Columns {
		cols[i] = types.Column{Name: tempColumnName(c), Kind: c.Kind}
	}
	return types.NewSchema(cols...)
}

// rewriter redirects column references of consumed relations at the temp
// table, following the paper's Figure 6: "SQL corresponding to the
// remainder of the query is generated in terms of this temporary file".
type rewriter struct {
	q        *optimizer.Query
	consumed map[int]bool // relation indexes materialized into the temp
	tempName string
}

// rewriteExpr returns a copy of e with consumed-relation references
// redirected. References it cannot resolve (select-list aliases in ORDER
// BY) pass through unchanged.
func (r *rewriter) rewriteExpr(e sql.Expr) sql.Expr {
	switch x := e.(type) {
	case *sql.ColumnRef:
		rel, col, err := r.q.Owner(x)
		if err != nil || !r.consumed[rel] {
			return &sql.ColumnRef{Table: x.Table, Name: x.Name}
		}
		c := r.q.Rels[rel].Schema.Columns[col]
		return &sql.ColumnRef{Table: r.tempName, Name: tempColumnName(c)}
	case *sql.Literal:
		return &sql.Literal{Value: x.Value}
	case *sql.HostVar:
		return &sql.HostVar{Name: x.Name}
	case *sql.BinaryExpr:
		return &sql.BinaryExpr{Op: x.Op, Left: r.rewriteExpr(x.Left), Right: r.rewriteExpr(x.Right)}
	case *sql.AggExpr:
		out := &sql.AggExpr{Func: x.Func}
		if x.Arg != nil {
			out.Arg = r.rewriteExpr(x.Arg)
		}
		return out
	default:
		return e
	}
}

func (r *rewriter) rewritePred(p sql.Predicate) sql.Predicate {
	switch x := p.(type) {
	case *sql.ComparePred:
		return &sql.ComparePred{Op: x.Op, Left: r.rewriteExpr(x.Left), Right: r.rewriteExpr(x.Right)}
	case *sql.BetweenPred:
		return &sql.BetweenPred{Expr: r.rewriteExpr(x.Expr), Lo: r.rewriteExpr(x.Lo), Hi: r.rewriteExpr(x.Hi)}
	case *sql.InPred:
		list := make([]sql.Expr, len(x.List))
		for i, e := range x.List {
			list[i] = r.rewriteExpr(e)
		}
		return &sql.InPred{Expr: r.rewriteExpr(x.Expr), List: list}
	case *sql.LikePred:
		return &sql.LikePred{Expr: r.rewriteExpr(x.Expr), Pattern: x.Pattern}
	default:
		return p
	}
}

// remainderStmt generates the SQL for the rest of a partially-executed
// query: the temp table replaces the consumed relations in FROM, consumed
// predicates (already applied inside the materialized prefix) disappear,
// and every other clause is rewritten in terms of the temp columns.
func remainderStmt(q *optimizer.Query, consumedMask uint32, tempName string) (*sql.SelectStmt, error) {
	consumed := map[int]bool{}
	for i := range q.Rels {
		if consumedMask&(1<<uint(i)) != 0 {
			consumed[i] = true
		}
	}
	if len(consumed) == 0 {
		return nil, fmt.Errorf("reopt: remainder with nothing consumed")
	}
	r := &rewriter{q: q, consumed: consumed, tempName: strings.ToLower(tempName)}
	orig := q.Stmt
	out := &sql.SelectStmt{Distinct: orig.Distinct, Limit: orig.Limit}

	for _, item := range orig.Select {
		alias := item.Alias
		if alias == "" {
			// Preserve the output column name across the rewrite: a
			// bare "f_grp" would otherwise render as temp1.rel_f_grp.
			if ref, ok := item.Expr.(*sql.ColumnRef); ok {
				alias = ref.Name
			}
		}
		out.Select = append(out.Select, sql.SelectItem{Expr: r.rewriteExpr(item.Expr), Alias: alias})
	}

	out.From = append(out.From, sql.TableRef{Name: r.tempName})
	for i, ref := range orig.From {
		if !consumed[i] {
			out.From = append(out.From, ref)
		}
	}

	for _, pr := range q.Preds {
		if pr.RelMask()&^consumedMask == 0 {
			continue // applied inside the materialized prefix
		}
		out.Where = append(out.Where, r.rewritePred(pr.AST))
	}

	for _, g := range orig.GroupBy {
		out.GroupBy = append(out.GroupBy, r.rewriteExpr(g))
	}

	// ORDER BY keys that name a select-list output (by alias, or by
	// matching the item's expression) must keep referring to the output
	// column, not be redirected at the temp table.
	aliasFor := map[string]string{}
	for oi, item := range orig.Select {
		if a := out.Select[oi].Alias; a != "" {
			aliasFor[item.Expr.SQL()] = a
			if item.Alias != "" {
				aliasFor[item.Alias] = a
			}
		}
	}
	for _, ob := range orig.OrderBy {
		if a, ok := aliasFor[ob.Expr.SQL()]; ok {
			out.OrderBy = append(out.OrderBy, sql.OrderItem{Expr: &sql.ColumnRef{Name: a}, Desc: ob.Desc})
			continue
		}
		out.OrderBy = append(out.OrderBy, sql.OrderItem{Expr: r.rewriteExpr(ob.Expr), Desc: ob.Desc})
	}
	return out, nil
}
