package reopt

import (
	"fmt"

	"repro/internal/plan"
)

// chainStep is one segment boundary of a left-deep plan: a join plus the
// streaming operators (collectors, residual filters) stacked on its
// output.
type chainStep struct {
	join     plan.Node   // *plan.HashJoin or *plan.IndexJoin
	wrappers []plan.Node // bottom-up: nearest to the join first
}

// top returns the step's topmost plan node.
func (s chainStep) top() plan.Node {
	if len(s.wrappers) > 0 {
		return s.wrappers[len(s.wrappers)-1]
	}
	return s.join
}

// decomposed is the dispatcher's view of a plan: top operators, the join
// chain in execution order, and the leftmost leaf pipeline.
type decomposed struct {
	tops    []plan.Node // root-first: [Limit, Sort, Project, Agg] as present
	steps   []chainStep // execution order: deepest join first
	leafTop plan.Node   // top of the leftmost pipeline (scan + wrappers)
}

// decompose splits a plan produced by the optimizer (plus SCIA
// collectors) into the dispatcher's segments.
func decompose(root plan.Node) (*decomposed, error) {
	d := &decomposed{}
	cur := root
	for {
		switch x := cur.(type) {
		case *plan.Project, *plan.Agg, *plan.Sort, *plan.Limit:
			d.tops = append(d.tops, cur)
			cur = cur.Children()[0]
			continue
		case *plan.Exchange:
			// A parallel aggregation cluster —
			// gather{agg{round-robin{input}}} — is one top operator: the
			// gather builds the whole partial/final split, so the walk
			// records the cluster and resumes below the round-robin.
			if x.Mode == plan.ExGather {
				if agg, ok := x.Input.(*plan.Agg); ok {
					if rr, ok := agg.Input.(*plan.Exchange); ok {
						d.tops = append(d.tops, x)
						cur = rr.Input
						continue
					}
				}
			}
		}
		break
	}
	// Walk the left spine top-down, accumulating wrappers until the next
	// join or the leaf scan.
	var stepsTopDown []chainStep
	var pending []plan.Node // wrappers seen top-down
	for {
		switch x := cur.(type) {
		case *plan.Collector:
			pending = append(pending, x)
			cur = x.Input
		case *plan.Filter:
			pending = append(pending, x)
			cur = x.Input
		case *plan.Exchange:
			// A gather above a step (or the leaf pipeline) is a wrapper:
			// step.top() must be the gather so the dispatcher builds the
			// whole parallel segment as one operator.
			pending = append(pending, x)
			cur = x.Input
		case *plan.HashJoin:
			stepsTopDown = append(stepsTopDown, chainStep{join: x, wrappers: reverseNodes(pending)})
			pending = nil
			// The build input may carry a hash-partition annotation; the
			// segment below it starts at the gather (or scan) underneath.
			cur = plan.StripPartition(x.Build)
		case *plan.IndexJoin:
			stepsTopDown = append(stepsTopDown, chainStep{join: x, wrappers: reverseNodes(pending)})
			pending = nil
			cur = x.Outer
		case *plan.Scan:
			if len(pending) > 0 {
				d.leafTop = pending[0] // topmost wrapper above the scan
			} else {
				d.leafTop = x
			}
			// Reverse the top-down step list into execution order.
			for i := len(stepsTopDown) - 1; i >= 0; i-- {
				d.steps = append(d.steps, stepsTopDown[i])
			}
			return d, nil
		default:
			return nil, fmt.Errorf("reopt: unexpected %T on left spine", cur)
		}
	}
}

func reverseNodes(ns []plan.Node) []plan.Node {
	out := make([]plan.Node, len(ns))
	for i, n := range ns {
		out[len(ns)-1-i] = n
	}
	return out
}

// unwrapTop resolves a tops entry to its logical operator: a parallel
// aggregation cluster (gather{agg{round-robin{input}}}) stands in for
// its Agg; every other entry is itself.
func unwrapTop(n plan.Node) plan.Node {
	if x, ok := n.(*plan.Exchange); ok {
		if agg, ok := x.Input.(*plan.Agg); ok {
			return agg
		}
	}
	return n
}

// stepTopNode returns the node whose output feeds step k+1 (or the tops
// when k is the last step); k == -1 means the leaf pipeline.
func (d *decomposed) stepTopNode(k int) plan.Node {
	if k < 0 {
		return d.leafTop
	}
	return d.steps[k].top()
}
