package reopt

import (
	"strings"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

func TestDecisionLogRecordsCheckpoints(t *testing.T) {
	e := buildThreeJoinEnv(t)
	params := plan.Params{"cut": types.NewFloat(1e9)}
	_, st, _ := runMode(t, e, ModeFull, threeJoinQuery, params, 0)
	if len(st.Decisions) == 0 {
		t.Fatal("no decisions logged")
	}
	for _, d := range st.Decisions {
		if !strings.HasPrefix(d, "checkpoint ") {
			t.Errorf("unexpected decision line %q", d)
		}
	}
}

func TestRunPlanMatchesRunSQL(t *testing.T) {
	e := buildThreeJoinEnv(t)
	params := plan.Params{"cut": types.NewFloat(500)}

	d := New(e.cat, DefaultConfig(ModeFull))
	want, _, err := d.RunSQL(threeJoinQuery, params, e.ctx(params))
	if err != nil {
		t.Fatal(err)
	}

	// RunPlan over an externally optimized plan.
	stmt, _ := sql.Parse(threeJoinQuery)
	q, err := optimizer.Analyze(e.cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	opt := &optimizer.Optimizer{Weights: d.Cfg.Weights, MemBudget: d.Cfg.MemBudget}
	res, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := d.RunPlan(res, params, e.ctx(params))
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "RunPlan", got, want)
	if st.CollectorsInserted == 0 {
		t.Error("RunPlan skipped SCIA")
	}
	if len(st.Plans) == 0 {
		t.Error("RunPlan recorded no plan")
	}
}

func TestRunPlanModeOff(t *testing.T) {
	e := buildThreeJoinEnv(t)
	params := plan.Params{"cut": types.NewFloat(500)}
	d := New(e.cat, DefaultConfig(ModeOff))
	stmt, _ := sql.Parse(threeJoinQuery)
	q, _ := optimizer.Analyze(e.cat, stmt)
	opt := &optimizer.Optimizer{Weights: d.Cfg.Weights, MemBudget: d.Cfg.MemBudget}
	res, _ := opt.Optimize(q)
	rows, st, err := d.RunPlan(res, params, e.ctx(params))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Error("no rows")
	}
	if st.CollectorsInserted != 0 {
		t.Error("ModeOff inserted collectors")
	}
}

func TestSwitchMarginBlocksMarginalSwitches(t *testing.T) {
	// With an absurd margin no switch can ever clear the bar; results
	// must still be correct and the trials still logged.
	e := newEnv(8192)
	e.addTable(t, "rel1", 1350, 4000, 10)
	e.addTable(t, "rel2", 4000, 60000, 5)
	e.addTable(t, "rel3", 60000, 5, 5)
	e.analyzeAll(t)
	e.cat.CreateIndex("rel3", "rel3_pk")
	src := `select rel1_grp, count(*) as cnt from rel1, rel2, rel3
		where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
		and rel1_val < :v1 and rel1_grp < :v2 group by rel1_grp`
	params := plan.Params{"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9)}

	cfg := DefaultConfig(ModePlanOnly)
	cfg.SwitchMargin = 0.99
	d := New(e.cat, cfg)
	rows, st, err := d.RunSQL(src, params, e.ctx(params))
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanSwitches != 0 {
		t.Errorf("switched %d times despite 99%% margin", st.PlanSwitches)
	}
	if st.ReoptConsidered == 0 {
		t.Error("equations never evaluated")
	}
	if len(rows) == 0 {
		t.Error("no rows")
	}
}

func TestMonotoneReallocationNeverShrinksGrants(t *testing.T) {
	// Build a plan, allocate, fake an observation with a shrinking
	// ratio, and verify every not-yet-started consumer keeps at least
	// its original grant.
	e := buildThreeJoinEnv(t)
	d := New(e.cat, DefaultConfig(ModeMemoryOnly))
	res, err := d.EstimateOnly(threeJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decompose(res.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.steps) < 2 {
		t.Skip("need at least two steps")
	}
	grantsBefore := map[plan.Node]float64{}
	for k := 1; k < len(dec.steps); k++ {
		grantsBefore[dec.steps[k].join] = dec.steps[k].join.Est().Grant
	}
	// Shrink every estimate drastically, then re-allocate.
	var cnode *plan.Collector
	plan.Walk(res.Root, func(n plan.Node) {
		if c, ok := n.(*plan.Collector); ok && cnode == nil {
			cnode = c
		}
	})
	if cnode == nil {
		t.Fatal("no collector")
	}
	obs := &plan.Observed{CollectorID: cnode.ID, Rows: 1, Bytes: 10}
	d.applyImproved(dec, 0, cnode, obs, 0.001)
	st := &Stats{}
	d.reallocate(dec, 0, st)
	for n, before := range grantsBefore {
		if after := n.Est().Grant; after < before {
			t.Errorf("grant shrank from %g to %g", before, after)
		}
	}
}

func TestConsumedMask(t *testing.T) {
	res := &optimizer.Result{Order: []int{2, 0, 1}}
	if got := consumedMask(res, 0); got != 0b101 {
		t.Errorf("consumedMask(0) = %b", got)
	}
	if got := consumedMask(res, 1); got != 0b111 {
		t.Errorf("consumedMask(1) = %b", got)
	}
}

func TestMaxSwitchesBoundsRecursion(t *testing.T) {
	e := newEnv(8192)
	e.addTable(t, "rel1", 1350, 4000, 10)
	e.addTable(t, "rel2", 4000, 60000, 5)
	e.addTable(t, "rel3", 60000, 5, 5)
	e.analyzeAll(t)
	e.cat.CreateIndex("rel3", "rel3_pk")
	src := `select rel1_grp, count(*) as cnt from rel1, rel2, rel3
		where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
		and rel1_val < :v1 and rel1_grp < :v2 group by rel1_grp`
	params := plan.Params{"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9)}
	cfg := DefaultConfig(ModePlanOnly)
	cfg.MaxSwitches = 1
	d := New(e.cat, cfg)
	_, st, err := d.RunSQL(src, params, e.ctx(params))
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanSwitches > 1 {
		t.Errorf("switched %d times with MaxSwitches=1", st.PlanSwitches)
	}
}

func TestTempTablesCleanedUp(t *testing.T) {
	e := newEnv(8192)
	e.addTable(t, "rel1", 1350, 4000, 10)
	e.addTable(t, "rel2", 4000, 60000, 5)
	e.addTable(t, "rel3", 60000, 5, 5)
	e.analyzeAll(t)
	e.cat.CreateIndex("rel3", "rel3_pk")
	src := `select rel1_grp, count(*) as cnt from rel1, rel2, rel3
		where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
		and rel1_val < :v1 and rel1_grp < :v2 group by rel1_grp`
	params := plan.Params{"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9)}
	tablesBefore := len(e.cat.Tables())
	_, st, err := New(e.cat, DefaultConfig(ModePlanOnly)).RunSQL(src, params, e.ctx(params))
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanSwitches == 0 {
		t.Skip("no switch on this instance")
	}
	if got := len(e.cat.Tables()); got != tablesBefore {
		t.Errorf("temp tables leaked: %d -> %d (%v)", tablesBefore, got, e.cat.Tables())
	}
}
