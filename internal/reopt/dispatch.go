package reopt

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/memmgr"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// dispatch executes a decomposed plan segment by segment. After each
// hash-join build phase completes — the paper's decision point, where
// "the build phase of the hash-join is complete but the probe phase has
// not yet started" (§2.4) — freshly-delivered collector reports drive
// memory re-allocation and, if Equations 1 and 2 warrant it, a plan
// switch via materialization.
func (d *Dispatcher) dispatch(res *optimizer.Result, params plan.Params, ctx *exec.Ctx, st *Stats, switchesLeft int) ([]types.Tuple, error) {
	return d.dispatchWith(res, params, ctx, st, switchesLeft, nil)
}

// dispatchWith additionally accepts a live operator stream standing in
// for the plan's leftmost scan — the splice of Figure 5, where the new
// remainder plan consumes the running join's output directly.
func (d *Dispatcher) dispatchWith(res *optimizer.Result, params plan.Params, ctx *exec.Ctx, st *Stats, switchesLeft int, leafOverride exec.Operator) ([]types.Tuple, error) {
	dec, err := decompose(res.Root)
	if err != nil {
		return nil, err
	}
	origTotal := res.Root.Est().Cost
	startSnap := ctx.Meter.Snapshot()
	stale := d.captureStale(res)

	// Intercept collector reports for the duration of this dispatch.
	var pending []*plan.Observed
	oldSink := ctx.StatsSink
	ctx.StatsSink = func(o *plan.Observed) {
		pending = append(pending, o)
		st.Observations++
	}
	defer func() { ctx.StatsSink = oldSink }()

	collectors := map[int]*plan.Collector{}
	plan.Walk(res.Root, func(n plan.Node) {
		if c, ok := n.(*plan.Collector); ok {
			collectors[c.ID] = c
		}
	})

	cur, err := d.buildLeafOp(dec, ctx, leafOverride)
	if err != nil {
		return nil, err
	}
	// live tracks the topmost constructed operator. Closes cascade, so
	// aborting between segments only needs one Close to release every
	// descendant's side state (spill partitions, sort runs, the spliced
	// stream from an enclosing dispatch).
	live := cur
	abort := func(err error) ([]types.Tuple, error) {
		live.Close()
		if d.Cfg.Trace.Enabled() && ctx.Err() != nil {
			d.Cfg.Trace.Emit("cancel", "query aborted mid-dispatch", "err", err.Error())
		}
		return nil, err
	}
	for i := range dec.steps {
		// The paper's checkpoints double as the dispatcher's abort
		// points: between segments the query is at a well-defined state.
		if err := ctx.Err(); err != nil {
			return abort(err)
		}
		// Checkpoint preemption lands here too: a higher-priority
		// waiter claimed this query's lease, and the segment boundary
		// is the one place the remainder is cleanly restartable — the
		// session releases the lease and re-admits the query.
		if l := d.Cfg.Lease; l != nil && l.PreemptRequested() {
			if d.Cfg.Trace.Enabled() {
				d.Cfg.Trace.Emit("preempt", "lease preempted at checkpoint", "step", i)
			}
			return abort(memmgr.ErrPreempted)
		}
		if err := faultinject.Hit("reopt.step"); err != nil {
			return abort(err)
		}
		step := dec.steps[i]
		var joinOp, topOp exec.Operator
		px, isGather := step.top().(*plan.Exchange)
		_, isHash := step.join.(*plan.HashJoin)
		if isGather && isHash && px.Mode == plan.ExGather {
			// Parallel step: the gather builds the whole segment — N
			// partitioned hash joins plus per-worker wrapper pipelines —
			// as one operator consuming the serial stream below. Open runs
			// the parallel build phase; the probe waits for the first
			// Next, so the decision point is unchanged.
			op, err := exec.BuildStep(px, cur, ctx)
			if err != nil {
				return abort(err)
			}
			joinOp, topOp = op, op
			live = op
		} else {
			op, err := exec.BuildStep(step.join, cur, ctx)
			if err != nil {
				return abort(err)
			}
			joinOp, topOp = op, op
			live = op
			for _, w := range step.wrappers {
				wrapped, err := exec.BuildStep(w, topOp, ctx)
				if err != nil {
					return abort(err)
				}
				topOp = wrapped
				live = topOp
			}
		}
		// Run this join's build phase (for index joins this is free and
		// no statistics can have completed).
		if err := joinOp.Open(); err != nil {
			return abort(err)
		}
		if len(pending) > 0 {
			obs := pending[len(pending)-1] // latest = closest to this join
			pending = nil
			doSwitch, err := d.checkpoint(res, dec, i, obs, collectors, origTotal, startSnap, stale, ctx, st, switchesLeft)
			if err != nil {
				return abort(err)
			}
			if doSwitch {
				rows, serr := d.switchPlan(res, dec, i, topOp, obs, collectors[obs.CollectorID], params, ctx, st, switchesLeft)
				if serr != nil {
					// A failed switch may bail out before anything has
					// consumed (and closed) the running join; Close is
					// idempotent, so sweeping it here is safe even on
					// paths that already did.
					topOp.Close()
				}
				return rows, serr
			}
		}
		cur = topOp
	}

	// The boundary between the join chain and the top operators is the
	// final checkpoint-shaped abort point (for a zero- or one-join plan
	// it is the only one); past here the query runs to completion.
	if l := d.Cfg.Lease; l != nil && l.PreemptRequested() {
		if d.Cfg.Trace.Enabled() {
			d.Cfg.Trace.Emit("preempt", "lease preempted at checkpoint", "step", len(dec.steps))
		}
		return abort(memmgr.ErrPreempted)
	}
	top := cur
	for k := len(dec.tops) - 1; k >= 0; k-- {
		wrapped, err := exec.BuildStep(dec.tops[k], top, ctx)
		if err != nil {
			return abort(err)
		}
		top = wrapped
		live = top
	}
	// Collect closes the chain itself, error or not.
	rows, err := exec.Collect(top)
	if err != nil && d.Cfg.Trace.Enabled() && ctx.Err() != nil {
		d.Cfg.Trace.Emit("cancel", "query aborted mid-dispatch", "err", err.Error())
	}
	return rows, err
}

// buildLeafOp builds the operator for the leftmost pipeline. With an
// override, the pipeline's scan is replaced by the live stream and any
// wrappers (collectors) above it are applied on top.
func (d *Dispatcher) buildLeafOp(dec *decomposed, ctx *exec.Ctx, override exec.Operator) (exec.Operator, error) {
	if override == nil {
		return exec.Build(dec.leafTop, ctx)
	}
	// Collect the wrappers between leafTop and the scan, top-down.
	var wrappers []plan.Node
	cur := dec.leafTop
	for {
		switch x := cur.(type) {
		case *plan.Collector:
			wrappers = append(wrappers, x)
			cur = x.Input
		case *plan.Filter:
			wrappers = append(wrappers, x)
			cur = x.Input
		case *plan.Exchange:
			// The live stream replacing the scan is already serial; a
			// gather (or partition annotation) over it is meaningless, so
			// exchanges are skipped rather than applied.
			cur = x.Input
		case *plan.Scan:
			op := override
			for k := len(wrappers) - 1; k >= 0; k-- {
				var err error
				op, err = exec.BuildStep(wrappers[k], op, ctx)
				if err != nil {
					return nil, err
				}
			}
			return op, nil
		default:
			return nil, fmt.Errorf("reopt: unexpected %T in leaf pipeline", cur)
		}
	}
}

// decide records one checkpoint decision in the stats log and, when
// tracing is on, as a structured trace event.
func (d *Dispatcher) decide(st *Stats, msg string, kv ...any) {
	st.Decisions = append(st.Decisions, msg)
	if d.Cfg.Trace.Enabled() {
		d.Cfg.Trace.Emit("decision", msg, kv...)
	}
}

// staleBase snapshots the catalog's statistics version and the
// base-relation cardinalities the optimizer planned against, taken when
// a dispatch begins. Checkpoints compare against it to detect
// statistics that went stale mid-query — concurrent committed write
// transactions bump the stats version and shift cardinalities while
// the plan is running on the old numbers.
type staleBase struct {
	statsVer int64
	cards    map[*catalog.Table]float64
}

// captureStale records the dispatch-start statistics baseline for every
// base relation in the query.
func (d *Dispatcher) captureStale(res *optimizer.Result) *staleBase {
	sb := &staleBase{
		statsVer: d.Cat.StatsVersion(),
		cards:    make(map[*catalog.Table]float64, len(res.Query.Rels)),
	}
	for _, rel := range res.Query.Rels {
		card, _ := rel.Table.Stats()
		sb.cards[rel.Table] = card
	}
	return sb
}

// refreshStale folds concurrent committed writes into the unexecuted
// plan suffix. If the catalog's stats version moved since the baseline
// was taken, every not-yet-scanned base relation whose cardinality
// shifted scales its pipeline and the joins above it by the growth
// ratio, exactly as applyImproved scales by a collector's
// observed/estimated ratio — so write-driven staleness participates in
// Equation 2 and can trigger a re-optimization that the collectors
// alone would not have. The baseline is then re-anchored so each
// checkpoint applies only the growth that arrived since the last one.
func (d *Dispatcher) refreshStale(dec *decomposed, i int, stale *staleBase) {
	ver := d.Cat.StatsVersion()
	if ver == stale.statsVer {
		return
	}
	ratios := map[*catalog.Table]float64{}
	for t, c0 := range stale.cards {
		card, _ := t.Stats()
		r := 1.0
		switch {
		case c0 > 0:
			r = card / c0
		case card > 0:
			r = card // planned as empty; scale from 1
		}
		if math.Abs(r-1) > 1e-9 {
			ratios[t] = r
			stale.cards[t] = card
		}
	}
	stale.statsVer = ver
	if len(ratios) == 0 {
		return
	}
	scale := func(n plan.Node, r float64) {
		e := n.Est()
		e.Rows *= r
		e.Bytes *= r
	}
	// scalePipeline walks a base-relation pipeline (scan plus unary
	// wrappers) down to its scan and, if that table shifted, scales the
	// pipeline's estimates, returning the ratio for the join above.
	var scalePipeline func(n plan.Node) float64
	scalePipeline = func(n plan.Node) float64 {
		switch x := n.(type) {
		case *plan.Scan:
			r, ok := ratios[x.Table]
			if !ok {
				return 1
			}
			scale(x, r)
			return r
		case *plan.Exchange:
			// Delegates Est to its input; scale below only.
			return scalePipeline(x.Input)
		case *plan.Filter:
			r := scalePipeline(x.Input)
			if r != 1 {
				scale(x, r)
			}
			return r
		case *plan.Collector:
			r := scalePipeline(x.Input)
			if r != 1 {
				scale(x, r)
			}
			return r
		}
		return 1
	}
	// Growth compounds up the join chain: if step k's probe side grew,
	// its output — the next step's build input — grew with it.
	acc := 1.0
	for k := i; k < len(dec.steps); k++ {
		step := dec.steps[k]
		r := 1.0
		switch j := step.join.(type) {
		case *plan.HashJoin:
			r = scalePipeline(j.Probe)
		case *plan.IndexJoin:
			// Index-join probe cost reads the heap's live page and
			// tuple counts, which already reflect the writes; the
			// output estimate still needs the inner growth.
			if g, ok := ratios[j.Table]; ok {
				r = g
			}
		}
		total := acc * r
		if total != 1 {
			scale(step.join, total)
			for _, w := range step.wrappers {
				if _, ok := w.(*plan.Exchange); ok {
					continue
				}
				scale(w, total)
			}
		}
		acc = total
	}
	if d.Cfg.Trace.Enabled() {
		d.Cfg.Trace.Emit("checkpoint", "stats went stale mid-query, suffix re-scaled",
			"step", i, "stats_version", ver, "tables_shifted", len(ratios), "growth", acc)
	}
}

// checkpoint processes one statistics report at the decision point after
// step i's build phase. It updates estimates for the unexecuted plan
// suffix, re-invokes the Memory Manager (memory modes), and evaluates
// Equations 1 and 2 plus the trial re-optimization (plan modes),
// returning whether to switch plans.
func (d *Dispatcher) checkpoint(res *optimizer.Result, dec *decomposed, i int, obs *plan.Observed, collectors map[int]*plan.Collector, origTotal float64, startSnap storage.Snapshot, stale *staleBase, ctx *exec.Ctx, st *Stats, switchesLeft int) (bool, error) {
	// A cancelled query must not start a trial re-optimization or commit
	// to a plan switch; check once at the decision point.
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if err := faultinject.Hit("reopt.checkpoint"); err != nil {
		return false, err
	}
	if d.Cfg.CheckpointHook != nil {
		d.Cfg.CheckpointHook(i)
	}
	cnode := collectors[obs.CollectorID]
	if cnode == nil {
		return false, nil
	}
	estRows := cnode.Est().Rows
	ratio := 1.0
	switch {
	case estRows > 0:
		ratio = obs.Rows / estRows
	case obs.Rows > 0:
		ratio = obs.Rows // estimate said empty; scale from 1
	}

	d.applyImproved(dec, i, cnode, obs, ratio)
	if d.Cfg.Trace.Enabled() {
		d.Cfg.Trace.Emit("checkpoint", "build phase complete, estimates refreshed",
			"step", i,
			"collector_id", obs.CollectorID,
			"est_rows", estRows,
			"obs_rows", obs.Rows,
			"ratio", ratio,
		)
	}
	d.refreshStale(dec, i, stale)

	// Publish the checkpoint's Eq.2 position (elapsed + improved
	// remainder over the original promise) into the live progress
	// state: between checkpoints the continuous score is derived from
	// operator counters alone, and each checkpoint pins it from below
	// with this measured value.
	if ctx.Prog.Enabled() {
		if origTotal > 0 {
			elapsed := ctx.Meter.Snapshot().Sub(startSnap).Cost()
			pos := (elapsed + d.recostRemainder(dec, i)) / origTotal
			ctx.Prog.RecordCheckpoint(pos)
			if d.Cfg.Trace.Enabled() {
				d.Cfg.Trace.Emit("score", "suboptimality at checkpoint",
					"step", i, "eq2_position", pos, "live_score", ctx.Prog.Score())
			}
		} else {
			ctx.Prog.RecordCheckpoint(0)
		}
	}

	// In the combined mode the Memory Manager is re-invoked before the
	// plan-modification decision: re-allocation is free (grants only
	// matter once an operator starts), and Equation 2's improved
	// estimate must reflect the memory the remainder will actually
	// have — otherwise a plan switch can preempt a superior memory fix.
	planMode := d.Cfg.Mode == ModePlanOnly || d.Cfg.Mode == ModeFull || d.Cfg.Mode == ModeRestart
	memMode := d.Cfg.Mode == ModeMemoryOnly || d.Cfg.Mode == ModeFull
	if memMode {
		d.reallocate(dec, i, st)
	}
	if planMode && switchesLeft > 0 {
		return d.considerSwitch(res, dec, i, obs, cnode, origTotal, startSnap, ctx, st)
	}
	return false, nil
}

// considerSwitch evaluates Equations 1 and 2 and the trial
// re-optimization at one checkpoint.
func (d *Dispatcher) considerSwitch(res *optimizer.Result, dec *decomposed, i int, obs *plan.Observed, cnode *plan.Collector, origTotal float64, startSnap storage.Snapshot, ctx *exec.Ctx, st *Stats) (bool, error) {
	st.ReoptConsidered++
	elapsed := ctx.Meter.Snapshot().Sub(startSnap).Cost()
	remainderImproved := d.recostRemainder(dec, i)
	tCurImproved := elapsed + remainderImproved
	if origTotal <= 0 {
		return false, nil
	}
	// Equation 2: the plan is only suspect if the improved estimate is
	// significantly worse than what the optimizer promised.
	if (tCurImproved-origTotal)/origTotal <= d.Cfg.Theta2 {
		d.decide(st, fmt.Sprintf(
			"checkpoint %d: keep (eq2: improved %.0f vs estimate %.0f)", i, tCurImproved, origTotal),
			"step", i, "eq", 2, "keep", true,
			"improved", tCurImproved, "estimate", origTotal, "theta2", d.Cfg.Theta2)
		return false, nil
	}
	// Equation 1: re-optimization must be cheap relative to the
	// remaining work.
	remRels := len(res.Query.Rels) - (i + 2)
	tOptEst := d.Calib.OptTime(maxInt(1, remRels))
	if tOptEst/tCurImproved > d.Cfg.Theta1 {
		d.decide(st, fmt.Sprintf(
			"checkpoint %d: keep (eq1: T_opt %.1f vs improved %.0f)", i, tOptEst, tCurImproved),
			"step", i, "eq", 1, "keep", true,
			"t_opt", tOptEst, "improved", tCurImproved, "theta1", d.Cfg.Theta1)
		return false, nil
	}
	if d.Cfg.Mode == ModeRestart {
		// The discard-everything ablation skips the trial: it always
		// believes a fresh start will win.
		d.decide(st, fmt.Sprintf("checkpoint %d: restart", i), "step", i, "restart", true)
		return true, nil
	}
	// Trial re-optimization: T_opt,actual is charged whether or not the
	// new plan is adopted (§2.4).
	tNewTotal, ok, err := d.trialOptimize(res, dec, i, obs, cnode, elapsed, ctx)
	if err != nil {
		return false, err
	}
	doSwitch := ok && tNewTotal < tCurImproved*(1-d.Cfg.SwitchMargin)
	d.decide(st, fmt.Sprintf(
		"checkpoint %d: trial new %.0f vs improved %.0f (elapsed %.0f) -> switch=%v",
		i, tNewTotal, tCurImproved, elapsed, doSwitch),
		"step", i, "trial_new", tNewTotal, "improved", tCurImproved,
		"elapsed", elapsed, "switch", doSwitch)
	return doSwitch, nil
}

// applyImproved scales the optimizer's annotations for every node at or
// above the observation point by the observed/estimated cardinality
// ratio, refreshes memory demands, and overrides group-count estimates
// with observed distinct counts where available.
func (d *Dispatcher) applyImproved(dec *decomposed, i int, cnode *plan.Collector, obs *plan.Observed, ratio float64) {
	ce := cnode.Est()
	ce.Rows = obs.Rows
	ce.Bytes = obs.Bytes

	scale := func(n plan.Node) {
		e := n.Est()
		e.Rows *= ratio
		e.Bytes *= ratio
	}
	// Current step's join output scales (its build input was observed).
	for k := i; k < len(dec.steps); k++ {
		step := dec.steps[k]
		scale(step.join)
		for _, w := range step.wrappers {
			if _, ok := w.(*plan.Exchange); ok {
				// Exchanges delegate Est to their input; scaling one
				// would double-scale the node below it.
				continue
			}
			if w != plan.Node(cnode) {
				scale(w)
			}
		}
		if hj, ok := step.join.(*plan.HashJoin); ok && k > i {
			// Build side of a future join is the previous step's top.
			build := dec.stepTopNode(k - 1).Est()
			e := hj.Est()
			e.MemMin, e.MemMax = optimizer.JoinMemDemands(build.Bytes)
		}
	}
	for _, t := range dec.tops {
		switch x := unwrapTop(t).(type) {
		case *plan.Agg:
			e := x.Est()
			oldGroups := e.Rows
			state := 64.0
			if oldGroups > 0 && e.MemMax > 0 {
				state = e.MemMax / oldGroups
			}
			inRows := x.Input.Est().Rows
			groups := math.Min(oldGroups, inRows)
			if u, ok := findUniqueObs(obs, cnode, x); ok {
				groups = math.Min(u, inRows)
			}
			e.Rows = math.Max(1, groups)
			e.MemMin, e.MemMax = optimizer.StepMemDemands(e.Rows * state)
		case *plan.Sort:
			e := x.Est()
			in := x.Input.Est()
			e.Rows, e.Bytes = in.Rows, in.Bytes
			e.MemMin, e.MemMax = optimizer.StepMemDemands(in.Bytes * 1.1)
		case *plan.Project, *plan.Limit:
			scale(x)
		}
	}
}

// findUniqueObs matches an aggregate's grouping columns against the
// observed distinct-count sets by column identity.
func findUniqueObs(obs *plan.Observed, cnode *plan.Collector, agg *plan.Agg) (float64, bool) {
	if len(obs.Uniques) == 0 {
		return 0, false
	}
	aggIn := agg.Input.Schema()
	want := map[string]bool{}
	for _, gc := range agg.GroupCols {
		c := aggIn.Columns[gc]
		want[c.Table+"."+c.Name] = true
	}
	colSchema := cnode.Input.Schema()
	for _, set := range cnode.Spec.UniqueCols {
		if len(set) != len(want) {
			continue
		}
		all := true
		for _, ci := range set {
			c := colSchema.Columns[ci]
			if !want[c.Table+"."+c.Name] {
				all = false
				break
			}
		}
		if all {
			if u, ok := obs.Uniques[plan.UniqueKey(set)]; ok {
				return u, true
			}
		}
	}
	return 0, false
}

// reallocate re-invokes the Memory Manager over the operators that have
// not started executing, under the budget minus what the running join
// still holds (§2.3).
func (d *Dispatcher) reallocate(dec *decomposed, i int, st *Stats) {
	var notStarted []plan.Node
	for k := i + 1; k < len(dec.steps); k++ {
		if dec.steps[k].join.Est().MemMax > 0 {
			notStarted = append(notStarted, dec.steps[k].join)
		}
	}
	for k := len(dec.tops) - 1; k >= 0; k-- {
		if dec.tops[k].Est().MemMax > 0 {
			notStarted = append(notStarted, dec.tops[k])
		}
	}
	if len(notStarted) == 0 {
		return
	}
	held := dec.steps[i].join.Est().Grant // the running join's hash table
	oldBudget := d.budget()
	if lease := d.Cfg.Lease; lease != nil {
		// Brokered pool: grants follow the improved demands both ways.
		// If the remainder needs more than the lease holds, try to grow
		// it (non-blocking, never overtaking queued queries); whatever
		// the re-allocation then leaves uncommitted is surplus the
		// broker can hand to *other* queries — the paper's §2.3
		// multi-query motivation. Unlike the single-query path below,
		// shrinking a pending operator's grant here is worth the
		// estimate risk: idle bytes in this query are admission delays
		// for the ones behind it.
		need := held
		for _, op := range notStarted {
			e := op.Est()
			need += math.Min(e.MemMin, e.MemMax)
		}
		if need > lease.Held() {
			if got := lease.Grow(need - lease.Held()); got > 0 {
				st.BrokerGrowths++
				st.BrokerGrownBytes += got
			}
		}
		budget := math.Max(0, lease.Held()-held)
		memmgr.New(budget).AllocateOps(notStarted, budget)
		committed := held
		for _, op := range notStarted {
			committed += op.Est().Grant
		}
		if surplus := lease.Held() - committed; surplus > 0 {
			if returned := lease.Return(surplus); returned > 0 {
				st.BrokerReturns++
				st.BrokerReturnedBytes += returned
				d.decide(st, fmt.Sprintf(
					"checkpoint %d: returned %.0f surplus bytes to the memory broker", i, returned),
					"step", i, "returned_bytes", returned)
			}
		}
		st.MemReallocs++
		if d.Cfg.Trace.Enabled() {
			d.Cfg.Trace.Emit("realloc", "memory re-allocated from brokered lease",
				"step", i,
				"old_lease_bytes", oldBudget,
				"new_lease_bytes", lease.Held(),
				"running_join_bytes", held,
				"operators", len(notStarted),
			)
		}
		return
	}
	budget := math.Max(0, d.Cfg.MemBudget-held)
	// Re-allocation must never leave an operator worse off than the
	// initial allocation did: the earlier joins' grants are freed by
	// now, so every old grant still fits in the reduced budget. Floor
	// each operator's minimum — and, if the improved estimate shrank
	// its declared maximum, the maximum too — at the current grant.
	// A scaled-down estimate is still an estimate; taking memory away
	// on its word can introduce a spill the initial allocation had
	// already paid to avoid, while keeping the old grant costs nothing
	// (operator memory is a budget, not a shared cache).
	savedMins := make([]float64, len(notStarted))
	for k, op := range notStarted {
		e := op.Est()
		savedMins[k] = e.MemMin
		if e.MemMax < e.Grant {
			e.MemMax = e.Grant
		}
		if e.MemMin < e.Grant {
			e.MemMin = e.Grant
		}
	}
	memmgr.New(budget).AllocateOps(notStarted, budget)
	for k, op := range notStarted {
		op.Est().MemMin = savedMins[k]
	}
	st.MemReallocs++
	if d.Cfg.Trace.Enabled() {
		d.Cfg.Trace.Emit("realloc", "memory re-allocated within fixed budget",
			"step", i,
			"budget_bytes", oldBudget,
			"remainder_budget_bytes", budget,
			"running_join_bytes", held,
			"operators", len(notStarted),
		)
	}
}

// recostRemainder prices the unexecuted plan suffix under the improved
// estimates and current grants: the probe phase of step i's join, every
// later step, and the top operators — the paper's T_cur-plan,improved
// minus already-elapsed time.
func (d *Dispatcher) recostRemainder(dec *decomposed, i int) float64 {
	w := d.Cfg.Weights
	cost := d.finishStepCost(dec, i)
	for k := i + 1; k < len(dec.steps); k++ {
		cost += d.stepCost(dec, k)
	}
	prev := dec.stepTopNode(len(dec.steps) - 1).Est()
	inRows, inBytes := prev.Rows, prev.Bytes
	for k := len(dec.tops) - 1; k >= 0; k-- {
		switch x := unwrapTop(dec.tops[k]).(type) {
		case *plan.Agg:
			e := x.Est()
			state := 64.0
			if e.Rows > 0 && e.MemMax > 0 {
				state = e.MemMax / e.Rows
			}
			cost += optimizer.AggSelfCost(w, inRows, e.Rows, state, e.Grant)
			inRows, inBytes = e.Rows, e.Bytes
		case *plan.Sort:
			e := x.Est()
			cost += optimizer.SortSelfCost(w, inRows, inBytes, e.Grant)
		case *plan.Limit:
			e := x.Est()
			if e.Rows < inRows {
				inRows = e.Rows
			}
		}
	}
	return cost
}

// finishStepCost prices completing step i's join whose build phase has
// already run: the probe input scan, the probe CPU, and (for a spilled
// join) the remaining partition I/O.
func (d *Dispatcher) finishStepCost(dec *decomposed, i int) float64 {
	w := d.Cfg.Weights
	step := dec.steps[i]
	out := step.join.Est()
	var cost float64
	switch j := step.join.(type) {
	case *plan.HashJoin:
		probe := j.Probe.Est()
		cost = probe.Cost + optimizer.HashJoinProbeCost(w, probe.Rows, out.Rows)
		build := dec.stepTopNode(i - 1).Est()
		if optimizer.HashJoinSpills(build.Bytes, j.Est().Grant) {
			// Build partitions are already written; still owed: read
			// them back, write and read the probe partitions.
			cost += pagesOf(build.Bytes)*w.PageRead +
				pagesOf(probe.Bytes)*(w.PageRead+w.PageWrite)
		}
	case *plan.IndexJoin:
		outer := dec.stepTopNode(i - 1).Est()
		cost = optimizer.IndexJoinSelfCost(w, outer.Rows, j.EstMatches, out.Rows,
			j.Table.NumPages(), float64(j.Table.Heap.NumTuples()), indexClustering(j), d.Cfg.PoolPages)
	}
	return cost + d.wrapperCost(step)
}

// stepCost prices a not-yet-started step in full.
func (d *Dispatcher) stepCost(dec *decomposed, k int) float64 {
	w := d.Cfg.Weights
	step := dec.steps[k]
	out := step.join.Est()
	build := dec.stepTopNode(k - 1).Est()
	var cost float64
	switch j := step.join.(type) {
	case *plan.HashJoin:
		probe := j.Probe.Est()
		cost = probe.Cost + optimizer.HashJoinSelfCost(w,
			build.Rows, build.Bytes, probe.Rows, probe.Bytes, out.Rows, j.Est().Grant)
	case *plan.IndexJoin:
		cost = optimizer.IndexJoinSelfCost(w, build.Rows, j.EstMatches, out.Rows,
			j.Table.NumPages(), float64(j.Table.Heap.NumTuples()), indexClustering(j), d.Cfg.PoolPages)
	}
	return cost + d.wrapperCost(step)
}

func (d *Dispatcher) wrapperCost(step chainStep) float64 {
	cost := 0.0
	for _, wn := range step.wrappers {
		if c, ok := wn.(*plan.Collector); ok && !c.Spec.Empty() {
			cost += c.Input.Est().Rows * d.Cfg.Weights.StatCPU
		}
	}
	return cost
}

func pagesOf(bytes float64) float64 {
	return math.Max(1, math.Ceil(bytes/float64(storage.PageSize)))
}

// indexClustering fetches the clustering factor of an index join's inner
// index, defaulting to 0 (random access) if the index is missing.
func indexClustering(j *plan.IndexJoin) float64 {
	if idx, ok := j.Table.Indexes[j.InnerCol]; ok {
		return idx.Clustering
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// consumedMask returns the relation bitmask materialized after step i
// completes: the leftmost relation plus every relation joined by steps
// 0..i.
func consumedMask(res *optimizer.Result, i int) uint32 {
	var m uint32
	for k := 0; k <= i+1 && k < len(res.Order); k++ {
		m |= 1 << uint(res.Order[k])
	}
	return m
}

// trialOptimize registers a virtual temp table with improved statistics,
// optimizes the remainder query against it, and returns the estimated
// total time of the switch path: elapsed + finishing the running join +
// materialization write + the new plan (which itself includes re-reading
// the temp). T_opt,actual is charged to the meter here, adopted or not.
func (d *Dispatcher) trialOptimize(res *optimizer.Result, dec *decomposed, i int, obs *plan.Observed, cnode *plan.Collector, elapsed float64, ctx *exec.Ctx) (float64, bool, error) {
	matNode := dec.stepTopNode(i)
	matEst := matNode.Est()
	if matEst.Rows <= 0 {
		return 0, false, nil
	}
	d.tempSeq++
	tempName := d.tempName("trial")
	heap := storage.NewHeapFile(ctx.Pool) // placeholder; never populated
	tbl, err := d.Cat.RegisterTemp(tempName, tempSchema(matNode.Schema()), heap)
	if err != nil {
		return 0, false, err
	}
	d.trackTemp(tempName)
	defer d.dropTemp(tempName)
	tbl.Cardinality = matEst.Rows
	tbl.AvgTupleBytes = matEst.Bytes / matEst.Rows
	fillTempStats(tbl, matNode.Schema(), obs, cnode, res.Query, matEst.Rows)

	remStmt, err := remainderStmt(res.Query, consumedMask(res, i), tempName)
	if err != nil {
		return 0, false, err
	}
	rq, err := optimizer.Analyze(d.Cat, remStmt)
	if err != nil {
		return 0, false, err
	}
	opt := &optimizer.Optimizer{
		Weights:          d.Cfg.Weights,
		MemBudget:        d.budget(),
		DisableIndexJoin: d.Cfg.DisableIndexJoin,
		PoolPages:        d.Cfg.PoolPages,
	}
	newRes, err := opt.Optimize(rq)
	if err != nil {
		return 0, false, err
	}
	ctx.Meter.ChargeRaw(float64(newRes.PlansConsidered) * optimizer.OptCostPerPlan)

	// The splice strategy (Figure 5) avoids the materialization
	// write; the new plan's temp-scan cost is already ~zero because
	// the virtual temp has no pages, matching the live-stream reality.
	tMat := 0.0
	if d.Cfg.Strategy == StrategyMaterialize {
		tMat = pagesOf(matEst.Bytes) * d.Cfg.Weights.PageWrite
	}
	tFinish := d.finishStepCost(dec, i)
	tNew := elapsed + tFinish + tMat + newRes.Root.Est().Cost
	return tNew, true, nil
}

// fillTempStats populates the virtual (or real) temp table's column
// statistics: run-time histograms where the collector observed them,
// base-table statistics carried through otherwise.
func fillTempStats(tbl *catalog.Table, matSchema *types.Schema, obs *plan.Observed, cnode *plan.Collector, q *optimizer.Query, outRows float64) {
	colSchema := cnode.Input.Schema()
	for ci, c := range matSchema.Columns {
		cs := &catalog.ColumnStats{Min: types.Null(), Max: types.Null()}
		// Observed histogram for this column?
		if obs != nil {
			for _, hc := range cnode.Spec.HistCols {
				oc := colSchema.Columns[hc]
				if oc.Table == c.Table && oc.Name == c.Name {
					if h, ok := obs.Hists[hc]; ok && h != nil {
						cs.Hist = h.Scaled(outRows)
						cs.Distinct = h.TotalDistinct
						if mn, ok := obs.Mins[hc]; ok {
							cs.Min = mn
						}
						if mx, ok := obs.Maxs[hc]; ok {
							cs.Max = mx
						}
					}
				}
			}
		}
		if cs.Hist == nil {
			// Carry base-table statistics through.
			for ri := range q.Rels {
				rel := &q.Rels[ri]
				if rel.Binding != c.Table {
					continue
				}
				if bi, err := rel.Schema.Resolve(c.Table, c.Name); err == nil {
					if bcs := rel.Table.ColStat(bi); bcs != nil {
						cs.Hist = bcs.Hist
						cs.Distinct = math.Min(bcs.Distinct, outRows)
						cs.Min, cs.Max = bcs.Min, bcs.Max
					}
				}
			}
		}
		tbl.ColStats[ci] = cs
	}
}
