package reopt

import (
	"fmt"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/types"
)

// runDegree executes a query at the given parallel degree.
func runDegree(t *testing.T, e *env, mode Mode, degree int, src string, params plan.Params, budget float64) ([]types.Tuple, *Stats, float64) {
	t.Helper()
	cfg := DefaultConfig(mode)
	cfg.Degree = degree
	if budget > 0 {
		cfg.MemBudget = budget
	}
	d := New(e.cat, cfg)
	before := e.m.Snapshot()
	rows, st, err := d.RunSQL(src, params, e.ctx(params))
	if err != nil {
		t.Fatalf("mode %v degree %d: %v", mode, degree, err)
	}
	return rows, st, e.m.Snapshot().Sub(before).Cost()
}

// TestParallelMatchesSerial: every mode and degree produces the same
// rows as serial execution — parallelism must be invisible in results.
func TestParallelMatchesSerial(t *testing.T) {
	for _, cut := range []float64{50, 999999} {
		e := buildThreeJoinEnv(t)
		params := plan.Params{"cut": types.NewFloat(cut)}
		want, _, _ := runMode(t, e, ModeOff, threeJoinQuery, params, 0)
		for _, mode := range []Mode{ModeOff, ModeMemoryOnly, ModeFull} {
			for _, deg := range []int{2, 4} {
				got, st, _ := runDegree(t, e, mode, deg, threeJoinQuery, params, 0)
				rowsEqual(t, fmt.Sprintf("cut=%g mode=%v deg=%d", cut, mode, deg), got, want)
				if st.Degree != deg {
					t.Errorf("stats degree = %d, want %d", st.Degree, deg)
				}
				if st.WorkersSpawned == 0 {
					t.Errorf("cut=%g mode=%v deg=%d: no workers spawned", cut, mode, deg)
				}
			}
		}
	}
}

// TestParallelWallSavings: at degree 4 the gathered regions must
// overlap enough that the simulated wall time (metered cost minus
// recorded savings) beats serial by at least 2x on a scan-heavy join.
func TestParallelWallSavings(t *testing.T) {
	e := buildThreeJoinEnv(t)
	params := plan.Params{"cut": types.NewFloat(999999)}
	_, _, serialCost := runMode(t, e, ModeOff, threeJoinQuery, params, 0)
	_, st, parCost := runDegree(t, e, ModeOff, 4, threeJoinQuery, params, 0)
	wall := parCost - st.WallSavedCost
	if wall <= 0 {
		t.Fatalf("non-positive wall time: cost=%.0f saved=%.0f", parCost, st.WallSavedCost)
	}
	if speedup := serialCost / wall; speedup < 2 {
		t.Errorf("degree-4 wall speedup = %.2fx (serial %.0f, parallel metered %.0f, saved %.0f), want >= 2x",
			speedup, serialCost, parCost, st.WallSavedCost)
	}
}

// TestParallelSwitchCleanup: the Figure-6 fixture forces a mid-query
// plan switch while the running segment is gather-topped. The switch
// must materialize the gathered stream correctly, the re-optimized
// remainder must itself run parallel, and no temp tables may survive.
func TestParallelSwitchCleanup(t *testing.T) {
	e, src, params := spliceEnv(t)
	want, _, _ := runMode(t, e, ModeOff, src, params, 0)
	for _, strat := range []Strategy{StrategyMaterialize, StrategySplice} {
		e2, src, params := spliceEnv(t)
		tablesBefore := len(e2.cat.Tables())
		cfg := DefaultConfig(ModePlanOnly)
		cfg.Degree = 4
		cfg.Strategy = strat
		d := New(e2.cat, cfg)
		got, st, err := d.RunSQL(src, params, e2.ctx(params))
		if err != nil {
			t.Fatalf("strategy %v: %v", strat, err)
		}
		if st.PlanSwitches == 0 {
			t.Fatalf("strategy %v: fixture no longer triggers a switch at degree 4", strat)
		}
		rowsEqual(t, fmt.Sprintf("parallel switch %v", strat), got, want)
		if got := len(e2.cat.Tables()); got != tablesBefore {
			t.Errorf("strategy %v: temp tables leaked: %d -> %d (%v)",
				strat, tablesBefore, got, e2.cat.Tables())
		}
	}
}

// TestParallelForcedSwitchSpilledJoin drives the hardest interaction in
// the engine at once: parallel degree 4, a memory budget small enough
// that the first (completed-segment) hash join spills partitions, and a
// fixture whose stale estimates force a mid-query plan switch at the
// first checkpoint. The switch must materialize (or splice) the
// completed segment's output, re-parallelize the remainder, and come
// out with serial-identical rows and zero residue — spilled partitions,
// temp tables, and heap pages all reclaimed. Runs under -race in CI.
func TestParallelForcedSwitchSpilledJoin(t *testing.T) {
	e, src, params := spliceEnv(t)
	want, _, _ := runMode(t, e, ModeOff, src, params, 0)
	for _, strat := range []Strategy{StrategyMaterialize, StrategySplice} {
		e2, src, params := spliceEnv(t)
		tablesBefore := len(e2.cat.Tables())
		pagesBefore := e2.pool.Disk().NumPages()
		inj := faultinject.Enable()
		// The completed segment's join builds against a 9x-underestimated
		// grant, so its build side spills to partitions; the spill site
		// fires when those partitions are probed, which the materialize
		// strategy does while draining the segment into the temp table —
		// entirely before the remainder's first dispatch step. Snapshot
		// the spill count there to attribute it to the completed segment.
		spillsAtRemainder := -1
		inj.Arm("reopt.checkpoint", faultinject.Fault{Do: func() {
			inj.Arm("reopt.step", faultinject.Fault{Do: func() {
				spillsAtRemainder = inj.Hits("exec.hashjoin.spill")
			}})
		}})

		cfg := DefaultConfig(ModePlanOnly)
		cfg.Degree = 4
		cfg.Strategy = strat
		cfg.MemBudget = 128 << 10
		d := New(e2.cat, cfg)
		got, st, err := d.RunSQL(src, params, e2.ctx(params))
		totalSpills := inj.Hits("exec.hashjoin.spill")
		faultinject.Disable()
		if err != nil {
			t.Fatalf("strategy %v: %v", strat, err)
		}
		if st.PlanSwitches == 0 {
			t.Fatalf("strategy %v: fixture no longer forces a switch at degree 4", strat)
		}
		if strat == StrategyMaterialize {
			if spillsAtRemainder <= 0 {
				t.Fatalf("strategy %v: completed segment never spilled (spills before remainder = %d); the scenario is not exercised",
					strat, spillsAtRemainder)
			}
		} else if totalSpills == 0 {
			// The splice strategy drains the live (spilled) join lazily
			// inside the remainder, so only the total is attributable.
			t.Fatalf("strategy %v: no hash join spilled; the scenario is not exercised", strat)
		}
		if st.WorkersSpawned == 0 {
			t.Fatalf("strategy %v: no workers spawned at degree 4", strat)
		}
		rowsEqual(t, fmt.Sprintf("forced switch %v", strat), got, want)
		if gotN := len(e2.cat.Tables()); gotN != tablesBefore {
			t.Errorf("strategy %v: temp tables leaked: %d -> %d (%v)",
				strat, tablesBefore, gotN, e2.cat.Tables())
		}
		if gotP := e2.pool.Disk().NumPages(); gotP != pagesBefore {
			t.Errorf("strategy %v: heap pages leaked: %d -> %d", strat, pagesBefore, gotP)
		}
	}
}

// TestParallelSpilledJoin: tiny memory forces every worker's join to
// spill; results must still match.
func TestParallelSpilledJoin(t *testing.T) {
	e := buildThreeJoinEnv(t)
	params := plan.Params{"cut": types.NewFloat(999999)}
	want, _, _ := runMode(t, e, ModeOff, threeJoinQuery, params, 64<<10)
	got, _, _ := runDegree(t, e, ModeFull, 4, threeJoinQuery, params, 64<<10)
	rowsEqual(t, "spilled parallel", got, want)
}
