package reopt

import (
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/types"
)

// spliceEnv is the Figure-6 fixture: a 9x under-estimate on rel1 makes
// the planned index join into rel3 blow up, triggering a plan switch at
// the first checkpoint.
func spliceEnv(t *testing.T) (*env, string, plan.Params) {
	t.Helper()
	e := newEnv(8192)
	e.addTable(t, "rel1", 1350, 4000, 10)
	e.addTable(t, "rel2", 4000, 60000, 5)
	e.addTable(t, "rel3", 60000, 5, 5)
	e.analyzeAll(t)
	e.cat.CreateIndex("rel3", "rel3_pk")
	src := `select rel1_grp, count(*) as cnt from rel1, rel2, rel3
		where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
		and rel1_val < :v1 and rel1_grp < :v2 group by rel1_grp`
	return e, src, plan.Params{"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9)}
}

func runStrategy(t *testing.T, e *env, src string, params plan.Params, s Strategy) ([]types.Tuple, *Stats, float64) {
	t.Helper()
	cfg := DefaultConfig(ModePlanOnly)
	cfg.Strategy = s
	d := New(e.cat, cfg)
	before := e.m.Snapshot()
	rows, st, err := d.RunSQL(src, params, e.ctx(params))
	if err != nil {
		t.Fatalf("strategy %v: %v", s, err)
	}
	return rows, st, e.m.Snapshot().Sub(before).Cost()
}

func TestSpliceSwitchesWithoutMaterializing(t *testing.T) {
	e, src, params := spliceEnv(t)
	matRows, matSt, matCost := runStrategy(t, e, src, params, StrategyMaterialize)
	if matSt.PlanSwitches == 0 {
		t.Fatal("fixture no longer triggers a switch")
	}

	e2, src, params := spliceEnv(t)
	spRows, spSt, spCost := runStrategy(t, e2, src, params, StrategySplice)
	if spSt.PlanSwitches == 0 {
		t.Fatal("splice strategy did not switch")
	}
	rowsEqual(t, "splice vs materialize", spRows, matRows)

	spliced := false
	for _, d := range spSt.Decisions {
		if strings.Contains(d, "spliced onto live stream") {
			spliced = true
		}
	}
	if !spliced {
		t.Fatalf("splice fell back to materialization: %v", spSt.Decisions)
	}
	// Figure 5 vs Figure 6: the splice saves the temp write+read.
	if spCost >= matCost {
		t.Errorf("splice cost %.0f not below materialize cost %.0f", spCost, matCost)
	}
	// No temp tables left behind.
	for _, name := range e2.cat.Tables() {
		if strings.HasPrefix(name, "mqr_") {
			t.Errorf("leftover temp table %s", name)
		}
	}
}

func TestSpliceResultsMatchOff(t *testing.T) {
	e, src, params := spliceEnv(t)
	want, _, _ := runMode(t, e, ModeOff, src, params, 0)
	e2, src, params := spliceEnv(t)
	got, _, _ := runStrategy(t, e2, src, params, StrategySplice)
	rowsEqual(t, "splice vs off", got, want)
}

func TestStrategyString(t *testing.T) {
	if StrategyMaterialize.String() != "materialize" || StrategySplice.String() != "splice" {
		t.Error("strategy names")
	}
}
