package reopt

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/memmgr"
	"repro/internal/plan"
	"repro/internal/types"
)

// TestBrokeredReallocAdmitsWaiter is the multi-query payoff of §2.3:
// query A is admitted with the whole broker pool, query B's admission
// queues behind it, and B is admitted mid-A — strictly between A's
// re-allocation returning surplus memory and A finishing — because the
// improved run-time estimates showed A's grant was an over-reservation.
func TestBrokeredReallocAdmitsWaiter(t *testing.T) {
	// The Figure 3 environment: the optimizer over-estimates the
	// host-var filter on rel1 3x, so re-allocation at the first
	// checkpoint shrinks the not-yet-started join's demands and the
	// brokered dispatcher returns the difference.
	e := newEnv(4096)
	e.addTable(t, "rel1", 30000, 15000, 25)
	e.addTable(t, "rel2", 15000, 20000, 5)
	e.addTable(t, "rel3", 20000, 5, 5)
	e.analyzeAll(t)
	params := plan.Params{"cut": types.NewFloat(150)}
	src := `select rel1_grp, count(*) as cnt from rel1, rel2, rel3
		where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
		and rel1_val < :cut group by rel1_grp`

	const pool = 1 << 20
	broker := memmgr.NewBroker(pool)
	var mu sync.Mutex
	var events []memmgr.Event
	broker.SetTrace(func(ev memmgr.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	// A takes the entire pool.
	leaseA, err := broker.Admit(context.Background(), "A", pool, pool)
	if err != nil {
		t.Fatal(err)
	}
	if leaseA.Held() != pool {
		t.Fatalf("A holds %.0f, want the whole pool", leaseA.Held())
	}

	// B asks for a modest reservation and must queue: nothing is free.
	const bMin = 64 << 10
	admittedB := make(chan *memmgr.Lease, 1)
	go func() {
		l, err := broker.Admit(context.Background(), "B", bMin, bMin)
		if err != nil {
			t.Error(err)
		}
		admittedB <- l
	}()
	deadline := time.Now().Add(5 * time.Second)
	for broker.Stats().Waiting != 1 {
		if time.Now().After(deadline) {
			t.Fatal("B never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Run A's query synchronously under its lease. The memory-only
	// dispatcher re-allocates at the first checkpoint, returns the
	// surplus, and — inside that same broker transition — admits B.
	cfg := DefaultConfig(ModeMemoryOnly)
	cfg.MemBudget = pool
	cfg.Lease = leaseA
	cfg.QueryTag = "A"
	cfg.PoolPages = float64(e.pool.Capacity())
	d := New(e.cat, cfg)
	rows, st, err := d.RunSQL(src, params, e.ctx(params))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("A returned no rows")
	}
	if st.BrokerReturns == 0 {
		t.Fatal("A's re-allocation returned nothing to the broker")
	}
	leaseA.Release()

	leaseB := <-admittedB
	defer leaseB.Release()
	if !leaseB.Waited() {
		t.Error("B did not wait for admission")
	}

	// The trace gives a total order over broker transitions: B's
	// admission must fall after A's surplus return and before A's
	// release — it ran on memory A gave back mid-query, not on memory
	// freed by A finishing.
	mu.Lock()
	defer mu.Unlock()
	idx := map[string]int{}
	for i, ev := range events {
		key := ev.Kind + " " + ev.Query
		if _, ok := idx[key]; !ok {
			idx[key] = i
		}
	}
	retA, okR := idx["return A"]
	admB, okB := idx["admit B"]
	relA, okRel := idx["release A"]
	if !okR || !okB || !okRel {
		t.Fatalf("missing transitions in trace: %v", events)
	}
	if !(retA < admB && admB < relA) {
		t.Errorf("B admitted outside A's return window: return A@%d, admit B@%d, release A@%d\ntrace: %v",
			retA, admB, relA, events)
	}
	if st.BrokerReturnedBytes < bMin {
		t.Errorf("returned %.0f bytes, less than B's minimum %d — admission ordering was luck",
			st.BrokerReturnedBytes, bMin)
	}
}
