package reopt

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/histogram"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

func analyzedQuery(t *testing.T, e *env, src string) *optimizer.Query {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := optimizer.Analyze(e.cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestRemainderStmtGeneration(t *testing.T) {
	e := newEnv(256)
	e.addTable(t, "a", 10, 5, 2)
	e.addTable(t, "b", 10, 5, 2)
	e.addTable(t, "c", 10, 5, 2)
	e.analyzeAll(t)
	q := analyzedQuery(t, e, `select a_grp, sum(c_val) as total from a, b, c
		where a.a_fk = b.b_pk and b.b_fk = c.c_pk and a_val < 5 and c_val > 1
		group by a_grp order by total desc`)

	// Consume a and b (relations 0 and 1).
	rem, err := remainderStmt(q, 0b011, "temp1")
	if err != nil {
		t.Fatal(err)
	}
	got := rem.SQL()
	checks := []string{
		"from temp1, c",          // temp replaces a and b
		"temp1.b_b_fk = c.c_pk",  // join pred rewritten to temp column
		"group by temp1.a_a_grp", // group key redirected
		"temp1.a_a_grp as a_grp", // output name preserved
		"order by total desc",    // alias-based order key untouched
	}
	for _, want := range checks {
		if !strings.Contains(got, want) {
			t.Errorf("remainder SQL missing %q:\n%s", want, got)
		}
	}
	// Consumed predicates must be gone.
	for _, gone := range []string{"a_val < 5", "a.a_fk"} {
		if strings.Contains(got, gone) {
			t.Errorf("remainder SQL still contains consumed predicate %q:\n%s", gone, got)
		}
	}
	// The surviving local predicate on c stays.
	if !strings.Contains(got, "c_val > 1") {
		t.Errorf("remainder SQL dropped live predicate:\n%s", got)
	}
	// The generated SQL must re-parse.
	if _, err := sql.Parse(got); err != nil {
		t.Errorf("generated SQL does not re-parse: %v\n%s", err, got)
	}
}

func TestRemainderStmtNothingConsumed(t *testing.T) {
	e := newEnv(256)
	e.addTable(t, "a", 10, 5, 2)
	e.analyzeAll(t)
	q := analyzedQuery(t, e, "select a_grp from a")
	if _, err := remainderStmt(q, 0, "temp1"); err == nil {
		t.Error("empty consumed mask accepted")
	}
}

func TestTempSchemaNaming(t *testing.T) {
	mat := types.NewSchema(
		types.Column{Table: "rel1", Name: "x", Kind: types.KindInt, Key: true},
		types.Column{Table: "rel2", Name: "y", Kind: types.KindString},
	)
	ts := tempSchema(mat)
	if ts.Columns[0].Name != "rel1_x" || ts.Columns[1].Name != "rel2_y" {
		t.Errorf("temp columns = %v", ts.Columns)
	}
	if ts.Columns[0].Key {
		t.Error("key flag survived materialization")
	}
}

func TestDecomposeShapes(t *testing.T) {
	e := buildThreeJoinEnv(t)
	d := New(e.cat, DefaultConfig(ModeFull))
	res, err := d.EstimateOnly(threeJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decompose(res.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.steps) != 2 {
		t.Fatalf("steps = %d, want 2 for a 3-relation query", len(dec.steps))
	}
	if dec.leafTop == nil {
		t.Fatal("no leaf pipeline")
	}
	// Tops must include the aggregate and sort.
	var hasAgg, hasSort bool
	for _, n := range dec.tops {
		switch n.(type) {
		case *plan.Agg:
			hasAgg = true
		case *plan.Sort:
			hasSort = true
		}
	}
	if !hasAgg || !hasSort {
		t.Errorf("tops missing agg/sort: %v", dec.tops)
	}
	// stepTopNode(-1) is the leaf.
	if dec.stepTopNode(-1) != dec.leafTop {
		t.Error("stepTopNode(-1) != leafTop")
	}
}

func TestFillTempStatsFallsBackToBase(t *testing.T) {
	e := newEnv(256)
	e.addTable(t, "a", 100, 5, 2)
	e.addTable(t, "b", 100, 5, 2)
	e.analyzeAll(t)
	q := analyzedQuery(t, e, "select a_grp from a, b where a.a_fk = b.b_pk")

	matSchema := q.Rels[0].Schema.Concat(q.Rels[1].Schema)
	heap := e.cat.Pool()
	_ = heap
	tbl, err := e.cat.CreateTable("tmp_stats", tempSchema(matSchema))
	if err != nil {
		t.Fatal(err)
	}
	cnode := &plan.Collector{Input: &plan.Scan{Out: matSchema}}
	fillTempStats(tbl, matSchema, nil, cnode, q, 50)
	grpIdx, _ := tbl.Schema.Resolve("", "a_a_grp")
	cs := tbl.ColStats[grpIdx]
	if cs == nil || !cs.HasHistogram() {
		t.Error("base histogram not carried into temp stats")
	}
	if cs.Distinct > 50 {
		t.Errorf("distinct %g not capped by output rows", cs.Distinct)
	}
	if cs.Hist.Family != histogram.MaxDiff {
		t.Errorf("unexpected family %v", cs.Hist.Family)
	}
	_ = catalog.AnalyzeOptions{}
}
