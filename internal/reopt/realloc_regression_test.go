package reopt

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

// TestReallocationNeverAddsSpillIO is a regression test for a subtle
// bug: dynamic memory re-allocation used to honor a scaled-down MemMax
// estimate and take memory away from a pending join, introducing a spill
// the initial allocation had already avoided (observed as +38% on Q7
// with fresh statistics). With accurate estimates, running with
// re-optimization enabled must never increase spill I/O.
func TestReallocationNeverAddsSpillIO(t *testing.T) {
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	pool := storage.NewBufferPool(storage.NewDisk(m), 256)
	cat := catalog.New(pool)
	if err := tpcd.Load(cat, tpcd.Config{SF: 0.01, Seed: 0}); err != nil {
		t.Fatal(err)
	}
	run := func(mode Mode) storage.Snapshot {
		if err := pool.EvictAll(); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(mode)
		cfg.MemBudget = 2 << 20
		cfg.PoolPages = 256
		d := New(cat, cfg)
		before := m.Snapshot()
		q, _ := tpcd.ByName("Q7")
		if _, _, err := d.RunSQL(q.SQL, plan.Params{}, &exec.Ctx{Pool: pool, Meter: m, Params: plan.Params{}}); err != nil {
			t.Fatal(err)
		}
		return m.Snapshot().Sub(before)
	}
	off := run(ModeOff)
	mem := run(ModeMemoryOnly)
	if mem.PageWrites > off.PageWrites {
		t.Errorf("memory re-allocation added spill writes: %d vs %d", mem.PageWrites, off.PageWrites)
	}
	if mem.Cost() > off.Cost()*1.05 {
		t.Errorf("memory-only mode %.0f exceeds normal %.0f by more than the mu budget", mem.Cost(), off.Cost())
	}
}
