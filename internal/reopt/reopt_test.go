package reopt

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/histogram"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// env is a fresh database with its own simulated disk.
type env struct {
	cat  *catalog.Catalog
	pool *storage.BufferPool
	m    *storage.CostMeter
}

func newEnv(poolPages int) *env {
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	pool := storage.NewBufferPool(storage.NewDisk(m), poolPages)
	return &env{cat: catalog.New(pool), pool: pool, m: m}
}

func (e *env) ctx(params plan.Params) *exec.Ctx {
	if params == nil {
		params = plan.Params{}
	}
	return &exec.Ctx{Pool: e.pool, Meter: e.m, Params: params}
}

// addTable creates and fills a table with deterministic data:
// name(pk key, fk, grp, val).
func (e *env) addTable(t *testing.T, name string, rows int, fkMod, grpMod int64) *catalog.Table {
	t.Helper()
	tbl, err := e.cat.CreateTable(name, types.NewSchema(
		types.Column{Name: name + "_pk", Kind: types.KindInt, Key: true},
		types.Column{Name: name + "_fk", Kind: types.KindInt},
		types.Column{Name: name + "_grp", Kind: types.KindInt},
		types.Column{Name: name + "_val", Kind: types.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(types.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(i) % fkMod),
			types.NewInt(int64(i) % grpMod),
			types.NewFloat(float64(i % 1000)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func (e *env) analyzeAll(t *testing.T) {
	t.Helper()
	for _, name := range e.cat.Tables() {
		if err := e.cat.Analyze(name, catalog.AnalyzeOptions{Family: histogram.MaxDiff}); err != nil {
			t.Fatal(err)
		}
	}
}

func sortRows(rows []types.Tuple) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func rowsEqual(t *testing.T, label string, got, want []types.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	sortRows(got)
	sortRows(want)
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: arity %d vs %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if !got[i][j].Equal(want[i][j]) {
				t.Fatalf("%s row %d col %d: %v != %v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// threeJoinQuery joins a -> b -> c with a host-var filter on a, grouped.
const threeJoinQuery = `select a_grp, count(*) as cnt, avg(c_val) as av
	from a, b, c
	where a.a_fk = b.b_pk and b.b_fk = c.c_pk and a_val < :cut
	group by a_grp order by a_grp`

func buildThreeJoinEnv(t *testing.T) *env {
	e := newEnv(2048)
	e.addTable(t, "a", 6000, 500, 20)
	e.addTable(t, "b", 500, 50, 5) // b_pk joins a_fk; b_fk joins c_pk

	e.addTable(t, "c", 50, 5, 5)
	e.analyzeAll(t)
	e.cat.CreateIndex("b", "b_pk")
	e.cat.CreateIndex("c", "c_pk")
	return e
}

func runMode(t *testing.T, e *env, mode Mode, src string, params plan.Params, budget float64) ([]types.Tuple, *Stats, float64) {
	t.Helper()
	cfg := DefaultConfig(mode)
	if budget > 0 {
		cfg.MemBudget = budget
	}
	d := New(e.cat, cfg)
	before := e.m.Snapshot()
	rows, st, err := d.RunSQL(src, params, e.ctx(params))
	if err != nil {
		t.Fatalf("mode %v: %v", mode, err)
	}
	return rows, st, e.m.Snapshot().Sub(before).Cost()
}

func TestAllModesProduceIdenticalResults(t *testing.T) {
	for _, cut := range []float64{50, 999999} { // under- and over-estimates
		e := buildThreeJoinEnv(t)
		params := plan.Params{"cut": types.NewFloat(cut)}
		want, _, _ := runMode(t, e, ModeOff, threeJoinQuery, params, 0)
		for _, mode := range []Mode{ModeMemoryOnly, ModePlanOnly, ModeFull, ModeRestart} {
			got, _, _ := runMode(t, e, mode, threeJoinQuery, params, 0)
			rowsEqual(t, fmt.Sprintf("cut=%g mode=%v", cut, mode), got, want)
		}
	}
}

func TestAllModesIdenticalWithTinyMemory(t *testing.T) {
	// Force spilling everywhere: results must still agree.
	e := buildThreeJoinEnv(t)
	params := plan.Params{"cut": types.NewFloat(999999)}
	want, _, _ := runMode(t, e, ModeOff, threeJoinQuery, params, 64<<10)
	for _, mode := range []Mode{ModeMemoryOnly, ModeFull} {
		got, _, _ := runMode(t, e, mode, threeJoinQuery, params, 64<<10)
		rowsEqual(t, fmt.Sprintf("mode=%v", mode), got, want)
	}
}

func TestCollectorsInsertedAndObserved(t *testing.T) {
	e := buildThreeJoinEnv(t)
	params := plan.Params{"cut": types.NewFloat(500)}
	_, st, _ := runMode(t, e, ModeFull, threeJoinQuery, params, 0)
	if st.CollectorsInserted == 0 {
		t.Error("no collectors inserted")
	}
	if st.Observations == 0 {
		t.Error("no observations delivered")
	}
}

// TestFigure3MemoryReallocation reproduces the paper's Figure 3
// walk-through: the optimizer over-estimates a filter's output (host
// variable, default selectivity 1/3), the Memory Manager starves the
// second join, and dynamic re-allocation — fed the observed, much
// smaller cardinality — lets the second join run in one pass.
func TestFigure3MemoryReallocation(t *testing.T) {
	e := newEnv(4096)
	// rel1: 30000 rows, filtered by a host variable. The optimizer
	// guesses 1/3 = 10000 rows; :cut = 150 actually keeps 4500. rel1's
	// estimate is the smallest relation, so it becomes the leftmost
	// build — the paper's plan shape, where the filter's error
	// propagates into every later build size.
	e.addTable(t, "rel1", 30000, 15000, 25)
	e.addTable(t, "rel2", 15000, 20000, 5)
	e.addTable(t, "rel3", 20000, 5, 5)
	e.analyzeAll(t)
	params := plan.Params{"cut": types.NewFloat(150)}
	src := `select rel1_grp, count(*) as cnt from rel1, rel2, rel3
		where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
		and rel1_val < :cut group by rel1_grp`

	// 1 MB cannot satisfy both joins under the optimizer's estimates,
	// but can once the observed build is known to be ~3x smaller.
	const budget = 1 << 20

	wantRows, _, offCost := runMode(t, e, ModeOff, src, params, budget)
	gotRows, st, memCost := runMode(t, e, ModeMemoryOnly, src, params, budget)
	rowsEqual(t, "figure3", gotRows, wantRows)
	if st.MemReallocs == 0 {
		t.Fatal("no memory re-allocation happened")
	}
	if memCost >= offCost {
		t.Errorf("memory re-allocation did not help: %.0f (realloc) vs %.0f (normal)", memCost, offCost)
	}
}

// TestFigure6PlanSwitch reproduces the Figure 5/6 walk-through: the
// optimizer badly under-estimates the filtered size of rel1 (host
// variable keeps everything), making the chosen remainder sub-optimal;
// the dispatcher materializes the running join's output and re-submits
// SQL for the remainder of the query.
func TestFigure6PlanSwitch(t *testing.T) {
	e := newEnv(8192)
	// Two host-var predicates on rel1 look very selective to the
	// optimizer (1/3 × 1/3 ≈ 150 of 1350 rows) but actually keep
	// everything. The tiny estimated outer makes an indexed
	// nested-loops join into the large rel3 look cheap; the observed
	// 9x blow-up makes the dispatcher materialize the first join and
	// re-plan the remainder (which prefers a hash join).
	e.addTable(t, "rel1", 1350, 4000, 10)
	e.addTable(t, "rel2", 4000, 60000, 5)
	e.addTable(t, "rel3", 60000, 5, 5)
	e.analyzeAll(t)
	e.cat.CreateIndex("rel3", "rel3_pk")
	src := `select rel1_grp, count(*) as cnt from rel1, rel2, rel3
		where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
		and rel1_val < :v1 and rel1_grp < :v2 group by rel1_grp`
	params := plan.Params{"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9)}

	wantRows, _, _ := runMode(t, e, ModeOff, src, params, 0)
	gotRows, st, planCost := runMode(t, e, ModePlanOnly, src, params, 0)
	rowsEqual(t, "figure6", gotRows, wantRows)
	if st.ReoptConsidered == 0 {
		t.Fatal("equations never evaluated despite a 9x cardinality error")
	}
	if st.PlanSwitches == 0 {
		t.Logf("plans: %v", st.Plans)
		t.Fatal("no plan switch despite severe under-estimate")
	}
	if len(st.Plans) < 2 {
		t.Error("switched plan not recorded")
	}
	// The switch must beat sticking with the indexed join.
	e2 := newEnv(8192)
	e2.addTable(t, "rel1", 1350, 4000, 10)
	e2.addTable(t, "rel2", 4000, 60000, 5)
	e2.addTable(t, "rel3", 60000, 5, 5)
	e2.analyzeAll(t)
	e2.cat.CreateIndex("rel3", "rel3_pk")
	_, _, offCost := runMode(t, e2, ModeOff, src, params, 0)
	if planCost >= offCost {
		t.Errorf("plan modification did not pay off: %.0f (switched) vs %.0f (normal)", planCost, offCost)
	}
}

func TestNoReoptimizationWhenEstimatesAccurate(t *testing.T) {
	e := buildThreeJoinEnv(t)
	// Literal predicate with a MaxDiff histogram: estimates near-exact,
	// Equation 2 must keep the plan.
	src := `select a_grp, count(*) as cnt from a, b, c
		where a.a_fk = b.b_pk and b.b_fk = c.c_pk and a_val < 500
		group by a_grp`
	_, st, _ := runMode(t, e, ModeFull, src, nil, 0)
	if st.PlanSwitches != 0 {
		t.Errorf("plan switched despite accurate estimates (%d switches)", st.PlanSwitches)
	}
}

func TestSingleJoinNeverSwitches(t *testing.T) {
	// "Queries that contain zero or one joins will never get
	// re-optimized" (§3.2): by the time statistics are complete the
	// query is nearly done, and Equation 1 rejects it.
	e := buildThreeJoinEnv(t)
	src := `select a_grp, count(*) as cnt from a, b
		where a.a_fk = b.b_pk and a_val < :cut group by a_grp`
	params := plan.Params{"cut": types.NewFloat(1e9)}
	_, st, _ := runMode(t, e, ModeFull, src, params, 0)
	if st.PlanSwitches != 0 {
		t.Errorf("single-join query switched plans %d times", st.PlanSwitches)
	}
}

func TestRestartModeWorksButCostsMore(t *testing.T) {
	e := newEnv(8192)
	e.addTable(t, "rel1", 1350, 4000, 10)
	e.addTable(t, "rel2", 4000, 60000, 5)
	e.addTable(t, "rel3", 60000, 5, 5)
	e.analyzeAll(t)
	e.cat.CreateIndex("rel3", "rel3_pk")
	src := `select rel1_grp, count(*) as cnt from rel1, rel2, rel3
		where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
		and rel1_val < :v1 and rel1_grp < :v2 group by rel1_grp`
	params := plan.Params{"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9)}

	wantRows, _, _ := runMode(t, e, ModeOff, src, params, 0)
	gotRows, st, restartCost := runMode(t, e, ModeRestart, src, params, 0)
	rowsEqual(t, "restart", gotRows, wantRows)
	if st.PlanSwitches == 0 {
		t.Skip("restart never triggered on this instance")
	}
	_, _, fullCost := runMode(t, e, ModeFull, src, params, 0)
	if restartCost < fullCost {
		t.Logf("restart %.0f beat full %.0f — unexpected but not incorrect", restartCost, fullCost)
	}
}

func TestMuGuaranteeOnSimpleQueries(t *testing.T) {
	// With mu = 0.05 the overhead on queries that cannot benefit must
	// stay tiny (the paper: "none of the queries ever performed 5%
	// worse than normal").
	e := buildThreeJoinEnv(t)
	src := "select a_grp, count(*) as cnt from a where a_val < 500 group by a_grp"
	_, _, offCost := runMode(t, e, ModeOff, src, nil, 0)
	_, _, fullCost := runMode(t, e, ModeFull, src, nil, 0)
	if fullCost > offCost*1.05 {
		t.Errorf("overhead %.1f%% exceeds mu=5%%", (fullCost/offCost-1)*100)
	}
}

func TestEstimateOnly(t *testing.T) {
	e := buildThreeJoinEnv(t)
	d := New(e.cat, DefaultConfig(ModeFull))
	res, err := d.EstimateOnly(threeJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root.Est().Cost <= 0 {
		t.Error("no cost estimate")
	}
	hasCollector := false
	plan.Walk(res.Root, func(n plan.Node) {
		if _, ok := n.(*plan.Collector); ok {
			hasCollector = true
		}
	})
	if !hasCollector {
		t.Error("EstimateOnly plan missing collectors")
	}
}

func TestModeStrings(t *testing.T) {
	names := map[Mode]string{
		ModeOff: "off", ModeMemoryOnly: "memory-only", ModePlanOnly: "plan-only",
		ModeFull: "full", ModeRestart: "restart",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}
