package reopt

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/types"
)

// TestWriteDrivenStalenessTriggersReopt is the headline concurrent-DML
// scenario: a long-running query starts against accurate statistics, a
// concurrent transaction commits a large batch of inserts mid-query
// (bumping the stats version and shifting a base table's cardinality),
// and the in-flight query's next checkpoint trips Equation 2 — a
// re-optimization it provably would not have considered without the
// writes, since the same query with no writes keeps its plan at every
// checkpoint. Snapshot isolation keeps the result rows identical.
func TestWriteDrivenStalenessTriggersReopt(t *testing.T) {
	run := func(writeAtCheckpoint bool) (*Stats, []obs.Event, []types.Tuple) {
		t.Helper()
		e := buildThreeJoinEnv(t)
		params := plan.Params{"cut": types.NewFloat(999999)}
		cfg := DefaultConfig(ModeFull)
		cfg.DisableIndexJoin = true // hash joins at every step -> checkpoints
		tr := obs.NewTrace(512)
		cfg.Trace = tr
		var once sync.Once
		if writeAtCheckpoint {
			cfg.CheckpointHook = func(step int) {
				once.Do(func() {
					tbl, err := e.cat.Table("c")
					if err != nil {
						t.Error(err)
						return
					}
					tx := e.cat.BeginTxn()
					for i := 50; i < 2500; i++ {
						if err := tx.Insert(tbl, types.Tuple{
							types.NewInt(int64(i)),
							types.NewInt(int64(i % 5)),
							types.NewInt(int64(i % 5)),
							types.NewFloat(float64(i % 1000)),
						}); err != nil {
							t.Error(err)
							tx.Abort()
							return
						}
					}
					tx.Commit()
				})
			}
		}
		d := New(e.cat, cfg)
		defer d.Cleanup()
		// The query reads under a registered snapshot, as the session
		// layer arranges: concurrent commits must not change its rows.
		rd := e.cat.BeginRead()
		defer rd.End()
		ctx := e.ctx(params)
		ctx.Snap = rd.Snapshot()
		rows, st, err := d.RunSQL(threeJoinQuery, params, ctx)
		if err != nil {
			t.Fatal(err)
		}
		return st, tr.Events(), rows
	}

	baseSt, _, baseRows := run(false)
	if len(baseSt.Decisions) == 0 || baseSt.Observations == 0 {
		t.Fatalf("baseline made no checkpoint decisions (obs=%d); scenario needs checkpoints",
			baseSt.Observations)
	}
	for _, msg := range baseSt.Decisions {
		if !strings.Contains(msg, "eq2") {
			t.Fatalf("baseline tripped a checkpoint without any writes: %q", msg)
		}
	}

	st, events, rows := run(true)
	rowsEqual(t, "snapshot isolation under concurrent commit", rows, baseRows)
	tripped := false
	for _, msg := range st.Decisions {
		if !strings.Contains(msg, "eq2") {
			tripped = true // Eq2 passed: eq1 keep, trial, or switch
		}
	}
	if !tripped {
		t.Errorf("50x growth of c never tripped Equation 2; decisions: %v", st.Decisions)
	}
	refreshed := false
	for _, ev := range events {
		if ev.Kind == "checkpoint" && strings.Contains(ev.Msg, "stale") {
			refreshed = true
		}
	}
	if !refreshed {
		t.Error("trace has no mid-query staleness refresh event")
	}
}
