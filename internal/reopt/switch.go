package reopt

import (
	"fmt"

	"repro/internal/exchange"
	"repro/internal/exec"
	"repro/internal/memmgr"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/scia"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// matCollectorID tags the ad-hoc collector wrapped around a materialized
// stream (Figure 6 places a statistics collector directly above the
// operator whose output is redirected to Temp1).
const matCollectorID = -1

// switchPlan executes the paper's Figure 6 plan modification: let the
// currently executing join run to completion with its output redirected
// to a temporary table (observed by an ad-hoc statistics collector),
// register the temp table with its real statistics, generate SQL for the
// remainder of the query in terms of the temp table, and re-submit it
// through the regular compile-and-dispatch path.
func (d *Dispatcher) switchPlan(res *optimizer.Result, dec *decomposed, i int, topOp exec.Operator, obs *plan.Observed, cnode *plan.Collector, params plan.Params, ctx *exec.Ctx, st *Stats, switchesLeft int) ([]types.Tuple, error) {
	if d.Cfg.Mode == ModeRestart {
		// The restart ablation discards the completed work entirely, so
		// the running join is never drained — close it now or its
		// spilled build/probe partitions outlive the query.
		topOp.Close()
		return d.restartPlan(res, dec, params, ctx, st, switchesLeft)
	}
	matNode := dec.stepTopNode(i)
	consumed := consumedMask(res, i)
	if d.Cfg.Strategy == StrategySplice && cnode != nil {
		rows, ok, err := d.splicePlan(res, matNode, topOp, obs, cnode, consumed, params, ctx, st, switchesLeft)
		if err != nil {
			return nil, err
		}
		if ok {
			return rows, nil
		}
		// The re-optimized remainder did not keep the intermediate
		// leftmost; fall back to Figure 6.
		d.decide(st, "splice: remainder reordered the intermediate; falling back to materialization",
			"strategy", "splice", "fallback", "materialize")
	}
	return d.materializeAndResubmit(res, matNode, topOp, consumed, params, ctx, st, switchesLeft)
}

// splicePlan implements Figure 5: the remainder of the query is
// re-optimized against a virtual temp table carrying the improved
// estimates, and — when the new plan keeps the intermediate as its
// leftmost input — the running join's output stream is spliced directly
// into the new plan, preserving all completed execution state and
// paying no materialization.
func (d *Dispatcher) splicePlan(res *optimizer.Result, matNode plan.Node, liveOp exec.Operator, obs *plan.Observed, cnode *plan.Collector, consumed uint32, params plan.Params, ctx *exec.Ctx, st *Stats, switchesLeft int) ([]types.Tuple, bool, error) {
	matEst := matNode.Est()
	d.tempSeq++
	tempName := d.tempName("splice")
	heap := storage.NewHeapFile(ctx.Pool) // never populated: the stream is live
	tbl, err := d.Cat.RegisterTemp(tempName, tempSchema(matNode.Schema()), heap)
	if err != nil {
		return nil, false, err
	}
	d.trackTemp(tempName)
	// Best-effort at each early exit; a failed drop leaves the name
	// tracked for the session's Cleanup backstop.
	dropTemp := func() {
		d.dropTemp(tempName)
	}
	tbl.Cardinality = matEst.Rows
	if matEst.Rows > 0 {
		tbl.AvgTupleBytes = matEst.Bytes / matEst.Rows
	}
	fillTempStats(tbl, matNode.Schema(), obs, cnode, res.Query, matEst.Rows)

	remStmt, err := remainderStmt(res.Query, consumed, tempName)
	if err != nil {
		dropTemp()
		return nil, false, err
	}
	rq, err := optimizer.Analyze(d.Cat, remStmt)
	if err != nil {
		dropTemp()
		return nil, false, err
	}
	opt := &optimizer.Optimizer{
		Weights:          d.Cfg.Weights,
		MemBudget:        d.budget(),
		DisableIndexJoin: d.Cfg.DisableIndexJoin,
		PoolPages:        d.Cfg.PoolPages,
	}
	newRes, err := opt.Optimize(rq)
	if err != nil {
		dropTemp()
		return nil, false, err
	}
	// Splice is only possible when the intermediate stays leftmost: the
	// live stream can be consumed exactly once, as a build input.
	if newRes.Query.Rels[newRes.Order[0]].Binding != tempName {
		dropTemp()
		return nil, false, nil
	}
	if d.Cfg.Mode != ModeOff {
		ins, err := scia.Insert(newRes, d.sciaConfig())
		if err != nil {
			dropTemp()
			return nil, false, err
		}
		st.CollectorsInserted += len(ins)
	}
	memmgr.New(d.budget()).Allocate(newRes.Root)
	newRes.Root = exchange.Parallelize(newRes.Root, d.Cfg.Degree)
	st.PlanSwitches++
	ctx.Prog.RecordSwitch()
	d.registerPlan(newRes, st, ctx)
	d.decide(st, fmt.Sprintf("splice: remainder spliced onto live stream as %s", tempName),
		"strategy", "splice", "temp", tempName)
	if d.Cfg.Trace.Enabled() {
		d.Cfg.Trace.Emit("switch", "plan switch via splice (Figure 5)",
			"strategy", "splice",
			"temp", tempName,
			"est_rows", matEst.Rows,
			"new_plan_est_cost", newRes.Root.Est().Cost,
		)
	}
	rows, err := d.dispatchWith(newRes, params, ctx, st, switchesLeft-1, liveOp)
	dropTemp()
	return rows, true, err
}

// restartPlan is the paper's rejected option 1 (ablation): discard the
// completed build work, re-scan the leftmost relation into a temp table,
// and re-plan everything else. The re-scan is the "discarded work" made
// visible in the cost meter.
func (d *Dispatcher) restartPlan(res *optimizer.Result, dec *decomposed, params plan.Params, ctx *exec.Ctx, st *Stats, switchesLeft int) ([]types.Tuple, error) {
	consumed := uint32(1) << uint(res.Order[0])
	leafOp, err := exec.Build(dec.leafTop, ctx)
	if err != nil {
		return nil, err
	}
	return d.materializeAndResubmit(res, dec.leafTop, leafOp, consumed, params, ctx, st, switchesLeft)
}

// materializeAndResubmit drains op into a temp table under an ad-hoc
// statistics collector, then recursively runs the remainder query.
func (d *Dispatcher) materializeAndResubmit(res *optimizer.Result, matNode plan.Node, op exec.Operator, consumed uint32, params plan.Params, ctx *exec.Ctx, st *Stats, switchesLeft int) ([]types.Tuple, error) {
	matSchema := matNode.Schema()
	spec := d.matSpec(res, matSchema, consumed)
	cnode := &plan.Collector{Input: matNode, Spec: spec, ID: matCollectorID}

	var matObs *plan.Observed
	oldSink := ctx.StatsSink
	ctx.StatsSink = func(o *plan.Observed) {
		if o.CollectorID == matCollectorID {
			matObs = o
			return
		}
		if oldSink != nil {
			oldSink(o)
		}
	}
	colOp := exec.NewCollector(cnode, op, ctx)
	if err := colOp.Open(); err != nil {
		// Close the collector (and through it the drained stream) so a
		// failed open does not strand the running join's partitions.
		colOp.Close()
		ctx.StatsSink = oldSink
		return nil, err
	}
	heap, err := exec.Materialize(colOp, ctx.Pool)
	colOp.Close()
	ctx.StatsSink = oldSink
	if err != nil {
		return nil, err
	}

	d.tempSeq++
	tempName := d.tempName("temp")
	tbl, err := d.Cat.RegisterTemp(tempName, tempSchema(matSchema), heap)
	if err != nil {
		heap.Drop() // free the materialized pages; nobody owns them now
		return nil, err
	}
	d.trackTemp(tempName)
	if matObs != nil {
		fillTempStats(tbl, matSchema, matObs, cnode, res.Query, float64(heap.NumTuples()))
	}

	remStmt, err := remainderStmt(res.Query, consumed, tempName)
	if err != nil {
		d.dropTemp(tempName)
		return nil, err
	}
	st.PlanSwitches++
	ctx.Prog.RecordSwitch()
	if d.Cfg.Trace.Enabled() {
		d.Cfg.Trace.Emit("switch", "plan switch via materialize-and-resubmit (Figure 6)",
			"strategy", "materialize",
			"temp", tempName,
			"rows", heap.NumTuples(),
		)
	}
	rows, err := d.run(remStmt, params, ctx, st, switchesLeft-1)
	if derr := d.dropTemp(tempName); derr != nil && err == nil {
		err = derr
	}
	return rows, err
}

// matSpec chooses the statistics worth observing on a materialized
// stream: histograms on columns the remaining predicates will consult,
// and a distinct count for the final GROUP BY if every grouped column is
// present.
func (d *Dispatcher) matSpec(res *optimizer.Result, matSchema *types.Schema, consumed uint32) plan.CollectorSpec {
	q := res.Query
	spec := plan.CollectorSpec{HistFamily: d.Cfg.HistFamily, Seed: d.Cfg.Seed + int64(d.tempSeq) + 101}
	seen := map[int]bool{}
	for _, pr := range q.Preds {
		if pr.RelMask()&^consumed == 0 {
			continue // fully applied inside the prefix
		}
		for _, ref := range predRefs(pr.AST) {
			rel, col, err := q.Owner(ref)
			if err != nil || consumed&(1<<uint(rel)) == 0 {
				continue
			}
			c := q.Rels[rel].Schema.Columns[col]
			ci, err := matSchema.Resolve(c.Table, c.Name)
			if err != nil || seen[ci] {
				continue
			}
			seen[ci] = true
			spec.HistCols = append(spec.HistCols, ci)
		}
	}
	if len(q.Stmt.GroupBy) > 0 {
		var set []int
		ok := true
		for _, g := range q.Stmt.GroupBy {
			ref, isRef := g.(*sql.ColumnRef)
			if !isRef {
				ok = false
				break
			}
			rel, col, err := q.Owner(ref)
			if err != nil || consumed&(1<<uint(rel)) == 0 {
				ok = false
				break
			}
			c := q.Rels[rel].Schema.Columns[col]
			ci, err := matSchema.Resolve(c.Table, c.Name)
			if err != nil {
				ok = false
				break
			}
			set = append(set, ci)
		}
		if ok && len(set) > 0 {
			spec.UniqueCols = append(spec.UniqueCols, set)
		}
	}
	return spec
}

// predRefs lists every column reference in a predicate.
func predRefs(p sql.Predicate) []*sql.ColumnRef {
	var exprs []sql.Expr
	switch x := p.(type) {
	case *sql.ComparePred:
		exprs = []sql.Expr{x.Left, x.Right}
	case *sql.BetweenPred:
		exprs = []sql.Expr{x.Expr, x.Lo, x.Hi}
	case *sql.InPred:
		exprs = append([]sql.Expr{x.Expr}, x.List...)
	case *sql.LikePred:
		exprs = []sql.Expr{x.Expr}
	}
	var out []*sql.ColumnRef
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.ColumnRef:
			out = append(out, x)
		case *sql.BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *sql.AggExpr:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	for _, e := range exprs {
		walk(e)
	}
	return out
}
