package reopt

import (
	"fmt"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/exchange"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/histogram"
	"repro/internal/memmgr"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/scia"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// Mode selects which parts of Dynamic Re-Optimization are active. The
// paper's Figure 11 isolates memory-only and plan-only modes; Figure 10
// compares Off ("Normal") against Full ("Re-Optimized").
type Mode uint8

// Available modes.
const (
	// ModeOff executes the optimizer's plan as-is, with no statistics
	// collectors — the paper's "Normal" baseline.
	ModeOff Mode = iota
	// ModeMemoryOnly uses improved estimates solely for re-invoking the
	// Memory Manager; plan modification is disabled.
	ModeMemoryOnly
	// ModePlanOnly modifies sub-optimal plans but never re-allocates
	// memory.
	ModePlanOnly
	// ModeFull is the complete algorithm.
	ModeFull
	// ModeRestart is the paper's rejected first option (§2.4): discard
	// the work done so far and restart with a fresh plan. Implemented
	// as an ablation to show why the paper calls it "too risky".
	ModeRestart
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeMemoryOnly:
		return "memory-only"
	case ModePlanOnly:
		return "plan-only"
	case ModeFull:
		return "full"
	case ModeRestart:
		return "restart"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Strategy selects how a plan switch transfers the running operator's
// output into the new plan (§2.4).
type Strategy uint8

// The two switch strategies of Figures 5 and 6.
const (
	// StrategyMaterialize is the paper's implemented variant (Figure
	// 6): the running join completes with its output redirected to a
	// temporary table, and SQL for the remainder is re-submitted over
	// it. Simple, but pays a write+read of the intermediate.
	StrategyMaterialize Strategy = iota
	// StrategySplice is the paper's "best under the circumstances"
	// option (Figure 5): execution state is kept — the running join's
	// output stream is spliced directly into the new remainder plan's
	// leaf, with no materialization. Requires the new plan to keep the
	// intermediate leftmost; when it does not, the dispatcher falls
	// back to materialization.
	StrategySplice
)

// String names the strategy.
func (s Strategy) String() string {
	if s == StrategySplice {
		return "splice"
	}
	return "materialize"
}

// Config carries the algorithm's tuning knobs, defaulting to the paper's
// settings: μ=0.05, θ₁=0.05, θ₂=0.2.
type Config struct {
	Mode     Mode
	Strategy Strategy
	Theta1   float64 // Equation 1 threshold
	Theta2   float64 // Equation 2 threshold
	Mu       float64 // SCIA overhead budget fraction

	// MemBudget is the per-query operator memory in bytes.
	MemBudget float64
	// Lease, when set, ties the query's operator memory to a shared
	// broker pool instead of the fixed MemBudget: the budget is
	// whatever the lease currently holds, mid-query re-allocation
	// returns surplus grants to the broker for other queries (§2.3's
	// multi-query motivation), and grows the lease when improved
	// estimates raise the remainder's demands.
	Lease *memmgr.Lease
	// QueryTag uniquely names this query across concurrent sessions;
	// it is woven into temp-table names so plan switches by different
	// queries never collide in the shared catalog.
	QueryTag string
	// PoolPages is the shared buffer pool size, for cache-aware
	// index-join costing; 0 assumes cold fetches.
	PoolPages float64
	// HistFamily is the family for catalog and run-time histograms.
	HistFamily histogram.Family
	Weights    storage.CostWeights
	// MaxSwitches bounds recursive plan modification (default 3).
	MaxSwitches int
	// SwitchMargin is the fraction by which the new plan's estimated
	// total must undercut the current plan's improved estimate before a
	// switch is taken (default 0.15). Both sides of the comparison are
	// still estimates — the new plan's cost in particular leans on
	// catalog statistics for the relations not yet touched — so a
	// break-even switch is a coin flip that also pays materialization.
	SwitchMargin float64
	// Degree is the intra-query parallelism: plans are rewritten with
	// exchange operators splitting each segment across Degree worker
	// goroutines. 0 or 1 executes serially. Parallelization happens
	// after SCIA collector insertion and memory allocation, and gathers
	// sit exactly at checkpoint boundaries, so the re-optimization
	// machinery is degree-oblivious.
	Degree int
	// DisableIndexJoin is forwarded to the optimizer (ablations).
	DisableIndexJoin bool
	Seed             int64
	// CheckpointHook, when non-nil, runs at the start of every
	// checkpoint decision with the step index. It is a deterministic
	// interleaving seam: concurrency tests use it to commit writes at
	// an exact decision point and assert the dispatcher notices the
	// resulting statistics staleness.
	CheckpointHook func(step int)
	// Trace, when non-nil, receives the dispatcher's lifecycle events:
	// plan registrations, SCIA placements, checkpoint evaluations,
	// memory re-allocations, and plan switches. Nil (the default)
	// disables tracing.
	Trace *obs.Trace
}

// DefaultConfig returns the paper's parameterization.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:         mode,
		Theta1:       0.05,
		Theta2:       0.2,
		Mu:           0.05,
		MemBudget:    32 << 20,
		HistFamily:   histogram.MaxDiff,
		Weights:      storage.DefaultCostWeights(),
		MaxSwitches:  3,
		SwitchMargin: 0.15,
	}
}

// Stats reports what the dispatcher did during one query.
type Stats struct {
	CollectorsInserted int
	Observations       int
	MemReallocs        int
	ReoptConsidered    int // checkpoints where Equations 1 & 2 were evaluated
	PlanSwitches       int
	// Broker traffic (zero unless the query runs under a Lease):
	// re-allocations that returned surplus operator memory to the
	// shared pool, and ones that grew the lease to cover demands the
	// initial admission under-estimated.
	BrokerReturns       int
	BrokerReturnedBytes float64
	BrokerGrowths       int
	BrokerGrownBytes    float64
	Plans               []string // plan text, initial plus one per switch
	// Decisions logs every checkpoint's reasoning, for diagnostics.
	Decisions []string
	// EstimatedCost is the optimizer's total-cost estimate for the
	// initial plan, in simulated cost units. Comparing it against the
	// metered actual cost gives the estimate error the benchmark
	// harness reports.
	EstimatedCost float64
	// Parallel execution accounting (zero when Degree < 2): the degree
	// the query ran at, how many worker goroutines its exchanges
	// spawned, and the wall-clock savings from worker overlap — the
	// query's simulated wall time is its metered total cost minus this.
	Degree         int
	WorkersSpawned int
	WallSavedCost  float64
}

// Dispatcher is the modified scheduler/dispatcher of §3.1: it owns query
// compilation (optimize → SCIA → memory allocation) and segmented
// execution with mid-query decisions.
type Dispatcher struct {
	Cat   *catalog.Catalog
	Cfg   Config
	Calib *optimizer.Calibrator

	tempSeq int
	// temps tracks every temp table this dispatcher registered and has
	// not yet dropped. A dispatcher serves one query on one goroutine,
	// so no lock is needed. Whatever remains after the query — because an
	// abort skipped a drop, or a drop itself failed — is released by
	// Cleanup, which the session calls unconditionally.
	temps map[string]struct{}
}

// trackTemp records a temp table as live until dropTemp succeeds on it.
func (d *Dispatcher) trackTemp(name string) {
	if d.temps == nil {
		d.temps = make(map[string]struct{})
	}
	d.temps[name] = struct{}{}
}

// dropTemp drops one tracked temp table. The fault-injection site models
// DropTable failing mid-switch; on any failure the name stays tracked so
// Cleanup retries it, keeping the no-leaked-temps invariant.
func (d *Dispatcher) dropTemp(name string) error {
	if _, ok := d.temps[name]; !ok {
		return nil
	}
	if err := faultinject.Hit("reopt.droptemp"); err != nil {
		return err
	}
	if err := d.Cat.DropTable(name); err != nil {
		return err
	}
	delete(d.temps, name)
	return nil
}

// Cleanup drops every temp table still tracked. It is the query's abort
// backstop: sessions defer it so user cancels, deadlines, operator
// errors, and panics all leave the catalog temp-free. Returns the first
// drop error, if any (the names are forgotten regardless — a temp whose
// drop failed twice has no better third option).
func (d *Dispatcher) Cleanup() error {
	var first error
	for name := range d.temps {
		if err := d.Cat.DropTable(name); err != nil && first == nil {
			first = err
		}
		delete(d.temps, name)
	}
	return first
}

// tempCounter issues engine-wide unique temp-table numbers. A
// per-dispatcher sequence is not enough once queries run concurrently
// against one shared catalog: two dispatchers both naming their first
// materialization "mqr_temp_1" would collide in RegisterTemp and fail
// otherwise-healthy queries.
var tempCounter atomic.Int64

// tempName generates a catalog-unique temporary table name. The query
// tag (session/query id) keeps names attributable under concurrency;
// the global counter guarantees uniqueness even without a tag.
func (d *Dispatcher) tempName(kind string) string {
	n := tempCounter.Add(1)
	if d.Cfg.QueryTag != "" {
		return fmt.Sprintf("mqr_%s_%s_%d", kind, d.Cfg.QueryTag, n)
	}
	return fmt.Sprintf("mqr_%s_%d", kind, n)
}

// budget returns the operator-memory budget the query runs under right
// now: the lease's current holding when brokered, the fixed configured
// budget otherwise.
func (d *Dispatcher) budget() float64 {
	if d.Cfg.Lease != nil {
		return d.Cfg.Lease.Held()
	}
	return d.Cfg.MemBudget
}

// New returns a dispatcher over the catalog.
func New(cat *catalog.Catalog, cfg Config) *Dispatcher {
	if cfg.MaxSwitches <= 0 {
		cfg.MaxSwitches = 3
	}
	if cfg.Theta1 <= 0 {
		cfg.Theta1 = 0.05
	}
	if cfg.Theta2 <= 0 {
		cfg.Theta2 = 0.2
	}
	if cfg.Mu <= 0 {
		cfg.Mu = 0.05
	}
	return &Dispatcher{Cat: cat, Cfg: cfg, Calib: optimizer.NewCalibrator()}
}

// Run compiles and executes one query, applying Dynamic Re-Optimization
// per the configured mode.
func (d *Dispatcher) Run(stmt *sql.SelectStmt, params plan.Params, ctx *exec.Ctx) ([]types.Tuple, *Stats, error) {
	st := &Stats{}
	pool := d.armParallel(ctx)
	rows, err := d.run(stmt, params, ctx, st, d.Cfg.MaxSwitches)
	err = d.finishParallel(ctx, pool, st, err)
	return rows, st, err
}

// armParallel prepares a context for parallel execution: a per-query
// worker pool (panic containment, goroutine accounting) and a wall-time
// meter for gather points to record worker overlap. No-op below degree
// 2, or when the session pre-installed its own pool/meter.
func (d *Dispatcher) armParallel(ctx *exec.Ctx) *exchange.Pool {
	if d.Cfg.Degree < 2 {
		return nil
	}
	var pool *exchange.Pool
	if ctx.Spawn == nil {
		pool = exchange.NewPool()
		ctx.Spawn = pool.Go
	}
	if ctx.Wall == nil {
		ctx.Wall = exec.NewWallMeter()
	}
	return pool
}

// finishParallel joins the query's worker pool (every exchange region
// has been closed by now, so this is prompt), surfaces any contained
// worker panic as the query error, and folds the parallel accounting
// into the stats.
func (d *Dispatcher) finishParallel(ctx *exec.Ctx, pool *exchange.Pool, st *Stats, err error) error {
	if d.Cfg.Degree > 1 {
		st.Degree = d.Cfg.Degree
	}
	if pool != nil {
		if werr := pool.Wait(); err == nil {
			err = werr
		}
		st.WorkersSpawned = pool.Spawned()
	}
	if ctx.Wall != nil {
		st.WallSavedCost = ctx.Wall.Saved()
	}
	return err
}

// RunSQL parses, compiles, and executes one query.
func (d *Dispatcher) RunSQL(src string, params plan.Params, ctx *exec.Ctx) ([]types.Tuple, *Stats, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return d.Run(stmt, params, ctx)
}

// run is the recursive entry: plan switches re-enter here with the
// remainder statement.
func (d *Dispatcher) run(stmt *sql.SelectStmt, params plan.Params, ctx *exec.Ctx, st *Stats, switchesLeft int) ([]types.Tuple, error) {
	q, err := optimizer.Analyze(d.Cat, stmt)
	if err != nil {
		return nil, err
	}
	opt := &optimizer.Optimizer{
		Weights:          d.Cfg.Weights,
		MemBudget:        d.budget(),
		DisableIndexJoin: d.Cfg.DisableIndexJoin,
		PoolPages:        d.Cfg.PoolPages,
	}
	res, err := opt.Optimize(q)
	if err != nil {
		return nil, err
	}
	if d.Cfg.Mode != ModeOff {
		ins, err := scia.Insert(res, d.sciaConfig())
		if err != nil {
			return nil, err
		}
		st.CollectorsInserted += len(ins)
	}
	memmgr.New(d.budget()).Allocate(res.Root)
	res.Root = exchange.Parallelize(res.Root, d.Cfg.Degree)
	d.registerPlan(res, st, ctx)

	if d.Cfg.Mode == ModeOff {
		op, err := exec.Build(res.Root, ctx)
		if err != nil {
			return nil, err
		}
		return exec.Collect(op)
	}
	return d.dispatch(res, params, ctx, st, switchesLeft)
}

// RunPlan executes an already-optimized plan through the full dispatch
// path (SCIA insertion, memory allocation, segmented execution with
// checkpoints). The parametric hybrid (the paper's §4 proposal) uses it
// to execute the candidate chosen at bind time while keeping Dynamic
// Re-Optimization armed for the cases the parametric plan did not
// anticipate. The Result is consumed: its annotations are mutated during
// execution.
func (d *Dispatcher) RunPlan(res *optimizer.Result, params plan.Params, ctx *exec.Ctx) ([]types.Tuple, *Stats, error) {
	st := &Stats{}
	pool := d.armParallel(ctx)
	if d.Cfg.Mode != ModeOff {
		ins, err := scia.Insert(res, d.sciaConfig())
		if err != nil {
			return nil, nil, err
		}
		st.CollectorsInserted += len(ins)
	}
	memmgr.New(d.budget()).Allocate(res.Root)
	res.Root = exchange.Parallelize(res.Root, d.Cfg.Degree)
	d.registerPlan(res, st, ctx)
	if d.Cfg.Mode == ModeOff {
		op, err := exec.Build(res.Root, ctx)
		if err != nil {
			return nil, nil, err
		}
		rows, err := exec.Collect(op)
		err = d.finishParallel(ctx, pool, st, err)
		return rows, st, err
	}
	rows, err := d.dispatch(res, params, ctx, st, d.Cfg.MaxSwitches)
	err = d.finishParallel(ctx, pool, st, err)
	return rows, st, err
}

// EstimateOnly compiles a query and returns its annotated plan without
// executing it (EXPLAIN support for the CLI and examples).
func (d *Dispatcher) EstimateOnly(src string) (*optimizer.Result, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	q, err := optimizer.Analyze(d.Cat, stmt)
	if err != nil {
		return nil, err
	}
	opt := &optimizer.Optimizer{
		Weights:          d.Cfg.Weights,
		MemBudget:        d.budget(),
		DisableIndexJoin: d.Cfg.DisableIndexJoin,
		PoolPages:        d.Cfg.PoolPages,
	}
	res, err := opt.Optimize(q)
	if err != nil {
		return nil, err
	}
	if d.Cfg.Mode != ModeOff {
		if _, err := scia.Insert(res, d.sciaConfig()); err != nil {
			return nil, err
		}
	}
	memmgr.New(d.budget()).Allocate(res.Root)
	res.Root = exchange.Parallelize(res.Root, d.Cfg.Degree)
	return res, nil
}

// sciaConfig assembles the SCIA's configuration from the dispatcher's.
func (d *Dispatcher) sciaConfig() scia.Config {
	return scia.Config{
		Mu:         d.Cfg.Mu,
		HistFamily: d.Cfg.HistFamily,
		Weights:    d.Cfg.Weights,
		Seed:       d.Cfg.Seed,
		Trace:      d.Cfg.Trace,
	}
}

// registerPlan records a compiled plan everywhere observers care: the
// stats' plan log, the EXPLAIN ANALYZE accumulator (first registration
// is the initial plan, later ones are re-optimized remainders), the
// initial estimated total cost, and the trace.
func (d *Dispatcher) registerPlan(res *optimizer.Result, st *Stats, ctx *exec.Ctx) {
	st.Plans = append(st.Plans, plan.Format(res.Root))
	if st.EstimatedCost == 0 {
		st.EstimatedCost = res.Root.Est().Cost
	}
	ctx.Analyze.StartPlan(res.Root)
	ctx.Prog.StartPlan(res.Root)
	ctx.Prog.SetEstimate(res.Root.Est().Cost)
	if d.Cfg.Trace.Enabled() {
		d.Cfg.Trace.Emit("plan", "plan compiled",
			"plan_index", len(st.Plans),
			"est_cost", res.Root.Est().Cost,
			"est_rows", res.Root.Est().Rows,
			"collectors", st.CollectorsInserted,
		)
	}
}
