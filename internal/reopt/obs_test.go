package reopt

import (
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/types"
)

// runInstrumented is runMode with the observability surfaces attached:
// an EXPLAIN ANALYZE accumulator and a lifecycle trace.
func runInstrumented(t *testing.T, e *env, mode Mode, src string, params plan.Params) (*Stats, *obs.Analyze, *obs.Trace, float64) {
	t.Helper()
	az := obs.NewAnalyze()
	tr := obs.NewTrace(obs.DefaultTraceCap)
	cfg := DefaultConfig(mode)
	cfg.Trace = tr
	d := New(e.cat, cfg)
	ctx := e.ctx(params)
	ctx.Analyze = az
	ctx.Trace = tr
	before := e.m.Snapshot()
	_, st, err := d.RunSQL(src, params, ctx)
	if err != nil {
		t.Fatalf("mode %v: %v", mode, err)
	}
	return st, az, tr, e.m.Snapshot().Sub(before).Cost()
}

// TestExplainAnalyzeMarksSplicePoint re-runs the Figure 6 walk-through
// with EXPLAIN ANALYZE attached: the rendered output must show both
// plans, per-operator actuals, and the temp-table scan that marks where
// the switched plan resumes from materialized state.
func TestExplainAnalyzeMarksSplicePoint(t *testing.T) {
	e := newEnv(8192)
	e.addTable(t, "rel1", 1350, 4000, 10)
	e.addTable(t, "rel2", 4000, 60000, 5)
	e.addTable(t, "rel3", 60000, 5, 5)
	e.analyzeAll(t)
	e.cat.CreateIndex("rel3", "rel3_pk")
	src := `select rel1_grp, count(*) as cnt from rel1, rel2, rel3
		where rel1.rel1_fk = rel2.rel2_pk and rel2.rel2_fk = rel3.rel3_pk
		and rel1_val < :v1 and rel1_grp < :v2 group by rel1_grp`
	params := plan.Params{"v1": types.NewFloat(1e9), "v2": types.NewFloat(1e9)}

	st, az, tr, _ := runInstrumented(t, e, ModePlanOnly, src, params)
	if st.PlanSwitches == 0 {
		t.Fatal("no plan switch; the EXPLAIN ANALYZE assertions below need one")
	}
	text := az.Render()
	for _, want := range []string{
		"plan 1 (initial):",
		"plan 2 (re-optimized remainder):",
		"est rows=",
		"actual rows=",
		"[re-optimized here]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, text)
		}
	}

	kinds := map[string]int{}
	for _, ev := range tr.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []string{"plan", "scia", "collector", "checkpoint", "decision", "switch"} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q event (kinds: %v)", want, kinds)
		}
	}
	if kinds["plan"] < 2 {
		t.Errorf("trace recorded %d plan events, want one per compiled plan (2)", kinds["plan"])
	}
}

// TestAnalyzeSelfCostsSumToQueryCost checks the EXPLAIN ANALYZE timing
// invariant: per-operator self costs are inclusive cost minus children,
// so their sum must telescope back to the metered cost of the whole
// query. Anything the meter charges outside operator Open/Next/Close
// (parse, optimize) is the residue; it stays small.
func TestAnalyzeSelfCostsSumToQueryCost(t *testing.T) {
	e := buildThreeJoinEnv(t)
	params := plan.Params{"cut": types.NewFloat(999999)}
	_, az, _, metered := runInstrumented(t, e, ModeOff, threeJoinQuery, params)
	sum := az.TotalSelfCost()
	if sum <= 0 || metered <= 0 {
		t.Fatalf("degenerate costs: sum=%g metered=%g", sum, metered)
	}
	if rel := math.Abs(sum-metered) / metered; rel > 0.05 {
		t.Errorf("self-cost sum %.1f vs metered query cost %.1f (%.1f%% off)",
			sum, metered, rel*100)
	}
}

// TestTraceDisabledByDefault: with no trace configured the dispatcher
// runs with a nil *obs.Trace, Enabled() is false, and the run completes
// without emitting anywhere.
func TestTraceDisabledByDefault(t *testing.T) {
	var tr *obs.Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	e := buildThreeJoinEnv(t)
	params := plan.Params{"cut": types.NewFloat(50)}
	_, st, _ := runMode(t, e, ModeFull, threeJoinQuery, params, 0)
	if st.CollectorsInserted == 0 {
		t.Error("full mode without a trace stopped inserting collectors")
	}
}
