package server

import (
	"testing"
	"time"

	"repro/internal/reopt"
	"repro/internal/session"
	"repro/internal/tpcd"
)

// TestServerProgressEndpoint: while a query is paused at its first
// checkpoint, GET /progress and /status expose its live snapshot with
// operators; after it finishes, /progress?id= serves the frozen
// terminal snapshot and unknown tags get 404.
func TestServerProgressEndpoint(t *testing.T) {
	ts, m := startTPCD(t, session.Config{})
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	q, err := tpcd.ByName("Q3")
	if err != nil {
		t.Fatal(err)
	}

	ckpt := make(chan struct{})
	release := make(chan struct{})
	first := true
	done := make(chan error, 1)
	go func() {
		_, err := m.Session().Exec(t.Context(), q.SQL, session.Options{
			Mode:    reopt.ModeFull,
			NoCache: true,
			CheckpointHook: func(int) {
				if first {
					first = false
					ckpt <- struct{}{}
					<-release
				}
			},
		})
		done <- err
	}()
	select {
	case <-ckpt:
	case <-time.After(30 * time.Second):
		t.Fatal("query never reached a checkpoint")
	}
	running := m.Running()
	if len(running) != 1 {
		t.Fatalf("running = %v, want one query", running)
	}
	tag := running[0]

	// The list view carries the running query with operators.
	list, err := c.Progress("")
	if err != nil {
		t.Fatal(err)
	}
	var seen bool
	for _, p := range list {
		if p.Query != tag {
			continue
		}
		seen = true
		if p.State != "running" {
			t.Errorf("state = %q, want running", p.State)
		}
		if p.Fraction <= 0 || p.Fraction >= 1 {
			t.Errorf("live fraction = %v, want in (0,1)", p.Fraction)
		}
		if len(p.Operators) == 0 {
			t.Error("live snapshot has no operator rows")
		}
	}
	if !seen {
		t.Fatalf("/progress list missing %s: %+v", tag, list)
	}

	// The by-id view serves exactly that query.
	one, err := c.Progress(tag)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Query != tag {
		t.Fatalf("/progress?id=%s = %+v", tag, one)
	}

	// /status includes the running summary alongside the tag list.
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	var inStatus bool
	for _, p := range st.Progress {
		if p.Query == tag {
			inStatus = true
			if len(p.Operators) != 0 {
				t.Error("/status progress should omit operator rows")
			}
		}
	}
	if !inStatus {
		t.Fatalf("/status progress missing %s", tag)
	}

	release <- struct{}{}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("query never finished after release")
	}

	// Finished: the by-id view serves the frozen terminal snapshot.
	fin, err := c.Progress(tag)
	if err != nil {
		t.Fatal(err)
	}
	if len(fin) != 1 || fin[0].State != "done" || fin[0].Fraction != 1 {
		t.Fatalf("finished snapshot = %+v, want done/1", fin)
	}

	if _, err := c.Progress("no_such_query"); err == nil {
		t.Fatal("unknown id did not error")
	}
}
