package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/memmgr"
	"repro/internal/obs"
	"repro/internal/tenant"
)

// Client is a thin client for a running mqr-server. Each client owns
// one server-side session; clients are safe for concurrent use (their
// queries simply interleave within the session).
type Client struct {
	base    string
	hc      *http.Client
	session int64
	tenant  string
}

// Dial opens a session on the server at addr ("host:port" or a full
// http:// URL) under the default tenant.
func Dial(addr string) (*Client, error) { return DialTenant(addr, "") }

// DialTenant opens a session bound to a tenant: every query the client
// submits is billed to that tenant's service class for fair-share
// admission. An empty tenant is the default class.
func DialTenant(addr, tenant string) (*Client, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	c := &Client{base: base, hc: &http.Client{Timeout: 10 * time.Minute}, tenant: tenant}
	var out struct {
		Session int64 `json:"session"`
	}
	if err := c.post("/session", SessionRequest{Tenant: tenant}, &out); err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	c.session = out.Session
	return c, nil
}

// Session returns the server-side session id.
func (c *Client) Session() int64 { return c.session }

// Tenant returns the tenant the client's session is bound to ("" =
// default).
func (c *Client) Tenant() string { return c.tenant }

// ConfigureTenant installs a tenant's service class server-side
// (weight, priority, memory quota, admission queue bound).
func (c *Client) ConfigureTenant(name string, cfg tenant.Config) error {
	return c.post("/tenants", TenantRequest{Tenant: name, Config: cfg}, &tenant.Config{})
}

// Tenants snapshots every tenant's scheduling state and traffic.
func (c *Client) Tenants() ([]memmgr.TenantStats, error) {
	resp, err := c.hc.Get(c.base + "/tenants")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []memmgr.TenantStats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Exec submits one query. A QueryResponse with a non-empty Error field
// is returned as (response, error) so callers can inspect both.
func (c *Client) Exec(req QueryRequest) (*QueryResponse, error) {
	req.Session = c.session
	var out QueryResponse
	if err := c.post("/query", req, &out); err != nil {
		if out.Error != "" {
			return &out, err
		}
		return nil, err
	}
	return &out, nil
}

// Cancel aborts a running query by its engine tag. It reports whether
// the tag named a query still in flight (false usually means it
// already finished).
func (c *Client) Cancel(tag string) (bool, error) {
	var out CancelResponse
	if err := c.post("/cancel", CancelRequest{Query: tag}, &out); err != nil {
		return false, err
	}
	return out.Cancelled, nil
}

// Analyze refreshes a table's statistics server-side.
func (c *Client) Analyze(table, family string) error {
	return c.post("/analyze", AnalyzeRequest{Table: table, Family: family}, &struct{}{})
}

// Status snapshots the server's broker and plan cache.
func (c *Client) Status() (*StatusResponse, error) {
	resp, err := c.hc.Get(c.base + "/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Progress fetches live per-operator progress: every running query when
// tag is empty, or one query (running or recently finished) by tag.
func (c *Client) Progress(tag string) ([]obs.ProgressSnapshot, error) {
	u := c.base + "/progress"
	if tag != "" {
		u += "?id=" + url.QueryEscape(tag)
	}
	resp, err := c.hc.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("/progress: HTTP %d", resp.StatusCode)
	}
	var out []obs.ProgressSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// post sends a JSON request and decodes the JSON response into out. On
// a non-2xx status the body is still decoded into out (so structured
// fields like QueryResponse.Error survive) and the error message is
// surfaced.
func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		json.Unmarshal(data, out)
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", path, e.Error)
		}
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}
