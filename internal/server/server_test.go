package server

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/types"
)

// startTPCD loads a small TPC-D instance and serves it over httptest.
func startTPCD(t *testing.T, cfg session.Config) (*httptest.Server, *session.Manager) {
	t.Helper()
	meter := storage.NewCostMeter(storage.DefaultCostWeights())
	pool := storage.NewBufferPool(storage.NewDisk(meter), 2048)
	cat := catalog.New(pool)
	if err := tpcd.Load(cat, tpcd.Config{SF: 0.005, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	m := session.NewManager(cat, pool, meter, cfg)
	ts := httptest.NewServer(New(m).Handler())
	t.Cleanup(ts.Close)
	return ts, m
}

func TestServerQueryRoundTrip(t *testing.T) {
	ts, _ := startTPCD(t, session.Config{})
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(QueryRequest{SQL: tpcd.Queries()[0].SQL, Mode: "full"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("Q1 returned no rows")
	}
	if len(res.Columns) != 8 || res.Columns[0] != "l_returnflag" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Cost <= 0 {
		t.Errorf("cost = %g", res.Cost)
	}
	if res.Query == "" {
		t.Error("no query tag assigned")
	}
}

func TestServerQueryErrorIsStructured(t *testing.T) {
	ts, _ := startTPCD(t, session.Config{})
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(QueryRequest{SQL: "select nope from nothing"})
	if err == nil {
		t.Fatal("bad SQL did not error")
	}
	if res == nil || res.Error == "" {
		t.Fatalf("no structured error came back: %v", err)
	}
}

func TestServerPlanCacheAndAnalyze(t *testing.T) {
	ts, _ := startTPCD(t, session.Config{})
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	q3 := tpcd.Queries()[2].SQL // Q3: a 2-join query worth caching
	r1, err := c.Exec(QueryRequest{SQL: q3})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Exec(QueryRequest{SQL: q3})
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit || !r2.CacheHit {
		t.Errorf("cache hits: first=%t second=%t", r1.CacheHit, r2.CacheHit)
	}
	// Statistics refresh invalidates the cached plan.
	if err := c.Analyze("orders", "maxdiff"); err != nil {
		t.Fatal(err)
	}
	r3, err := c.Exec(QueryRequest{SQL: q3})
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHit {
		t.Error("cache hit on a plan from before ANALYZE")
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Invalidations == 0 {
		t.Errorf("status reports no invalidations: %+v", st.Cache)
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want types.Value
	}{
		{"int:42", types.NewInt(42)},
		{"float:1.5", types.NewFloat(1.5)},
		{"string:ASIA", types.NewString("ASIA")},
		{"string:has:colon", types.NewString("has:colon")},
		{"date:1995-03-15", types.NewDateFromTime(time.Date(1995, 3, 15, 0, 0, 0, 0, time.UTC))},
		{"42", types.NewInt(42)},
		{"1.5", types.NewFloat(1.5)},
		{"BUILDING", types.NewString("BUILDING")},
	}
	for _, tc := range cases {
		got, err := ParseValue(tc.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", tc.in, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("ParseValue(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseValue("date:not-a-date"); err == nil {
		t.Error("bad date parsed")
	}
}

// TestServerConcurrentStress is the acceptance stress: 16 concurrent
// clients issue a mix of TPC-D queries in mixed re-optimization modes
// through the server, all against one shared engine; results must match
// the single-stream answers and the race detector must stay quiet.
func TestServerConcurrentStress(t *testing.T) {
	ts, m := startTPCD(t, session.Config{MemPoolBytes: 16 << 20, MemBudget: 8 << 20})
	mix := []string{"Q1", "Q6", "Q3", "Q10"}
	modes := []string{"off", "memory", "full"}

	// Single-stream reference answers.
	ref := map[string]*QueryResponse{}
	c0, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range mix {
		q, qerr := tpcd.ByName(name)
		if qerr != nil {
			t.Fatal(qerr)
		}
		r, rerr := c0.Exec(QueryRequest{SQL: q.SQL, NoCache: true})
		if rerr != nil {
			t.Fatalf("%s: %v", name, rerr)
		}
		ref[name] = r
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(ts.URL)
			if err != nil {
				t.Errorf("client %d: %v", g, err)
				return
			}
			for i := 0; i < 3; i++ {
				name := mix[(g+i)%len(mix)]
				q, _ := tpcd.ByName(name)
				r, err := c.Exec(QueryRequest{SQL: q.SQL, Mode: modes[(g+i)%len(modes)]})
				if err != nil {
					t.Errorf("client %d %s: %v", g, name, err)
					return
				}
				want := ref[name]
				if len(r.Rows) != len(want.Rows) {
					t.Errorf("client %d %s: %d rows, want %d", g, name, len(r.Rows), len(want.Rows))
					return
				}
				if fmt.Sprint(r.Rows) != fmt.Sprint(want.Rows) {
					t.Errorf("client %d %s: rows diverged from single-stream answer", g, name)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := m.Broker().Stats()
	if st.AvailBytes != st.PoolBytes {
		t.Errorf("broker leaked: %.0f of %.0f free after drain", st.AvailBytes, st.PoolBytes)
	}
	if st.Admitted < 48 {
		t.Errorf("only %d admissions for 48+ queries", st.Admitted)
	}
	if cs := m.CacheStats(); cs.Hits == 0 {
		t.Errorf("no plan-cache hits during the stress: %+v", cs)
	}
}

// TestServerConstrainedPoolQueues re-runs part of the mix with a pool
// small enough that admissions must queue, exercising the broker's
// FIFO path over the wire.
func TestServerConstrainedPoolQueues(t *testing.T) {
	ts, m := startTPCD(t, session.Config{MemPoolBytes: 256 << 10, MemBudget: 256 << 10})
	q3, _ := tpcd.ByName("Q3")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(ts.URL)
			if err != nil {
				t.Errorf("client %d: %v", g, err)
				return
			}
			if _, err := c.Exec(QueryRequest{SQL: q3.SQL, Mode: "memory"}); err != nil {
				t.Errorf("client %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	st := m.Broker().Stats()
	if st.Waits == 0 {
		t.Error("no admission ever queued despite the tiny pool; the test constrains nothing")
	}
	if st.AvailBytes != st.PoolBytes {
		t.Errorf("broker leaked: %.0f of %.0f free", st.AvailBytes, st.PoolBytes)
	}
}
