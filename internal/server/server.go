// Package server exposes the multi-query engine over HTTP: concurrent
// clients open sessions and submit SQL, all against one shared catalog,
// buffer pool, memory broker, and plan cache. The protocol is JSON —
// deliberately plain, since the point of the reproduction is the
// engine, not the wire format.
//
// Endpoints:
//
//	POST /session          SessionRequest -> {"session": id}
//	POST /tenants          TenantRequest -> tenant.Config
//	GET  /tenants          -> []memmgr.TenantStats
//	POST /query            QueryRequest -> QueryResponse
//	POST /cancel           CancelRequest -> CancelResponse
//	POST /analyze          AnalyzeRequest -> {}
//	GET  /status           -> StatusResponse
//	GET  /progress         -> []obs.ProgressSnapshot (live queries)
//	GET  /progress?id=TAG  -> [snapshot] for one query (404 if unknown)
//	GET  /metrics          -> Prometheus text exposition
//
// Every query is abortable: /cancel aborts by tag, QueryRequest can
// carry a per-query deadline, the server can impose a default one, and
// a client disconnect cancels via the request context.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/histogram"
	"repro/internal/memmgr"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/reopt"
	"repro/internal/session"
	"repro/internal/tenant"
	"repro/internal/types"
)

// QueryRequest is one SQL submission.
type QueryRequest struct {
	// Session routes the query to a session opened via POST /session;
	// 0 uses the server's shared default session.
	Session int64  `json:"session,omitempty"`
	SQL     string `json:"sql"`
	// Tenant bills this query to a service class for fair-share
	// admission (weight, quota, priority). Empty inherits the session's
	// tenant (set at POST /session), which itself defaults to "default".
	Tenant string `json:"tenant,omitempty"`
	// Mode is "off", "memory", "plan", "full", or "restart"
	// (default "off").
	Mode string `json:"mode,omitempty"`
	// Params binds host variables. Values are tagged strings —
	// "int:42", "float:1.5", "string:ASIA", "date:1995-03-15" — or
	// bare literals, which are parsed as int, then float, then string.
	Params           map[string]string `json:"params,omitempty"`
	NoCache          bool              `json:"no_cache,omitempty"`
	Splice           bool              `json:"splice,omitempty"`
	DisableIndexJoin bool              `json:"disable_index_join,omitempty"`
	Seed             int64             `json:"seed,omitempty"`
	// Explain runs the query under EXPLAIN ANALYZE and returns the
	// annotated plan in the response's "plan" field.
	Explain bool `json:"explain,omitempty"`
	// Trace returns the query's lifecycle event log.
	Trace bool `json:"trace,omitempty"`
	// TimeoutMs bounds the query's wall-clock time in milliseconds,
	// overriding the server's default query timeout; 0 inherits it.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Parallel is the intra-query degree of parallelism (values below
	// 2 run serially).
	Parallel int `json:"parallel,omitempty"`
}

// SessionRequest opens a session, optionally bound to a tenant: every
// query on the session is billed to that tenant's service class unless
// the query request overrides it. An empty body keeps the default
// tenant.
type SessionRequest struct {
	Tenant string `json:"tenant,omitempty"`
}

// TenantRequest configures one tenant's service class (POST /tenants).
// Zero-valued fields take the defaults: weight 1, priority 0, no
// quota, unbounded queue.
type TenantRequest struct {
	Tenant string        `json:"tenant"`
	Config tenant.Config `json:"config"`
}

// CancelRequest aborts a running query by its engine tag (the "query"
// field of QueryResponse / the tags in StatusResponse.Running).
type CancelRequest struct {
	Query string `json:"query"`
}

// CancelResponse reports whether the tag named a running query.
type CancelResponse struct {
	Cancelled bool `json:"cancelled"`
}

// QueryResponse is one query's outcome. Rows are rendered to strings
// with the engine's display formatting.
type QueryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// RowsAffected is the row count a DML statement wrote (COMMIT
	// reports the whole transaction's total).
	RowsAffected int64             `json:"rows_affected,omitempty"`
	Cost         float64           `json:"cost"`
	WallCost     float64           `json:"wall_cost"`
	Query        string            `json:"query"`
	Tenant       string            `json:"tenant,omitempty"`
	// Preempted counts how many times this query was suspended at a
	// re-optimization checkpoint and re-queued before finishing.
	Preempted int          `json:"preempted,omitempty"`
	CacheHit  bool         `json:"cache_hit"`
	Stats     *reopt.Stats `json:"stats,omitempty"`
	Broker       memmgr.LeaseStats `json:"broker"`
	Plan         string            `json:"plan,omitempty"`
	Trace        []obs.Event       `json:"trace,omitempty"`
	// TraceDropped counts trace events the query's ring evicted.
	TraceDropped int    `json:"trace_dropped,omitempty"`
	Error        string `json:"error,omitempty"`
}

// AnalyzeRequest refreshes one table's statistics.
type AnalyzeRequest struct {
	Table string `json:"table"`
	// Family is "equiwidth", "equidepth", "maxdiff" (default), or
	// "endbiased".
	Family string `json:"family,omitempty"`
}

// StatusResponse snapshots the shared engine.
type StatusResponse struct {
	Broker        memmgr.BrokerStats `json:"broker"`
	Cache         plancache.Stats    `json:"cache"`
	Sessions      int64              `json:"sessions"`
	Queries       int64              `json:"queries"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	// Running lists the tags of queries currently executing — the
	// handles POST /cancel accepts.
	Running []string `json:"running,omitempty"`
	// Progress summarizes each running query's live state (fraction,
	// suboptimality score, spill) without per-operator detail; GET
	// /progress returns the full operator breakdown.
	Progress []obs.ProgressSnapshot `json:"progress,omitempty"`
	// Tenants snapshots each tenant's service class and scheduling
	// state: queue depth, held memory, virtual time, preemptions.
	Tenants []memmgr.TenantStats `json:"tenants,omitempty"`
}

// Server serves one session.Manager over HTTP.
type Server struct {
	m   *session.Manager
	log *slog.Logger

	// queryTimeout is the default deadline applied to every query that
	// does not set its own TimeoutMs; 0 means none.
	queryTimeout time.Duration
	// parallel is the default intra-query degree of parallelism for
	// requests that do not set their own; 0 means serial.
	parallel int

	mu       sync.Mutex
	sessions map[int64]*session.Session
	shared   *session.Session
}

// New wraps a manager.
func New(m *session.Manager) *Server {
	return &Server{
		m:        m,
		log:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		sessions: map[int64]*session.Session{},
		shared:   m.Session(),
	}
}

// SetLogger installs a structured logger for request logging. The
// default discards everything.
func (s *Server) SetLogger(l *slog.Logger) {
	if l != nil {
		s.log = l
	}
}

// SetQueryTimeout installs a default per-query deadline. Individual
// requests override it with TimeoutMs; 0 disables the default.
func (s *Server) SetQueryTimeout(d time.Duration) { s.queryTimeout = d }

// SetParallel installs a default intra-query degree of parallelism.
// Individual requests override it with Parallel; 0 disables the default.
func (s *Server) SetParallel(deg int) { s.parallel = deg }

// SetSlowQueryThreshold makes the engine warn (on the server's logger)
// about statements slower than d; 0 disables.
func (s *Server) SetSlowQueryThreshold(d time.Duration) {
	s.m.SetLogger(s.log)
	s.m.SetSlowQueryThreshold(d)
}

// Handler returns the server's HTTP handler (httptest and embedding).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/session", s.handleSession)
	mux.HandleFunc("/tenants", s.handleTenants)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/cancel", s.handleCancel)
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Serve accepts connections on l until it is closed.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return srv.Serve(l)
}

// ListenAndServe binds addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// The body is optional (legacy clients POST an empty object or
	// nothing at all); a tenant binding is the only field today.
	var req SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		httpError(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	sess := s.m.Session()
	if req.Tenant != "" {
		sess.SetTenant(req.Tenant)
	}
	s.mu.Lock()
	s.sessions[sess.ID()] = sess
	s.mu.Unlock()
	writeJSON(w, map[string]int64{"session": sess.ID()})
}

// handleTenants configures a tenant's service class (POST) or lists
// every tenant's scheduling state (GET) — the same rows /status embeds.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, s.m.TenantStats())
	case http.MethodPost:
		var req TenantRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request: "+err.Error())
			return
		}
		if req.Tenant == "" {
			httpError(w, http.StatusBadRequest, "missing tenant name")
			return
		}
		s.m.SetTenantConfig(req.Tenant, req.Config)
		s.log.Info("tenant configured",
			"tenant", req.Tenant,
			"weight", req.Config.Weight,
			"priority", req.Config.Priority,
			"quota_bytes", req.Config.QuotaBytes,
			"max_queued", req.Config.MaxQueued)
		writeJSON(w, s.m.TenantConfig(req.Tenant))
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

func (s *Server) session(id int64) (*session.Session, error) {
	if id == 0 {
		return s.shared, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("unknown session %d", id)
	}
	return sess, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	sess, err := s.session(req.Session)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := execOptions(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if opts.Timeout == 0 {
		opts.Timeout = s.queryTimeout
	}
	if opts.Parallel == 0 {
		opts.Parallel = s.parallel
	}
	start := time.Now()
	res, err := sess.Exec(r.Context(), req.SQL, opts)
	if err != nil {
		s.log.Warn("query failed",
			"session", req.Session,
			"duration", time.Since(start),
			"err", err)
		// A full tenant admission queue is back-pressure, not a query
		// error: 429 tells well-behaved clients to retry after a beat
		// instead of hammering the queue bound.
		if errors.Is(err, memmgr.ErrQueueFull) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			writeJSON(w, QueryResponse{Error: err.Error()})
			return
		}
		// A query error is a well-formed response, not a transport
		// failure: clients distinguish "your SQL is wrong" from "the
		// server is down".
		w.WriteHeader(http.StatusUnprocessableEntity)
		writeJSON(w, QueryResponse{Error: err.Error()})
		return
	}
	switches := 0
	if res.Stats != nil { // DML and transaction control carry no dispatcher stats
		switches = res.Stats.PlanSwitches
	}
	s.log.Info("query",
		"session", req.Session,
		"tag", res.Query,
		"duration", time.Since(start),
		"rows", len(res.Rows),
		"rows_affected", res.RowsAffected,
		"cost", res.Cost,
		"switches", switches,
		"cache_hit", res.CacheHit)
	rows := make([][]string, len(res.Rows))
	for i, tup := range res.Rows {
		row := make([]string, len(tup))
		for j, v := range tup {
			row[j] = v.String()
		}
		rows[i] = row
	}
	writeJSON(w, QueryResponse{
		Columns:      res.Columns,
		Rows:         rows,
		RowsAffected: res.RowsAffected,
		Cost:         res.Cost,
		WallCost:     res.WallCost,
		Query:        res.Query,
		Tenant:       res.Tenant,
		Preempted:    res.Preempted,
		CacheHit:     res.CacheHit,
		Stats:        res.Stats,
		Broker:       res.Broker,
		Plan:         res.Plan,
		Trace:        res.Trace,
		TraceDropped: res.TraceDropped,
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req CancelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, "missing query tag")
		return
	}
	ok := s.m.Cancel(req.Query)
	s.log.Info("cancel", "tag", req.Query, "found", ok)
	if !ok {
		// Not an error status: the query may have just finished, and
		// cancellation is inherently racy with completion.
		writeJSON(w, CancelResponse{Cancelled: false})
		return
	}
	writeJSON(w, CancelResponse{Cancelled: true})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req AnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	family, err := parseFamily(req.Family)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.m.Analyze(req.Table, family); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, struct{}{})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, StatusResponse{
		Broker:        s.m.Broker().Stats(),
		Cache:         s.m.CacheStats(),
		Sessions:      s.m.Sessions(),
		Queries:       s.m.QueriesRun(),
		UptimeSeconds: s.m.Uptime().Seconds(),
		Running:       s.m.Running(),
		Progress:      s.m.ProgressSnapshots(false, false),
		Tenants:       s.m.TenantStats(),
	})
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		p := s.m.Progress().Get(id)
		if p == nil {
			httpError(w, http.StatusNotFound, "unknown query "+id)
			return
		}
		writeJSON(w, []obs.ProgressSnapshot{p.Snapshot(true)})
		return
	}
	writeJSON(w, s.m.ProgressSnapshots(true, false))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.Registry().WritePrometheus(w)
}

func execOptions(req QueryRequest) (session.Options, error) {
	mode, err := ParseMode(req.Mode)
	if err != nil {
		return session.Options{}, err
	}
	params, err := ParseParams(req.Params)
	if err != nil {
		return session.Options{}, err
	}
	return session.Options{
		Mode:             mode,
		Tenant:           req.Tenant,
		Params:           params,
		SpliceSwitch:     req.Splice,
		DisableIndexJoin: req.DisableIndexJoin,
		Seed:             req.Seed,
		NoCache:          req.NoCache,
		Explain:          req.Explain,
		Trace:            req.Trace,
		Timeout:          time.Duration(req.TimeoutMs) * time.Millisecond,
		Parallel:         req.Parallel,
	}, nil
}

// ParseMode maps a wire mode name to the dispatcher mode.
func ParseMode(s string) (reopt.Mode, error) {
	switch strings.ToLower(s) {
	case "", "off", "normal":
		return reopt.ModeOff, nil
	case "memory", "memory-only":
		return reopt.ModeMemoryOnly, nil
	case "plan", "plan-only":
		return reopt.ModePlanOnly, nil
	case "full":
		return reopt.ModeFull, nil
	case "restart":
		return reopt.ModeRestart, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func parseFamily(s string) (histogram.Family, error) {
	switch strings.ToLower(s) {
	case "", "maxdiff":
		return histogram.MaxDiff, nil
	case "equiwidth":
		return histogram.EquiWidth, nil
	case "equidepth":
		return histogram.EquiDepth, nil
	case "endbiased":
		return histogram.EndBiased, nil
	default:
		return 0, fmt.Errorf("unknown histogram family %q", s)
	}
}

// ParseParams decodes the wire parameter map: tagged "kind:value"
// strings, or bare literals tried as int, float, then string.
func ParseParams(raw map[string]string) (map[string]types.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make(map[string]types.Value, len(raw))
	for name, s := range raw {
		v, err := ParseValue(s)
		if err != nil {
			return nil, fmt.Errorf("param %s: %w", name, err)
		}
		out[name] = v
	}
	return out, nil
}

// ParseValue decodes one wire value.
func ParseValue(s string) (types.Value, error) {
	if kind, rest, ok := strings.Cut(s, ":"); ok {
		switch kind {
		case "int":
			n, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return types.Value{}, err
			}
			return types.NewInt(n), nil
		case "float":
			f, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return types.Value{}, err
			}
			return types.NewFloat(f), nil
		case "string":
			return types.NewString(rest), nil
		case "date":
			t, err := time.Parse("2006-01-02", rest)
			if err != nil {
				return types.Value{}, err
			}
			return types.NewDateFromTime(t), nil
		}
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return types.NewInt(n), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return types.NewFloat(f), nil
	}
	return types.NewString(s), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
