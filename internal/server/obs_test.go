package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/session"
	"repro/internal/tpcd"
)

// TestServerMetricsEndpoint: /metrics speaks the Prometheus text
// format and carries the engine, broker, and plan-cache series.
func TestServerMetricsEndpoint(t *testing.T) {
	ts, _ := startTPCD(t, session.Config{})
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(QueryRequest{SQL: tpcd.Queries()[0].SQL, Mode: "full"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"reopt_plan_switches_total",
		"broker_queue_depth",
		"mqr_queries_total",
		"plancache_misses_total",
		"collector_overhead_fraction",
		"mqr_query_cost_units_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if !strings.Contains(body, "# TYPE reopt_plan_switches_total counter") {
		t.Error("/metrics missing TYPE line for reopt_plan_switches_total")
	}
}

// TestServerExplainAnalyzeOverHTTP: explain+trace on a query request
// come back as the annotated plan and the lifecycle event log.
func TestServerExplainAnalyzeOverHTTP(t *testing.T) {
	ts, _ := startTPCD(t, session.Config{})
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(QueryRequest{SQL: tpcd.Queries()[2].SQL, Mode: "full", Explain: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "actual rows=") || !strings.Contains(res.Plan, "est rows=") {
		t.Errorf("explain plan lacks annotations:\n%s", res.Plan)
	}
	if len(res.Trace) == 0 {
		t.Error("trace requested but no events returned")
	}
	// Observability stays opt-in: a plain request carries neither.
	plain, err := c.Exec(QueryRequest{SQL: tpcd.Queries()[2].SQL, Mode: "full"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Plan != "" || len(plain.Trace) != 0 {
		t.Error("plain request returned observability payload")
	}
}

// TestServerStatusCounters: /status reports engine totals alongside the
// broker and cache snapshots.
func TestServerStatusCounters(t *testing.T) {
	ts, _ := startTPCD(t, session.Config{})
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(QueryRequest{SQL: tpcd.Queries()[0].SQL}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries < 1 {
		t.Errorf("status queries = %d after one query", st.Queries)
	}
	if st.Sessions < 1 {
		t.Errorf("status sessions = %d with one live session", st.Sessions)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("status uptime = %g", st.UptimeSeconds)
	}
	if st.Broker.PoolBytes <= 0 {
		t.Errorf("status broker pool = %g", st.Broker.PoolBytes)
	}
}
