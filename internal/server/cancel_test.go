package server

import (
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/session"
	"repro/internal/tpcd"
)

// TestServerCancelEndpoint wedges a query mid-scan, discovers its tag
// via /status, aborts it with POST /cancel, and checks the abort left
// no residue behind.
func TestServerCancelEndpoint(t *testing.T) {
	ts, m := startTPCD(t, session.Config{})
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.Enable()
	defer faultinject.Disable()

	q1, _ := tpcd.ByName("Q1")
	inj.Arm("exec.scan.next", faultinject.Fault{After: 200, Delay: 2 * time.Second})

	done := make(chan *QueryResponse, 1)
	go func() {
		res, _ := c.Exec(QueryRequest{SQL: q1.SQL})
		done <- res
	}()

	// The tag appears in /status as soon as the query starts.
	var tag string
	deadline := time.Now().Add(5 * time.Second)
	for tag == "" {
		if time.Now().After(deadline) {
			t.Fatal("query never appeared in /status running list")
		}
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Running) > 0 {
			tag = st.Running[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	ok, err := c.Cancel(tag)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("cancel of running query %q reported not found", tag)
	}

	select {
	case res := <-done:
		if res == nil || !strings.Contains(res.Error, "cancel") {
			t.Fatalf("cancelled query response = %+v, want a context-canceled error", res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query never returned")
	}

	if temps := m.Catalog().TempTables(); len(temps) != 0 {
		t.Fatalf("residual temp tables after cancel: %v", temps)
	}
	if st := m.Broker().Stats(); st.AvailBytes != st.PoolBytes {
		t.Fatalf("broker holds %.0f bytes after cancel", st.PoolBytes-st.AvailBytes)
	}

	// Cancelling a finished (or unknown) tag is a no-op, not an error.
	ok, err = c.Cancel(tag)
	if err != nil || ok {
		t.Fatalf("Cancel(%q) after completion = (%t, %v), want (false, nil)", tag, ok, err)
	}
}

// TestServerQueryTimeout sets a per-request deadline on a wedged query.
func TestServerQueryTimeout(t *testing.T) {
	ts, m := startTPCD(t, session.Config{})
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.Enable()
	defer faultinject.Disable()

	q1, _ := tpcd.ByName("Q1")
	inj.Arm("exec.scan.next", faultinject.Fault{After: 100, Delay: 300 * time.Millisecond})
	res, _ := c.Exec(QueryRequest{SQL: q1.SQL, TimeoutMs: 30})
	if res == nil || !strings.Contains(res.Error, "deadline") {
		t.Fatalf("response = %+v, want a deadline-exceeded error", res)
	}
	if st := m.Broker().Stats(); st.AvailBytes != st.PoolBytes {
		t.Fatalf("broker holds %.0f bytes after timeout", st.PoolBytes-st.AvailBytes)
	}
}

// TestServerSurvivesQueryPanic is the satellite regression: a panic
// inside one query (an operator or value-accessor bug) must come back
// as that query's error and leave the server fully serviceable.
func TestServerSurvivesQueryPanic(t *testing.T) {
	ts, _ := startTPCD(t, session.Config{})
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.Enable()
	defer faultinject.Disable()

	q3, _ := tpcd.ByName("Q3")
	inj.Arm("exec.hashjoin.build", faultinject.Fault{Panic: "value accessor type confusion", After: 10})
	res, _ := c.Exec(QueryRequest{SQL: q3.SQL, Mode: "full"})
	if res == nil || !strings.Contains(res.Error, "query panic") {
		t.Fatalf("response = %+v, want a recovered-panic error", res)
	}

	// Same client, same server: the next query runs normally.
	ok, err := c.Exec(QueryRequest{SQL: q3.SQL, Mode: "full"})
	if err != nil {
		t.Fatalf("server unserviceable after a query panic: %v", err)
	}
	if len(ok.Rows) == 0 {
		t.Fatal("post-panic query returned no rows")
	}
}
