package sql

import (
	"testing"
)

// FuzzParse checks that the parser never panics on arbitrary input and
// that anything it accepts renders to SQL that re-parses to the same
// rendering (SQL() is a fixed point). Run the seeds with `go test`, or
// explore with `go test -fuzz FuzzParse ./internal/sql`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"select a from r",
		"select avg(x) as ax, g from t, u where t.k = u.k and x < :v group by g order by ax desc limit 3",
		"select distinct a, b from r where a between 1 and 2 and b in (1,2,3) and c like 'x%'",
		"select sum(a+b*2) from r where d >= date '1996-01-01' - 30",
		"select 'it''s' from r",
		"select a from r where",
		"select (((((a))))) from r",
		"order by from where",
		"select a from r -- comment\n",
		"select :a from :b",
		"select a from r where a <> -0.5 and a != 7",
		"\x00\x01 select",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := stmt.SQL()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not re-parse: %v", src, rendered, err)
		}
		if stmt2.SQL() != rendered {
			t.Fatalf("SQL() not a fixed point:\n1: %s\n2: %s", rendered, stmt2.SQL())
		}
	})
}
