package sql

import (
	"fmt"
	"strings"
)

// Stmt is any parsed SQL statement. SelectStmt and the DML statements
// below implement it; session routing type-switches on the result of
// ParseStatement.
type Stmt interface {
	SQL() string
}

// InsertStmt is INSERT INTO table [(columns)] VALUES (row), (row), ...
type InsertStmt struct {
	Table   string
	Columns []string // empty means schema order
	Rows    [][]Expr
}

// SQL renders the statement.
func (s *InsertStmt) SQL() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Columns, ", "))
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
		b.WriteString(")")
	}
	return b.String()
}

// Assignment is one SET column = expr clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE table SET assignments [WHERE predicates].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where []Predicate
}

// SQL renders the statement.
func (s *UpdateStmt) SQL() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	b.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", a.Column, a.Value.SQL())
	}
	writeWhere(&b, s.Where)
	return b.String()
}

// DeleteStmt is DELETE FROM table [WHERE predicates].
type DeleteStmt struct {
	Table string
	Where []Predicate
}

// SQL renders the statement.
func (s *DeleteStmt) SQL() string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(s.Table)
	writeWhere(&b, s.Where)
	return b.String()
}

func writeWhere(b *strings.Builder, where []Predicate) {
	for i, p := range where {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(p.SQL())
	}
}

// BeginStmt is BEGIN: open an explicit transaction on the session.
type BeginStmt struct{}

// SQL renders the statement.
func (*BeginStmt) SQL() string { return "BEGIN" }

// CommitStmt is COMMIT.
type CommitStmt struct{}

// SQL renders the statement.
func (*CommitStmt) SQL() string { return "COMMIT" }

// RollbackStmt is ROLLBACK.
type RollbackStmt struct{}

// SQL renders the statement.
func (*RollbackStmt) SQL() string { return "ROLLBACK" }

// ParseStatement parses one statement of any supported kind: SELECT,
// INSERT, UPDATE, DELETE, or the transaction-control statements
// BEGIN/COMMIT/ROLLBACK.
func ParseStatement(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Stmt
	switch {
	case p.at(tokKeyword, "SELECT"):
		stmt, err = p.parseSelect()
	case p.at(tokKeyword, "INSERT"):
		stmt, err = p.parseInsert()
	case p.at(tokKeyword, "UPDATE"):
		stmt, err = p.parseUpdate()
	case p.at(tokKeyword, "DELETE"):
		stmt, err = p.parseDelete()
	case p.accept(tokKeyword, "BEGIN"):
		stmt = &BeginStmt{}
	case p.accept(tokKeyword, "COMMIT"):
		stmt = &CommitStmt{}
	case p.accept(tokKeyword, "ROLLBACK"):
		stmt = &RollbackStmt{}
	default:
		return nil, fmt.Errorf("sql: expected a statement, found %s", p.peek())
	}
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sql: trailing input at %s", p.peek())
	}
	return stmt, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if _, err := p.expect(tokKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: strings.ToLower(t.text)}
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, strings.ToLower(c.text))
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		if len(stmt.Columns) > 0 && len(row) != len(stmt.Columns) {
			return nil, fmt.Errorf("sql: INSERT row has %d values for %d columns", len(row), len(stmt.Columns))
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if _, err := p.expect(tokKeyword, "UPDATE"); err != nil {
		return nil, err
	}
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: strings.ToLower(t.text)}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: strings.ToLower(c.text), Value: e})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	stmt.Where, err = p.parseWhere()
	return stmt, err
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if _, err := p.expect(tokKeyword, "DELETE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: strings.ToLower(t.text)}
	stmt.Where, err = p.parseWhere()
	return stmt, err
}

// parseWhere parses an optional WHERE clause as an AND list.
func (p *parser) parseWhere() ([]Predicate, error) {
	if !p.accept(tokKeyword, "WHERE") {
		return nil, nil
	}
	var preds []Predicate
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
		if !p.accept(tokKeyword, "AND") {
			break
		}
	}
	return preds, nil
}
