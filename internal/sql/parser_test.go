package sql

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseMinimal(t *testing.T) {
	stmt := mustParse(t, "select a from r")
	if len(stmt.Select) != 1 || len(stmt.From) != 1 {
		t.Fatalf("stmt = %+v", stmt)
	}
	col, ok := stmt.Select[0].Expr.(*ColumnRef)
	if !ok || col.Name != "a" || col.Table != "" {
		t.Errorf("select item = %#v", stmt.Select[0].Expr)
	}
	if stmt.From[0].Name != "r" || stmt.Limit != -1 {
		t.Errorf("from = %+v limit = %d", stmt.From[0], stmt.Limit)
	}
}

func TestParsePaperRunningExample(t *testing.T) {
	// The query of Figure 1(a).
	src := `
	  select avg(Rel1.selectattr1), avg(Rel1.selectattr2), Rel1.groupattr
	  from Rel1, Rel2, Rel3
	  where Rel1.selectattr1 < :value1
	    and Rel1.selectattr2 < :value2
	    and Rel1.joinattr2 = Rel2.joinattr2
	    and Rel1.joinattr3 = Rel3.joinattr3
	  group by Rel1.groupattr`
	stmt := mustParse(t, src)
	if len(stmt.Select) != 3 {
		t.Fatalf("select list len = %d", len(stmt.Select))
	}
	agg, ok := stmt.Select[0].Expr.(*AggExpr)
	if !ok || agg.Func != AggAvg {
		t.Errorf("select[0] = %#v", stmt.Select[0].Expr)
	}
	if len(stmt.From) != 3 || stmt.From[1].Name != "rel2" {
		t.Errorf("from = %+v", stmt.From)
	}
	if len(stmt.Where) != 4 {
		t.Fatalf("where len = %d", len(stmt.Where))
	}
	cmp := stmt.Where[0].(*ComparePred)
	if cmp.Op != OpLt {
		t.Errorf("where[0] op = %v", cmp.Op)
	}
	if _, ok := cmp.Right.(*HostVar); !ok {
		t.Errorf("where[0] right = %#v", cmp.Right)
	}
	if len(stmt.GroupBy) != 1 {
		t.Errorf("group by = %v", stmt.GroupBy)
	}
}

func TestParseAliasesAndQualifiedStars(t *testing.T) {
	stmt := mustParse(t, "select n.n_name as nation from nation n where n.n_key = 3")
	if stmt.From[0].Alias != "n" || stmt.From[0].Binding() != "n" {
		t.Errorf("alias = %+v", stmt.From[0])
	}
	if stmt.Select[0].Alias != "nation" {
		t.Errorf("select alias = %q", stmt.Select[0].Alias)
	}
	// Implicit alias without AS.
	stmt = mustParse(t, "select sum(x) total from r")
	if stmt.Select[0].Alias != "total" {
		t.Errorf("implicit alias = %q", stmt.Select[0].Alias)
	}
}

func TestParsePredicates(t *testing.T) {
	stmt := mustParse(t, `select a from r where a between 1 and 10
	  and b in (1, 2, 3) and c like 'BUILD%' and d <> 4 and e >= 0.5`)
	if len(stmt.Where) != 5 {
		t.Fatalf("where len = %d", len(stmt.Where))
	}
	if _, ok := stmt.Where[0].(*BetweenPred); !ok {
		t.Errorf("where[0] = %#v", stmt.Where[0])
	}
	in := stmt.Where[1].(*InPred)
	if len(in.List) != 3 {
		t.Errorf("in list = %v", in.List)
	}
	like := stmt.Where[2].(*LikePred)
	if like.Pattern != "BUILD%" {
		t.Errorf("like pattern = %q", like.Pattern)
	}
	if stmt.Where[3].(*ComparePred).Op != OpNe {
		t.Error("<> not parsed as OpNe")
	}
	if stmt.Where[4].(*ComparePred).Op != OpGe {
		t.Error(">= not parsed as OpGe")
	}
}

func TestParseDateLiteralsAndArithmetic(t *testing.T) {
	stmt := mustParse(t, "select a from r where d >= date '1996-03-01' and d < date '1996-03-01' + 90")
	cmp := stmt.Where[0].(*ComparePred)
	lit := cmp.Right.(*Literal)
	if lit.Value.Kind() != types.KindDate {
		t.Errorf("date literal kind = %v", lit.Value.Kind())
	}
	bin := stmt.Where[1].(*ComparePred).Right.(*BinaryExpr)
	if bin.Op != '+' {
		t.Errorf("binary op = %c", bin.Op)
	}
}

func TestParseNumbersAndNegation(t *testing.T) {
	stmt := mustParse(t, "select a from r where x > -5 and y < 2.5 and z = 0.1 + 3 * 2")
	neg := stmt.Where[0].(*ComparePred).Right.(*BinaryExpr)
	if neg.Op != '-' {
		t.Error("unary minus not desugared")
	}
	prec := stmt.Where[2].(*ComparePred).Right.(*BinaryExpr)
	if prec.Op != '+' {
		t.Fatalf("precedence root = %c", prec.Op)
	}
	if inner, ok := prec.Right.(*BinaryExpr); !ok || inner.Op != '*' {
		t.Error("* does not bind tighter than +")
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	stmt := mustParse(t, "select g, count(*) from r group by g order by g desc, h limit 10")
	if len(stmt.GroupBy) != 1 || len(stmt.OrderBy) != 2 {
		t.Fatalf("group/order = %v / %v", stmt.GroupBy, stmt.OrderBy)
	}
	if !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Error("desc flags wrong")
	}
	if stmt.Limit != 10 {
		t.Errorf("limit = %d", stmt.Limit)
	}
	cnt := stmt.Select[1].Expr.(*AggExpr)
	if cnt.Func != AggCount || cnt.Arg != nil {
		t.Errorf("count(*) = %#v", cnt)
	}
}

func TestParseDistinct(t *testing.T) {
	stmt := mustParse(t, "select distinct a from r")
	if !stmt.Distinct {
		t.Error("distinct not parsed")
	}
}

func TestParseComments(t *testing.T) {
	stmt := mustParse(t, "select a -- trailing words\nfrom r")
	if len(stmt.From) != 1 {
		t.Error("comment broke parse")
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt := mustParse(t, "select a from r where s = 'it''s'")
	lit := stmt.Where[0].(*ComparePred).Right.(*Literal)
	if lit.Value.Str() != "it's" {
		t.Errorf("escaped string = %q", lit.Value.Str())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select a",
		"select a from",
		"select a from r where",
		"select a from r where a =",
		"select a from r where a ! b",
		"select a from r group a",
		"select a from r where s = 'unterminated",
		"select a from r extra garbage",
		"select a from r where a between 1",
		"select a from r where :",
		"select count( from r",
		"select a from r limit x",
		"select a from r where d = date 'not-a-date'",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	srcs := []string{
		"select a from r",
		"select distinct r.a, sum(r.b) as total from r, s where r.k = s.k and r.a between 1 and 10 group by r.a order by total desc limit 5",
		"select avg(x) from t where y in (1, 2) and z like 'A%' and w < :hv",
		"select a from r where d >= date '1996-03-01'",
	}
	for _, src := range srcs {
		stmt := mustParse(t, src)
		rendered := stmt.SQL()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", rendered, err)
		}
		if stmt2.SQL() != rendered {
			t.Errorf("SQL() not a fixed point:\n  1st: %s\n  2nd: %s", rendered, stmt2.SQL())
		}
		if !strings.HasPrefix(rendered, "select ") {
			t.Errorf("rendered = %q", rendered)
		}
	}
}

func TestCompareOpNegate(t *testing.T) {
	ops := []CompareOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("Negate not involutive for %v", op)
		}
	}
}
