// Package sql implements the engine's SQL front end: a lexer and
// recursive-descent parser for the decision-support subset the paper's
// workload needs (SELECT/FROM/WHERE/GROUP BY/ORDER BY, aggregates, host
// variables), and the inverse — generating SQL text for the remainder of
// a partially-executed query against a materialized temporary table,
// which is how the re-optimizer resubmits work (paper §2.4, Figure 6).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokHostVar // :name
	tokSymbol  // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "HAVING": true, "AND": true, "OR": true, "NOT": true,
	"AS": true, "ASC": true, "DESC": true, "BETWEEN": true, "IN": true,
	"LIKE": true, "IS": true, "NULL": true, "DISTINCT": true, "LIMIT": true,
	"SUM": true, "AVG": true, "COUNT": true, "MIN": true, "MAX": true,
	"DATE": true, "INTERVAL": true, "DAY": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; queries are short.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent(start)
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber(start)
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		case c == ':':
			l.pos++
			if l.pos >= len(l.src) || !isIdentStart(rune(l.src[l.pos])) {
				return nil, fmt.Errorf("sql: bare ':' at offset %d", start)
			}
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokHostVar, text: l.src[start+1 : l.pos], pos: start})
		default:
			if err := l.lexSymbol(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

// Identifiers are ASCII-only: the lexer scans bytes, and admitting
// high bytes as Latin-1 letters would accept identifiers that cannot
// survive a render/re-parse round trip.
func isIdentStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || (r >= '0' && r <= '9')
}

func (l *lexer) lexIdent(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	up := strings.ToUpper(text)
	if keywords[up] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexNumber(start int) {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at offset %d", start)
}

func (l *lexer) lexSymbol(start int) error {
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		if two == "!=" {
			two = "<>"
		}
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', '.', ';':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}
