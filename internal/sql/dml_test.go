package sql

import (
	"strings"
	"testing"
)

func TestParseInsert(t *testing.T) {
	stmt, err := ParseStatement(`insert into r (id, name) values (1, 'a'), (2, 'b');`)
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := stmt.(*InsertStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ins.Table != "r" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Errorf("parsed %q cols=%v rows=%d", ins.Table, ins.Columns, len(ins.Rows))
	}
	if got := ins.SQL(); !strings.Contains(got, "INSERT INTO r") {
		t.Errorf("SQL() = %q", got)
	}
}

func TestParseInsertNoColumnList(t *testing.T) {
	stmt, err := ParseStatement(`insert into r values (1, 2.5, 'x')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if len(ins.Columns) != 0 || len(ins.Rows) != 1 || len(ins.Rows[0]) != 3 {
		t.Errorf("cols=%v rows=%v", ins.Columns, ins.Rows)
	}
}

func TestParseInsertArityMismatch(t *testing.T) {
	if _, err := ParseStatement(`insert into r (a, b) values (1)`); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestParseUpdate(t *testing.T) {
	stmt, err := ParseStatement(`update r set name = 'z', grp = grp where id > 5 and grp = 2`)
	if err != nil {
		t.Fatal(err)
	}
	up, ok := stmt.(*UpdateStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if up.Table != "r" || len(up.Set) != 2 || len(up.Where) != 2 {
		t.Errorf("table=%q set=%d where=%d", up.Table, len(up.Set), len(up.Where))
	}
	if up.Set[0].Column != "name" {
		t.Errorf("first assignment column = %q", up.Set[0].Column)
	}
}

func TestParseDelete(t *testing.T) {
	stmt, err := ParseStatement(`delete from r where id = :target`)
	if err != nil {
		t.Fatal(err)
	}
	del, ok := stmt.(*DeleteStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if del.Table != "r" || len(del.Where) != 1 {
		t.Errorf("table=%q where=%d", del.Table, len(del.Where))
	}
}

func TestParseDeleteNoWhere(t *testing.T) {
	stmt, err := ParseStatement(`delete from r`)
	if err != nil {
		t.Fatal(err)
	}
	if del := stmt.(*DeleteStmt); len(del.Where) != 0 {
		t.Errorf("where=%d", len(del.Where))
	}
}

func TestParseTxnControl(t *testing.T) {
	for src, want := range map[string]string{
		"begin":     "*sql.BeginStmt",
		"BEGIN;":    "*sql.BeginStmt",
		"commit":    "*sql.CommitStmt",
		"rollback;": "*sql.RollbackStmt",
	} {
		stmt, err := ParseStatement(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if got := typeName(stmt); got != want {
			t.Errorf("%q parsed as %s, want %s", src, got, want)
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *BeginStmt:
		return "*sql.BeginStmt"
	case *CommitStmt:
		return "*sql.CommitStmt"
	case *RollbackStmt:
		return "*sql.RollbackStmt"
	}
	return "?"
}

func TestParseStatementSelectPassthrough(t *testing.T) {
	stmt, err := ParseStatement(`select a from r where a > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*SelectStmt); !ok {
		t.Fatalf("got %T", stmt)
	}
}

func TestDMLRoundTripThroughSQL(t *testing.T) {
	for _, src := range []string{
		`insert into r (a) values (1)`,
		`update r set a = 2 where b = 3`,
		`delete from r where a = 1`,
	} {
		stmt, err := ParseStatement(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		again, err := ParseStatement(stmt.SQL())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", stmt.SQL(), src, err)
		}
		if stmt.SQL() != again.SQL() {
			t.Errorf("round trip: %q != %q", stmt.SQL(), again.SQL())
		}
	}
}
