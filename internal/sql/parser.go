package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/types"
)

// Parse parses one SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sql: trailing input at %s", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind and (if non-empty)
// text.
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

// expect consumes a required token or fails.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, fmt.Errorf("sql: expected %s, found %s", want, p.peek())
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.accept(tokKeyword, "DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Select = append(stmt.Select, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}

	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}

	if p.accept(tokKeyword, "WHERE") {
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, pred)
			if !p.accept(tokKeyword, "AND") {
				break
			}
		}
	}

	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad limit %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// `*` is only legal as a whole select item, never inside an
	// expression, so it is claimed here before expression parsing (a
	// leading `*` in expression position could only be a syntax error).
	if p.at(tokSymbol, "*") {
		p.next()
		return SelectItem{Expr: &Star{}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = strings.ToLower(t.text)
	} else if p.at(tokIdent, "") {
		item.Alias = strings.ToLower(p.next().text)
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	name := strings.ToLower(t.text)
	// Schema-qualified names ("mqr.queries") keep the dot in the
	// catalog key; the binding for column references is the alias or
	// the full dotted name.
	if p.accept(tokSymbol, ".") {
		part, err := p.expect(tokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		name += "." + strings.ToLower(part.text)
	}
	ref := TableRef{Name: name}
	if p.at(tokIdent, "") {
		ref.Alias = strings.ToLower(p.next().text)
	}
	return ref, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &BetweenPred{Expr: left, Lo: lo, Hi: hi}, nil
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InPred{Expr: left, List: list}, nil
	case p.accept(tokKeyword, "LIKE"):
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &LikePred{Expr: left, Pattern: t.text}, nil
	}
	for _, op := range []struct {
		sym string
		op  CompareOp
	}{{"<=", OpLe}, {">=", OpGe}, {"<>", OpNe}, {"=", OpEq}, {"<", OpLt}, {">", OpGt}} {
		if p.accept(tokSymbol, op.sym) {
			right, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &ComparePred{Op: op.op, Left: left, Right: right}, nil
		}
	}
	return nil, fmt.Errorf("sql: expected comparison operator, found %s", p.peek())
}

// parseExpr handles + and - over terms.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op byte
		switch {
		case p.accept(tokSymbol, "+"):
			op = '+'
		case p.accept(tokSymbol, "-"):
			op = '-'
		default:
			return left, nil
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

// parseTerm handles * and / over factors.
func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op byte
		switch {
		case p.accept(tokSymbol, "*"):
			op = '*'
		case p.accept(tokSymbol, "/"):
			op = '/'
		default:
			return left, nil
		}
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

var aggNames = map[string]AggFunc{
	"SUM": AggSum, "AVG": AggAvg, "COUNT": AggCount, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.text)
			}
			return &Literal{Value: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return &Literal{Value: types.NewInt(n)}, nil
	case tokString:
		p.next()
		return &Literal{Value: types.NewString(t.text)}, nil
	case tokHostVar:
		p.next()
		return &HostVar{Name: strings.ToLower(t.text)}, nil
	case tokKeyword:
		if f, ok := aggNames[t.text]; ok {
			p.next()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			if f == AggCount && p.accept(tokSymbol, "*") {
				if _, err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
				return &AggExpr{Func: AggCount}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return &AggExpr{Func: f, Arg: arg}, nil
		}
		if t.text == "DATE" {
			p.next()
			lit, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			d, err := parseDate(lit.text)
			if err != nil {
				return nil, err
			}
			return &Literal{Value: d}, nil
		}
		if t.text == "NULL" {
			p.next()
			return &Literal{Value: types.Null()}, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %s in expression", t)
	case tokIdent:
		p.next()
		if p.accept(tokSymbol, ".") {
			if p.accept(tokSymbol, "*") {
				return &Star{Table: strings.ToLower(t.text)}, nil
			}
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: strings.ToLower(t.text), Name: strings.ToLower(name.text)}, nil
		}
		return &ColumnRef{Name: strings.ToLower(t.text)}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			p.next()
			inner, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: '-', Left: &Literal{Value: types.NewInt(0)}, Right: inner}, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected %s in expression", t)
}

func parseDate(s string) (types.Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return types.Null(), fmt.Errorf("sql: bad date literal %q", s)
	}
	return types.NewDateFromTime(t), nil
}
