package sql

import (
	"testing"
)

func lexOK(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	return toks
}

func TestLexTokenKinds(t *testing.T) {
	toks := lexOK(t, "select a1, 42, 3.14, 'str', :hv from t")
	kinds := []tokenKind{}
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{
		tokKeyword, tokIdent, tokSymbol, tokNumber, tokSymbol, tokNumber,
		tokSymbol, tokString, tokSymbol, tokHostVar, tokKeyword, tokIdent, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d kind = %d, want %d", i, kinds[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexOK(t, "a <= b >= c <> d != e < f > g = h")
	var ops []string
	for _, tk := range toks {
		if tk.kind == tokSymbol {
			ops = append(ops, tk.text)
		}
	}
	want := []string{"<=", ">=", "<>", "<>", "<", ">", "="}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexCommentsAndWhitespace(t *testing.T) {
	toks := lexOK(t, "select -- everything after is gone <>!\n  a\t\nfrom  r")
	if len(toks) != 5 { // select a from r EOF
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexEscapedQuote(t *testing.T) {
	toks := lexOK(t, "'a''b'")
	if toks[0].kind != tokString || toks[0].text != "a'b" {
		t.Errorf("token = %+v", toks[0])
	}
}

func TestLexKeywordCaseInsensitive(t *testing.T) {
	toks := lexOK(t, "SeLeCt BETWEEN sum")
	if toks[0].kind != tokKeyword || toks[0].text != "SELECT" {
		t.Errorf("token 0 = %+v", toks[0])
	}
	if toks[1].text != "BETWEEN" || toks[2].text != "SUM" {
		t.Errorf("keywords = %v %v", toks[1], toks[2])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "a # b", ": alone?"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded", src)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lexOK(t, "0.05 100 .5")
	if toks[0].text != "0.05" || toks[1].text != "100" || toks[2].text != ".5" {
		t.Errorf("numbers = %v %v %v", toks[0], toks[1], toks[2])
	}
}
