package sql

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Expr is any scalar expression node.
type Expr interface {
	// SQL renders the expression back to SQL text, used when the
	// re-optimizer generates the remainder query.
	SQL() string
}

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string
	Name  string
}

// SQL implements Expr.
func (c *ColumnRef) SQL() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Star is the `*` select item (optionally qualified, `t.*`). The
// analyzer expands it to the referenced relations' columns before
// planning; no later stage ever sees one.
type Star struct {
	// Table restricts the expansion to one relation's binding; empty
	// expands every FROM relation in order.
	Table string
}

// SQL implements Expr.
func (s *Star) SQL() string {
	if s.Table == "" {
		return "*"
	}
	return s.Table + ".*"
}

// Literal is a constant value.
type Literal struct {
	Value types.Value
}

// SQL implements Expr.
func (l *Literal) SQL() string {
	switch l.Value.Kind() {
	case types.KindString:
		return "'" + strings.ReplaceAll(l.Value.Str(), "'", "''") + "'"
	case types.KindDate:
		return "date '" + l.Value.String() + "'"
	case types.KindNull:
		return "NULL"
	default:
		return l.Value.String()
	}
}

// HostVar is a host-language variable placeholder (":v1"), bound at
// execution time. Host variables are one of the paper's named sources of
// optimizer estimation error: their values are unknown at plan time.
type HostVar struct {
	Name string
}

// SQL implements Expr.
func (h *HostVar) SQL() string { return ":" + h.Name }

// BinaryExpr is an arithmetic expression.
type BinaryExpr struct {
	Op          byte // '+', '-', '*', '/'
	Left, Right Expr
}

// SQL implements Expr.
func (b *BinaryExpr) SQL() string {
	return fmt.Sprintf("(%s %c %s)", b.Left.SQL(), b.Op, b.Right.SQL())
}

// AggFunc identifies an aggregate function.
type AggFunc uint8

// Supported aggregate functions.
const (
	AggSum AggFunc = iota
	AggAvg
	AggCount
	AggMin
	AggMax
)

// String returns the SQL name of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggCount:
		return "COUNT"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// AggExpr is an aggregate invocation. A nil Arg means COUNT(*).
type AggExpr struct {
	Func AggFunc
	Arg  Expr
}

// SQL implements Expr.
func (a *AggExpr) SQL() string {
	if a.Arg == nil {
		return a.Func.String() + "(*)"
	}
	return a.Func.String() + "(" + a.Arg.SQL() + ")"
}

// CompareOp identifies a comparison operator.
type CompareOp uint8

// Supported comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (o CompareOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", uint8(o))
	}
}

// Negate returns the complementary operator.
func (o CompareOp) Negate() CompareOp {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	default:
		return OpLt
	}
}

// Predicate is a boolean condition. The WHERE clause is a conjunction of
// predicates (the subset has AND but not OR, which covers the paper's
// workload).
type Predicate interface {
	SQL() string
}

// ComparePred is "left op right".
type ComparePred struct {
	Op          CompareOp
	Left, Right Expr
}

// SQL implements Predicate.
func (p *ComparePred) SQL() string {
	return fmt.Sprintf("%s %s %s", p.Left.SQL(), p.Op, p.Right.SQL())
}

// BetweenPred is "expr BETWEEN lo AND hi".
type BetweenPred struct {
	Expr   Expr
	Lo, Hi Expr
}

// SQL implements Predicate.
func (p *BetweenPred) SQL() string {
	return fmt.Sprintf("%s between %s and %s", p.Expr.SQL(), p.Lo.SQL(), p.Hi.SQL())
}

// InPred is "expr IN (v1, v2, ...)".
type InPred struct {
	Expr Expr
	List []Expr
}

// SQL implements Predicate.
func (p *InPred) SQL() string {
	parts := make([]string, len(p.List))
	for i, e := range p.List {
		parts[i] = e.SQL()
	}
	return fmt.Sprintf("%s in (%s)", p.Expr.SQL(), strings.Join(parts, ", "))
}

// LikePred is "expr LIKE 'pattern'" where pattern uses % and _.
type LikePred struct {
	Expr    Expr
	Pattern string
}

// SQL implements Predicate.
func (p *LikePred) SQL() string {
	return fmt.Sprintf("%s like '%s'", p.Expr.SQL(), strings.ReplaceAll(p.Pattern, "'", "''"))
}

// SelectItem is one output column of a SELECT.
type SelectItem struct {
	Expr  Expr
	Alias string // optional AS name
}

// SQL renders the item.
func (s SelectItem) SQL() string {
	if s.Alias != "" {
		return s.Expr.SQL() + " as " + s.Alias
	}
	return s.Expr.SQL()
}

// TableRef is one FROM-clause entry.
type TableRef struct {
	Name  string
	Alias string // empty if unaliased
}

// Binding returns the name predicates refer to the table by.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// SQL renders the reference.
func (t TableRef) SQL() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SQL renders the item.
func (o OrderItem) SQL() string {
	if o.Desc {
		return o.Expr.SQL() + " desc"
	}
	return o.Expr.SQL()
}

// SelectStmt is a parsed query.
type SelectStmt struct {
	Distinct bool
	Select   []SelectItem
	From     []TableRef
	Where    []Predicate // conjunction
	GroupBy  []Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 if absent
}

// SQL renders the statement back to SQL text.
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString("select ")
	if s.Distinct {
		b.WriteString("distinct ")
	}
	for i, item := range s.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(item.SQL())
	}
	b.WriteString(" from ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.SQL())
	}
	if len(s.Where) > 0 {
		b.WriteString(" where ")
		for i, p := range s.Where {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(p.SQL())
		}
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" group by ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" order by ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.SQL())
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " limit %d", s.Limit)
	}
	return b.String()
}
