package sql

import "testing"

func TestParseSelectStar(t *testing.T) {
	stmt := mustParse(t, "select * from r")
	if len(stmt.Select) != 1 {
		t.Fatalf("select list len = %d", len(stmt.Select))
	}
	star, ok := stmt.Select[0].Expr.(*Star)
	if !ok || star.Table != "" {
		t.Fatalf("select item = %#v", stmt.Select[0].Expr)
	}
	if stmt.SQL() != "select * from r" {
		t.Errorf("round trip = %q", stmt.SQL())
	}
}

func TestParseQualifiedStar(t *testing.T) {
	stmt := mustParse(t, "select R.*, s.x from R, s where r.a = s.b")
	star, ok := stmt.Select[0].Expr.(*Star)
	if !ok || star.Table != "r" {
		t.Fatalf("select item = %#v", stmt.Select[0].Expr)
	}
	if _, ok := stmt.Select[1].Expr.(*ColumnRef); !ok {
		t.Fatalf("select[1] = %#v", stmt.Select[1].Expr)
	}
}

func TestParseStarWithTrailingItems(t *testing.T) {
	stmt := mustParse(t, "select *, a from r")
	if len(stmt.Select) != 2 {
		t.Fatalf("select list len = %d", len(stmt.Select))
	}
	if _, ok := stmt.Select[0].Expr.(*Star); !ok {
		t.Fatalf("select[0] = %#v", stmt.Select[0].Expr)
	}
}

func TestParseDottedTableName(t *testing.T) {
	stmt := mustParse(t, "select * from mqr.queries")
	if len(stmt.From) != 1 {
		t.Fatalf("from len = %d", len(stmt.From))
	}
	if stmt.From[0].Name != "mqr.queries" {
		t.Errorf("from name = %q, want mqr.queries", stmt.From[0].Name)
	}
	if stmt.From[0].Alias != "" {
		t.Errorf("alias = %q", stmt.From[0].Alias)
	}
}

func TestParseDottedTableNameWithAlias(t *testing.T) {
	stmt := mustParse(t, "select q.query from mqr.queries q where q.score > 1")
	if stmt.From[0].Name != "mqr.queries" || stmt.From[0].Alias != "q" {
		t.Errorf("from = %+v", stmt.From[0])
	}
	col, ok := stmt.Select[0].Expr.(*ColumnRef)
	if !ok || col.Table != "q" || col.Name != "query" {
		t.Errorf("select[0] = %#v", stmt.Select[0].Expr)
	}
}

func TestStarIsNotValidInWhere(t *testing.T) {
	// "*" after an operand position parses as multiplication, never as a
	// Star expression; a bare star where a value is required must error.
	if _, err := Parse("select a from r where * = 1"); err == nil {
		t.Fatal("bare * accepted in a predicate")
	}
}
