package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func intVals(xs ...int64) []types.Value {
	vs := make([]types.Value, len(xs))
	for i, x := range xs {
		vs[i] = types.NewInt(x)
	}
	return vs
}

func uniformVals(n int, domain int64, seed int64) []types.Value {
	rng := rand.New(rand.NewSource(seed))
	vs := make([]types.Value, n)
	for i := range vs {
		vs[i] = types.NewInt(rng.Int63n(domain))
	}
	return vs
}

func TestFamilyStringsAndClasses(t *testing.T) {
	if EquiWidth.String() != "equi-width" || MaxDiff.String() != "maxdiff" {
		t.Error("family names wrong")
	}
	if MaxDiff.Class() != ClassSerial || EndBiased.Class() != ClassSerial {
		t.Error("serial-class families misclassified")
	}
	if EquiWidth.Class() != ClassBucketed || EquiDepth.Class() != ClassBucketed {
		t.Error("bucketed families misclassified")
	}
}

func TestBuildPreservesTotals(t *testing.T) {
	vals := uniformVals(10000, 500, 7)
	for _, f := range []Family{EquiWidth, EquiDepth, MaxDiff, EndBiased} {
		h := Build(f, vals, 20, 0)
		if h.Total != 10000 {
			t.Errorf("%s: Total = %g", f, h.Total)
		}
		sum := 0.0
		for _, b := range h.Buckets {
			sum += b.Count
		}
		if math.Abs(sum-10000) > 1e-6 {
			t.Errorf("%s: bucket counts sum to %g", f, sum)
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	for _, f := range []Family{EquiWidth, EquiDepth, MaxDiff, EndBiased} {
		h := Build(f, nil, 10, 0)
		if h.Total != 0 || len(h.Buckets) != 0 {
			t.Errorf("%s: empty build = %v", f, h)
		}
		if got := h.EstimateEq(5); got != DefaultEqSelectivity {
			t.Errorf("%s: empty EstimateEq = %g", f, got)
		}
		if got := h.EstimateRange(1, 2); got != DefaultRangeSelectivity {
			t.Errorf("%s: empty EstimateRange = %g", f, got)
		}
	}
}

func TestBuildSingleValue(t *testing.T) {
	vals := intVals(5, 5, 5, 5)
	for _, f := range []Family{EquiWidth, EquiDepth, MaxDiff, EndBiased} {
		h := Build(f, vals, 4, 0)
		if got := h.EstimateEq(5); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s: EstimateEq(5) = %g, want 1", f, got)
		}
		if got := h.EstimateEq(6); got != 0 {
			t.Errorf("%s: EstimateEq(6) = %g, want 0", f, got)
		}
	}
}

func TestEquiDepthBucketsBalanced(t *testing.T) {
	vals := uniformVals(10000, 100000, 3)
	h := Build(EquiDepth, vals, 10, 0)
	for _, b := range h.Buckets {
		if b.Count < 500 || b.Count > 2000 {
			t.Errorf("unbalanced equi-depth bucket: %+v", b)
		}
	}
}

func TestMaxDiffExactWhenFewDistinct(t *testing.T) {
	vals := intVals(1, 1, 1, 2, 3, 3, 9, 9, 9, 9)
	h := Build(MaxDiff, vals, 10, 0)
	if len(h.Buckets) != 4 {
		t.Fatalf("buckets = %d, want one per distinct value", len(h.Buckets))
	}
	if got := h.EstimateEq(9); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("EstimateEq(9) = %g, want 0.4", got)
	}
	if got := h.EstimateEq(2); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("EstimateEq(2) = %g, want 0.1", got)
	}
}

func TestMaxDiffIsolatesOutliers(t *testing.T) {
	// 10k values uniform on [0,1000) plus a heavy hitter at 5000 with
	// frequency 5000. MaxDiff should put the outlier in its own bucket,
	// making its equality estimate near-exact.
	vals := uniformVals(10000, 1000, 11)
	for i := 0; i < 5000; i++ {
		vals = append(vals, types.NewInt(5000))
	}
	h := Build(MaxDiff, vals, 20, 0)
	got := h.EstimateEq(5000)
	want := 5000.0 / 15000.0
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("heavy hitter estimate %g, want %g", got, want)
	}
}

func TestEndBiasedHeavyHitters(t *testing.T) {
	// Zipf-ish: value v has frequency 1000/v for v in 1..100.
	var vals []types.Value
	for v := int64(1); v <= 100; v++ {
		for i := int64(0); i < 1000/v; i++ {
			vals = append(vals, types.NewInt(v))
		}
	}
	h := Build(EndBiased, vals, 11, 0)
	// The top-10 values must be near-exact.
	for v := int64(1); v <= 10; v++ {
		got := h.EstimateEq(float64(v))
		want := float64(1000/v) / h.Total
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("end-biased estimate for %d = %g, want %g", v, got, want)
		}
	}
}

func TestEstimateRangeUniform(t *testing.T) {
	vals := make([]types.Value, 0, 10000)
	for i := 0; i < 10000; i++ {
		vals = append(vals, types.NewInt(int64(i)))
	}
	for _, f := range []Family{EquiWidth, EquiDepth, MaxDiff} {
		h := Build(f, vals, 50, 0)
		got := h.EstimateRange(2500, 7499)
		if math.Abs(got-0.5) > 0.05 {
			t.Errorf("%s: range [2500,7499] = %g, want ~0.5", f, got)
		}
		if got := h.EstimateRange(math.NaN(), math.NaN()); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s: unbounded range = %g, want 1", f, got)
		}
		if got := h.EstimateRange(20000, 30000); got != 0 {
			t.Errorf("%s: out-of-domain range = %g", f, got)
		}
		if got := h.EstimateRange(10, 5); got != 0 {
			t.Errorf("%s: inverted range = %g", f, got)
		}
	}
}

func TestEstimateJoinUniform(t *testing.T) {
	// R.a uniform on [0,1000), S.b uniform on [0,1000): selectivity
	// should be about 1/1000.
	r := Build(MaxDiff, uniformVals(20000, 1000, 5), 30, 0)
	s := Build(MaxDiff, uniformVals(15000, 1000, 6), 30, 0)
	got := r.EstimateJoin(s)
	want := 1.0 / 1000.0
	if got < want/3 || got > want*3 {
		t.Errorf("join selectivity = %g, want ~%g", got, want)
	}
}

func TestEstimateJoinDisjointDomains(t *testing.T) {
	r := Build(MaxDiff, uniformVals(1000, 100, 5), 10, 0)
	var hi []types.Value
	for i := 0; i < 1000; i++ {
		hi = append(hi, types.NewInt(int64(100000+i)))
	}
	s := Build(MaxDiff, hi, 10, 0)
	if got := r.EstimateJoin(s); got != 0 {
		t.Errorf("disjoint join selectivity = %g, want 0", got)
	}
}

func TestEstimateJoinNilFallback(t *testing.T) {
	var nilH *Histogram
	got := nilH.EstimateJoin(nil)
	if got <= 0 || got > 1 {
		t.Errorf("nil join fallback = %g", got)
	}
}

func TestEstimateDistinct(t *testing.T) {
	vals := uniformVals(10000, 100, 9)
	h := Build(MaxDiff, vals, 20, 0)
	// Selecting everything keeps all distinct values.
	if got := h.EstimateDistinct(1); math.Abs(got-h.TotalDistinct) > 1 {
		t.Errorf("EstimateDistinct(1) = %g, want %g", got, h.TotalDistinct)
	}
	// With 100 tuples per value, even a 10% selection should retain
	// nearly all distinct values.
	if got := h.EstimateDistinct(0.1); got < h.TotalDistinct*0.9 {
		t.Errorf("EstimateDistinct(0.1) = %g, want near %g", got, h.TotalDistinct)
	}
	if got := h.EstimateDistinct(0); got != 0 {
		t.Errorf("EstimateDistinct(0) = %g", got)
	}
}

func TestScaleFromSample(t *testing.T) {
	sample := uniformVals(1000, 500, 13)
	h := Build(MaxDiff, sample, 20, 250000)
	if h.Total != 250000 {
		t.Errorf("scaled Total = %g", h.Total)
	}
	sum := 0.0
	for _, b := range h.Buckets {
		sum += b.Count
	}
	if math.Abs(sum-250000) > 1 {
		t.Errorf("scaled counts sum to %g", sum)
	}
}

func TestSelectivityBoundsProperty(t *testing.T) {
	// Property: every estimator returns a value in [0,1] on random data.
	f := func(seed int64, nb uint8, lo, hi int16) bool {
		vals := uniformVals(500, 200, seed)
		for _, fam := range []Family{EquiWidth, EquiDepth, MaxDiff, EndBiased} {
			h := Build(fam, vals, int(nb%30)+1, 0)
			for _, s := range []float64{
				h.EstimateEq(float64(lo)),
				h.EstimateRange(float64(lo), float64(hi)),
				h.EstimateJoin(h),
			} {
				if s < 0 || s > 1 || math.IsNaN(s) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := Build(MaxDiff, uniformVals(100, 50, 2), 10, 0)
	if h.String() == "" {
		t.Error("empty String()")
	}
	if h.Min() > h.Max() {
		t.Error("Min > Max")
	}
	var empty Histogram
	if !math.IsNaN(empty.Min()) || !math.IsNaN(empty.Max()) {
		t.Error("empty Min/Max not NaN")
	}
}
