package histogram

import (
	"math"
	"testing"

	"repro/internal/types"
)

// FuzzBuild checks every histogram family's invariants over arbitrary
// byte-derived value streams: counts are preserved, buckets are ordered
// and non-overlapping, and every estimator stays within [0, 1].
func FuzzBuild(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(4))
	f.Add([]byte{0, 0, 0, 0}, uint8(1))
	f.Add([]byte{255, 0, 255, 0, 128}, uint8(20))
	f.Add([]byte{}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, nb uint8) {
		vals := make([]types.Value, len(data))
		for i, b := range data {
			vals[i] = types.NewInt(int64(int8(b))) // signed: negatives too
		}
		buckets := int(nb%32) + 1
		for _, fam := range []Family{MaxDiff, EndBiased, EquiWidth, EquiDepth} {
			h := Build(fam, vals, buckets, 0)
			if h.Total != float64(len(vals)) {
				t.Fatalf("%s: Total %g for %d values", fam, h.Total, len(vals))
			}
			sum := 0.0
			for bi, b := range h.Buckets {
				if b.Lo > b.Hi {
					t.Fatalf("%s: inverted bucket %+v", fam, b)
				}
				if bi > 0 && h.Buckets[bi-1].Hi > b.Lo {
					t.Fatalf("%s: overlapping buckets %+v %+v", fam, h.Buckets[bi-1], b)
				}
				sum += b.Count
			}
			if len(vals) > 0 && math.Abs(sum-float64(len(vals))) > 1e-6 {
				t.Fatalf("%s: bucket counts sum to %g", fam, sum)
			}
			for _, probe := range []float64{-200, -1, 0, 1, 63.5, 300} {
				if s := h.EstimateEq(probe); s < 0 || s > 1 || math.IsNaN(s) {
					t.Fatalf("%s: EstimateEq(%g) = %g", fam, probe, s)
				}
			}
			if s := h.EstimateRange(-50, 50); s < 0 || s > 1 || math.IsNaN(s) {
				t.Fatalf("%s: range estimate %g", fam, s)
			}
			if s := h.EstimateJoin(h); s < 0 || s > 1 || math.IsNaN(s) {
				t.Fatalf("%s: join estimate %g", fam, s)
			}
		}
	})
}
