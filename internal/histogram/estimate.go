package histogram

import (
	"math"
)

// Selectivity estimators. All return a fraction in [0, 1] of the
// summarized relation. An empty histogram returns the textbook default
// magic numbers (1/10 for equality, 1/3 for ranges), which is also what
// the optimizer falls back to for columns with no statistics — precisely
// the "high inaccuracy potential" case the paper's SCIA targets.

// Default selectivities used when no histogram is available.
const (
	DefaultEqSelectivity    = 0.1
	DefaultRangeSelectivity = 1.0 / 3.0
)

// EstimateEq estimates the fraction of tuples with value = v (by float
// image).
func (h *Histogram) EstimateEq(v float64) float64 {
	if h == nil || h.Total <= 0 || len(h.Buckets) == 0 {
		return DefaultEqSelectivity
	}
	for _, b := range h.Buckets {
		if v < b.Lo || v > b.Hi {
			continue
		}
		d := b.Distinct
		if d < 1 {
			d = 1
		}
		return clamp01(b.Count / d / h.Total)
	}
	return 0
}

// EstimateRange estimates the fraction of tuples with lo <= value <= hi.
// Either bound may be NaN, meaning unbounded on that side. Bucket
// contents are assumed uniformly spread across [Lo, Hi] (the standard
// continuous-values assumption).
func (h *Histogram) EstimateRange(lo, hi float64) float64 {
	if h == nil || h.Total <= 0 || len(h.Buckets) == 0 {
		return DefaultRangeSelectivity
	}
	if math.IsNaN(lo) {
		lo = math.Inf(-1)
	}
	if math.IsNaN(hi) {
		hi = math.Inf(1)
	}
	if lo > hi {
		return 0
	}
	count := 0.0
	for _, b := range h.Buckets {
		if b.Hi < lo || b.Lo > hi {
			continue
		}
		if b.Lo >= lo && b.Hi <= hi {
			count += b.Count
			continue
		}
		// Partial overlap: linear interpolation.
		width := b.Hi - b.Lo
		if width <= 0 {
			count += b.Count
			continue
		}
		from := math.Max(lo, b.Lo)
		to := math.Min(hi, b.Hi)
		count += b.Count * (to - from) / width
	}
	return clamp01(count / h.Total)
}

// EstimateJoin estimates the selectivity of an equi-join between the
// attribute summarized by h and the one summarized by o: the fraction of
// the cross product that joins. With aligned histograms it sums the
// per-overlap contribution count_h × count_o / max(d_h, d_o); without
// overlap information it degrades to the System-R 1/max(V1, V2) formula.
func (h *Histogram) EstimateJoin(o *Histogram) float64 {
	if h == nil || o == nil || h.Total <= 0 || o.Total <= 0 {
		dh, do := 10.0, 10.0
		if h != nil && h.TotalDistinct > 0 {
			dh = h.TotalDistinct
		}
		if o != nil && o.TotalDistinct > 0 {
			do = o.TotalDistinct
		}
		return clamp01(1 / math.Max(dh, do))
	}
	matched := 0.0
	for _, bh := range h.Buckets {
		for _, bo := range o.Buckets {
			lo := math.Max(bh.Lo, bo.Lo)
			hi := math.Min(bh.Hi, bo.Hi)
			if lo > hi {
				continue
			}
			// Fraction of each bucket inside the overlap.
			fh := overlapFrac(bh, lo, hi)
			fo := overlapFrac(bo, lo, hi)
			dh := math.Max(bh.Distinct*fh, 1)
			do := math.Max(bo.Distinct*fo, 1)
			matched += bh.Count * fh * bo.Count * fo / math.Max(dh, do)
		}
	}
	return clamp01(matched / (h.Total * o.Total))
}

// overlapFrac is the fraction of a bucket's mass falling inside [lo, hi].
// The +1 smoothing treats buckets as holding discrete values at unit
// granularity: without it, two integer-domain histograms with misaligned
// bucket boundaries would meet only at zero-width points and the join
// estimate would collapse to zero.
func overlapFrac(b Bucket, lo, hi float64) float64 {
	width := b.Hi - b.Lo
	if width <= 0 {
		return 1
	}
	f := (hi - lo + 1) / (width + 1)
	if f > 1 {
		return 1
	}
	return f
}

// EstimateDistinct estimates the number of distinct values in the
// fraction sel of the relation, using the standard "distinct values
// shrink slower than cardinality" correction of Yao's formula
// approximation: d' = d * (1 - (1 - sel)^(n/d)).
func (h *Histogram) EstimateDistinct(sel float64) float64 {
	if h == nil || h.TotalDistinct <= 0 {
		return 0
	}
	sel = clamp01(sel)
	if h.Total <= 0 || h.TotalDistinct >= h.Total {
		return h.TotalDistinct * sel
	}
	perValue := h.Total / h.TotalDistinct
	return h.TotalDistinct * (1 - math.Pow(1-sel, perValue))
}

func clamp01(f float64) float64 {
	if math.IsNaN(f) || f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
