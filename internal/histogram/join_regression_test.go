package histogram

import (
	"testing"

	"repro/internal/types"
)

// TestEstimateJoinMisalignedIntegerBuckets is a regression test: two
// histograms over the same integer domain whose bucket boundaries do not
// line up used to meet only at zero-width points, collapsing the join
// estimate to ~0 and making downstream plans look free. The +1 smoothing
// in overlapFrac keeps the estimate near 1/distinct.
func TestEstimateJoinMisalignedIntegerBuckets(t *testing.T) {
	// Side A: values 0..39 uniform; side B: values 0..39 but with
	// frequencies that force MaxDiff boundaries at different places.
	var a, b []types.Value
	for v := int64(0); v < 40; v++ {
		for i := int64(0); i < 25; i++ {
			a = append(a, types.NewInt(v))
		}
		reps := int64(10 + (v%2)*30) // alternating frequencies move B's boundaries
		for i := int64(0); i < reps; i++ {
			b = append(b, types.NewInt(v))
		}
	}
	ha := Build(MaxDiff, a, 20, 0)
	hb := Build(MaxDiff, b, 20, 0)
	got := ha.EstimateJoin(hb)
	want := 1.0 / 40.0
	if got < want/4 {
		t.Errorf("misaligned join selectivity collapsed: %g, want ~%g", got, want)
	}
	if got > want*4 {
		t.Errorf("misaligned join selectivity inflated: %g, want ~%g", got, want)
	}
}

func TestEstimateJoinSelfConsistency(t *testing.T) {
	// Joining a histogram with itself on a key-like column: selectivity
	// ~1/distinct.
	var vs []types.Value
	for v := int64(0); v < 500; v++ {
		vs = append(vs, types.NewInt(v))
	}
	for _, fam := range []Family{MaxDiff, EquiDepth, EquiWidth, EndBiased} {
		h := Build(fam, vs, 20, 0)
		got := h.EstimateJoin(h)
		want := 1.0 / 500.0
		if got < want/5 || got > want*5 {
			t.Errorf("%s: self-join selectivity %g, want ~%g", fam, got, want)
		}
	}
}

func TestScaledPreservesFractions(t *testing.T) {
	var vs []types.Value
	for i := 0; i < 1000; i++ {
		vs = append(vs, types.NewInt(int64(i%50)))
	}
	h := Build(MaxDiff, vs, 20, 0)
	s := h.Scaled(123456)
	if s.Total != 123456 {
		t.Errorf("Scaled Total = %g", s.Total)
	}
	if s.TotalDistinct != h.TotalDistinct {
		t.Error("Scaled changed distinct count")
	}
	if a, b := h.EstimateEq(7), s.EstimateEq(7); a != b {
		t.Errorf("Scaled changed fractions: %g vs %g", a, b)
	}
	// The original is untouched.
	if h.Total != 1000 {
		t.Errorf("Scaled mutated the receiver: Total = %g", h.Total)
	}
}
