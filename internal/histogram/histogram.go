// Package histogram implements the histogram families the paper's
// estimation machinery depends on: equi-width, equi-depth, MaxDiff(V,A)
// (Poosala et al. 1996 — the family Paradise stores in its catalogs), and
// end-biased serial histograms. It also provides the selectivity
// estimators the optimizer uses for selection and join predicates.
//
// Values are bucketed through their float image (types.Value.AsFloat), so
// dates and integers bucket naturally and strings bucket by hash, which
// supports equality estimation but not meaningful string ranges — the
// same practical restriction real systems of the era had.
package histogram

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/types"
)

// Family identifies the histogram construction algorithm. The paper's
// inaccuracy-potential rules (§2.5) grade estimate quality by family:
// serial-class histograms (MaxDiff, end-biased) are "low" inaccuracy,
// equi-width and equi-depth are "medium", and no histogram is "high".
type Family uint8

// The supported histogram families. MaxDiff is the zero value because it
// is the family Paradise's catalogs default to.
const (
	MaxDiff Family = iota
	EndBiased
	EquiWidth
	EquiDepth
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case EquiWidth:
		return "equi-width"
	case EquiDepth:
		return "equi-depth"
	case MaxDiff:
		return "maxdiff"
	case EndBiased:
		return "end-biased"
	default:
		return fmt.Sprintf("Family(%d)", uint8(f))
	}
}

// AccuracyClass buckets families into the paper's three estimate-quality
// grades. Serial-class histograms group attribute values by frequency
// (Poosala–Ioannidis taxonomy), which is what the paper means by "serial
// histogram".
type AccuracyClass uint8

// Accuracy classes, ordered from most to least accurate.
const (
	ClassSerial AccuracyClass = iota
	ClassBucketed
	ClassNone
)

// Class returns the family's accuracy class.
func (f Family) Class() AccuracyClass {
	switch f {
	case MaxDiff, EndBiased:
		return ClassSerial
	default:
		return ClassBucketed
	}
}

// Bucket is one histogram bucket over the closed interval [Lo, Hi].
type Bucket struct {
	Lo, Hi   float64
	Count    float64 // tuples in the bucket
	Distinct float64 // distinct values in the bucket
}

// Histogram summarizes one attribute's value distribution.
type Histogram struct {
	Family  Family
	Buckets []Bucket
	Total   float64 // total tuples summarized
	// TotalDistinct is the distinct-value count across all buckets.
	TotalDistinct float64
}

// Min returns the smallest summarized value, or NaN if empty.
func (h *Histogram) Min() float64 {
	if len(h.Buckets) == 0 {
		return math.NaN()
	}
	return h.Buckets[0].Lo
}

// Max returns the largest summarized value, or NaN if empty.
func (h *Histogram) Max() float64 {
	if len(h.Buckets) == 0 {
		return math.NaN()
	}
	return h.Buckets[len(h.Buckets)-1].Hi
}

// String renders a compact diagnostic form.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{n=%.0f d=%.0f", h.Family, h.Total, h.TotalDistinct)
	for i, bk := range h.Buckets {
		if i >= 4 {
			fmt.Fprintf(&b, " …%d more", len(h.Buckets)-i)
			break
		}
		fmt.Fprintf(&b, " [%g,%g]:%.0f", bk.Lo, bk.Hi, bk.Count)
	}
	b.WriteByte('}')
	return b.String()
}

// sortedFloats extracts, filters, and sorts the float images of values.
func sortedFloats(values []types.Value) []float64 {
	fs := make([]float64, 0, len(values))
	for _, v := range values {
		f := v.AsFloat()
		if !math.IsNaN(f) {
			fs = append(fs, f)
		}
	}
	sort.Float64s(fs)
	return fs
}

// runs compresses a sorted slice into (value, frequency) pairs.
type run struct {
	v float64
	n float64
}

func toRuns(fs []float64) []run {
	var rs []run
	for _, f := range fs {
		if len(rs) > 0 && rs[len(rs)-1].v == f {
			rs[len(rs)-1].n++
		} else {
			rs = append(rs, run{v: f, n: 1})
		}
	}
	return rs
}

// scale multiplies every bucket count so the histogram summarizes total
// tuples. Histograms built from a reservoir sample of a larger stream are
// scaled up to the observed stream cardinality.
func (h *Histogram) scale(total float64) {
	if h.Total <= 0 || total == h.Total {
		return
	}
	f := total / h.Total
	for i := range h.Buckets {
		h.Buckets[i].Count *= f
	}
	h.Total = total
}

// Scaled returns a copy of the histogram whose counts are scaled to
// summarize total tuples, preserving bucket boundaries and distinct
// counts. The re-optimizer uses it to project an observed histogram
// through a join whose output cardinality it has estimated.
func (h *Histogram) Scaled(total float64) *Histogram {
	c := &Histogram{
		Family:        h.Family,
		Buckets:       append([]Bucket(nil), h.Buckets...),
		Total:         h.Total,
		TotalDistinct: h.TotalDistinct,
	}
	c.scale(total)
	return c
}

// Clone returns a deep copy of the histogram. Incremental stats
// maintenance clones before mutating so published histograms stay
// immutable for concurrent readers.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		Family:        h.Family,
		Buckets:       append([]Bucket(nil), h.Buckets...),
		Total:         h.Total,
		TotalDistinct: h.TotalDistinct,
	}
}

// bucketFor returns the index of the bucket whose interval contains f,
// or -1 if f falls outside every bucket.
func (h *Histogram) bucketFor(f float64) int {
	for i := range h.Buckets {
		if f >= h.Buckets[i].Lo && f <= h.Buckets[i].Hi {
			return i
		}
	}
	return -1
}

// AddValue folds one inserted value into the histogram in place,
// incrementing the containing bucket's count. Values outside the
// histogram's range extend the boundary bucket (and its distinct count,
// since a value beyond the old min/max is necessarily new). Values in a
// gap between buckets are credited to the nearest bucket. Bucket
// boundaries are otherwise not re-balanced — the histogram drifts from
// what a fresh build would produce, which is exactly the staleness
// ANALYZE repairs.
func (h *Histogram) AddValue(v types.Value) {
	f := v.AsFloat()
	if math.IsNaN(f) {
		return
	}
	h.Total++
	if len(h.Buckets) == 0 {
		h.Buckets = []Bucket{{Lo: f, Hi: f, Count: 1, Distinct: 1}}
		h.TotalDistinct = 1
		return
	}
	if i := h.bucketFor(f); i >= 0 {
		h.Buckets[i].Count++
		return
	}
	switch {
	case f < h.Buckets[0].Lo:
		h.Buckets[0].Lo = f
		h.Buckets[0].Count++
		h.Buckets[0].Distinct++
		h.TotalDistinct++
	case f > h.Buckets[len(h.Buckets)-1].Hi:
		last := len(h.Buckets) - 1
		h.Buckets[last].Hi = f
		h.Buckets[last].Count++
		h.Buckets[last].Distinct++
		h.TotalDistinct++
	default:
		// In a gap between two buckets: extend whichever is closer.
		for i := 0; i+1 < len(h.Buckets); i++ {
			if f > h.Buckets[i].Hi && f < h.Buckets[i+1].Lo {
				if f-h.Buckets[i].Hi <= h.Buckets[i+1].Lo-f {
					h.Buckets[i].Hi = f
					h.Buckets[i].Count++
					h.Buckets[i].Distinct++
				} else {
					h.Buckets[i+1].Lo = f
					h.Buckets[i+1].Count++
					h.Buckets[i+1].Distinct++
				}
				h.TotalDistinct++
				return
			}
		}
	}
}

// RemoveValue folds one deleted value out of the histogram in place,
// decrementing the containing bucket's count. Distinct counts are left
// untouched — without per-value frequencies a delete cannot know whether
// it removed the last occurrence.
func (h *Histogram) RemoveValue(v types.Value) {
	f := v.AsFloat()
	if math.IsNaN(f) {
		return
	}
	if h.Total > 0 {
		h.Total--
	}
	if i := h.bucketFor(f); i >= 0 && h.Buckets[i].Count > 0 {
		h.Buckets[i].Count--
	}
}

// Build constructs a histogram of the given family with at most buckets
// buckets over the sample. If streamTotal > 0 and differs from the sample
// size, bucket counts are scaled to summarize streamTotal tuples (and,
// for distinct counts, left as observed in the sample — a deliberate
// under-estimate matching the sampling literature's guidance).
func Build(f Family, values []types.Value, buckets int, streamTotal float64) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	fs := sortedFloats(values)
	var h *Histogram
	switch f {
	case EquiWidth:
		h = buildEquiWidth(fs, buckets)
	case EquiDepth:
		h = buildEquiDepth(fs, buckets)
	case MaxDiff:
		h = buildMaxDiff(fs, buckets)
	case EndBiased:
		h = buildEndBiased(fs, buckets)
	default:
		h = buildEquiWidth(fs, buckets)
	}
	if streamTotal > 0 {
		h.scale(streamTotal)
	}
	return h
}

func emptyHist(f Family) *Histogram { return &Histogram{Family: f} }

func buildEquiWidth(fs []float64, nb int) *Histogram {
	h := emptyHist(EquiWidth)
	if len(fs) == 0 {
		return h
	}
	lo, hi := fs[0], fs[len(fs)-1]
	if lo == hi {
		h.Buckets = []Bucket{{Lo: lo, Hi: hi, Count: float64(len(fs)), Distinct: 1}}
		h.Total = float64(len(fs))
		h.TotalDistinct = 1
		return h
	}
	width := (hi - lo) / float64(nb)
	bks := make([]Bucket, nb)
	for i := range bks {
		bks[i].Lo = lo + width*float64(i)
		bks[i].Hi = lo + width*float64(i+1)
	}
	bks[nb-1].Hi = hi
	i := 0
	var prev float64 = math.NaN()
	for _, f := range fs {
		for i < nb-1 && f > bks[i].Hi {
			i++
			prev = math.NaN()
		}
		bks[i].Count++
		if f != prev {
			bks[i].Distinct++
			prev = f
		}
	}
	h.Buckets = compact(bks)
	h.finish(fs)
	return h
}

func buildEquiDepth(fs []float64, nb int) *Histogram {
	h := emptyHist(EquiDepth)
	if len(fs) == 0 {
		return h
	}
	per := len(fs) / nb
	if per < 1 {
		per = 1
	}
	var bks []Bucket
	for start := 0; start < len(fs); {
		end := start + per
		if end > len(fs) {
			end = len(fs)
		}
		// Extend so a value never straddles buckets.
		for end < len(fs) && fs[end] == fs[end-1] {
			end++
		}
		b := Bucket{Lo: fs[start], Hi: fs[end-1], Count: float64(end - start)}
		b.Distinct = countDistinct(fs[start:end])
		bks = append(bks, b)
		start = end
	}
	h.Buckets = bks
	h.finish(fs)
	return h
}

// buildMaxDiff implements MaxDiff(V,A): bucket boundaries are placed at
// the nb-1 largest differences in "area" (frequency × spread) between
// successive attribute values, isolating frequency outliers in their own
// buckets. This is the histogram family Paradise's catalogs use.
func buildMaxDiff(fs []float64, nb int) *Histogram {
	h := emptyHist(MaxDiff)
	if len(fs) == 0 {
		return h
	}
	rs := toRuns(fs)
	if len(rs) <= nb {
		// One bucket per distinct value: exact.
		for _, r := range rs {
			h.Buckets = append(h.Buckets, Bucket{Lo: r.v, Hi: r.v, Count: r.n, Distinct: 1})
		}
		h.finish(fs)
		return h
	}
	// Area of value i = freq(i) * spread(i); spread = distance to next
	// distinct value (1 for the last).
	type diff struct {
		idx int // boundary after rs[idx]
		gap float64
	}
	diffs := make([]diff, 0, len(rs)-1)
	for i := 0; i+1 < len(rs); i++ {
		spreadI := 1.0
		if i+1 < len(rs) {
			spreadI = rs[i+1].v - rs[i].v
		}
		spreadJ := 1.0
		if i+2 < len(rs) {
			spreadJ = rs[i+2].v - rs[i+1].v
		}
		gap := math.Abs(rs[i+1].n*spreadJ - rs[i].n*spreadI)
		diffs = append(diffs, diff{idx: i, gap: gap})
	}
	sort.Slice(diffs, func(a, b int) bool { return diffs[a].gap > diffs[b].gap })
	cut := map[int]bool{}
	for i := 0; i < nb-1 && i < len(diffs); i++ {
		cut[diffs[i].idx] = true
	}
	var bks []Bucket
	cur := Bucket{Lo: rs[0].v}
	for i, r := range rs {
		cur.Hi = r.v
		cur.Count += r.n
		cur.Distinct++
		if cut[i] || i == len(rs)-1 {
			bks = append(bks, cur)
			if i+1 < len(rs) {
				cur = Bucket{Lo: rs[i+1].v}
			}
		}
	}
	h.Buckets = bks
	h.finish(fs)
	return h
}

// buildEndBiased keeps the nb-1 most frequent values in singleton buckets
// and pools everything else into spanning buckets with averaged
// frequencies — the classic end-biased serial histogram. Under skew the
// heavy hitters dominate, which is why the paper observes serial
// histogram accuracy *improving* as Zipf z grows.
func buildEndBiased(fs []float64, nb int) *Histogram {
	h := emptyHist(EndBiased)
	if len(fs) == 0 {
		return h
	}
	rs := toRuns(fs)
	if len(rs) <= nb {
		for _, r := range rs {
			h.Buckets = append(h.Buckets, Bucket{Lo: r.v, Hi: r.v, Count: r.n, Distinct: 1})
		}
		h.finish(fs)
		return h
	}
	// Find the frequency threshold for the top nb-1 values.
	freqs := make([]float64, len(rs))
	for i, r := range rs {
		freqs[i] = r.n
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(freqs)))
	k := nb - 1
	if k < 1 {
		k = 1
	}
	threshold := freqs[k-1]
	singled := map[int]bool{}
	picked := 0
	for i, r := range rs {
		if r.n >= threshold && picked < k {
			singled[i] = true
			picked++
		}
	}
	var bks []Bucket
	var pool *Bucket
	flushPool := func() {
		if pool != nil {
			bks = append(bks, *pool)
			pool = nil
		}
	}
	for i, r := range rs {
		if singled[i] {
			flushPool()
			bks = append(bks, Bucket{Lo: r.v, Hi: r.v, Count: r.n, Distinct: 1})
			continue
		}
		if pool == nil {
			pool = &Bucket{Lo: r.v}
		}
		pool.Hi = r.v
		pool.Count += r.n
		pool.Distinct++
	}
	flushPool()
	h.Buckets = bks
	h.finish(fs)
	return h
}

func countDistinct(fs []float64) float64 {
	d := 0.0
	for i, f := range fs {
		if i == 0 || f != fs[i-1] {
			d++
		}
	}
	return d
}

func compact(bks []Bucket) []Bucket {
	out := bks[:0]
	for _, b := range bks {
		if b.Count > 0 {
			out = append(out, b)
		}
	}
	return out
}

func (h *Histogram) finish(fs []float64) {
	h.Total = float64(len(fs))
	h.TotalDistinct = countDistinct(fs)
}
