package storage

import (
	"fmt"
	"sync"
)

// PageSize is the size in bytes of every simulated disk page.
const PageSize = 8192

// PageID names a page on the simulated disk. Page 0 is never allocated so
// the zero PageID can mean "no page".
type PageID uint64

// InvalidPageID is the reserved "no page" identifier.
const InvalidPageID PageID = 0

// Disk is the simulated disk: a flat space of fixed-size pages held in
// memory, with every read and write charged to a CostMeter. It stands in
// for the paper's physical disks; see the package comment for why the
// substitution preserves the experiments' behaviour.
type Disk struct {
	mu     sync.Mutex
	pages  map[PageID][]byte
	nextID PageID
	meter  *CostMeter
}

// NewDisk returns an empty disk charging I/O to meter.
func NewDisk(meter *CostMeter) *Disk {
	return &Disk{
		pages:  make(map[PageID][]byte),
		nextID: 1,
		meter:  meter,
	}
}

// Meter returns the disk's cost meter.
func (d *Disk) Meter() *CostMeter { return d.meter }

// Allocate reserves a new zeroed page and returns its ID. Allocation
// itself is free; the write happens when the page is flushed.
func (d *Disk) Allocate() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	d.pages[id] = make([]byte, PageSize)
	return id
}

// Read copies the page into a fresh buffer, charging one page read.
func (d *Disk) Read(id PageID) ([]byte, error) {
	return d.ReadMetered(id, nil)
}

// ReadMetered is Read with the page-read charge attributed to m (the
// disk's own meter when m is nil). Parallel scan workers pass their
// tributary meters so a gather point can see each partition's I/O.
func (d *Disk) ReadMetered(id PageID, m *CostMeter) ([]byte, error) {
	d.mu.Lock()
	p, ok := d.pages[id]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if m == nil {
		m = d.meter
	}
	m.ChargeRead(1)
	buf := make([]byte, PageSize)
	copy(buf, p)
	return buf, nil
}

// Write stores the page contents, charging one page write.
func (d *Disk) Write(id PageID, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("storage: write of %d bytes to page %d (want %d)", len(data), id, PageSize)
	}
	d.mu.Lock()
	_, ok := d.pages[id]
	if ok {
		buf := make([]byte, PageSize)
		copy(buf, data)
		d.pages[id] = buf
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: write to unallocated page %d", id)
	}
	d.meter.ChargeWrite(1)
	return nil
}

// Free releases a page. Freeing is free (deallocation is a catalog
// operation, not an I/O).
func (d *Disk) Free(id PageID) {
	d.mu.Lock()
	delete(d.pages, id)
	d.mu.Unlock()
}

// NumPages returns the number of allocated pages (for tests and the
// catalog's size bookkeeping).
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}
