package storage

import (
	"sync"

	"repro/internal/types"
)

// btreeOrder is the maximum number of keys per node.
const btreeOrder = 64

// BTree is a B+tree index from key values to RIDs, with duplicates. The
// tree structure lives in memory, but probes charge simulated I/O to the
// meter under the standard assumption that internal nodes stay cached
// while each distinct leaf visit costs one page read. A Lookup therefore
// charges one read plus the heap fetches the caller performs — the same
// cost model the optimizer uses for indexed nested-loops joins.
//
// The tree is safe for concurrent use: DML inserts take the write
// lock, probes and range scans the read lock. Entries are never
// removed — a dead version's index entry is skipped at fetch time by
// the heap's visibility check, the classic "index points at garbage"
// tolerance of MVCC heaps without index vacuuming.
type BTree struct {
	meter  *CostMeter
	mu     sync.RWMutex
	root   node
	height int
	keys   int64
}

type node interface {
	insert(k types.Value, rid RID) (node, types.Value, node)
}

type leafNode struct {
	keys []types.Value
	vals [][]RID
	next *leafNode
}

type innerNode struct {
	keys     []types.Value // separator keys; len(children) == len(keys)+1
	children []node
}

// NewBTree returns an empty index charging probe I/O to meter.
func NewBTree(meter *CostMeter) *BTree {
	return &BTree{meter: meter, root: &leafNode{}, height: 1}
}

// Len returns the number of (key, rid) entries.
func (t *BTree) Len() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.keys
}

// Insert adds an entry. Building an index is charged one write per
// btreeOrder entries, approximating bulk-load I/O.
func (t *BTree) Insert(k types.Value, rid RID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.keys++
	if t.keys%btreeOrder == 0 {
		t.meter.ChargeWrite(1)
	}
	left, sep, right := t.root.insert(k, rid)
	if right != nil {
		t.root = &innerNode{keys: []types.Value{sep}, children: []node{left, right}}
		t.height++
	}
}

func (l *leafNode) insert(k types.Value, rid RID) (node, types.Value, node) {
	i := l.search(k)
	if i < len(l.keys) && l.keys[i].Equal(k) {
		l.vals[i] = append(l.vals[i], rid)
		return l, types.Value{}, nil
	}
	l.keys = append(l.keys, types.Value{})
	l.vals = append(l.vals, nil)
	copy(l.keys[i+1:], l.keys[i:])
	copy(l.vals[i+1:], l.vals[i:])
	l.keys[i] = k
	l.vals[i] = []RID{rid}
	if len(l.keys) <= btreeOrder {
		return l, types.Value{}, nil
	}
	mid := len(l.keys) / 2
	right := &leafNode{
		keys: append([]types.Value(nil), l.keys[mid:]...),
		vals: append([][]RID(nil), l.vals[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid]
	l.vals = l.vals[:mid]
	l.next = right
	return l, right.keys[0], right
}

// search returns the first index i with keys[i] >= k.
func (l *leafNode) search(k types.Value) int {
	lo, hi := 0, len(l.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.keys[mid].Compare(k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (n *innerNode) insert(k types.Value, rid RID) (node, types.Value, node) {
	i := n.search(k)
	_, sep, right := n.children[i].insert(k, rid)
	if right == nil {
		return n, types.Value{}, nil
	}
	n.keys = append(n.keys, types.Value{})
	n.children = append(n.children, nil)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.children[i+2:], n.children[i+1:])
	n.keys[i] = sep
	n.children[i+1] = right
	if len(n.keys) <= btreeOrder {
		return n, types.Value{}, nil
	}
	mid := len(n.keys) / 2
	sepUp := n.keys[mid]
	rightNode := &innerNode{
		keys:     append([]types.Value(nil), n.keys[mid+1:]...),
		children: append([]node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return n, sepUp, rightNode
}

// search returns the child index to descend into for key k.
func (n *innerNode) search(k types.Value) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid].Compare(k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findLeaf descends to the leaf that would contain k.
func (t *BTree) findLeaf(k types.Value) *leafNode {
	cur := t.root
	for {
		switch n := cur.(type) {
		case *leafNode:
			return n
		case *innerNode:
			cur = n.children[n.search(k)]
		}
	}
}

// Lookup returns the RIDs for an exact key, charging one leaf read.
// The returned slice is a copy, safe to hold across concurrent
// inserts.
func (t *BTree) Lookup(k types.Value) []RID {
	t.meter.ChargeRead(1)
	t.mu.RLock()
	defer t.mu.RUnlock()
	l := t.findLeaf(k)
	i := l.search(k)
	if i < len(l.keys) && l.keys[i].Equal(k) {
		return append([]RID(nil), l.vals[i]...)
	}
	return nil
}

// Range calls fn for each entry with lo <= key <= hi in key order,
// charging one read per leaf visited. A nil lo or hi bound (Kind NULL)
// means unbounded on that side. fn returning false stops the scan.
func (t *BTree) Range(lo, hi types.Value, fn func(k types.Value, rids []RID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var l *leafNode
	if lo.IsNull() {
		l = t.leftmostLeaf()
	} else {
		l = t.findLeaf(lo)
	}
	for l != nil {
		t.meter.ChargeRead(1)
		for i := range l.keys {
			if !lo.IsNull() && l.keys[i].Compare(lo) < 0 {
				continue
			}
			if !hi.IsNull() && l.keys[i].Compare(hi) > 0 {
				return
			}
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.next
	}
}

func (t *BTree) leftmostLeaf() *leafNode {
	cur := t.root
	for {
		switch n := cur.(type) {
		case *leafNode:
			return n
		case *innerNode:
			cur = n.children[0]
		}
	}
}

// Height returns the tree height (for tests).
func (t *BTree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}
