package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestBTreeInsertLookup(t *testing.T) {
	m := NewCostMeter(DefaultCostWeights())
	bt := NewBTree(m)
	for i := 0; i < 10000; i++ {
		bt.Insert(types.NewInt(int64(i)), RID{Page: PageID(i + 1), Slot: 0})
	}
	if bt.Len() != 10000 {
		t.Errorf("Len = %d", bt.Len())
	}
	if bt.Height() < 2 {
		t.Errorf("Height = %d, want a split tree", bt.Height())
	}
	for _, k := range []int64{0, 1, 4999, 9999} {
		rids := bt.Lookup(types.NewInt(k))
		if len(rids) != 1 || rids[0].Page != PageID(k+1) {
			t.Errorf("Lookup(%d) = %v", k, rids)
		}
	}
	if rids := bt.Lookup(types.NewInt(10001)); rids != nil {
		t.Errorf("Lookup(absent) = %v", rids)
	}
}

func TestBTreeDuplicates(t *testing.T) {
	m := NewCostMeter(DefaultCostWeights())
	bt := NewBTree(m)
	for i := 0; i < 50; i++ {
		bt.Insert(types.NewInt(7), RID{Page: PageID(i + 1)})
	}
	rids := bt.Lookup(types.NewInt(7))
	if len(rids) != 50 {
		t.Errorf("duplicate Lookup returned %d rids", len(rids))
	}
}

func TestBTreeRandomOrderSortedIteration(t *testing.T) {
	m := NewCostMeter(DefaultCostWeights())
	bt := NewBTree(m)
	rng := rand.New(rand.NewSource(42))
	keys := rng.Perm(5000)
	for _, k := range keys {
		bt.Insert(types.NewInt(int64(k)), RID{Page: PageID(k + 1)})
	}
	var got []int64
	bt.Range(types.Null(), types.Null(), func(k types.Value, rids []RID) bool {
		got = append(got, k.Int())
		return true
	})
	if len(got) != 5000 {
		t.Fatalf("full Range visited %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("Range iteration not sorted")
	}
}

func TestBTreeRangeBounds(t *testing.T) {
	m := NewCostMeter(DefaultCostWeights())
	bt := NewBTree(m)
	for i := 0; i < 100; i++ {
		bt.Insert(types.NewInt(int64(i)), RID{Page: PageID(i + 1)})
	}
	var got []int64
	bt.Range(types.NewInt(10), types.NewInt(20), func(k types.Value, rids []RID) bool {
		got = append(got, k.Int())
		return true
	})
	if len(got) != 11 || got[0] != 10 || got[10] != 20 {
		t.Errorf("Range[10,20] = %v", got)
	}
	// Early stop.
	n := 0
	bt.Range(types.Null(), types.Null(), func(k types.Value, rids []RID) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
	// Lower bound only.
	got = got[:0]
	bt.Range(types.NewInt(95), types.Null(), func(k types.Value, rids []RID) bool {
		got = append(got, k.Int())
		return true
	})
	if len(got) != 5 {
		t.Errorf("Range[95,∞) = %v", got)
	}
}

func TestBTreeLookupChargesIO(t *testing.T) {
	m := NewCostMeter(DefaultCostWeights())
	bt := NewBTree(m)
	bt.Insert(types.NewInt(1), RID{Page: 1})
	before := m.Snapshot()
	bt.Lookup(types.NewInt(1))
	if d := m.Snapshot().Sub(before); d.PageReads != 1 {
		t.Errorf("Lookup charged %d reads, want 1", d.PageReads)
	}
}

func TestBTreeStringKeys(t *testing.T) {
	m := NewCostMeter(DefaultCostWeights())
	bt := NewBTree(m)
	words := []string{"pear", "apple", "fig", "mango", "banana"}
	for i, w := range words {
		bt.Insert(types.NewString(w), RID{Page: PageID(i + 1)})
	}
	var got []string
	bt.Range(types.Null(), types.Null(), func(k types.Value, rids []RID) bool {
		got = append(got, k.Str())
		return true
	})
	want := append([]string(nil), words...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted strings = %v, want %v", got, want)
		}
	}
}

func TestBTreeProperty(t *testing.T) {
	// Property: after inserting any multiset of int keys, every key is
	// findable and a full range scan is sorted and complete.
	f := func(keys []int16) bool {
		m := NewCostMeter(DefaultCostWeights())
		bt := NewBTree(m)
		counts := map[int64]int{}
		for i, k := range keys {
			bt.Insert(types.NewInt(int64(k)), RID{Page: PageID(i + 1)})
			counts[int64(k)]++
		}
		total := 0
		prev := int64(-40000)
		ok := true
		bt.Range(types.Null(), types.Null(), func(k types.Value, rids []RID) bool {
			if k.Int() <= prev {
				ok = false
			}
			prev = k.Int()
			if len(rids) != counts[k.Int()] {
				ok = false
			}
			total += len(rids)
			return true
		})
		return ok && total == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
