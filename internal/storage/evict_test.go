package storage

import (
	"testing"
)

func TestEvictAllEmptiesPool(t *testing.T) {
	bp, m := newTestPool(8)
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, buf, err := bp.PinNew()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i + 1)
		bp.MarkDirty(id)
		bp.Unpin(id)
		ids = append(ids, id)
	}
	before := m.Snapshot()
	if err := bp.EvictAll(); err != nil {
		t.Fatal(err)
	}
	// All dirty frames were written back exactly once.
	if d := m.Snapshot().Sub(before); d.PageWrites != 5 {
		t.Errorf("EvictAll wrote %d pages, want 5", d.PageWrites)
	}
	for _, id := range ids {
		if bp.Cached(id) {
			t.Errorf("page %d still cached after EvictAll", id)
		}
	}
	// Contents survive on disk.
	buf, err := bp.Pin(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != 3 {
		t.Errorf("page content lost across EvictAll: %d", buf[0])
	}
	bp.Unpin(ids[2])
}

func TestEvictAllSkipsPinned(t *testing.T) {
	bp, _ := newTestPool(8)
	id, _, _ := bp.PinNew() // stays pinned
	other, _, _ := bp.PinNew()
	bp.Unpin(other)
	if err := bp.EvictAll(); err != nil {
		t.Fatal(err)
	}
	if !bp.Cached(id) {
		t.Error("pinned page was evicted")
	}
	if bp.Cached(other) {
		t.Error("unpinned page survived EvictAll")
	}
	bp.Unpin(id)
}
