package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// BufferPool caches disk pages in a fixed number of frames with LRU
// replacement. A page found in the pool costs nothing; a miss charges a
// disk read, and evicting a dirty frame charges a disk write. This models
// the paper's per-node 32 MB buffer pool, which they deliberately kept
// small "to study the effect of memory management techniques".
//
// The pool is distinct from the Memory Manager's per-operator working
// memory: the pool caches base-table and temp-file pages, while operator
// memory (hash tables, sort runs) is tracked separately by
// internal/memmgr, exactly as in Paradise.
type BufferPool struct {
	mu       sync.Mutex
	disk     *Disk
	capacity int

	frames map[PageID]*frame
	lru    *list.List // front = most recent; elements hold PageID
}

type frame struct {
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element
}

// NewBufferPool returns a pool of capacity frames over disk. Capacity
// must be at least 1.
func NewBufferPool(disk *Disk, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
	}
}

// Capacity returns the number of frames.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Disk returns the underlying disk.
func (bp *BufferPool) Disk() *Disk { return bp.disk }

// Pin fetches a page into the pool and pins it, returning its buffer. The
// buffer aliases the frame; callers may mutate it but must call
// MarkDirty before Unpin for changes to survive eviction.
func (bp *BufferPool) Pin(id PageID) ([]byte, error) {
	return bp.PinMetered(id, nil)
}

// PinMetered is Pin with any miss's disk read charged to m (the disk's
// own meter when m is nil). Hits stay free; eviction writes triggered by
// the miss remain on the shared meter — write-back belongs to whoever
// dirtied the page, which the pool does not track per worker.
func (bp *BufferPool) PinMetered(id PageID, m *CostMeter) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		f.pins++
		bp.lru.MoveToFront(f.elem)
		return f.data, nil
	}
	if err := bp.evictLocked(); err != nil {
		return nil, err
	}
	data, err := bp.disk.ReadMetered(id, m)
	if err != nil {
		return nil, err
	}
	f := &frame{data: data, pins: 1}
	f.elem = bp.lru.PushFront(id)
	bp.frames[id] = f
	return f.data, nil
}

// PinNew allocates a fresh page on disk, installs an empty frame for it
// without a disk read, and pins it. Use for appends.
func (bp *BufferPool) PinNew() (PageID, []byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.evictLocked(); err != nil {
		return InvalidPageID, nil, err
	}
	id := bp.disk.Allocate()
	f := &frame{data: make([]byte, PageSize), pins: 1, dirty: true}
	f.elem = bp.lru.PushFront(id)
	bp.frames[id] = f
	return id, f.data, nil
}

// evictLocked makes room for one more frame, writing back a dirty victim.
func (bp *BufferPool) evictLocked() error {
	for len(bp.frames) >= bp.capacity {
		var victim PageID
		found := false
		for e := bp.lru.Back(); e != nil; e = e.Prev() {
			id := e.Value.(PageID)
			if bp.frames[id].pins == 0 {
				victim, found = id, true
				break
			}
		}
		if !found {
			return fmt.Errorf("storage: buffer pool exhausted (%d frames all pinned)", bp.capacity)
		}
		f := bp.frames[victim]
		if f.dirty {
			if err := bp.disk.Write(victim, f.data); err != nil {
				return err
			}
		}
		bp.lru.Remove(f.elem)
		delete(bp.frames, victim)
	}
	return nil
}

// MarkDirty flags a pinned page as modified.
func (bp *BufferPool) MarkDirty(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		f.dirty = true
	}
}

// Unpin releases one pin on the page.
func (bp *BufferPool) Unpin(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok && f.pins > 0 {
		f.pins--
	}
}

// FlushAll writes back every dirty frame, leaving them cached.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, f := range bp.frames {
		if f.dirty {
			if err := bp.disk.Write(id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Evict drops a page from the pool, writing it back if dirty. Used when a
// temp file is freed so stale frames do not linger.
func (bp *BufferPool) Evict(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		return nil
	}
	if f.pins > 0 {
		return fmt.Errorf("storage: evicting pinned page %d", id)
	}
	if f.dirty {
		if err := bp.disk.Write(id, f.data); err != nil {
			return err
		}
	}
	bp.lru.Remove(f.elem)
	delete(bp.frames, id)
	return nil
}

// EvictAll writes back every dirty frame and empties the pool (pinned
// frames are left in place). Benchmarks call it between runs to measure
// cold-cache executions deterministically.
func (bp *BufferPool) EvictAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, f := range bp.frames {
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if err := bp.disk.Write(id, f.data); err != nil {
				return err
			}
		}
		bp.lru.Remove(f.elem)
		delete(bp.frames, id)
	}
	return nil
}

// Cached reports whether the page currently occupies a frame (for tests).
func (bp *BufferPool) Cached(id PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	_, ok := bp.frames[id]
	return ok
}
