package storage

import (
	"bytes"
	"testing"
)

func TestSlottedPageInsertAndFetch(t *testing.T) {
	p := NewSlottedPage(make([]byte, PageSize))
	recs := [][]byte{[]byte("alpha"), []byte(""), []byte("a longer record with more bytes")}
	for i, r := range recs {
		slot, err := p.Insert(r)
		if err != nil {
			t.Fatalf("Insert #%d: %v", i, err)
		}
		if slot != i {
			t.Errorf("Insert #%d got slot %d", i, slot)
		}
	}
	if p.NumRecords() != len(recs) {
		t.Errorf("NumRecords = %d", p.NumRecords())
	}
	for i, want := range recs {
		got, err := p.Record(i)
		if err != nil {
			t.Fatalf("Record(%d): %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("Record(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestSlottedPageFill(t *testing.T) {
	p := NewSlottedPage(make([]byte, PageSize))
	rec := make([]byte, 100)
	n := 0
	for p.CanFit(len(rec)) {
		if _, err := p.Insert(rec); err != nil {
			t.Fatalf("Insert while CanFit: %v", err)
		}
		n++
	}
	if _, err := p.Insert(rec); err == nil {
		t.Error("Insert beyond capacity succeeded")
	}
	// 104 bytes/record (2 slot + 2 len + 100 data) in 8188 usable bytes.
	if want := (PageSize - pageHeaderSize) / 104; n != want {
		t.Errorf("fitted %d records, want %d", n, want)
	}
	// Page still intact after the failed insert.
	if p.NumRecords() != n {
		t.Errorf("NumRecords = %d after failed insert", p.NumRecords())
	}
}

func TestSlottedPageDelete(t *testing.T) {
	p := NewSlottedPage(make([]byte, PageSize))
	p.Insert([]byte("a"))
	p.Insert([]byte("b"))
	if err := p.Delete(0); err != nil {
		t.Fatal(err)
	}
	if p.NumRecords() != 1 {
		t.Errorf("NumRecords after delete = %d", p.NumRecords())
	}
	if _, err := p.Record(0); err == nil {
		t.Error("Record of deleted slot succeeded")
	}
	if got, err := p.Record(1); err != nil || string(got) != "b" {
		t.Errorf("Record(1) = %q, %v", got, err)
	}
	if err := p.Delete(99); err == nil {
		t.Error("Delete out of range succeeded")
	}
	if _, err := p.Record(-1); err == nil {
		t.Error("Record(-1) succeeded")
	}
}

func TestSlottedPageSurvivesReload(t *testing.T) {
	buf := make([]byte, PageSize)
	p := NewSlottedPage(buf)
	p.Insert([]byte("persistent"))
	q := LoadSlottedPage(buf)
	got, err := q.Record(0)
	if err != nil || string(got) != "persistent" {
		t.Errorf("reloaded Record(0) = %q, %v", got, err)
	}
}
