package storage

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

func TestHeapFileAppendScan(t *testing.T) {
	bp, _ := newTestPool(8)
	h := NewHeapFile(bp)
	const n = 5000
	for i := 0; i < n; i++ {
		if _, err := h.Append(types.Tuple{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("row-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumTuples() != n {
		t.Errorf("NumTuples = %d", h.NumTuples())
	}
	if h.NumPages() < 2 {
		t.Errorf("NumPages = %d, want multi-page file", h.NumPages())
	}
	s := h.Scan()
	i := 0
	for s.Next() {
		if got := s.Tuple()[0].Int(); got != int64(i) {
			t.Fatalf("tuple %d has key %d", i, got)
		}
		i++
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if i != n {
		t.Errorf("scanned %d tuples, want %d", i, n)
	}
}

func TestHeapFileFetchByRID(t *testing.T) {
	bp, _ := newTestPool(8)
	h := NewHeapFile(bp)
	rids := make([]RID, 0, 100)
	for i := 0; i < 100; i++ {
		rid, err := h.Append(types.Tuple{types.NewInt(int64(i * 7))})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		tup, err := h.Fetch(rid)
		if err != nil {
			t.Fatal(err)
		}
		if tup[0].Int() != int64(i*7) {
			t.Errorf("Fetch(%v) = %v", rid, tup)
		}
	}
}

func TestHeapScanChargesOneReadPerPage(t *testing.T) {
	bp, m := newTestPool(2) // tiny pool so scans miss
	h := NewHeapFile(bp)
	for i := 0; i < 3000; i++ {
		h.Append(types.Tuple{types.NewInt(int64(i)), types.NewString("padding-padding-padding")})
	}
	bp.FlushAll()
	// Evict everything to make the scan cold.
	for _, id := range h.pages {
		bp.Evict(id)
	}
	before := m.Snapshot()
	s := h.Scan()
	for s.Next() {
	}
	d := m.Snapshot().Sub(before)
	if d.PageReads != int64(h.NumPages()) {
		t.Errorf("cold scan charged %d reads for %d pages", d.PageReads, h.NumPages())
	}
}

func TestTempFileDrop(t *testing.T) {
	bp, _ := newTestPool(8)
	tf := NewTempFile(bp)
	for i := 0; i < 1000; i++ {
		tf.Append(types.Tuple{types.NewInt(int64(i))})
	}
	if !tf.IsTemp() {
		t.Error("temp file not marked temp")
	}
	disk := bp.Disk()
	before := disk.NumPages()
	if err := tf.Drop(); err != nil {
		t.Fatal(err)
	}
	if disk.NumPages() >= before {
		t.Errorf("Drop freed no pages: %d -> %d", before, disk.NumPages())
	}
	if tf.NumTuples() != 0 {
		t.Error("NumTuples after Drop != 0")
	}

	// Dropping a non-temp file is a no-op.
	h := NewHeapFile(bp)
	h.Append(types.Tuple{types.NewInt(1)})
	pages := disk.NumPages()
	if err := h.Drop(); err != nil {
		t.Fatal(err)
	}
	if disk.NumPages() != pages {
		t.Error("Drop of base file freed pages")
	}
}

func TestHeapFileOversizeTuple(t *testing.T) {
	bp, _ := newTestPool(8)
	h := NewHeapFile(bp)
	big := types.Tuple{types.NewString(string(make([]byte, PageSize)))}
	if _, err := h.Append(big); err == nil {
		t.Error("oversize append succeeded")
	}
}

func TestHeapFileByteSize(t *testing.T) {
	bp, _ := newTestPool(8)
	h := NewHeapFile(bp)
	tup := types.Tuple{types.NewInt(1), types.NewString("abc")}
	h.Append(tup)
	h.Append(tup)
	want := int64(2 * types.EncodedSize(tup))
	if h.ByteSize() != want {
		t.Errorf("ByteSize = %d, want %d", h.ByteSize(), want)
	}
}
