// Package storage provides the engine's storage substrate: a simulated
// disk with I/O cost accounting, a slotted page format, an LRU buffer
// pool, heap files, temporary files for spills and materialization, and a
// B+tree index.
//
// The paper's experiments ran on real disks (Seagate Barracudas behind a
// 32 MB buffer pool per node). This package substitutes a deterministic
// simulator: every page read, page write, and tuple touched is charged to
// a CostMeter at configurable weights. "Execution time" throughout the
// repository means simulated cost units from this meter, which makes the
// paper's effects (multi-pass hash joins, materialization overhead,
// statistics-collection CPU) reproducible and exactly measurable.
package storage

import (
	"fmt"
	"sync"
)

// CostWeights maps physical events to simulated time units. The defaults
// approximate a late-90s machine: one random 8 KB page I/O ≈ 10 ms, one
// tuple of CPU work ≈ 20 µs, so a page I/O costs ~500 tuple touches. One
// cost unit is one page I/O.
type CostWeights struct {
	PageRead  float64 // cost of reading one page from "disk"
	PageWrite float64 // cost of writing one page to "disk"
	TupleCPU  float64 // cost of processing one tuple in an operator
	StatCPU   float64 // additional cost per tuple examined by a statistics collector
}

// DefaultCostWeights returns the calibration used by all benchmarks.
func DefaultCostWeights() CostWeights {
	return CostWeights{
		PageRead:  1.0,
		PageWrite: 1.0,
		TupleCPU:  0.002,
		StatCPU:   0.001,
	}
}

// CostMeter accumulates simulated execution cost. It is safe for
// concurrent use; pipelined operators within a segment share one meter.
type CostMeter struct {
	mu      sync.Mutex
	weights CostWeights
	parent  *CostMeter // tributary meters forward every charge upstream

	pageReads  int64
	pageWrites int64
	tupleCPU   int64
	statCPU    int64
	extra      float64 // directly-charged costs (e.g. re-optimization time)
}

// NewCostMeter returns a meter with the given weights.
func NewCostMeter(w CostWeights) *CostMeter {
	return &CostMeter{weights: w}
}

// Tributary returns a child meter that records charges locally and also
// forwards them to this meter, so a parallel worker's cost is both
// attributable to that worker and visible in the shared query total in
// real time (the checkpoint's elapsed-cost arithmetic keeps working on
// the shared meter while a gather point reads per-worker totals).
func (m *CostMeter) Tributary() *CostMeter {
	return &CostMeter{weights: m.Weights(), parent: m}
}

// ChargeRead records n simulated page reads.
func (m *CostMeter) ChargeRead(n int64) {
	m.mu.Lock()
	m.pageReads += n
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.ChargeRead(n)
	}
}

// ChargeWrite records n simulated page writes.
func (m *CostMeter) ChargeWrite(n int64) {
	m.mu.Lock()
	m.pageWrites += n
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.ChargeWrite(n)
	}
}

// ChargeTuples records n tuples of operator CPU work.
func (m *CostMeter) ChargeTuples(n int64) {
	m.mu.Lock()
	m.tupleCPU += n
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.ChargeTuples(n)
	}
}

// ChargeStatTuples records n tuples of statistics-collection CPU work.
func (m *CostMeter) ChargeStatTuples(n int64) {
	m.mu.Lock()
	m.statCPU += n
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.ChargeStatTuples(n)
	}
}

// ChargeRaw adds a pre-computed cost in simulated units. The dispatcher
// uses it to charge re-optimization time (T_opt).
func (m *CostMeter) ChargeRaw(units float64) {
	m.mu.Lock()
	m.extra += units
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.ChargeRaw(units)
	}
}

// Snapshot is a point-in-time copy of a meter's counters.
type Snapshot struct {
	PageReads  int64
	PageWrites int64
	TupleCPU   int64
	StatCPU    int64
	Extra      float64
	Weights    CostWeights
}

// Snapshot returns the current counters.
func (m *CostMeter) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		PageReads:  m.pageReads,
		PageWrites: m.pageWrites,
		TupleCPU:   m.tupleCPU,
		StatCPU:    m.statCPU,
		Extra:      m.extra,
		Weights:    m.weights,
	}
}

// Cost converts the snapshot's counters to simulated time units.
func (s Snapshot) Cost() float64 {
	return float64(s.PageReads)*s.Weights.PageRead +
		float64(s.PageWrites)*s.Weights.PageWrite +
		float64(s.TupleCPU)*s.Weights.TupleCPU +
		float64(s.StatCPU)*s.Weights.StatCPU +
		s.Extra
}

// Sub returns the delta s - o, for measuring a bounded interval of work.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		PageReads:  s.PageReads - o.PageReads,
		PageWrites: s.PageWrites - o.PageWrites,
		TupleCPU:   s.TupleCPU - o.TupleCPU,
		StatCPU:    s.StatCPU - o.StatCPU,
		Extra:      s.Extra - o.Extra,
		Weights:    s.Weights,
	}
}

// Cost returns the meter's total simulated time.
func (m *CostMeter) Cost() float64 { return m.Snapshot().Cost() }

// Weights returns the meter's cost weights.
func (m *CostMeter) Weights() CostWeights {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.weights
}

// Reset zeroes all counters, keeping the weights.
func (m *CostMeter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pageReads, m.pageWrites, m.tupleCPU, m.statCPU, m.extra = 0, 0, 0, 0, 0
}

// String renders the meter for diagnostics.
func (s Snapshot) String() string {
	return fmt.Sprintf("reads=%d writes=%d cpu=%d stat=%d extra=%.2f cost=%.2f",
		s.PageReads, s.PageWrites, s.TupleCPU, s.StatCPU, s.Extra, s.Cost())
}
