package storage

import (
	"testing"
)

func newTestPool(capacity int) (*BufferPool, *CostMeter) {
	m := NewCostMeter(DefaultCostWeights())
	d := NewDisk(m)
	return NewBufferPool(d, capacity), m
}

func TestBufferPoolHitCostsNothing(t *testing.T) {
	bp, m := newTestPool(4)
	id, _, err := bp.PinNew()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id)
	before := m.Snapshot()
	for i := 0; i < 10; i++ {
		if _, err := bp.Pin(id); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(id)
	}
	if d := m.Snapshot().Sub(before); d.PageReads != 0 {
		t.Errorf("cached pins charged %d reads", d.PageReads)
	}
}

func TestBufferPoolMissChargesRead(t *testing.T) {
	bp, m := newTestPool(2)
	// Fill the pool past capacity so page1 is evicted.
	id1, buf, _ := bp.PinNew()
	buf[0] = 0xAB
	bp.MarkDirty(id1)
	bp.Unpin(id1)
	id2, _, _ := bp.PinNew()
	bp.Unpin(id2)
	id3, _, _ := bp.PinNew()
	bp.Unpin(id3)

	if bp.Cached(id1) {
		t.Fatal("page1 should have been evicted")
	}
	before := m.Snapshot()
	got, err := bp.Pin(id1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Error("dirty page content lost across eviction")
	}
	bp.Unpin(id1)
	if d := m.Snapshot().Sub(before); d.PageReads != 1 {
		t.Errorf("miss charged %d reads, want 1", d.PageReads)
	}
}

func TestBufferPoolDirtyEvictionChargesWrite(t *testing.T) {
	bp, m := newTestPool(1)
	id1, _, _ := bp.PinNew()
	bp.MarkDirty(id1)
	bp.Unpin(id1)
	before := m.Snapshot()
	id2, _, _ := bp.PinNew() // forces eviction of dirty id1
	bp.Unpin(id2)
	if d := m.Snapshot().Sub(before); d.PageWrites != 1 {
		t.Errorf("dirty eviction charged %d writes, want 1", d.PageWrites)
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	bp, _ := newTestPool(1)
	id, _, _ := bp.PinNew()
	if _, _, err := bp.PinNew(); err == nil {
		t.Error("PinNew with all frames pinned succeeded")
	}
	bp.Unpin(id)
	if _, _, err := bp.PinNew(); err != nil {
		t.Errorf("PinNew after unpin: %v", err)
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	bp, _ := newTestPool(2)
	a, _, _ := bp.PinNew()
	bp.Unpin(a)
	b, _, _ := bp.PinNew()
	bp.Unpin(b)
	// Touch a so b becomes the LRU victim.
	bp.Pin(a)
	bp.Unpin(a)
	c, _, _ := bp.PinNew()
	bp.Unpin(c)
	if !bp.Cached(a) {
		t.Error("recently used page a was evicted")
	}
	if bp.Cached(b) {
		t.Error("LRU page b was not evicted")
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	bp, m := newTestPool(4)
	id, buf, _ := bp.PinNew()
	buf[0] = 7
	bp.MarkDirty(id)
	bp.Unpin(id)
	before := m.Snapshot()
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if d := m.Snapshot().Sub(before); d.PageWrites != 1 {
		t.Errorf("FlushAll charged %d writes", d.PageWrites)
	}
	// Second flush is a no-op.
	before = m.Snapshot()
	bp.FlushAll()
	if d := m.Snapshot().Sub(before); d.PageWrites != 0 {
		t.Error("second FlushAll rewrote clean pages")
	}
}

func TestBufferPoolEvict(t *testing.T) {
	bp, _ := newTestPool(4)
	id, _, _ := bp.PinNew()
	if err := bp.Evict(id); err == nil {
		t.Error("Evict of pinned page succeeded")
	}
	bp.Unpin(id)
	if err := bp.Evict(id); err != nil {
		t.Fatal(err)
	}
	if bp.Cached(id) {
		t.Error("page still cached after Evict")
	}
	if err := bp.Evict(id); err != nil {
		t.Errorf("Evict of absent page: %v", err)
	}
}

func TestDiskErrors(t *testing.T) {
	m := NewCostMeter(DefaultCostWeights())
	d := NewDisk(m)
	if _, err := d.Read(999); err == nil {
		t.Error("read of unallocated page succeeded")
	}
	if err := d.Write(999, make([]byte, PageSize)); err == nil {
		t.Error("write to unallocated page succeeded")
	}
	id := d.Allocate()
	if err := d.Write(id, make([]byte, 10)); err == nil {
		t.Error("short write succeeded")
	}
	d.Free(id)
	if d.NumPages() != 0 {
		t.Errorf("NumPages after free = %d", d.NumPages())
	}
}
