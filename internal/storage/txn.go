package storage

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/types"
)

// TxnID identifies a transaction. IDs are dense, monotonically
// increasing, and never reused within a process. ID 0 is reserved as
// the "frozen" stamp: tuples bulk-loaded outside any transaction carry
// xmin 0 and are visible to every snapshot.
type TxnID uint32

// ErrWriteConflict is returned when a transaction tries to delete or
// update a tuple version another transaction has already deleted —
// the first-writer-wins rule of snapshot isolation. The losing
// transaction must abort.
var ErrWriteConflict = errors.New("storage: write conflict (tuple already deleted by a concurrent transaction)")

// TxnSnapshot captures the set of transactions visible to one query or
// transaction: everything that committed before the snapshot was taken,
// plus the holder's own writes. The representation is the classic
// (xmin, xmax, active-list) triple.
type TxnSnapshot struct {
	// Self is the holder's own transaction ID (0 for pure readers).
	Self TxnID
	// XMin is the smallest transaction ID that was active when the
	// snapshot was taken; every ID below it has finished.
	XMin TxnID
	// XMax is the first transaction ID not yet assigned at snapshot
	// time; every ID at or above it is invisible.
	XMax TxnID
	// Active holds the IDs in [XMin, XMax) that were in flight at
	// snapshot time (excluding Self).
	Active map[TxnID]struct{}
}

// committed reports whether transaction x committed before this
// snapshot was taken. Aborted transactions physically undo their
// writes before deactivating, so any stamp still referencing a
// finished transaction references a committed one.
func (s *TxnSnapshot) committed(x TxnID) bool {
	if x >= s.XMax {
		return false
	}
	_, active := s.Active[x]
	return !active
}

// Sees reports whether a tuple version stamped (xmin, xmax) is visible
// to the snapshot: its inserter must be frozen, the holder itself, or
// committed before the snapshot; and it must not have been deleted by
// the holder or by a transaction committed before the snapshot.
func (s *TxnSnapshot) Sees(xmin, xmax TxnID) bool {
	if xmin != 0 && xmin != s.Self && !s.committed(xmin) {
		return false
	}
	if xmax == 0 {
		return true
	}
	if xmax == s.Self {
		return false
	}
	return !s.committed(xmax)
}

// writeKind tags one entry of a transaction's undo log.
type writeKind uint8

const (
	wroteInsert writeKind = iota
	wroteDelete
)

type writeRec struct {
	heap *HeapFile
	rid  RID
	kind writeKind
}

// Txn is one transaction: a snapshot plus an undo log of physical
// writes. Read-only transactions (BeginRead) carry an empty log and
// exist to pin the garbage-collection horizon while they scan.
type Txn struct {
	m    *TxnManager
	id   TxnID
	snap *TxnSnapshot

	mu     sync.Mutex
	writes []writeRec
	done   bool
}

// ID returns the transaction's identifier (0 for read-only).
func (t *Txn) ID() TxnID { return t.id }

// Snapshot returns the visibility snapshot acquired at Begin.
func (t *Txn) Snapshot() *TxnSnapshot { return t.snap }

// TxnManager hands out transaction IDs and snapshots, tracks the
// active set for visibility and conflict decisions, and computes the
// garbage-collection horizon below which dead versions can be swept.
type TxnManager struct {
	mu     sync.Mutex
	next   TxnID
	active map[TxnID]*Txn
	// readers counts registered read-only transactions per snapshot
	// XMin, so the horizon respects long-running queries.
	readers map[*Txn]TxnID
}

// NewTxnManager returns an empty manager. The first transaction gets
// ID 1; 0 stays reserved for frozen (bulk-loaded) tuples.
func NewTxnManager() *TxnManager {
	return &TxnManager{
		next:    1,
		active:  make(map[TxnID]*Txn),
		readers: make(map[*Txn]TxnID),
	}
}

// snapshotLocked builds a snapshot for self from current state.
func (m *TxnManager) snapshotLocked(self TxnID) *TxnSnapshot {
	s := &TxnSnapshot{Self: self, XMin: m.next, XMax: m.next}
	if len(m.active) > 0 {
		s.Active = make(map[TxnID]struct{}, len(m.active))
		for id := range m.active {
			if id == self {
				continue
			}
			s.Active[id] = struct{}{}
			if id < s.XMin {
				s.XMin = id
			}
		}
	}
	return s
}

// Begin starts a read-write transaction with a fresh snapshot.
func (m *TxnManager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.next
	m.next++
	t := &Txn{m: m, id: id}
	m.active[id] = t
	t.snap = m.snapshotLocked(id)
	// The transaction's own ID is the snapshot's upper bound.
	if t.snap.XMin > id {
		t.snap.XMin = id
	}
	return t
}

// BeginRead starts a read-only transaction: a snapshot registered with
// the manager so the GC horizon cannot advance past data it may still
// read. End it with (*Txn).End.
func (m *TxnManager) BeginRead() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Txn{m: m}
	t.snap = m.snapshotLocked(0)
	m.readers[t] = t.snap.XMin
	return t
}

// LatestSnapshot returns an unregistered snapshot of current commit
// state — for internal scans (ANALYZE, index builds) that run under
// locks preventing concurrent writes from starting.
func (m *TxnManager) LatestSnapshot() *TxnSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked(0)
}

// IsActive reports whether a transaction ID is currently in flight.
func (m *TxnManager) IsActive(id TxnID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.active[id]
	return ok
}

// Horizon returns the oldest transaction ID any live snapshot might
// still consider active. A version deleted by a committed transaction
// below the horizon is invisible to every current and future snapshot
// and can be physically removed.
func (m *TxnManager) Horizon() TxnID {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.next
	for id, t := range m.active {
		if id < h {
			h = id
		}
		if t.snap != nil && t.snap.XMin < h {
			h = t.snap.XMin
		}
	}
	for _, xmin := range m.readers {
		if xmin < h {
			h = xmin
		}
	}
	return h
}

// ActiveWriters returns the number of in-flight read-write
// transactions (tests and status reporting).
func (m *TxnManager) ActiveWriters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// TxnInfo describes one in-flight transaction for introspection
// (the mqr.txns system table).
type TxnInfo struct {
	ID TxnID
	// Writes is the number of undo records the transaction holds —
	// row versions it has inserted or delete-stamped so far.
	Writes int
	// Reader marks registered read-only snapshots.
	Reader bool
}

// ActiveTxns lists in-flight transactions — read-write ones plus
// registered read-only snapshots — sorted by ID.
func (m *TxnManager) ActiveTxns() []TxnInfo {
	m.mu.Lock()
	txns := make([]*Txn, 0, len(m.active)+len(m.readers))
	for _, t := range m.active {
		txns = append(txns, t)
	}
	readers := make([]TxnID, 0, len(m.readers))
	for _, xmin := range m.readers {
		readers = append(readers, xmin)
	}
	m.mu.Unlock()

	out := make([]TxnInfo, 0, len(txns)+len(readers))
	for _, t := range txns {
		t.mu.Lock()
		w := len(t.writes)
		t.mu.Unlock()
		out = append(out, TxnInfo{ID: t.id, Writes: w})
	}
	for _, xmin := range readers {
		out = append(out, TxnInfo{ID: xmin, Reader: true})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return !out[i].Reader && out[j].Reader
	})
	return out
}

// InsertTuple appends tup as a new version owned by t and logs it for
// undo.
func (t *Txn) InsertTuple(h *HeapFile, tup types.Tuple) (RID, error) {
	rid, err := h.AppendVersion(tup, t.id)
	if err != nil {
		return RID{}, err
	}
	t.mu.Lock()
	t.writes = append(t.writes, writeRec{heap: h, rid: rid, kind: wroteInsert})
	t.mu.Unlock()
	return rid, nil
}

// DeleteTuple marks the version at rid as deleted by t (first writer
// wins: if another transaction already stamped it, ErrWriteConflict is
// returned and t must abort).
func (t *Txn) DeleteTuple(h *HeapFile, rid RID) error {
	if err := h.SetXmax(rid, t.id); err != nil {
		return err
	}
	t.mu.Lock()
	t.writes = append(t.writes, writeRec{heap: h, rid: rid, kind: wroteDelete})
	t.mu.Unlock()
	return nil
}

// Commit makes the transaction's writes visible to future snapshots by
// removing it from the active set. Stamps are already on the pages; no
// further page writes are needed.
func (t *Txn) Commit() {
	t.finish()
}

// Abort physically undoes the transaction's writes — deleting inserted
// versions, clearing delete stamps — and then deactivates it. The undo
// happens before deactivation, so no snapshot can ever observe an
// aborted transaction as committed.
func (t *Txn) Abort() error {
	t.mu.Lock()
	writes := t.writes
	t.writes = nil
	t.mu.Unlock()
	var first error
	for i := len(writes) - 1; i >= 0; i-- {
		w := writes[i]
		var err error
		switch w.kind {
		case wroteInsert:
			err = w.heap.DeleteSlot(w.rid)
		case wroteDelete:
			err = w.heap.ClearXmax(w.rid, t.id)
		}
		if err != nil && first == nil {
			first = err
		}
	}
	t.finish()
	return first
}

// End deactivates a read-only transaction, releasing its hold on the
// GC horizon. Calling End on a writer is equivalent to Commit.
func (t *Txn) End() { t.finish() }

func (t *Txn) finish() {
	if t.m == nil {
		return
	}
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	if t.id != 0 {
		delete(t.m.active, t.id)
	} else {
		delete(t.m.readers, t)
	}
}
