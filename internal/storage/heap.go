package storage

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/types"
)

// RID names a record: the page it lives on and its slot.
type RID struct {
	Page PageID
	Slot int
}

// stampSize is the per-record MVCC overhead of a stamped heap: two
// little-endian uint32 transaction stamps (xmin, xmax) preceding the
// encoded tuple payload. The stamps are the only bytes of a record
// ever mutated in place — slotted pages never move record data, so an
// 8-byte overwrite at the record's start is safe.
const stampSize = 8

// HeapFile is an unordered collection of tuples stored across slotted
// pages. Base tables, temporary spill partitions, and materialized
// intermediate results are all heap files.
//
// A stamped heap (NewStampedHeapFile) prefixes every record with MVCC
// transaction stamps and supports versioned inserts, deletes, and
// snapshot-visible scans; temp and spill files stay unstamped and pay
// no per-record overhead. All methods are safe for concurrent use: a
// single writer's page mutations (appends, stamp updates, slot
// deletes) exclude readers via an RW mutex.
type HeapFile struct {
	pool    *BufferPool
	stamped bool
	temp    bool

	mu     sync.RWMutex
	pages  []PageID
	tuples int64
	bytes  int64
}

// NewHeapFile creates an empty unstamped heap file backed by pool.
func NewHeapFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool}
}

// NewStampedHeapFile creates an empty heap file whose records carry
// MVCC transaction stamps. Base tables that accept DML use stamped
// heaps.
func NewStampedHeapFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool, stamped: true}
}

// NewTempFile creates a heap file whose pages are released by Drop. The
// re-optimizer materializes intermediate results into temp files
// (paper §2.4, Figure 6).
func NewTempFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool, temp: true}
}

// NumPages returns the number of pages in the file.
func (h *HeapFile) NumPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages)
}

// NumTuples returns the number of tuple versions physically present
// (live versions plus committed-deleted versions not yet swept).
func (h *HeapFile) NumTuples() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.tuples
}

// ByteSize returns the total encoded bytes of all tuple payloads
// (excluding MVCC stamps), used for average-tuple-size statistics.
func (h *HeapFile) ByteSize() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.bytes
}

// IsTemp reports whether Drop will free the file's pages.
func (h *HeapFile) IsTemp() bool { return h.temp }

// Stamped reports whether records carry MVCC transaction stamps.
func (h *HeapFile) Stamped() bool { return h.stamped }

// Append adds a tuple to the file and returns its RID. On a stamped
// heap the record is frozen (xmin 0): visible to every snapshot, as
// bulk loads outside any transaction should be.
func (h *HeapFile) Append(t types.Tuple) (RID, error) {
	return h.appendStamped(t, 0)
}

// AppendVersion adds a tuple version owned by transaction xmin. The
// version is invisible to snapshots that do not include xmin.
func (h *HeapFile) AppendVersion(t types.Tuple, xmin TxnID) (RID, error) {
	if !h.stamped {
		return RID{}, fmt.Errorf("storage: AppendVersion on unstamped heap")
	}
	return h.appendStamped(t, xmin)
}

func (h *HeapFile) appendStamped(t types.Tuple, xmin TxnID) (RID, error) {
	var rec []byte
	if h.stamped {
		rec = make([]byte, stampSize, stampSize+types.EncodedSize(t))
		binary.LittleEndian.PutUint32(rec[0:4], uint32(xmin))
		rec = types.EncodeTuple(rec, t)
	} else {
		rec = types.EncodeTuple(nil, t)
	}
	payload := len(rec)
	if h.stamped {
		payload -= stampSize
	}
	if len(rec) > PageSize-pageHeaderSize-4 {
		return RID{}, fmt.Errorf("storage: tuple of %d bytes exceeds page capacity", len(rec))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	// Try the last page first.
	if n := len(h.pages); n > 0 {
		id := h.pages[n-1]
		buf, err := h.pool.Pin(id)
		if err != nil {
			return RID{}, err
		}
		page := LoadSlottedPage(buf)
		if page.CanFit(len(rec)) {
			slot, err := page.Insert(rec)
			if err != nil {
				h.pool.Unpin(id)
				return RID{}, err
			}
			h.pool.MarkDirty(id)
			h.pool.Unpin(id)
			h.tuples++
			h.bytes += int64(payload)
			return RID{Page: id, Slot: slot}, nil
		}
		h.pool.Unpin(id)
	}
	id, buf, err := h.pool.PinNew()
	if err != nil {
		return RID{}, err
	}
	page := NewSlottedPage(buf)
	slot, err := page.Insert(rec)
	if err != nil {
		h.pool.Unpin(id)
		return RID{}, err
	}
	h.pool.MarkDirty(id)
	h.pool.Unpin(id)
	h.pages = append(h.pages, id)
	h.tuples++
	h.bytes += int64(payload)
	return RID{Page: id, Slot: slot}, nil
}

// decodeStamp reads the (xmin, xmax) stamps from a stamped record.
func decodeStamp(rec []byte) (xmin, xmax TxnID) {
	return TxnID(binary.LittleEndian.Uint32(rec[0:4])),
		TxnID(binary.LittleEndian.Uint32(rec[4:8]))
}

// versionVisible decides visibility of a stamped version for snap. A
// nil snapshot sees exactly the undeleted versions — correct only for
// scans that cannot run concurrently with writers (bulk loads, tests).
func versionVisible(snap *TxnSnapshot, xmin, xmax TxnID) bool {
	if snap == nil {
		return xmax == 0
	}
	return snap.Sees(xmin, xmax)
}

// Fetch reads the tuple at rid, regardless of version visibility (the
// slot must not have been physically deleted).
func (h *HeapFile) Fetch(rid RID) (types.Tuple, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(rid.Page)
	rec, err := LoadSlottedPage(buf).Record(rid.Slot)
	if err != nil {
		return nil, err
	}
	if h.stamped {
		rec = rec[stampSize:]
	}
	t, _, err := types.DecodeTuple(rec)
	return t, err
}

// FetchVisible reads the tuple at rid if its version is visible to
// snap. It returns ok=false — without error — when the slot was
// physically deleted (aborted insert, swept version) or the version is
// outside the snapshot, so index probes can skip stale entries.
func (h *HeapFile) FetchVisible(rid RID, snap *TxnSnapshot) (types.Tuple, bool, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return nil, false, err
	}
	defer h.pool.Unpin(rid.Page)
	rec, err := LoadSlottedPage(buf).Record(rid.Slot)
	if err != nil {
		return nil, false, nil // deleted slot: not an error for probes
	}
	if h.stamped {
		xmin, xmax := decodeStamp(rec)
		if !versionVisible(snap, xmin, xmax) {
			return nil, false, nil
		}
		rec = rec[stampSize:]
	}
	t, _, err := types.DecodeTuple(rec)
	if err != nil {
		return nil, false, err
	}
	return t, true, nil
}

// SetXmax stamps the version at rid as deleted by transaction id.
// First writer wins: if any transaction already stamped the version —
// still in flight or committed — ErrWriteConflict is returned. (An
// aborted deleter clears its stamp before deactivating, so a non-zero
// stamp never belongs to an aborted transaction; at worst a racing
// abort costs a spurious conflict.)
func (h *HeapFile) SetXmax(rid RID, id TxnID) error {
	if !h.stamped {
		return fmt.Errorf("storage: SetXmax on unstamped heap")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(rid.Page)
	rec, err := LoadSlottedPage(buf).Record(rid.Slot)
	if err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(rec[4:8]) != 0 {
		return ErrWriteConflict
	}
	binary.LittleEndian.PutUint32(rec[4:8], uint32(id))
	h.pool.MarkDirty(rid.Page)
	return nil
}

// ClearXmax undoes a delete stamp during abort. Only the stamping
// transaction's own mark is cleared.
func (h *HeapFile) ClearXmax(rid RID, id TxnID) error {
	if !h.stamped {
		return fmt.Errorf("storage: ClearXmax on unstamped heap")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(rid.Page)
	rec, err := LoadSlottedPage(buf).Record(rid.Slot)
	if err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(rec[4:8]) == uint32(id) {
		binary.LittleEndian.PutUint32(rec[4:8], 0)
		h.pool.MarkDirty(rid.Page)
	}
	return nil
}

// DeleteSlot physically removes the record at rid (abort undo of an
// insert, or garbage collection of a dead version).
func (h *HeapFile) DeleteSlot(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.deleteSlotLocked(rid)
}

func (h *HeapFile) deleteSlotLocked(rid RID) error {
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(rid.Page)
	page := LoadSlottedPage(buf)
	rec, err := page.Record(rid.Slot)
	if err != nil {
		return err
	}
	payload := len(rec)
	if h.stamped {
		payload -= stampSize
	}
	if err := page.Delete(rid.Slot); err != nil {
		return err
	}
	h.pool.MarkDirty(rid.Page)
	h.tuples--
	h.bytes -= int64(payload)
	return nil
}

// Sweep physically deletes dead versions: those stamped deleted by a
// transaction that committed below the GC horizon (no live snapshot
// can still see them). isActive guards against sweeping versions whose
// deleter is still in flight. It returns the number of versions
// removed.
func (h *HeapFile) Sweep(horizon TxnID, isActive func(TxnID) bool) (int64, error) {
	if !h.stamped {
		return 0, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var removed int64
	for _, id := range h.pages {
		buf, err := h.pool.Pin(id)
		if err != nil {
			return removed, err
		}
		page := LoadSlottedPage(buf)
		dirty := false
		for slot := 0; slot < page.NumSlots(); slot++ {
			rec, err := page.Record(slot)
			if err != nil {
				continue // already deleted
			}
			_, xmax := decodeStamp(rec)
			if xmax == 0 || xmax >= horizon || (isActive != nil && isActive(xmax)) {
				continue
			}
			payload := len(rec) - stampSize
			if err := page.Delete(slot); err != nil {
				h.pool.Unpin(id)
				return removed, err
			}
			h.tuples--
			h.bytes -= int64(payload)
			removed++
			dirty = true
		}
		if dirty {
			h.pool.MarkDirty(id)
		}
		h.pool.Unpin(id)
	}
	return removed, nil
}

// DeadVersions counts versions carrying a delete stamp (committed or
// in-flight). The fuzz harness uses it to assert GC leaves no residue.
func (h *HeapFile) DeadVersions() (int64, error) {
	if !h.stamped {
		return 0, nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	var dead int64
	for _, id := range h.pages {
		buf, err := h.pool.Pin(id)
		if err != nil {
			return dead, err
		}
		page := LoadSlottedPage(buf)
		for slot := 0; slot < page.NumSlots(); slot++ {
			rec, err := page.Record(slot)
			if err != nil {
				continue
			}
			if _, xmax := decodeStamp(rec); xmax != 0 {
				dead++
			}
		}
		h.pool.Unpin(id)
	}
	return dead, nil
}

// Scan returns an iterator over every tuple in the file, in storage
// order. On a stamped heap the iterator skips deleted versions; give
// it a snapshot with WithSnapshot for transactional visibility.
func (h *HeapFile) Scan() *HeapScanner {
	return &HeapScanner{file: h, stride: 1}
}

// ScanPartition returns an iterator over the part-th of `of` page-wise
// partitions of the file (pages whose index ≡ part mod of), charging any
// buffer-pool misses to meter (nil = the shared disk meter). This models
// Paradise's declustered storage: each parallel scan worker reads its own
// disjoint set of pages, so partition I/O is disjoint and attributable.
func (h *HeapFile) ScanPartition(part, of int, meter *CostMeter) *HeapScanner {
	if of < 1 {
		of = 1
	}
	return &HeapScanner{file: h, pageIdx: part % of, stride: of, meter: meter}
}

// Drop releases a temp file's pages from the pool and disk. Dropping a
// non-temp file is a no-op so base tables cannot be freed accidentally.
func (h *HeapFile) Drop() error {
	if !h.temp {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, id := range h.pages {
		if err := h.pool.Evict(id); err != nil {
			return err
		}
		h.pool.Disk().Free(id)
	}
	h.pages = nil
	h.tuples = 0
	h.bytes = 0
	return nil
}

// HeapScanner iterates a heap file page by page. Each page is pinned once
// per visit, so a full scan of an uncached file charges exactly
// NumPages() reads. A partitioned scanner (stride > 1) visits only its
// own pages and charges their reads to its meter.
type HeapScanner struct {
	file    *HeapFile
	pageIdx int
	stride  int          // page-index step; 1 for a full scan
	meter   *CostMeter   // charge target for pool misses; nil = shared
	snap    *TxnSnapshot // visibility filter for stamped heaps; nil = undeleted
	slot    int
	err     error
	cur     types.Tuple
	curRID  RID
}

// WithSnapshot filters a stamped heap's scan to the versions visible
// to snap, returning the scanner for chaining. No effect on unstamped
// heaps.
func (s *HeapScanner) WithSnapshot(snap *TxnSnapshot) *HeapScanner {
	s.snap = snap
	return s
}

// Next advances to the next visible tuple, returning false at the end
// of the file or on error.
func (s *HeapScanner) Next() bool {
	h := s.file
	if s.stride == 0 {
		s.stride = 1
	}
	for {
		h.mu.RLock()
		if s.pageIdx >= len(h.pages) {
			h.mu.RUnlock()
			return false
		}
		id := h.pages[s.pageIdx]
		buf, err := h.pool.PinMetered(id, s.meter)
		if err != nil {
			h.mu.RUnlock()
			s.err = err
			return false
		}
		page := LoadSlottedPage(buf)
		for s.slot < page.NumSlots() {
			slot := s.slot
			s.slot++
			rec, err := page.Record(slot)
			if err != nil {
				continue // deleted slot
			}
			if h.stamped {
				xmin, xmax := decodeStamp(rec)
				if !versionVisible(s.snap, xmin, xmax) {
					continue
				}
				rec = rec[stampSize:]
			}
			t, _, err := types.DecodeTuple(rec)
			h.pool.Unpin(id)
			h.mu.RUnlock()
			if err != nil {
				s.err = err
				return false
			}
			s.cur = t
			s.curRID = RID{Page: id, Slot: slot}
			return true
		}
		h.pool.Unpin(id)
		h.mu.RUnlock()
		s.pageIdx += s.stride
		s.slot = 0
	}
}

// Tuple returns the current tuple after a successful Next.
func (s *HeapScanner) Tuple() types.Tuple { return s.cur }

// RID returns the current tuple's record ID.
func (s *HeapScanner) RID() RID { return s.curRID }

// Err returns the first error encountered, if any.
func (s *HeapScanner) Err() error { return s.err }
