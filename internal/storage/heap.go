package storage

import (
	"fmt"

	"repro/internal/types"
)

// RID names a record: the page it lives on and its slot.
type RID struct {
	Page PageID
	Slot int
}

// HeapFile is an unordered collection of tuples stored across slotted
// pages. Base tables, temporary spill partitions, and materialized
// intermediate results are all heap files.
type HeapFile struct {
	pool   *BufferPool
	pages  []PageID
	tuples int64
	bytes  int64
	temp   bool
}

// NewHeapFile creates an empty heap file backed by pool.
func NewHeapFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool}
}

// NewTempFile creates a heap file whose pages are released by Drop. The
// re-optimizer materializes intermediate results into temp files
// (paper §2.4, Figure 6).
func NewTempFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool, temp: true}
}

// NumPages returns the number of pages in the file.
func (h *HeapFile) NumPages() int { return len(h.pages) }

// NumTuples returns the number of tuples appended.
func (h *HeapFile) NumTuples() int64 { return h.tuples }

// ByteSize returns the total encoded bytes of all tuples, used for
// average-tuple-size statistics.
func (h *HeapFile) ByteSize() int64 { return h.bytes }

// IsTemp reports whether Drop will free the file's pages.
func (h *HeapFile) IsTemp() bool { return h.temp }

// Append adds a tuple to the file and returns its RID.
func (h *HeapFile) Append(t types.Tuple) (RID, error) {
	rec := types.EncodeTuple(nil, t)
	if len(rec) > PageSize-pageHeaderSize-4 {
		return RID{}, fmt.Errorf("storage: tuple of %d bytes exceeds page capacity", len(rec))
	}
	// Try the last page first.
	if n := len(h.pages); n > 0 {
		id := h.pages[n-1]
		buf, err := h.pool.Pin(id)
		if err != nil {
			return RID{}, err
		}
		page := LoadSlottedPage(buf)
		if page.CanFit(len(rec)) {
			slot, err := page.Insert(rec)
			if err != nil {
				h.pool.Unpin(id)
				return RID{}, err
			}
			h.pool.MarkDirty(id)
			h.pool.Unpin(id)
			h.tuples++
			h.bytes += int64(len(rec))
			return RID{Page: id, Slot: slot}, nil
		}
		h.pool.Unpin(id)
	}
	id, buf, err := h.pool.PinNew()
	if err != nil {
		return RID{}, err
	}
	page := NewSlottedPage(buf)
	slot, err := page.Insert(rec)
	if err != nil {
		h.pool.Unpin(id)
		return RID{}, err
	}
	h.pool.MarkDirty(id)
	h.pool.Unpin(id)
	h.pages = append(h.pages, id)
	h.tuples++
	h.bytes += int64(len(rec))
	return RID{Page: id, Slot: slot}, nil
}

// Fetch reads the tuple at rid.
func (h *HeapFile) Fetch(rid RID) (types.Tuple, error) {
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(rid.Page)
	rec, err := LoadSlottedPage(buf).Record(rid.Slot)
	if err != nil {
		return nil, err
	}
	t, _, err := types.DecodeTuple(rec)
	return t, err
}

// Scan returns an iterator over every tuple in the file, in storage order.
func (h *HeapFile) Scan() *HeapScanner {
	return &HeapScanner{file: h, stride: 1}
}

// ScanPartition returns an iterator over the part-th of `of` page-wise
// partitions of the file (pages whose index ≡ part mod of), charging any
// buffer-pool misses to meter (nil = the shared disk meter). This models
// Paradise's declustered storage: each parallel scan worker reads its own
// disjoint set of pages, so partition I/O is disjoint and attributable.
func (h *HeapFile) ScanPartition(part, of int, meter *CostMeter) *HeapScanner {
	if of < 1 {
		of = 1
	}
	return &HeapScanner{file: h, pageIdx: part % of, stride: of, meter: meter}
}

// Drop releases a temp file's pages from the pool and disk. Dropping a
// non-temp file is a no-op so base tables cannot be freed accidentally.
func (h *HeapFile) Drop() error {
	if !h.temp {
		return nil
	}
	for _, id := range h.pages {
		if err := h.pool.Evict(id); err != nil {
			return err
		}
		h.pool.Disk().Free(id)
	}
	h.pages = nil
	h.tuples = 0
	h.bytes = 0
	return nil
}

// HeapScanner iterates a heap file page by page. Each page is pinned once
// per visit, so a full scan of an uncached file charges exactly
// NumPages() reads. A partitioned scanner (stride > 1) visits only its
// own pages and charges their reads to its meter.
type HeapScanner struct {
	file    *HeapFile
	pageIdx int
	stride  int        // page-index step; 1 for a full scan
	meter   *CostMeter // charge target for pool misses; nil = shared
	slot    int
	err     error
	cur     types.Tuple
	curRID  RID
}

// Next advances to the next tuple, returning false at the end of the file
// or on error.
func (s *HeapScanner) Next() bool {
	h := s.file
	if s.stride == 0 {
		s.stride = 1
	}
	for s.pageIdx < len(h.pages) {
		id := h.pages[s.pageIdx]
		buf, err := h.pool.PinMetered(id, s.meter)
		if err != nil {
			s.err = err
			return false
		}
		page := LoadSlottedPage(buf)
		for s.slot < page.NumSlots() {
			slot := s.slot
			s.slot++
			rec, err := page.Record(slot)
			if err != nil {
				continue // deleted slot
			}
			t, _, err := types.DecodeTuple(rec)
			h.pool.Unpin(id)
			if err != nil {
				s.err = err
				return false
			}
			s.cur = t
			s.curRID = RID{Page: id, Slot: slot}
			return true
		}
		h.pool.Unpin(id)
		s.pageIdx += s.stride
		s.slot = 0
	}
	return false
}

// Tuple returns the current tuple after a successful Next.
func (s *HeapScanner) Tuple() types.Tuple { return s.cur }

// RID returns the current tuple's record ID.
func (s *HeapScanner) RID() RID { return s.curRID }

// Err returns the first error encountered, if any.
func (s *HeapScanner) Err() error { return s.err }
