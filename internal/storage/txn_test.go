package storage

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/types"
)

func row(i int) types.Tuple {
	return types.Tuple{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("row-%d", i))}
}

// countVisible scans h under snap and returns how many tuples are seen.
func countVisible(t *testing.T, h *HeapFile, snap *TxnSnapshot) int {
	t.Helper()
	s := h.Scan().WithSnapshot(snap)
	n := 0
	for s.Next() {
		n++
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	return n
}

func TestTxnSnapshotVisibility(t *testing.T) {
	bp, _ := newTestPool(8)
	h := NewStampedHeapFile(bp)
	m := NewTxnManager()

	// Frozen bulk load: visible to everyone, including pre-existing
	// snapshots.
	for i := 0; i < 3; i++ {
		if _, err := h.Append(row(i)); err != nil {
			t.Fatal(err)
		}
	}

	before := m.BeginRead()
	defer before.End()

	w := m.Begin()
	if _, err := w.InsertTuple(h, row(100)); err != nil {
		t.Fatal(err)
	}

	// Uncommitted insert: visible to the writer, invisible to others.
	if got := countVisible(t, h, w.Snapshot()); got != 4 {
		t.Errorf("writer sees %d rows, want 4", got)
	}
	other := m.BeginRead()
	if got := countVisible(t, h, other.Snapshot()); got != 3 {
		t.Errorf("concurrent reader sees %d rows, want 3", got)
	}
	other.End()

	w.Commit()

	// Snapshot taken before the writer began still excludes it.
	if got := countVisible(t, h, before.Snapshot()); got != 3 {
		t.Errorf("old snapshot sees %d rows, want 3", got)
	}
	after := m.BeginRead()
	if got := countVisible(t, h, after.Snapshot()); got != 4 {
		t.Errorf("new snapshot sees %d rows, want 4", got)
	}
	after.End()
}

func TestTxnDeleteVisibilityAndConflict(t *testing.T) {
	bp, _ := newTestPool(8)
	h := NewStampedHeapFile(bp)
	m := NewTxnManager()
	rid, err := h.Append(row(1))
	if err != nil {
		t.Fatal(err)
	}

	w1 := m.Begin()
	if err := w1.DeleteTuple(h, rid); err != nil {
		t.Fatal(err)
	}
	// Deleter no longer sees the row; a concurrent reader still does.
	if got := countVisible(t, h, w1.Snapshot()); got != 0 {
		t.Errorf("deleter sees %d rows, want 0", got)
	}
	rd := m.BeginRead()
	if got := countVisible(t, h, rd.Snapshot()); got != 1 {
		t.Errorf("reader sees %d rows, want 1", got)
	}
	rd.End()

	// First-writer-wins: a second deleter conflicts immediately.
	w2 := m.Begin()
	if err := w2.DeleteTuple(h, rid); !errors.Is(err, ErrWriteConflict) {
		t.Errorf("second delete: got %v, want ErrWriteConflict", err)
	}
	w2.Abort()
	w1.Commit()

	after := m.BeginRead()
	if got := countVisible(t, h, after.Snapshot()); got != 0 {
		t.Errorf("post-commit snapshot sees %d rows, want 0", got)
	}
	after.End()
}

func TestTxnAbortUndo(t *testing.T) {
	bp, _ := newTestPool(8)
	h := NewStampedHeapFile(bp)
	m := NewTxnManager()
	rid, err := h.Append(row(1))
	if err != nil {
		t.Fatal(err)
	}

	w := m.Begin()
	if _, err := w.InsertTuple(h, row(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.DeleteTuple(h, rid); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}

	// Physical undo: the inserted version is gone, the delete stamp is
	// cleared, and a later writer can delete the survivor.
	after := m.BeginRead()
	if got := countVisible(t, h, after.Snapshot()); got != 1 {
		t.Errorf("post-abort snapshot sees %d rows, want 1", got)
	}
	after.End()
	w2 := m.Begin()
	if err := w2.DeleteTuple(h, rid); err != nil {
		t.Errorf("delete after aborted deleter: %v", err)
	}
	w2.Commit()
}

func TestSweepRespectsHorizon(t *testing.T) {
	bp, _ := newTestPool(8)
	h := NewStampedHeapFile(bp)
	m := NewTxnManager()
	var rids []RID
	for i := 0; i < 4; i++ {
		rid, err := h.Append(row(i))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}

	// A reader whose snapshot predates the deletes pins the horizon.
	pin := m.BeginRead()
	w := m.Begin()
	for _, rid := range rids[:2] {
		if err := w.DeleteTuple(h, rid); err != nil {
			t.Fatal(err)
		}
	}
	w.Commit()

	if n, err := h.Sweep(m.Horizon(), m.IsActive); err != nil || n != 0 {
		t.Errorf("sweep under pinned horizon removed %d (err %v), want 0", n, err)
	}
	if got := countVisible(t, h, pin.Snapshot()); got != 4 {
		t.Errorf("pinned reader sees %d rows, want 4", got)
	}
	pin.End()

	// Horizon advances once the reader ends; dead versions reclaim.
	if n, err := h.Sweep(m.Horizon(), m.IsActive); err != nil || n != 2 {
		t.Errorf("sweep removed %d (err %v), want 2", n, err)
	}
	if dead, err := h.DeadVersions(); err != nil || dead != 0 {
		t.Errorf("DeadVersions = %d (err %v) after sweep, want 0", dead, err)
	}
	after := m.BeginRead()
	if got := countVisible(t, h, after.Snapshot()); got != 2 {
		t.Errorf("post-sweep snapshot sees %d rows, want 2", got)
	}
	after.End()
}

func TestFetchVisibleSkipsInvisible(t *testing.T) {
	bp, _ := newTestPool(8)
	h := NewStampedHeapFile(bp)
	m := NewTxnManager()

	w := m.Begin()
	rid, err := w.InsertTuple(h, row(7))
	if err != nil {
		t.Fatal(err)
	}
	rd := m.BeginRead()
	if _, ok, err := h.FetchVisible(rid, rd.Snapshot()); err != nil || ok {
		t.Errorf("uncommitted version: visible=%t err=%v, want invisible", ok, err)
	}
	rd.End()
	if tup, ok, err := h.FetchVisible(rid, w.Snapshot()); err != nil || !ok || tup[0].Int() != 7 {
		t.Errorf("own version: visible=%t err=%v", ok, err)
	}
	w.Abort()

	// After abort-undo the slot is deleted; fetch reports invisible
	// rather than erroring (index entries may still point here).
	if _, ok, err := h.FetchVisible(rid, m.LatestSnapshot()); err != nil || ok {
		t.Errorf("aborted version: visible=%t err=%v, want invisible", ok, err)
	}
}
