package storage

import (
	"math"
	"sync"
	"testing"
)

func TestCostMeterAccounting(t *testing.T) {
	m := NewCostMeter(CostWeights{PageRead: 1, PageWrite: 2, TupleCPU: 0.5, StatCPU: 0.25})
	m.ChargeRead(3)
	m.ChargeWrite(2)
	m.ChargeTuples(4)
	m.ChargeStatTuples(8)
	m.ChargeRaw(1.5)
	want := 3.0 + 4.0 + 2.0 + 2.0 + 1.5
	if got := m.Cost(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Cost() = %g, want %g", got, want)
	}
}

func TestCostMeterSnapshotSub(t *testing.T) {
	m := NewCostMeter(DefaultCostWeights())
	m.ChargeRead(10)
	before := m.Snapshot()
	m.ChargeRead(5)
	m.ChargeTuples(100)
	delta := m.Snapshot().Sub(before)
	if delta.PageReads != 5 || delta.TupleCPU != 100 {
		t.Errorf("delta = %+v", delta)
	}
	if delta.Cost() != 5*1.0+100*0.002 {
		t.Errorf("delta cost = %g", delta.Cost())
	}
}

func TestCostMeterReset(t *testing.T) {
	m := NewCostMeter(DefaultCostWeights())
	m.ChargeRead(10)
	m.Reset()
	if m.Cost() != 0 {
		t.Errorf("cost after Reset = %g", m.Cost())
	}
	if m.Weights().PageRead != 1.0 {
		t.Error("Reset lost weights")
	}
}

func TestCostMeterConcurrent(t *testing.T) {
	m := NewCostMeter(DefaultCostWeights())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.ChargeRead(1)
				m.ChargeTuples(1)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.PageReads != 8000 || s.TupleCPU != 8000 {
		t.Errorf("concurrent counters: %+v", s)
	}
}

func TestSnapshotString(t *testing.T) {
	m := NewCostMeter(DefaultCostWeights())
	m.ChargeRead(1)
	if s := m.Snapshot().String(); s == "" {
		t.Error("empty Snapshot.String()")
	}
}
