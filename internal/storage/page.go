package storage

import (
	"encoding/binary"
	"fmt"
)

// Slotted page layout:
//
//	bytes 0..2   u16 slot count
//	bytes 2..4   u16 free-space end (offset of the lowest data byte)
//	bytes 4..    slot directory, u16 data offset per slot (0 = deleted)
//	...free space...
//	data region, growing downward from PageSize
//
// Each slot's data begins with a u16 record length followed by the record
// bytes. The page never compacts; the engine is append-mostly, matching a
// decision-support workload.

const pageHeaderSize = 4

// SlottedPage wraps a page buffer with record-level operations. It does
// not own I/O; callers read and write the underlying buffer through the
// buffer pool.
type SlottedPage struct {
	buf []byte
}

// NewSlottedPage formats buf (of PageSize bytes) as an empty slotted page.
func NewSlottedPage(buf []byte) *SlottedPage {
	p := &SlottedPage{buf: buf}
	p.setNumSlots(0)
	p.setFreeEnd(uint16(len(buf)))
	return p
}

// LoadSlottedPage wraps an already-formatted buffer.
func LoadSlottedPage(buf []byte) *SlottedPage {
	return &SlottedPage{buf: buf}
}

func (p *SlottedPage) numSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[0:2]))
}

func (p *SlottedPage) setNumSlots(n int) {
	binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n))
}

func (p *SlottedPage) freeEnd() uint16 {
	return binary.LittleEndian.Uint16(p.buf[2:4])
}

func (p *SlottedPage) setFreeEnd(v uint16) {
	binary.LittleEndian.PutUint16(p.buf[2:4], v)
}

func (p *SlottedPage) slotOffset(i int) uint16 {
	return binary.LittleEndian.Uint16(p.buf[pageHeaderSize+2*i : pageHeaderSize+2*i+2])
}

func (p *SlottedPage) setSlotOffset(i int, off uint16) {
	binary.LittleEndian.PutUint16(p.buf[pageHeaderSize+2*i:pageHeaderSize+2*i+2], off)
}

// NumRecords returns the number of live records on the page.
func (p *SlottedPage) NumRecords() int {
	n := 0
	for i := 0; i < p.numSlots(); i++ {
		if p.slotOffset(i) != 0 {
			n++
		}
	}
	return n
}

// NumSlots returns the number of slots, live or deleted.
func (p *SlottedPage) NumSlots() int { return p.numSlots() }

// FreeSpace returns the bytes available for one more record's data plus
// its slot directory entry.
func (p *SlottedPage) FreeSpace() int {
	dirEnd := pageHeaderSize + 2*p.numSlots()
	free := int(p.freeEnd()) - dirEnd
	if free < 0 {
		return 0
	}
	return free
}

// CanFit reports whether a record of n bytes fits on the page.
func (p *SlottedPage) CanFit(n int) bool {
	// 2 bytes slot entry + 2 bytes length prefix + data.
	return p.FreeSpace() >= n+4
}

// Insert appends a record and returns its slot number.
func (p *SlottedPage) Insert(rec []byte) (int, error) {
	if !p.CanFit(len(rec)) {
		return 0, fmt.Errorf("storage: record of %d bytes does not fit (free %d)", len(rec), p.FreeSpace())
	}
	end := int(p.freeEnd())
	start := end - len(rec) - 2
	binary.LittleEndian.PutUint16(p.buf[start:start+2], uint16(len(rec)))
	copy(p.buf[start+2:end], rec)
	slot := p.numSlots()
	p.setNumSlots(slot + 1)
	p.setSlotOffset(slot, uint16(start))
	p.setFreeEnd(uint16(start))
	return slot, nil
}

// Record returns the bytes of the record in the given slot. The returned
// slice aliases the page buffer; callers must copy before retaining.
func (p *SlottedPage) Record(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.numSlots() {
		return nil, fmt.Errorf("storage: slot %d out of range [0,%d)", slot, p.numSlots())
	}
	off := p.slotOffset(slot)
	if off == 0 {
		return nil, fmt.Errorf("storage: slot %d is deleted", slot)
	}
	l := binary.LittleEndian.Uint16(p.buf[off : off+2])
	return p.buf[off+2 : off+2+l], nil
}

// Delete marks a slot as deleted. The space is not reclaimed.
func (p *SlottedPage) Delete(slot int) error {
	if slot < 0 || slot >= p.numSlots() {
		return fmt.Errorf("storage: slot %d out of range [0,%d)", slot, p.numSlots())
	}
	p.setSlotOffset(slot, 0)
	return nil
}
