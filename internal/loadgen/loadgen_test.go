package loadgen_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/histogram"
	"repro/internal/loadgen"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/tenant"
	"repro/internal/types"
)

func TestJain(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0}, 0},
		{[]float64{5}, 1},
		{[]float64{3, 3, 3, 3}, 1},
		{[]float64{1, 0, 0, 0}, 0.25}, // one active of n -> 1/n
		{[]float64{4, 2}, 0.9},        // (6^2)/(2*20)
	}
	for _, c := range cases {
		if got := loadgen.Jain(c.xs); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Jain(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func testManager(t *testing.T) *session.Manager {
	t.Helper()
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	pool := storage.NewBufferPool(storage.NewDisk(m), 256)
	cat := catalog.New(pool)
	tbl, err := cat.CreateTable("t", types.NewSchema(
		types.Column{Name: "t_pk", Kind: types.KindInt, Key: true},
		types.Column{Name: "t_grp", Kind: types.KindInt},
		types.Column{Name: "t_val", Kind: types.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tbl.Insert(types.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 10)),
			types.NewFloat(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Analyze("t", catalog.AnalyzeOptions{Family: histogram.MaxDiff}); err != nil {
		t.Fatal(err)
	}
	return session.NewManager(cat, pool, m, session.Config{
		MemPoolBytes: 1 << 20,
		MemBudget:    1 << 20,
	})
}

// TestRunClosedLoop drives a short two-tenant closed loop against a
// tiny table and checks the report's accounting: every tenant present,
// completions counted, latency quantiles ordered, fairness in range,
// and the broker pool whole afterwards.
func TestRunClosedLoop(t *testing.T) {
	mgr := testManager(t)
	q := []loadgen.Query{{Name: "agg", SQL: "select t_grp, count(*) as c from t group by t_grp"}}
	rep, err := loadgen.Run(mgr, []loadgen.Profile{
		{Tenant: "a", Config: tenant.Config{Weight: 1}, Workers: 2, Queries: q},
		{Tenant: "b", Config: tenant.Config{Weight: 1}, Workers: 2, Queries: q},
	}, loadgen.Options{Warmup: 50 * time.Millisecond, Duration: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("%d tenant reports, want 2", len(rep.Tenants))
	}
	if rep.Completed == 0 {
		t.Fatal("no completions in the measured window")
	}
	var total int64
	for _, tr := range rep.Tenants {
		total += tr.Completed
		if tr.Errors != 0 {
			t.Fatalf("tenant %s saw %d errors, first: %s", tr.Tenant, tr.Errors, tr.Err)
		}
		if tr.Completed > 0 {
			if tr.QPS <= 0 {
				t.Errorf("tenant %s: completed %d but qps %v", tr.Tenant, tr.Completed, tr.QPS)
			}
			if tr.P50Ms <= 0 || tr.P99Ms < tr.P50Ms {
				t.Errorf("tenant %s: quantiles out of order p50=%v p99=%v", tr.Tenant, tr.P50Ms, tr.P99Ms)
			}
		}
	}
	if total != rep.Completed {
		t.Errorf("tenant completions sum to %d, report says %d", total, rep.Completed)
	}
	if rep.Jain <= 0 || rep.Jain > 1 {
		t.Errorf("Jain index %v outside (0, 1]", rep.Jain)
	}
	if rep.WallSeconds <= 0 {
		t.Errorf("WallSeconds = %v", rep.WallSeconds)
	}
	if st := mgr.Broker().Stats(); st.AvailBytes != st.PoolBytes {
		t.Errorf("broker pool not whole after run: %v of %v", st.AvailBytes, st.PoolBytes)
	}
}

// TestRunRejectsAccounting: with a queue bound of 1 and many workers,
// any admissions turned away at the bound must be counted as
// rejections (retried by the worker), never surface as errors, and the
// tenant must still make progress.
func TestRunRejectsAccounting(t *testing.T) {
	mgr := testManager(t)
	q := []loadgen.Query{{Name: "agg", SQL: "select t_grp, count(*) as c from t group by t_grp"}}
	rep, err := loadgen.Run(mgr, []loadgen.Profile{
		{Tenant: "lim", Config: tenant.Config{Weight: 1, MaxQueued: 1}, Workers: 8, Queries: q},
	}, loadgen.Options{Warmup: 50 * time.Millisecond, Duration: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Tenants[0]
	if tr.Errors != 0 {
		t.Fatalf("rejections leaked into errors: %d, first: %s", tr.Errors, tr.Err)
	}
	if tr.Completed == 0 {
		t.Fatal("bounded queue starved the tenant entirely")
	}
}
