// Package loadgen is a closed-loop, multi-tenant load generator for the
// session manager: it drives concurrent sessions across tenant
// profiles, each worker submitting its next query the moment the
// previous one finishes, and reports per-tenant throughput, latency
// percentiles, preemption counts, and Jain's fairness index. The qos
// benchmark figure and its CI gates are built on it; the package itself
// is deliberately engine-agnostic — it only talks to session.Manager.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/memmgr"
	"repro/internal/reopt"
	"repro/internal/session"
	"repro/internal/tenant"
	"repro/internal/types"
)

// Query is one statement in a profile's workload mix.
type Query struct {
	Name   string
	SQL    string
	Params map[string]types.Value
}

// Profile describes one tenant's offered load: its service class, how
// many closed-loop workers submit on its behalf, and the query mix each
// worker cycles through (staggered by worker index so the tenants'
// in-flight mixes stay heterogeneous).
type Profile struct {
	Tenant string
	Config tenant.Config
	// Workers is the number of concurrent closed-loop sessions
	// (default 1).
	Workers int
	Queries []Query
	// Mode is the re-optimization mode queries run under.
	Mode reopt.Mode
	// Think pauses each worker between queries (0 = saturating).
	Think time.Duration
}

// Options shapes one load-generation run.
type Options struct {
	// Warmup runs load without recording, letting queues and caches
	// reach steady state before measurement (default 0).
	Warmup time.Duration
	// Duration is the measured window (default 1s).
	Duration time.Duration
}

// TenantReport is one tenant's side of the run.
type TenantReport struct {
	Tenant  string  `json:"tenant"`
	Weight  float64 `json:"weight"`
	Workers int     `json:"workers"`
	// Completed counts queries that finished inside the measured
	// window; QPS is Completed over the window.
	Completed int64   `json:"completed"`
	QPS       float64 `json:"qps"`
	// Rejected counts admissions bounced by the tenant's queue bound
	// (HTTP 429 territory); Errors is everything else that failed.
	Rejected int64 `json:"rejected,omitempty"`
	Errors   int64 `json:"errors,omitempty"`
	// Preempts sums checkpoint suspensions over completed queries.
	Preempts int64 `json:"preempts,omitempty"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// Err is the first non-rejection error observed, if any.
	Err string `json:"err,omitempty"`
}

// Report is one run's outcome.
type Report struct {
	WallSeconds float64        `json:"wall_seconds"`
	Completed   int64          `json:"completed"`
	Tenants     []TenantReport `json:"tenants"`
	// Jain is Jain's fairness index over weight-normalized throughput
	// (x_i = QPS_i / weight_i): 1.0 is perfectly weighted-fair, 1/n is
	// total capture by one tenant.
	Jain float64 `json:"jain"`
}

// tenantAcc accumulates one tenant's samples across its workers.
type tenantAcc struct {
	mu        sync.Mutex
	completed int64
	rejected  int64
	errs      int64
	preempts  int64
	firstErr  error
	latencies []float64 // milliseconds, completed queries only
}

// Run drives every profile's workers concurrently against m until
// warmup+duration has elapsed, then reports the measured window.
// Queries still in flight at the deadline are cancelled and not
// counted. Tenant service classes are installed on the manager before
// load starts.
func Run(m *session.Manager, profiles []Profile, opts Options) (*Report, error) {
	if len(profiles) == 0 {
		return nil, errors.New("loadgen: no profiles")
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	for _, p := range profiles {
		m.SetTenantConfig(p.Tenant, p.Config)
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.Warmup+opts.Duration)
	defer cancel()
	measureFrom := time.Now().Add(opts.Warmup)

	accs := make([]*tenantAcc, len(profiles))
	var wg sync.WaitGroup
	for pi := range profiles {
		p := &profiles[pi]
		acc := &tenantAcc{}
		accs[pi] = acc
		workers := p.Workers
		if workers < 1 {
			workers = 1
		}
		if len(p.Queries) == 0 {
			return nil, fmt.Errorf("loadgen: profile %q has no queries", p.Tenant)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				runWorker(ctx, m, p, acc, w, measureFrom)
			}(w)
		}
	}
	wg.Wait()

	window := opts.Duration.Seconds()
	rep := &Report{WallSeconds: window}
	xs := make([]float64, 0, len(profiles))
	for pi, p := range profiles {
		acc := accs[pi]
		workers := p.Workers
		if workers < 1 {
			workers = 1
		}
		tr := TenantReport{
			Tenant:    tenant.Canonical(p.Tenant),
			Weight:    m.TenantConfig(p.Tenant).Weight,
			Workers:   workers,
			Completed: acc.completed,
			Rejected:  acc.rejected,
			Errors:    acc.errs,
			Preempts:  acc.preempts,
			QPS:       float64(acc.completed) / window,
		}
		if acc.firstErr != nil {
			tr.Err = acc.firstErr.Error()
		}
		tr.MeanMs, tr.P50Ms, tr.P99Ms = latencySummary(acc.latencies)
		rep.Completed += tr.Completed
		rep.Tenants = append(rep.Tenants, tr)
		xs = append(xs, tr.QPS/tr.Weight)
	}
	rep.Jain = Jain(xs)
	return rep, nil
}

// runWorker is one closed-loop session: submit, wait, repeat. Queue
// rejections back off briefly and retry (the polite reaction to a 429);
// cancellation at the run deadline ends the loop.
func runWorker(ctx context.Context, m *session.Manager, p *Profile, acc *tenantAcc, w int, measureFrom time.Time) {
	s := m.Session()
	s.SetTenant(p.Tenant)
	for i := w; ; i++ {
		if ctx.Err() != nil {
			return
		}
		q := p.Queries[i%len(p.Queries)]
		start := time.Now()
		res, err := s.Exec(ctx, q.SQL, session.Options{
			Mode:   p.Mode,
			Params: q.Params,
			// Progress tracking is per-query registry churn that the
			// generator's hundreds of sessions don't need.
			NoProgress: true,
		})
		// A completion (or rejection) is measured if it lands inside
		// the window. Under saturation a query can spend several
		// windows' worth of time queued, so gating on start time would
		// undercount exactly the backlogged regime the generator
		// exists to create; completion-time accounting is the standard
		// closed-loop convention. (The run context expires at window
		// end, so nothing lands after it.)
		measured := !time.Now().Before(measureFrom)
		switch {
		case err == nil:
			if measured {
				lat := time.Since(start).Seconds() * 1e3
				acc.mu.Lock()
				acc.completed++
				acc.preempts += int64(res.Preempted)
				acc.latencies = append(acc.latencies, lat)
				acc.mu.Unlock()
			}
		case errors.Is(err, memmgr.ErrQueueFull):
			if measured {
				acc.mu.Lock()
				acc.rejected++
				acc.mu.Unlock()
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		case ctx.Err() != nil:
			// Run deadline: the in-flight query was cancelled, not
			// failed.
			return
		default:
			acc.mu.Lock()
			acc.errs++
			if acc.firstErr == nil {
				acc.firstErr = err
			}
			acc.mu.Unlock()
		}
		if p.Think > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(p.Think):
			}
		}
	}
}

// latencySummary returns (mean, p50, p99) in the samples' unit.
func latencySummary(lat []float64) (mean, p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return sum / float64(len(sorted)), pick(0.50), pick(0.99)
}

// Jain computes Jain's fairness index (sum x)^2 / (n * sum x^2) over
// the given allocations: 1.0 when all are equal, 1/n when one tenant
// captures everything. Zero or empty allocations yield 0.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
