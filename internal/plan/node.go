package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/histogram"
	"repro/internal/sql"
	"repro/internal/types"
)

// Est carries the optimizer's annotations for one plan node — the
// estimates the paper requires every plan to be "annotated" with (§2.1):
// output cardinality and size, execution cost, and the memory demands the
// Memory Manager allocates against.
type Est struct {
	Rows     float64 // estimated output cardinality
	Bytes    float64 // estimated output size in bytes
	Cost     float64 // cumulative cost of the subtree, simulated units
	SelfCost float64 // this node's own cost

	// Memory demands in bytes, zero for streaming operators. MemMin is
	// the least memory the operator can run with; MemMax lets it run
	// in one pass.
	MemMin, MemMax float64

	// MemStep marks operators whose benefit is a step function of
	// memory: a hash join avoids its extra pass only at MemMax, so the
	// Memory Manager grants it either MemMax or MemMin, never between.
	// Aggregates and sorts benefit incrementally and accept partial
	// top-ups — this is why the paper's Figure 3 gives the second join
	// its minimum and the leftover to the aggregate.
	MemStep bool

	// Grant is the Memory Manager's allocation in bytes. Zero means
	// not yet allocated.
	Grant float64
}

// Node is one operator of a physical plan. The tree is left-deep for
// joins, as produced by the System-R style optimizer.
type Node interface {
	Schema() *types.Schema
	Children() []Node
	Est() *Est
	// Label names the operator for plan display ("hash-join").
	Label() string
	// Describe renders the operator's arguments for plan display.
	Describe() string
}

// base provides the shared annotation storage.
type base struct {
	est Est
}

func (b *base) Est() *Est { return &b.est }

// Scan reads a base table sequentially, applying pushed-down filters.
type Scan struct {
	base
	Table   *catalog.Table
	Binding string // FROM-clause alias the query refers to the table by
	// Filters are applied as tuples stream out of the pages.
	Filters []Pred
	// FilterSQL preserves the original AST of each filter for
	// remainder-query regeneration.
	FilterSQL []sql.Predicate
	// Out is the scan's schema with columns re-qualified by Binding.
	Out *types.Schema
}

// Schema implements Node.
func (s *Scan) Schema() *types.Schema { return s.Out }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Label implements Node.
func (s *Scan) Label() string { return "seq-scan" }

// Describe implements Node.
func (s *Scan) Describe() string {
	d := s.Table.Name
	if s.Binding != "" && s.Binding != s.Table.Name {
		d += " as " + s.Binding
	}
	if len(s.Filters) > 0 {
		parts := make([]string, len(s.Filters))
		for i, f := range s.Filters {
			parts[i] = f.String()
		}
		d += " filter " + strings.Join(parts, " and ")
	}
	return d
}

// HashJoin joins Build (left) against Probe (right) on equality of the
// key columns. If the build side exceeds its memory grant it degrades to
// a Grace-style partitioned join with extra I/O passes.
type HashJoin struct {
	base
	Build, Probe Node
	BuildKeys    []int // ordinals into Build.Schema()
	ProbeKeys    []int // ordinals into Probe.Schema()
	// JoinSQL preserves the join predicate ASTs for regeneration.
	JoinSQL []sql.Predicate
}

// Schema implements Node.
func (j *HashJoin) Schema() *types.Schema { return j.Build.Schema().Concat(j.Probe.Schema()) }

// Children implements Node.
func (j *HashJoin) Children() []Node { return []Node{j.Build, j.Probe} }

// Label implements Node.
func (j *HashJoin) Label() string { return "hash-join" }

// Describe implements Node.
func (j *HashJoin) Describe() string {
	parts := make([]string, len(j.BuildKeys))
	bs, ps := j.Build.Schema(), j.Probe.Schema()
	for i := range j.BuildKeys {
		parts[i] = fmt.Sprintf("%s = %s",
			bs.Columns[j.BuildKeys[i]].QualifiedName(),
			ps.Columns[j.ProbeKeys[i]].QualifiedName())
	}
	return strings.Join(parts, " and ")
}

// IndexJoin is an indexed nested-loops join: for each outer tuple it
// probes the B+tree on Table's InnerCol and fetches matches.
type IndexJoin struct {
	base
	Outer    Node
	Table    *catalog.Table
	Binding  string
	OuterKey int // ordinal into Outer.Schema()
	InnerCol int // ordinal into Table.Schema (index must exist)
	// InnerFilters apply to fetched inner tuples.
	InnerFilters []Pred
	// EstMatches is the optimizer's expected index matches per probe,
	// recorded so the dispatcher can re-cost the join under improved
	// outer-cardinality estimates.
	EstMatches float64
	// SQL forms for regeneration.
	JoinSQL  []sql.Predicate
	InnerSQL []sql.Predicate
	// InnerOut is the inner table's schema re-qualified by Binding.
	InnerOut *types.Schema
}

// Schema implements Node.
func (j *IndexJoin) Schema() *types.Schema { return j.Outer.Schema().Concat(j.InnerOut) }

// Children implements Node.
func (j *IndexJoin) Children() []Node { return []Node{j.Outer} }

// Label implements Node.
func (j *IndexJoin) Label() string { return "indexed-join" }

// Describe implements Node.
func (j *IndexJoin) Describe() string {
	return fmt.Sprintf("%s = %s (index on %s)",
		j.Outer.Schema().Columns[j.OuterKey].QualifiedName(),
		j.InnerOut.Columns[j.InnerCol].QualifiedName(),
		j.Table.Name)
}

// CollectorSpec says which statistics a statistics-collector operator
// gathers (§2.2): cardinality and average tuple size always; histograms
// on the listed columns; distinct-value counts on the listed column sets.
type CollectorSpec struct {
	// HistCols are ordinals of columns to build run-time histograms on
	// (attributes used in later join or selection predicates).
	HistCols []int
	// HistFamily is the histogram family to build. Run-time histograms
	// can be "very specific" to their one consumer (§2.2), so the SCIA
	// picks the family per use.
	HistFamily histogram.Family
	// UniqueCols are sets of ordinals whose combined distinct count is
	// needed (attributes of a later GROUP BY).
	UniqueCols [][]int
	// ReservoirSize is the per-histogram sample capacity (one page).
	ReservoirSize int
	// Seed makes sampling deterministic.
	Seed int64
}

// Empty reports whether the collector gathers only the free statistics
// (cardinality, size, min/max).
func (s CollectorSpec) Empty() bool {
	return len(s.HistCols) == 0 && len(s.UniqueCols) == 0
}

// Collector is a statistics-collector operator: it passes tuples through
// unchanged while gathering the statistics in Spec. It reports an
// Observed snapshot when its input is exhausted.
type Collector struct {
	base
	Input Node
	Spec  CollectorSpec
	// ID identifies the collector in dispatcher messages.
	ID int
}

// Schema implements Node.
func (c *Collector) Schema() *types.Schema { return c.Input.Schema() }

// Children implements Node.
func (c *Collector) Children() []Node { return []Node{c.Input} }

// Label implements Node.
func (c *Collector) Label() string { return "statistics-collector" }

// Describe implements Node.
func (c *Collector) Describe() string {
	var parts []string
	sch := c.Input.Schema()
	for _, col := range c.Spec.HistCols {
		parts = append(parts, "histogram:"+sch.Columns[col].QualifiedName())
	}
	for _, set := range c.Spec.UniqueCols {
		names := make([]string, len(set))
		for i, col := range set {
			names[i] = sch.Columns[col].QualifiedName()
		}
		parts = append(parts, "unique:"+strings.Join(names, ","))
	}
	if len(parts) == 0 {
		parts = append(parts, "cardinality")
	}
	return strings.Join(parts, " ")
}

// AggSpec is one aggregate output.
type AggSpec struct {
	Func sql.AggFunc
	Arg  Expr // nil for COUNT(*)
	Name string
}

// Agg groups its input by the GroupCols and computes the aggregates. It
// is hash-based and blocking; if the group table exceeds its grant it
// spills partitions.
type Agg struct {
	base
	Input     Node
	GroupCols []int
	Aggs      []AggSpec
	Out       *types.Schema
}

// Schema implements Node.
func (a *Agg) Schema() *types.Schema { return a.Out }

// Children implements Node.
func (a *Agg) Children() []Node { return []Node{a.Input} }

// Label implements Node.
func (a *Agg) Label() string { return "aggregate" }

// Describe implements Node.
func (a *Agg) Describe() string {
	var parts []string
	in := a.Input.Schema()
	for _, g := range a.GroupCols {
		parts = append(parts, in.Columns[g].QualifiedName())
	}
	d := ""
	if len(parts) > 0 {
		d = "group by " + strings.Join(parts, ", ")
	}
	for _, ag := range a.Aggs {
		if d != "" {
			d += " "
		}
		if ag.Arg == nil {
			d += fmt.Sprintf("%s(*)", ag.Func)
		} else {
			d += fmt.Sprintf("%s(%s)", ag.Func, ag.Arg)
		}
	}
	return d
}

// Project computes scalar expressions over its input.
type Project struct {
	base
	Input Node
	Exprs []Expr
	Out   *types.Schema
}

// Schema implements Node.
func (p *Project) Schema() *types.Schema { return p.Out }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Label implements Node.
func (p *Project) Label() string { return "project" }

// Describe implements Node.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// SortKey is one ORDER BY key over the input schema.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort orders its input; external merge sort if the input exceeds the
// memory grant.
type Sort struct {
	base
	Input Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() *types.Schema { return s.Input.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// Label implements Node.
func (s *Sort) Label() string { return "sort" }

// Describe implements Node.
func (s *Sort) Describe() string {
	in := s.Input.Schema()
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = in.Columns[k.Col].QualifiedName()
		if k.Desc {
			parts[i] += " desc"
		}
	}
	return strings.Join(parts, ", ")
}

// Limit passes through the first N tuples.
type Limit struct {
	base
	Input Node
	N     int64
}

// Schema implements Node.
func (l *Limit) Schema() *types.Schema { return l.Input.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// Label implements Node.
func (l *Limit) Label() string { return "limit" }

// Describe implements Node.
func (l *Limit) Describe() string { return fmt.Sprintf("%d", l.N) }

// Format renders the plan tree with annotations, for EXPLAIN output and
// the tests' golden assertions.
func Format(n Node) string {
	var b strings.Builder
	format(&b, n, 0)
	return b.String()
}

func format(b *strings.Builder, n Node, depth int) {
	e := n.Est()
	fmt.Fprintf(b, "%s%s [%s] rows=%.0f cost=%.1f",
		strings.Repeat("  ", depth), n.Label(), n.Describe(), e.Rows, e.Cost)
	if e.MemMax > 0 {
		fmt.Fprintf(b, " mem=%.0f..%.0f", e.MemMin, e.MemMax)
		if e.Grant > 0 {
			fmt.Fprintf(b, " grant=%.0f", e.Grant)
		}
	}
	b.WriteByte('\n')
	for _, c := range n.Children() {
		format(b, c, depth+1)
	}
}

// Walk visits every node of the plan in pre-order.
func Walk(n Node, fn func(Node)) {
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}
