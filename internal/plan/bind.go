package plan

import (
	"fmt"

	"repro/internal/histogram"
	"repro/internal/sql"
	"repro/internal/types"
)

// Bind compiles a SQL expression against a schema, resolving column
// references to ordinals. Aggregate expressions are rejected; the planner
// compiles those separately into Agg nodes.
func Bind(e sql.Expr, schema *types.Schema) (Expr, error) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		idx, err := schema.Resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return &ColExpr{Idx: idx, Col: schema.Columns[idx]}, nil
	case *sql.Literal:
		return &ConstExpr{Val: x.Value}, nil
	case *sql.HostVar:
		return &ParamExpr{Name: x.Name, Hint: types.KindFloat}, nil
	case *sql.BinaryExpr:
		l, err := Bind(x.Left, schema)
		if err != nil {
			return nil, err
		}
		r, err := Bind(x.Right, schema)
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: x.Op, Left: l, Right: r}, nil
	case *sql.AggExpr:
		return nil, fmt.Errorf("plan: aggregate %s in scalar context", x.SQL())
	default:
		return nil, fmt.Errorf("plan: cannot bind expression %T", e)
	}
}

// BindPred compiles a SQL predicate against a schema.
func BindPred(p sql.Predicate, schema *types.Schema) (Pred, error) {
	switch x := p.(type) {
	case *sql.ComparePred:
		l, err := Bind(x.Left, schema)
		if err != nil {
			return nil, err
		}
		r, err := Bind(x.Right, schema)
		if err != nil {
			return nil, err
		}
		return &CmpPred{Op: x.Op, Left: l, Right: r}, nil
	case *sql.BetweenPred:
		e, err := Bind(x.Expr, schema)
		if err != nil {
			return nil, err
		}
		lo, err := Bind(x.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := Bind(x.Hi, schema)
		if err != nil {
			return nil, err
		}
		return &BetweenPred{Expr: e, Lo: lo, Hi: hi}, nil
	case *sql.InPred:
		e, err := Bind(x.Expr, schema)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(x.List))
		for i, le := range x.List {
			var err error
			list[i], err = Bind(le, schema)
			if err != nil {
				return nil, err
			}
		}
		return &InPred{Expr: e, List: list}, nil
	case *sql.LikePred:
		e, err := Bind(x.Expr, schema)
		if err != nil {
			return nil, err
		}
		return &LikePred{Expr: e, Pattern: x.Pattern}, nil
	default:
		return nil, fmt.Errorf("plan: cannot bind predicate %T", p)
	}
}

// Observed is the statistics snapshot a collector reports when its input
// is exhausted (§2.2). Unlike the optimizer's numbers these are observed
// statistics, and the paper's "improved estimates" for the remainder of
// the query are derived from them.
type Observed struct {
	CollectorID int
	Rows        float64
	Bytes       float64 // total encoded bytes seen
	// Hists maps column ordinal (in the collector's input schema) to
	// the run-time histogram built from the reservoir sample.
	Hists map[int]*histogram.Histogram
	// Uniques maps a column-set key (from UniqueKey) to the estimated
	// number of distinct combinations.
	Uniques map[string]float64
	// Mins and Maxs are per-column observed extrema.
	Mins, Maxs map[int]types.Value
}

// AvgTupleBytes returns the observed mean tuple size.
func (o *Observed) AvgTupleBytes() float64 {
	if o.Rows <= 0 {
		return 0
	}
	return o.Bytes / o.Rows
}

// UniqueKey canonicalizes a column set for the Uniques map.
func UniqueKey(cols []int) string {
	key := ""
	for i, c := range cols {
		if i > 0 {
			key += ","
		}
		key += fmt.Sprint(c)
	}
	return key
}
