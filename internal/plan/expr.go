// Package plan defines physical query execution plans: operator nodes
// annotated with the optimizer's estimates (the paper's "annotated query
// execution plan", §2.1), and the compiled expressions those operators
// evaluate.
//
// Plans carry both the executable form of every predicate and the
// original SQL AST form, because the re-optimizer must be able to
// regenerate SQL text for the remainder of a partially-executed query
// (§2.4, Figure 6).
package plan

import (
	"fmt"
	"strings"

	"repro/internal/sql"
	"repro/internal/types"
)

// Params maps host-variable names to their runtime bindings. The values
// of host variables are unknown at optimization time — one of the paper's
// named sources of estimation error.
type Params map[string]types.Value

// Expr is a compiled scalar expression evaluated against a tuple.
type Expr interface {
	Eval(t types.Tuple, p Params) (types.Value, error)
	// Kind is the static result kind, used to type plan output schemas.
	Kind() types.Kind
	String() string
}

// ColExpr reads a column by ordinal.
type ColExpr struct {
	Idx int
	Col types.Column // for display and schema derivation
}

// Eval implements Expr.
func (e *ColExpr) Eval(t types.Tuple, _ Params) (types.Value, error) {
	if e.Idx < 0 || e.Idx >= len(t) {
		return types.Null(), fmt.Errorf("plan: column ordinal %d out of range", e.Idx)
	}
	return t[e.Idx], nil
}

// Kind implements Expr.
func (e *ColExpr) Kind() types.Kind { return e.Col.Kind }

func (e *ColExpr) String() string { return e.Col.QualifiedName() }

// ConstExpr is a literal.
type ConstExpr struct {
	Val types.Value
}

// Eval implements Expr.
func (e *ConstExpr) Eval(types.Tuple, Params) (types.Value, error) { return e.Val, nil }

// Kind implements Expr.
func (e *ConstExpr) Kind() types.Kind { return e.Val.Kind() }

func (e *ConstExpr) String() string { return e.Val.String() }

// ParamExpr reads a host variable at run time.
type ParamExpr struct {
	Name string
	// Hint is the kind the optimizer assumes for estimation; execution
	// uses the actual bound value's kind.
	Hint types.Kind
}

// Eval implements Expr.
func (e *ParamExpr) Eval(_ types.Tuple, p Params) (types.Value, error) {
	v, ok := p[e.Name]
	if !ok {
		return types.Null(), fmt.Errorf("plan: unbound host variable :%s", e.Name)
	}
	return v, nil
}

// Kind implements Expr.
func (e *ParamExpr) Kind() types.Kind { return e.Hint }

func (e *ParamExpr) String() string { return ":" + e.Name }

// BinExpr is compiled arithmetic.
type BinExpr struct {
	Op          byte
	Left, Right Expr
}

// Eval implements Expr.
func (e *BinExpr) Eval(t types.Tuple, p Params) (types.Value, error) {
	l, err := e.Left.Eval(t, p)
	if err != nil {
		return types.Null(), err
	}
	r, err := e.Right.Eval(t, p)
	if err != nil {
		return types.Null(), err
	}
	switch e.Op {
	case '+':
		return l.Add(r)
	case '-':
		return l.Sub(r)
	case '*':
		return l.Mul(r)
	case '/':
		return l.Div(r)
	default:
		return types.Null(), fmt.Errorf("plan: unknown operator %c", e.Op)
	}
}

// Kind implements Expr.
func (e *BinExpr) Kind() types.Kind {
	if e.Left.Kind() == types.KindFloat || e.Right.Kind() == types.KindFloat {
		return types.KindFloat
	}
	if e.Left.Kind() == types.KindDate {
		return types.KindDate
	}
	return e.Left.Kind()
}

func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %c %s)", e.Left, e.Op, e.Right)
}

// Pred is a compiled boolean predicate.
type Pred interface {
	Test(t types.Tuple, p Params) (bool, error)
	String() string
}

// CmpPred compares two expressions. NULL on either side fails the
// predicate, per SQL three-valued logic collapsed to filtering.
type CmpPred struct {
	Op          sql.CompareOp
	Left, Right Expr
}

// Test implements Pred.
func (p *CmpPred) Test(t types.Tuple, params Params) (bool, error) {
	l, err := p.Left.Eval(t, params)
	if err != nil {
		return false, err
	}
	r, err := p.Right.Eval(t, params)
	if err != nil {
		return false, err
	}
	if l.IsNull() || r.IsNull() {
		return false, nil
	}
	c := l.Compare(r)
	switch p.Op {
	case sql.OpEq:
		return c == 0, nil
	case sql.OpNe:
		return c != 0, nil
	case sql.OpLt:
		return c < 0, nil
	case sql.OpLe:
		return c <= 0, nil
	case sql.OpGt:
		return c > 0, nil
	case sql.OpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("plan: unknown comparison %v", p.Op)
	}
}

func (p *CmpPred) String() string {
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// BetweenPred tests lo <= expr <= hi.
type BetweenPred struct {
	Expr   Expr
	Lo, Hi Expr
}

// Test implements Pred.
func (p *BetweenPred) Test(t types.Tuple, params Params) (bool, error) {
	v, err := p.Expr.Eval(t, params)
	if err != nil {
		return false, err
	}
	lo, err := p.Lo.Eval(t, params)
	if err != nil {
		return false, err
	}
	hi, err := p.Hi.Eval(t, params)
	if err != nil {
		return false, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return false, nil
	}
	return v.Compare(lo) >= 0 && v.Compare(hi) <= 0, nil
}

func (p *BetweenPred) String() string {
	return fmt.Sprintf("%s between %s and %s", p.Expr, p.Lo, p.Hi)
}

// InPred tests membership in a literal list.
type InPred struct {
	Expr Expr
	List []Expr
}

// Test implements Pred.
func (p *InPred) Test(t types.Tuple, params Params) (bool, error) {
	v, err := p.Expr.Eval(t, params)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	for _, le := range p.List {
		lv, err := le.Eval(t, params)
		if err != nil {
			return false, err
		}
		if !lv.IsNull() && v.Compare(lv) == 0 {
			return true, nil
		}
	}
	return false, nil
}

func (p *InPred) String() string {
	parts := make([]string, len(p.List))
	for i, e := range p.List {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s in (%s)", p.Expr, strings.Join(parts, ", "))
}

// LikePred matches SQL LIKE patterns with % and _ wildcards.
type LikePred struct {
	Expr    Expr
	Pattern string
}

// Test implements Pred.
func (p *LikePred) Test(t types.Tuple, params Params) (bool, error) {
	v, err := p.Expr.Eval(t, params)
	if err != nil {
		return false, err
	}
	if v.IsNull() || v.Kind() != types.KindString {
		return false, nil
	}
	return likeMatch(v.Str(), p.Pattern), nil
}

func (p *LikePred) String() string {
	return fmt.Sprintf("%s like '%s'", p.Expr, p.Pattern)
}

// likeMatch implements LIKE with % (any run) and _ (any one byte) by
// greedy backtracking, linear in practice on the catalog-style patterns
// the workload uses.
func likeMatch(s, pat string) bool {
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		if pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]) {
			si++
			pi++
			continue
		}
		if pi < len(pat) && pat[pi] == '%' {
			star = pi
			starSi = si
			pi++
			continue
		}
		if star >= 0 {
			starSi++
			si = starSi
			pi = star + 1
			continue
		}
		return false
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}
