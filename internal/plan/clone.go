package plan

import "fmt"

// Clone deep-copies a plan tree's node structure and annotations. Shared
// immutable references — catalog tables, schemas, compiled predicates and
// the preserved SQL ASTs — are carried over by pointer: execution never
// mutates them, only the node wiring and the Est annotations, which the
// copy owns outright. The plan cache relies on this: it hands every
// execution a fresh tree whose estimates the dispatcher and the Memory
// Manager may scribble on, while the cached original stays pristine.
func Clone(n Node) Node {
	if n == nil {
		return nil
	}
	switch x := n.(type) {
	case *Scan:
		cp := *x
		return &cp
	case *HashJoin:
		cp := *x
		cp.Build = Clone(x.Build)
		cp.Probe = Clone(x.Probe)
		return &cp
	case *IndexJoin:
		cp := *x
		cp.Outer = Clone(x.Outer)
		return &cp
	case *Collector:
		cp := *x
		cp.Input = Clone(x.Input)
		return &cp
	case *Filter:
		cp := *x
		cp.Input = Clone(x.Input)
		return &cp
	case *Agg:
		cp := *x
		cp.Input = Clone(x.Input)
		return &cp
	case *Project:
		cp := *x
		cp.Input = Clone(x.Input)
		return &cp
	case *Sort:
		cp := *x
		cp.Input = Clone(x.Input)
		return &cp
	case *Limit:
		cp := *x
		cp.Input = Clone(x.Input)
		return &cp
	case *Exchange:
		cp := *x
		cp.Input = Clone(x.Input)
		cp.Keys = append([]int(nil), x.Keys...)
		return &cp
	case *Insert:
		cp := *x
		cp.Rows = append([][]Expr(nil), x.Rows...)
		return &cp
	case *Update:
		cp := *x
		cp.Filters = append([]Pred(nil), x.Filters...)
		cp.Set = append([]SetCol(nil), x.Set...)
		return &cp
	case *Delete:
		cp := *x
		cp.Filters = append([]Pred(nil), x.Filters...)
		return &cp
	default:
		panic(fmt.Sprintf("plan: Clone of unknown node %T", n))
	}
}
