package plan

import (
	"strings"

	"repro/internal/sql"
	"repro/internal/types"
)

// Filter applies residual predicates that could not be pushed into a
// scan or turned into join keys — e.g. a non-equi condition across two
// relations, applied above the join that brings them together.
type Filter struct {
	base
	Input Node
	Preds []Pred
	// PredSQL preserves the AST forms for remainder-query regeneration.
	PredSQL []sql.Predicate
}

// Schema implements Node.
func (f *Filter) Schema() *types.Schema { return f.Input.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Input} }

// Label implements Node.
func (f *Filter) Label() string { return "filter" }

// Describe implements Node.
func (f *Filter) Describe() string {
	parts := make([]string, len(f.Preds))
	for i, p := range f.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " and ")
}
