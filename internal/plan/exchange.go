package plan

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// ExchangeMode selects how an exchange operator moves tuples between the
// serial stream and its parallel workers, after the Volcano exchange
// operator family.
type ExchangeMode uint8

const (
	// ExGather merges the partition streams of the subtree below into
	// one serial stream, combining the workers' statistics-collector
	// states into a single report at the merge point.
	ExGather ExchangeMode = iota
	// ExHash partitions tuples across workers by a hash of Keys, so
	// equal join keys always land on the same worker.
	ExHash
	// ExRoundRobin deals tuples to workers in rotation; used where any
	// partitioning is correct (partial aggregation).
	ExRoundRobin
)

// String implements fmt.Stringer.
func (m ExchangeMode) String() string {
	switch m {
	case ExGather:
		return "gather"
	case ExHash:
		return "hash"
	case ExRoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("exchange-mode(%d)", int(m))
}

// Exchange is a Volcano-style exchange operator. An ExGather node marks a
// parallel region: the subtree below it executes partitioned across
// Degree workers and the gather point merges the partition streams (and
// their collector states) back into one serial stream. ExHash and
// ExRoundRobin nodes annotate the partitioning applied to a parallel
// region's inputs — they are consumed by the enclosing gather's builder
// and never execute on their own.
//
// Exchange is cost- and estimate-transparent: Est delegates to the input
// node, so SCIA placement, Eq. 1/2 checkpoint arithmetic, and memory
// allocation see exactly the annotations they would on the serial plan.
type Exchange struct {
	Input  Node
	Degree int
	Mode   ExchangeMode
	// Keys are the partitioning columns for ExHash, ordinals into
	// Input.Schema().
	Keys []int
}

// Schema implements Node.
func (x *Exchange) Schema() *types.Schema { return x.Input.Schema() }

// Children implements Node.
func (x *Exchange) Children() []Node { return []Node{x.Input} }

// Est implements Node by delegating to the input: the exchange adds no
// rows, bytes, or modeled cost of its own, and sharing the annotation
// keeps the two views consistent when the dispatcher scales estimates
// mid-query.
func (x *Exchange) Est() *Est { return x.Input.Est() }

// Label implements Node.
func (x *Exchange) Label() string { return "exchange" }

// Describe implements Node.
func (x *Exchange) Describe() string {
	d := fmt.Sprintf("%s x%d", x.Mode, x.Degree)
	if x.Mode == ExHash && len(x.Keys) > 0 {
		sch := x.Input.Schema()
		parts := make([]string, len(x.Keys))
		for i, k := range x.Keys {
			parts[i] = sch.Columns[k].QualifiedName()
		}
		d += " on " + strings.Join(parts, ", ")
	}
	return d
}

// StripPartition unwraps partitioning-only exchange nodes (ExHash,
// ExRoundRobin) from the top of a subtree. Gather nodes are left in
// place — they delimit executable parallel regions.
func StripPartition(n Node) Node {
	for {
		x, ok := n.(*Exchange)
		if !ok || x.Mode == ExGather {
			return n
		}
		n = x.Input
	}
}
