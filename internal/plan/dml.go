package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/types"
)

// DML plan nodes. They are self-contained — no child operator subtree;
// the executor scans the target table itself under the transaction's
// snapshot, materializing matching RIDs before modifying anything so an
// UPDATE never revisits its own output (the Halloween problem). DML
// plans bypass the optimizer, the plan cache, and the re-optimizing
// dispatcher: a write's cost is dominated by the writes themselves, and
// its "plan space" is a single table scan.

// SetCol is one UPDATE assignment: target column ordinal and the bound
// value expression evaluated over the old tuple.
type SetCol struct {
	Col int
	Val Expr
}

// Insert appends the evaluated rows to the table.
type Insert struct {
	base
	Table *catalog.Table
	// Rows holds one bound expression per column, in schema order, for
	// each target row. Unnamed columns are filled with NULL.
	Rows [][]Expr
}

// Schema implements Node. DML nodes produce no tuples.
func (i *Insert) Schema() *types.Schema { return types.NewSchema() }

// Children implements Node.
func (i *Insert) Children() []Node { return nil }

// Label implements Node.
func (i *Insert) Label() string { return "insert" }

// Describe implements Node.
func (i *Insert) Describe() string {
	return fmt.Sprintf("%s (%d rows)", i.Table.Name, len(i.Rows))
}

// Update rewrites every visible tuple matching Filters: the old version
// is deleted and a new version with the assignments applied is inserted.
type Update struct {
	base
	Table   *catalog.Table
	Filters []Pred
	Set     []SetCol
}

// Schema implements Node.
func (u *Update) Schema() *types.Schema { return types.NewSchema() }

// Children implements Node.
func (u *Update) Children() []Node { return nil }

// Label implements Node.
func (u *Update) Label() string { return "update" }

// Describe implements Node.
func (u *Update) Describe() string {
	parts := make([]string, len(u.Set))
	for i, s := range u.Set {
		parts[i] = fmt.Sprintf("%s = %s", u.Table.Schema.Columns[s.Col].Name, s.Val)
	}
	d := u.Table.Name + " set " + strings.Join(parts, ", ")
	return d + describeFilters(u.Filters)
}

// Delete removes every visible tuple matching Filters.
type Delete struct {
	base
	Table   *catalog.Table
	Filters []Pred
}

// Schema implements Node.
func (d *Delete) Schema() *types.Schema { return types.NewSchema() }

// Children implements Node.
func (d *Delete) Children() []Node { return nil }

// Label implements Node.
func (d *Delete) Label() string { return "delete" }

// Describe implements Node.
func (d *Delete) Describe() string { return d.Table.Name + describeFilters(d.Filters) }

func describeFilters(preds []Pred) string {
	if len(preds) == 0 {
		return ""
	}
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return " where " + strings.Join(parts, " and ")
}

// PlanDML binds a parsed DML statement against the catalog into an
// executable plan node.
func PlanDML(cat *catalog.Catalog, stmt sql.Stmt) (Node, error) {
	switch s := stmt.(type) {
	case *sql.InsertStmt:
		return planInsert(cat, s)
	case *sql.UpdateStmt:
		return planUpdate(cat, s)
	case *sql.DeleteStmt:
		return planDelete(cat, s)
	default:
		return nil, fmt.Errorf("plan: %T is not a DML statement", stmt)
	}
}

func planInsert(cat *catalog.Catalog, s *sql.InsertStmt) (*Insert, error) {
	t, err := cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	// Map the statement's column list (or schema order) to ordinals.
	cols := make([]int, 0, t.Schema.Len())
	if len(s.Columns) == 0 {
		for i := range t.Schema.Columns {
			cols = append(cols, i)
		}
	} else {
		for _, name := range s.Columns {
			i, err := t.Schema.Resolve("", name)
			if err != nil {
				return nil, err
			}
			cols = append(cols, i)
		}
	}
	// VALUES expressions may not reference columns: bind against an
	// empty schema so column references fail at plan time.
	empty := types.NewSchema()
	node := &Insert{Table: t}
	for _, row := range s.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("plan: INSERT row has %d values for %d columns", len(row), len(cols))
		}
		bound := make([]Expr, t.Schema.Len())
		for i := range bound {
			bound[i] = &ConstExpr{Val: types.Null()}
		}
		for i, e := range row {
			be, err := Bind(e, empty)
			if err != nil {
				return nil, err
			}
			bound[cols[i]] = be
		}
		node.Rows = append(node.Rows, bound)
	}
	node.Est().Rows = float64(len(node.Rows))
	return node, nil
}

func planUpdate(cat *catalog.Catalog, s *sql.UpdateStmt) (*Update, error) {
	t, err := cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	node := &Update{Table: t}
	for _, a := range s.Set {
		col, err := t.Schema.Resolve("", a.Column)
		if err != nil {
			return nil, err
		}
		val, err := Bind(a.Value, t.Schema)
		if err != nil {
			return nil, err
		}
		node.Set = append(node.Set, SetCol{Col: col, Val: val})
	}
	node.Filters, err = bindFilters(s.Where, t.Schema)
	if err != nil {
		return nil, err
	}
	card, _ := t.Stats()
	node.Est().Rows = card
	return node, nil
}

func planDelete(cat *catalog.Catalog, s *sql.DeleteStmt) (*Delete, error) {
	t, err := cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	node := &Delete{Table: t}
	var err2 error
	node.Filters, err2 = bindFilters(s.Where, t.Schema)
	if err2 != nil {
		return nil, err2
	}
	card, _ := t.Stats()
	node.Est().Rows = card
	return node, nil
}

func bindFilters(preds []sql.Predicate, schema *types.Schema) ([]Pred, error) {
	var out []Pred
	for _, p := range preds {
		bp, err := BindPred(p, schema)
		if err != nil {
			return nil, err
		}
		out = append(out, bp)
	}
	return out, nil
}
