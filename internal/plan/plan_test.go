package plan

import (
	"strings"
	"testing"

	"repro/internal/sql"
	"repro/internal/types"
)

func bindSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Table: "r", Name: "a", Kind: types.KindInt},
		types.Column{Table: "r", Name: "b", Kind: types.KindFloat},
		types.Column{Table: "r", Name: "s", Kind: types.KindString},
		types.Column{Table: "r", Name: "d", Kind: types.KindDate},
	)
}

func parseWhere(t *testing.T, cond string) sql.Predicate {
	t.Helper()
	stmt, err := sql.Parse("select a from r where " + cond)
	if err != nil {
		t.Fatalf("parse %q: %v", cond, err)
	}
	return stmt.Where[0]
}

func testTuple() types.Tuple {
	return types.Tuple{
		types.NewInt(10), types.NewFloat(2.5), types.NewString("BUILDER"), types.NewDate(9000),
	}
}

func TestBindAndEvalComparisons(t *testing.T) {
	cases := []struct {
		cond string
		want bool
	}{
		{"a = 10", true},
		{"a <> 10", false},
		{"a < 11", true},
		{"a <= 10", true},
		{"a > 10", false},
		{"a >= 10", true},
		{"b = 2.5", true},
		{"a + 5 = 15", true},
		{"a * 2 - 5 = 15", true},
		{"a / 2 = 5", true},
		{"b * 4 = a", true},
		{"s = 'BUILDER'", true},
		{"s = 'other'", false},
		{"a between 5 and 15", true},
		{"a between 11 and 15", false},
		{"a in (1, 10, 100)", true},
		{"a in (1, 2)", false},
		{"s like 'BUILD%'", true},
		{"s like '%ILD%'", true},
		{"s like 'B_ILDER'", true},
		{"s like 'X%'", false},
		{"d >= date '1994-01-01'", true},
		{"d < date '1994-01-01' + 10000", true},
	}
	sch := bindSchema()
	for _, c := range cases {
		p, err := BindPred(parseWhere(t, c.cond), sch)
		if err != nil {
			t.Fatalf("bind %q: %v", c.cond, err)
		}
		got, err := p.Test(testTuple(), nil)
		if err != nil {
			t.Fatalf("test %q: %v", c.cond, err)
		}
		if got != c.want {
			t.Errorf("%q = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestBindHostVar(t *testing.T) {
	sch := bindSchema()
	p, err := BindPred(parseWhere(t, "a < :cut"), sch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Test(testTuple(), Params{"cut": types.NewInt(50)})
	if err != nil || !got {
		t.Errorf("a < :cut{50} = %v, %v", got, err)
	}
	got, _ = p.Test(testTuple(), Params{"cut": types.NewInt(5)})
	if got {
		t.Error("a < :cut{5} = true")
	}
	if _, err := p.Test(testTuple(), nil); err == nil {
		t.Error("unbound host variable did not error")
	}
}

func TestNullComparisonsFail(t *testing.T) {
	sch := bindSchema()
	p, _ := BindPred(parseWhere(t, "a = 10"), sch)
	nullTup := types.Tuple{types.Null(), types.Null(), types.Null(), types.Null()}
	got, err := p.Test(nullTup, nil)
	if err != nil || got {
		t.Errorf("NULL = 10 evaluated to %v, %v", got, err)
	}
	between, _ := BindPred(parseWhere(t, "a between 1 and 20"), sch)
	if got, _ := between.Test(nullTup, nil); got {
		t.Error("NULL between 1 and 20 = true")
	}
	in, _ := BindPred(parseWhere(t, "a in (1, 2)"), sch)
	if got, _ := in.Test(nullTup, nil); got {
		t.Error("NULL in (...) = true")
	}
}

func TestBindErrors(t *testing.T) {
	sch := bindSchema()
	if _, err := BindPred(parseWhere(t, "zzz = 1"), sch); err == nil {
		t.Error("binding unknown column succeeded")
	}
	stmt, _ := sql.Parse("select sum(a) from r")
	if _, err := Bind(stmt.Select[0].Expr, sch); err == nil {
		t.Error("binding aggregate in scalar context succeeded")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"", "", true},
		{"", "%", true},
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"abc", "%%", true},
		{"abc", "", false},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ppX", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.pat, got)
		}
	}
}

func TestExprStrings(t *testing.T) {
	sch := bindSchema()
	p, _ := BindPred(parseWhere(t, "a + 1 < :v"), sch)
	if s := p.String(); !strings.Contains(s, "r.a") || !strings.Contains(s, ":v") {
		t.Errorf("Pred.String() = %q", s)
	}
}

func TestExprKinds(t *testing.T) {
	sch := bindSchema()
	stmt, _ := sql.Parse("select a + 1, b * 2, d - 30 from r")
	wantKinds := []types.Kind{types.KindInt, types.KindFloat, types.KindDate}
	for i, item := range stmt.Select {
		e, err := Bind(item.Expr, sch)
		if err != nil {
			t.Fatal(err)
		}
		if e.Kind() != wantKinds[i] {
			t.Errorf("expr %d kind = %v, want %v", i, e.Kind(), wantKinds[i])
		}
	}
}

func TestObservedHelpers(t *testing.T) {
	o := &Observed{Rows: 4, Bytes: 100}
	if o.AvgTupleBytes() != 25 {
		t.Errorf("AvgTupleBytes = %g", o.AvgTupleBytes())
	}
	empty := &Observed{}
	if empty.AvgTupleBytes() != 0 {
		t.Error("empty AvgTupleBytes != 0")
	}
	if UniqueKey([]int{2, 5}) != "2,5" {
		t.Errorf("UniqueKey = %q", UniqueKey([]int{2, 5}))
	}
}

func TestColExprOutOfRange(t *testing.T) {
	e := &ColExpr{Idx: 9, Col: types.Column{Name: "x"}}
	if _, err := e.Eval(types.Tuple{types.NewInt(1)}, nil); err == nil {
		t.Error("out-of-range ColExpr did not error")
	}
}
