package catalog

import (
	"testing"

	"repro/internal/histogram"
	"repro/internal/storage"
	"repro/internal/types"
)

func newTestCatalog() *Catalog {
	m := storage.NewCostMeter(storage.DefaultCostWeights())
	d := storage.NewDisk(m)
	return New(storage.NewBufferPool(d, 64))
}

func rsSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt, Key: true},
		types.Column{Name: "grp", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindString},
	)
}

func TestCreateAndLookupTable(t *testing.T) {
	c := newTestCatalog()
	tbl, err := c.CreateTable("R", rsSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name != "r" {
		t.Errorf("table name = %q", tbl.Name)
	}
	if tbl.Schema.Columns[0].Table != "r" {
		t.Errorf("column qualifier = %q", tbl.Schema.Columns[0].Table)
	}
	got, err := c.Table("r")
	if err != nil || got != tbl {
		t.Errorf("Table(r) = %v, %v", got, err)
	}
	if _, err := c.Table("R"); err != nil {
		t.Error("case-insensitive lookup failed")
	}
	if _, err := c.CreateTable("r", rsSchema()); err == nil {
		t.Error("duplicate CreateTable succeeded")
	}
	if _, err := c.Table("nope"); err == nil {
		t.Error("lookup of missing table succeeded")
	}
	if names := c.Tables(); len(names) != 1 || names[0] != "r" {
		t.Errorf("Tables() = %v", names)
	}
}

func TestInsertAndIndexes(t *testing.T) {
	c := newTestCatalog()
	tbl, _ := c.CreateTable("r", rsSchema())
	for i := int64(0); i < 100; i++ {
		err := tbl.Insert(types.Tuple{types.NewInt(i), types.NewInt(i % 10), types.NewString("x")})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Insert(types.Tuple{types.NewInt(1)}); err == nil {
		t.Error("arity-mismatch insert succeeded")
	}
	if err := c.CreateIndex("r", "grp"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex("r", "grp"); err == nil {
		t.Error("duplicate index succeeded")
	}
	if err := c.CreateIndex("r", "nope"); err == nil {
		t.Error("index on missing column succeeded")
	}
	col, _ := tbl.Schema.Resolve("", "grp")
	idx := tbl.Indexes[col]
	rids := idx.Tree.Lookup(types.NewInt(3))
	if len(rids) != 10 {
		t.Errorf("index lookup returned %d rids, want 10", len(rids))
	}
	// Inserts after index creation maintain the index.
	tbl.Insert(types.Tuple{types.NewInt(200), types.NewInt(3), types.NewString("y")})
	if got := len(idx.Tree.Lookup(types.NewInt(3))); got != 11 {
		t.Errorf("index after insert has %d rids, want 11", got)
	}
}

func TestAnalyzeComputesStats(t *testing.T) {
	c := newTestCatalog()
	tbl, _ := c.CreateTable("r", rsSchema())
	for i := int64(0); i < 1000; i++ {
		tbl.Insert(types.Tuple{types.NewInt(i), types.NewInt(i % 20), types.NewString("n")})
	}
	if !tbl.StaleStats() {
		t.Error("unanalyzed table not stale")
	}
	if err := c.Analyze("r", AnalyzeOptions{Family: histogram.MaxDiff}); err != nil {
		t.Fatal(err)
	}
	if tbl.Cardinality != 1000 {
		t.Errorf("Cardinality = %g", tbl.Cardinality)
	}
	if tbl.AvgTupleBytes <= 0 {
		t.Error("AvgTupleBytes not set")
	}
	if tbl.StaleStats() {
		t.Error("stale right after Analyze")
	}
	grpCol, _ := tbl.Schema.Resolve("", "grp")
	cs := tbl.ColStats[grpCol]
	if !cs.HasHistogram() {
		t.Fatal("no histogram on grp")
	}
	if cs.Distinct != 20 {
		t.Errorf("Distinct = %g, want 20", cs.Distinct)
	}
	if !cs.Min.Equal(types.NewInt(0)) || !cs.Max.Equal(types.NewInt(19)) {
		t.Errorf("Min/Max = %v/%v", cs.Min, cs.Max)
	}
}

func TestAnalyzeSkipHistograms(t *testing.T) {
	c := newTestCatalog()
	tbl, _ := c.CreateTable("r", rsSchema())
	for i := int64(0); i < 100; i++ {
		tbl.Insert(types.Tuple{types.NewInt(i), types.NewInt(i % 5), types.NewString("n")})
	}
	if err := c.Analyze("r", AnalyzeOptions{SkipHistograms: true}); err != nil {
		t.Fatal(err)
	}
	grpCol, _ := tbl.Schema.Resolve("", "grp")
	cs := tbl.ColStats[grpCol]
	if cs.HasHistogram() {
		t.Error("histogram present despite SkipHistograms")
	}
	if cs.Distinct != 5 {
		t.Errorf("Distinct = %g", cs.Distinct)
	}
}

func TestAnalyzeSelectedColumns(t *testing.T) {
	c := newTestCatalog()
	tbl, _ := c.CreateTable("r", rsSchema())
	tbl.Insert(types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("n")})
	if err := c.Analyze("r", AnalyzeOptions{Columns: []string{"grp"}}); err != nil {
		t.Fatal(err)
	}
	grpCol, _ := tbl.Schema.Resolve("", "grp")
	idCol, _ := tbl.Schema.Resolve("", "id")
	if tbl.ColStats[grpCol] == nil {
		t.Error("grp not analyzed")
	}
	if tbl.ColStats[idCol] != nil {
		t.Error("id analyzed despite column filter")
	}
	if err := c.Analyze("r", AnalyzeOptions{Columns: []string{"zzz"}}); err == nil {
		t.Error("Analyze of missing column succeeded")
	}
}

func TestStaleStatsThreshold(t *testing.T) {
	c := newTestCatalog()
	tbl, _ := c.CreateTable("r", rsSchema())
	for i := int64(0); i < 100; i++ {
		tbl.Insert(types.Tuple{types.NewInt(i), types.NewInt(0), types.NewString("n")})
	}
	c.Analyze("r", AnalyzeOptions{})
	// 5% churn: not stale.
	for i := int64(0); i < 5; i++ {
		tbl.Insert(types.Tuple{types.NewInt(1000 + i), types.NewInt(0), types.NewString("n")})
	}
	if tbl.StaleStats() {
		t.Error("5%% churn flagged stale")
	}
	for i := int64(0); i < 10; i++ {
		tbl.Insert(types.Tuple{types.NewInt(2000 + i), types.NewInt(0), types.NewString("n")})
	}
	if !tbl.StaleStats() {
		t.Error("15%% churn not flagged stale")
	}
}

func TestAnalyzeNulls(t *testing.T) {
	c := newTestCatalog()
	tbl, _ := c.CreateTable("r", rsSchema())
	tbl.Insert(types.Tuple{types.NewInt(1), types.Null(), types.NewString("n")})
	tbl.Insert(types.Tuple{types.NewInt(2), types.NewInt(5), types.NewString("n")})
	if err := c.Analyze("r", AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	grpCol, _ := tbl.Schema.Resolve("", "grp")
	cs := tbl.ColStats[grpCol]
	if cs.NullFrac != 0.5 {
		t.Errorf("NullFrac = %g", cs.NullFrac)
	}
}

func TestDropTable(t *testing.T) {
	c := newTestCatalog()
	c.CreateTable("r", rsSchema())
	if err := c.DropTable("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("r"); err == nil {
		t.Error("dropped table still visible")
	}
	if err := c.DropTable("r"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestRegisterTemp(t *testing.T) {
	c := newTestCatalog()
	tf := storage.NewTempFile(c.Pool())
	tf.Append(types.Tuple{types.NewInt(1), types.NewString("a")})
	tf.Append(types.Tuple{types.NewInt(2), types.NewString("b")})
	schema := types.NewSchema(
		types.Column{Name: "x", Kind: types.KindInt},
		types.Column{Name: "y", Kind: types.KindString},
	)
	tbl, err := c.RegisterTemp("temp1", schema, tf)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Cardinality != 2 {
		t.Errorf("temp Cardinality = %g", tbl.Cardinality)
	}
	if tbl.Schema.Columns[0].Table != "temp1" {
		t.Errorf("temp column qualifier = %q", tbl.Schema.Columns[0].Table)
	}
	if _, err := c.RegisterTemp("temp1", schema, tf); err == nil {
		t.Error("duplicate RegisterTemp succeeded")
	}
	// Dropping a temp table frees its pages.
	before := c.Pool().Disk().NumPages()
	if err := c.DropTable("temp1"); err != nil {
		t.Fatal(err)
	}
	if c.Pool().Disk().NumPages() >= before {
		t.Error("temp drop freed no pages")
	}
}
